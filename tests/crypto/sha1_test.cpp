#include "crypto/sha1.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace dws::crypto {
namespace {

Sha1Digest digest_of(const std::string& s) {
  return Sha1::digest(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

// FIPS 180 / RFC 3174 reference vectors.
TEST(Sha1, EmptyString) {
  EXPECT_EQ(to_hex(digest_of("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(to_hex(digest_of("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(to_hex(digest_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  std::string s(1000000, 'a');
  EXPECT_EQ(to_hex(digest_of(s)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, QuickBrownFox) {
  EXPECT_EQ(to_hex(digest_of("The quick brown fox jumps over the lazy dog")),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, ExactBlockBoundaries) {
  // 55, 56, 63, 64, 65 bytes cross the padding edge cases.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string a(len, 'x');
    // Incremental (1 byte at a time) must equal one-shot.
    Sha1 ctx;
    for (char ch : a) {
      const auto byte = static_cast<std::uint8_t>(ch);
      ctx.update(std::span<const std::uint8_t>(&byte, 1));
    }
    EXPECT_EQ(ctx.finish(), digest_of(a)) << "len=" << len;
  }
}

TEST(Sha1, IncrementalSplitsAgree) {
  const std::string msg =
      "Work stealing is a provably efficient scheduling algorithm for "
      "distributed dynamic load balancing requirements.";
  const auto ref = digest_of(msg);
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha1 ctx;
    ctx.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(msg.data()), split));
    ctx.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(msg.data()) + split,
        msg.size() - split));
    EXPECT_EQ(ctx.finish(), ref) << "split=" << split;
  }
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 ctx;
  const std::uint8_t b = 'a';
  ctx.update(std::span<const std::uint8_t>(&b, 1));
  (void)ctx.finish();
  ctx.reset();
  EXPECT_EQ(to_hex(ctx.finish()), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, DistinctInputsDistinctDigests) {
  // Smoke check over many short inputs: no collisions expected.
  std::vector<Sha1Digest> seen;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    std::uint8_t bytes[4] = {static_cast<std::uint8_t>(i >> 24),
                             static_cast<std::uint8_t>(i >> 16),
                             static_cast<std::uint8_t>(i >> 8),
                             static_cast<std::uint8_t>(i)};
    seen.push_back(Sha1::digest(std::span<const std::uint8_t>(bytes, 4)));
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

}  // namespace
}  // namespace dws::crypto
