#include "crypto/uts_rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dws::crypto {
namespace {

TEST(UtsRng, SeedIsDeterministic) {
  const auto a = UtsRng::from_seed(316);
  const auto b = UtsRng::from_seed(316);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.rand31(), b.rand31());
}

TEST(UtsRng, DifferentSeedsDiffer) {
  EXPECT_NE(UtsRng::from_seed(316), UtsRng::from_seed(559));
}

TEST(UtsRng, SpawnIsDeterministic) {
  const auto root = UtsRng::from_seed(42);
  EXPECT_EQ(root.spawn(0), root.spawn(0));
  EXPECT_EQ(root.spawn(7), root.spawn(7));
}

TEST(UtsRng, SiblingsDiffer) {
  const auto root = UtsRng::from_seed(42);
  std::set<std::string> states;
  for (std::uint32_t i = 0; i < 64; ++i) {
    states.insert(to_hex(root.spawn(i).state()));
  }
  EXPECT_EQ(states.size(), 64u);
}

TEST(UtsRng, SpawnIndependentOfCallOrder) {
  // The splittable property: child states depend only on (parent, index),
  // never on how many draws happened before — the foundation of UTS's
  // machine-independent tree.
  const auto root = UtsRng::from_seed(5);
  const auto c3_first = root.spawn(3);
  (void)root.spawn(0);
  (void)root.spawn(1);
  const auto c3_again = root.spawn(3);
  EXPECT_EQ(c3_first, c3_again);
}

TEST(UtsRng, Rand31IsNonNegative31Bit) {
  auto node = UtsRng::from_seed(1);
  for (int depth = 0; depth < 1000; ++depth) {
    EXPECT_LE(node.rand31(), 0x7fffffffu);
    node = node.spawn(0);
  }
}

TEST(UtsRng, ToProbInUnitInterval) {
  auto node = UtsRng::from_seed(2);
  for (int depth = 0; depth < 1000; ++depth) {
    const double p = node.to_prob();
    ASSERT_GE(p, 0.0);
    ASSERT_LT(p, 1.0);
    node = node.spawn(1);
  }
}

TEST(UtsRng, ToProbLooksUniform) {
  // Walk a chain, bucket the probabilities; each decile should hold roughly
  // 10% of draws. SHA-1 output is effectively uniform.
  auto node = UtsRng::from_seed(77);
  int buckets[10] = {};
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const double p = node.to_prob();
    ++buckets[static_cast<int>(p * 10.0)];
    node = node.spawn(static_cast<std::uint32_t>(i % 3));
  }
  for (int b : buckets) EXPECT_NEAR(b, draws / 10, draws / 10 * 0.15);
}

TEST(UtsRng, DeepChainsDoNotCycle) {
  auto node = UtsRng::from_seed(9);
  std::set<std::string> seen;
  for (int depth = 0; depth < 4096; ++depth) {
    ASSERT_TRUE(seen.insert(to_hex(node.state())).second) << depth;
    node = node.spawn(0);
  }
}

}  // namespace
}  // namespace dws::crypto
