#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dws::support {
namespace {

TEST(SplitMix64, KnownSequenceFromZeroSeed) {
  // Reference values from the published SplitMix64 algorithm.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafull);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(sm.next(), 0x06c45d188009454full);
}

TEST(SplitMix64, DeterministicPerSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256StarStar a(1);
  Xoshiro256StarStar b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, NextDoubleInUnitInterval) {
  Xoshiro256StarStar rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Xoshiro, NextBelowRespectsBound) {
  Xoshiro256StarStar rng(5);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 8192ull}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro, NextBelowCoversAllResidues) {
  Xoshiro256StarStar rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro, RoughUniformityOfNextBelow) {
  Xoshiro256StarStar rng(42);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  const double expected = kDraws / static_cast<double>(kBuckets);
  for (int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.05);
  }
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256StarStar::min() == 0);
  static_assert(Xoshiro256StarStar::max() == ~0ull);
  Xoshiro256StarStar rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace dws::support
