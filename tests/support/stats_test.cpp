#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "support/rng.hpp"

namespace dws::support {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(42.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.5);
  EXPECT_DOUBLE_EQ(s.min(), 42.5);
  EXPECT_DOUBLE_EQ(s.max(), 42.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSmallSet) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Xoshiro256StarStar rng(7);
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 100.0 - 50.0;
    whole.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(1.0);
  b.add(3.0);
  a.merge(b);  // empty <- nonempty
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats c;
  a.merge(c);  // nonempty <- empty
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(RunningStats, LargeShiftedValuesStayStable) {
  // Welford should not lose precision for values with a large common offset.
  RunningStats s;
  const double offset = 1e12;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-3);
}

TEST(Quantile, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

class QuantileMonotone : public ::testing::TestWithParam<double> {};

TEST_P(QuantileMonotone, NondecreasingInQ) {
  Xoshiro256StarStar rng(11);
  std::vector<double> v;
  for (int i = 0; i < 257; ++i) v.push_back(rng.next_double());
  const double q = GetParam();
  EXPECT_LE(quantile(v, q * 0.5), quantile(v, q));
  EXPECT_LE(quantile(v, q), quantile(v, 0.5 + q * 0.5));
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantileMonotone,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.99));

}  // namespace
}  // namespace dws::support
