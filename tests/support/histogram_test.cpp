#include "support/histogram.hpp"

#include <gtest/gtest.h>

namespace dws::support {
namespace {

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, SamplesLandInCorrectBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0 (inclusive lower edge)
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderAndOverflowAreCounted) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.5);
  h.add(1.0);  // hi edge is exclusive -> overflow
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bin_count(0), 0u);
  EXPECT_EQ(h.bin_count(1), 0u);
}

TEST(Histogram, TotalsNeverLost) {
  Histogram h(-5.0, 5.0, 10);
  std::uint64_t inside = 0;
  for (int i = -100; i <= 100; ++i) {
    h.add(i * 0.1);
    if (i >= -50 && i < 50) ++inside;
  }
  std::uint64_t binned = 0;
  for (std::size_t b = 0; b < h.bins(); ++b) binned += h.bin_count(b);
  EXPECT_EQ(binned, inside);
  EXPECT_EQ(h.total(), 201u);
  EXPECT_EQ(binned + h.underflow() + h.overflow(), h.total());
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 4.0, 4);
  for (int i = 0; i < 8; ++i) h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

}  // namespace
}  // namespace dws::support
