#include "support/table.hpp"

#include <gtest/gtest.h>

namespace dws::support {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"ranks", "speedup"});
  t.add_row({"8", "7.9"});
  t.add_row({"1024", "512.3"});
  const std::string out = t.render();
  EXPECT_NE(out.find("ranks"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("512.3"), std::string::npos);
  // All lines share the same width (right-aligned columns).
  std::size_t first_nl = out.find('\n');
  std::size_t second_nl = out.find('\n', first_nl + 1);
  EXPECT_EQ(first_nl, second_nl - first_nl - 1);
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_csv(), "a,b\n1,2\n");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Format, FixedPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt(std::uint64_t{157063495159ull}), "157063495159");
  EXPECT_EQ(fmt(std::int64_t{-5}), "-5");
}

TEST(Format, Percent) {
  EXPECT_EQ(fmt_pct(0.43, 1), "43.0%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

}  // namespace
}  // namespace dws::support
