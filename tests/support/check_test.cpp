#include "support/check.hpp"

#include <gtest/gtest.h>

#include "support/sim_time.hpp"

namespace dws::support {
namespace {

TEST(Check, PassingCheckIsSilent) {
  DWS_CHECK(1 + 1 == 2);
  DWS_DCHECK(true);
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(DWS_CHECK(false), "DWS_CHECK failed: false");
}

TEST(CheckDeathTest, MessageNamesTheExpression) {
  const int x = 3;
  EXPECT_DEATH(DWS_CHECK(x == 4), "x == 4");
}

TEST(Check, SideEffectsRunExactlyOnce) {
  int calls = 0;
  auto f = [&] {
    ++calls;
    return true;
  };
  DWS_CHECK(f());
  EXPECT_EQ(calls, 1);
}

TEST(SimTime, UnitConstants) {
  EXPECT_EQ(kMicrosecond, 1000);
  EXPECT_EQ(kMillisecond, 1000 * 1000);
  EXPECT_EQ(kSecond, 1000 * 1000 * 1000);
}

TEST(SimTime, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(2 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(to_millis(1500 * kMicrosecond), 1.5);
  EXPECT_DOUBLE_EQ(to_micros(2500), 2.5);
  EXPECT_EQ(from_micros(1.5), 1500);
  EXPECT_EQ(from_seconds(0.25), 250 * kMillisecond);
}

TEST(SimTime, RoundTrips) {
  for (const SimTime t : {SimTime{0}, kMicrosecond, 7 * kMillisecond,
                          3 * kSecond}) {
    EXPECT_EQ(from_seconds(to_seconds(t)), t);
  }
}

}  // namespace
}  // namespace dws::support
