#include "support/alias_table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace dws::support {
namespace {

TEST(AliasTable, SingleEntryAlwaysReturnsIt) {
  AliasTable t({5.0});
  Xoshiro256StarStar rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(t.sample(rng), 0u);
  EXPECT_DOUBLE_EQ(t.probability(0), 1.0);
}

TEST(AliasTable, NormalisesWeights) {
  AliasTable t({1.0, 3.0});
  EXPECT_DOUBLE_EQ(t.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(t.probability(1), 0.75);
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  AliasTable t({1.0, 0.0, 1.0, 0.0});
  Xoshiro256StarStar rng(3);
  for (int i = 0; i < 20000; ++i) {
    const auto s = t.sample(rng);
    ASSERT_TRUE(s == 0 || s == 2) << s;
  }
}

TEST(AliasTable, UniformWeightsSampleUniformly) {
  const std::size_t n = 16;
  AliasTable t(std::vector<double>(n, 1.0));
  Xoshiro256StarStar rng(7);
  std::vector<int> counts(n, 0);
  const int draws = 160000;
  for (int i = 0; i < draws; ++i) ++counts[t.sample(rng)];
  const double expected = draws / static_cast<double>(n);
  for (int c : counts) EXPECT_NEAR(c, expected, expected * 0.06);
}

TEST(AliasTable, SkewedWeightsMatchProbabilities) {
  std::vector<double> w{10.0, 1.0, 5.0, 0.5, 3.5};
  AliasTable t(w);
  Xoshiro256StarStar rng(13);
  std::vector<int> counts(w.size(), 0);
  const int draws = 500000;
  for (int i = 0; i < draws; ++i) ++counts[t.sample(rng)];
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double expected = t.probability(i) * draws;
    EXPECT_NEAR(counts[i], expected, 4.0 * std::sqrt(expected) + 1.0)
        << "index " << i;
  }
}

TEST(AliasTable, ChiSquareGoodnessOfFit) {
  // 1/distance-like weights as used for victim selection.
  std::vector<double> w;
  for (int i = 1; i <= 64; ++i) w.push_back(1.0 / i);
  AliasTable t(w);
  Xoshiro256StarStar rng(99);
  std::vector<int> counts(w.size(), 0);
  const int draws = 640000;
  for (int i = 0; i < draws; ++i) ++counts[t.sample(rng)];
  double chi2 = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double e = t.probability(i) * draws;
    chi2 += (counts[i] - e) * (counts[i] - e) / e;
  }
  // 63 degrees of freedom; the 99.9th percentile is ~103.4.
  EXPECT_LT(chi2, 104.0);
}

TEST(AliasTable, ProbabilitiesSumToOne) {
  std::vector<double> w{0.1, 0.0, 17.0, 2.5, 1e-6, 8.0};
  AliasTable t(w);
  double sum = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) sum += t.probability(i);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(AliasTable, LargeTableConstructionIsSane) {
  std::vector<double> w(8192);
  Xoshiro256StarStar rng(5);
  for (auto& x : w) x = rng.next_double() + 1e-9;
  AliasTable t(w);
  EXPECT_EQ(t.size(), w.size());
  EXPECT_GT(t.memory_bytes(), w.size() * sizeof(double));
  Xoshiro256StarStar draw_rng(6);
  for (int i = 0; i < 1000; ++i) ASSERT_LT(t.sample(draw_rng), w.size());
}

}  // namespace
}  // namespace dws::support
