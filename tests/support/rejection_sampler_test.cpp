#include "support/rejection_sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/alias_table.hpp"
#include "support/rng.hpp"

namespace dws::support {
namespace {

TEST(RejectionSampler, SingleIndex) {
  RejectionSampler s(1, 1.0, [](std::size_t) { return 1.0; });
  Xoshiro256StarStar rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(s.sample(rng), 0u);
}

TEST(RejectionSampler, SkipsZeroWeightIndices) {
  RejectionSampler s(4, 1.0,
                     [](std::size_t i) { return i % 2 == 0 ? 1.0 : 0.0; });
  Xoshiro256StarStar rng(2);
  for (int i = 0; i < 10000; ++i) {
    const auto v = s.sample(rng);
    ASSERT_TRUE(v == 0 || v == 2);
  }
}

TEST(RejectionSampler, MatchesWeightRatios) {
  const std::vector<double> w{4.0, 1.0, 2.0, 1.0};
  RejectionSampler s(w.size(), 4.0, [&](std::size_t i) { return w[i]; });
  Xoshiro256StarStar rng(3);
  std::vector<int> counts(w.size(), 0);
  const int draws = 400000;
  for (int i = 0; i < draws; ++i) ++counts[s.sample(rng)];
  const double total = 8.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double expected = w[i] / total * draws;
    EXPECT_NEAR(counts[i], expected, 4.0 * std::sqrt(expected));
  }
}

/// The key property: rejection sampling and the alias table realise the SAME
/// distribution (this is what justifies swapping one for the other at large
/// rank counts — see DESIGN.md).
TEST(RejectionSampler, AgreesWithAliasTable) {
  std::vector<double> w;
  for (int i = 1; i <= 32; ++i) w.push_back(1.0 / std::sqrt(i));
  AliasTable alias(w);
  RejectionSampler rej(w.size(), 1.0, [&](std::size_t i) { return w[i]; });

  Xoshiro256StarStar rng_a(11);
  Xoshiro256StarStar rng_b(12);
  std::vector<int> ca(w.size(), 0);
  std::vector<int> cb(w.size(), 0);
  const int draws = 320000;
  for (int i = 0; i < draws; ++i) {
    ++ca[alias.sample(rng_a)];
    ++cb[rej.sample(rng_b)];
  }
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double e = alias.probability(i) * draws;
    EXPECT_NEAR(ca[i], e, 5.0 * std::sqrt(e)) << i;
    EXPECT_NEAR(cb[i], e, 5.0 * std::sqrt(e)) << i;
  }
}

TEST(RejectionSamplerDeathTest, AllZeroWeightsAbort) {
  // An all-zero weight function used to spin forever in sample(); the
  // constructor now rejects it outright.
  EXPECT_DEATH(RejectionSampler(4, 1.0, [](std::size_t) { return 0.0; }),
               "all weights are zero");
}

TEST(RejectionSampler, WorksWithLooseUpperBound) {
  // w_max larger than any actual weight only slows sampling, never biases it.
  const std::vector<double> w{1.0, 2.0};
  RejectionSampler s(w.size(), 100.0, [&](std::size_t i) { return w[i]; });
  Xoshiro256StarStar rng(21);
  int ones = 0;
  const int draws = 90000;
  for (int i = 0; i < draws; ++i) ones += s.sample(rng) == 1 ? 1 : 0;
  EXPECT_NEAR(ones, draws * 2.0 / 3.0, 1500.0);
}

}  // namespace
}  // namespace dws::support
