#include "dag/scheduler.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace dws::dag {
namespace {

DagParams small_params() {
  DagParams p;
  p.layers = 8;
  p.width = 32;
  p.edge_probability = 0.15;
  p.seed = 3;
  return p;
}

TEST(DagScheduler, SingleRankRunsEverythingSequentially) {
  const Dag dag(small_params());
  DagRunConfig cfg;
  cfg.num_ranks = 1;
  const auto r = run_dag_simulation(dag, cfg);
  EXPECT_EQ(r.tasks_executed, dag.task_count());
  // Alone: no gathers, no steals, runtime exactly the total cost.
  EXPECT_EQ(r.runtime, dag.total_cost());
  EXPECT_EQ(r.remote_inputs, 0u);
  EXPECT_DOUBLE_EQ(r.speedup(), 1.0);
}

TEST(DagScheduler, EveryTaskRunsExactlyOnce) {
  const Dag dag(small_params());
  DagRunConfig cfg;
  cfg.num_ranks = 16;
  const auto r = run_dag_simulation(dag, cfg);
  EXPECT_EQ(r.tasks_executed, dag.task_count());
  std::uint64_t sum = 0;
  for (const auto& rank : r.per_rank) sum += rank.nodes_processed;
  EXPECT_EQ(sum, dag.task_count());
}

TEST(DagScheduler, RuntimeRespectsTheoreticalBounds) {
  const Dag dag(small_params());
  DagRunConfig cfg;
  cfg.num_ranks = 16;
  const auto r = run_dag_simulation(dag, cfg);
  EXPECT_GE(r.runtime, dag.critical_path());  // can't beat the critical path
  EXPECT_LE(r.runtime, dag.total_cost());     // can't be slower than serial*
  // (*holds because stealing overhead is far below the parallelism gain at
  //  these sizes; it pins the simulator to sane cost accounting.)
}

TEST(DagScheduler, DeterministicRuns) {
  const Dag dag(small_params());
  DagRunConfig cfg;
  cfg.num_ranks = 8;
  cfg.victim_policy = ws::VictimPolicy::kRandom;
  const auto a = run_dag_simulation(dag, cfg);
  const auto b = run_dag_simulation(dag, cfg);
  EXPECT_EQ(a.runtime, b.runtime);
  EXPECT_EQ(a.stats.failed_steals, b.stats.failed_steals);
  EXPECT_EQ(a.remote_inputs, b.remote_inputs);
}

TEST(DagScheduler, WorkActuallyDistributes) {
  const Dag dag(small_params());
  DagRunConfig cfg;
  cfg.num_ranks = 8;
  const auto r = run_dag_simulation(dag, cfg);
  int ranks_with_work = 0;
  for (const auto& rank : r.per_rank) {
    if (rank.nodes_processed > 0) ++ranks_with_work;
  }
  EXPECT_GE(ranks_with_work, 6);
  EXPECT_GT(r.speedup(), 2.0);
  EXPECT_GT(r.stats.successful_steals, 0u);
}

TEST(DagScheduler, StolenTasksCauseRemoteGathers) {
  const Dag dag(small_params());
  DagRunConfig cfg;
  cfg.num_ranks = 8;
  const auto r = run_dag_simulation(dag, cfg);
  EXPECT_GT(r.remote_inputs, 0u);
  EXPECT_GT(r.mean_gather_ms, 0.0);
}

TEST(DagScheduler, HeavierPayloadsSlowTheRun) {
  // The §VII prediction in one assertion: same DAG topology, bigger data.
  auto p = small_params();
  p.min_payload_bytes = 64;
  p.max_payload_bytes = 256;
  const Dag light(p);
  p.min_payload_bytes = 1 << 18;  // 256 KiB
  p.max_payload_bytes = 1 << 20;  // 1 MiB
  const Dag heavy(p);
  DagRunConfig cfg;
  cfg.num_ranks = 16;
  const auto lr = run_dag_simulation(light, cfg);
  const auto hr = run_dag_simulation(heavy, cfg);
  // Topology identical -> same task costs; the only difference is gathers.
  EXPECT_EQ(light.total_cost(), heavy.total_cost());
  EXPECT_GT(hr.runtime, lr.runtime);
  EXPECT_GT(hr.mean_gather_ms, 10.0 * lr.mean_gather_ms);
}

TEST(DagScheduler, TraceIsWellFormedAndEndsIdleOrStopped) {
  const Dag dag(small_params());
  DagRunConfig cfg;
  cfg.num_ranks = 4;
  const auto r = run_dag_simulation(dag, cfg);
  ASSERT_EQ(r.trace.num_ranks(), 4u);
  for (const auto& rank : r.trace.ranks) {
    const auto& evs = rank.events();
    for (std::size_t i = 1; i < evs.size(); ++i) {
      ASSERT_GE(evs[i].time, evs[i - 1].time);
      ASSERT_NE(evs[i].phase, evs[i - 1].phase);
    }
  }
}

class DagConfigSweep
    : public ::testing::TestWithParam<
          std::tuple<topo::Rank, ws::VictimPolicy, topo::Placement, std::uint32_t>> {};

TEST_P(DagConfigSweep, AllTasksExecuteOnce) {
  const auto& [ranks, policy, placement, ppn] = GetParam();
  const Dag dag(small_params());
  DagRunConfig cfg;
  cfg.num_ranks = ranks;
  cfg.victim_policy = policy;
  cfg.placement = placement;
  cfg.procs_per_node = ppn;
  cfg.enable_congestion();
  const auto r = run_dag_simulation(dag, cfg);
  EXPECT_EQ(r.tasks_executed, dag.task_count());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DagConfigSweep,
    ::testing::Values(
        std::tuple{topo::Rank{2}, ws::VictimPolicy::kRoundRobin,
                   topo::Placement::kOnePerNode, 1u},
        std::tuple{topo::Rank{8}, ws::VictimPolicy::kRandom,
                   topo::Placement::kOnePerNode, 1u},
        std::tuple{topo::Rank{16}, ws::VictimPolicy::kTofuSkewed,
                   topo::Placement::kOnePerNode, 1u},
        std::tuple{topo::Rank{16}, ws::VictimPolicy::kHierarchical,
                   topo::Placement::kGrouped, 8u},
        std::tuple{topo::Rank{32}, ws::VictimPolicy::kTofuSkewed,
                   topo::Placement::kRoundRobin, 8u},
        std::tuple{topo::Rank{64}, ws::VictimPolicy::kRandom,
                   topo::Placement::kOnePerNode, 1u}));

}  // namespace
}  // namespace dws::dag
