#include "dag/generator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dws::dag {
namespace {

DagParams small_params() {
  DagParams p;
  p.layers = 6;
  p.width = 16;
  p.edge_probability = 0.2;
  p.seed = 7;
  return p;
}

TEST(DagGenerator, TaskCountMatchesGrid) {
  const Dag dag(small_params());
  EXPECT_EQ(dag.task_count(), 6u * 16u);
}

TEST(DagGenerator, DeterministicAcrossBuilds) {
  const Dag a(small_params());
  const Dag b(small_params());
  ASSERT_EQ(a.task_count(), b.task_count());
  EXPECT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.total_cost(), b.total_cost());
  for (TaskId id = 0; id < a.task_count(); ++id) {
    ASSERT_EQ(a.task(id).predecessors, b.task(id).predecessors) << id;
    ASSERT_EQ(a.task(id).cost, b.task(id).cost) << id;
    ASSERT_EQ(a.task(id).payload_bytes, b.task(id).payload_bytes) << id;
  }
}

TEST(DagGenerator, SeedChangesTheGraph) {
  auto p = small_params();
  const Dag a(p);
  p.seed = 8;
  const Dag b(p);
  EXPECT_NE(a.edge_count(), b.edge_count());
}

TEST(DagGenerator, SourcesAreExactlyLayerZero) {
  const Dag dag(small_params());
  EXPECT_EQ(dag.sources().size(), 16u);
  for (const TaskId s : dag.sources()) {
    EXPECT_EQ(dag.layer_of(s), 0u);
    EXPECT_TRUE(dag.task(s).predecessors.empty());
  }
}

TEST(DagGenerator, EveryNonSourceHasAPredecessorInPreviousLayer) {
  const Dag dag(small_params());
  for (TaskId id = 16; id < dag.task_count(); ++id) {
    const auto& preds = dag.task(id).predecessors;
    ASSERT_FALSE(preds.empty()) << id;
    for (const TaskId p : preds) {
      ASSERT_EQ(dag.layer_of(p) + 1, dag.layer_of(id)) << id;
    }
  }
}

TEST(DagGenerator, SuccessorsMirrorPredecessors) {
  const Dag dag(small_params());
  std::uint64_t forward = 0;
  for (TaskId id = 0; id < dag.task_count(); ++id) {
    forward += dag.task(id).successors.size();
    for (const TaskId s : dag.task(id).successors) {
      const auto& back = dag.task(s).predecessors;
      ASSERT_NE(std::find(back.begin(), back.end(), id), back.end());
    }
  }
  EXPECT_EQ(forward, dag.edge_count());
}

TEST(DagGenerator, EdgeDensityTracksProbability) {
  auto p = small_params();
  p.layers = 20;
  p.width = 64;
  p.edge_probability = 0.25;
  const Dag dag(p);
  // Expected edges ~ (layers-1) * width * width * prob (plus forced edges).
  const double expected = 19.0 * 64.0 * 64.0 * 0.25;
  EXPECT_NEAR(static_cast<double>(dag.edge_count()), expected, expected * 0.1);
}

TEST(DagGenerator, CostsAndPayloadsWithinRanges) {
  const auto p = small_params();
  const Dag dag(p);
  for (TaskId id = 0; id < dag.task_count(); ++id) {
    const auto& t = dag.task(id);
    EXPECT_GE(t.cost, p.min_task_cost);
    EXPECT_LE(t.cost, p.max_task_cost);
    EXPECT_GE(t.payload_bytes, p.min_payload_bytes);
    EXPECT_LE(t.payload_bytes, p.max_payload_bytes);
  }
}

TEST(DagGenerator, CriticalPathBounds) {
  const Dag dag(small_params());
  // The critical path is at least the costliest single chain of layers and
  // at most the total work.
  EXPECT_GT(dag.critical_path(), 0);
  EXPECT_LT(dag.critical_path(), dag.total_cost());
  // At least `layers` tasks deep of at least min cost each.
  EXPECT_GE(dag.critical_path(),
            static_cast<support::SimTime>(dag.params().layers) *
                dag.params().min_task_cost);
}

TEST(DagGenerator, FullEdgeProbabilityIsCompleteBipartite) {
  auto p = small_params();
  p.layers = 3;
  p.width = 5;
  p.edge_probability = 1.0;
  const Dag dag(p);
  EXPECT_EQ(dag.edge_count(), 2u * 5u * 5u);
  EXPECT_EQ(dag.critical_path(), [&] {
    // Exact: max cost in layer 0 + max in layer 1 + max in layer 2.
    support::SimTime total = 0;
    for (std::uint32_t l = 0; l < 3; ++l) {
      support::SimTime best = 0;
      for (std::uint32_t i = 0; i < 5; ++i) {
        best = std::max(best, dag.task(l * 5 + i).cost);
      }
      total += best;
    }
    return total;
  }());
}

}  // namespace
}  // namespace dws::dag
