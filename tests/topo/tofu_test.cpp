#include "topo/tofu.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace dws::topo {
namespace {

TEST(TofuMachine, KComputerDefaults) {
  TofuMachine k;
  EXPECT_EQ(k.cube_count(), 24u * 18u * 16u);
  EXPECT_EQ(k.node_count(), 82944u);  // the real K Computer node count
}

TEST(TofuMachine, CoordNodeIdBijection) {
  TofuMachine m(3, 2, 4);
  for (NodeId id = 0; id < m.node_count(); ++id) {
    const auto c = m.coord(id);
    ASSERT_EQ(m.node_id(c), id) << c.to_string();
  }
}

TEST(TofuMachine, CoordsStayInBounds) {
  TofuMachine m(5, 3, 2);
  for (NodeId id = 0; id < m.node_count(); ++id) {
    const auto c = m.coord(id);
    ASSERT_GE(c.x, 0); ASSERT_LT(c.x, 5);
    ASSERT_GE(c.y, 0); ASSERT_LT(c.y, 3);
    ASSERT_GE(c.z, 0); ASSERT_LT(c.z, 2);
    ASSERT_GE(c.a, 0); ASSERT_LT(c.a, TofuMachine::kA);
    ASSERT_GE(c.b, 0); ASSERT_LT(c.b, TofuMachine::kB);
    ASSERT_GE(c.c, 0); ASSERT_LT(c.c, TofuMachine::kC);
  }
}

TEST(TofuMachine, TwelveNodesPerCube) {
  EXPECT_EQ(TofuMachine::kNodesPerCube, 12);
  TofuMachine m(2, 2, 2);
  // First 12 ids share cube (0,0,0).
  for (NodeId id = 0; id < 12; ++id) {
    const auto c = m.coord(id);
    EXPECT_EQ(c.x, 0);
    EXPECT_EQ(c.y, 0);
    EXPECT_EQ(c.z, 0);
  }
  EXPECT_NE(m.coord(12).z + m.coord(12).y + m.coord(12).x, 0);
}

TEST(TofuMachine, HopsIdentityIsZero) {
  TofuMachine m;
  support::Xoshiro256StarStar rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto id = static_cast<NodeId>(rng.next_below(m.node_count()));
    EXPECT_EQ(m.hops(m.coord(id), m.coord(id)), 0);
  }
}

TEST(TofuMachine, HopsSymmetry) {
  TofuMachine m;
  support::Xoshiro256StarStar rng(4);
  for (int i = 0; i < 200; ++i) {
    const auto p = m.coord(static_cast<NodeId>(rng.next_below(m.node_count())));
    const auto q = m.coord(static_cast<NodeId>(rng.next_below(m.node_count())));
    EXPECT_EQ(m.hops(p, q), m.hops(q, p));
  }
}

TEST(TofuMachine, HopsTriangleInequality) {
  TofuMachine m;
  support::Xoshiro256StarStar rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto p = m.coord(static_cast<NodeId>(rng.next_below(m.node_count())));
    const auto q = m.coord(static_cast<NodeId>(rng.next_below(m.node_count())));
    const auto r = m.coord(static_cast<NodeId>(rng.next_below(m.node_count())));
    EXPECT_LE(m.hops(p, r), m.hops(p, q) + m.hops(q, r));
  }
}

TEST(TofuMachine, TorusWrapsAround) {
  TofuMachine m(10, 10, 10);
  TofuCoord p;  // origin
  TofuCoord q;
  q.x = 9;  // one step "backwards" through the wrap
  EXPECT_EQ(m.hops(p, q), 1);
  q.x = 5;  // the farthest point on a ring of 10
  EXPECT_EQ(m.hops(p, q), 5);
  q.x = 6;
  EXPECT_EQ(m.hops(p, q), 4);
}

TEST(TofuMachine, MeshDimsDoNotWrap) {
  TofuMachine m;
  TofuCoord p;
  TofuCoord q;
  q.b = 2;  // b has extent 3; mesh distance is 2, not 1
  EXPECT_EQ(m.hops(p, q), 2);
}

TEST(TofuMachine, EuclideanMatchesHandComputed) {
  TofuMachine m(10, 10, 10);
  TofuCoord p;
  TofuCoord q;
  q.x = 3;
  q.y = 4;
  EXPECT_DOUBLE_EQ(m.euclidean(p, q), 5.0);
  // Wrap: x delta of 9 on extent 10 is 1.
  TofuCoord r;
  r.x = 9;
  EXPECT_DOUBLE_EQ(m.euclidean(p, r), 1.0);
}

TEST(TofuMachine, EuclideanZeroOnlyForSameCoord) {
  TofuMachine m;
  const auto p = m.coord(17);
  EXPECT_DOUBLE_EQ(m.euclidean(p, p), 0.0);
  const auto q = m.coord(18);
  EXPECT_GT(m.euclidean(p, q), 0.0);
}

TEST(TofuMachine, SameBladeRequiresSameCubeAndB) {
  TofuMachine m(2, 2, 2);
  const auto p = m.coord(0);
  // Nodes 0..11 are cube (0,0,0); blade = same b. With (a*3+b)*2+c layout,
  // ids 0,1 have (a=0,b=0), ids 2,3 have (a=0,b=1)...
  EXPECT_TRUE(m.same_blade(p, m.coord(1)));
  EXPECT_FALSE(m.same_blade(p, m.coord(2)));
  // a=1,b=0 -> id = (1*3+0)*2 = 6: same blade as 0 (b matches).
  EXPECT_TRUE(m.same_blade(p, m.coord(6)));
  EXPECT_FALSE(m.same_blade(p, m.coord(12)));  // different cube
}

TEST(TofuMachine, BladeHasFourNodes) {
  TofuMachine m(1, 1, 1);
  int blade0 = 0;
  for (NodeId id = 0; id < m.node_count(); ++id) {
    if (m.same_blade(m.coord(0), m.coord(id))) ++blade0;
  }
  EXPECT_EQ(blade0, 4);
}

TEST(TofuMachine, RackGroupsEightCubesAlongZ) {
  TofuMachine m(2, 2, 16);
  TofuCoord p;          // z = 0
  TofuCoord q = p;
  q.z = 7;
  EXPECT_EQ(m.rack_of(p), m.rack_of(q));
  q.z = 8;
  EXPECT_NE(m.rack_of(p), m.rack_of(q));
  TofuCoord r = p;
  r.x = 1;
  EXPECT_NE(m.rack_of(p), m.rack_of(r));
}

TEST(TofuMachine, RackHolds96Nodes) {
  TofuMachine m(1, 1, 8);  // exactly one rack
  EXPECT_EQ(m.node_count(), 96u);
  for (NodeId id = 1; id < m.node_count(); ++id) {
    ASSERT_EQ(m.rack_of(m.coord(id)), m.rack_of(m.coord(0)));
  }
}

}  // namespace
}  // namespace dws::topo
