#include "topo/allocation.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

namespace dws::topo {
namespace {

TEST(JobLayout, OnePerNodeIsBijective) {
  TofuMachine m;
  JobLayout layout(m, 128, Placement::kOnePerNode);
  EXPECT_EQ(layout.num_ranks(), 128u);
  EXPECT_EQ(layout.num_nodes(), 128u);
  std::set<NodeId> nodes;
  for (Rank r = 0; r < 128; ++r) nodes.insert(layout.node_of(r));
  EXPECT_EQ(nodes.size(), 128u);
}

TEST(JobLayout, GroupedPacksConsecutiveRanks) {
  TofuMachine m;
  JobLayout layout(m, 64, Placement::kGrouped, 8);
  EXPECT_EQ(layout.num_nodes(), 8u);
  for (Rank r = 0; r < 64; ++r) {
    EXPECT_EQ(layout.node_of(r), layout.node_of((r / 8) * 8)) << r;
  }
  // Ranks 0..7 share a node; rank 8 does not share with rank 0.
  EXPECT_TRUE(layout.same_node(0, 7));
  EXPECT_FALSE(layout.same_node(0, 8));
}

TEST(JobLayout, RoundRobinSpreadsConsecutiveRanks) {
  TofuMachine m;
  JobLayout layout(m, 64, Placement::kRoundRobin, 8);
  EXPECT_EQ(layout.num_nodes(), 8u);
  // Consecutive ranks land on different nodes; ranks i and i+8 share.
  for (Rank r = 0; r + 1 < 8; ++r) {
    EXPECT_FALSE(layout.same_node(r, r + 1));
  }
  for (Rank r = 0; r + 8 < 64; ++r) {
    EXPECT_TRUE(layout.same_node(r, r + 8)) << r;
  }
}

TEST(JobLayout, EveryNodeGetsExactlyProcsPerNode) {
  TofuMachine m;
  for (auto placement : {Placement::kRoundRobin, Placement::kGrouped}) {
    JobLayout layout(m, 96, placement, 8);
    std::map<NodeId, int> per_node;
    for (Rank r = 0; r < 96; ++r) ++per_node[layout.node_of(r)];
    EXPECT_EQ(per_node.size(), 12u);
    for (const auto& [node, count] : per_node) EXPECT_EQ(count, 8) << node;
  }
}

TEST(JobLayout, AllocationIsCompact) {
  TofuMachine m;
  // 1024 nodes need ceil(1024/12) = 86 cubes; a compact factoring should be
  // near-cubic, i.e. max extent <= ~3x min extent and well below a 1D chain.
  JobLayout layout(m, 1024, Placement::kOnePerNode);
  const auto ex = layout.extent_x();
  const auto ey = layout.extent_y();
  const auto ez = layout.extent_z();
  EXPECT_GE(ex * ey * ez, 86);
  EXPECT_LE(ex, 8);
  EXPECT_LE(ey, 8);
  EXPECT_LE(ez, 8);
}

TEST(JobLayout, LargeJobFitsExtents) {
  TofuMachine m;
  JobLayout layout(m, 8192, Placement::kOnePerNode);
  // 8192 nodes = 683 cubes; extents must respect machine limits.
  EXPECT_LE(layout.extent_x(), m.nx());
  EXPECT_LE(layout.extent_y(), m.ny());
  EXPECT_LE(layout.extent_z(), m.nz());
  std::set<NodeId> unique(layout.nodes().begin(), layout.nodes().end());
  EXPECT_EQ(unique.size(), 8192u);
}

TEST(JobLayout, CoordCacheMatchesMachine) {
  TofuMachine m;
  JobLayout layout(m, 256, Placement::kOnePerNode);
  for (Rank r = 0; r < 256; ++r) {
    ASSERT_EQ(layout.coord_of(r), m.coord(layout.node_of(r)));
  }
}

TEST(JobLayout, OriginOffsetShiftsAllocation) {
  TofuMachine m;
  JobLayout a(m, 48, Placement::kOnePerNode, 1, 0);
  JobLayout b(m, 48, Placement::kOnePerNode, 1, 100);
  EXPECT_NE(a.node_of(0), b.node_of(0));
  // Same shape regardless of origin.
  EXPECT_EQ(a.extent_x(), b.extent_x());
  EXPECT_EQ(a.extent_y(), b.extent_y());
  EXPECT_EQ(a.extent_z(), b.extent_z());
}

TEST(JobLayout, OriginWrapsAroundTorus) {
  TofuMachine m(2, 2, 2);  // 96 nodes
  // Origin at the last cube: allocation wraps, stays valid and unique.
  JobLayout layout(m, 96, Placement::kOnePerNode, 1, 7);
  std::set<NodeId> unique(layout.nodes().begin(), layout.nodes().end());
  EXPECT_EQ(unique.size(), 96u);
}

TEST(JobLayout, SlicePreservesParentCoordinatesAndDistances) {
  // svc space sharing: a job's block is a window onto the parent layout, so
  // job-local rank i must sit on exactly the node parent rank base+i does —
  // distances (and therefore latencies) inside the slice are the parent's.
  TofuMachine m;
  JobLayout parent(m, 64, Placement::kGrouped, 8);
  const Rank base = 16, width = 16;
  const JobLayout job = JobLayout::slice(parent, base, width);
  EXPECT_EQ(job.num_ranks(), width);
  for (Rank r = 0; r < width; ++r) {
    EXPECT_EQ(job.node_of(r), parent.node_of(base + r)) << r;
    EXPECT_EQ(job.coord_of(r), parent.coord_of(base + r)) << r;
  }
  for (Rank a = 0; a < width; ++a) {
    for (Rank b = 0; b < width; ++b) {
      EXPECT_EQ(job.same_node(a, b), parent.same_node(base + a, base + b));
    }
  }
}

TEST(JobLayout, SliceOfTheWholePoolIsTheParent) {
  TofuMachine m;
  JobLayout parent(m, 32, Placement::kRoundRobin, 8);
  const JobLayout job = JobLayout::slice(parent, 0, 32);
  EXPECT_EQ(job.num_ranks(), parent.num_ranks());
  for (Rank r = 0; r < 32; ++r) {
    EXPECT_EQ(job.node_of(r), parent.node_of(r));
  }
}

TEST(JobLayout, PlacementNames) {
  EXPECT_STREQ(to_string(Placement::kOnePerNode), "1/N");
  EXPECT_STREQ(to_string(Placement::kRoundRobin), "RR");
  EXPECT_STREQ(to_string(Placement::kGrouped), "G");
}

class LayoutSweep
    : public ::testing::TestWithParam<std::tuple<Rank, Placement, std::uint32_t>> {};

TEST_P(LayoutSweep, RanksAlwaysMapInsideJobNodes) {
  const auto& [ranks, placement, ppn] = GetParam();
  TofuMachine m;
  JobLayout layout(m, ranks, placement, ppn);
  std::set<NodeId> job_nodes(layout.nodes().begin(), layout.nodes().end());
  for (Rank r = 0; r < ranks; ++r) {
    ASSERT_TRUE(job_nodes.count(layout.node_of(r))) << r;
  }
  EXPECT_EQ(layout.num_ranks(), ranks);
  EXPECT_EQ(layout.num_nodes() * ppn, ranks);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LayoutSweep,
    ::testing::Values(
        std::tuple{Rank{8}, Placement::kOnePerNode, 1u},
        std::tuple{Rank{128}, Placement::kOnePerNode, 1u},
        std::tuple{Rank{1024}, Placement::kOnePerNode, 1u},
        std::tuple{Rank{128}, Placement::kRoundRobin, 8u},
        std::tuple{Rank{128}, Placement::kGrouped, 8u},
        std::tuple{Rank{8192}, Placement::kRoundRobin, 8u},
        std::tuple{Rank{8192}, Placement::kGrouped, 8u},
        std::tuple{Rank{64}, Placement::kGrouped, 4u},
        std::tuple{Rank{64}, Placement::kRoundRobin, 2u}));

}  // namespace
}  // namespace dws::topo
