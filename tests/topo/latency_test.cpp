#include "topo/latency.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace dws::topo {
namespace {

class LatencyTest : public ::testing::Test {
 protected:
  TofuMachine machine_;
};

TEST_F(LatencyTest, SameNodeUsesSharedMemoryPath) {
  JobLayout layout(machine_, 16, Placement::kGrouped, 8);
  LatencyModel model(layout);
  // Ranks 0 and 1 share node 0.
  EXPECT_EQ(model.message_latency(0, 1, 0), model.params().same_node);
  EXPECT_EQ(model.hops(0, 1), 0);
  EXPECT_DOUBLE_EQ(model.euclidean(0, 1), 0.0);
}

TEST_F(LatencyTest, SameBladeFasterThanNetwork) {
  JobLayout layout(machine_, 96, Placement::kOnePerNode);
  LatencyModel model(layout);
  // Node ids 0 and 1 differ only in c -> same blade. Node 0 and 95 are in
  // different cubes.
  const auto blade = model.message_latency(0, 1, 0);
  const auto far = model.message_latency(0, 95, 0);
  EXPECT_EQ(blade, model.params().same_blade);
  EXPECT_GT(far, blade);
}

TEST_F(LatencyTest, LatencyIsSymmetricWithoutPayload) {
  JobLayout layout(machine_, 512, Placement::kOnePerNode);
  LatencyModel model(layout);
  support::Xoshiro256StarStar rng(6);
  for (int i = 0; i < 200; ++i) {
    const auto r1 = static_cast<Rank>(rng.next_below(512));
    const auto r2 = static_cast<Rank>(rng.next_below(512));
    ASSERT_EQ(model.message_latency(r1, r2, 0), model.message_latency(r2, r1, 0));
  }
}

TEST_F(LatencyTest, LatencyGrowsWithHops) {
  JobLayout layout(machine_, 4096, Placement::kOnePerNode);
  LatencyModel model(layout);
  // Collect (hops, latency) pairs; same-hop pairs must have equal latency
  // and more hops must never be faster.
  support::Xoshiro256StarStar rng(7);
  std::vector<std::pair<int, support::SimTime>> samples;
  for (int i = 0; i < 500; ++i) {
    const auto r1 = static_cast<Rank>(rng.next_below(4096));
    const auto r2 = static_cast<Rank>(rng.next_below(4096));
    if (layout.same_node(r1, r2)) continue;
    if (machine_.same_blade(layout.coord_of(r1), layout.coord_of(r2))) continue;
    samples.emplace_back(model.hops(r1, r2), model.message_latency(r1, r2, 0));
  }
  ASSERT_GT(samples.size(), 100u);
  for (const auto& [h1, l1] : samples) {
    for (const auto& [h2, l2] : samples) {
      if (h1 < h2) {
        ASSERT_LE(l1, l2);
      }
      if (h1 == h2) {
        ASSERT_EQ(l1, l2);
      }
    }
  }
}

TEST_F(LatencyTest, PayloadAddsSerializationDelay) {
  JobLayout layout(machine_, 64, Placement::kOnePerNode);
  LatencyModel model(layout);
  const auto empty = model.message_latency(0, 63, 0);
  const auto chunk = model.message_latency(0, 63, 560);  // 20-node chunk
  // 560 bytes at 5 B/ns = 112 ns.
  EXPECT_EQ(chunk - empty, 112);
}

TEST_F(LatencyTest, VictimWeightMatchesPaperFormula) {
  JobLayout layout(machine_, 1024, Placement::kOnePerNode);
  LatencyModel model(layout);
  // Co-located / identical coords -> weight 1.
  EXPECT_DOUBLE_EQ(model.victim_weight(0, 0), 1.0);
  for (Rank j : {1u, 17u, 512u, 1023u}) {
    const double e = model.euclidean(0, j);
    ASSERT_GT(e, 0.0);
    EXPECT_DOUBLE_EQ(model.victim_weight(0, j), 1.0 / e);
  }
}

TEST_F(LatencyTest, VictimWeightNeverExceedsOne) {
  // e(i,j) >= 1 whenever nodes differ (integer lattice), so w <= 1 — this
  // bound is what the rejection sampler uses as w_max.
  JobLayout layout(machine_, 2048, Placement::kOnePerNode);
  LatencyModel model(layout);
  support::Xoshiro256StarStar rng(9);
  for (int i = 0; i < 2000; ++i) {
    const auto r1 = static_cast<Rank>(rng.next_below(2048));
    const auto r2 = static_cast<Rank>(rng.next_below(2048));
    ASSERT_LE(model.victim_weight(r1, r2), 1.0);
    ASSERT_GT(model.victim_weight(r1, r2), 0.0);
  }
}

TEST_F(LatencyTest, CloseRanksWeighMoreThanFarRanks) {
  JobLayout layout(machine_, 8192, Placement::kOnePerNode);
  LatencyModel model(layout);
  // Rank 1 is in the same cube as rank 0; rank 8191 is across the machine.
  EXPECT_GT(model.victim_weight(0, 1), model.victim_weight(0, 8191));
}

TEST_F(LatencyTest, EightPerNodeSeesLatencySpread) {
  // The effect motivating the paper: with 8 ranks per node, some victims are
  // intra-node (cheap) and some are across the allocation (expensive).
  JobLayout layout(machine_, 8192, Placement::kGrouped, 8);
  LatencyModel model(layout);
  support::SimTime lo = INT64_MAX;
  support::SimTime hi = 0;
  for (Rank j = 1; j < 8192; j += 7) {
    const auto l = model.message_latency(0, j, 0);
    lo = std::min(lo, l);
    hi = std::max(hi, l);
  }
  EXPECT_EQ(lo, model.params().same_node);
  EXPECT_GT(hi, 2 * lo);
}

}  // namespace
}  // namespace dws::topo
