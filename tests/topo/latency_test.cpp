#include "topo/latency.hpp"

#include <gtest/gtest.h>

#include "support/histogram.hpp"
#include "support/rng.hpp"

namespace dws::topo {
namespace {

class LatencyTest : public ::testing::Test {
 protected:
  TofuMachine machine_;
};

TEST_F(LatencyTest, SameNodeUsesSharedMemoryPath) {
  JobLayout layout(machine_, 16, Placement::kGrouped, 8);
  LatencyModel model(layout);
  // Ranks 0 and 1 share node 0.
  EXPECT_EQ(model.message_latency(0, 1, 0), model.params().same_node);
  EXPECT_EQ(model.hops(0, 1), 0);
  EXPECT_DOUBLE_EQ(model.euclidean(0, 1), 0.0);
}

TEST_F(LatencyTest, SameBladeFasterThanNetwork) {
  JobLayout layout(machine_, 96, Placement::kOnePerNode);
  LatencyModel model(layout);
  // Node ids 0 and 1 differ only in c -> same blade. Node 0 and 95 are in
  // different cubes.
  const auto blade = model.message_latency(0, 1, 0);
  const auto far = model.message_latency(0, 95, 0);
  EXPECT_EQ(blade, model.params().same_blade);
  EXPECT_GT(far, blade);
}

TEST_F(LatencyTest, LatencyIsSymmetricWithoutPayload) {
  JobLayout layout(machine_, 512, Placement::kOnePerNode);
  LatencyModel model(layout);
  support::Xoshiro256StarStar rng(6);
  for (int i = 0; i < 200; ++i) {
    const auto r1 = static_cast<Rank>(rng.next_below(512));
    const auto r2 = static_cast<Rank>(rng.next_below(512));
    ASSERT_EQ(model.message_latency(r1, r2, 0), model.message_latency(r2, r1, 0));
  }
}

TEST_F(LatencyTest, LatencyGrowsWithHops) {
  JobLayout layout(machine_, 4096, Placement::kOnePerNode);
  LatencyModel model(layout);
  // Collect (hops, latency) pairs; same-hop pairs must have equal latency
  // and more hops must never be faster.
  support::Xoshiro256StarStar rng(7);
  std::vector<std::pair<int, support::SimTime>> samples;
  for (int i = 0; i < 500; ++i) {
    const auto r1 = static_cast<Rank>(rng.next_below(4096));
    const auto r2 = static_cast<Rank>(rng.next_below(4096));
    if (layout.same_node(r1, r2)) continue;
    if (machine_.same_blade(layout.coord_of(r1), layout.coord_of(r2))) continue;
    samples.emplace_back(model.hops(r1, r2), model.message_latency(r1, r2, 0));
  }
  ASSERT_GT(samples.size(), 100u);
  for (const auto& [h1, l1] : samples) {
    for (const auto& [h2, l2] : samples) {
      if (h1 < h2) {
        ASSERT_LE(l1, l2);
      }
      if (h1 == h2) {
        ASSERT_EQ(l1, l2);
      }
    }
  }
}

TEST_F(LatencyTest, PayloadAddsSerializationDelay) {
  JobLayout layout(machine_, 64, Placement::kOnePerNode);
  LatencyModel model(layout);
  const auto empty = model.message_latency(0, 63, 0);
  const auto chunk = model.message_latency(0, 63, 560);  // 20-node chunk
  // 560 bytes at 5 B/ns = 112 ns.
  EXPECT_EQ(chunk - empty, 112);
}

TEST_F(LatencyTest, VictimWeightMatchesPaperFormula) {
  JobLayout layout(machine_, 1024, Placement::kOnePerNode);
  LatencyModel model(layout);
  // Co-located / identical coords -> weight 1.
  EXPECT_DOUBLE_EQ(model.victim_weight(0, 0), 1.0);
  for (Rank j : {1u, 17u, 512u, 1023u}) {
    const double e = model.euclidean(0, j);
    ASSERT_GT(e, 0.0);
    EXPECT_DOUBLE_EQ(model.victim_weight(0, j), 1.0 / e);
  }
}

TEST_F(LatencyTest, VictimWeightNeverExceedsOne) {
  // e(i,j) >= 1 whenever nodes differ (integer lattice), so w <= 1 — this
  // bound is what the rejection sampler uses as w_max.
  JobLayout layout(machine_, 2048, Placement::kOnePerNode);
  LatencyModel model(layout);
  support::Xoshiro256StarStar rng(9);
  for (int i = 0; i < 2000; ++i) {
    const auto r1 = static_cast<Rank>(rng.next_below(2048));
    const auto r2 = static_cast<Rank>(rng.next_below(2048));
    ASSERT_LE(model.victim_weight(r1, r2), 1.0);
    ASSERT_GT(model.victim_weight(r1, r2), 0.0);
  }
}

TEST_F(LatencyTest, CloseRanksWeighMoreThanFarRanks) {
  JobLayout layout(machine_, 8192, Placement::kOnePerNode);
  LatencyModel model(layout);
  // Rank 1 is in the same cube as rank 0; rank 8191 is across the machine.
  EXPECT_GT(model.victim_weight(0, 1), model.victim_weight(0, 8191));
}

TEST_F(LatencyTest, EightPerNodeSeesLatencySpread) {
  // The effect motivating the paper: with 8 ranks per node, some victims are
  // intra-node (cheap) and some are across the allocation (expensive).
  JobLayout layout(machine_, 8192, Placement::kGrouped, 8);
  LatencyModel model(layout);
  support::SimTime lo = INT64_MAX;
  support::SimTime hi = 0;
  for (Rank j = 1; j < 8192; j += 7) {
    const auto l = model.message_latency(0, j, 0);
    lo = std::min(lo, l);
    hi = std::max(hi, l);
  }
  EXPECT_EQ(lo, model.params().same_node);
  EXPECT_GT(hi, 2 * lo);
}

TEST_F(LatencyTest, SamplingBackendReplacesOnlyTheNetworkTier) {
  JobLayout layout(machine_, 96, Placement::kOnePerNode);
  LatencyParams params;
  params.sample_bins = {{10'000, 20'000, 3}, {20'000, 40'000, 1}};
  params.sample_seed = 7;
  LatencyModel sampled(layout, params);
  LatencyModel uniform(layout, LatencyParams{});

  // Same-blade pair (nodes 0 and 1): bins must not apply.
  EXPECT_EQ(sampled.message_latency(0, 1, 0, 12345),
            uniform.message_latency(0, 1, 0));
  // Network pair: the draw lands inside the bins' envelope (plus zero
  // serialization at 0 bytes) and is far above the uniform model.
  const auto far = sampled.message_latency(0, 95, 0, 12345);
  EXPECT_GE(far, 10'000);
  EXPECT_LT(far, 40'000);

  // The 3-arg overload stays bit-unchanged even with sampling configured —
  // that is what keeps every pre-sampling golden stable.
  EXPECT_EQ(sampled.message_latency(0, 95, 0),
            uniform.message_latency(0, 95, 0));
}

TEST_F(LatencyTest, SamplingDrawsArePureFunctionsOfTheirInputs) {
  JobLayout layout(machine_, 96, Placement::kOnePerNode);
  LatencyParams params;
  params.sample_bins = {{5'000, 50'000, 1}};
  params.sample_seed = 11;
  LatencyModel model(layout, params);

  // Replayable: the same (src, dst, bytes, now) always draws the same value,
  // with no generator state (construction order is irrelevant).
  const auto a = model.message_latency(0, 95, 64, 1'000'000);
  EXPECT_EQ(a, model.message_latency(0, 95, 64, 1'000'000));
  LatencyModel again(layout, params);
  EXPECT_EQ(a, again.message_latency(0, 95, 64, 1'000'000));

  // The send time salts the draw: different instants spread over the bin.
  bool varies = false;
  for (support::SimTime t = 0; t < 64 && !varies; ++t) {
    varies = model.message_latency(0, 95, 64, t) != a;
  }
  EXPECT_TRUE(varies);

  // A different seed is a different experiment.
  LatencyParams reseeded = params;
  reseeded.sample_seed = 12;
  LatencyModel other(layout, reseeded);
  bool seed_reaches_draws = false;
  for (support::SimTime t = 0; t < 64 && !seed_reaches_draws; ++t) {
    seed_reaches_draws = model.message_latency(0, 95, 64, t) !=
                         other.message_latency(0, 95, 64, t);
  }
  EXPECT_TRUE(seed_reaches_draws);
}

TEST_F(LatencyTest, SampleBinsFromHistogramPreserveMass) {
  support::Histogram h(100.0, 1'300.0, 12);  // bin width 100
  for (int i = 0; i < 10; ++i) h.add(150.0);   // bin 0
  for (int i = 0; i < 5; ++i) h.add(1'250.0);  // bin 11
  h.add(50.0);     // underflow
  h.add(2'000.0);  // overflow
  const std::vector<LatencySampleBin> bins = sample_bins_from_histogram(h);
  ASSERT_EQ(bins.size(), 4u);  // underflow + 2 live bins + overflow
  std::uint64_t mass = 0;
  for (const auto& b : bins) {
    EXPECT_LT(b.lo, b.hi);
    mass += b.weight;
  }
  EXPECT_EQ(mass, h.total());
  EXPECT_EQ(bins.front().lo, 0);      // underflow bin starts at zero
  EXPECT_EQ(bins.front().hi, 100);
  EXPECT_EQ(bins.back().lo, 1'300);   // overflow bin extends the window
  EXPECT_EQ(bins.back().hi, 1'400);

  EXPECT_TRUE(sample_bins_from_histogram(
                  support::Histogram(0.0, 10.0, 4)).empty());
}

}  // namespace
}  // namespace dws::topo
