#include <gtest/gtest.h>

#include <map>
#include <set>

#include "support/rng.hpp"
#include "topo/allocation.hpp"
#include "topo/latency.hpp"

namespace dws::topo {
namespace {

/// Randomised layout fuzzing: arbitrary (ranks, placement, ppn, origin)
/// combinations must always produce structurally valid layouts and metric
/// latency functions.
class PlacementFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlacementFuzz, LayoutInvariantsHold) {
  support::Xoshiro256StarStar rng(GetParam());
  TofuMachine machine;

  const std::uint32_t ppn_pick = static_cast<std::uint32_t>(rng.next_below(4));
  const std::uint32_t ppn = ppn_pick == 0 ? 1 : (1u << ppn_pick);  // 1,2,4,8
  const Placement placement =
      ppn == 1 ? Placement::kOnePerNode
               : (rng.next_below(2) ? Placement::kRoundRobin
                                    : Placement::kGrouped);
  const Rank ranks =
      ppn * (1 + static_cast<Rank>(rng.next_below(300)));
  const auto origin =
      static_cast<std::uint32_t>(rng.next_below(machine.cube_count()));

  const JobLayout layout(machine, ranks, placement, ppn, origin);

  // (1) Exactly ranks/ppn distinct nodes, each carrying exactly ppn ranks.
  std::map<NodeId, std::uint32_t> per_node;
  for (Rank r = 0; r < ranks; ++r) ++per_node[layout.node_of(r)];
  EXPECT_EQ(per_node.size(), ranks / ppn);
  for (const auto& [node, count] : per_node) EXPECT_EQ(count, ppn) << node;

  // (2) Coordinates in bounds and consistent with the machine.
  for (Rank r = 0; r < ranks; ++r) {
    ASSERT_EQ(machine.node_id(layout.coord_of(r)), layout.node_of(r));
  }

  // (3) Latency is a positive, symmetric function with same-node floor.
  const LatencyModel model(layout);
  for (int i = 0; i < 50; ++i) {
    const auto a = static_cast<Rank>(rng.next_below(ranks));
    const auto b = static_cast<Rank>(rng.next_below(ranks));
    if (a == b) continue;
    const auto ab = model.message_latency(a, b, 0);
    ASSERT_GT(ab, 0);
    ASSERT_EQ(ab, model.message_latency(b, a, 0));
    ASSERT_GE(ab, model.params().same_node);
  }

  // (4) Victim weights in (0, 1].
  for (int i = 0; i < 50; ++i) {
    const auto a = static_cast<Rank>(rng.next_below(ranks));
    const auto b = static_cast<Rank>(rng.next_below(ranks));
    if (a == b) continue;
    const double w = model.victim_weight(a, b);
    ASSERT_GT(w, 0.0);
    ASSERT_LE(w, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementFuzz,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace dws::topo
