#include "topo/partition.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "topo/allocation.hpp"
#include "topo/latency.hpp"
#include "topo/tofu.hpp"

namespace dws::topo {
namespace {

/// Brute-force check of every structural invariant partition_ranks
/// promises, for one (layout, requested) pair.
void check_partition(const JobLayout& layout, const LatencyParams& params,
                     std::uint32_t requested) {
  const ShardPartition part = partition_ranks(layout, params, requested);

  // Effective shard count: capped at the node count, never zero.
  EXPECT_EQ(part.num_shards, std::min(requested, layout.num_nodes()));
  ASSERT_EQ(part.shard_of_rank.size(), layout.num_ranks());
  ASSERT_EQ(part.shard_ranks.size(), part.num_shards);

  // Every shard non-empty; shard_ranks ascending and consistent with
  // shard_of_rank; every rank appears exactly once.
  std::uint32_t total = 0;
  for (std::uint32_t s = 0; s < part.num_shards; ++s) {
    EXPECT_FALSE(part.shard_ranks[s].empty()) << "shard " << s;
    EXPECT_TRUE(std::is_sorted(part.shard_ranks[s].begin(),
                               part.shard_ranks[s].end()));
    for (const Rank r : part.shard_ranks[s]) {
      EXPECT_EQ(part.shard_of_rank[r], s);
    }
    total += static_cast<std::uint32_t>(part.shard_ranks[s].size());
  }
  EXPECT_EQ(total, layout.num_ranks());

  // Whole nodes: co-located ranks never split across shards.
  for (Rank a = 0; a < layout.num_ranks(); ++a) {
    for (Rank b = a + 1; b < layout.num_ranks(); ++b) {
      if (layout.same_node(a, b)) {
        EXPECT_EQ(part.shard_of_rank[a], part.shard_of_rank[b])
            << "node-sharing ranks " << a << "/" << b << " split";
      }
    }
  }

  {
    // Contiguity in scheduler order: map node -> shard (well-defined by the
    // whole-node property), then check monotonicity over the scheduler's
    // node order. (Rank order is not node order under kRoundRobin, so the
    // check has to go through the node index.)
    std::vector<std::uint32_t> node_shard(layout.num_nodes(),
                                          std::numeric_limits<std::uint32_t>::max());
    for (Rank r = 0; r < layout.num_ranks(); ++r) {
      // node_of returns a machine NodeId; recover the job-local index from
      // the allocation order.
      const auto& nodes = layout.nodes();
      const auto it =
          std::find(nodes.begin(), nodes.end(), layout.node_of(r));
      ASSERT_NE(it, nodes.end());
      const auto idx = static_cast<std::size_t>(it - nodes.begin());
      if (node_shard[idx] == std::numeric_limits<std::uint32_t>::max()) {
        node_shard[idx] = part.shard_of_rank[r];
      } else {
        EXPECT_EQ(node_shard[idx], part.shard_of_rank[r]);
      }
    }
    EXPECT_TRUE(std::is_sorted(node_shard.begin(), node_shard.end()));
  }

  if (part.num_shards < 2) {
    EXPECT_EQ(part.lookahead, 0);
    return;
  }

  // The lookahead must lower-bound the latency of EVERY cut pair — the
  // conservative property the whole window protocol rests on. Zero-byte
  // messages minimize the serialization term.
  const LatencyModel model(layout, params);
  support::SimTime min_cut = std::numeric_limits<support::SimTime>::max();
  for (Rank a = 0; a < layout.num_ranks(); ++a) {
    for (Rank b = 0; b < layout.num_ranks(); ++b) {
      if (a == b || part.shard_of_rank[a] == part.shard_of_rank[b]) continue;
      min_cut = std::min(min_cut, model.message_latency(a, b, 0));
    }
  }
  EXPECT_GT(part.lookahead, 0);
  EXPECT_LE(part.lookahead, min_cut)
      << "lookahead overshoots the actual minimum cut latency";
}

TEST(Partition, InvariantsAcrossPlacementsAndShardCounts) {
  const TofuMachine machine;
  const LatencyParams params;
  for (const Placement p :
       {Placement::kOnePerNode, Placement::kRoundRobin, Placement::kGrouped}) {
    const std::uint32_t procs = p == Placement::kOnePerNode ? 1 : 8;
    const JobLayout layout(machine, 96, p, procs);
    for (const std::uint32_t shards : {1u, 2u, 3u, 4u, 8u}) {
      check_partition(layout, params, shards);
    }
  }
}

TEST(Partition, RequestBeyondNodeCountIsCapped) {
  const TofuMachine machine;
  const JobLayout layout(machine, 4, Placement::kOnePerNode);
  check_partition(layout, LatencyParams{}, 64);  // only 4 nodes exist
}

TEST(Partition, SingleShardHasZeroLookaheadAndOwnsEverything) {
  const TofuMachine machine;
  const JobLayout layout(machine, 32, Placement::kOnePerNode);
  const ShardPartition part = partition_ranks(layout, LatencyParams{}, 1);
  EXPECT_EQ(part.num_shards, 1u);
  EXPECT_EQ(part.lookahead, 0);
  for (Rank r = 0; r < 32; ++r) EXPECT_EQ(part.shard_of_rank[r], 0u);
}

TEST(Partition, BladeSplitLowersTheLookahead) {
  const TofuMachine machine;
  const LatencyParams params;
  // 128 ranks 1/N: cutting into many shards must split at least one blade
  // (4 nodes each, 32 blades), so the bound drops to the blade tier.
  const JobLayout fine(machine, 128, Placement::kOnePerNode);
  const ShardPartition split = partition_ranks(fine, params, 64);
  EXPECT_EQ(split.lookahead,
            std::min(params.same_blade, params.network_base));
  // 2 shards over 24 ranks: the block boundary falls on a cube seam
  // (12 nodes per cube), no blade is split, so the full network tier holds.
  const JobLayout coarse(machine, 24, Placement::kOnePerNode);
  const ShardPartition whole = partition_ranks(coarse, params, 2);
  EXPECT_EQ(whole.lookahead, params.network_base);
}

TEST(Partition, DeterministicAcrossCalls) {
  const TofuMachine machine;
  const LatencyParams params;
  const JobLayout layout(machine, 256, Placement::kGrouped, 8);
  const ShardPartition a = partition_ranks(layout, params, 8);
  const ShardPartition b = partition_ranks(layout, params, 8);
  EXPECT_EQ(a.shard_of_rank, b.shard_of_rank);
  EXPECT_EQ(a.lookahead, b.lookahead);
}

}  // namespace
}  // namespace dws::topo
