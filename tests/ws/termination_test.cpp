#include <gtest/gtest.h>

#include "uts/sequential.hpp"
#include "ws/scheduler.hpp"

namespace dws::ws {
namespace {

/// Termination-focused scenarios. run_simulation() itself aborts on protocol
/// violations (non-terminated workers, unbalanced chunk flows), so merely
/// completing these runs exercises the token ring; the expectations pin the
/// observable consequences.

TEST(Termination, SingleRankTerminatesImmediatelyAfterWork) {
  RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_TINY");
  cfg.num_ranks = 1;
  const auto r = run_simulation(cfg);
  EXPECT_EQ(r.runtime, r.sequential_time());
}

TEST(Termination, TwoRanksNoDeadlock) {
  RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_TINY");
  cfg.num_ranks = 2;
  const auto r = run_simulation(cfg);
  EXPECT_GT(r.runtime, 0);
  // The token had to go around at least once.
  EXPECT_GT(r.network.messages, 2u);
}

TEST(Termination, TinyTreeManyRanks) {
  // Far more ranks than work: most ranks never receive a single node, yet
  // the ring must still settle. TEST_BIN_TINY has 69 nodes -> at most a few
  // chunks ever exist.
  RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_TINY");
  cfg.num_ranks = 64;
  cfg.ws.victim_policy = VictimPolicy::kRandom;
  const auto r = run_simulation(cfg);
  EXPECT_EQ(r.nodes, uts::enumerate_sequential(cfg.tree).nodes);
  // Starved ranks exist and were terminated cleanly.
  std::uint64_t starved = 0;
  for (const auto& rank : r.per_rank) {
    if (rank.nodes_processed == 0) ++starved;
  }
  EXPECT_GT(starved, 0u);
}

TEST(Termination, StarTreeMinimalWork) {
  // q = 0: only the root produces children; 65 nodes, all leaves but root.
  RunConfig cfg;
  cfg.tree.name = "star";
  cfg.tree.root_seed = 1;
  cfg.tree.root_branching = 64;
  cfg.tree.q = 0.0;
  cfg.num_ranks = 16;
  const auto r = run_simulation(cfg);
  EXPECT_EQ(r.nodes, 65u);
}

TEST(Termination, DegenerateTreeRootOnlyChild) {
  // b0 = 1, q = 0: two nodes. 8 ranks contend over almost nothing.
  RunConfig cfg;
  cfg.tree.name = "stick";
  cfg.tree.root_seed = 1;
  cfg.tree.root_branching = 1;
  cfg.tree.q = 0.0;
  cfg.num_ranks = 8;
  const auto r = run_simulation(cfg);
  EXPECT_EQ(r.nodes, 2u);
  // Nobody could steal (never more than one chunk): all steals failed.
  EXPECT_EQ(r.stats.successful_steals, 0u);
  EXPECT_GT(r.stats.failed_steals, 0u);
}

TEST(Termination, FinishTimesAreAfterRuntime) {
  // Ranks learn of termination via broadcast: their finish times trail
  // rank 0's declaration (= runtime) by the network latency.
  RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_SMALL");
  cfg.num_ranks = 8;
  const auto r = run_simulation(cfg);
  EXPECT_EQ(r.per_rank[0].finish_time, r.runtime);
  for (topo::Rank i = 1; i < 8; ++i) {
    EXPECT_GT(r.per_rank[i].finish_time, r.runtime) << i;
  }
}

TEST(Termination, AllSessionsAccountedAtTermination) {
  // Ranks that never found work have exactly one session, open from t=0 to
  // their finish time.
  RunConfig cfg;
  cfg.tree.name = "stick";
  cfg.tree.root_seed = 1;
  cfg.tree.root_branching = 1;
  cfg.tree.q = 0.0;
  cfg.num_ranks = 4;
  const auto r = run_simulation(cfg);
  for (topo::Rank i = 1; i < 4; ++i) {
    EXPECT_EQ(r.per_rank[i].sessions, 1u);
    EXPECT_EQ(r.per_rank[i].total_session_time, r.per_rank[i].finish_time);
  }
}

TEST(Termination, TokenTrafficDoesNotDependOnTreeSize) {
  // Termination costs O(N) messages per probe round, not O(tree).
  RunConfig small_cfg;
  small_cfg.tree = uts::tree_by_name("TEST_BIN_TINY");
  small_cfg.num_ranks = 4;
  const auto small_run = run_simulation(small_cfg);

  RunConfig big_cfg = small_cfg;
  big_cfg.tree = uts::tree_by_name("TEST_BIN_SMALL");
  const auto big_run = run_simulation(big_cfg);

  // Both runs terminated; bigger tree means more steal traffic but the
  // protocol itself stays bounded (sanity: messages scale with work, not
  // explode).
  EXPECT_GT(big_run.network.messages, small_run.network.messages);
  EXPECT_LT(big_run.network.messages, 10 * big_run.nodes);
}

}  // namespace
}  // namespace dws::ws
