#include "ws/scheduler.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "uts/sequential.hpp"

namespace dws::ws {
namespace {

RunConfig base_config(const std::string& tree, topo::Rank ranks) {
  RunConfig cfg;
  cfg.tree = uts::tree_by_name(tree);
  cfg.num_ranks = ranks;
  return cfg;
}

TEST(Scheduler, SingleRankEnumeratesWholeTree) {
  auto cfg = base_config("TEST_BIN_SMALL", 1);
  const auto result = run_simulation(cfg);
  const auto seq = uts::enumerate_sequential(cfg.tree);
  EXPECT_EQ(result.nodes, seq.nodes);
  EXPECT_EQ(result.leaves, seq.leaves);
  // Alone, runtime is exactly nodes * node cost: speedup 1.
  EXPECT_EQ(result.runtime, result.sequential_time());
  EXPECT_DOUBLE_EQ(result.speedup(), 1.0);
  EXPECT_EQ(result.stats.failed_steals, 0u);
  EXPECT_EQ(result.stats.chunks_sent, 0u);
}

TEST(Scheduler, TwoRanksConserveNodeCount) {
  auto cfg = base_config("TEST_BIN_SMALL", 2);
  const auto result = run_simulation(cfg);
  EXPECT_EQ(result.nodes, uts::enumerate_sequential(cfg.tree).nodes);
  EXPECT_GT(result.per_rank[1].nodes_processed, 0u);  // work actually moved
  EXPECT_GT(result.stats.chunks_sent, 0u);
}

TEST(Scheduler, RunIsDeterministic) {
  auto cfg = base_config("TEST_BIN_SMALL", 8);
  cfg.ws.victim_policy = VictimPolicy::kRandom;
  const auto a = run_simulation(cfg);
  const auto b = run_simulation(cfg);
  EXPECT_EQ(a.runtime, b.runtime);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.stats.failed_steals, b.stats.failed_steals);
  EXPECT_EQ(a.engine_events, b.engine_events);
  for (std::size_t r = 0; r < a.per_rank.size(); ++r) {
    ASSERT_EQ(a.per_rank[r].nodes_processed, b.per_rank[r].nodes_processed);
  }
}

TEST(Scheduler, SeedChangesRandomScheduleButNotTotals) {
  auto cfg = base_config("TEST_BIN_SMALL", 8);
  cfg.ws.victim_policy = VictimPolicy::kRandom;
  cfg.ws.seed = 1;
  const auto a = run_simulation(cfg);
  cfg.ws.seed = 2;
  const auto b = run_simulation(cfg);
  EXPECT_EQ(a.nodes, b.nodes);  // same tree regardless of schedule
  EXPECT_NE(a.runtime, b.runtime);  // but a different interleaving
}

TEST(Scheduler, SpeedupGrowsWithRanks) {
  auto cfg = base_config("TEST_BIN_SMALL", 2);
  cfg.ws.victim_policy = VictimPolicy::kRandom;
  const auto two = run_simulation(cfg);
  cfg.num_ranks = 8;
  const auto eight = run_simulation(cfg);
  EXPECT_GT(two.speedup(), 1.2);
  EXPECT_GT(eight.speedup(), two.speedup());
}

TEST(Scheduler, TraceRecordsActivity) {
  auto cfg = base_config("TEST_BIN_TINY", 4);
  const auto result = run_simulation(cfg);
  ASSERT_EQ(result.trace.num_ranks(), 4u);
  EXPECT_EQ(result.trace.total_time, result.runtime);
  // Rank 0 began active at t = 0.
  EXPECT_EQ(result.trace.ranks[0].events()[0].phase, metrics::Phase::kIdle);
  ASSERT_GE(result.trace.ranks[0].events().size(), 2u);
  EXPECT_EQ(result.trace.ranks[0].events()[1].phase, metrics::Phase::kActive);
  EXPECT_EQ(result.trace.ranks[0].events()[1].time, 0);
  // Everyone idle at the end.
  for (const auto& t : result.trace.ranks) {
    EXPECT_EQ(t.phase_at_end(), metrics::Phase::kIdle);
  }
}

TEST(Scheduler, TraceDisabledLeavesTraceEmpty) {
  auto cfg = base_config("TEST_BIN_TINY", 4);
  cfg.ws.record_trace = false;
  const auto result = run_simulation(cfg);
  EXPECT_EQ(result.trace.num_ranks(), 0u);
}

TEST(Scheduler, SearchAndSessionStatsPopulated) {
  auto cfg = base_config("TEST_BIN_SMALL", 8);
  const auto result = run_simulation(cfg);
  EXPECT_GT(result.stats.sessions, 0u);
  EXPECT_GT(result.stats.mean_session_ms, 0.0);
  EXPECT_GT(result.stats.mean_search_time_s, 0.0);
  EXPECT_GE(result.stats.max_search_time_s, result.stats.mean_search_time_s);
  // Every rank has at least its initial session.
  for (topo::Rank r = 1; r < 8; ++r) {
    EXPECT_GE(result.per_rank[r].sessions, 1u) << r;
  }
}

TEST(Scheduler, GranularityScalesRuntime) {
  auto cfg = base_config("TEST_BIN_SMALL", 4);
  cfg.ws.sha_rounds = 1;
  const auto fine = run_simulation(cfg);
  cfg.ws.sha_rounds = 8;
  const auto coarse = run_simulation(cfg);
  // Same tree, ~8x the per-node compute.
  EXPECT_EQ(fine.nodes, coarse.nodes);
  EXPECT_GT(coarse.runtime, 4 * fine.runtime);
}

TEST(Scheduler, StealHalfMovesMoreChunksPerSteal) {
  auto cfg = base_config("TEST_BIN_SMALL", 8);
  cfg.ws.victim_policy = VictimPolicy::kRandom;
  cfg.ws.steal_amount = StealAmount::kOneChunk;
  const auto one = run_simulation(cfg);
  cfg.ws.steal_amount = StealAmount::kHalf;
  const auto half = run_simulation(cfg);
  const double one_ratio = static_cast<double>(one.stats.chunks_sent) /
                           static_cast<double>(one.stats.successful_steals);
  const double half_ratio = static_cast<double>(half.stats.chunks_sent) /
                            static_cast<double>(half.stats.successful_steals);
  EXPECT_DOUBLE_EQ(one_ratio, 1.0);
  EXPECT_GT(half_ratio, 1.0);
}

TEST(Scheduler, NetworkTrafficAccounted) {
  auto cfg = base_config("TEST_BIN_SMALL", 8);
  const auto result = run_simulation(cfg);
  EXPECT_GT(result.network.messages, 0u);
  EXPECT_GT(result.network.bytes, 0u);
  // At least: every steal attempt = request + response.
  EXPECT_GE(result.network.messages, 2 * result.stats.steal_attempts);
}

TEST(Scheduler, EightPerNodePlacementsRun) {
  for (auto placement : {topo::Placement::kRoundRobin, topo::Placement::kGrouped}) {
    auto cfg = base_config("TEST_BIN_SMALL", 16);
    cfg.placement = placement;
    cfg.procs_per_node = 8;
    const auto result = run_simulation(cfg);
    EXPECT_EQ(result.nodes, uts::enumerate_sequential(cfg.tree).nodes)
        << to_string(placement);
  }
}

/// The master correctness oracle (DESIGN.md §6 invariant 1-2): every
/// (tree, ranks, policy, amount, placement) combination processes exactly
/// the sequential node count — termination never drops in-flight work and
/// chunks never duplicate.
using OracleParam =
    std::tuple<const char*, topo::Rank, VictimPolicy, StealAmount,
               topo::Placement, std::uint32_t /*procs_per_node*/>;

class SchedulerOracle : public ::testing::TestWithParam<OracleParam> {};

TEST_P(SchedulerOracle, NodeCountMatchesSequential) {
  const auto& [tree, ranks, policy, amount, placement, ppn] = GetParam();
  RunConfig cfg;
  cfg.tree = uts::tree_by_name(tree);
  cfg.num_ranks = ranks;
  cfg.ws.victim_policy = policy;
  cfg.ws.steal_amount = amount;
  cfg.placement = placement;
  cfg.procs_per_node = ppn;
  const auto result = run_simulation(cfg);
  const auto seq = uts::enumerate_sequential(cfg.tree);
  EXPECT_EQ(result.nodes, seq.nodes);
  EXPECT_EQ(result.leaves, seq.leaves);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerOracle,
    ::testing::Values(
        OracleParam{"TEST_BIN_TINY", 2, VictimPolicy::kRoundRobin,
                    StealAmount::kOneChunk, topo::Placement::kOnePerNode, 1},
        OracleParam{"TEST_BIN_TINY", 13, VictimPolicy::kRandom,
                    StealAmount::kHalf, topo::Placement::kOnePerNode, 1},
        OracleParam{"TEST_BIN_SMALL", 4, VictimPolicy::kRoundRobin,
                    StealAmount::kOneChunk, topo::Placement::kOnePerNode, 1},
        OracleParam{"TEST_BIN_SMALL", 4, VictimPolicy::kRoundRobin,
                    StealAmount::kHalf, topo::Placement::kOnePerNode, 1},
        OracleParam{"TEST_BIN_SMALL", 7, VictimPolicy::kRandom,
                    StealAmount::kOneChunk, topo::Placement::kOnePerNode, 1},
        OracleParam{"TEST_BIN_SMALL", 16, VictimPolicy::kRandom,
                    StealAmount::kHalf, topo::Placement::kGrouped, 8},
        OracleParam{"TEST_BIN_SMALL", 16, VictimPolicy::kTofuSkewed,
                    StealAmount::kOneChunk, topo::Placement::kRoundRobin, 8},
        OracleParam{"TEST_BIN_SMALL", 32, VictimPolicy::kTofuSkewed,
                    StealAmount::kHalf, topo::Placement::kOnePerNode, 1},
        OracleParam{"TEST_BIN_WIDE", 8, VictimPolicy::kTofuSkewed,
                    StealAmount::kHalf, topo::Placement::kOnePerNode, 1},
        OracleParam{"TEST_GEO_EXP", 8, VictimPolicy::kRandom,
                    StealAmount::kHalf, topo::Placement::kOnePerNode, 1},
        OracleParam{"TEST_GEO_CYC", 6, VictimPolicy::kRoundRobin,
                    StealAmount::kOneChunk, topo::Placement::kOnePerNode, 1},
        OracleParam{"TEST_HYBRID", 12, VictimPolicy::kTofuSkewed,
                    StealAmount::kHalf, topo::Placement::kOnePerNode, 1}));

/// Same oracle across many seeds: shakes out rare interleavings in the
/// termination protocol (in-flight work when the token passes, etc).
class SchedulerSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerSeedSweep, ConservationHoldsForAnySeed) {
  RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_SMALL");
  cfg.num_ranks = 12;
  cfg.ws.victim_policy = VictimPolicy::kRandom;
  cfg.ws.steal_amount = StealAmount::kHalf;
  cfg.ws.seed = GetParam();
  const auto result = run_simulation(cfg);
  EXPECT_EQ(result.nodes, uts::enumerate_sequential(cfg.tree).nodes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerSeedSweep,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace dws::ws
