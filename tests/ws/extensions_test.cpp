#include <gtest/gtest.h>

#include <tuple>

#include "topo/latency.hpp"
#include "uts/sequential.hpp"
#include "ws/scheduler.hpp"
#include "ws/victim.hpp"

namespace dws::ws {
namespace {

/// Tests for the extension features beyond the paper's core experiments:
/// hierarchical victim selection (§VI related work), one-sided steals
/// (§VII future work) and lifeline-based idling (Saraswat et al.).

// --- Hierarchical selector ---

TEST(Hierarchical, LocalPeersAreCoLocatedRanks) {
  topo::TofuMachine machine;
  topo::JobLayout layout(machine, 64, topo::Placement::kGrouped, 8);
  topo::LatencyModel latency(layout);
  HierarchicalSelector s(0, latency, 1);
  EXPECT_EQ(s.local_peers(), 7u);  // the other 7 ranks on node 0
}

TEST(Hierarchical, FallsBackToCubePeersForOnePerNode) {
  topo::TofuMachine machine;
  topo::JobLayout layout(machine, 48, topo::Placement::kOnePerNode);
  topo::LatencyModel latency(layout);
  HierarchicalSelector s(0, latency, 1);
  EXPECT_EQ(s.local_peers(), 11u);  // the other 11 nodes of the cube
}

TEST(Hierarchical, NeverSelf) {
  topo::TofuMachine machine;
  topo::JobLayout layout(machine, 64, topo::Placement::kGrouped, 8);
  topo::LatencyModel latency(layout);
  HierarchicalSelector s(5, latency, 3);
  for (int i = 0; i < 5000; ++i) ASSERT_NE(s.next(), 5u);
}

TEST(Hierarchical, PrefersLocalOnSchedule) {
  topo::TofuMachine machine;
  topo::JobLayout layout(machine, 64, topo::Placement::kGrouped, 8);
  topo::LatencyModel latency(layout);
  HierarchicalSelector s(0, latency, 7, /*local_tries=*/2);
  int local = 0;
  const int draws = 9000;
  for (int i = 0; i < draws; ++i) {
    if (layout.same_node(0, s.next())) ++local;
  }
  // 2 of every 3 picks are forced local; the remote third sometimes also
  // lands locally (7/63 of the time).
  EXPECT_GT(local, draws * 60 / 100);
  EXPECT_LT(local, draws * 75 / 100);
}

TEST(Hierarchical, RemoteSetStrictlyExcludesLocalPeers) {
  // Regression: the remote fallback used to draw from all N-1 ranks, which
  // double-counted the local set and silently inflated the local fraction.
  topo::TofuMachine machine;
  topo::JobLayout layout(machine, 64, topo::Placement::kGrouped, 8);
  topo::LatencyModel latency(layout);
  HierarchicalSelector s(5, latency, 1);
  for (const topo::Rank r : s.remote_set()) {
    EXPECT_NE(r, 5u);
    EXPECT_FALSE(layout.same_node(5, r)) << r;
  }
  for (const topo::Rank r : s.local_set()) EXPECT_NE(r, 5u);
  // local + remote + self partition the job.
  EXPECT_EQ(s.local_set().size() + s.remote_set().size() + 1, 64u);
}

TEST(Hierarchical, MakeSelectorHonorsLocalTries) {
  // Regression: make_selector used to drop WsConfig::hierarchical_local_tries
  // and always build with the default. The schedule is deterministic (N local
  // picks, one remote pick, repeat) and remote picks exclude the local set,
  // so the local fraction is exactly tries/(tries+1).
  topo::TofuMachine machine;
  topo::JobLayout layout(machine, 64, topo::Placement::kGrouped, 8);
  topo::LatencyModel latency(layout);
  WsConfig cfg;
  cfg.victim_policy = VictimPolicy::kHierarchical;
  const auto local_fraction = [&](std::uint32_t tries) {
    cfg.hierarchical_local_tries = tries;
    auto s = make_selector(cfg, 0, latency);
    int local = 0;
    const int draws = 10000;
    for (int i = 0; i < draws; ++i) {
      if (layout.same_node(0, s->next())) ++local;
    }
    return static_cast<double>(local) / draws;
  };
  EXPECT_DOUBLE_EQ(local_fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(local_fraction(4), 0.8);
  EXPECT_DOUBLE_EQ(local_fraction(1), 0.5);
}

TEST(Hierarchical, MakeSelectorHonorsRemoteTries) {
  // The bounded-remote-tries knob widens the remote slot of the schedule:
  // local_tries local picks then remote_tries remote picks, so the local
  // fraction is exactly local/(local+remote).
  topo::TofuMachine machine;
  topo::JobLayout layout(machine, 64, topo::Placement::kGrouped, 8);
  topo::LatencyModel latency(layout);
  WsConfig cfg;
  cfg.victim_policy = VictimPolicy::kHierarchical;
  cfg.hierarchical_local_tries = 2;
  const auto local_fraction = [&](std::uint32_t remote) {
    cfg.hierarchical_remote_tries = remote;
    auto s = make_selector(cfg, 0, latency);
    int local = 0;
    const int draws = 12000;
    for (int i = 0; i < draws; ++i) {
      if (layout.same_node(0, s->next())) ++local;
    }
    return static_cast<double>(local) / draws;
  };
  EXPECT_DOUBLE_EQ(local_fraction(1), 2.0 / 3.0);  // the historical schedule
  EXPECT_DOUBLE_EQ(local_fraction(2), 0.5);
  EXPECT_DOUBLE_EQ(local_fraction(6), 0.25);
}

TEST(Hierarchical, RemotePhaseCoversAllRanks) {
  topo::TofuMachine machine;
  topo::JobLayout layout(machine, 32, topo::Placement::kOnePerNode);
  topo::LatencyModel latency(layout);
  HierarchicalSelector s(0, latency, 11);
  std::vector<bool> seen(32, false);
  for (int i = 0; i < 20000; ++i) seen[s.next()] = true;
  for (topo::Rank r = 1; r < 32; ++r) EXPECT_TRUE(seen[r]) << r;
}

// --- Full-run conservation across every extension config ---

using ExtParam = std::tuple<VictimPolicy, StealAmount, IdlePolicy, bool>;

class ExtensionOracle : public ::testing::TestWithParam<ExtParam> {};

TEST_P(ExtensionOracle, ConservesNodeCount) {
  const auto& [policy, amount, idle, one_sided] = GetParam();
  RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_SMALL");
  cfg.num_ranks = 16;
  cfg.ws.victim_policy = policy;
  cfg.ws.steal_amount = amount;
  cfg.ws.idle_policy = idle;
  cfg.ws.one_sided_steals = one_sided;
  cfg.ws.lifeline_tries = 3;
  const auto result = run_simulation(cfg);
  EXPECT_EQ(result.nodes, uts::enumerate_sequential(cfg.tree).nodes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExtensionOracle,
    ::testing::Combine(
        ::testing::Values(VictimPolicy::kRandom, VictimPolicy::kTofuSkewed,
                          VictimPolicy::kHierarchical,
                          VictimPolicy::kAdaptive),
        ::testing::Values(StealAmount::kOneChunk, StealAmount::kHalf),
        ::testing::Values(IdlePolicy::kPersistentSteal, IdlePolicy::kLifeline),
        ::testing::Bool()));

// --- Lifeline behaviour ---

TEST(Lifeline, RegistrationsAndPushesHappen) {
  RunConfig cfg;
  cfg.tree = uts::tree_by_name("SIM200K");
  cfg.num_ranks = 64;
  cfg.ws.victim_policy = VictimPolicy::kRandom;
  cfg.ws.idle_policy = IdlePolicy::kLifeline;
  cfg.ws.lifeline_tries = 2;
  const auto result = run_simulation(cfg);
  std::uint64_t registrations = 0;
  std::uint64_t pushes = 0;
  for (const auto& r : result.per_rank) {
    registrations += r.lifeline_registrations;
    pushes += r.lifeline_pushes;
  }
  EXPECT_GT(registrations, 0u);
  EXPECT_GT(pushes, 0u);
}

TEST(Lifeline, CutsSteadyStateStealTraffic) {
  // Dormant ranks stop hammering victims: failed steals drop vs persistent
  // stealing on the same configuration.
  RunConfig cfg;
  cfg.tree = uts::tree_by_name("SIM200K");
  cfg.num_ranks = 128;
  cfg.ws.victim_policy = VictimPolicy::kRandom;
  cfg.ws.chunk_size = 4;
  cfg.ws.idle_policy = IdlePolicy::kPersistentSteal;
  const auto persistent = run_simulation(cfg);
  cfg.ws.idle_policy = IdlePolicy::kLifeline;
  cfg.ws.lifeline_tries = 4;
  const auto lifeline = run_simulation(cfg);
  EXPECT_LT(lifeline.stats.failed_steals, persistent.stats.failed_steals / 2);
  EXPECT_EQ(lifeline.nodes, persistent.nodes);
}

TEST(Lifeline, NoLifelinesDegeneratesToTwoRanks) {
  // N = 2: the single lifeline buddy is the only victim anyway; the run must
  // still terminate and conserve.
  RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_TINY");
  cfg.num_ranks = 2;
  cfg.ws.idle_policy = IdlePolicy::kLifeline;
  cfg.ws.lifeline_tries = 1;
  const auto result = run_simulation(cfg);
  EXPECT_EQ(result.nodes, uts::enumerate_sequential(cfg.tree).nodes);
}

TEST(Lifeline, SurvivesStarvedEnding) {
  // Star tree: after the initial burst there is never surplus again, so
  // dormant ranks must be released purely by termination.
  RunConfig cfg;
  cfg.tree.name = "star";
  cfg.tree.root_seed = 4;
  cfg.tree.root_branching = 40;
  cfg.tree.q = 0.0;
  cfg.num_ranks = 24;
  cfg.ws.idle_policy = IdlePolicy::kLifeline;
  cfg.ws.lifeline_tries = 1;
  const auto result = run_simulation(cfg);
  EXPECT_EQ(result.nodes, 41u);
}

// --- Steal-distance metric ---

TEST(StealDistance, TofuStealsNearerThanRand) {
  // The mechanism behind the paper's fix, measured directly: under the
  // skewed selection, successful steals travel a shorter physical distance.
  auto mean_distance = [](VictimPolicy policy) {
    RunConfig cfg;
    cfg.tree = uts::tree_by_name("SIM200K");
    cfg.num_ranks = 128;
    cfg.ws.chunk_size = 4;
    cfg.ws.victim_policy = policy;
    cfg.ws.steal_amount = StealAmount::kHalf;
    const auto r = run_simulation(cfg);
    EXPECT_GT(r.stats.successful_steals, 0u);
    return r.stats.mean_steal_distance;
  };
  const double tofu = mean_distance(VictimPolicy::kTofuSkewed);
  const double rand = mean_distance(VictimPolicy::kRandom);
  // Successful steals concentrate around work sources under *both* policies
  // (work lives somewhere specific), so at this small scale the contrast is
  // modest but strictly ordered; it widens with the allocation's diameter
  // (see bench/extension_strategies). Both runs are deterministic.
  EXPECT_LT(tofu, rand);
}

TEST(StealDistance, ZeroWithoutSteals) {
  RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_TINY");
  cfg.num_ranks = 1;
  const auto r = run_simulation(cfg);
  EXPECT_DOUBLE_EQ(r.stats.mean_steal_distance, 0.0);
}

// --- One-sided steals ---

TEST(OneSided, ConservesAndTerminates) {
  RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_SMALL");
  cfg.num_ranks = 12;
  cfg.ws.one_sided_steals = true;
  const auto result = run_simulation(cfg);
  EXPECT_EQ(result.nodes, uts::enumerate_sequential(cfg.tree).nodes);
}

TEST(OneSided, ShortensSearchTime) {
  // Requests no longer wait for the victim's poll boundary: the average
  // steal round trip (and with it the search time) shrinks.
  RunConfig cfg;
  cfg.tree = uts::tree_by_name("SIM200K");
  cfg.num_ranks = 64;
  cfg.ws.victim_policy = VictimPolicy::kRandom;
  cfg.ws.chunk_size = 4;
  cfg.ws.one_sided_steals = false;
  const auto two_sided = run_simulation(cfg);
  cfg.ws.one_sided_steals = true;
  const auto one_sided = run_simulation(cfg);
  EXPECT_LT(one_sided.stats.mean_search_time_s, two_sided.stats.mean_search_time_s);
  EXPECT_EQ(one_sided.nodes, two_sided.nodes);
}

TEST(OneSided, HelpsRuntimeAtScale) {
  RunConfig cfg;
  cfg.tree = uts::tree_by_name("SIM200K");
  cfg.num_ranks = 128;
  cfg.ws.victim_policy = VictimPolicy::kRandom;
  cfg.ws.chunk_size = 4;
  const auto two_sided = run_simulation(cfg);
  cfg.ws.one_sided_steals = true;
  const auto one_sided = run_simulation(cfg);
  EXPECT_LE(one_sided.runtime, two_sided.runtime);
}

}  // namespace
}  // namespace dws::ws
