#include "ws/victim.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "uts/params.hpp"
#include "ws/scheduler.hpp"

namespace dws::ws {
namespace {

class VictimTest : public ::testing::Test {
 protected:
  topo::TofuMachine machine_;
};

TEST_F(VictimTest, RoundRobinStartsAtNeighbour) {
  RoundRobinSelector s(3, 8);
  EXPECT_EQ(s.next(), 4u);
  EXPECT_EQ(s.next(), 5u);
  EXPECT_EQ(s.next(), 6u);
  EXPECT_EQ(s.next(), 7u);
  EXPECT_EQ(s.next(), 0u);
  EXPECT_EQ(s.next(), 1u);
  EXPECT_EQ(s.next(), 2u);
  // Skips self and wraps.
  EXPECT_EQ(s.next(), 4u);
}

TEST_F(VictimTest, RoundRobinLastRankWrapsToZero) {
  RoundRobinSelector s(7, 8);
  EXPECT_EQ(s.next(), 0u);
  EXPECT_EQ(s.next(), 1u);
}

TEST_F(VictimTest, RoundRobinNeverReturnsSelf) {
  RoundRobinSelector s(2, 4);
  for (int i = 0; i < 100; ++i) EXPECT_NE(s.next(), 2u);
}

TEST_F(VictimTest, RoundRobinTwoRanks) {
  RoundRobinSelector s(0, 2);
  EXPECT_EQ(s.next(), 1u);
  EXPECT_EQ(s.next(), 1u);
}

TEST_F(VictimTest, UniformNeverReturnsSelfAndCoversAll) {
  UniformRandomSelector s(5, 16, 42);
  std::set<topo::Rank> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = s.next();
    ASSERT_NE(v, 5u);
    ASSERT_LT(v, 16u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 15u);
}

TEST_F(VictimTest, UniformIsRoughlyUniform) {
  UniformRandomSelector s(0, 8, 1);
  std::map<topo::Rank, int> counts;
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) ++counts[s.next()];
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(count, draws / 7.0, draws / 7.0 * 0.06) << rank;
  }
}

TEST_F(VictimTest, UniformDifferentRanksGetDifferentStreams) {
  UniformRandomSelector a(0, 1024, 7);
  UniformRandomSelector b(1, 1024, 7);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST_F(VictimTest, TofuSelectorUsesAliasTableBelowThreshold) {
  topo::JobLayout layout(machine_, 64, topo::Placement::kOnePerNode);
  topo::LatencyModel latency(layout);
  TofuSkewedSelector s(0, latency, 1, 2048);
  EXPECT_TRUE(s.uses_alias_table());
}

TEST_F(VictimTest, TofuSelectorUsesRejectionAboveThreshold) {
  topo::JobLayout layout(machine_, 64, topo::Placement::kOnePerNode);
  topo::LatencyModel latency(layout);
  TofuSkewedSelector s(0, latency, 1, 32);
  EXPECT_FALSE(s.uses_alias_table());
}

TEST_F(VictimTest, TofuNeverReturnsSelf) {
  topo::JobLayout layout(machine_, 48, topo::Placement::kOnePerNode);
  topo::LatencyModel latency(layout);
  for (std::uint32_t threshold : {2048u, 8u}) {
    TofuSkewedSelector s(7, latency, 3, threshold);
    for (int i = 0; i < 5000; ++i) ASSERT_NE(s.next(), 7u);
  }
}

TEST_F(VictimTest, TofuProbabilitiesSumToOne) {
  topo::JobLayout layout(machine_, 96, topo::Placement::kOnePerNode);
  topo::LatencyModel latency(layout);
  TofuSkewedSelector s(0, latency, 1, 2048);
  double sum = 0.0;
  for (topo::Rank j = 0; j < 96; ++j) sum += s.probability(j);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.probability(0), 0.0);
}

TEST_F(VictimTest, TofuPrefersCloseVictims) {
  topo::JobLayout layout(machine_, 1024, topo::Placement::kOnePerNode);
  topo::LatencyModel latency(layout);
  TofuSkewedSelector s(0, latency, 1, 2048);
  // Rank 1 shares the cube with rank 0; rank 1023 is across the allocation.
  EXPECT_GT(s.probability(1), s.probability(1023));
  // Empirically: nearby ranks drawn far more often.
  std::uint64_t near = 0;
  std::uint64_t far = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto v = s.next();
    if (latency.euclidean(0, v) <= 2.0) ++near;
    if (latency.euclidean(0, v) >= 6.0) ++far;
  }
  EXPECT_GT(near, far);
}

TEST_F(VictimTest, TofuSampleFrequenciesMatchProbabilities) {
  topo::JobLayout layout(machine_, 48, topo::Placement::kOnePerNode);
  topo::LatencyModel latency(layout);
  TofuSkewedSelector s(3, latency, 9, 2048);
  std::vector<int> counts(48, 0);
  const int draws = 480000;
  for (int i = 0; i < draws; ++i) ++counts[s.next()];
  for (topo::Rank j = 0; j < 48; ++j) {
    const double expected = s.probability(j) * draws;
    EXPECT_NEAR(counts[j], expected, 5.0 * std::sqrt(expected + 1.0)) << j;
  }
}

/// The load-bearing equivalence for DESIGN.md's substitution: the alias and
/// rejection backends draw from the same distribution.
TEST_F(VictimTest, AliasAndRejectionBackendsAgree) {
  topo::JobLayout layout(machine_, 96, topo::Placement::kOnePerNode);
  topo::LatencyModel latency(layout);
  TofuSkewedSelector alias(0, latency, 11, 2048);
  TofuSkewedSelector rejection(0, latency, 12, 8);
  ASSERT_TRUE(alias.uses_alias_table());
  ASSERT_FALSE(rejection.uses_alias_table());
  std::vector<int> ca(96, 0);
  std::vector<int> cr(96, 0);
  const int draws = 480000;
  for (int i = 0; i < draws; ++i) {
    ++ca[alias.next()];
    ++cr[rejection.next()];
  }
  for (topo::Rank j = 1; j < 96; ++j) {
    const double e = alias.probability(j) * draws;
    EXPECT_NEAR(ca[j], e, 5.0 * std::sqrt(e + 1.0)) << j;
    EXPECT_NEAR(cr[j], e, 5.0 * std::sqrt(e + 1.0)) << j;
  }
}

TEST_F(VictimTest, TofuSameNodeRanksGetWeightOne) {
  // With 8 ranks per node grouped, ranks 1..7 are co-located with rank 0:
  // e = 0 -> w = 1, the paper's special case.
  topo::JobLayout layout(machine_, 64, topo::Placement::kGrouped, 8);
  topo::LatencyModel latency(layout);
  TofuSkewedSelector s(0, latency, 5, 2048);
  // All co-located ranks share the maximal probability.
  const double p1 = s.probability(1);
  for (topo::Rank j = 2; j < 8; ++j) EXPECT_DOUBLE_EQ(s.probability(j), p1);
  for (topo::Rank j = 8; j < 64; ++j) EXPECT_LE(s.probability(j), p1);
}

TEST_F(VictimTest, FactoryBuildsConfiguredPolicy) {
  topo::JobLayout layout(machine_, 16, topo::Placement::kOnePerNode);
  topo::LatencyModel latency(layout);
  WsConfig cfg;
  cfg.victim_policy = VictimPolicy::kRoundRobin;
  auto rr = make_selector(cfg, 2, latency);
  EXPECT_EQ(rr->next(), 3u);
  cfg.victim_policy = VictimPolicy::kRandom;
  auto rnd = make_selector(cfg, 2, latency);
  for (int i = 0; i < 50; ++i) EXPECT_NE(rnd->next(), 2u);
  cfg.victim_policy = VictimPolicy::kTofuSkewed;
  auto tofu = make_selector(cfg, 2, latency);
  for (int i = 0; i < 50; ++i) EXPECT_NE(tofu->next(), 2u);
}

/// Regression for the alias/rejection substitution at run level: two
/// thresholds that resolve to the SAME backend must replay the exact same
/// schedule — the threshold itself is not allowed to perturb anything.
TEST_F(VictimTest, SameTofuBackendIsRunLevelDeterministic) {
  ws::RunConfig base;
  base.tree = uts::tree_by_name("TEST_BIN_SMALL");
  base.num_ranks = 8;
  base.ws.chunk_size = 4;
  base.ws.victim_policy = VictimPolicy::kTofuSkewed;
  base.placement = topo::Placement::kOnePerNode;
  base.procs_per_node = 1;

  ws::RunConfig a = base;
  a.ws.alias_table_max_ranks = 16;
  ws::RunConfig b = base;
  b.ws.alias_table_max_ranks = 1024;
  ASSERT_TRUE(tofu_uses_alias(a.ws, a.num_ranks));
  ASSERT_TRUE(tofu_uses_alias(b.ws, b.num_ranks));

  const RunResult ra = run_simulation(a);
  const RunResult rb = run_simulation(b);
  EXPECT_EQ(ra.runtime, rb.runtime);
  EXPECT_EQ(ra.nodes, rb.nodes);
  EXPECT_EQ(ra.stats.successful_steals, rb.stats.successful_steals);
  EXPECT_EQ(ra.stats.failed_steals, rb.stats.failed_steals);

  // The rejection backend samples the same distribution but with a different
  // draw stream; the run must still conserve the tree exactly.
  ws::RunConfig c = base;
  c.ws.alias_table_max_ranks = 4;
  ASSERT_FALSE(tofu_uses_alias(c.ws, c.num_ranks));
  EXPECT_EQ(run_simulation(c).nodes, ra.nodes);
}

TEST_F(VictimTest, PolicyNamesMatchPaper) {
  EXPECT_STREQ(to_string(VictimPolicy::kRoundRobin), "Reference");
  EXPECT_STREQ(to_string(VictimPolicy::kRandom), "Rand");
  EXPECT_STREQ(to_string(VictimPolicy::kTofuSkewed), "Tofu");
  EXPECT_STREQ(to_string(VictimPolicy::kAdaptive), "Adaptive");
  EXPECT_STREQ(to_string(StealAmount::kHalf), "Half");
}

// ---------------------------------------------------------------------------
// Adaptive feedback selector (DESIGN.md §14)
// ---------------------------------------------------------------------------

TEST_F(VictimTest, AdaptiveNeverReturnsSelfOnEitherBackend) {
  topo::JobLayout layout(machine_, 48, topo::Placement::kOnePerNode);
  topo::LatencyModel latency(layout);
  WsConfig cfg;
  cfg.victim_policy = VictimPolicy::kAdaptive;
  for (std::uint32_t threshold : {2048u, 1u}) {
    cfg.alias_table_max_ranks = threshold;
    AdaptiveSkewedSelector s(7, latency, 3, cfg);
    EXPECT_EQ(s.uses_alias_table(), threshold == 2048u);
    for (int i = 0; i < 5000; ++i) ASSERT_NE(s.next(), 7u);
  }
}

TEST_F(VictimTest, AdaptiveDownWeightsVictimsThatStopResponding) {
  topo::JobLayout layout(machine_, 64, topo::Placement::kOnePerNode);
  topo::LatencyModel latency(layout);
  WsConfig cfg;
  cfg.victim_policy = VictimPolicy::kAdaptive;
  cfg.adapt_refresh_interval = 1;  // alias table tracks every feedback step
  AdaptiveSkewedSelector s(0, latency, 1, cfg);

  const double p_before = s.probability(1);
  // Victim 1 times out repeatedly at 50 µs while victim 2 (same distance
  // class) keeps answering at the fabric round trip.
  for (int i = 0; i < 12; ++i) {
    s.on_steal_result(1, false, 50'000);
    s.on_steal_result(2, true, 1'000);
  }
  EXPECT_LT(s.probability(1), p_before);
  EXPECT_GT(s.probability(2), s.probability(1));

  double success_ewma = 0.0;
  double rtt_ewma = 0.0;
  ASSERT_TRUE(s.ewma_snapshot(1, &success_ewma, &rtt_ewma));
  EXPECT_LT(success_ewma, 0.05);  // 0.75^12
  EXPECT_GT(rtt_ewma, 40'000.0);
  // Feedback-free ranks and self stay out of the snapshot surface.
  EXPECT_FALSE(s.ewma_snapshot(0, &success_ewma, &rtt_ewma));
  EXPECT_TRUE(s.ewma_snapshot(63, &success_ewma, &rtt_ewma));
  EXPECT_DOUBLE_EQ(success_ewma, 1.0);  // optimistic init, never tried
}

TEST_F(VictimTest, AdaptiveFeedbackStateIsBackendIndependent) {
  // The EWMA state is a pure function of the feedback sequence: the alias
  // and rejection backends — different draw streams — must hold identical
  // snapshots and identical live probabilities after the same history.
  topo::JobLayout layout(machine_, 64, topo::Placement::kOnePerNode);
  topo::LatencyModel latency(layout);
  WsConfig cfg;
  cfg.victim_policy = VictimPolicy::kAdaptive;
  cfg.alias_table_max_ranks = 2048;
  AdaptiveSkewedSelector alias(3, latency, 7, cfg);
  cfg.alias_table_max_ranks = 1;
  AdaptiveSkewedSelector rejection(3, latency, 7, cfg);
  ASSERT_TRUE(alias.uses_alias_table());
  ASSERT_FALSE(rejection.uses_alias_table());

  for (int i = 0; i < 200; ++i) {
    const topo::Rank victim = (i * 13 + 1) % 64 == 3 ? 5 : (i * 13 + 1) % 64;
    const bool success = i % 3 != 0;
    const support::SimTime rtt = 500 + 37 * (i % 11);
    alias.on_steal_result(victim, success, rtt);
    rejection.on_steal_result(victim, success, rtt);
  }
  for (topo::Rank j = 0; j < 64; ++j) {
    EXPECT_DOUBLE_EQ(alias.probability(j), rejection.probability(j)) << j;
    double sa = 0.0, ra = 0.0, sr = 0.0, rr = 0.0;
    const bool ha = alias.ewma_snapshot(j, &sa, &ra);
    const bool hr = rejection.ewma_snapshot(j, &sr, &rr);
    ASSERT_EQ(ha, hr) << j;
    if (ha) {
      EXPECT_DOUBLE_EQ(sa, sr) << j;
      EXPECT_DOUBLE_EQ(ra, rr) << j;
    }
  }
}

TEST_F(VictimTest, AdaptiveSampleFrequenciesTrackTheLiveWeights) {
  // With refresh_interval = 1 the alias table is rebuilt on every feedback,
  // so both backends must sample the live probability() distribution even
  // after the weights have been skewed away from the Tofu base.
  topo::JobLayout layout(machine_, 48, topo::Placement::kOnePerNode);
  topo::LatencyModel latency(layout);
  WsConfig cfg;
  cfg.victim_policy = VictimPolicy::kAdaptive;
  cfg.adapt_refresh_interval = 1;
  for (std::uint32_t threshold : {2048u, 1u}) {
    cfg.alias_table_max_ranks = threshold;
    AdaptiveSkewedSelector s(3, latency, 9, cfg);
    for (int i = 0; i < 8; ++i) {
      s.on_steal_result(1, false, 50'000);
      s.on_steal_result(10, true, 800);
    }
    std::vector<int> counts(48, 0);
    const int draws = 480000;
    for (int i = 0; i < draws; ++i) ++counts[s.next()];
    for (topo::Rank j = 0; j < 48; ++j) {
      const double expected = s.probability(j) * draws;
      EXPECT_NEAR(counts[j], expected, 5.0 * std::sqrt(expected + 1.0))
          << "threshold=" << threshold << " victim=" << j;
    }
  }
}

TEST_F(VictimTest, FactoryBuildsAdaptiveSelector) {
  topo::JobLayout layout(machine_, 16, topo::Placement::kOnePerNode);
  topo::LatencyModel latency(layout);
  WsConfig cfg;
  cfg.victim_policy = VictimPolicy::kAdaptive;
  auto s = make_selector(cfg, 2, latency);
  for (int i = 0; i < 50; ++i) EXPECT_NE(s->next(), 2u);
  // The factory product carries the feedback seam, not just the base class.
  s->on_steal_result(1, false, 10'000);
  double success_ewma = 0.0;
  double rtt_ewma = 0.0;
  EXPECT_TRUE(s->ewma_snapshot(1, &success_ewma, &rtt_ewma));
  EXPECT_DOUBLE_EQ(success_ewma, 1.0 - cfg.adapt_decay);
  EXPECT_DOUBLE_EQ(rtt_ewma, 10'000.0);
}

}  // namespace
}  // namespace dws::ws
