#include "ws/chunk_stack.hpp"

#include <gtest/gtest.h>

#include "crypto/uts_rng.hpp"

namespace dws::ws {
namespace {

uts::TreeNode node(std::uint32_t tag) {
  uts::TreeNode n;
  n.rng = crypto::UtsRng::from_seed(tag);
  n.height = tag;
  return n;
}

TEST(ChunkStack, StartsEmpty) {
  ChunkStack s(20);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.num_chunks(), 0u);
  EXPECT_EQ(s.stealable_chunks(), 0u);
  EXPECT_FALSE(s.pop().has_value());
}

TEST(ChunkStack, PushPopIsLifo) {
  ChunkStack s(4);
  for (std::uint32_t i = 0; i < 6; ++i) s.push(node(i));
  for (std::uint32_t i = 6; i-- > 0;) {
    const auto n = s.pop();
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(n->height, i);
  }
  EXPECT_TRUE(s.empty());
}

TEST(ChunkStack, ChunksFillToCapacity) {
  ChunkStack s(4);
  for (std::uint32_t i = 0; i < 4; ++i) s.push(node(i));
  EXPECT_EQ(s.num_chunks(), 1u);
  s.push(node(4));
  EXPECT_EQ(s.num_chunks(), 2u);
  for (std::uint32_t i = 0; i < 7; ++i) s.push(node(5 + i));
  EXPECT_EQ(s.num_chunks(), 3u);
  EXPECT_EQ(s.size(), 12u);
}

TEST(ChunkStack, PrivateChunkNeverStealable) {
  // The §II-A rule: one (even full) chunk -> nothing to steal.
  ChunkStack s(4);
  for (std::uint32_t i = 0; i < 4; ++i) s.push(node(i));
  EXPECT_EQ(s.num_chunks(), 1u);
  EXPECT_EQ(s.stealable_chunks(), 0u);
  EXPECT_EQ(s.chunks_for_steal(false), 0u);
  EXPECT_EQ(s.chunks_for_steal(true), 0u);
  s.push(node(4));
  EXPECT_EQ(s.stealable_chunks(), 1u);
}

TEST(ChunkStack, StealTakesOldestChunks) {
  ChunkStack s(2);
  for (std::uint32_t i = 0; i < 6; ++i) s.push(node(i));  // chunks {0,1}{2,3}{4,5}
  auto stolen = s.steal(1);
  ASSERT_EQ(stolen.size(), 1u);
  ASSERT_EQ(stolen[0].size(), 2u);
  EXPECT_EQ(stolen[0][0].height, 0u);
  EXPECT_EQ(stolen[0][1].height, 1u);
  // Local LIFO order is unaffected.
  EXPECT_EQ(s.pop()->height, 5u);
  EXPECT_EQ(s.size(), 3u);
}

TEST(ChunkStack, StealHalfPolicy) {
  ChunkStack s(2);
  for (std::uint32_t i = 0; i < 14; ++i) s.push(node(i));  // 7 chunks
  EXPECT_EQ(s.stealable_chunks(), 6u);
  EXPECT_EQ(s.chunks_for_steal(true), 3u);   // half of stealable
  EXPECT_EQ(s.chunks_for_steal(false), 1u);  // reference: one chunk
}

TEST(ChunkStack, StealHalfOfOneStealableIsOne) {
  ChunkStack s(2);
  for (std::uint32_t i = 0; i < 4; ++i) s.push(node(i));  // 2 chunks
  EXPECT_EQ(s.stealable_chunks(), 1u);
  EXPECT_EQ(s.chunks_for_steal(true), 1u);  // max(1, 1/2)
}

TEST(ChunkStack, SizeTracksAcrossOperations) {
  ChunkStack s(3);
  for (std::uint32_t i = 0; i < 10; ++i) s.push(node(i));
  EXPECT_EQ(s.size(), 10u);
  (void)s.pop();
  EXPECT_EQ(s.size(), 9u);
  const auto stolen = s.steal(2);
  EXPECT_EQ(s.size(), 3u);
  std::size_t stolen_nodes = 0;
  for (const auto& c : stolen) stolen_nodes += c.size();
  EXPECT_EQ(stolen_nodes, 6u);
}

TEST(ChunkStack, InstallMakesThiefStealable) {
  // The §IV-C effect: receiving several chunks leaves the thief itself
  // immediately stealable.
  ChunkStack victim(2);
  for (std::uint32_t i = 0; i < 8; ++i) victim.push(node(i));
  ChunkStack thief(2);
  thief.install(victim.steal(2));
  EXPECT_EQ(thief.size(), 4u);
  EXPECT_EQ(thief.num_chunks(), 2u);
  EXPECT_EQ(thief.stealable_chunks(), 1u);
}

TEST(ChunkStack, InstallSingleChunkIsPrivate) {
  ChunkStack victim(2);
  for (std::uint32_t i = 0; i < 6; ++i) victim.push(node(i));
  ChunkStack thief(2);
  thief.install(victim.steal(1));
  EXPECT_EQ(thief.stealable_chunks(), 0u);
}

TEST(ChunkStack, PopAfterInstallReadsStolenNodes) {
  ChunkStack victim(2);
  for (std::uint32_t i = 0; i < 6; ++i) victim.push(node(i));
  ChunkStack thief(2);
  thief.install(victim.steal(1));  // chunk {0, 1}
  EXPECT_EQ(thief.pop()->height, 1u);
  EXPECT_EQ(thief.pop()->height, 0u);
  EXPECT_TRUE(thief.empty());
}

TEST(ChunkStack, PushAfterPartialPopReusesTopChunk) {
  ChunkStack s(4);
  for (std::uint32_t i = 0; i < 5; ++i) s.push(node(i));  // chunks {0..3}{4}
  (void)s.pop();                                          // {0..3}
  EXPECT_EQ(s.num_chunks(), 1u);
  s.push(node(9));  // new chunk again
  EXPECT_EQ(s.num_chunks(), 2u);
  EXPECT_EQ(s.pop()->height, 9u);
}

TEST(ChunkStack, InstallSplitsOversizedChunks) {
  // Chunks arriving from a victim with a bigger chunk_size must be split to
  // the local capacity, not installed oversized (which would make num_chunks
  // lie to the steal accounting).
  ChunkStack victim(10);
  for (std::uint32_t i = 0; i < 20; ++i) victim.push(node(i));
  ChunkStack thief(4);
  thief.install(victim.steal(1));  // one 10-node chunk into capacity-4 chunks
  EXPECT_EQ(thief.size(), 10u);
  EXPECT_EQ(thief.num_chunks(), 3u);  // 4 + 4 + 2
  // Pop order still walks the stolen chunk top-down.
  for (std::uint32_t i = 10; i-- > 0;) {
    const auto n = thief.pop();
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(n->height, i);
  }
  EXPECT_TRUE(thief.empty());
}

TEST(ChunkStack, InstallSplitKeepsThiefStealable) {
  ChunkStack victim(8);
  for (std::uint32_t i = 0; i < 16; ++i) victim.push(node(i));
  ChunkStack thief(2);
  thief.install(victim.steal(1));  // 8 nodes -> 4 local chunks
  EXPECT_EQ(thief.num_chunks(), 4u);
  EXPECT_EQ(thief.stealable_chunks(), 3u);
}

TEST(ChunkStack, NoNodesLostAcrossMixedWorkload) {
  ChunkStack s(5);
  std::size_t live = 0;
  std::size_t pushed = 0;
  std::size_t popped = 0;
  std::size_t stolen = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 7; ++i) {
      s.push(node(static_cast<std::uint32_t>(pushed++)));
      ++live;
    }
    if (s.pop().has_value()) {
      ++popped;
      --live;
    }
    if (s.stealable_chunks() > 1) {
      for (const auto& c : s.steal(s.stealable_chunks() / 2)) {
        stolen += c.size();
        live -= c.size();
      }
    }
    ASSERT_EQ(s.size(), live);
  }
  EXPECT_EQ(pushed, popped + stolen + s.size());
}

}  // namespace
}  // namespace dws::ws
