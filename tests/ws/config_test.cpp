#include "ws/config.hpp"

#include <gtest/gtest.h>

#include "ws/scheduler.hpp"

namespace dws::ws {
namespace {

TEST(WsConfig, DefaultsMatchThePaper) {
  const WsConfig cfg;
  EXPECT_EQ(cfg.chunk_size, 20u);  // "the default one of 20 nodes per chunk"
  EXPECT_EQ(cfg.victim_policy, VictimPolicy::kRoundRobin);  // reference UTS
  EXPECT_EQ(cfg.steal_amount, StealAmount::kOneChunk);
  EXPECT_EQ(cfg.sha_rounds, 1u);  // "a single round of SHA"
  EXPECT_EQ(cfg.idle_policy, IdlePolicy::kPersistentSteal);
  EXPECT_FALSE(cfg.one_sided_steals);
}

TEST(WsConfig, NodeCostCalibratedTo970kNodesPerSecond) {
  // Paper §V-B: "UTS is able to process an average of 970000 nodes per
  // second" on the K Computer. 1/970000 s = 1031 ns; ours is 1030.
  const WsConfig cfg;
  EXPECT_EQ(cfg.node_cost(), 1030);
  const double nodes_per_second = 1e9 / static_cast<double>(cfg.node_cost());
  EXPECT_NEAR(nodes_per_second, 970000.0, 970000.0 * 0.01);
}

TEST(WsConfig, NodeCostScalesWithShaRounds) {
  WsConfig cfg;
  const auto one = cfg.node_cost();
  cfg.sha_rounds = 24;
  const auto twenty_four = cfg.node_cost();
  EXPECT_EQ(twenty_four, cfg.node_overhead + 24 * cfg.sha_round_cost);
  EXPECT_GT(twenty_four, 20 * one / 2);
}

TEST(RunConfig, EnableCongestionScalesWithNodes) {
  RunConfig cfg;
  cfg.num_ranks = 1024;
  cfg.procs_per_node = 1;
  cfg.enable_congestion(1.0);
  EXPECT_TRUE(cfg.congestion.enabled);
  EXPECT_DOUBLE_EQ(cfg.congestion.capacity_hops, 5.0 * 1024.0);

  // 8 ranks per node: same rank count, 1/8 the nodes, 1/8 the links.
  cfg.procs_per_node = 8;
  cfg.enable_congestion(1.0);
  EXPECT_DOUBLE_EQ(cfg.congestion.capacity_hops, 5.0 * 128.0);

  cfg.enable_congestion(2.0);
  EXPECT_DOUBLE_EQ(cfg.congestion.capacity_hops, 2.0 * 5.0 * 128.0);
}

TEST(ConfigNames, AllEnumsPrintable) {
  EXPECT_STREQ(to_string(IdlePolicy::kPersistentSteal), "PersistentSteal");
  EXPECT_STREQ(to_string(IdlePolicy::kLifeline), "Lifeline");
  EXPECT_STREQ(to_string(VictimPolicy::kHierarchical), "Hier");
}

}  // namespace
}  // namespace dws::ws
