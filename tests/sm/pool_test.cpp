#include "sm/pool.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "uts/params.hpp"

namespace dws::sm {
namespace {

TEST(UtsThreadPool, SingleThreadMatchesSequential) {
  const auto& tree = uts::tree_by_name("TEST_BIN_SMALL");
  UtsThreadPool pool(tree, 1);
  const auto parallel = pool.run();
  const auto seq = uts::enumerate_sequential(tree);
  EXPECT_EQ(parallel.nodes, seq.nodes);
  EXPECT_EQ(parallel.leaves, seq.leaves);
  EXPECT_EQ(parallel.max_depth, seq.max_depth);
}

TEST(UtsThreadPool, WorkActuallyDistributes) {
  const auto& tree = uts::tree_by_name("SIM200K");
  UtsThreadPool pool(tree, 4);
  const auto result = pool.run();
  EXPECT_EQ(result.nodes, 224133u);
  int threads_with_work = 0;
  std::uint64_t total = 0;
  for (const auto& st : pool.thread_stats()) {
    if (st.nodes_processed > 0) ++threads_with_work;
    total += st.nodes_processed;
  }
  EXPECT_EQ(total, result.nodes);
  // On a single-core host the OS may schedule so few quanta to late threads
  // that only some of them win steals; two is the robust lower bound.
  EXPECT_GE(threads_with_work, 2);
}

TEST(UtsThreadPool, StealsHappen) {
  const auto& tree = uts::tree_by_name("SIM200K");
  UtsThreadPool pool(tree, 4);
  (void)pool.run();
  std::uint64_t steals = 0;
  for (const auto& st : pool.thread_stats()) steals += st.successful_steals;
  EXPECT_GT(steals, 0u);
}

/// Determinism of the *result* (not the schedule): any thread count and any
/// seed must produce identical tree totals. This is the cross-validation
/// oracle shared with the simulator.
class PoolSweep
    : public ::testing::TestWithParam<std::tuple<const char*, unsigned, std::uint64_t>> {};

TEST_P(PoolSweep, CountsMatchSequential) {
  const auto& [name, threads, seed] = GetParam();
  const auto& tree = uts::tree_by_name(name);
  UtsThreadPool pool(tree, threads, seed);
  const auto parallel = pool.run();
  const auto seq = uts::enumerate_sequential(tree);
  EXPECT_EQ(parallel.nodes, seq.nodes);
  EXPECT_EQ(parallel.leaves, seq.leaves);
  EXPECT_EQ(parallel.max_depth, seq.max_depth);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PoolSweep,
    ::testing::Values(std::tuple{"TEST_BIN_TINY", 2u, 1ull},
                      std::tuple{"TEST_BIN_TINY", 8u, 2ull},
                      std::tuple{"TEST_BIN_SMALL", 3u, 3ull},
                      std::tuple{"TEST_BIN_SMALL", 8u, 4ull},
                      std::tuple{"TEST_BIN_WIDE", 4u, 5ull},
                      std::tuple{"TEST_GEO_EXP", 4u, 6ull},
                      std::tuple{"TEST_HYBRID", 6u, 7ull},
                      std::tuple{"SIM200K", 8u, 8ull},
                      std::tuple{"SIM200K", 16u, 9ull}));

}  // namespace
}  // namespace dws::sm
