// Concurrency stress for sm::ChaseLevDeque, meant to run under
// ThreadSanitizer (the CI tsan job builds this file with -fsanitize=thread).
// The payload is 24 bytes — the uts::TreeNode size class, and deliberately
// wider than one atomic word — so a torn slot read that escaped the CAS
// guard would corrupt the self-checking fields and fail the checksums below.
#include "sm/chase_lev.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace dws::sm {
namespace {

/// Three related words: any torn read (words from two different elements)
/// breaks the b/c relations with probability ~1.
struct Payload {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};
static_assert(sizeof(Payload) == 24);

Payload make_payload(std::uint64_t i) {
  return Payload{i, i * 3 + 1, ~i};
}

struct Consumed {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> torn{0};        // payload self-check failures
  std::atomic<std::uint64_t> duplicated{0};  // element delivered twice
};

class Ledger {
 public:
  explicit Ledger(std::uint64_t items)
      : items_(items), seen_(new std::atomic<std::uint8_t>[items]) {
    for (std::uint64_t i = 0; i < items; ++i) seen_[i].store(0);
  }

  void consume(const Payload& p, Consumed& out) {
    out.count.fetch_add(1, std::memory_order_relaxed);
    if (p.a >= items_ || p.b != p.a * 3 + 1 || p.c != ~p.a) {
      out.torn.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (seen_[p.a].fetch_add(1, std::memory_order_relaxed) != 0) {
      out.duplicated.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::uint64_t missing() const {
    std::uint64_t n = 0;
    for (std::uint64_t i = 0; i < items_; ++i) {
      if (seen_[i].load(std::memory_order_relaxed) == 0) ++n;
    }
    return n;
  }

 private:
  std::uint64_t items_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> seen_;
};

/// Owner pushes/pops in bursts while thieves hammer the top end. The tiny
/// initial capacity (8) forces many grow() cycles under contention, so the
/// buffer swap and the retired-buffer reads are exercised too.
TEST(ChaseLevStress, ConcurrentStealsDeliverEveryElementExactlyOnce) {
  constexpr std::uint64_t kItems = 60'000;
  constexpr int kThieves = 3;

  ChaseLevDeque<Payload> deque(8);
  Ledger ledger(kItems);
  Consumed consumed;
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int i = 0; i < kThieves; ++i) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (const auto v = deque.steal_top()) ledger.consume(*v, consumed);
      }
      // Drain whatever the owner left behind.
      while (const auto v = deque.steal_top()) ledger.consume(*v, consumed);
    });
  }

  // Owner: bursts of pushes, then pops that race the thieves for the same
  // elements (including the t == b last-element CAS duel).
  std::uint64_t next = 0;
  while (next < kItems) {
    for (int i = 0; i < 64 && next < kItems; ++i) {
      deque.push_bottom(make_payload(next++));
    }
    for (int i = 0; i < 48; ++i) {
      const auto v = deque.pop_bottom();
      if (!v.has_value()) break;
      ledger.consume(*v, consumed);
    }
  }
  while (const auto v = deque.pop_bottom()) ledger.consume(*v, consumed);
  done.store(true, std::memory_order_release);
  for (std::thread& t : thieves) t.join();

  EXPECT_EQ(consumed.count.load(), kItems);
  EXPECT_EQ(consumed.torn.load(), 0u);
  EXPECT_EQ(consumed.duplicated.load(), 0u);
  EXPECT_EQ(ledger.missing(), 0u);
  EXPECT_EQ(deque.size_estimate(), 0u);
}

/// All-thieves variant: the owner only produces, so every element crosses
/// the steal path; growth happens while steals are in flight.
TEST(ChaseLevStress, GrowthUnderPureStealPressure) {
  constexpr std::uint64_t kItems = 30'000;
  constexpr int kThieves = 4;

  ChaseLevDeque<Payload> deque(8);
  Ledger ledger(kItems);
  Consumed consumed;
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int i = 0; i < kThieves; ++i) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (const auto v = deque.steal_top()) ledger.consume(*v, consumed);
      }
      while (const auto v = deque.steal_top()) ledger.consume(*v, consumed);
    });
  }

  for (std::uint64_t i = 0; i < kItems; ++i) {
    deque.push_bottom(make_payload(i));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : thieves) t.join();

  EXPECT_EQ(consumed.count.load(), kItems);
  EXPECT_EQ(consumed.torn.load(), 0u);
  EXPECT_EQ(consumed.duplicated.load(), 0u);
  EXPECT_EQ(ledger.missing(), 0u);
}

}  // namespace
}  // namespace dws::sm
