#include "sm/chase_lev.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace dws::sm {
namespace {

TEST(ChaseLev, EmptyPopAndStealReturnNothing) {
  ChaseLevDeque<int> d;
  EXPECT_FALSE(d.pop_bottom().has_value());
  EXPECT_FALSE(d.steal_top().has_value());
  EXPECT_EQ(d.size_estimate(), 0u);
}

TEST(ChaseLev, OwnerLifoOrder) {
  ChaseLevDeque<int> d;
  for (int i = 0; i < 10; ++i) d.push_bottom(i);
  for (int i = 9; i >= 0; --i) {
    const auto v = d.pop_bottom();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(d.pop_bottom().has_value());
}

TEST(ChaseLev, StealTakesOldest) {
  ChaseLevDeque<int> d;
  for (int i = 0; i < 5; ++i) d.push_bottom(i);
  EXPECT_EQ(*d.steal_top(), 0);
  EXPECT_EQ(*d.steal_top(), 1);
  EXPECT_EQ(*d.pop_bottom(), 4);
  EXPECT_EQ(*d.steal_top(), 2);
}

TEST(ChaseLev, GrowsPastInitialCapacity) {
  ChaseLevDeque<int> d(8);
  const int n = 10000;
  for (int i = 0; i < n; ++i) d.push_bottom(i);
  EXPECT_EQ(d.size_estimate(), static_cast<std::size_t>(n));
  long long sum = 0;
  while (auto v = d.pop_bottom()) sum += *v;
  EXPECT_EQ(sum, static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ChaseLev, InterleavedPushPopStealConserves) {
  ChaseLevDeque<int> d;
  int pushed = 0;
  int got = 0;
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 3; ++i) d.push_bottom(pushed++);
    if (d.pop_bottom()) ++got;
    if (d.steal_top()) ++got;
  }
  while (d.pop_bottom()) ++got;
  EXPECT_EQ(got, pushed);
}

TEST(ChaseLevStress, ConcurrentThievesConserveEverything) {
  // Owner pushes/pops while 4 thieves hammer steal_top. Every pushed value
  // must be consumed exactly once (checksum over distinct values).
  ChaseLevDeque<std::uint64_t> d;
  constexpr std::uint64_t kN = 200000;
  constexpr int kThieves = 4;

  std::atomic<std::uint64_t> stolen_sum{0};
  std::atomic<std::uint64_t> stolen_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (auto v = d.steal_top()) {
          stolen_sum.fetch_add(*v, std::memory_order_relaxed);
          stolen_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Final drain after the owner finished.
      while (auto v = d.steal_top()) {
        stolen_sum.fetch_add(*v, std::memory_order_relaxed);
        stolen_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::uint64_t own_sum = 0;
  std::uint64_t own_count = 0;
  for (std::uint64_t i = 1; i <= kN; ++i) {
    d.push_bottom(i);
    if (i % 3 == 0) {
      if (auto v = d.pop_bottom()) {
        own_sum += *v;
        ++own_count;
      }
    }
  }
  while (auto v = d.pop_bottom()) {
    own_sum += *v;
    ++own_count;
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  // A thief may have grabbed an element between our final pop and the drain;
  // run one more owner drain to be sure the deque is empty.
  EXPECT_FALSE(d.pop_bottom().has_value());

  EXPECT_EQ(own_count + stolen_count.load(), kN);
  EXPECT_EQ(own_sum + stolen_sum.load(), kN * (kN + 1) / 2);
}

TEST(ChaseLevStress, GrowUnderConcurrentSteals) {
  // Start tiny so the buffer grows many times while thieves are active.
  ChaseLevDeque<std::uint64_t> d(8);
  constexpr std::uint64_t kN = 100000;
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<bool> done{false};

  std::thread thief([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (d.steal_top()) consumed.fetch_add(1, std::memory_order_relaxed);
    }
    while (d.steal_top()) consumed.fetch_add(1, std::memory_order_relaxed);
  });

  std::uint64_t own = 0;
  for (std::uint64_t i = 0; i < kN; ++i) d.push_bottom(i);
  while (d.pop_bottom()) ++own;
  done.store(true, std::memory_order_release);
  thief.join();

  EXPECT_EQ(own + consumed.load(), kN);
}

}  // namespace
}  // namespace dws::sm
