// dws::rt native-runtime tests. Real threads on a possibly single-core CI
// host, so trees are small (TEST_BIN_* ~ 200..5k nodes) and nothing asserts
// on wall-clock magnitudes — only on conservation, protocol ledgers, and the
// audit verdict. Scheduling nondeterminism is the point: every run takes a
// different interleaving through the same proto::Peer state machine, and the
// oracles below must hold on all of them.
#include "rt/runtime.hpp"

#include <gtest/gtest.h>

#include "audit/audit.hpp"
#include "exp/runner.hpp"
#include "uts/sequential.hpp"
#include "ws/scheduler.hpp"

namespace dws::rt {
namespace {

ws::RunConfig small_config(topo::Rank ranks, const char* tree = "TEST_BIN_SMALL") {
  ws::RunConfig cfg;
  cfg.tree = uts::tree_by_name(tree);
  cfg.num_ranks = ranks;
  cfg.backend = ws::Backend::kRt;
  return cfg;
}

void expect_conserved(const ws::RunConfig& cfg, const ws::RunResult& r) {
  const auto oracle = uts::enumerate_sequential(cfg.tree);
  EXPECT_EQ(r.nodes, oracle.nodes);
  EXPECT_EQ(r.leaves, oracle.leaves);
  EXPECT_EQ(r.num_ranks, cfg.num_ranks);

  std::uint64_t nodes = 0, chunks_sent = 0, chunks_received = 0;
  for (const auto& rs : r.per_rank) {
    nodes += rs.nodes_processed;
    chunks_sent += rs.chunks_sent;
    chunks_received += rs.chunks_received;
  }
  EXPECT_EQ(nodes, oracle.nodes);
  EXPECT_EQ(chunks_sent, chunks_received);
  EXPECT_GT(r.runtime, 0);
  // Measured, not configured: total busy time / nodes expanded.
  EXPECT_GT(r.per_node_cost, 0);
}

TEST(RtRuntime, SingleRankMatchesTheSequentialOracle) {
  const ws::RunConfig cfg = small_config(1);
  const ws::RunResult r = run_native(cfg);
  expect_conserved(cfg, r);
  EXPECT_EQ(r.per_rank.size(), 1u);
  EXPECT_EQ(r.per_rank[0].steal_attempts, 0u);
  EXPECT_EQ(r.network.messages, 0u);
}

TEST(RtRuntime, FourThreadsConserveNodesAndChunks) {
  const ws::RunConfig cfg = small_config(4);
  const ws::RunResult r = run_native(cfg);
  expect_conserved(cfg, r);
  // Termination needs at least one full token circulation.
  std::uint64_t attempts = 0;
  for (const auto& rs : r.per_rank) attempts += rs.steal_attempts;
  EXPECT_GT(attempts, 0u);
  EXPECT_GT(r.network.messages, 0u);
}

TEST(RtRuntime, RepeatedRunsConserveUnderEveryInterleaving) {
  const ws::RunConfig cfg = small_config(3, "TEST_BIN_TINY");
  for (int i = 0; i < 8; ++i) {
    expect_conserved(cfg, run_native(cfg));
  }
}

TEST(RtRuntime, StealAndTokenTimersFireSafelyOnRealThreads) {
  // Timers aggressive enough to actually fire under oversubscription; the
  // abandoned-request banking and token generation filters must keep every
  // node exactly-once regardless of how many fire.
  ws::RunConfig cfg = small_config(4);
  cfg.ws.steal_timeout = 20'000;  // 20 us — spurious timeouts guaranteed
  cfg.ws.steal_retry_max = 2;
  cfg.ws.token_timeout = 200'000;  // 200 us
  const ws::RunResult r = run_native(cfg);
  expect_conserved(cfg, r);
}

TEST(RtRuntime, LifelineIdlePolicyConservesOnRealThreads) {
  ws::RunConfig cfg = small_config(4);
  cfg.ws.idle_policy = proto::IdlePolicy::kLifeline;
  cfg.ws.lifeline_tries = 2;
  expect_conserved(cfg, run_native(cfg));
}

TEST(RtRuntime, StealHalfAndRandomVictimsConserve) {
  ws::RunConfig cfg = small_config(4);
  cfg.ws.victim_policy = proto::VictimPolicy::kRandom;
  cfg.ws.steal_amount = proto::StealAmount::kHalf;
  expect_conserved(cfg, run_native(cfg));
}

TEST(RtRuntime, AdaptiveSelectionConservesOnRealThreads) {
  // The feedback seam is backend-agnostic: note_steal_result fires from the
  // same Peer code paths the simulator drives, so adaptive selection plus
  // yield-keyed amount switching must conserve under real-thread timing too.
  ws::RunConfig cfg = small_config(4);
  cfg.ws.victim_policy = proto::VictimPolicy::kAdaptive;
  cfg.ws.steal_amount = proto::StealAmount::kHalf;
  cfg.ws.adaptive_steal_amount = true;
  expect_conserved(cfg, run_native(cfg));
}

TEST(RtRuntime, AuditedAdaptiveNativeRunPassesEveryFamily) {
  // Audited variant: EWMA snapshots flow through the LockedObserver, and the
  // fresh-selector sampling distribution must satisfy the chi-square screen.
  ws::RunConfig cfg = small_config(2);
  cfg.ws.victim_policy = proto::VictimPolicy::kAdaptive;
  const audit::AuditedResult ar = audit::audited_run(cfg);
  EXPECT_TRUE(ar.report.ok()) << ar.report.summary();
  expect_conserved(cfg, ar.result);
}

TEST(RtRuntime, AuditedNativeRunPassesEveryFamily) {
  // The full work/message/clock/distribution auditor rides the LockedObserver
  // seam; its per-node fingerprint ledger is the strongest exactly-once
  // check we have, now applied to a genuinely concurrent execution.
  const ws::RunConfig cfg = small_config(2);
  const audit::AuditedResult ar = audit::audited_run(cfg);
  EXPECT_TRUE(ar.report.ok()) << ar.report.summary();
  EXPECT_GT(ar.report.nodes_expanded, 0u);
  // A refusal may still be in flight when rank 0 terminates (the thief gets
  // Terminate first and its channel drains unread), so sent >= received.
  EXPECT_GE(ar.report.responses_sent, ar.report.responses_received);
  expect_conserved(cfg, ar.result);
}

TEST(RtRuntime, RunBackendDispatchesOnTheConfig) {
  ws::RunConfig cfg = small_config(2);
  const ws::RunResult native = exp::run_backend(cfg);
  cfg.backend = ws::Backend::kSim;
  const ws::RunResult sim1 = exp::run_backend(cfg);
  const ws::RunResult sim2 = exp::run_backend(cfg);
  // Same tree either way; only the sim is bit-reproducible.
  EXPECT_EQ(native.nodes, sim1.nodes);
  EXPECT_EQ(sim1.runtime, sim2.runtime);
  EXPECT_EQ(sim1.stats.steal_attempts, sim2.stats.steal_attempts);
}

TEST(RtRuntime, ValidateRejectsWhatTheRuntimeCannotHonour) {
  ws::RunConfig cfg = small_config(2);
  cfg.fault.drop_prob = 0.1;
  cfg.ws.steal_timeout = 1'000'000;
  cfg.ws.token_timeout = 1'000'000;
  EXPECT_FALSE(cfg.validate().is_ok());  // faults are a simulator model

  ws::RunConfig one_sided = small_config(2);
  one_sided.ws.one_sided_steals = true;
  EXPECT_FALSE(one_sided.validate().is_ok());

  ws::RunConfig plain = small_config(2);
  EXPECT_TRUE(plain.validate().is_ok());
}

}  // namespace
}  // namespace dws::rt
