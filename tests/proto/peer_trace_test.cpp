// Protocol-core parity tests (DESIGN.md §11): drive proto::Peer with
// scripted message traces through a recording Transport and assert the exact
// decision sequences — every send (destination, payload, bytes, fault class),
// every timer armed, every lifecycle signal, in order.
//
// The expected sequences below are the goldens: they transcribe the
// pre-extraction ws::Worker behaviour (steal/refusal cycling, timeout/retry
// with exponential backoff, late-answer banking, duplicate filtering, token
// generation filtering) so any drift in the refactored core fails loudly.
// Full-run byte-identity is separately pinned by the golden fig06 record test
// (tests/exp) — these traces pin the *decision* layer in isolation, on a
// scripted clock, where each divergence names the exact protocol step.
#include "proto/peer.hpp"

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "proto/config.hpp"
#include "proto/message.hpp"
#include "proto/observer.hpp"
#include "proto/transport.hpp"
#include "topo/allocation.hpp"
#include "topo/latency.hpp"
#include "uts/node.hpp"

namespace dws::proto {
namespace {

uts::TreeNode node_at(std::uint32_t height) {
  uts::TreeNode n;
  n.height = height;
  return n;
}

std::string cls_name(fault::MsgClass cls) {
  switch (cls) {
    case fault::MsgClass::kReliable:
      return "reliable";
    case fault::MsgClass::kDroppable:
      return "droppable";
    case fault::MsgClass::kDupOnly:
      return "dup-only";
  }
  return "?";
}

std::string describe(const Message& msg) {
  return std::visit(
      [](const auto& m) -> std::string {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, StealRequest>) {
          return "req{thief=" + std::to_string(m.thief) +
                 ",id=" + std::to_string(m.request_id) + "}";
        } else if constexpr (std::is_same_v<T, StealResponse>) {
          std::size_t nodes = 0;
          for (const auto& c : m.chunks) nodes += c.size();
          return "resp{id=" + std::to_string(m.request_id) +
                 ",chunks=" + std::to_string(m.chunks.size()) +
                 ",nodes=" + std::to_string(nodes) + "}";
        } else if constexpr (std::is_same_v<T, Token>) {
          return "token{gen=" + std::to_string(m.generation) +
                 ",black=" + std::to_string(m.black) +
                 ",sent=" + std::to_string(m.sent) +
                 ",recv=" + std::to_string(m.recv) + "}";
        } else if constexpr (std::is_same_v<T, Terminate>) {
          return "terminate";
        } else if constexpr (std::is_same_v<T, LifelineRegister>) {
          return "reg{dep=" + std::to_string(m.dependent) + "}";
        } else {
          static_assert(std::is_same_v<T, LifelinePush>);
          return "push{chunks=" + std::to_string(m.chunks.size()) + "}";
        }
      },
      msg);
}

/// Records every Transport call as one formatted line, in call order. The
/// sent messages are also kept verbatim so tests can loop them back.
class ScriptTransport final : public Transport {
 public:
  void send(topo::Rank to, Message msg, std::uint32_t bytes,
            fault::MsgClass cls) override {
    ops.push_back("send to=" + std::to_string(to) + " " + describe(msg) +
                  " bytes=" + std::to_string(bytes) + " " + cls_name(cls));
    sent.push_back(std::move(msg));
  }
  void send_deferred(support::SimTime delay, topo::Rank to, StealResponse resp,
                     std::uint32_t bytes, fault::MsgClass cls) override {
    ops.push_back("defer delay=" + std::to_string(delay) +
                  " to=" + std::to_string(to) + " " + describe(Message{resp}) +
                  " bytes=" + std::to_string(bytes) + " " + cls_name(cls));
    sent.push_back(std::move(resp));
  }
  void arm_steal_timer(support::SimTime delay,
                       std::uint32_t request_id) override {
    ops.push_back("arm-steal delay=" + std::to_string(delay) +
                  " id=" + std::to_string(request_id));
  }
  void arm_token_timer(support::SimTime delay,
                       std::uint32_t generation) override {
    ops.push_back("arm-token delay=" + std::to_string(delay) +
                  " gen=" + std::to_string(generation));
  }
  void activated() override { ops.push_back("activated"); }
  void terminated(support::SimTime at) override {
    ops.push_back("terminated at=" + std::to_string(at));
  }

  std::vector<std::string> take() { return std::exchange(ops, {}); }

  std::vector<std::string> ops;
  std::vector<Message> sent;
};

using Trace = std::vector<std::string>;

/// One scripted peer: default K-Computer geometry, kRoundRobin victims so
/// every pick in the goldens is predictable (rank i starts at i+1 mod N).
class ScriptedPeer {
 public:
  ScriptedPeer(WsConfig config, topo::Rank rank, topo::Rank num_ranks,
               bool lossy = false, RunObserver* observer = nullptr)
      : config_(config),
        layout_(machine_, num_ranks, topo::Placement::kOnePerNode),
        latency_(layout_),
        peer_(config_, Peer::Params{rank, num_ranks, lossy}, &latency_,
              transport_, observer) {}

  Peer& peer() { return peer_; }
  ScriptTransport& transport() { return transport_; }
  Trace take() { return transport_.take(); }

 private:
  WsConfig config_;
  topo::TofuMachine machine_;
  topo::JobLayout layout_;
  topo::LatencyModel latency_;
  ScriptTransport transport_;
  Peer peer_;
};

StealResponse refusal(std::uint32_t id) {
  StealResponse r;
  r.request_id = id;
  return r;
}

StealResponse work_response(std::uint32_t id, std::size_t nodes) {
  StealResponse r;
  r.request_id = id;
  Chunk chunk;
  for (std::size_t i = 0; i < nodes; ++i) chunk.push_back(node_at(1));
  r.chunks.push_back(std::move(chunk));
  return r;
}

// ---------------------------------------------------------------------------
// Steal conversation
// ---------------------------------------------------------------------------

TEST(PeerTrace, RefusalsWalkTheRoundRobinRingWithFreshIds) {
  WsConfig cfg;  // steal_timeout = 0: the blocking reference protocol
  ScriptedPeer s(cfg, /*rank=*/1, /*num_ranks=*/4);

  s.peer().on_out_of_work(0);
  EXPECT_EQ(s.take(), Trace({"send to=2 req{thief=1,id=1} bytes=16 droppable"}));

  s.peer().on_message(refusal(1), 100);
  EXPECT_EQ(s.take(), Trace({"send to=3 req{thief=1,id=2} bytes=16 droppable"}));

  s.peer().on_message(refusal(2), 200);
  EXPECT_EQ(s.take(), Trace({"send to=0 req{thief=1,id=3} bytes=16 droppable"}));

  EXPECT_EQ(s.peer().stats().steal_attempts, 3u);
  EXPECT_EQ(s.peer().stats().failed_steals, 2u);
  EXPECT_EQ(s.peer().state(), Peer::State::kIdle);
}

TEST(PeerTrace, WorkResponseInstallsChunksAndActivates) {
  WsConfig cfg;
  ScriptedPeer s(cfg, 1, 4);

  s.peer().on_out_of_work(0);
  s.take();
  s.peer().on_message(work_response(1, 20), 500);

  // 16B header + 20 nodes * 24B — exactly what the victim side charges.
  EXPECT_EQ(s.take(), Trace({"activated"}));
  EXPECT_EQ(s.peer().state(), Peer::State::kActive);
  EXPECT_EQ(s.peer().stack().size(), 20u);
  EXPECT_EQ(s.peer().stats().successful_steals, 1u);
  EXPECT_EQ(s.peer().stats().chunks_received, 1u);
  EXPECT_EQ(s.peer().stats().total_search_time, 500);
}

TEST(PeerTrace, VictimRefusesWhenPrivateChunkIsAllItHas) {
  WsConfig cfg;
  ScriptedPeer s(cfg, 0, 4);
  s.peer().seed_root(node_at(0));
  s.take();

  // One node = one private working chunk: nothing stealable, refuse.
  s.peer().on_message(StealRequest{2, 1}, 50);
  EXPECT_EQ(s.take(),
            Trace({"send to=2 resp{id=1,chunks=0,nodes=0} bytes=16 droppable"}));
  EXPECT_EQ(s.peer().stats().requests_served, 1u);
  EXPECT_EQ(s.peer().stats().chunks_sent, 0u);
}

TEST(PeerTrace, VictimShipsOneChunkAndDefersAtPollBoundaries) {
  WsConfig cfg;  // chunk_size 20, kOneChunk
  ScriptedPeer s(cfg, 0, 4);
  s.peer().seed_root(node_at(0));
  for (int i = 1; i < 41; ++i) s.peer().stack().push(node_at(1));
  s.take();

  // 41 nodes = chunks (20, 20, 1): two stealable, one shipped. Work-carrying
  // responses are kDupOnly — droppable would lose nodes irrecoverably.
  s.peer().on_message(StealRequest{3, 1}, 50);
  EXPECT_EQ(s.take(),
            Trace({"send to=3 resp{id=1,chunks=1,nodes=20} bytes=496 dup-only"}));

  // A request drained at a poll boundary charges the packaging delay to the
  // send instead (the simulator binding's steal_handling_cost path).
  s.peer().on_steal_request(StealRequest{2, 1}, 60, /*send_delay=*/300);
  EXPECT_EQ(s.take(), Trace({"defer delay=300 to=2 resp{id=1,chunks=1,nodes=20} "
                             "bytes=496 dup-only"}));
  EXPECT_EQ(s.peer().stats().chunks_sent, 2u);
}

// ---------------------------------------------------------------------------
// Timeout / retry / backoff (DESIGN.md §10)
// ---------------------------------------------------------------------------

TEST(PeerTrace, TimeoutsRetrySameVictimWithExponentialBackoffThenMoveOn) {
  WsConfig cfg;
  cfg.steal_timeout = 1000;
  cfg.steal_backoff = 2.0;
  cfg.steal_retry_max = 2;
  ScriptedPeer s(cfg, 1, 4);

  // Request before timer: the documented Transport call order.
  s.peer().on_out_of_work(0);
  EXPECT_EQ(s.take(), Trace({"send to=2 req{thief=1,id=1} bytes=16 droppable",
                             "arm-steal delay=1000 id=1"}));

  // Retry 1: same victim, doubled timer.
  s.peer().on_steal_timeout(1, 1000);
  EXPECT_EQ(s.take(), Trace({"send to=2 req{thief=1,id=2} bytes=16 droppable",
                             "arm-steal delay=2000 id=2"}));

  // Retry 2: same victim, doubled again.
  s.peer().on_steal_timeout(2, 3000);
  EXPECT_EQ(s.take(), Trace({"send to=2 req{thief=1,id=3} bytes=16 droppable",
                             "arm-steal delay=4000 id=3"}));

  // Retries exhausted: next ring victim, timer back at the base.
  s.peer().on_steal_timeout(3, 7000);
  EXPECT_EQ(s.take(), Trace({"send to=3 req{thief=1,id=4} bytes=16 droppable",
                             "arm-steal delay=1000 id=4"}));

  // Stale timer for an abandoned id: filtered, no decisions.
  s.peer().on_steal_timeout(3, 7500);
  EXPECT_EQ(s.take(), Trace{});

  EXPECT_EQ(s.peer().stats().steal_timeouts, 3u);
  EXPECT_EQ(s.peer().stats().steal_retries, 2u);
}

TEST(PeerTrace, ExtremeBackoffSaturatesTheTimerInsteadOfOverflowing) {
  // steal_backoff^retry would overflow SimTime after one retry; the wait
  // must saturate (at half the SimTime range, clear of the run loop's +inf
  // sentinel), not wrap through the undefined double->int cast.
  WsConfig cfg;
  cfg.steal_timeout = 1000;
  cfg.steal_backoff = 1e18;
  cfg.steal_retry_max = 2;
  ScriptedPeer s(cfg, 1, 4);
  const std::string saturated =
      std::to_string(std::numeric_limits<support::SimTime>::max() / 2);

  s.peer().on_out_of_work(0);
  EXPECT_EQ(s.take(), Trace({"send to=2 req{thief=1,id=1} bytes=16 droppable",
                             "arm-steal delay=1000 id=1"}));

  // Retry 1: 1000 * 1e18 blows past the cap -> pinned, same victim.
  s.peer().on_steal_timeout(1, 1000);
  EXPECT_EQ(s.take(), Trace({"send to=2 req{thief=1,id=2} bytes=16 droppable",
                             "arm-steal delay=" + saturated + " id=2"}));

  // Retry 2: already saturated, stays pinned instead of multiplying on.
  s.peer().on_steal_timeout(2, 2000);
  EXPECT_EQ(s.take(), Trace({"send to=2 req{thief=1,id=3} bytes=16 droppable",
                             "arm-steal delay=" + saturated + " id=3"}));
  EXPECT_EQ(s.peer().stats().steal_retries, 2u);
}

// ---------------------------------------------------------------------------
// Adaptive feedback seam (DESIGN.md §14)
// ---------------------------------------------------------------------------

/// Records the resolution + feedback hook stream: event order is the golden,
/// the EWMA values are checked numerically.
class FeedbackObserver final : public RunObserver {
 public:
  void on_steal_response_received(topo::Rank thief, topo::Rank victim,
                                  std::uint64_t chunks,
                                  std::uint64_t nodes) override {
    events.push_back("recv victim=" + std::to_string(victim) +
                     " chunks=" + std::to_string(chunks) +
                     " nodes=" + std::to_string(nodes));
    (void)thief;
  }
  void on_steal_timeout(topo::Rank thief, topo::Rank victim,
                        std::uint32_t attempt) override {
    events.push_back("timeout victim=" + std::to_string(victim) +
                     " attempt=" + std::to_string(attempt));
    (void)thief;
  }
  void on_steal_feedback(topo::Rank thief, topo::Rank victim, bool success,
                         support::SimTime rtt, double success_ewma,
                         double rtt_ewma) override {
    events.push_back("feedback victim=" + std::to_string(victim) +
                     " success=" + std::to_string(success) +
                     " rtt=" + std::to_string(rtt));
    last_success_ewma = success_ewma;
    last_rtt_ewma = rtt_ewma;
    (void)thief;
  }

  std::vector<std::string> take() { return std::exchange(events, {}); }

  std::vector<std::string> events;
  double last_success_ewma = -1.0;
  double last_rtt_ewma = -1.0;
};

TEST(PeerTrace, AdaptiveFeedbackFiresAfterEachResolutionWithEwmaSnapshots) {
  WsConfig cfg;
  cfg.victim_policy = VictimPolicy::kAdaptive;  // adapt_decay = 0.25
  cfg.steal_timeout = 1000;
  cfg.steal_backoff = 2.0;
  cfg.steal_retry_max = 2;
  FeedbackObserver obs;
  // Two ranks: the only victim is rank 0, so the adaptive draws are pinned.
  ScriptedPeer s(cfg, 1, 2, /*lossy=*/false, &obs);

  s.peer().on_out_of_work(0);
  EXPECT_EQ(obs.take(), Trace{});

  // A refusal is still an answer: reachability feedback reports success with
  // the observed round trip, ordered after the resolution hook.
  s.peer().on_message(refusal(1), 100);
  EXPECT_EQ(obs.take(), Trace({"recv victim=0 chunks=0 nodes=0",
                               "feedback victim=0 success=1 rtt=100"}));
  EXPECT_DOUBLE_EQ(obs.last_success_ewma, 1.0);   // optimistic init, sample 1
  EXPECT_DOUBLE_EQ(obs.last_rtt_ewma, 100.0);     // first observation

  // The timeout of the retry sent at t=100 is the failure case: charged with
  // the time spent waiting, EWMAs stepped by adapt_decay = 1/4.
  s.peer().on_steal_timeout(2, 1100);
  EXPECT_EQ(obs.take(), Trace({"timeout victim=0 attempt=0",
                               "feedback victim=0 success=0 rtt=1000"}));
  EXPECT_DOUBLE_EQ(obs.last_success_ewma, 0.75);  // 3/4 * 1.0 + 1/4 * 0
  EXPECT_DOUBLE_EQ(obs.last_rtt_ewma, 325.0);     // 3/4 * 100 + 1/4 * 1000

  // A work-carrying answer closes the loop: success, EWMAs recover.
  s.peer().on_message(work_response(3, 20), 1400);
  EXPECT_EQ(obs.take(), Trace({"recv victim=0 chunks=1 nodes=20",
                               "feedback victim=0 success=1 rtt=300"}));
  EXPECT_DOUBLE_EQ(obs.last_success_ewma, 0.8125);  // 3/4 * 0.75 + 1/4
  EXPECT_DOUBLE_EQ(obs.last_rtt_ewma, 318.75);      // 3/4 * 325 + 1/4 * 300
}

TEST(PeerTrace, NonAdaptiveSelectorsEmitNoFeedbackHooks) {
  WsConfig cfg;  // kRoundRobin: feedback-free, hook stream must stay empty
  cfg.steal_timeout = 1000;
  FeedbackObserver obs;
  ScriptedPeer s(cfg, 1, 2, /*lossy=*/false, &obs);

  s.peer().on_out_of_work(0);
  s.peer().on_message(refusal(1), 100);
  s.peer().on_steal_timeout(2, 1100);
  EXPECT_EQ(obs.events, Trace({"recv victim=0 chunks=0 nodes=0",
                               "timeout victim=0 attempt=0"}));
}

TEST(PeerTrace, LateAnswerToAnAbandonedRequestIsStillBanked) {
  WsConfig cfg;
  cfg.steal_timeout = 1000;
  ScriptedPeer s(cfg, 1, 4);

  s.peer().on_out_of_work(0);   // id=1 to victim 2
  s.peer().on_steal_timeout(1, 1000);  // abandon id=1, retry id=2
  s.take();

  // The victim really gave those nodes away: dropping them would violate
  // work conservation, so the late answer installs and reactivates.
  s.peer().on_message(work_response(1, 20), 1500);
  EXPECT_EQ(s.take(), Trace({"activated"}));
  EXPECT_EQ(s.peer().stack().size(), 20u);
  EXPECT_EQ(s.peer().stats().successful_steals, 1u);
}

TEST(PeerTrace, LateRefusalToAnAbandonedRequestIsDiscarded) {
  WsConfig cfg;
  cfg.steal_timeout = 1000;
  ScriptedPeer s(cfg, 1, 4);

  s.peer().on_out_of_work(0);          // id=1 to victim 2
  s.peer().on_steal_timeout(1, 1000);  // abandon id=1, retry id=2 in flight
  s.take();

  // The timeout already re-drove the steal loop; a late refusal must not
  // drive it again (that would fork the single outstanding-request chain).
  s.peer().on_message(refusal(1), 1500);
  EXPECT_EQ(s.take(), Trace{});
  EXPECT_EQ(s.peer().stats().failed_steals, 0u);
  EXPECT_EQ(s.peer().state(), Peer::State::kIdle);
}

TEST(PeerTrace, NetworkDuplicateResponsesAreConsumedExactlyOnce) {
  WsConfig cfg;
  cfg.steal_timeout = 1000;
  ScriptedPeer s(cfg, 1, 4, /*lossy=*/true);

  s.peer().on_out_of_work(0);
  s.take();
  StealResponse resp = work_response(1, 20);
  s.peer().on_message(resp, 500);
  EXPECT_EQ(s.take(), Trace({"activated"}));
  EXPECT_EQ(s.peer().stack().size(), 20u);

  // The duplicated copy carries copies of already-installed nodes.
  s.peer().on_message(resp, 600);
  EXPECT_EQ(s.take(), Trace{});
  EXPECT_EQ(s.peer().stack().size(), 20u);
  EXPECT_EQ(s.peer().stats().duplicate_responses, 1u);
  EXPECT_EQ(s.peer().stats().successful_steals, 1u);
}

TEST(PeerTrace, LossyVictimAnswersADuplicatedRequestOnlyOnce) {
  WsConfig cfg;
  ScriptedPeer s(cfg, 0, 4, /*lossy=*/true);
  s.peer().seed_root(node_at(0));
  for (int i = 1; i < 41; ++i) s.peer().stack().push(node_at(1));
  s.take();

  s.peer().on_message(StealRequest{3, 1}, 50);
  EXPECT_EQ(s.take(),
            Trace({"send to=3 resp{id=1,chunks=1,nodes=20} bytes=496 dup-only"}));

  // Same id again = network duplicate: answering twice would ship a second
  // response the thief discards, losing any work it carried.
  s.peer().on_message(StealRequest{3, 1}, 60);
  EXPECT_EQ(s.take(), Trace{});
  EXPECT_EQ(s.peer().stats().requests_served, 1u);
}

// ---------------------------------------------------------------------------
// Termination: token ring, generations, regeneration
// ---------------------------------------------------------------------------

TEST(PeerTrace, IdleRankZeroLaunchesProbeTimerBeforeToken) {
  WsConfig cfg;
  cfg.token_timeout = 5000;
  ScriptedPeer s(cfg, 0, 3);

  // Timer armed BEFORE the token enters the network — the simulator binding
  // relies on this order for bit-identical event sequences.
  s.peer().on_out_of_work(0);
  EXPECT_EQ(s.take(),
            Trace({"arm-token delay=5000 gen=1",
                   "send to=1 token{gen=1,black=0,sent=0,recv=0} bytes=8 droppable",
                   "send to=1 req{thief=0,id=1} bytes=16 droppable"}));
}

TEST(PeerTrace, StaleTokenGenerationsAreIgnoredAndRegenerationTerminates) {
  WsConfig cfg;
  cfg.token_timeout = 5000;
  ScriptedPeer s(cfg, 0, 3);
  s.peer().on_out_of_work(0);  // gen=1 out
  s.take();

  // Probe presumed lost: regenerate with gen=2.
  s.peer().on_token_timeout(1, 5000);
  EXPECT_EQ(s.take(),
            Trace({"arm-token delay=5000 gen=2",
                   "send to=1 token{gen=2,black=0,sent=0,recv=0} bytes=8 droppable"}));
  EXPECT_EQ(s.peer().stats().token_regens, 1u);

  // The gen=1 survivor straggles home: stale, filtered.
  s.peer().on_message(Token{false, 0, 0, 1}, 6000);
  EXPECT_EQ(s.take(), Trace{});
  EXPECT_EQ(s.peer().state(), Peer::State::kIdle);

  // Stale timer for the superseded generation: filtered too.
  s.peer().on_token_timeout(1, 6500);
  EXPECT_EQ(s.take(), Trace{});

  // gen=2 comes home white with balanced counters: global quiescence.
  s.peer().on_message(Token{false, 0, 0, 2}, 7000);
  EXPECT_EQ(s.take(), Trace({"terminated at=7000",
                             "send to=1 terminate bytes=8 reliable",
                             "send to=2 terminate bytes=8 reliable"}));
  EXPECT_TRUE(s.peer().done());
}

TEST(PeerTrace, UnbalancedMatternCountersFailTheProbe) {
  WsConfig cfg;
  ScriptedPeer s(cfg, 0, 3);
  s.peer().on_out_of_work(0);  // gen=1 out
  s.take();

  // White token, but a work message was still in flight when the token
  // passed (sent != recv): relaunch instead of terminating.
  s.peer().on_message(Token{false, 3, 2, 1}, 4000);
  EXPECT_EQ(s.take(),
            Trace({"send to=1 token{gen=2,black=0,sent=0,recv=0} bytes=8 droppable"}));
  EXPECT_EQ(s.peer().state(), Peer::State::kIdle);
}

TEST(PeerTrace, MiddleRankForwardsAccumulatingCountersAndFiltersDuplicates) {
  WsConfig cfg;
  ScriptedPeer s(cfg, 1, 3);

  // Ship one chunk first so this rank is black with work_msgs_sent = 1.
  s.peer().seed_root(node_at(0));
  for (int i = 1; i < 41; ++i) s.peer().stack().push(node_at(1));
  s.peer().on_message(StealRequest{2, 1}, 10);
  while (s.peer().stack().pop().has_value()) {
  }
  s.peer().on_out_of_work(20);
  s.take();

  // Forward: color ORs in, counters accumulate, forwarder turns white.
  s.peer().on_message(Token{false, 4, 5, 1}, 100);
  EXPECT_EQ(s.take(),
            Trace({"send to=2 token{gen=1,black=1,sent=5,recv=5} bytes=8 droppable"}));

  // Duplicate (same generation): discarded, not forwarded twice.
  s.peer().on_message(Token{false, 4, 5, 1}, 200);
  EXPECT_EQ(s.take(), Trace{});

  // Next circulation: this rank already forwarded, so it is white now.
  s.peer().on_message(Token{false, 6, 6, 2}, 300);
  EXPECT_EQ(s.take(),
            Trace({"send to=2 token{gen=2,black=0,sent=7,recv=6} bytes=8 droppable"}));
}

TEST(PeerTrace, ActiveRankHoldsTheTokenUntilItIdles) {
  WsConfig cfg;
  ScriptedPeer s(cfg, 1, 3);
  s.peer().seed_root(node_at(0));
  s.take();

  s.peer().on_message(Token{false, 0, 0, 1}, 100);
  EXPECT_EQ(s.take(), Trace{});  // held, not forwarded

  while (s.peer().stack().pop().has_value()) {
  }
  s.peer().on_out_of_work(500);
  // Held token forwarded first, then the steal loop starts.
  EXPECT_EQ(s.take(),
            Trace({"send to=2 token{gen=1,black=0,sent=0,recv=0} bytes=8 droppable",
                   "send to=2 req{thief=1,id=1} bytes=16 droppable"}));
}

// ---------------------------------------------------------------------------
// Lifelines (IdlePolicy::kLifeline)
// ---------------------------------------------------------------------------

TEST(PeerTrace, RepeatedFailuresRegisterOnHypercubeBuddies) {
  WsConfig cfg;
  cfg.idle_policy = IdlePolicy::kLifeline;
  cfg.lifeline_tries = 2;
  ScriptedPeer s(cfg, 1, 4);

  s.peer().on_out_of_work(0);
  s.take();
  s.peer().on_message(refusal(1), 100);  // failure 1: keep stealing
  EXPECT_EQ(s.take(), Trace({"send to=3 req{thief=1,id=2} bytes=16 droppable"}));

  // Failure 2 hits lifeline_tries: go dormant on buddies 1^1=0 and 1^2=3.
  s.peer().on_message(refusal(2), 200);
  EXPECT_EQ(s.take(), Trace({"send to=0 reg{dep=1} bytes=16 reliable",
                             "send to=3 reg{dep=1} bytes=16 reliable"}));
  EXPECT_EQ(s.peer().stats().lifeline_registrations, 1u);

  // A buddy pushes surplus: reactivate without any further requests.
  LifelinePush push;
  push.chunks = work_response(0, 20).chunks;
  s.peer().on_message(std::move(push), 1000);
  EXPECT_EQ(s.take(), Trace({"activated"}));
  EXPECT_EQ(s.peer().stack().size(), 20u);
}

TEST(PeerTrace, StockedBuddyFeedsParkedDependentsAtPollPoints) {
  WsConfig cfg;
  cfg.idle_policy = IdlePolicy::kLifeline;
  ScriptedPeer s(cfg, 0, 4);
  s.peer().seed_root(node_at(0));
  s.take();

  // No surplus yet: the registration parks.
  s.peer().on_message(LifelineRegister{2}, 50);
  EXPECT_EQ(s.take(), Trace{});
  EXPECT_TRUE(s.peer().has_dependents());

  // Stock up past one chunk boundary, then feed at the poll point.
  for (int i = 1; i < 41; ++i) s.peer().stack().push(node_at(1));
  EXPECT_EQ(s.peer().feed_lifeline_dependents(100), 1u);
  EXPECT_EQ(s.take(),
            Trace({"send to=2 push{chunks=1} bytes=496 reliable"}));
  EXPECT_FALSE(s.peer().has_dependents());
  EXPECT_EQ(s.peer().stats().lifeline_pushes, 1u);
}

// ---------------------------------------------------------------------------
// Single-rank degenerate case
// ---------------------------------------------------------------------------

TEST(PeerTrace, SingleRankTerminatesTheMomentItRunsDry) {
  WsConfig cfg;
  ScriptedPeer s(cfg, 0, 1);
  s.peer().seed_root(node_at(0));
  s.take();

  while (s.peer().stack().pop().has_value()) {
  }
  s.peer().on_out_of_work(42);
  EXPECT_EQ(s.take(), Trace({"terminated at=42"}));
  EXPECT_TRUE(s.peer().done());
}

}  // namespace
}  // namespace dws::proto
