#include "ws/builder.hpp"

#include <gtest/gtest.h>

#include <string>

#include "uts/params.hpp"
#include "ws/scheduler.hpp"

namespace dws::ws {
namespace {

RunConfig valid_config() {
  RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_SMALL");
  cfg.num_ranks = 8;
  return cfg;
}

void expect_rejected(const RunConfig& cfg, const char* needle) {
  const auto status = cfg.validate();
  ASSERT_FALSE(status) << "expected rejection mentioning '" << needle << "'";
  EXPECT_NE(status.message().find(needle), std::string::npos)
      << status.message();
}

TEST(RunConfigValidate, AcceptsTheDefaultShape) {
  EXPECT_TRUE(valid_config().validate());
}

TEST(RunConfigValidate, RejectsZeroRanks) {
  auto cfg = valid_config();
  cfg.num_ranks = 0;
  expect_rejected(cfg, "num_ranks");
}

TEST(RunConfigValidate, RejectsZeroProcsPerNode) {
  auto cfg = valid_config();
  cfg.procs_per_node = 0;
  expect_rejected(cfg, "procs_per_node");
}

TEST(RunConfigValidate, RejectsOnePerNodeWithPackedProcs) {
  auto cfg = valid_config();
  cfg.placement = topo::Placement::kOnePerNode;
  cfg.procs_per_node = 8;
  expect_rejected(cfg, "1/N");
}

TEST(RunConfigValidate, RejectsRanksNotDivisibleByProcsPerNode) {
  auto cfg = valid_config();
  cfg.placement = topo::Placement::kRoundRobin;
  cfg.procs_per_node = 8;
  cfg.num_ranks = 12;
  expect_rejected(cfg, "multiple");
}

TEST(RunConfigValidate, RejectsJobsLargerThanTheMachine) {
  auto cfg = valid_config();
  cfg.num_ranks = cfg.machine.node_count() + 1;
  expect_rejected(cfg, "nodes");
}

TEST(RunConfigValidate, RejectsOriginCubeOutsideTheMachine) {
  auto cfg = valid_config();
  cfg.origin_cube = cfg.machine.cube_count();
  expect_rejected(cfg, "origin_cube");
}

TEST(RunConfigValidate, RejectsZeroChunkSize) {
  auto cfg = valid_config();
  cfg.ws.chunk_size = 0;
  expect_rejected(cfg, "chunk_size");
}

TEST(RunConfigValidate, RejectsZeroPollInterval) {
  auto cfg = valid_config();
  cfg.ws.poll_interval = 0;
  expect_rejected(cfg, "poll_interval");
}

TEST(RunConfigValidate, RejectsZeroAliasTableThreshold) {
  auto cfg = valid_config();
  cfg.ws.alias_table_max_ranks = 0;
  expect_rejected(cfg, "alias_table_max_ranks");
}

TEST(RunConfigValidate, RejectsLifelinesWithZeroTries) {
  auto cfg = valid_config();
  cfg.ws.idle_policy = IdlePolicy::kLifeline;
  cfg.ws.lifeline_tries = 0;
  expect_rejected(cfg, "lifeline_tries");
}

TEST(RunConfigValidate, RejectsZeroHierarchicalRemoteTries) {
  auto cfg = valid_config();
  cfg.ws.victim_policy = VictimPolicy::kHierarchical;
  cfg.ws.hierarchical_remote_tries = 0;
  expect_rejected(cfg, "hierarchical_remote_tries");
}

TEST(RunConfigValidate, RejectsOutOfRangeAdaptDecay) {
  for (const double bad : {0.0, -0.5, 1.5}) {
    auto cfg = valid_config();
    cfg.ws.victim_policy = VictimPolicy::kAdaptive;
    cfg.ws.adapt_decay = bad;
    expect_rejected(cfg, "adapt_decay");
  }
  // The knob is dead without adaptation, so the same value passes.
  auto inert = valid_config();
  inert.ws.adapt_decay = 0.0;
  EXPECT_TRUE(inert.validate());
}

TEST(RunConfigValidate, RejectsZeroEpsilonUnderAdaptiveSelection) {
  auto cfg = valid_config();
  cfg.ws.victim_policy = VictimPolicy::kAdaptive;
  cfg.ws.adapt_epsilon = 0.0;
  expect_rejected(cfg, "adapt_epsilon");
}

TEST(RunConfigValidate, RejectsZeroAdaptRefreshInterval) {
  auto cfg = valid_config();
  cfg.ws.victim_policy = VictimPolicy::kAdaptive;
  cfg.ws.adapt_refresh_interval = 0;
  expect_rejected(cfg, "adapt_refresh_interval");
  // Amount switching alone never rebuilds an alias table, so the cadence
  // knob is inert there and the same value passes.
  auto amount_only = valid_config();
  amount_only.ws.adaptive_steal_amount = true;
  amount_only.ws.adapt_refresh_interval = 0;
  EXPECT_TRUE(amount_only.validate());
}

TEST(RunConfigValidate, RejectsSupercriticalBinomialTrees) {
  auto cfg = valid_config();
  cfg.tree.m = 2;
  cfg.tree.q = 0.51;  // m*q > 1: infinite expected size
  expect_rejected(cfg, "infinite");
}

TEST(RunConfigBuilderTest, FluentChainBuildsAValidatedConfig) {
  const auto built = RunConfigBuilder()
                         .tree("TEST_BIN_SMALL")
                         .ranks(64)
                         .policy(VictimPolicy::kTofuSkewed)
                         .steal_half()
                         .chunk_size(4)
                         .seed(7)
                         .congestion(1.0)
                         .build();
  ASSERT_TRUE(built) << built.error();
  const RunConfig& cfg = built.value();
  EXPECT_EQ(cfg.tree.name, "TEST_BIN_SMALL");
  EXPECT_EQ(cfg.num_ranks, 64u);
  EXPECT_EQ(cfg.ws.victim_policy, VictimPolicy::kTofuSkewed);
  EXPECT_EQ(cfg.ws.steal_amount, StealAmount::kHalf);
  EXPECT_EQ(cfg.ws.chunk_size, 4u);
  EXPECT_EQ(cfg.ws.seed, 7u);
  EXPECT_TRUE(cfg.congestion.enabled);
  EXPECT_DOUBLE_EQ(cfg.congestion_scale, 1.0);
}

TEST(RunConfigBuilderTest, UnknownCatalogueTreeIsABuildError) {
  const auto built = RunConfigBuilder().tree("NO_SUCH_TREE").ranks(4).build();
  ASSERT_FALSE(built);
  EXPECT_NE(built.error().find("NO_SUCH_TREE"), std::string::npos)
      << built.error();
}

TEST(RunConfigBuilderTest, InvalidConfigIsABuildError) {
  const auto built = RunConfigBuilder()
                         .tree("TEST_BIN_SMALL")
                         .ranks(8)
                         .chunk_size(0)
                         .build();
  ASSERT_FALSE(built);
  EXPECT_NE(built.error().find("chunk_size"), std::string::npos);
}

TEST(RunConfigBuilderTest, CongestionOrderDoesNotMatter) {
  const auto before =
      RunConfigBuilder().tree("TEST_BIN_SMALL").congestion(2.0).ranks(64).build();
  const auto after =
      RunConfigBuilder().tree("TEST_BIN_SMALL").ranks(64).congestion(2.0).build();
  ASSERT_TRUE(before);
  ASSERT_TRUE(after);
  EXPECT_DOUBLE_EQ(before.value().congestion_scale,
                   after.value().congestion_scale);
  EXPECT_DOUBLE_EQ(before.value().congestion.capacity_hops,
                   after.value().congestion.capacity_hops);
}

TEST(RunConfigBuilderTest, BuildUncheckedSkipsValidation) {
  const RunConfig cfg =
      RunConfigBuilder().tree("TEST_BIN_SMALL").ranks(0).build_unchecked();
  EXPECT_EQ(cfg.num_ranks, 0u);
  EXPECT_FALSE(cfg.validate());
}

TEST(RunConfigCompat, AggregateInitializationStillWorks) {
  // Satellite guarantee: existing call sites that brace-init RunConfig and
  // poke fields directly must keep compiling and validating.
  RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_TINY");
  cfg.num_ranks = 2;
  cfg.ws.chunk_size = 3;
  EXPECT_TRUE(cfg.validate());
}

TEST(RunResultCompat, EfficiencyUsesTheStoredRankCount) {
  RunResult r;
  r.num_ranks = 4;
  r.nodes = 100;
  // speedup() = sequential_time / runtime; fabricate a 2x speedup.
  r.runtime = 50 * support::kMicrosecond;
  r.per_node_cost = support::kMicrosecond;
  EXPECT_DOUBLE_EQ(r.efficiency(), r.speedup() / 4.0);
}

}  // namespace
}  // namespace dws::ws
