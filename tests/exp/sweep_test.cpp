#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "uts/params.hpp"

namespace dws::exp {
namespace {

ws::RunConfig base_config() {
  ws::RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_SMALL");
  cfg.num_ranks = 4;
  return cfg;
}

TEST(SweepSpec, AxislessSpecIsOnePoint) {
  SweepSpec spec(base_config());
  EXPECT_EQ(spec.num_points(), 1u);
  const auto points = spec.expand();
  ASSERT_TRUE(points);
  ASSERT_EQ(points.value().size(), 1u);
  EXPECT_EQ(points.value()[0].index, 0u);
  EXPECT_TRUE(points.value()[0].coords.empty());
  EXPECT_EQ(points.value()[0].config.num_ranks, 4u);
}

TEST(SweepSpec, CartesianCountIsTheProduct) {
  SweepSpec spec(base_config());
  spec.axis(ranks_axis({2, 4, 8}))
      .axis(policy_axis(
          {ws::VictimPolicy::kRoundRobin, ws::VictimPolicy::kRandom}))
      .axis(seed_axis(1, 5));
  EXPECT_EQ(spec.num_points(), 3u * 2u * 5u);
  const auto points = spec.expand();
  ASSERT_TRUE(points);
  EXPECT_EQ(points.value().size(), 30u);
}

TEST(SweepSpec, CartesianLastAxisVariesFastest) {
  SweepSpec spec(base_config());
  spec.axis(ranks_axis({2, 4})).axis(seed_axis(1, 3));
  const auto expanded = spec.expand();
  ASSERT_TRUE(expanded);
  const auto& points = expanded.value();
  ASSERT_EQ(points.size(), 6u);
  // Odometer order: (2,s1) (2,s2) (2,s3) (4,s1) (4,s2) (4,s3).
  const std::vector<std::pair<std::uint32_t, std::uint64_t>> want{
      {2, 1}, {2, 2}, {2, 3}, {4, 1}, {4, 2}, {4, 3}};
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
    EXPECT_EQ(points[i].config.num_ranks, want[i].first) << "point " << i;
    EXPECT_EQ(points[i].config.ws.seed, want[i].second) << "point " << i;
  }
}

TEST(SweepSpec, CoordsFollowAxisDeclarationOrder) {
  SweepSpec spec(base_config());
  spec.axis(ranks_axis({2, 4})).axis(seed_axis(7, 1));
  const auto expanded = spec.expand();
  ASSERT_TRUE(expanded);
  const auto& p = expanded.value()[1];
  ASSERT_EQ(p.coords.size(), 2u);
  EXPECT_EQ(p.coords[0].first, "ranks");
  EXPECT_EQ(p.coords[0].second, "4");
  EXPECT_EQ(p.coords[1].first, "seed");
  EXPECT_EQ(p.coords[1].second, "7");
  EXPECT_EQ(p.label(), "ranks=4 seed=7");
  ASSERT_NE(p.coord("ranks"), nullptr);
  EXPECT_EQ(*p.coord("ranks"), "4");
  EXPECT_EQ(p.coord("no-such-axis"), nullptr);
}

TEST(SweepSpec, ZipAdvancesAxesTogether) {
  SweepSpec spec(base_config(), SweepMode::kZip);
  spec.axis(ranks_axis({2, 4, 8})).axis(chunk_size_axis({1, 2, 3}));
  EXPECT_EQ(spec.num_points(), 3u);
  const auto expanded = spec.expand();
  ASSERT_TRUE(expanded);
  const auto& points = expanded.value();
  ASSERT_EQ(points.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(points[i].config.num_ranks, 2u << i);
    EXPECT_EQ(points[i].config.ws.chunk_size, i + 1);
  }
}

TEST(SweepSpec, ZipRejectsUnequalLengths) {
  SweepSpec spec(base_config(), SweepMode::kZip);
  spec.axis(ranks_axis({2, 4, 8})).axis(chunk_size_axis({1, 2}));
  EXPECT_EQ(spec.num_points(), 0u);
  const auto expanded = spec.expand();
  ASSERT_FALSE(expanded);
  EXPECT_NE(expanded.error().find("length"), std::string::npos)
      << expanded.error();
}

TEST(SweepSpec, EmptyAxisIsAnError) {
  SweepSpec spec(base_config());
  spec.axis(ranks_axis({}));
  const auto expanded = spec.expand();
  ASSERT_FALSE(expanded);
  EXPECT_NE(expanded.error().find("no points"), std::string::npos)
      << expanded.error();
}

TEST(SweepSpec, LaterAxesOverrideEarlierOnes) {
  SweepSpec spec(base_config());
  spec.axis(chunk_size_axis({5}))
      .axis(custom_axis("override", {{"c9", [](ws::RunConfig& cfg) {
                                        cfg.ws.chunk_size = 9;
                                      }}}));
  const auto expanded = spec.expand();
  ASSERT_TRUE(expanded);
  EXPECT_EQ(expanded.value()[0].config.ws.chunk_size, 9u);
}

TEST(SweepAxes, FactoriesLabelByValue) {
  const Axis ranks = ranks_axis({128, 1024});
  EXPECT_EQ(ranks.name, "ranks");
  ASSERT_EQ(ranks.points.size(), 2u);
  EXPECT_EQ(ranks.points[1].label, "1024");

  const Axis seeds = seed_axis(3, 2);
  ASSERT_EQ(seeds.points.size(), 2u);
  EXPECT_EQ(seeds.points[0].label, "3");
  EXPECT_EQ(seeds.points[1].label, "4");

  const Axis congestion = congestion_axis({0.0, 1.5});
  EXPECT_EQ(congestion.points[0].label, "off");
  ws::RunConfig cfg = base_config();
  cfg.enable_congestion(1.0);
  congestion.points[0].apply(cfg);
  EXPECT_FALSE(cfg.congestion.enabled);
  congestion.points[1].apply(cfg);
  EXPECT_TRUE(cfg.congestion.enabled);
  EXPECT_DOUBLE_EQ(cfg.congestion_scale, 1.5);
}

TEST(SweepAxes, TreeAxisLooksUpTheCatalogue) {
  const Axis trees = tree_axis({"TEST_BIN_TINY", "TEST_BIN_SMALL"});
  ws::RunConfig cfg = base_config();
  trees.points[0].apply(cfg);
  EXPECT_EQ(cfg.tree.name, "TEST_BIN_TINY");
}

}  // namespace
}  // namespace dws::exp
