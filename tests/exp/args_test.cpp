#include "exp/args.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dws::exp {
namespace {

support::Status parse(ArgSpec& spec, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return spec.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgSpec, TypedSinksAndShortAliases) {
  std::uint32_t ranks = 0;
  double scale = 0.0;
  std::string out;
  bool quick = false;
  ArgSpec spec("prog", "test");
  spec.u32("--ranks", "-n", "rank count", &ranks)
      .f64("--scale", "", "congestion scale", &scale)
      .str("--out", "-o", "output file", &out)
      .toggle("--quick", "", "trim sweeps", &quick);
  const auto status = parse(
      spec, {"-n", "128", "--scale", "1.5", "-o", "r.jsonl", "--quick"});
  ASSERT_TRUE(status) << status.message();
  EXPECT_EQ(ranks, 128u);
  EXPECT_DOUBLE_EQ(scale, 1.5);
  EXPECT_EQ(out, "r.jsonl");
  EXPECT_TRUE(quick);
  EXPECT_FALSE(spec.help_requested());
}

TEST(ArgSpec, UnknownFlagIsAnErrorNamingTheFlag) {
  ArgSpec spec("prog", "test");
  const auto status = parse(spec, {"--bogus"});
  ASSERT_FALSE(status);
  EXPECT_NE(status.message().find("--bogus"), std::string::npos)
      << status.message();
}

TEST(ArgSpec, MissingValueIsAnError) {
  std::uint32_t ranks = 0;
  ArgSpec spec("prog", "test");
  spec.u32("--ranks", "-n", "rank count", &ranks);
  const auto status = parse(spec, {"--ranks"});
  ASSERT_FALSE(status);
  EXPECT_NE(status.message().find("--ranks"), std::string::npos);
}

TEST(ArgSpec, BadNumberIsAnError) {
  std::uint32_t ranks = 0;
  ArgSpec spec("prog", "test");
  spec.u32("--ranks", "-n", "rank count", &ranks);
  EXPECT_FALSE(parse(spec, {"--ranks", "many"}));
}

TEST(ArgSpec, HelpIsReportedNotAnError) {
  ArgSpec spec("prog", "test");
  testing::internal::CaptureStdout();
  const auto status = parse(spec, {"--help"});
  const std::string usage = testing::internal::GetCapturedStdout();
  EXPECT_TRUE(status) << status.message();
  EXPECT_TRUE(spec.help_requested());
  EXPECT_NE(usage.find("prog"), std::string::npos);
}

TEST(ArgSpec, UsageListsEveryOption) {
  std::uint32_t ranks = 0;
  bool quick = false;
  ArgSpec spec("prog", "a one-line summary");
  spec.u32("--ranks", "-n", "rank count", &ranks)
      .toggle("--quick", "", "trim sweeps", &quick);
  const std::string usage = spec.usage();
  for (const char* needle :
       {"a one-line summary", "--ranks", "-n", "--quick", "rank count"}) {
    EXPECT_NE(usage.find(needle), std::string::npos) << needle;
  }
}

TEST(Vocabulary, ParsePolicy) {
  EXPECT_EQ(parse_policy("ref").value(), ws::VictimPolicy::kRoundRobin);
  EXPECT_EQ(parse_policy("rand").value(), ws::VictimPolicy::kRandom);
  EXPECT_EQ(parse_policy("tofu").value(), ws::VictimPolicy::kTofuSkewed);
  EXPECT_EQ(parse_policy("hier").value(), ws::VictimPolicy::kHierarchical);
  EXPECT_FALSE(parse_policy("best"));
}

TEST(Vocabulary, ParseSteal) {
  EXPECT_EQ(parse_steal("1").value(), ws::StealAmount::kOneChunk);
  EXPECT_EQ(parse_steal("one").value(), ws::StealAmount::kOneChunk);
  EXPECT_EQ(parse_steal("chunk").value(), ws::StealAmount::kOneChunk);
  EXPECT_EQ(parse_steal("half").value(), ws::StealAmount::kHalf);
  EXPECT_FALSE(parse_steal("all"));
}

TEST(Vocabulary, ParsePlacement) {
  EXPECT_EQ(parse_placement("1n").value(), topo::Placement::kOnePerNode);
  EXPECT_EQ(parse_placement("1/N").value(), topo::Placement::kOnePerNode);
  EXPECT_EQ(parse_placement("rr").value(), topo::Placement::kRoundRobin);
  EXPECT_EQ(parse_placement("8RR").value(), topo::Placement::kRoundRobin);
  EXPECT_EQ(parse_placement("g").value(), topo::Placement::kGrouped);
  EXPECT_EQ(parse_placement("8G").value(), topo::Placement::kGrouped);
  EXPECT_FALSE(parse_placement("spiral"));
}

TEST(Vocabulary, SplitList) {
  EXPECT_EQ(split_list("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_list("solo"), (std::vector<std::string>{"solo"}));
  EXPECT_EQ(split_list("a,,b"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(split_list("").empty());
  EXPECT_EQ(split_list("1;2", ';'), (std::vector<std::string>{"1", "2"}));
}

}  // namespace
}  // namespace dws::exp
