#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <string>

#include "exp/record.hpp"
#include "exp/sweep.hpp"
#include "support/check.hpp"
#include "uts/params.hpp"

namespace dws::exp {
namespace {

ws::RunConfig base_config() {
  ws::RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_SMALL");
  cfg.num_ranks = 4;
  return cfg;
}

/// The determinism contract from the header: records of a sweep are a pure
/// function of the spec, so 8 worker threads must produce byte-identical
/// output to 1 (wall-clock columns dropped — they are host noise).
std::string records_with_threads(const SweepSpec& spec, unsigned threads) {
  RunnerOptions options;
  options.threads = threads;
  options.progress = false;
  const auto expanded = spec.expand();
  EXPECT_TRUE(expanded);
  const SweepReport report = SweepRunner(options).run(expanded.value());
  EXPECT_TRUE(report.all_ok());
  std::ostringstream out;
  RecordWriter writer(out, RecordOptions{RecordFormat::kJsonl, false});
  writer.write_report(expanded.value(), report);
  return out.str();
}

TEST(SweepRunner, ParallelRunIsByteIdenticalToSerial) {
  SweepSpec spec(base_config());
  spec.axis(ranks_axis({2, 4})).axis(seed_axis(1, 8));  // 16 points
  ASSERT_EQ(spec.num_points(), 16u);
  const std::string serial = records_with_threads(spec, 1);
  const std::string parallel = records_with_threads(spec, 8);
  EXPECT_EQ(serial, parallel);
  // Sanity: a meta line plus one record per point actually got written.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(serial.begin(), serial.end(), '\n')),
            17u);
}

TEST(SweepRunner, ResultsAreKeyedByPointIndex) {
  SweepSpec spec(base_config());
  spec.axis(seed_axis(1, 12));
  const auto expanded = spec.expand();
  ASSERT_TRUE(expanded);
  RunnerOptions options;
  options.progress = false;
  options.threads = 4;
  options.run = [](const ws::RunConfig& cfg) {
    ws::RunResult r;
    r.nodes = cfg.ws.seed;  // marker: result carries its own point's config
    return r;
  };
  const SweepReport report = SweepRunner(options).run(expanded.value());
  ASSERT_EQ(report.points.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(report.points[i].index, i);
    EXPECT_EQ(report.points[i].result.nodes, i + 1);
  }
}

TEST(SweepRunner, CheckFailureCancelsTheSweep) {
  SweepSpec spec(base_config());
  spec.axis(seed_axis(1, 6));
  const auto expanded = spec.expand();
  ASSERT_TRUE(expanded);
  RunnerOptions options;
  options.progress = false;
  options.threads = 1;  // deterministic: point 2 fails, 3..5 are skipped
  options.run = [](const ws::RunConfig& cfg) {
    DWS_CHECK(cfg.ws.seed != 3);
    return ws::RunResult{};
  };
  const SweepReport report = SweepRunner(options).run(expanded.value());
  EXPECT_TRUE(report.cancelled);
  EXPECT_FALSE(report.all_ok());
  EXPECT_TRUE(report.points[0].ok);
  EXPECT_TRUE(report.points[1].ok);
  ASSERT_NE(report.first_failure(), nullptr);
  EXPECT_EQ(report.first_failure()->index, 2u);
  EXPECT_NE(report.points[2].error.find("DWS_CHECK"), std::string::npos)
      << report.points[2].error;
  for (std::size_t i = 3; i < 6; ++i) {
    EXPECT_TRUE(report.points[i].skipped) << "point " << i;
    EXPECT_FALSE(report.points[i].ok);
  }
}

TEST(SweepRunner, CheckHandlerIsRestoredAfterTheSweep) {
  SweepSpec spec(base_config());
  SweepRunner(RunnerOptions{1, false, [](const ws::RunConfig&) {
                              return ws::RunResult{};
                            }})
      .run(spec);
  // Outside a sweep the default handler (abort) must be back, or death
  // tests and real invariant violations would be swallowed.
  EXPECT_EQ(support::set_check_handler(nullptr), nullptr);
}

TEST(SweepRunner, InvalidPointFailsTheSweepBeforeAnythingRuns) {
  auto bad = base_config();
  bad.ws.chunk_size = 0;
  SweepSpec spec(bad);
  spec.axis(seed_axis(1, 4));
  const auto expanded = spec.expand();
  ASSERT_TRUE(expanded);
  std::atomic<int> runs{0};
  RunnerOptions options;
  options.progress = false;
  options.run = [&runs](const ws::RunConfig&) {
    ++runs;
    return ws::RunResult{};
  };
  const SweepReport report = SweepRunner(options).run(expanded.value());
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(runs.load(), 0);
  for (const PointResult& p : report.points) {
    EXPECT_FALSE(p.ok);
    EXPECT_FALSE(p.error.empty());
  }
  EXPECT_NE(report.points[0].error.find("chunk_size"), std::string::npos);
}

TEST(SweepRunner, MalformedSpecReportsExpansionError) {
  SweepSpec spec(base_config(), SweepMode::kZip);
  spec.axis(ranks_axis({2, 4})).axis(chunk_size_axis({1}));
  RunnerOptions options;
  options.progress = false;
  const SweepReport report = SweepRunner(options).run(spec);
  EXPECT_TRUE(report.cancelled);
  EXPECT_FALSE(report.all_ok());
  ASSERT_EQ(report.points.size(), 1u);
  EXPECT_FALSE(report.points[0].error.empty());
}

TEST(SweepRunner, EmptyPointListIsAnEmptyReport) {
  RunnerOptions options;
  options.progress = false;
  const SweepReport report = SweepRunner(options).run(
      std::vector<SweepPoint>{});
  EXPECT_TRUE(report.points.empty());
  EXPECT_FALSE(report.all_ok());  // nothing ran, nothing to trust
  EXPECT_FALSE(report.cancelled);
}

}  // namespace
}  // namespace dws::exp
