#include "exp/record.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "uts/params.hpp"

namespace dws::exp {
namespace {

ws::RunConfig base_config() {
  ws::RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_SMALL");
  cfg.num_ranks = 8;
  return cfg;
}

TEST(ConfigFingerprint, IsStableAndTwelveHexChars) {
  const auto cfg = base_config();
  const std::string fp = config_fingerprint(cfg);
  EXPECT_EQ(fp.size(), 12u);
  EXPECT_EQ(fp.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(fp, config_fingerprint(cfg));  // pure function of the config
}

TEST(ConfigFingerprint, ChangesWithAnySemanticField) {
  const auto cfg = base_config();
  auto ranks = cfg;
  ranks.num_ranks = 16;
  auto seed = cfg;
  seed.ws.seed = 2;
  auto chunk = cfg;
  chunk.ws.chunk_size += 1;
  EXPECT_NE(config_fingerprint(cfg), config_fingerprint(ranks));
  EXPECT_NE(config_fingerprint(cfg), config_fingerprint(seed));
  EXPECT_NE(config_fingerprint(cfg), config_fingerprint(chunk));
}

TEST(ConfigFingerprint, TofuRecordsTheActiveSamplerBackend) {
  // The fingerprint must name the backend that actually runs (alias vs
  // rejection), not the raw threshold: thresholds resolving to the same
  // backend are the same experiment.
  auto cfg = base_config();
  cfg.ws.victim_policy = ws::VictimPolicy::kTofuSkewed;
  auto alias_lo = cfg;
  alias_lo.ws.alias_table_max_ranks = 16;  // 8 ranks -> alias
  auto alias_hi = cfg;
  alias_hi.ws.alias_table_max_ranks = 1024;  // still alias
  auto rejection = cfg;
  rejection.ws.alias_table_max_ranks = 4;  // 8 ranks -> rejection
  EXPECT_EQ(config_fingerprint(alias_lo), config_fingerprint(alias_hi));
  EXPECT_NE(config_fingerprint(alias_lo), config_fingerprint(rejection));
  EXPECT_NE(canonical_config(alias_lo).find("ws.tofu_sampler=alias"),
            std::string::npos);
  EXPECT_NE(canonical_config(rejection).find("ws.tofu_sampler=rejection"),
            std::string::npos);
}

TEST(ConfigFingerprint, AdaptiveKnobsKeyOnlyWhenAdaptationIsActive) {
  // Every pre-adaptive fingerprint must survive the new knobs: a static
  // policy ignores them entirely, and the adaptive keys appear only for the
  // configs they actually shape.
  auto off_a = base_config();
  auto off_b = base_config();
  off_b.ws.adapt_epsilon = 0.3;
  off_b.ws.adapt_decay = 0.5;
  off_b.ws.adapt_refresh_interval = 7;
  off_b.ws.adapt_yield_threshold = 9;
  EXPECT_EQ(config_fingerprint(off_a), config_fingerprint(off_b));
  EXPECT_EQ(canonical_config(off_a).find("adapt"), std::string::npos);

  auto adaptive = base_config();
  adaptive.ws.victim_policy = ws::VictimPolicy::kAdaptive;
  auto eps = adaptive;
  eps.ws.adapt_epsilon = 0.3;
  EXPECT_NE(config_fingerprint(adaptive), config_fingerprint(eps));
  EXPECT_NE(canonical_config(adaptive).find("ws.adapt_epsilon"),
            std::string::npos);

  auto amount = base_config();
  amount.ws.adaptive_steal_amount = true;
  EXPECT_NE(config_fingerprint(base_config()), config_fingerprint(amount));
  EXPECT_NE(canonical_config(amount).find("ws.adaptive_steal_amount"),
            std::string::npos);
}

TEST(ConfigFingerprint, RemoteTriesKeysOnlyOffItsDefault) {
  auto hier = base_config();
  hier.ws.victim_policy = ws::VictimPolicy::kHierarchical;
  EXPECT_EQ(canonical_config(hier).find("ws.hierarchical_remote_tries"),
            std::string::npos);
  auto wide = hier;
  wide.ws.hierarchical_remote_tries = 3;
  EXPECT_NE(config_fingerprint(hier), config_fingerprint(wide));
  EXPECT_NE(canonical_config(wide).find("ws.hierarchical_remote_tries=3"),
            std::string::npos);
}

TEST(ConfigFingerprint, NonTofuPoliciesIgnoreTheAliasThreshold) {
  auto a = base_config();
  a.ws.alias_table_max_ranks = 4;
  auto b = base_config();
  b.ws.alias_table_max_ranks = 1024;
  EXPECT_EQ(config_fingerprint(a), config_fingerprint(b));
  EXPECT_EQ(canonical_config(a).find("ws.tofu_sampler"), std::string::npos);
}

TEST(ConfigFingerprint, FaultAndTimeoutKeysAppearOnlyWhenActive) {
  // Pre-fault configs keep their established fingerprints: the new keys are
  // emitted only when the corresponding feature is on.
  const auto cfg = base_config();
  const std::string canon = canonical_config(cfg);
  EXPECT_EQ(canon.find("fault."), std::string::npos);
  EXPECT_EQ(canon.find("ws.steal_timeout"), std::string::npos);
  EXPECT_EQ(canon.find("ws.token_timeout"), std::string::npos);

  auto timed = cfg;
  timed.ws.steal_timeout = 1000;
  EXPECT_NE(config_fingerprint(cfg), config_fingerprint(timed));
  EXPECT_NE(canonical_config(timed).find("ws.steal_timeout=1000"),
            std::string::npos);

  auto faulted = cfg;
  faulted.fault.drop_prob = 0.01;
  faulted.fault.seed = 9;
  EXPECT_NE(config_fingerprint(cfg), config_fingerprint(faulted));
  const std::string fcanon = canonical_config(faulted);
  EXPECT_NE(fcanon.find("fault.drop_prob="), std::string::npos);
  EXPECT_NE(fcanon.find("fault.seed=9"), std::string::npos);

  auto reseeded = faulted;
  reseeded.fault.seed = 10;  // the fault stream is part of the experiment
  EXPECT_NE(config_fingerprint(faulted), config_fingerprint(reseeded));
}

TEST(CanonicalConfig, NamesTheKeyFields) {
  const std::string canon = canonical_config(base_config());
  for (const char* key : {"tree.name=", "num_ranks=8", "ws.seed=1",
                          "ws.chunk_size=", "ws.victim_policy=",
                          "ws.steal_amount="}) {
    EXPECT_NE(canon.find(key), std::string::npos) << key << " in " << canon;
  }
}

TEST(JsonEscape, HandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

SweepReport fake_report(const std::vector<SweepPoint>& points) {
  SweepReport report;
  for (const SweepPoint& p : points) {
    PointResult r;
    r.index = p.index;
    r.ok = true;
    r.result.num_ranks = p.config.num_ranks;
    r.result.nodes = 100;
    r.result.leaves = 50;
    r.result.engine_events = 4321;
    r.result.engine_peak_pending = 77;
    r.result.network.peak_channels = 13;
    r.result.stats.steal_timeouts = 5;
    r.result.stats.steal_retries = 4;
    r.result.stats.token_regens = 2;
    r.result.faults.dropped_messages = 9;
    r.result.faults.duplicated_messages = 3;
    r.wall_seconds = 1.25;  // must not leak into wall_clock=false output
    report.points.push_back(std::move(r));
  }
  return report;
}

TEST(RecordWriter, JsonlSchemaHeaderAndOneLinePerPoint) {
  SweepSpec spec(base_config());
  spec.axis(ranks_axis({2, 4}));
  const auto points = spec.expand().value();
  std::ostringstream out;
  RecordWriter writer(out, RecordOptions{RecordFormat::kJsonl, false});
  writer.write_report(points, fake_report(points));
  const std::string text = out.str();
  EXPECT_NE(text.find("\"schema\":\"dws.exp.sweep\""), std::string::npos);
  EXPECT_NE(text.find("\"version\":6"), std::string::npos);
  EXPECT_NE(text.find("\"coords\":{\"ranks\":\"4\"}"), std::string::npos);
  EXPECT_EQ(text.find("wall_s"), std::string::npos);  // wall_clock=false
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(RecordWriter, WallClockColumnIsOptIn) {
  SweepSpec spec(base_config());
  const auto points = spec.expand().value();
  std::ostringstream out;
  RecordWriter writer(out, RecordOptions{RecordFormat::kJsonl, true});
  writer.write_report(points, fake_report(points));
  EXPECT_NE(out.str().find("\"wall_s\":1.25"), std::string::npos) << out.str();
}

TEST(RecordWriter, CsvHasSchemaCommentHeaderAndRows) {
  SweepSpec spec(base_config());
  spec.axis(ranks_axis({2, 4}));
  const auto points = spec.expand().value();
  std::ostringstream out;
  RecordWriter writer(out, RecordOptions{RecordFormat::kCsv, false});
  writer.write_report(points, fake_report(points));
  const std::string text = out.str();
  EXPECT_NE(text.find("# schema=dws.exp.sweep version=6"), std::string::npos);
  EXPECT_NE(text.find("index,"), std::string::npos);
  // comment + header + 2 rows
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(CanonicalConfig, BackendKeyAppearsOnlyForTheNativeRuntime) {
  ws::RunConfig sim = base_config();
  ws::RunConfig rt = base_config();
  rt.backend = ws::Backend::kRt;
  // Simulator fingerprints must not move when the backend field is added.
  EXPECT_EQ(canonical_config(sim).find("backend="), std::string::npos);
  EXPECT_NE(canonical_config(rt).find("backend=rt"), std::string::npos);
  EXPECT_NE(config_fingerprint(sim), config_fingerprint(rt));
}

TEST(RecordSchema, V4RoundTripsBackendAndMeasuredCost) {
  ws::RunConfig cfg = base_config();
  cfg.backend = ws::Backend::kRt;
  SweepSpec spec(cfg);
  const auto points = spec.expand().value();
  SweepReport report = fake_report(points);
  report.points[0].result.per_node_cost = 1234;
  std::ostringstream out;
  RecordWriter writer(out, RecordOptions{RecordFormat::kJsonl, false});
  writer.write_report(points, report);
  EXPECT_NE(out.str().find("\"backend\":\"rt\""), std::string::npos);

  std::istringstream in(out.str());
  const auto file = read_records(in);
  ASSERT_TRUE(file.has_value()) << file.error();
  ASSERT_EQ(file.value().records.size(), 1u);
  const SweepRecord& rec = file.value().records.front();
  EXPECT_EQ(rec.backend, "rt");
  EXPECT_EQ(rec.per_node_cost_ns, 1234u);
}

TEST(RecordSchema, V3EmissionOmitsTheV4FieldsAndStaysReadable) {
  SweepSpec spec(base_config());
  const auto points = spec.expand().value();
  std::ostringstream out;
  RecordOptions options{RecordFormat::kJsonl, false};
  options.schema_version = 3;
  RecordWriter writer(out, options);
  writer.write_report(points, fake_report(points));
  EXPECT_EQ(out.str().find("backend"), std::string::npos);
  EXPECT_EQ(out.str().find("per_node_cost_ns"), std::string::npos);

  std::istringstream in(out.str());
  const auto file = read_records(in);
  ASSERT_TRUE(file.has_value()) << file.error();
  EXPECT_EQ(file.value().version, 3);
  ASSERT_EQ(file.value().records.size(), 1u);
  EXPECT_TRUE(file.value().records.front().backend.empty());
}

TEST(RecordSchema, V4EmissionStillCarriesThePeakColumns) {
  // Pinning v4 must reproduce the historical byte stream, occupancy columns
  // included — v5 only changes the default, not what older versions emit.
  SweepSpec spec(base_config());
  const auto points = spec.expand().value();
  std::ostringstream out;
  RecordOptions options{RecordFormat::kJsonl, false};
  options.schema_version = 4;
  RecordWriter writer(out, options);
  writer.write_report(points, fake_report(points));
  EXPECT_NE(out.str().find("\"engine_peak_pending\":77"), std::string::npos);
  EXPECT_NE(out.str().find("\"net_peak_channels\":13"), std::string::npos);

  std::istringstream in(out.str());
  const auto file = read_records(in);
  ASSERT_TRUE(file.has_value()) << file.error();
  EXPECT_EQ(file.value().version, 4);
  ASSERT_EQ(file.value().records.size(), 1u);
  EXPECT_EQ(file.value().records[0].engine_peak_pending, 77u);
  EXPECT_EQ(file.value().records[0].net_peak_channels, 13u);
}

TEST(RecordSchema, V5EmissionOmitsThePeakColumns) {
  SweepSpec spec(base_config());
  const auto points = spec.expand().value();
  std::ostringstream out;
  RecordOptions options{RecordFormat::kCsv, false};
  options.schema_version = 5;
  RecordWriter writer(out, options);
  writer.write_report(points, fake_report(points));
  EXPECT_EQ(out.str().find("engine_peak_pending"), std::string::npos);
  EXPECT_EQ(out.str().find("net_peak_channels"), std::string::npos);
}

TEST(RecordWriter, SchemaVersion1OmitsTheV2Fields) {
  SweepSpec spec(base_config());
  const auto points = spec.expand().value();
  std::ostringstream out;
  RecordOptions options{RecordFormat::kJsonl, false};
  options.schema_version = 1;
  RecordWriter writer(out, options);
  writer.write_report(points, fake_report(points));
  const std::string text = out.str();
  EXPECT_NE(text.find("\"version\":1"), std::string::npos);
  EXPECT_EQ(text.find("engine_peak_pending"), std::string::npos);
  EXPECT_EQ(text.find("net_peak_channels"), std::string::npos);
}

/// A fake service point: the fake report plus two JobOutcomes, enough for
/// the v6 writer to cut one run row and two job rows.
SweepReport fake_service_report(const std::vector<SweepPoint>& points) {
  SweepReport report = fake_report(points);
  for (PointResult& r : report.points) {
    metrics::JobOutcome a;
    a.job_id = 0;
    a.tree = "TEST_BIN_TINY";
    a.root_seed = 777;
    a.base = 0;
    a.width = 4;
    a.arrival = 0;
    a.admit = 1'000'000;
    a.first_compute = 2'000'000;
    a.finish = 10'000'000;
    a.nodes = 60;
    a.leaves = 30;
    a.steal_attempts = 12;
    a.successful_steals = 7;
    metrics::JobOutcome b = a;
    b.job_id = 1;
    b.base = 4;
    b.arrival = 3'000'000;
    b.admit = 5'000'000;
    b.first_compute = 5'500'000;
    b.finish = 23'000'000;
    b.nodes = 40;
    b.leaves = 20;
    r.result.jobs = {a, b};
  }
  return report;
}

TEST(RecordSchema, V6ServicePointEmitsRunAndJobRowsJsonl) {
  SweepSpec spec(base_config());
  const auto points = spec.expand().value();
  std::ostringstream out;
  RecordWriter writer(out, RecordOptions{RecordFormat::kJsonl, false});
  writer.write_report(points, fake_service_report(points));
  const std::string text = out.str();
  // header + 1 run row + 2 job rows
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  EXPECT_NE(text.find("\"row\":\"run\""), std::string::npos);
  EXPECT_NE(text.find("\"row\":\"job\""), std::string::npos);
  EXPECT_NE(text.find("\"jobs\":2"), std::string::npos);

  std::istringstream in(text);
  const auto file = read_records(in);
  ASSERT_TRUE(file.has_value()) << file.error();
  ASSERT_EQ(file.value().records.size(), 3u);
  const SweepRecord& run = file.value().records[0];
  EXPECT_EQ(run.row, "run");
  EXPECT_FALSE(run.is_job_row());
  EXPECT_EQ(run.jobs, 2u);
  // Nearest-rank tails over {10, 20} ms makespans: p50 = 10, p99 = 20.
  EXPECT_DOUBLE_EQ(run.makespan_p50_ms, 10.0);
  EXPECT_DOUBLE_EQ(run.makespan_p99_ms, 20.0);
  EXPECT_DOUBLE_EQ(run.queue_wait_p50_ms, 1.0);
  EXPECT_DOUBLE_EQ(run.queue_wait_p99_ms, 2.0);

  const SweepRecord& job0 = file.value().records[1];
  EXPECT_TRUE(job0.is_job_row());
  EXPECT_EQ(job0.job_id, 0u);
  EXPECT_EQ(job0.job_tree, "TEST_BIN_TINY");
  EXPECT_EQ(job0.job_root_seed, 777u);
  EXPECT_EQ(job0.job_width, 4u);
  EXPECT_DOUBLE_EQ(job0.job_queue_wait_ms, 1.0);
  EXPECT_DOUBLE_EQ(job0.job_makespan_ms, 10.0);
  EXPECT_EQ(job0.job_nodes, 60u);
  EXPECT_EQ(job0.job_steal_attempts, 12u);
  EXPECT_EQ(job0.fingerprint, run.fingerprint);

  const SweepRecord& job1 = file.value().records[2];
  EXPECT_EQ(job1.job_id, 1u);
  EXPECT_EQ(job1.job_base, 4u);
  EXPECT_DOUBLE_EQ(job1.job_makespan_ms, 20.0);
}

TEST(RecordSchema, V6ServicePointRoundTripsCsv) {
  SweepSpec spec(base_config());
  const auto points = spec.expand().value();
  std::ostringstream out;
  RecordWriter writer(out, RecordOptions{RecordFormat::kCsv, false});
  writer.write_report(points, fake_service_report(points));
  const std::string text = out.str();
  EXPECT_NE(text.find(",row,"), std::string::npos);  // header names the column

  std::istringstream in(text);
  const auto file = read_records(in);
  ASSERT_TRUE(file.has_value()) << file.error();
  ASSERT_EQ(file.value().records.size(), 3u);
  EXPECT_EQ(file.value().records[0].row, "run");
  EXPECT_EQ(file.value().records[0].jobs, 2u);
  EXPECT_TRUE(file.value().records[1].is_job_row());
  EXPECT_EQ(file.value().records[1].job_nodes, 60u);
  EXPECT_EQ(file.value().records[2].job_id, 1u);
  EXPECT_DOUBLE_EQ(file.value().records[2].job_makespan_ms, 20.0);
}

TEST(RecordSchema, V5EmissionOmitsTheServiceColumnsEntirely) {
  // Pinning v5 reproduces the pre-service byte stream even when the result
  // carries job outcomes: no row discriminator, no tails, no job rows.
  SweepSpec spec(base_config());
  const auto points = spec.expand().value();
  std::ostringstream out;
  RecordOptions options{RecordFormat::kJsonl, false};
  options.schema_version = 5;
  RecordWriter writer(out, options);
  writer.write_report(points, fake_service_report(points));
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);  // header + 1 row
  EXPECT_EQ(text.find("\"row\""), std::string::npos);
  EXPECT_EQ(text.find("makespan_p50_ms"), std::string::npos);
  EXPECT_EQ(text.find("job_id"), std::string::npos);

  std::istringstream in(text);
  const auto file = read_records(in);
  ASSERT_TRUE(file.has_value()) << file.error();
  EXPECT_EQ(file.value().version, 5);
  ASSERT_EQ(file.value().records.size(), 1u);
  EXPECT_TRUE(file.value().records[0].row.empty());
}

TEST(RecordReader, AcceptsEveryHistoricalSchemaVersion) {
  SweepSpec spec(base_config());
  const auto points = spec.expand().value();
  for (int v = kRecordMinSchemaVersion; v <= kRecordSchemaVersion; ++v) {
    for (const RecordFormat fmt : {RecordFormat::kJsonl, RecordFormat::kCsv}) {
      std::ostringstream out;
      RecordOptions options{fmt, false};
      options.schema_version = v;
      RecordWriter writer(out, options);
      writer.write_report(points, fake_report(points));
      std::istringstream in(out.str());
      const auto file = read_records(in);
      ASSERT_TRUE(file.has_value())
          << "v" << v << (fmt == RecordFormat::kCsv ? " csv" : " jsonl")
          << ": " << file.error();
      EXPECT_EQ(file.value().version, v);
      ASSERT_EQ(file.value().records.size(), 1u);
      EXPECT_TRUE(file.value().records[0].ok);
      EXPECT_EQ(file.value().records[0].nodes, 100u);
    }
  }
}

TEST(RecordReader, RoundTripsJsonlCurrent) {
  SweepSpec spec(base_config());
  spec.axis(ranks_axis({2, 4}));
  const auto points = spec.expand().value();
  std::ostringstream out;
  RecordWriter writer(out, RecordOptions{RecordFormat::kJsonl, false});
  writer.write_report(points, fake_report(points));

  std::istringstream in(out.str());
  const auto file = read_records(in);
  ASSERT_TRUE(file.has_value()) << file.error();
  EXPECT_EQ(file.value().version, kRecordSchemaVersion);
  EXPECT_EQ(file.value().format, RecordFormat::kJsonl);
  ASSERT_EQ(file.value().records.size(), 2u);
  const SweepRecord& rec = file.value().records[1];
  EXPECT_EQ(rec.index, 1u);
  EXPECT_EQ(rec.ranks, 4u);
  EXPECT_TRUE(rec.ok);
  EXPECT_EQ(rec.nodes, 100u);
  EXPECT_EQ(rec.engine_events, 4321u);
  // v5 dropped the occupancy columns (they vary with sim_shards).
  EXPECT_EQ(rec.engine_peak_pending, 0u);
  EXPECT_EQ(rec.net_peak_channels, 0u);
  EXPECT_EQ(rec.steal_timeouts, 5u);
  EXPECT_EQ(rec.steal_retries, 4u);
  EXPECT_EQ(rec.token_regens, 2u);
  EXPECT_EQ(rec.net_drops, 9u);
  EXPECT_EQ(rec.net_dups, 3u);
  EXPECT_FALSE(rec.has_wall_s);
  ASSERT_EQ(rec.coords.size(), 1u);
  EXPECT_EQ(rec.coords[0].first, "ranks");
  EXPECT_EQ(rec.coords[0].second, "4");
  EXPECT_EQ(rec.fingerprint, config_fingerprint(points[1].config));
}

TEST(RecordReader, RoundTripsCsvCurrent) {
  SweepSpec spec(base_config());
  spec.axis(ranks_axis({2, 4}));
  const auto points = spec.expand().value();
  std::ostringstream out;
  RecordWriter writer(out, RecordOptions{RecordFormat::kCsv, true});
  writer.write_report(points, fake_report(points));

  std::istringstream in(out.str());
  const auto file = read_records(in);
  ASSERT_TRUE(file.has_value()) << file.error();
  EXPECT_EQ(file.value().version, kRecordSchemaVersion);
  EXPECT_EQ(file.value().format, RecordFormat::kCsv);
  ASSERT_EQ(file.value().records.size(), 2u);
  const SweepRecord& rec = file.value().records[0];
  EXPECT_EQ(rec.ranks, 2u);
  EXPECT_TRUE(rec.ok);
  EXPECT_EQ(rec.engine_peak_pending, 0u);  // absent since v5
  EXPECT_EQ(rec.net_peak_channels, 0u);
  EXPECT_EQ(rec.steal_timeouts, 5u);
  EXPECT_EQ(rec.net_dups, 3u);
  EXPECT_TRUE(rec.has_wall_s);
  EXPECT_DOUBLE_EQ(rec.wall_s, 1.25);
}

TEST(RecordReader, AcceptsV1FilesWithZeroedNewFields) {
  SweepSpec spec(base_config());
  const auto points = spec.expand().value();
  std::ostringstream out;
  RecordOptions options{RecordFormat::kJsonl, false};
  options.schema_version = 1;
  RecordWriter writer(out, options);
  writer.write_report(points, fake_report(points));

  std::istringstream in(out.str());
  const auto file = read_records(in);
  ASSERT_TRUE(file.has_value()) << file.error();
  EXPECT_EQ(file.value().version, 1);
  ASSERT_EQ(file.value().records.size(), 1u);
  EXPECT_EQ(file.value().records[0].engine_events, 4321u);
  EXPECT_EQ(file.value().records[0].engine_peak_pending, 0u);  // v1: absent
  EXPECT_EQ(file.value().records[0].net_peak_channels, 0u);
}

TEST(RecordReader, RejectsUnsupportedVersionsAndGarbage) {
  {
    std::istringstream in("{\"schema\":\"dws.exp.sweep\",\"version\":99}\n");
    const auto file = read_records(in);
    ASSERT_FALSE(file.has_value());
    EXPECT_NE(file.error().find("unsupported schema version"),
              std::string::npos);
  }
  {
    std::istringstream in("not a record stream\n");
    EXPECT_FALSE(read_records(in).has_value());
  }
  {
    std::istringstream in("");
    EXPECT_FALSE(read_records(in).has_value());
  }
}

TEST(RecordReader, ReadsErrorRecordsWithEscapes) {
  SweepSpec spec(base_config());
  const auto points = spec.expand().value();
  SweepReport report;
  PointResult r;
  r.index = 0;
  r.ok = false;
  r.error = "line1\nline2 \"quoted\"";
  report.points.push_back(std::move(r));
  std::ostringstream out;
  RecordWriter writer(out, RecordOptions{RecordFormat::kJsonl, false});
  writer.write_report(points, report);

  std::istringstream in(out.str());
  const auto file = read_records(in);
  ASSERT_TRUE(file.has_value()) << file.error();
  ASSERT_EQ(file.value().records.size(), 1u);
  EXPECT_FALSE(file.value().records[0].ok);
  EXPECT_EQ(file.value().records[0].error, "line1\nline2 \"quoted\"");
}

TEST(RecordWriter, FailedPointsRecordTheError) {
  SweepSpec spec(base_config());
  const auto points = spec.expand().value();
  SweepReport report;
  PointResult r;
  r.index = 0;
  r.ok = false;
  r.error = "DWS_CHECK failed: boom";
  report.points.push_back(std::move(r));
  std::ostringstream out;
  RecordWriter writer(out, RecordOptions{RecordFormat::kJsonl, false});
  writer.write_report(points, report);
  EXPECT_NE(out.str().find("\"ok\":false"), std::string::npos);
  EXPECT_NE(out.str().find("boom"), std::string::npos);
}

}  // namespace
}  // namespace dws::exp
