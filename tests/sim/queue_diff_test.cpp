/// Randomized differential test: CalendarQueue against a reference binary
/// heap, on push/pop interleavings chosen to stress everything the calendar
/// does that a heap does not — window re-anchors (far-future jumps),
/// adaptive-width rebuilds (drifting inter-event gaps), equal-timestamp FIFO
/// runs (seq tiebreak), and pushes into the partially drained cursor bucket
/// (zero-delay events).
#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event.hpp"
#include "sim/queue.hpp"
#include "support/rng.hpp"

namespace dws::sim {
namespace {

struct HeapLater {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Reference model: a plain binary heap over the same (time, seq) order.
class ReferenceQueue {
 public:
  void push(const Event& ev) { heap_.push(ev); }
  bool pop(Event& out) {
    if (heap_.empty()) return false;
    out = heap_.top();
    heap_.pop();
    return true;
  }
  support::SimTime peek_time() const { return heap_.top().time; }
  std::size_t size() const { return heap_.size(); }

 private:
  std::priority_queue<Event, std::vector<Event>, HeapLater> heap_;
};

/// Drives both queues through an identical operation stream and asserts
/// every popped event matches exactly. `delay_fn(rng)` shapes the schedule
/// lookahead distribution.
template <typename DelayFn>
void run_differential(std::uint64_t seed, int ops, double push_bias,
                      DelayFn delay_fn) {
  support::Xoshiro256StarStar rng(seed);
  CalendarQueue calendar;
  ReferenceQueue reference;
  support::SimTime now = 0;
  std::uint64_t seq = 0;

  auto push_one = [&] {
    // t_sched = now, exactly as Engine::schedule_at stamps it, with the
    // structural fields (kind, rank, src) held constant so the full
    // (time, t_sched, kind, rank, src, seq) key reduces to (time, t_sched,
    // seq). The reference heap orders by (time, seq) alone — equivalent
    // here, because among equal-time events t_sched (= push-time now) and
    // seq are both monotone in push order — so every passing run checks the
    // calendar against that reduction. The event's identity travels in
    // payload, which the comparator ignores.
    const Event ev{now + delay_fn(rng), now, seq++, nullptr,
                   EventKind::kGeneric, 0, 0,
                   static_cast<std::uint32_t>(seq)};
    calendar.push(ev);
    reference.push(ev);
  };

  push_one();  // never start empty
  for (int i = 0; i < ops; ++i) {
    const bool do_push =
        reference.size() == 0 || rng.next_double() < push_bias;
    if (do_push) {
      push_one();
      continue;
    }
    Event got{}, want{};
    ASSERT_TRUE(calendar.pop(got));
    ASSERT_TRUE(reference.pop(want));
    ASSERT_EQ(got.time, want.time) << "op " << i;
    ASSERT_EQ(got.seq, want.seq) << "op " << i;
    ASSERT_EQ(got.rank, want.rank);
    ASSERT_EQ(got.payload, want.payload);
    ASSERT_GE(got.time, now);  // total order never goes backwards
    now = got.time;
  }
  // Drain both completely.
  Event got{}, want{};
  while (reference.pop(want)) {
    ASSERT_TRUE(calendar.pop(got));
    ASSERT_EQ(got.time, want.time);
    ASSERT_EQ(got.seq, want.seq);
  }
  ASSERT_FALSE(calendar.pop(got));
  ASSERT_TRUE(calendar.empty());
}

TEST(QueueDifferential, SimulationShapedDelays) {
  // Mirrors a run's mix: short step delays plus a tail of network latencies.
  auto delay = [](support::Xoshiro256StarStar& rng) -> support::SimTime {
    if (rng.next_double() < 0.25) {
      return 2000 + static_cast<support::SimTime>(rng.next_below(20000));
    }
    return 200 + static_cast<support::SimTime>(rng.next_below(1600));
  };
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    run_differential(seed, 60000, 0.55, delay);
  }
}

TEST(QueueDifferential, EqualTimestampFifoRuns) {
  // Long runs of identical timestamps: pops must come back in push (seq)
  // order, the engine's scheduled-order guarantee.
  auto delay = [](support::Xoshiro256StarStar& rng) -> support::SimTime {
    return rng.next_double() < 0.9
               ? 0
               : static_cast<support::SimTime>(rng.next_below(3));
  };
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    run_differential(seed, 40000, 0.5, delay);
  }
}

TEST(QueueDifferential, FarFutureJumpsForceWindowAdvances) {
  // Delays far beyond any sane bucket span: almost everything lands in the
  // far tier and migrates across repeated window re-anchors.
  auto delay = [](support::Xoshiro256StarStar& rng) -> support::SimTime {
    if (rng.next_double() < 0.3) {
      return static_cast<support::SimTime>(rng.next_below(1'000'000'000));
    }
    return static_cast<support::SimTime>(rng.next_below(500));
  };
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    run_differential(seed, 40000, 0.5, delay);
  }
}

TEST(QueueDifferential, DriftingGapScaleForcesRetunes) {
  // The inter-event gap scale swings by 1000x in waves, so the adaptive
  // width keeps chasing it through rebuilds.
  int phase = 0;
  auto delay = [&phase](support::Xoshiro256StarStar& rng) -> support::SimTime {
    ++phase;
    const std::uint64_t scale = ((phase / 20000) % 2 == 0) ? 100 : 100'000;
    return 1 + static_cast<support::SimTime>(rng.next_below(scale));
  };
  run_differential(31, 120000, 0.55, delay);
}

TEST(QueueDifferential, NearlyEmptyAndBurstyQueues) {
  // Pop-heavy traffic keeps the queue at a handful of events, then push
  // bursts refill it — exercises the small-size retune guard and repeated
  // empty/refill cycles.
  auto delay = [](support::Xoshiro256StarStar& rng) -> support::SimTime {
    return static_cast<support::SimTime>(rng.next_below(5000));
  };
  for (std::uint64_t seed = 41; seed <= 44; ++seed) {
    run_differential(seed, 30000, 0.35, delay);
  }
}

TEST(QueueDifferential, PeekTimeIsExactAndReadOnly) {
  // Regression: peek_time must NOT advance the drain cursor. The sharded
  // window loop peeks once per window and then keeps pushing into the queue;
  // a peek that retires cursor buckets (without raising the floor the way
  // pop does) strands later pushes in buckets the cursor already passed, and
  // those events sit unexecuted until an unrelated window re-anchor — they
  // then fire LATE, emitting sends at stale virtual times. Interleaving a
  // peek before every operation reproduces exactly that footgun: any
  // cursor movement during peek makes a subsequent pop or a later peek
  // disagree with the reference heap.
  auto delay = [](support::Xoshiro256StarStar& rng) -> support::SimTime {
    const double roll = rng.next_double();
    if (roll < 0.1) {  // far tier, forces occupied-bucket scans in peek
      return 1'000'000 + static_cast<support::SimTime>(rng.next_below(1u << 30));
    }
    if (roll < 0.4) return 0;  // lands in the partially drained cursor bucket
    return static_cast<support::SimTime>(rng.next_below(4000));
  };
  for (std::uint64_t seed = 51; seed <= 54; ++seed) {
    support::Xoshiro256StarStar rng(seed);
    CalendarQueue calendar;
    ReferenceQueue reference;
    support::SimTime now = 0;
    std::uint64_t seq = 0;
    for (int i = 0; i < 50000; ++i) {
      if (reference.size() > 0) {
        ASSERT_EQ(calendar.peek_time(), reference.peek_time()) << "op " << i;
        // A second peek must see the same thing — peeking is idempotent.
        ASSERT_EQ(calendar.peek_time(), reference.peek_time()) << "op " << i;
      }
      if (reference.size() == 0 || rng.next_double() < 0.5) {
        const Event ev{now + delay(rng), now, seq++, nullptr,
                       EventKind::kGeneric, 0, 0, 0};
        calendar.push(ev);
        reference.push(ev);
      } else {
        Event got{}, want{};
        ASSERT_TRUE(calendar.pop(got));
        ASSERT_TRUE(reference.pop(want));
        ASSERT_EQ(got.time, want.time) << "op " << i;
        ASSERT_EQ(got.seq, want.seq) << "op " << i;
        now = got.time;
      }
    }
  }
}

TEST(QueueDifferential, MaxTimeEventsDoNotOverflow) {
  // Events at SimTime max must neither overflow the window arithmetic nor
  // disturb the order.
  CalendarQueue calendar;
  ReferenceQueue reference;
  constexpr support::SimTime kMax =
      std::numeric_limits<support::SimTime>::max();
  std::uint64_t seq = 0;
  for (const support::SimTime t :
       {support::SimTime{0}, kMax, support::SimTime{5}, kMax - 1, kMax,
        support::SimTime{5}}) {
    const Event ev{t, 0, seq++, nullptr, EventKind::kGeneric, 0, 0, 0};
    calendar.push(ev);
    reference.push(ev);
  }
  Event got{}, want{};
  while (reference.pop(want)) {
    ASSERT_TRUE(calendar.pop(got));
    EXPECT_EQ(got.time, want.time);
    EXPECT_EQ(got.seq, want.seq);
  }
  EXPECT_FALSE(calendar.pop(got));
}

TEST(CalendarQueue, TracksSizeAndHighWater) {
  CalendarQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.max_size(), 0u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    q.push(Event{static_cast<support::SimTime>(i * 7), 0, i, nullptr,
                 EventKind::kGeneric, 0, 0, 0});
  }
  EXPECT_EQ(q.size(), 100u);
  EXPECT_EQ(q.max_size(), 100u);
  Event ev{};
  for (int i = 0; i < 60; ++i) ASSERT_TRUE(q.pop(ev));
  EXPECT_EQ(q.size(), 40u);
  EXPECT_EQ(q.max_size(), 100u);  // high-water never resets
}

}  // namespace
}  // namespace dws::sim
