/// Steady-state allocation test for the typed event core. This binary
/// overrides the global allocator with a counting shim (same technique as
/// bench/micro_core.cpp) and asserts that once an engine workload has warmed
/// up — slab pools grown, calendar buckets at capacity, adaptive width
/// settled — the schedule/dispatch/deliver path performs ZERO heap
/// allocations. It must be its own test binary: the operator new/delete
/// overrides are process-wide.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "sim/network.hpp"
#include "sim/pool.hpp"
#include "topo/latency.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

constexpr std::size_t kHeader = alignof(std::max_align_t);

void* counted_new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* raw = std::malloc(size + kHeader);
  if (!raw) throw std::bad_alloc();
  std::memcpy(raw, &size, sizeof(size));
  return static_cast<char*>(raw) + kHeader;
}

void counted_delete(void* p) noexcept {
  if (!p) return;
  std::free(static_cast<char*>(p) - kHeader);
}

}  // namespace

void* operator new(std::size_t size) { return counted_new(size); }
void* operator new[](std::size_t size) { return counted_new(size); }
void operator delete(void* p) noexcept { counted_delete(p); }
void operator delete[](void* p) noexcept { counted_delete(p); }
void operator delete(void* p, std::size_t) noexcept { counted_delete(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_delete(p); }

namespace dws::sim {
namespace {

/// The micro_core actor workload, reduced: self-rescheduling steps plus
/// pooled payload deliveries — the exact shape of a simulated run's hot loop.
class Workload final : public EventSink {
 public:
  static constexpr std::uint32_t kActors = 256;

  explicit Workload(Engine& engine) : engine_(engine) {
    for (std::uint32_t a = 0; a < kActors; ++a) schedule_step(a);
  }

  void on_event(const Event& ev) override {
    if (ev.kind == EventKind::kWorkerStep) {
      if (++steps_ % 4 == 0) {
        const std::uint32_t dst = (ev.rank * 2654435761u) % kActors;
        engine_.schedule_after(2000, *this, EventKind::kNetworkDeliver, dst,
                               pool_.acquire(steps_));
      }
      schedule_step(ev.rank);
    } else {
      delivered_ += pool_.take(ev.payload) != 0 ? 1 : 0;
    }
  }

  std::uint64_t delivered() const noexcept { return delivered_; }

 private:
  void schedule_step(std::uint32_t actor) {
    noise_ = noise_ * 6364136223846793005ULL + actor + 1442695040888963407ULL;
    const auto delay =
        200 + static_cast<support::SimTime>((noise_ >> 33) % 1600);
    engine_.schedule_after(delay, *this, EventKind::kWorkerStep, actor);
  }

  Engine& engine_;
  SlabPool<std::uint64_t> pool_;
  std::uint64_t noise_ = 0x9e3779b97f4a7c15ULL;
  std::uint64_t steps_ = 0;
  std::uint64_t delivered_ = 0;
};

/// A workload reaches steady state once every container has grown to its
/// high-water capacity; from then on the typed event path must not allocate
/// at all. The warm-up length is workload-dependent (calendar buckets reach
/// their peak cluster size one by one as the window sweeps), so instead of
/// guessing it we scan fixed-size measurement windows for one with zero
/// allocations. A genuine per-event allocation (a closure, a heap node, a
/// copy) would make EVERY window allocate thousands of times, so the scan
/// still fails loudly on a real regression.
TEST(SteadyStateAllocation, TypedEventLoopAllocatesNothing) {
  Engine engine;
  Workload workload(engine);
  engine.run(2'000'000);  // initial warm-up: pools + adaptive width settle

  std::uint64_t last_window = 0;
  bool clean = false;
  for (int window = 0; window < 10 && !clean; ++window) {
    const std::uint64_t before = g_alloc_count.load();
    engine.run(1'000'000);
    last_window = g_alloc_count.load() - before;
    clean = last_window == 0;
  }
  EXPECT_TRUE(clean) << "typed event hot path never went allocation-free; "
                        "last 1M-event window allocated "
                     << last_window << " times";
  EXPECT_GT(workload.delivered(), 0u);
}

TEST(SteadyStateAllocation, NetworkSendDeliverAllocatesNothing) {
  // The full transport path: Network::send -> slab park -> kNetworkDeliver
  // -> channel retire, on a fixed rank pair set so the channel-node
  // recycling keeps the map churn allocation-free too.
  topo::TofuMachine machine;
  topo::JobLayout layout(machine, 16, topo::Placement::kOnePerNode);
  topo::LatencyModel latency(layout);

  Engine engine;
  std::uint64_t received = 0;
  Network<std::uint64_t> network(
      engine, latency,
      [&received](topo::Rank, std::uint64_t v) { received += v != 0; });

  std::uint64_t noise = 1;
  const auto send_some = [&](int n) {
    for (int i = 0; i < n; ++i) {
      noise = noise * 6364136223846793005ULL + 1442695040888963407ULL;
      const auto src = static_cast<topo::Rank>((noise >> 33) % 16);
      const auto dst = static_cast<topo::Rank>((src + 1 + (noise >> 40) % 15) % 16);
      network.send(src, dst, noise | 1, 64);
    }
  };

  // Same windowed scan as above: the calendar's per-bucket capacities take
  // many window sweeps to reach their peak cluster size with such a small
  // in-flight population, so we look for the first allocation-free window
  // rather than hardcoding the warm-up length. Per-message allocations
  // (channel map nodes, parked-message copies) would taint every window.
  std::uint64_t last_window = 0;
  bool clean = false;
  for (int window = 0; window < 80 && !clean; ++window) {
    const std::uint64_t before = g_alloc_count.load();
    for (int round = 0; round < 500; ++round) {
      send_some(32);
      engine.run(32);
    }
    last_window = g_alloc_count.load() - before;
    clean = last_window == 0;
  }
  EXPECT_TRUE(clean) << "network send/deliver path never went "
                        "allocation-free; last 500-round window allocated "
                     << last_window << " times";
  EXPECT_GT(received, 0u);
}

}  // namespace
}  // namespace dws::sim
