#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "support/check.hpp"

namespace dws::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_FALSE(e.step());
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, TiesFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, NowAdvancesToEventTime) {
  Engine e;
  support::SimTime seen = -1;
  e.schedule_at(42, [&] { seen = e.now(); });
  e.run();
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(e.now(), 42);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine e;
  support::SimTime inner = -1;
  e.schedule_at(100, [&] {
    e.schedule_after(50, [&] { inner = e.now(); });
  });
  e.run();
  EXPECT_EQ(inner, 150);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) e.schedule_after(1, chain);
  };
  e.schedule_at(0, chain);
  e.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(e.now(), 4);
}

TEST(Engine, StopHaltsRun) {
  Engine e;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(i, [&] {
      ++fired;
      if (fired == 3) e.stop();
    });
  }
  e.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(e.pending(), 7u);
  EXPECT_TRUE(e.stopped());
}

TEST(Engine, RunAgainAfterStopResumes) {
  Engine e;
  int fired = 0;
  for (int i = 0; i < 4; ++i) {
    e.schedule_at(i, [&] {
      ++fired;
      if (fired == 2) e.stop();
    });
  }
  e.run();
  EXPECT_EQ(fired, 2);
  e.run();
  EXPECT_EQ(fired, 4);
}

TEST(Engine, MaxEventsLimitsExecution) {
  Engine e;
  int fired = 0;
  for (int i = 0; i < 10; ++i) e.schedule_at(i, [&] { ++fired; });
  EXPECT_EQ(e.run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(e.run(), 6u);
  EXPECT_EQ(fired, 10);
}

TEST(Engine, CountsExecutedEvents) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.events_executed(), 7u);
}

TEST(Engine, SchedulingAtCurrentTimeIsAllowed) {
  Engine e;
  bool ran = false;
  e.schedule_at(10, [&] { e.schedule_at(e.now(), [&] { ran = true; }); });
  e.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(e.now(), 10);
}

TEST(Engine, OverflowingDelayFailsTheCheckInsteadOfWrapping) {
  // schedule_after(huge) used to wrap SimTime and fire the event in the past;
  // now it must trip DWS_CHECK before corrupting the queue.
  Engine e;
  e.schedule_at(100, [] {});
  e.run();
  ASSERT_EQ(e.now(), 100);

  struct CheckFailure {};
  static bool tripped;
  tripped = false;
  const auto prev = support::set_check_handler(
      [](const char*, const char*, int) { tripped = true; throw CheckFailure{}; });
  EXPECT_THROW(
      e.schedule_after(std::numeric_limits<support::SimTime>::max(), [] {}),
      CheckFailure);
  support::set_check_handler(prev);
  EXPECT_TRUE(tripped);
  EXPECT_EQ(e.pending(), 0u);  // the bad event was never enqueued

  // A maximal-but-legal delay is still accepted.
  e.schedule_after(std::numeric_limits<support::SimTime>::max() - e.now(),
                   [] {});
  EXPECT_EQ(e.pending(), 1u);
}

/// Records every typed event it receives, tagged with the engine clock.
class RecordingSink final : public EventSink {
 public:
  struct Hit {
    support::SimTime at;
    EventKind kind;
    std::uint32_t rank;
    std::uint32_t payload;
    bool operator==(const Hit&) const = default;
  };

  explicit RecordingSink(Engine& engine) : engine_(engine) {}
  void on_event(const Event& ev) override {
    hits.push_back({engine_.now(), ev.kind, ev.rank, ev.payload});
  }

  std::vector<Hit> hits;

 private:
  Engine& engine_;
};

TEST(EngineTypedEvents, DispatchToTheScheduledSink) {
  Engine e;
  RecordingSink a(e), b(e);
  e.schedule_at(10, a, EventKind::kWorkerStep, 3, 7);
  e.schedule_at(5, b, EventKind::kNetworkDeliver, 1, 42);
  e.run();
  ASSERT_EQ(a.hits.size(), 1u);
  ASSERT_EQ(b.hits.size(), 1u);
  EXPECT_EQ(a.hits[0],
            (RecordingSink::Hit{10, EventKind::kWorkerStep, 3, 7}));
  EXPECT_EQ(b.hits[0],
            (RecordingSink::Hit{5, EventKind::kNetworkDeliver, 1, 42}));
  EXPECT_EQ(e.events_executed(), 2u);
}

TEST(EngineTypedEvents, InterleaveWithGenericEventsInScheduleOrder) {
  // Typed and generic events at the same timestamp share one seq counter, so
  // they fire in exactly the order they were scheduled.
  class Relay final : public EventSink {
   public:
    explicit Relay(std::vector<std::uint32_t>& out) : out_(out) {}
    void on_event(const Event& ev) override { out_.push_back(ev.payload); }

   private:
    std::vector<std::uint32_t>& out_;
  };

  Engine e;
  std::vector<std::uint32_t> fired;
  Relay relay(fired);
  e.schedule_at(10, relay, EventKind::kWorkerStart, 0, 0);
  e.schedule_at(10, [&fired] { fired.push_back(1); });
  e.schedule_at(10, relay, EventKind::kWorkerStep, 0, 2);
  e.schedule_at(10, [&fired] { fired.push_back(3); });
  e.run();
  EXPECT_EQ(fired, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(EngineTypedEvents, ScheduleAfterOverflowIsRejected) {
  // Same overflow guard as the closure path, via the typed overload.
  Engine e;
  RecordingSink sink(e);
  e.schedule_at(100, sink, EventKind::kWorkerStep, 0, 0);
  e.step();

  struct CheckFailure {};
  static bool tripped;
  tripped = false;
  const auto prev = support::set_check_handler(
      [](const char*, const char*, int) { tripped = true; throw CheckFailure{}; });
  EXPECT_THROW(e.schedule_after(std::numeric_limits<support::SimTime>::max(),
                                sink, EventKind::kWorkerStep, 0, 0),
               CheckFailure);
  support::set_check_handler(prev);
  EXPECT_TRUE(tripped);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, TracksPendingHighWater) {
  Engine e;
  RecordingSink sink(e);
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(10 + i, sink, EventKind::kWorkerStep, 0, 0);
  }
  EXPECT_EQ(e.max_pending(), 5u);
  e.run();
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_EQ(e.max_pending(), 5u);  // high-water survives the drain
  e.schedule_at(100, sink, EventKind::kWorkerStep, 0, 0);
  EXPECT_EQ(e.max_pending(), 5u);  // ... and does not reset on reuse
}

TEST(Engine, DeterministicAcrossRuns) {
  auto trace = [] {
    Engine e;
    std::vector<std::pair<support::SimTime, int>> log;
    for (int i = 0; i < 50; ++i) {
      e.schedule_at(i % 7, [&log, &e, i] { log.emplace_back(e.now(), i); });
    }
    e.run();
    return log;
  };
  EXPECT_EQ(trace(), trace());
}

}  // namespace
}  // namespace dws::sim
