#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "support/check.hpp"

namespace dws::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_FALSE(e.step());
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, TiesFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, NowAdvancesToEventTime) {
  Engine e;
  support::SimTime seen = -1;
  e.schedule_at(42, [&] { seen = e.now(); });
  e.run();
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(e.now(), 42);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine e;
  support::SimTime inner = -1;
  e.schedule_at(100, [&] {
    e.schedule_after(50, [&] { inner = e.now(); });
  });
  e.run();
  EXPECT_EQ(inner, 150);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) e.schedule_after(1, chain);
  };
  e.schedule_at(0, chain);
  e.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(e.now(), 4);
}

TEST(Engine, StopHaltsRun) {
  Engine e;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(i, [&] {
      ++fired;
      if (fired == 3) e.stop();
    });
  }
  e.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(e.pending(), 7u);
  EXPECT_TRUE(e.stopped());
}

TEST(Engine, RunAgainAfterStopResumes) {
  Engine e;
  int fired = 0;
  for (int i = 0; i < 4; ++i) {
    e.schedule_at(i, [&] {
      ++fired;
      if (fired == 2) e.stop();
    });
  }
  e.run();
  EXPECT_EQ(fired, 2);
  e.run();
  EXPECT_EQ(fired, 4);
}

TEST(Engine, MaxEventsLimitsExecution) {
  Engine e;
  int fired = 0;
  for (int i = 0; i < 10; ++i) e.schedule_at(i, [&] { ++fired; });
  EXPECT_EQ(e.run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(e.run(), 6u);
  EXPECT_EQ(fired, 10);
}

TEST(Engine, CountsExecutedEvents) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.events_executed(), 7u);
}

TEST(Engine, SchedulingAtCurrentTimeIsAllowed) {
  Engine e;
  bool ran = false;
  e.schedule_at(10, [&] { e.schedule_at(e.now(), [&] { ran = true; }); });
  e.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(e.now(), 10);
}

TEST(Engine, OverflowingDelayFailsTheCheckInsteadOfWrapping) {
  // schedule_after(huge) used to wrap SimTime and fire the event in the past;
  // now it must trip DWS_CHECK before corrupting the queue.
  Engine e;
  e.schedule_at(100, [] {});
  e.run();
  ASSERT_EQ(e.now(), 100);

  struct CheckFailure {};
  static bool tripped;
  tripped = false;
  const auto prev = support::set_check_handler(
      [](const char*, const char*, int) { tripped = true; throw CheckFailure{}; });
  EXPECT_THROW(
      e.schedule_after(std::numeric_limits<support::SimTime>::max(), [] {}),
      CheckFailure);
  support::set_check_handler(prev);
  EXPECT_TRUE(tripped);
  EXPECT_EQ(e.pending(), 0u);  // the bad event was never enqueued

  // A maximal-but-legal delay is still accepted.
  e.schedule_after(std::numeric_limits<support::SimTime>::max() - e.now(),
                   [] {});
  EXPECT_EQ(e.pending(), 1u);
}

/// Records every typed event it receives, tagged with the engine clock.
class RecordingSink final : public EventSink {
 public:
  struct Hit {
    support::SimTime at;
    EventKind kind;
    std::uint32_t rank;
    std::uint32_t payload;
    bool operator==(const Hit&) const = default;
  };

  explicit RecordingSink(Engine& engine) : engine_(engine) {}
  void on_event(const Event& ev) override {
    hits.push_back({engine_.now(), ev.kind, ev.rank, ev.payload});
  }

  std::vector<Hit> hits;

 private:
  Engine& engine_;
};

TEST(EngineTypedEvents, DispatchToTheScheduledSink) {
  Engine e;
  RecordingSink a(e), b(e);
  e.schedule_at(10, a, EventKind::kWorkerStep, 3, 7);
  e.schedule_at(5, b, EventKind::kNetworkDeliver, 1, 42);
  e.run();
  ASSERT_EQ(a.hits.size(), 1u);
  ASSERT_EQ(b.hits.size(), 1u);
  EXPECT_EQ(a.hits[0],
            (RecordingSink::Hit{10, EventKind::kWorkerStep, 3, 7}));
  EXPECT_EQ(b.hits[0],
            (RecordingSink::Hit{5, EventKind::kNetworkDeliver, 1, 42}));
  EXPECT_EQ(e.events_executed(), 2u);
}

TEST(EngineTypedEvents, InterleaveWithGenericEventsByStructuralKey) {
  // Typed and generic events at the same (time, t_sched) order by the
  // structural key (kind, rank, src) before falling back to schedule order —
  // so the two kGeneric closures (kind 0) fire before the typed events, each
  // group internally FIFO, and kWorkerStart (kind 2) precedes kWorkerStep
  // (kind 3). The structural sort is the price of a shard-count-invariant
  // event order (see sim/event.hpp); same-key events still fire in exactly
  // the order they were scheduled.
  class Relay final : public EventSink {
   public:
    explicit Relay(std::vector<std::uint32_t>& out) : out_(out) {}
    void on_event(const Event& ev) override { out_.push_back(ev.payload); }

   private:
    std::vector<std::uint32_t>& out_;
  };

  Engine e;
  std::vector<std::uint32_t> fired;
  Relay relay(fired);
  e.schedule_at(10, relay, EventKind::kWorkerStep, 0, 0);
  e.schedule_at(10, [&fired] { fired.push_back(1); });
  e.schedule_at(10, relay, EventKind::kWorkerStart, 0, 2);
  e.schedule_at(10, [&fired] { fired.push_back(3); });
  e.run();
  EXPECT_EQ(fired, (std::vector<std::uint32_t>{1, 3, 2, 0}));
}

TEST(EngineTypedEvents, ScheduleAfterOverflowIsRejected) {
  // Same overflow guard as the closure path, via the typed overload.
  Engine e;
  RecordingSink sink(e);
  e.schedule_at(100, sink, EventKind::kWorkerStep, 0, 0);
  e.step();

  struct CheckFailure {};
  static bool tripped;
  tripped = false;
  const auto prev = support::set_check_handler(
      [](const char*, const char*, int) { tripped = true; throw CheckFailure{}; });
  EXPECT_THROW(e.schedule_after(std::numeric_limits<support::SimTime>::max(),
                                sink, EventKind::kWorkerStep, 0, 0),
               CheckFailure);
  support::set_check_handler(prev);
  EXPECT_TRUE(tripped);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, TracksPendingHighWater) {
  Engine e;
  RecordingSink sink(e);
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(10 + i, sink, EventKind::kWorkerStep, 0, 0);
  }
  EXPECT_EQ(e.max_pending(), 5u);
  e.run();
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_EQ(e.max_pending(), 5u);  // high-water survives the drain
  e.schedule_at(100, sink, EventKind::kWorkerStep, 0, 0);
  EXPECT_EQ(e.max_pending(), 5u);  // ... and does not reset on reuse
}

TEST(EngineInject, OrdersCrossShardEventsBySenderScheduleTime) {
  // Regression for the sharded merge rule: two injected events arriving at
  // the SAME virtual time but scheduled at different sender times must fire
  // in t_sched order — the order an unsharded run would have produced — no
  // matter which mailbox drained first (i.e. which inject() ran first and
  // grabbed the smaller local seq).
  Engine e(/*shard_id=*/0);
  RecordingSink sink(e);
  e.inject(1000, /*t_sched=*/700, /*origin=*/2, /*src=*/8, sink,
           EventKind::kNetworkDeliver, 0, 2);  // later send, injected first
  e.inject(1000, /*t_sched=*/300, /*origin=*/1, /*src=*/4, sink,
           EventKind::kNetworkDeliver, 0, 1);  // earlier send wins
  e.schedule_at(1000, sink, EventKind::kWorkerStep, 0, 3);  // local, t_sched=0
  e.run();
  ASSERT_EQ(sink.hits.size(), 3u);
  EXPECT_EQ(sink.hits[0].payload, 3u);  // local event scheduled at t=0
  EXPECT_EQ(sink.hits[1].payload, 1u);
  EXPECT_EQ(sink.hits[2].payload, 2u);
  // Distinct t_sched values: the structural tail never decided anything.
  EXPECT_EQ(e.merge_ambiguities(), 0u);
}

TEST(EngineInject, EqualTimeDeliveriesOrderBySenderRank) {
  // Identical (time, t_sched) deliveries to one rank from different shards:
  // the structural key falls through to `src`, the sending rank. The sender
  // determines the sending shard, so this order is shard-count-invariant —
  // deterministic, and NOT an ambiguity.
  Engine e(/*shard_id=*/0);
  RecordingSink sink(e);
  e.inject(500, 500, /*origin=*/3, /*src=*/9, sink,
           EventKind::kNetworkDeliver, 0, 33);
  e.inject(500, 500, /*origin=*/1, /*src=*/4, sink,
           EventKind::kNetworkDeliver, 0, 11);
  e.run();
  ASSERT_EQ(sink.hits.size(), 2u);
  EXPECT_EQ(sink.hits[0].payload, 11u);  // src 4 before src 9
  EXPECT_EQ(sink.hits[1].payload, 33u);
  EXPECT_EQ(e.merge_ambiguities(), 0u);
}

TEST(EngineInject, FullKeyTieAcrossShardsIsCountedAsAmbiguous) {
  // A full structural-key tie between different origins cannot happen in the
  // sharded ws protocol — equal src means equal sending shard. Fabricate one
  // anyway: the order falls through to the local seq (injection order here),
  // which a serial run need not share, and the engine must count it so the
  // differential suite can prove it never happens for real.
  Engine e(/*shard_id=*/0);
  RecordingSink sink(e);
  e.inject(500, 500, /*origin=*/3, /*src=*/7, sink,
           EventKind::kNetworkDeliver, 2, 33);
  e.inject(500, 500, /*origin=*/1, /*src=*/7, sink,
           EventKind::kNetworkDeliver, 2, 11);
  e.run();
  ASSERT_EQ(sink.hits.size(), 2u);
  EXPECT_EQ(sink.hits[0].payload, 33u);  // local seq: injection order
  EXPECT_EQ(sink.hits[1].payload, 11u);
  EXPECT_EQ(e.merge_ambiguities(), 1u);
}

TEST(EngineInject, LocalTiesAreNotAmbiguous) {
  // Same-origin ties are the ordinary FIFO case — the counter must ignore
  // them, and injected events whose keys differ in t_sched as well.
  Engine e(/*shard_id=*/0);
  RecordingSink sink(e);
  e.schedule_at(100, sink, EventKind::kWorkerStep, 0, 1);
  e.schedule_at(100, sink, EventKind::kWorkerStep, 0, 2);
  e.inject(200, 150, /*origin=*/1, /*src=*/5, sink,
           EventKind::kNetworkDeliver, 0, 3);
  e.inject(200, 160, /*origin=*/2, /*src=*/6, sink,
           EventKind::kNetworkDeliver, 0, 4);
  e.run();
  ASSERT_EQ(sink.hits.size(), 4u);
  EXPECT_EQ(e.merge_ambiguities(), 0u);
}

TEST(EngineInject, RunUntilExecutesExactlyTheWindow) {
  // run_until(w_end) is the per-window execution primitive: strictly-before
  // semantics, clock parked at the last executed event, remainder intact.
  Engine e;
  RecordingSink sink(e);
  for (const support::SimTime t : {10, 20, 30, 40}) {
    e.schedule_at(t, sink, EventKind::kWorkerStep, 0,
                  static_cast<std::uint32_t>(t));
  }
  EXPECT_EQ(e.run_until(30), 2u);  // 10 and 20; 30 is NOT inside the window
  EXPECT_EQ(sink.hits.size(), 2u);
  EXPECT_EQ(e.now(), 20);
  EXPECT_EQ(e.next_event_time(999), 30);
  EXPECT_EQ(e.run_until(999), 2u);
  EXPECT_EQ(e.next_event_time(999), 999);  // horizon when drained
}

TEST(Engine, DeterministicAcrossRuns) {
  auto trace = [] {
    Engine e;
    std::vector<std::pair<support::SimTime, int>> log;
    for (int i = 0; i < 50; ++i) {
      e.schedule_at(i % 7, [&log, &e, i] { log.emplace_back(e.now(), i); });
    }
    e.run();
    return log;
  };
  EXPECT_EQ(trace(), trace());
}

}  // namespace
}  // namespace dws::sim
