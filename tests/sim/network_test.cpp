#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

namespace dws::sim {
namespace {

struct TestMsg {
  int id = 0;
};

struct Delivery {
  topo::Rank dst;
  int id;
  support::SimTime at;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : layout_(machine_, 64, topo::Placement::kOnePerNode),
        model_(layout_),
        net_(engine_, model_, [this](topo::Rank dst, TestMsg m) {
          log_.push_back({dst, m.id, engine_.now()});
        }) {}

  topo::TofuMachine machine_;
  topo::JobLayout layout_;
  topo::LatencyModel model_;
  Engine engine_;
  Network<TestMsg> net_;
  std::vector<Delivery> log_;
};

TEST_F(NetworkTest, DeliversAfterModelLatency) {
  const auto expect = model_.message_latency(0, 63, 16);
  net_.send(0, 63, TestMsg{1}, 16);
  engine_.run();
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].dst, 63u);
  EXPECT_EQ(log_[0].id, 1);
  EXPECT_EQ(log_[0].at, expect);
}

TEST_F(NetworkTest, NearRanksArriveBeforeFarRanks) {
  net_.send(0, 63, TestMsg{2}, 0);  // far
  net_.send(0, 1, TestMsg{1}, 0);   // same blade
  engine_.run();
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_EQ(log_[0].id, 1);
  EXPECT_EQ(log_[1].id, 2);
}

TEST_F(NetworkTest, ChannelDoesNotOvertake) {
  // A large message followed immediately by a tiny one on the same channel:
  // the tiny one would arrive first by raw latency, but MPI ordering says no.
  net_.send(0, 63, TestMsg{1}, 100000);  // 20 us serialization
  net_.send(0, 63, TestMsg{2}, 0);
  engine_.run();
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_EQ(log_[0].id, 1);
  EXPECT_EQ(log_[1].id, 2);
  EXPECT_GE(log_[1].at, log_[0].at);
}

TEST_F(NetworkTest, DistinctChannelsMayOvertake) {
  // Same sender, different destinations: no ordering constraint.
  net_.send(0, 63, TestMsg{1}, 100000);
  net_.send(0, 1, TestMsg{2}, 0);
  engine_.run();
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_EQ(log_[0].id, 2);
}

TEST_F(NetworkTest, CountsMessagesAndBytes) {
  net_.send(0, 1, TestMsg{1}, 100);
  net_.send(1, 2, TestMsg{2}, 50);
  engine_.run();
  EXPECT_EQ(net_.stats().messages, 2u);
  EXPECT_EQ(net_.stats().bytes, 150u);
  EXPECT_EQ(net_.stats().intra_node_messages, 0u);
}

TEST_F(NetworkTest, SeparateSendersInterleaveByLatency) {
  net_.send(5, 6, TestMsg{1}, 0);
  net_.send(10, 50, TestMsg{2}, 0);
  engine_.run();
  ASSERT_EQ(log_.size(), 2u);
  // Deliveries interleave purely by model latency (ids sorted accordingly).
  const bool first_is_nearer = model_.message_latency(5, 6, 0) <=
                               model_.message_latency(10, 50, 0);
  EXPECT_EQ(log_[0].id, first_is_nearer ? 1 : 2);
  EXPECT_EQ(log_[0].at, std::min(model_.message_latency(5, 6, 0),
                                 model_.message_latency(10, 50, 0)));
}

TEST(NetworkIntraNode, CountsSharedMemoryTraffic) {
  topo::TofuMachine machine;
  topo::JobLayout layout(machine, 16, topo::Placement::kGrouped, 8);
  topo::LatencyModel model(layout);
  Engine engine;
  int delivered = 0;
  Network<TestMsg> net(engine, model,
                       [&](topo::Rank, TestMsg) { ++delivered; });
  net.send(0, 1, TestMsg{1}, 0);  // ranks 0,1 share node 0 under kGrouped
  net.send(0, 8, TestMsg{2}, 0);  // rank 8 is on node 1
  engine.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.stats().intra_node_messages, 1u);
}

TEST(NetworkCongestion, BoundaryLoadInflatesLaterWindows) {
  topo::TofuMachine machine;
  topo::JobLayout layout(machine, 64, topo::Placement::kOnePerNode);
  topo::LatencyModel model(layout);
  Engine engine;
  std::vector<support::SimTime> arrivals;
  CongestionParams congestion;
  congestion.enabled = true;
  congestion.capacity_hops = 10.0;
  congestion.window = 1000;
  Network<TestMsg> net(
      engine, model,
      [&](topo::Rank, TestMsg) { arrivals.push_back(engine.now()); },
      congestion);
  // A flight launched in window 0 crosses boundary 1 (t=1000) and loads it
  // with its hops. A send two windows later reads that boundary's load and
  // pays the inflated latency; the first send read window -1 (nothing) and
  // sailed through raw.
  const auto raw1 = model.message_latency(0, 63, 0);
  ASSERT_GE(raw1, 1000);  // the flight is in the air as boundary 1 passes
  net.send(0, 63, TestMsg{1}, 0);
  engine.schedule_at(2500, [&] { net.send(1, 62, TestMsg{2}, 0); });
  engine.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], raw1);
  const double hops1 = static_cast<double>(model.hops(0, 63));
  const double raw2 = static_cast<double>(model.message_latency(1, 62, 0));
  EXPECT_EQ(arrivals[1],
            2500 + static_cast<support::SimTime>(raw2 * (1.0 + hops1 / 10.0)));
  EXPECT_GE(net.stats().max_load_hops, hops1);
}

TEST(NetworkCongestion, SameWindowSendsDoNotSeeEachOther) {
  // Both sends land in window 0, whose read boundary predates the run:
  // neither inflates the other. (The fluid model's same-instant coupling
  // moved to the next window boundary when congestion became windowed.)
  topo::TofuMachine machine;
  topo::JobLayout layout(machine, 64, topo::Placement::kOnePerNode);
  topo::LatencyModel model(layout);
  Engine engine;
  std::vector<support::SimTime> arrivals;
  CongestionParams congestion;
  congestion.enabled = true;
  congestion.capacity_hops = 10.0;
  congestion.window = 1000;
  Network<TestMsg> net(
      engine, model,
      [&](topo::Rank, TestMsg) { arrivals.push_back(engine.now()); },
      congestion);
  net.send(0, 63, TestMsg{1}, 0);
  net.send(1, 62, TestMsg{2}, 0);
  engine.run();
  ASSERT_EQ(arrivals.size(), 2u);
  std::vector<support::SimTime> raw = {model.message_latency(0, 63, 0),
                                       model.message_latency(1, 62, 0)};
  std::sort(raw.begin(), raw.end());
  EXPECT_EQ(arrivals[0], raw[0]);
  EXPECT_EQ(arrivals[1], raw[1]);
}

TEST(NetworkCongestion, LoadExpiresWithTheFlight) {
  topo::TofuMachine machine;
  topo::JobLayout layout(machine, 64, topo::Placement::kOnePerNode);
  topo::LatencyModel model(layout);
  Engine engine;
  std::vector<support::SimTime> arrivals;
  CongestionParams congestion;
  congestion.enabled = true;
  congestion.capacity_hops = 10.0;
  congestion.window = 1000;
  Network<TestMsg> net(
      engine, model,
      [&](topo::Rank, TestMsg) { arrivals.push_back(engine.now()); },
      congestion);
  const auto raw1 = model.message_latency(0, 63, 0);
  ASSERT_LT(raw1, 4000);  // flight 1 loads no boundary at or past t=4000
  net.send(0, 63, TestMsg{1}, 0);
  // A send long after the flight landed reads an empty boundary: raw latency.
  engine.schedule_at(5500, [&] { net.send(1, 62, TestMsg{2}, 0); });
  engine.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1], 5500 + model.message_latency(1, 62, 0));
}

TEST(NetworkCongestion, SameNodeTrafficIsImmune) {
  topo::TofuMachine machine;
  topo::JobLayout layout(machine, 16, topo::Placement::kGrouped, 8);
  topo::LatencyModel model(layout);
  Engine engine;
  std::vector<support::SimTime> arrivals;
  CongestionParams congestion;
  congestion.enabled = true;
  congestion.capacity_hops = 1.0;  // tiny capacity: network badly congested
  congestion.window = 800;
  Network<TestMsg> net(
      engine, model,
      [&](topo::Rank, TestMsg) { arrivals.push_back(engine.now()); },
      congestion);
  ASSERT_GE(model.message_latency(0, 8, 0), 800);
  net.send(0, 8, TestMsg{1}, 0);  // inter-node: loads boundary 1 (t=800)
  // An intra-node send in a window whose read boundary carries that load
  // still travels at the shared-memory latency.
  engine.schedule_at(1700, [&] { net.send(0, 1, TestMsg{2}, 0); });
  engine.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1], 1700 + model.params().same_node);
}

TEST(NetworkCongestion, WindowDefaultsToNetworkBase) {
  topo::LatencyParams latency;
  CongestionParams congestion;
  EXPECT_EQ(congestion_window(congestion, latency), latency.network_base);
  congestion.window = 250;
  EXPECT_EQ(congestion_window(congestion, latency), 250);
}

TEST(NetworkFaults, HugeMultiplierSaturatesInsteadOfWrapping) {
  // The wrap guard: an absurd latency multiplier (every link degraded by
  // 1e18x) must clamp the scaled latency instead of wrapping the virtual
  // clock through the double->int cast. The message still arrives, at the
  // saturation point.
  topo::TofuMachine machine;
  topo::JobLayout layout(machine, 64, topo::Placement::kOnePerNode);
  topo::LatencyModel model(layout);
  Engine engine;
  std::vector<support::SimTime> arrivals;
  fault::FaultConfig fc;
  fc.degraded_frac = 1.0;
  fc.degraded_mult = 1e18;
  fault::Injector injector(fc, 64);
  Network<TestMsg> net(
      engine, model,
      [&](topo::Rank, TestMsg) { arrivals.push_back(engine.now()); },
      CongestionParams{}, &injector);
  net.send(0, 63, TestMsg{1}, 16);
  engine.run();
  ASSERT_EQ(arrivals.size(), 1u);
  constexpr support::SimTime kSaturated =
      std::numeric_limits<support::SimTime>::max() / 2;
  EXPECT_EQ(arrivals[0], kSaturated);
  EXPECT_GT(arrivals[0], 0);
}

TEST_F(NetworkTest, RetiresChannelsWhenTheLastDeliveryFires) {
  // Two messages on one channel, one on another: the channel map holds the
  // ordering state only while a delivery is in flight.
  net_.send(0, 5, TestMsg{1}, 16);
  net_.send(0, 5, TestMsg{2}, 16);
  net_.send(3, 7, TestMsg{3}, 16);
  EXPECT_EQ(net_.active_channels(), 2u);
  engine_.run();
  EXPECT_EQ(log_.size(), 3u);
  EXPECT_EQ(net_.active_channels(), 0u);  // all in-flight drained
  EXPECT_EQ(net_.stats().peak_channels, 2u);

  // Reusing a retired channel reopens it (with a recycled map node) and the
  // non-overtaking clamp starts fresh: delivery is at plain now + latency.
  const auto before = engine_.now();
  net_.send(0, 5, TestMsg{4}, 16);
  EXPECT_EQ(net_.active_channels(), 1u);
  engine_.run();
  EXPECT_EQ(log_.back().at, before + model_.message_latency(0, 5, 16));
  EXPECT_EQ(net_.active_channels(), 0u);
  EXPECT_EQ(net_.stats().peak_channels, 2u);  // high-water, not current
}

TEST_F(NetworkTest, PeakChannelsTracksDistinctPairsNotMessages) {
  // Many messages over the same pair count once; the peak is bounded by the
  // number of concurrently in-flight (src, dst) pairs, which is what keeps
  // the channel map small on long runs.
  for (int i = 0; i < 10; ++i) net_.send(1, 2, TestMsg{i}, 8);
  EXPECT_EQ(net_.active_channels(), 1u);
  EXPECT_EQ(net_.stats().peak_channels, 1u);
  for (topo::Rank src = 10; src < 14; ++src) {
    net_.send(src, 20, TestMsg{0}, 8);
  }
  EXPECT_EQ(net_.stats().peak_channels, 5u);
  engine_.run();
  EXPECT_EQ(net_.active_channels(), 0u);
  EXPECT_EQ(net_.stats().messages, 14u);
}

TEST(NetworkDeterminism, SameSendsSameDeliveries) {
  auto run_once = [] {
    topo::TofuMachine machine;
    topo::JobLayout layout(machine, 128, topo::Placement::kOnePerNode);
    topo::LatencyModel model(layout);
    Engine engine;
    std::vector<std::pair<topo::Rank, support::SimTime>> log;
    Network<TestMsg> net(engine, model, [&](topo::Rank dst, TestMsg) {
      log.emplace_back(dst, engine.now());
    });
    for (topo::Rank r = 0; r < 127; ++r) {
      net.send(r, r + 1, TestMsg{static_cast<int>(r)}, r * 8);
    }
    engine.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dws::sim
