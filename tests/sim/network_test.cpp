#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dws::sim {
namespace {

struct TestMsg {
  int id = 0;
};

struct Delivery {
  topo::Rank dst;
  int id;
  support::SimTime at;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : layout_(machine_, 64, topo::Placement::kOnePerNode),
        model_(layout_),
        net_(engine_, model_, [this](topo::Rank dst, TestMsg m) {
          log_.push_back({dst, m.id, engine_.now()});
        }) {}

  topo::TofuMachine machine_;
  topo::JobLayout layout_;
  topo::LatencyModel model_;
  Engine engine_;
  Network<TestMsg> net_;
  std::vector<Delivery> log_;
};

TEST_F(NetworkTest, DeliversAfterModelLatency) {
  const auto expect = model_.message_latency(0, 63, 16);
  net_.send(0, 63, TestMsg{1}, 16);
  engine_.run();
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].dst, 63u);
  EXPECT_EQ(log_[0].id, 1);
  EXPECT_EQ(log_[0].at, expect);
}

TEST_F(NetworkTest, NearRanksArriveBeforeFarRanks) {
  net_.send(0, 63, TestMsg{2}, 0);  // far
  net_.send(0, 1, TestMsg{1}, 0);   // same blade
  engine_.run();
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_EQ(log_[0].id, 1);
  EXPECT_EQ(log_[1].id, 2);
}

TEST_F(NetworkTest, ChannelDoesNotOvertake) {
  // A large message followed immediately by a tiny one on the same channel:
  // the tiny one would arrive first by raw latency, but MPI ordering says no.
  net_.send(0, 63, TestMsg{1}, 100000);  // 20 us serialization
  net_.send(0, 63, TestMsg{2}, 0);
  engine_.run();
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_EQ(log_[0].id, 1);
  EXPECT_EQ(log_[1].id, 2);
  EXPECT_GE(log_[1].at, log_[0].at);
}

TEST_F(NetworkTest, DistinctChannelsMayOvertake) {
  // Same sender, different destinations: no ordering constraint.
  net_.send(0, 63, TestMsg{1}, 100000);
  net_.send(0, 1, TestMsg{2}, 0);
  engine_.run();
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_EQ(log_[0].id, 2);
}

TEST_F(NetworkTest, CountsMessagesAndBytes) {
  net_.send(0, 1, TestMsg{1}, 100);
  net_.send(1, 2, TestMsg{2}, 50);
  engine_.run();
  EXPECT_EQ(net_.stats().messages, 2u);
  EXPECT_EQ(net_.stats().bytes, 150u);
  EXPECT_EQ(net_.stats().intra_node_messages, 0u);
}

TEST_F(NetworkTest, SeparateSendersInterleaveByLatency) {
  net_.send(5, 6, TestMsg{1}, 0);
  net_.send(10, 50, TestMsg{2}, 0);
  engine_.run();
  ASSERT_EQ(log_.size(), 2u);
  // Deliveries interleave purely by model latency (ids sorted accordingly).
  const bool first_is_nearer = model_.message_latency(5, 6, 0) <=
                               model_.message_latency(10, 50, 0);
  EXPECT_EQ(log_[0].id, first_is_nearer ? 1 : 2);
  EXPECT_EQ(log_[0].at, std::min(model_.message_latency(5, 6, 0),
                                 model_.message_latency(10, 50, 0)));
}

TEST(NetworkIntraNode, CountsSharedMemoryTraffic) {
  topo::TofuMachine machine;
  topo::JobLayout layout(machine, 16, topo::Placement::kGrouped, 8);
  topo::LatencyModel model(layout);
  Engine engine;
  int delivered = 0;
  Network<TestMsg> net(engine, model,
                       [&](topo::Rank, TestMsg) { ++delivered; });
  net.send(0, 1, TestMsg{1}, 0);  // ranks 0,1 share node 0 under kGrouped
  net.send(0, 8, TestMsg{2}, 0);  // rank 8 is on node 1
  engine.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.stats().intra_node_messages, 1u);
}

TEST(NetworkCongestion, LoadInflatesLatency) {
  topo::TofuMachine machine;
  topo::JobLayout layout(machine, 64, topo::Placement::kOnePerNode);
  topo::LatencyModel model(layout);
  Engine engine;
  std::vector<support::SimTime> arrivals;
  CongestionParams congestion;
  congestion.enabled = true;
  congestion.capacity_hops = 10.0;
  Network<TestMsg> net(
      engine, model,
      [&](topo::Rank, TestMsg) { arrivals.push_back(engine.now()); },
      congestion);
  // First message sails through; an identical second one sent at the same
  // instant sees the first one's hops as load and takes longer.
  net.send(0, 63, TestMsg{1}, 0);
  net.send(1, 62, TestMsg{2}, 0);
  engine.run();
  ASSERT_EQ(arrivals.size(), 2u);
  const auto raw1 = model.message_latency(0, 63, 0);
  const auto raw2 = model.message_latency(1, 62, 0);
  EXPECT_EQ(arrivals[0], raw1);
  EXPECT_GT(arrivals[1], raw2);
  EXPECT_GT(net.stats().max_load_hops, 0.0);
}

TEST(NetworkCongestion, LoadDrainsAfterDelivery) {
  topo::TofuMachine machine;
  topo::JobLayout layout(machine, 64, topo::Placement::kOnePerNode);
  topo::LatencyModel model(layout);
  Engine engine;
  int delivered = 0;
  CongestionParams congestion;
  congestion.enabled = true;
  congestion.capacity_hops = 10.0;
  Network<TestMsg> net(engine, model,
                       [&](topo::Rank, TestMsg) { ++delivered; }, congestion);
  net.send(0, 63, TestMsg{1}, 0);
  engine.run();
  // After the in-flight message lands, a fresh send sees an empty network.
  std::vector<support::SimTime> arrivals;
  const auto t0 = engine.now();
  Network<TestMsg> net2(
      engine, model,
      [&](topo::Rank, TestMsg) { arrivals.push_back(engine.now() - t0); },
      congestion);
  net2.send(0, 63, TestMsg{2}, 0);
  engine.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], model.message_latency(0, 63, 0));
}

TEST(NetworkCongestion, SameNodeTrafficIsImmune) {
  topo::TofuMachine machine;
  topo::JobLayout layout(machine, 16, topo::Placement::kGrouped, 8);
  topo::LatencyModel model(layout);
  Engine engine;
  std::vector<support::SimTime> arrivals;
  CongestionParams congestion;
  congestion.enabled = true;
  congestion.capacity_hops = 1.0;  // tiny capacity: network badly congested
  Network<TestMsg> net(
      engine, model,
      [&](topo::Rank, TestMsg) { arrivals.push_back(engine.now()); },
      congestion);
  net.send(0, 8, TestMsg{1}, 0);  // inter-node: loads the network
  net.send(0, 1, TestMsg{2}, 0);  // intra-node: unaffected by the load
  engine.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], model.params().same_node);
}

TEST_F(NetworkTest, RetiresChannelsWhenTheLastDeliveryFires) {
  // Two messages on one channel, one on another: the channel map holds the
  // ordering state only while a delivery is in flight.
  net_.send(0, 5, TestMsg{1}, 16);
  net_.send(0, 5, TestMsg{2}, 16);
  net_.send(3, 7, TestMsg{3}, 16);
  EXPECT_EQ(net_.active_channels(), 2u);
  engine_.run();
  EXPECT_EQ(log_.size(), 3u);
  EXPECT_EQ(net_.active_channels(), 0u);  // all in-flight drained
  EXPECT_EQ(net_.stats().peak_channels, 2u);

  // Reusing a retired channel reopens it (with a recycled map node) and the
  // non-overtaking clamp starts fresh: delivery is at plain now + latency.
  const auto before = engine_.now();
  net_.send(0, 5, TestMsg{4}, 16);
  EXPECT_EQ(net_.active_channels(), 1u);
  engine_.run();
  EXPECT_EQ(log_.back().at, before + model_.message_latency(0, 5, 16));
  EXPECT_EQ(net_.active_channels(), 0u);
  EXPECT_EQ(net_.stats().peak_channels, 2u);  // high-water, not current
}

TEST_F(NetworkTest, PeakChannelsTracksDistinctPairsNotMessages) {
  // Many messages over the same pair count once; the peak is bounded by the
  // number of concurrently in-flight (src, dst) pairs, which is what keeps
  // the channel map small on long runs.
  for (int i = 0; i < 10; ++i) net_.send(1, 2, TestMsg{i}, 8);
  EXPECT_EQ(net_.active_channels(), 1u);
  EXPECT_EQ(net_.stats().peak_channels, 1u);
  for (topo::Rank src = 10; src < 14; ++src) {
    net_.send(src, 20, TestMsg{0}, 8);
  }
  EXPECT_EQ(net_.stats().peak_channels, 5u);
  engine_.run();
  EXPECT_EQ(net_.active_channels(), 0u);
  EXPECT_EQ(net_.stats().messages, 14u);
}

TEST(NetworkDeterminism, SameSendsSameDeliveries) {
  auto run_once = [] {
    topo::TofuMachine machine;
    topo::JobLayout layout(machine, 128, topo::Placement::kOnePerNode);
    topo::LatencyModel model(layout);
    Engine engine;
    std::vector<std::pair<topo::Rank, support::SimTime>> log;
    Network<TestMsg> net(engine, model, [&](topo::Rank dst, TestMsg) {
      log.emplace_back(dst, engine.now());
    });
    for (topo::Rank r = 0; r < 127; ++r) {
      net.send(r, r + 1, TestMsg{static_cast<int>(r)}, r * 8);
    }
    engine.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dws::sim
