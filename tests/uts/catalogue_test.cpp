#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "uts/params.hpp"
#include "uts/sequential.hpp"

namespace dws::uts {
namespace {

TEST(Catalogue, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& t : catalogue()) {
    EXPECT_TRUE(names.insert(t.name).second) << "duplicate " << t.name;
  }
}

TEST(Catalogue, LookupByName) {
  const auto& t = tree_by_name("T3XXL");
  EXPECT_EQ(t.root_seed, 316u);
  EXPECT_EQ(t.root_branching, 2000u);
  EXPECT_EQ(t.m, 2u);
  EXPECT_DOUBLE_EQ(t.q, 0.499995);
}

TEST(Catalogue, PaperTreesMatchTableOne) {
  // Table I of the paper.
  const auto& t3xxl = tree_by_name("T3XXL");
  EXPECT_EQ(t3xxl.type, TreeType::kBinomial);
  EXPECT_EQ(t3xxl.root_seed, 316u);
  EXPECT_DOUBLE_EQ(t3xxl.q, 0.499995);
  const auto& t3wl = tree_by_name("T3WL");
  EXPECT_EQ(t3wl.type, TreeType::kBinomial);
  EXPECT_EQ(t3wl.root_seed, 559u);
  EXPECT_DOUBLE_EQ(t3wl.q, 0.4999995);
  // Both are barely subcritical: huge expected sizes.
  EXPECT_GT(*t3xxl.expected_size(), 1e8);
  EXPECT_GT(*t3wl.expected_size(), 1e9);
}

TEST(Catalogue, SimTreesAreSubcritical) {
  for (const char* name : {"SIM200K", "SIM500K", "SIM1M", "SIM2M", "SIM4M"}) {
    const auto& t = tree_by_name(name);
    ASSERT_TRUE(t.expected_size().has_value()) << name;
    EXPECT_LT(static_cast<double>(t.m) * t.q, 1.0) << name;
  }
}

/// Golden realised sizes. These pin down the whole generation pipeline
/// (SHA-1 -> splittable rng -> child sampling): any change to any stage
/// shows up here immediately.
using Golden = std::tuple<const char*, std::uint64_t, std::uint64_t, std::uint32_t>;

class CatalogueGolden : public ::testing::TestWithParam<Golden> {};

TEST_P(CatalogueGolden, RealizedShapeMatches) {
  const auto& [name, nodes, leaves, depth] = GetParam();
  const auto s = enumerate_sequential(tree_by_name(name), 10'000'000);
  EXPECT_FALSE(s.truncated);
  EXPECT_EQ(s.nodes, nodes);
  EXPECT_EQ(s.leaves, leaves);
  EXPECT_EQ(s.max_depth, depth);
}

INSTANTIATE_TEST_SUITE_P(
    SmallTrees, CatalogueGolden,
    ::testing::Values(Golden{"TEST_BIN_TINY", 69, 44, 14},
                      Golden{"TEST_BIN_SMALL", 5809, 3004, 102},
                      Golden{"TEST_BIN_WIDE", 3973, 3538, 27},
                      Golden{"TEST_GEO_LIN", 341, 190, 8},
                      Golden{"TEST_GEO_FIX", 187, 137, 5},
                      Golden{"TEST_GEO_EXP", 2058, 1270, 8},
                      Golden{"TEST_GEO_CYC", 2043, 1373, 12},
                      Golden{"TEST_HYBRID", 1682, 907, 53},
                      Golden{"T1", 305793, 245175, 10},
                      Golden{"SIM200K", 224133, 113066, 421}));

/// The larger sim trees are enumerated once here as goldens too; this also
/// acts as the "Table I verification" for the scaled trees referenced by
/// bench/table1_trees.
TEST(CatalogueGoldenLarge, Sim500K) {
  const auto s = enumerate_sequential(tree_by_name("SIM500K"));
  EXPECT_EQ(s.nodes, 499981u);
}

TEST(CatalogueGoldenLarge, Sim1M) {
  const auto s = enumerate_sequential(tree_by_name("SIM1M"));
  EXPECT_EQ(s.nodes, 999381u);
}

TEST(CatalogueGoldenLarge, SimWL) {
  const auto s = enumerate_sequential(tree_by_name("SIMWL"));
  EXPECT_EQ(s.nodes, 3042895u);
  EXPECT_EQ(s.max_depth, 2370u);
}

TEST(CatalogueGoldenLarge, SimXXL) {
  const auto s = enumerate_sequential(tree_by_name("SIMXXL"));
  EXPECT_EQ(s.nodes, 4529327u);
}

}  // namespace
}  // namespace dws::uts
