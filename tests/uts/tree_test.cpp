#include "uts/tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "uts/params.hpp"

namespace dws::uts {
namespace {

TreeParams binomial(std::uint32_t r, std::uint32_t b0, std::uint32_t m, double q) {
  TreeParams p;
  p.name = "test";
  p.type = TreeType::kBinomial;
  p.root_seed = r;
  p.root_branching = b0;
  p.m = m;
  p.q = q;
  return p;
}

TEST(Tree, RootHasHeightZeroAndSeedState) {
  const auto p = binomial(316, 2000, 2, 0.5);
  const auto root = root_node(p);
  EXPECT_EQ(root.height, 0u);
  EXPECT_EQ(root.rng, crypto::UtsRng::from_seed(316));
}

TEST(Tree, BinomialRootHasExactlyB0Children) {
  for (std::uint32_t b0 : {1u, 20u, 2000u}) {
    const auto p = binomial(1, b0, 2, 0.01);
    EXPECT_EQ(num_children(p, root_node(p)), b0);
  }
}

TEST(Tree, BinomialNonRootHasZeroOrM) {
  const auto p = binomial(9, 50, 3, 0.5);
  const auto root = root_node(p);
  for (std::uint32_t i = 0; i < 50; ++i) {
    const auto c = child_node(root, i);
    const auto n = num_children(p, c);
    EXPECT_TRUE(n == 0 || n == 3) << n;
  }
}

TEST(Tree, BinomialQZeroMakesStar) {
  // q = 0: every child of the root is a leaf -> tree is exactly b0 + 1 nodes.
  const auto p = binomial(4, 10, 2, 0.0);
  const auto root = root_node(p);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(num_children(p, child_node(root, i)), 0u);
  }
}

TEST(Tree, BinomialSuccessRateTracksQ) {
  // Over many first-level children, the fraction with m children ~ q.
  const auto p = binomial(15, 20000, 2, 0.3);
  const auto root = root_node(p);
  int with_children = 0;
  for (std::uint32_t i = 0; i < 20000; ++i) {
    if (num_children(p, child_node(root, i)) != 0) ++with_children;
  }
  EXPECT_NEAR(with_children, 6000, 300);
}

TEST(Tree, ChildIdentityIsOrderIndependent) {
  const auto p = binomial(77, 100, 2, 0.4);
  const auto root = root_node(p);
  const auto c5 = child_node(root, 5);
  const auto c5_again = child_node(root, 5);
  EXPECT_EQ(c5, c5_again);
  EXPECT_EQ(c5.height, 1u);
  EXPECT_EQ(child_node(c5, 0).height, 2u);
}

TEST(Tree, SiblingsHaveDistinctStates) {
  const auto p = binomial(8, 1000, 2, 0.5);
  const auto root = root_node(p);
  for (std::uint32_t i = 1; i < 1000; ++i) {
    ASSERT_NE(child_node(root, i), child_node(root, i - 1));
  }
}

TEST(GeoBranching, LinearProfile) {
  TreeParams p;
  p.type = TreeType::kGeometric;
  p.root_branching = 8;
  p.gen_mx = 8;
  p.shape = GeoShape::kLinear;
  EXPECT_DOUBLE_EQ(geo_branching_factor(p, 0), 8.0);
  EXPECT_DOUBLE_EQ(geo_branching_factor(p, 4), 4.0);
  EXPECT_DOUBLE_EQ(geo_branching_factor(p, 8), 0.0);   // cutoff
  EXPECT_DOUBLE_EQ(geo_branching_factor(p, 100), 0.0); // beyond cutoff
}

TEST(GeoBranching, FixedProfile) {
  TreeParams p;
  p.type = TreeType::kGeometric;
  p.root_branching = 3;
  p.gen_mx = 5;
  p.shape = GeoShape::kFixed;
  for (std::uint32_t d = 0; d < 5; ++d) {
    EXPECT_DOUBLE_EQ(geo_branching_factor(p, d), 3.0);
  }
  EXPECT_DOUBLE_EQ(geo_branching_factor(p, 5), 0.0);
}

TEST(GeoBranching, ExpDecDecreasesToOne) {
  TreeParams p;
  p.type = TreeType::kGeometric;
  p.root_branching = 16;
  p.gen_mx = 4;
  p.shape = GeoShape::kExpDec;
  EXPECT_DOUBLE_EQ(geo_branching_factor(p, 0), 16.0);
  double prev = 17.0;
  for (std::uint32_t d = 0; d < 4; ++d) {
    const double b = geo_branching_factor(p, d);
    EXPECT_LT(b, prev);
    EXPECT_GE(b, 1.0);
    prev = b;
  }
}

TEST(GeoBranching, CyclicStaysNonNegativeAndBounded) {
  TreeParams p;
  p.type = TreeType::kGeometric;
  p.root_branching = 4;
  p.gen_mx = 12;
  p.shape = GeoShape::kCyclic;
  for (std::uint32_t d = 0; d < 12; ++d) {
    const double b = geo_branching_factor(p, d);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 4.0);
  }
}

TEST(Tree, GeometricCutoffMakesLeaves) {
  TreeParams p;
  p.name = "geo";
  p.type = TreeType::kGeometric;
  p.root_seed = 3;
  p.root_branching = 4;
  p.gen_mx = 2;
  p.shape = GeoShape::kFixed;
  // Any node at height >= gen_mx has no children.
  auto node = root_node(p);
  node.height = 2;
  EXPECT_EQ(num_children(p, node), 0u);
  node.height = 10;
  EXPECT_EQ(num_children(p, node), 0u);
}

TEST(Tree, MaxChildrenClampRespected) {
  TreeParams p;
  p.name = "clamped";
  p.type = TreeType::kGeometric;
  p.root_seed = 12;
  p.root_branching = 1000000;  // huge mean fanout
  p.gen_mx = 2;
  p.shape = GeoShape::kFixed;
  p.max_children = 16;
  const auto root = root_node(p);
  EXPECT_LE(num_children(p, root), 16u);
}

TEST(Tree, HybridSwitchesFromGeoToBinomial) {
  TreeParams p;
  p.name = "hyb";
  p.type = TreeType::kHybrid;
  p.root_seed = 6;
  p.root_branching = 4;
  p.gen_mx = 8;
  p.shift = 0.5;
  p.m = 3;
  p.q = 0.9;
  p.shape = GeoShape::kFixed;
  // Below the shift boundary (height >= 4) nodes follow the binomial rule:
  // 0 or m children.
  auto node = root_node(p);
  node.height = 4;
  const auto n = num_children(p, node);
  EXPECT_TRUE(n == 0 || n == 3);
  // Above the boundary the geometric rule applies (any value 0..max).
  node.height = 1;
  EXPECT_LE(num_children(p, node), p.max_children);
}

TEST(Params, ExpectedSizeBinomial) {
  const auto p = binomial(1, 2000, 2, 0.4995);
  ASSERT_TRUE(p.expected_size().has_value());
  EXPECT_NEAR(*p.expected_size(), 1.0 + 2000.0 / 0.001, 1e-6);
}

TEST(Params, ExpectedSizeUndefinedWhenSupercritical) {
  const auto p = binomial(1, 2000, 2, 0.5);
  EXPECT_FALSE(p.expected_size().has_value());
}

TEST(Params, ExpectedSizeUndefinedForGeometric) {
  TreeParams p;
  p.type = TreeType::kGeometric;
  EXPECT_FALSE(p.expected_size().has_value());
}

}  // namespace
}  // namespace dws::uts
