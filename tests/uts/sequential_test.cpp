#include "uts/sequential.hpp"

#include <gtest/gtest.h>

#include <string>

#include "uts/params.hpp"

namespace dws::uts {
namespace {

TEST(Sequential, StarTreeExactCount) {
  // q = 0 binomial: root + b0 leaves, depth 1.
  TreeParams p;
  p.name = "star";
  p.root_seed = 2;
  p.root_branching = 64;
  p.m = 2;
  p.q = 0.0;
  const auto s = enumerate_sequential(p);
  EXPECT_EQ(s.nodes, 65u);
  EXPECT_EQ(s.leaves, 64u);
  EXPECT_EQ(s.max_depth, 1u);
  EXPECT_FALSE(s.truncated);
}

TEST(Sequential, SingleChildRoot) {
  TreeParams p;
  p.name = "stick";
  p.root_seed = 5;
  p.root_branching = 1;
  p.q = 0.0;
  const auto s = enumerate_sequential(p);
  EXPECT_EQ(s.nodes, 2u);
  EXPECT_EQ(s.leaves, 1u);
}

TEST(Sequential, DeterministicAcrossCalls) {
  const auto& p = tree_by_name("TEST_BIN_SMALL");
  const auto a = enumerate_sequential(p);
  const auto b = enumerate_sequential(p);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.leaves, b.leaves);
  EXPECT_EQ(a.max_depth, b.max_depth);
}

TEST(Sequential, NodeLimitTruncates) {
  const auto& p = tree_by_name("TEST_BIN_SMALL");
  const auto full = enumerate_sequential(p);
  ASSERT_GT(full.nodes, 100u);
  const auto cut = enumerate_sequential(p, 100);
  EXPECT_TRUE(cut.truncated);
  EXPECT_EQ(cut.nodes, 100u);
}

TEST(Sequential, LeavesAndInternalNodesSumUp) {
  // In a binomial tree every internal non-root node has exactly m children:
  // nodes = 1 + b0 + m * (internal non-root nodes).
  const auto& p = tree_by_name("TEST_BIN_SMALL");
  const auto s = enumerate_sequential(p);
  const std::uint64_t internal_nonroot = s.nodes - s.leaves - 1;
  EXPECT_EQ(s.nodes, 1 + p.root_branching + p.m * internal_nonroot);
}

TEST(Sequential, RealizedSizeNearExpectationForSubcriticalTree) {
  // Averaged over seeds the realised size should be near E[size]; for a
  // single seed we allow a wide band (binomial trees are heavy-tailed).
  TreeParams p;
  p.name = "avg";
  p.root_branching = 2000;
  p.m = 2;
  p.q = 0.45;  // E = 1 + 2000/0.1 = 20001
  double total = 0.0;
  const int kSeeds = 10;
  for (std::uint32_t r = 0; r < kSeeds; ++r) {
    p.root_seed = r;
    total += static_cast<double>(enumerate_sequential(p).nodes);
  }
  const double mean = total / kSeeds;
  EXPECT_NEAR(mean, 20001.0, 4000.0);
}

TEST(Sequential, GeometricFixedDepthBound) {
  const auto& p = tree_by_name("TEST_GEO_FIX");
  const auto s = enumerate_sequential(p);
  EXPECT_LE(s.max_depth, p.gen_mx);
  EXPECT_GT(s.nodes, 1u);
}

TEST(Sequential, HybridRuns) {
  const auto& p = tree_by_name("TEST_HYBRID");
  const auto s = enumerate_sequential(p, 10'000'000);
  EXPECT_FALSE(s.truncated);
  EXPECT_GT(s.nodes, 1u);
  EXPECT_EQ(s.nodes, enumerate_sequential(p, 10'000'000).nodes);
}

/// Different seeds must give different trees (with overwhelming probability).
TEST(Sequential, SeedChangesTree) {
  TreeParams a = tree_by_name("TEST_BIN_SMALL");
  TreeParams b = a;
  b.root_seed = a.root_seed + 1;
  EXPECT_NE(enumerate_sequential(a).nodes, enumerate_sequential(b).nodes);
}

class SequentialCatalogue : public ::testing::TestWithParam<std::string> {};

/// Every small catalogue tree enumerates deterministically and is consistent
/// with its structural invariants.
TEST_P(SequentialCatalogue, WellFormed) {
  const auto& p = tree_by_name(GetParam());
  const auto s = enumerate_sequential(p, 50'000'000);
  EXPECT_FALSE(s.truncated);
  EXPECT_GE(s.nodes, 1u);
  EXPECT_GE(s.leaves, 1u);
  EXPECT_LT(s.leaves, s.nodes);
  if (p.type == TreeType::kGeometric) {
    EXPECT_LE(s.max_depth, p.gen_mx);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallTrees, SequentialCatalogue,
                         ::testing::Values("TEST_BIN_TINY", "TEST_BIN_SMALL",
                                           "TEST_BIN_WIDE", "TEST_GEO_LIN",
                                           "TEST_GEO_FIX", "TEST_GEO_EXP",
                                           "TEST_GEO_CYC", "TEST_HYBRID"));

}  // namespace
}  // namespace dws::uts
