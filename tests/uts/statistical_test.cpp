#include <gtest/gtest.h>

#include "uts/params.hpp"
#include "uts/sequential.hpp"

namespace dws::uts {
namespace {

/// Statistical properties of the generators, averaged over many seeds —
/// these verify that the SHA-1-driven sampling actually realises the
/// distributions the tree parameters promise.

TEST(Statistical, BinomialMeanSizeMatchesTheory) {
  // E[size] = 1 + b0/(1-mq). Average realised size over seeds should land
  // near it (subcritical enough that the variance is manageable).
  TreeParams p;
  p.name = "stat";
  p.root_branching = 500;
  p.m = 2;
  p.q = 0.4;  // E = 1 + 500/0.2 = 2501
  double total = 0.0;
  const int kSeeds = 40;
  for (std::uint32_t r = 100; r < 100 + kSeeds; ++r) {
    p.root_seed = r;
    total += static_cast<double>(enumerate_sequential(p).nodes);
  }
  EXPECT_NEAR(total / kSeeds, 2501.0, 2501.0 * 0.08);
}

TEST(Statistical, BinomialLeafFraction) {
  // Non-root nodes are leaves with probability 1-q; over a large tree the
  // realised fraction should match.
  TreeParams p;
  p.name = "leaves";
  p.root_seed = 11;
  p.root_branching = 2000;
  p.m = 2;
  p.q = 0.45;
  const auto s = enumerate_sequential(p);
  const double leaf_fraction =
      static_cast<double>(s.leaves) / static_cast<double>(s.nodes - 1);
  EXPECT_NEAR(leaf_fraction, 0.55, 0.02);
}

TEST(Statistical, GeometricMeanChildrenTracksBranchingFactor) {
  // Fixed-shape geometric tree: each non-cutoff node has mean b0 children.
  // Realised: (nodes - 1) edges from (nodes - leaves-at-cutoff) parents...
  // simpler: a depth-1 census over many seeds.
  TreeParams p;
  p.name = "geo";
  p.type = TreeType::kGeometric;
  p.root_branching = 5;
  p.gen_mx = 2;
  p.shape = GeoShape::kFixed;
  double total_root_children = 0.0;
  const int kSeeds = 300;
  for (std::uint32_t r = 0; r < kSeeds; ++r) {
    p.root_seed = r;
    total_root_children += num_children(p, root_node(p));
  }
  EXPECT_NEAR(total_root_children / kSeeds, 5.0, 0.6);
}

TEST(Statistical, DepthGrowsWithCriticality) {
  // Closer to critical (mq -> 1) means deeper realised trees on average.
  TreeParams mild;
  mild.name = "mild";
  mild.root_branching = 500;
  mild.m = 2;
  mild.q = 0.35;
  TreeParams hot = mild;
  hot.name = "hot";
  hot.q = 0.49;
  double mild_depth = 0.0;
  double hot_depth = 0.0;
  const int kSeeds = 15;
  for (std::uint32_t r = 0; r < kSeeds; ++r) {
    mild.root_seed = hot.root_seed = r;
    mild_depth += enumerate_sequential(mild).max_depth;
    hot_depth += enumerate_sequential(hot, 3'000'000).max_depth;
  }
  EXPECT_GT(hot_depth, 3.0 * mild_depth);
}

TEST(Statistical, SizeDistributionIsHeavyTailed) {
  // The motivation for UTS: same parameters, wildly different subtree
  // sizes. Max/min realised size over seeds should span a wide range.
  TreeParams p;
  p.name = "tail";
  p.root_branching = 50;
  p.m = 2;
  p.q = 0.49;
  std::uint64_t min_nodes = UINT64_MAX;
  std::uint64_t max_nodes = 0;
  for (std::uint32_t r = 0; r < 25; ++r) {
    p.root_seed = r;
    const auto n = enumerate_sequential(p, 3'000'000).nodes;
    min_nodes = std::min(min_nodes, n);
    max_nodes = std::max(max_nodes, n);
  }
  EXPECT_GT(max_nodes, 5 * min_nodes);
}

}  // namespace
}  // namespace dws::uts
