#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "audit/audit.hpp"
#include "exp/record.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "fault/fault.hpp"
#include "uts/params.hpp"
#include "uts/sequential.hpp"
#include "ws/scheduler.hpp"

/// End-to-end tests of the steal protocol under injected faults
/// (DESIGN.md §10): fixed-seed replay is byte-identical, every recovery
/// path (steal timeout/retry, duplicate discard, token regeneration)
/// terminates with exact work conservation, and the v3 record schema
/// round-trips the new counters.
namespace dws::fault {
namespace {

ws::RunConfig faulted_base() {
  ws::RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_SMALL");
  cfg.num_ranks = 16;
  cfg.ws.chunk_size = 4;
  cfg.ws.victim_policy = ws::VictimPolicy::kRandom;
  cfg.ws.steal_amount = ws::StealAmount::kOneChunk;
  cfg.ws.steal_timeout = 200 * support::kMicrosecond;
  cfg.ws.token_timeout = 2 * support::kMillisecond;
  cfg.placement = topo::Placement::kOnePerNode;
  cfg.procs_per_node = 1;
  cfg.fault.drop_prob = 0.01;
  cfg.fault.jitter_frac = 0.10;
  cfg.fault.straggler_ranks = 1;
  cfg.fault.seed = 7;
  return cfg;
}

std::string run_jsonl(const ws::RunConfig& cfg, int schema_version) {
  exp::SweepSpec spec(cfg);
  spec.axis(exp::ranks_axis({cfg.num_ranks}));
  const auto expanded = spec.expand();
  EXPECT_TRUE(expanded);
  exp::RunnerOptions options;
  options.threads = 1;
  options.progress = false;
  const exp::SweepReport report = exp::SweepRunner(options).run(expanded.value());
  EXPECT_TRUE(report.all_ok());
  std::ostringstream out;
  exp::RecordOptions rec{exp::RecordFormat::kJsonl, /*wall_clock=*/false};
  rec.schema_version = schema_version;
  exp::RecordWriter writer(out, rec);
  writer.write_report(expanded.value(), report);
  return out.str();
}

TEST(FaultedRun, FixedSeedReplayIsByteIdentical) {
  const ws::RunConfig cfg = faulted_base();
  const std::string first = run_jsonl(cfg, exp::kRecordSchemaVersion);
  const std::string second = run_jsonl(cfg, exp::kRecordSchemaVersion);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(FaultedRun, DifferentFaultSeedsProduceDifferentSchedules) {
  ws::RunConfig a = faulted_base();
  ws::RunConfig b = faulted_base();
  a.fault.drop_prob = b.fault.drop_prob = 0.05;  // enough activity to diverge
  b.fault.seed = 1234;
  const ws::RunResult ra = ws::run_simulation(a);
  const ws::RunResult rb = ws::run_simulation(b);
  EXPECT_EQ(ra.nodes, rb.nodes);  // work is conserved either way
  EXPECT_NE(ra.runtime, rb.runtime);
}

TEST(FaultedRun, AuditedRunConservesWorkAndMessages) {
  const audit::AuditedResult audited =
      audit::audited_run(faulted_base(), audit::AuditConfig{});
  EXPECT_TRUE(audited.report.ok()) << audited.report.summary();
  EXPECT_EQ(audited.result.nodes,
            uts::enumerate_sequential(faulted_base().tree).nodes);
}

TEST(FaultedRun, LostTokenIsRegeneratedAndTerminationStillHolds) {
  // High loss on a small ring: scan a few fault seeds until the termination
  // token itself gets dropped, then demand the regenerated probe finishes
  // the run with the ledger intact.
  ws::RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_TINY");
  cfg.num_ranks = 8;
  cfg.ws.chunk_size = 2;
  cfg.ws.victim_policy = ws::VictimPolicy::kRandom;
  cfg.ws.steal_timeout = 100 * support::kMicrosecond;
  cfg.ws.token_timeout = 500 * support::kMicrosecond;
  cfg.placement = topo::Placement::kOnePerNode;
  cfg.procs_per_node = 1;
  cfg.fault.drop_prob = 0.30;

  bool regenerated = false;
  for (std::uint64_t seed = 1; seed <= 64 && !regenerated; ++seed) {
    cfg.fault.seed = seed;
    const audit::AuditedResult audited =
        audit::audited_run(cfg, audit::AuditConfig{});
    ASSERT_TRUE(audited.report.ok())
        << "fault seed " << seed << ": " << audited.report.summary();
    ASSERT_EQ(audited.result.nodes,
              uts::enumerate_sequential(cfg.tree).nodes);
    regenerated = audited.result.stats.token_regens > 0;
  }
  EXPECT_TRUE(regenerated)
      << "no fault seed in [1,64] dropped the termination token";
}

TEST(StealTimeout, AggressiveTimerRetriesAndTheRunStillTerminates) {
  // A 200 ns steal timeout sits well under the network round-trip, so most
  // requests are abandoned and retried; the late answers are banked. No
  // faults — this exercises the timer path in isolation. (Timers far below
  // this model a retransmission storm: the duplicate requests congest the
  // victim's channel, which raises latency, which fires more timers — runs
  // stay finite but virtual time diverges, so keep the timer near the RTT.)
  ws::RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_SMALL");
  cfg.num_ranks = 8;
  cfg.ws.chunk_size = 4;
  cfg.ws.victim_policy = ws::VictimPolicy::kRandom;
  cfg.ws.steal_timeout = 200;
  cfg.ws.steal_retry_max = 4;
  cfg.ws.steal_backoff = 2.0;
  cfg.placement = topo::Placement::kOnePerNode;
  cfg.procs_per_node = 1;

  const audit::AuditedResult audited =
      audit::audited_run(cfg, audit::AuditConfig{});
  EXPECT_TRUE(audited.report.ok()) << audited.report.summary();
  EXPECT_EQ(audited.result.nodes, uts::enumerate_sequential(cfg.tree).nodes);
  EXPECT_GT(audited.result.stats.steal_timeouts, 0u);
  EXPECT_GT(audited.result.stats.steal_retries, 0u);
  EXPECT_EQ(audited.report.steal_timeouts,
            audited.result.stats.steal_timeouts);
}

TEST(StealTimeout, GenerousTimerNeverFiresOnAHealthyNetwork) {
  ws::RunConfig cfg = faulted_base();
  cfg.fault = FaultConfig{};                      // no faults
  cfg.ws.steal_timeout = 10 * support::kMillisecond;  // far above any RTT
  const ws::RunResult result = ws::run_simulation(cfg);
  EXPECT_EQ(result.stats.steal_timeouts, 0u);
  EXPECT_EQ(result.stats.steal_retries, 0u);
  EXPECT_EQ(result.stats.token_regens, 0u);
}

TEST(Duplicates, NetworkDuplicatedResponsesAreDiscardedOnce) {
  ws::RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_SMALL");
  cfg.num_ranks = 8;
  cfg.ws.chunk_size = 4;
  cfg.ws.victim_policy = ws::VictimPolicy::kRandom;
  cfg.placement = topo::Placement::kOnePerNode;
  cfg.procs_per_node = 1;
  cfg.fault.dup_prob = 0.40;

  bool saw_duplicate = false;
  for (std::uint64_t seed = 1; seed <= 16 && !saw_duplicate; ++seed) {
    cfg.fault.seed = seed;
    const audit::AuditedResult audited =
        audit::audited_run(cfg, audit::AuditConfig{});
    ASSERT_TRUE(audited.report.ok())
        << "fault seed " << seed << ": " << audited.report.summary();
    ASSERT_EQ(audited.result.nodes,
              uts::enumerate_sequential(cfg.tree).nodes);
    saw_duplicate = audited.result.stats.duplicate_responses > 0;
  }
  EXPECT_TRUE(saw_duplicate)
      << "no fault seed in [1,16] duplicated a steal response";
}

TEST(Duplicates, RetryAfterDuplicateResponseStaysConsistent) {
  // Duplication plus an aggressive timer: a thief can abandon a request,
  // retry, then see both copies of the original answer. The first copy is
  // banked as a late answer, the second discarded as a duplicate.
  ws::RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_SMALL");
  cfg.num_ranks = 8;
  cfg.ws.chunk_size = 4;
  cfg.ws.victim_policy = ws::VictimPolicy::kRandom;
  cfg.ws.steal_timeout = 500;  // under the RTT: timeouts race the duplicates
  cfg.ws.steal_retry_max = 3;
  cfg.placement = topo::Placement::kOnePerNode;
  cfg.procs_per_node = 1;
  cfg.fault.dup_prob = 0.30;

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    cfg.fault.seed = seed;
    const audit::AuditedResult audited =
        audit::audited_run(cfg, audit::AuditConfig{});
    ASSERT_TRUE(audited.report.ok())
        << "fault seed " << seed << ": " << audited.report.summary();
    ASSERT_EQ(audited.result.nodes,
              uts::enumerate_sequential(cfg.tree).nodes);
  }
}

TEST(RecordSchema, V3RoundTripsTheFaultCounters) {
  const ws::RunConfig cfg = faulted_base();
  const ws::RunResult result = ws::run_simulation(cfg);
  ASSERT_GT(result.faults.dropped_messages + result.faults.duplicated_messages,
            0u);

  std::istringstream in(run_jsonl(cfg, 3));
  const auto file = exp::read_records(in);
  ASSERT_TRUE(file) << file.error();
  EXPECT_EQ(file.value().version, 3);
  ASSERT_EQ(file.value().records.size(), 1u);
  const exp::SweepRecord& rec = file.value().records.front();
  EXPECT_EQ(rec.steal_timeouts, result.stats.steal_timeouts);
  EXPECT_EQ(rec.steal_retries, result.stats.steal_retries);
  EXPECT_EQ(rec.token_regens, result.stats.token_regens);
  EXPECT_EQ(rec.net_drops, result.faults.dropped_messages);
  EXPECT_EQ(rec.net_dups, result.faults.duplicated_messages);
}

TEST(RecordSchema, V2EmissionStaysReadableWithoutTheV3Fields) {
  std::istringstream in(run_jsonl(faulted_base(), 2));
  const auto file = exp::read_records(in);
  ASSERT_TRUE(file) << file.error();
  EXPECT_EQ(file.value().version, 2);
  ASSERT_EQ(file.value().records.size(), 1u);
  const exp::SweepRecord& rec = file.value().records.front();
  EXPECT_EQ(rec.steal_timeouts, 0u);  // v2 predates the counters
  EXPECT_EQ(rec.net_drops, 0u);
  EXPECT_EQ(rec.net_dups, 0u);
  EXPECT_GT(rec.ranks, 0u);  // but the v2 payload itself parsed
}

}  // namespace
}  // namespace dws::fault
