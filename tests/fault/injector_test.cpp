#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dws::fault {
namespace {

std::uint64_t key(std::uint32_t src, std::uint32_t dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}

FaultConfig lossy() {
  FaultConfig f;
  f.drop_prob = 0.3;
  f.dup_prob = 0.2;
  f.jitter_frac = 0.5;
  f.degraded_frac = 0.25;
  f.seed = 42;
  return f;
}

TEST(FaultConfig, DefaultIsDisabled) {
  EXPECT_FALSE(FaultConfig{}.enabled());
  EXPECT_FALSE(Injector(FaultConfig{}, 8).enabled());
}

TEST(FaultConfig, PauseNeedsBothKnobs) {
  FaultConfig f;
  f.pause_ranks = 2;
  EXPECT_FALSE(f.enabled());  // zero duration: no pause happens
  f.pause_duration = 100;
  EXPECT_TRUE(f.enabled());
}

TEST(Injector, SameSeedReplaysTheExactPlanSequence) {
  Injector a(lossy(), 16);
  Injector b(lossy(), 16);
  for (int i = 0; i < 500; ++i) {
    const auto k = key(static_cast<std::uint32_t>(i % 16),
                       static_cast<std::uint32_t>((i + 3) % 16));
    const SendPlan pa = a.plan_send(k, MsgClass::kDroppable, 64);
    const SendPlan pb = b.plan_send(k, MsgClass::kDroppable, 64);
    ASSERT_EQ(pa.drop, pb.drop);
    ASSERT_EQ(pa.duplicate, pb.duplicate);
    ASSERT_EQ(pa.latency_mult, pb.latency_mult);
    ASSERT_EQ(pa.dup_latency_mult, pb.dup_latency_mult);
  }
  EXPECT_EQ(a.stats().dropped_messages, b.stats().dropped_messages);
  EXPECT_EQ(a.stats().duplicated_messages, b.stats().duplicated_messages);
  EXPECT_EQ(a.stats().dropped_bytes, b.stats().dropped_bytes);
  EXPECT_EQ(a.stats().duplicated_bytes, b.stats().duplicated_bytes);
}

TEST(Injector, SendCounterIsPartOfTheState) {
  // Same channel, consecutive sends: the verdicts must not be identical for
  // all of them (the counter decorrelates repeats on one channel).
  Injector inj(lossy(), 4);
  bool saw_drop = false;
  bool saw_keep = false;
  for (int i = 0; i < 200; ++i) {
    const SendPlan p = inj.plan_send(key(0, 1), MsgClass::kDroppable, 8);
    (p.drop ? saw_drop : saw_keep) = true;
  }
  EXPECT_TRUE(saw_drop);
  EXPECT_TRUE(saw_keep);
}

TEST(Injector, DifferentSeedsDisagree) {
  FaultConfig other = lossy();
  other.seed = 43;
  Injector a(lossy(), 16);
  Injector b(other, 16);
  int disagreements = 0;
  for (int i = 0; i < 200; ++i) {
    const SendPlan pa = a.plan_send(key(0, 1), MsgClass::kDroppable, 8);
    const SendPlan pb = b.plan_send(key(0, 1), MsgClass::kDroppable, 8);
    if (pa.drop != pb.drop || pa.latency_mult != pb.latency_mult) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 0);
}

TEST(Injector, ReliableMessagesAreNeverTouched) {
  FaultConfig f = lossy();
  f.drop_prob = 0.999;
  f.dup_prob = 0.999;
  Injector inj(f, 8);
  for (int i = 0; i < 1000; ++i) {
    const SendPlan p = inj.plan_send(key(1, 2), MsgClass::kReliable, 32);
    ASSERT_FALSE(p.drop);
    ASSERT_FALSE(p.duplicate);
  }
  EXPECT_EQ(inj.stats().dropped_messages, 0u);
  EXPECT_EQ(inj.stats().duplicated_messages, 0u);
}

TEST(Injector, DupOnlyMessagesDuplicateButNeverDrop) {
  FaultConfig f = lossy();
  f.drop_prob = 0.999;
  f.dup_prob = 0.5;
  Injector inj(f, 8);
  int dups = 0;
  for (int i = 0; i < 1000; ++i) {
    const SendPlan p = inj.plan_send(key(1, 2), MsgClass::kDupOnly, 32);
    ASSERT_FALSE(p.drop);
    if (p.duplicate) ++dups;
  }
  EXPECT_GT(dups, 300);
  EXPECT_LT(dups, 700);
  EXPECT_EQ(inj.stats().dropped_messages, 0u);
}

TEST(Injector, DropRateMatchesTheConfiguredProbability) {
  FaultConfig f;
  f.drop_prob = 0.3;
  Injector inj(f, 8);
  const int sends = 10000;
  for (int i = 0; i < sends; ++i) {
    inj.plan_send(key(static_cast<std::uint32_t>(i % 8), 7),
                  MsgClass::kDroppable, 100);
  }
  const double expected = 0.3 * sends;
  const double sigma = std::sqrt(0.3 * 0.7 * sends);
  EXPECT_NEAR(static_cast<double>(inj.stats().dropped_messages), expected,
              5.0 * sigma);
  EXPECT_EQ(inj.stats().dropped_bytes, inj.stats().dropped_messages * 100);
}

TEST(Injector, JitterBoundsTheLatencyMultiplier) {
  FaultConfig f;
  f.jitter_frac = 0.5;
  Injector inj(f, 8);
  bool jittered = false;
  for (int i = 0; i < 500; ++i) {
    const SendPlan p = inj.plan_send(key(2, 3), MsgClass::kDroppable, 8);
    ASSERT_GE(p.latency_mult, 1.0);
    ASSERT_LT(p.latency_mult, 1.5);
    if (p.latency_mult > 1.0) jittered = true;
  }
  EXPECT_TRUE(jittered);
}

TEST(Injector, DegradedLinksCompoundWithJitter) {
  FaultConfig f;
  f.jitter_frac = 0.5;
  f.degraded_frac = 1.0;  // every channel degraded
  f.degraded_mult = 3.0;
  Injector inj(f, 8);
  for (int i = 0; i < 100; ++i) {
    const SendPlan p = inj.plan_send(key(2, 3), MsgClass::kDroppable, 8);
    ASSERT_GE(p.latency_mult, 3.0);
    ASSERT_LT(p.latency_mult, 4.5);
  }
}

TEST(Injector, LinkDegradationIsAPureFunctionOfTheChannel) {
  FaultConfig f;
  f.degraded_frac = 0.25;
  Injector inj(f, 64);
  int degraded = 0;
  for (std::uint32_t s = 0; s < 40; ++s) {
    for (std::uint32_t d = 0; d < 40; ++d) {
      if (s == d) continue;
      const bool first = inj.link_degraded(key(s, d));
      EXPECT_EQ(first, inj.link_degraded(key(s, d)));  // stable
      if (first) ++degraded;
    }
  }
  // 1560 directed channels at 25%: loose 5-sigma band around 390.
  EXPECT_NEAR(degraded, 390, 5.0 * std::sqrt(1560 * 0.25 * 0.75));
}

TEST(Injector, ChannelInterleavingDoesNotChangePerChannelPlans) {
  // The shard-invariance property: a channel's plan sequence is a pure
  // function of (seed, channel, per-channel send count), so feeding the
  // channels round-robin or channel-major — or through different injector
  // instances entirely, as the sharded runtime does — yields the same
  // per-channel plans and the same global tallies.
  const std::vector<std::uint64_t> chans = {key(0, 1), key(1, 0), key(2, 7),
                                            key(7, 2)};
  const int per_chan = 200;
  auto plan_eq = [](const SendPlan& a, const SendPlan& b) {
    return a.drop == b.drop && a.duplicate == b.duplicate &&
           a.latency_mult == b.latency_mult &&
           a.dup_latency_mult == b.dup_latency_mult;
  };

  Injector round_robin(lossy(), 8);
  std::vector<std::vector<SendPlan>> rr(chans.size());
  for (int i = 0; i < per_chan; ++i) {
    for (std::size_t c = 0; c < chans.size(); ++c) {
      rr[c].push_back(
          round_robin.plan_send(chans[c], MsgClass::kDroppable, 64));
    }
  }

  Injector channel_major(lossy(), 8);
  for (std::size_t c = 0; c < chans.size(); ++c) {
    for (int i = 0; i < per_chan; ++i) {
      const SendPlan p =
          channel_major.plan_send(chans[c], MsgClass::kDroppable, 64);
      ASSERT_TRUE(plan_eq(p, rr[c][static_cast<std::size_t>(i)]))
          << "channel " << c << " send " << i;
    }
  }
  EXPECT_EQ(round_robin.stats().dropped_messages,
            channel_major.stats().dropped_messages);
  EXPECT_EQ(round_robin.stats().duplicated_messages,
            channel_major.stats().duplicated_messages);

  // Sharded shape: two injectors, each owning half the channels, together
  // reproduce the single injector's per-channel plans.
  Injector left(lossy(), 8);
  Injector right(lossy(), 8);
  for (int i = 0; i < per_chan; ++i) {
    ASSERT_TRUE(plan_eq(left.plan_send(chans[0], MsgClass::kDroppable, 64),
                        rr[0][static_cast<std::size_t>(i)]));
    ASSERT_TRUE(plan_eq(right.plan_send(chans[2], MsgClass::kDroppable, 64),
                        rr[2][static_cast<std::size_t>(i)]));
  }
}

TEST(Injector, PerChannelStatsSumToTheGlobalStats) {
  Injector inj(lossy(), 16);
  const int sends = 5000;
  for (int i = 0; i < sends; ++i) {
    inj.plan_send(key(static_cast<std::uint32_t>(i % 7),
                      static_cast<std::uint32_t>(7 + i % 5)),
                  MsgClass::kDroppable, 64);
  }
  std::uint64_t total_sends = 0;
  std::uint64_t drops = 0;
  std::uint64_t dups = 0;
  for (const auto& [chan, state] : inj.channels()) {
    total_sends += state.sends;
    drops += state.dropped_messages;
    dups += state.duplicated_messages;
  }
  EXPECT_EQ(total_sends, static_cast<std::uint64_t>(sends));
  EXPECT_EQ(drops, inj.stats().dropped_messages);
  EXPECT_EQ(dups, inj.stats().duplicated_messages);
  EXPECT_GT(drops, 0u);  // at 30% drop over 5000 sends this cannot be empty
  EXPECT_EQ(inj.channels().size(), 35u);  // 7 sources x 5 destinations
}

TEST(Injector, StragglerCountIsExactAndDeterministic) {
  FaultConfig f;
  f.straggler_ranks = 4;
  f.straggler_factor = 4.0;
  Injector a(f, 16);
  Injector b(f, 16);
  int count = 0;
  for (std::uint32_t r = 0; r < 16; ++r) {
    EXPECT_EQ(a.is_straggler(r), b.is_straggler(r));
    if (a.is_straggler(r)) {
      ++count;
      EXPECT_EQ(a.scaled_node_cost(r, 1000), 4000);
    } else {
      EXPECT_EQ(a.scaled_node_cost(r, 1000), 1000);
    }
  }
  EXPECT_EQ(count, 4);
}

TEST(Injector, StragglerChoiceDependsOnTheSeed) {
  FaultConfig f;
  f.straggler_ranks = 4;
  FaultConfig g = f;
  g.seed = 99;
  Injector a(f, 64);
  Injector b(g, 64);
  std::vector<std::uint32_t> sa, sb;
  for (std::uint32_t r = 0; r < 64; ++r) {
    if (a.is_straggler(r)) sa.push_back(r);
    if (b.is_straggler(r)) sb.push_back(r);
  }
  EXPECT_EQ(sa.size(), 4u);
  EXPECT_EQ(sb.size(), 4u);
  EXPECT_NE(sa, sb);
}

TEST(Injector, PausesLandInsideTheWindow) {
  FaultConfig f;
  f.pause_ranks = 3;
  f.pause_duration = 100;
  f.pause_window = 1000;
  Injector inj(f, 8);
  int with_pause = 0;
  for (std::uint32_t r = 0; r < 8; ++r) {
    if (const auto start = inj.pause_start(r)) {
      ++with_pause;
      EXPECT_GE(*start, 0);
      EXPECT_LE(*start, 1000);
    }
  }
  EXPECT_EQ(with_pause, 3);
}

}  // namespace
}  // namespace dws::fault
