/// End-to-end tests of svc::run_service (DESIGN.md §13): the single-job
/// degenerate case against the sequential oracle, space-share FIFO queueing,
/// elastic time-share lease hand-offs, the validate() screen for ill-formed
/// service configs, and the fingerprint contract (svc knobs key the
/// canonical config only when the service layer is on).
#include <algorithm>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "exp/record.hpp"
#include "svc/service.hpp"
#include "uts/params.hpp"
#include "uts/sequential.hpp"
#include "ws/scheduler.hpp"

namespace dws::svc {
namespace {

ws::RunConfig service_base(topo::Rank ranks) {
  ws::RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_TINY");
  cfg.num_ranks = ranks;
  cfg.ws.chunk_size = 2;
  cfg.svc.enabled = true;
  cfg.svc.seed = 9;
  return cfg;
}

TEST(Service, SingleJobDegenerateCaseMatchesSequentialOracle) {
  // One job, arriving at t=0, granted the whole pool: the service layer must
  // collapse to an ordinary single-tree run whose totals equal the tree's
  // sequential enumeration.
  ws::RunConfig cfg = service_base(8);
  cfg.svc.arrival = ArrivalKind::kTrace;
  cfg.svc.trace = {0};
  cfg.svc.alloc = AllocPolicy::kSpaceShare;
  cfg.svc.ranks_per_job = 8;

  const ws::RunResult r = checked_service_run(cfg);
  ASSERT_EQ(r.jobs.size(), 1u);
  const metrics::JobOutcome& job = r.jobs[0];
  EXPECT_EQ(job.job_id, 0u);
  EXPECT_EQ(job.base, 0u);
  EXPECT_EQ(job.width, 8u);
  EXPECT_EQ(job.arrival, 0);
  EXPECT_GE(job.first_compute, job.admit);
  EXPECT_EQ(job.finish, r.runtime);

  // The run-level aggregates are exactly this one job's work.
  EXPECT_EQ(r.nodes, job.nodes);
  EXPECT_EQ(r.leaves, job.leaves);

  uts::TreeParams tree = cfg.tree;
  tree.root_seed = static_cast<std::uint32_t>(job.root_seed);
  const uts::TreeStats seq =
      uts::enumerate_sequential(tree, job.nodes + 1);
  EXPECT_FALSE(seq.truncated);
  EXPECT_EQ(seq.nodes, job.nodes);
  EXPECT_EQ(seq.leaves, job.leaves);
}

TEST(Service, SpaceShareQueuesFifoWhenNoBlockIsFree) {
  // 8 ranks / 4 per job = 2 blocks; 4 simultaneous arrivals. Jobs 0 and 1
  // take the blocks, jobs 2 and 3 wait for a completion (FIFO), and every
  // block is one of the two fixed partitions.
  ws::RunConfig cfg = service_base(8);
  cfg.svc.arrival = ArrivalKind::kTrace;
  cfg.svc.trace = {0, 0, 0, 0};
  cfg.svc.alloc = AllocPolicy::kSpaceShare;
  cfg.svc.ranks_per_job = 4;

  const ws::RunResult r = checked_service_run(cfg);
  ASSERT_EQ(r.jobs.size(), 4u);
  support::SimTime earliest_finish = r.jobs[0].finish;
  for (const auto& job : r.jobs) {
    EXPECT_EQ(job.width, 4u);
    EXPECT_TRUE(job.base == 0 || job.base == 4) << job.base;
    EXPECT_GE(job.queue_wait(), 0);
    earliest_finish = std::min(earliest_finish, job.finish);
  }
  // The first two arrivals are admitted immediately; the overflow jobs only
  // after a block frees up.
  EXPECT_LT(r.jobs[0].admit, earliest_finish);
  EXPECT_LT(r.jobs[1].admit, earliest_finish);
  EXPECT_GE(r.jobs[2].admit, earliest_finish);
  EXPECT_GE(r.jobs[3].admit, earliest_finish);
  EXPECT_GT(r.jobs[3].queue_wait(), 0);
}

TEST(Service, TimeShareShrinksLeasesAndRelinquishesWork) {
  // Staggered arrivals into a time-shared pool: job 0 spreads over all 8
  // ranks, then loses half its lease when job 1 arrives. Parked ranks that
  // still hold chunks must relinquish them (shipped as lifeline pushes), and
  // the checked run's per-job oracle proves none of that work was lost.
  ws::RunConfig cfg = service_base(8);
  cfg.tree = uts::tree_by_name("TEST_BIN_SMALL");
  cfg.svc.arrival = ArrivalKind::kTrace;
  cfg.svc.trace = {0, 400'000, 800'000};
  cfg.svc.alloc = AllocPolicy::kTimeShare;

  const ws::RunResult r = checked_service_run(cfg);
  ASSERT_EQ(r.jobs.size(), 3u);
  std::uint64_t relinquishes = 0;
  for (const auto& rs : r.per_rank) relinquishes += rs.lifeline_pushes;
  EXPECT_GT(relinquishes, 0u) << "no lease shrink ever shipped work";
  for (const auto& job : r.jobs) {
    EXPECT_EQ(job.base, 0u);  // time sharing binds every job to all ranks
    EXPECT_EQ(job.width, 8u);
    EXPECT_GE(job.makespan(), 0);
  }
}

TEST(Service, ValidateScreensIllFormedServiceConfigs) {
  ws::RunConfig good = service_base(8);
  good.svc.arrival = ArrivalKind::kPoisson;
  good.svc.num_jobs = 4;
  good.svc.mean_interarrival = 500'000;
  good.svc.alloc = AllocPolicy::kSpaceShare;
  good.svc.ranks_per_job = 4;
  ASSERT_TRUE(static_cast<bool>(good.validate()));

  {
    ws::RunConfig bad = good;
    bad.backend = ws::Backend::kRt;
    EXPECT_FALSE(static_cast<bool>(bad.validate()));
  }
  {
    ws::RunConfig bad = good;
    bad.ws.one_sided_steals = true;
    EXPECT_FALSE(static_cast<bool>(bad.validate()));
  }
  {
    ws::RunConfig bad = good;
    bad.ws.idle_policy = ws::IdlePolicy::kLifeline;
    EXPECT_FALSE(static_cast<bool>(bad.validate()));
  }
  {
    ws::RunConfig bad = good;
    bad.svc.kind = JobKind::kDag;
    EXPECT_FALSE(static_cast<bool>(bad.validate()));
  }
  {
    // Adaptive feedback composes with space sharing (disjoint rank sets keep
    // the EWMAs honest) but not with time-share leases, where parked ranks
    // refuse every steal and poison the per-victim state.
    ws::RunConfig adaptive = good;
    adaptive.ws.victim_policy = ws::VictimPolicy::kAdaptive;
    EXPECT_TRUE(static_cast<bool>(adaptive.validate()));
    adaptive.svc.alloc = AllocPolicy::kTimeShare;
    EXPECT_FALSE(static_cast<bool>(adaptive.validate()));
    ws::RunConfig amount = good;
    amount.svc.alloc = AllocPolicy::kTimeShare;
    amount.ws.adaptive_steal_amount = true;
    EXPECT_FALSE(static_cast<bool>(amount.validate()));
  }
  {
    ws::RunConfig bad = good;
    bad.svc.num_jobs = 0;
    EXPECT_FALSE(static_cast<bool>(bad.validate()));
  }
  {
    ws::RunConfig bad = good;
    bad.svc.mean_interarrival = 0;
    EXPECT_FALSE(static_cast<bool>(bad.validate()));
  }
  {
    ws::RunConfig bad = good;
    bad.svc.arrival = ArrivalKind::kTrace;
    bad.svc.trace.clear();
    EXPECT_FALSE(static_cast<bool>(bad.validate()));
  }
  {
    ws::RunConfig bad = good;
    bad.svc.arrival = ArrivalKind::kTrace;
    bad.svc.trace = {0, 100};
    bad.svc.num_jobs = 3;  // contradicts the trace length
    EXPECT_FALSE(static_cast<bool>(bad.validate()));
  }
  {
    ws::RunConfig bad = good;
    bad.svc.ranks_per_job = 3;  // 8 % 3 != 0
    EXPECT_FALSE(static_cast<bool>(bad.validate()));
  }
  {
    ws::RunConfig bad = good;
    bad.svc.mix = {{"TEST_BIN_TINY", 0.0}};
    EXPECT_FALSE(static_cast<bool>(bad.validate()));
  }
  {
    ws::RunConfig bad = good;
    bad.svc.mix = {{"NO_SUCH_TREE", 1.0}};
    EXPECT_FALSE(static_cast<bool>(bad.validate()));
  }
}

TEST(Service, ServiceKnobsKeyTheFingerprintOnlyWhenEnabled) {
  ws::RunConfig off;
  off.tree = uts::tree_by_name("TEST_BIN_TINY");
  off.num_ranks = 8;
  // svc.* must not leak into disabled configs: their canonical form (and so
  // every pre-existing fingerprint) is unchanged by the service fields.
  ws::RunConfig off_touched = off;
  off_touched.svc.seed = 999;
  off_touched.svc.num_jobs = 7;
  EXPECT_EQ(exp::canonical_config(off), exp::canonical_config(off_touched));
  EXPECT_EQ(std::string::npos, exp::canonical_config(off).find("svc."));

  ws::RunConfig on = service_base(8);
  on.svc.arrival = ArrivalKind::kPoisson;
  on.svc.num_jobs = 4;
  on.svc.mean_interarrival = 500'000;
  on.svc.alloc = AllocPolicy::kSpaceShare;
  on.svc.ranks_per_job = 4;
  EXPECT_NE(std::string::npos, exp::canonical_config(on).find("svc.seed"));
  EXPECT_NE(exp::config_fingerprint(off), exp::config_fingerprint(on));

  ws::RunConfig reseeded = on;
  reseeded.svc.seed = 10;
  EXPECT_NE(exp::config_fingerprint(on), exp::config_fingerprint(reseeded));

  // sim_shards stays an execution strategy for service runs too.
  ws::RunConfig sharded = on;
  sharded.sim_shards = 8;
  EXPECT_EQ(exp::config_fingerprint(on), exp::config_fingerprint(sharded));
}

}  // namespace
}  // namespace dws::svc
