/// The arrival process and its determinism contract (DESIGN.md §13): job
/// identity — tree pick and root seed — is a pure function of
/// (svc.seed, job id), never of the arrival interleaving. The admission-
/// reorder regression is the load-bearing test here: swapping two trace
/// entries must change WHEN each job runs but not WHAT it computes.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "svc/arrival.hpp"
#include "svc/service.hpp"
#include "uts/params.hpp"
#include "ws/scheduler.hpp"

namespace dws::svc {
namespace {

ServiceParams poisson_params(std::uint64_t seed, std::uint32_t jobs) {
  ServiceParams p;
  p.enabled = true;
  p.seed = seed;
  p.num_jobs = jobs;
  p.arrival = ArrivalKind::kPoisson;
  p.mean_interarrival = 500'000;
  return p;
}

TEST(Arrival, PoissonStreamIsDeterministicPerSeed) {
  const uts::TreeParams tree = uts::tree_by_name("TEST_BIN_TINY");
  const auto a = generate_jobs(poisson_params(7, 16), tree);
  const auto b = generate_jobs(poisson_params(7, 16), tree);
  ASSERT_EQ(a.size(), 16u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<JobId>(i));
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].tree.root_seed, b[i].tree.root_seed);
    if (i > 0) {
      EXPECT_GE(a[i].arrival, a[i - 1].arrival);
    }
  }

  const auto c = generate_jobs(poisson_params(8, 16), tree);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_difference = any_difference || a[i].arrival != c[i].arrival ||
                     a[i].tree.root_seed != c[i].tree.root_seed;
  }
  EXPECT_TRUE(any_difference) << "seed does not reach the arrival stream";
}

TEST(Arrival, PerJobRootSeedsAreDistinct) {
  const uts::TreeParams tree = uts::tree_by_name("TEST_BIN_TINY");
  const auto jobs = generate_jobs(poisson_params(3, 32), tree);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    for (std::size_t j = i + 1; j < jobs.size(); ++j) {
      EXPECT_NE(jobs[i].tree.root_seed, jobs[j].tree.root_seed)
          << "jobs " << i << " and " << j << " share a root seed";
    }
  }
}

TEST(Arrival, TraceKeepsJobIdsInTraceOrder) {
  ServiceParams p;
  p.enabled = true;
  p.seed = 11;
  p.arrival = ArrivalKind::kTrace;
  p.trace = {2'000'000, 0, 1'000'000};  // deliberately unsorted
  const auto jobs =
      generate_jobs(p, uts::tree_by_name("TEST_BIN_TINY"));
  ASSERT_EQ(jobs.size(), 3u);
  // Ids follow trace positions; arrival times are the trace values verbatim.
  EXPECT_EQ(jobs[0].arrival, 2'000'000);
  EXPECT_EQ(jobs[1].arrival, 0);
  EXPECT_EQ(jobs[2].arrival, 1'000'000);
}

TEST(Arrival, MixResolvesToCatalogueTreesDeterministically) {
  ServiceParams p = poisson_params(21, 64);
  p.mix = {{"TEST_BIN_TINY", 1.0}, {"TEST_GEO_FIX", 3.0}};
  const uts::TreeParams fallback = uts::tree_by_name("TEST_BIN_SMALL");
  const auto jobs = generate_jobs(p, fallback);
  std::uint32_t tiny = 0, geo = 0;
  for (const JobSpec& j : jobs) {
    if (j.tree.name == "TEST_BIN_TINY") {
      ++tiny;
    } else {
      ASSERT_EQ(j.tree.name, "TEST_GEO_FIX");
      ++geo;
    }
  }
  // Both entries must be drawn; the 3:1 weighting must show in the counts.
  EXPECT_GT(tiny, 0u);
  EXPECT_GT(geo, tiny);

  const auto again = generate_jobs(p, fallback);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].tree.name, again[i].tree.name);
  }
}

/// Satellite 2: admission reordering must not change any job's tree shape.
/// Two traces that swap which job arrives first are run end-to-end; job 0
/// must expand the identical tree (same root seed, same realised node and
/// leaf counts) either way, and so must job 1.
TEST(Arrival, AdmissionReorderingDoesNotChangeAnyJobsTree) {
  ws::RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_TINY");
  cfg.num_ranks = 8;
  cfg.ws.chunk_size = 2;
  cfg.svc.enabled = true;
  cfg.svc.seed = 42;
  cfg.svc.arrival = ArrivalKind::kTrace;
  cfg.svc.alloc = AllocPolicy::kSpaceShare;
  cfg.svc.ranks_per_job = 4;

  cfg.svc.trace = {2'000'000, 1'000'000};  // job 1 admitted before job 0
  const ws::RunResult late_first = checked_service_run(cfg);
  cfg.svc.trace = {1'000'000, 2'000'000};  // job 0 admitted before job 1
  const ws::RunResult early_first = checked_service_run(cfg);

  ASSERT_EQ(late_first.jobs.size(), 2u);
  ASSERT_EQ(early_first.jobs.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(late_first.jobs[i].root_seed, early_first.jobs[i].root_seed);
    EXPECT_EQ(late_first.jobs[i].tree, early_first.jobs[i].tree);
    EXPECT_EQ(late_first.jobs[i].nodes, early_first.jobs[i].nodes);
    EXPECT_EQ(late_first.jobs[i].leaves, early_first.jobs[i].leaves);
  }
  // The reorder DID change the schedule: arrivals swapped.
  EXPECT_NE(late_first.jobs[0].arrival, early_first.jobs[0].arrival);
}

}  // namespace
}  // namespace dws::svc
