#include "audit/distribution.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "support/stats.hpp"
#include "topo/latency.hpp"
#include "ws/victim.hpp"

namespace dws::audit {
namespace {

/// Fixture supplying a 64-rank grouped job (8 ranks per node) — the layout
/// where every selector family has non-trivial structure: Tofu distances
/// vary, and the hierarchical local set is the 7 node-mates.
class DistributionTest : public ::testing::Test {
 protected:
  DistributionTest()
      : layout_(machine_, 64, topo::Placement::kGrouped, 8),
        latency_(layout_) {}

  topo::TofuMachine machine_;
  topo::JobLayout layout_;
  topo::LatencyModel latency_;
};

TEST(ChiSquareSf, MatchesTextbookValues) {
  // sf(3.841, 1) is the classic 5% critical value.
  EXPECT_NEAR(support::chi_square_sf(3.841, 1.0), 0.05, 2e-3);
  EXPECT_NEAR(support::chi_square_sf(18.307, 10.0), 0.05, 2e-3);
  EXPECT_DOUBLE_EQ(support::chi_square_sf(0.0, 5.0), 1.0);
  EXPECT_GT(support::chi_square_sf(10.0, 10.0),
            support::chi_square_sf(20.0, 10.0));
  EXPECT_LT(support::chi_square_sf(100.0, 3.0), 1e-12);
}

TEST_F(DistributionTest, EveryPolicyMatchesItsAnalyticDistribution) {
  const ws::VictimPolicy policies[] = {
      ws::VictimPolicy::kRoundRobin, ws::VictimPolicy::kRandom,
      ws::VictimPolicy::kTofuSkewed, ws::VictimPolicy::kHierarchical,
      ws::VictimPolicy::kAdaptive};
  for (const ws::VictimPolicy policy : policies) {
    ws::WsConfig cfg;
    cfg.victim_policy = policy;
    const topo::Rank self = 5;
    const std::vector<double> expected =
        expected_distribution(cfg, self, 64, latency_);
    ASSERT_EQ(expected.size(), 64u);
    EXPECT_DOUBLE_EQ(expected[self], 0.0);
    EXPECT_NEAR(std::accumulate(expected.begin(), expected.end(), 0.0), 1.0,
                1e-9);
    auto selector = ws::make_selector(cfg, self, latency_);
    const DistributionCheck check =
        check_selector_distribution(*selector, expected, self, 20000);
    EXPECT_TRUE(check.ok) << ws::to_string(policy) << ": " << check.detail;
    EXPECT_EQ(check.samples, 20000u);
  }
}

TEST_F(DistributionTest, SkewedSelectorFailsTheUniformExpectation) {
  // Negative control: the distance-skewed draw against a flat analytic
  // distribution must trip the chi-square screen.
  std::vector<double> uniform(64, 1.0 / 63.0);
  uniform[5] = 0.0;
  ws::TofuSkewedSelector selector(5, latency_, 1, 2048);
  const DistributionCheck check =
      check_selector_distribution(selector, uniform, 5, 20000);
  EXPECT_FALSE(check.ok);
  EXPECT_FALSE(check.detail.empty());
}

TEST_F(DistributionTest, HierarchicalExpectationUsesCorrectedSplit) {
  // local_tries = 3 schedules 3 local picks per remote pick, so exactly 3/4
  // of the mass sits on the local set — not the pre-fix local/(local+remote)
  // node-count ratio.
  ws::WsConfig cfg;
  cfg.victim_policy = ws::VictimPolicy::kHierarchical;
  cfg.hierarchical_local_tries = 3;
  const std::vector<double> expected =
      expected_distribution(cfg, 0, 64, latency_);
  ws::HierarchicalSelector selector(0, latency_, 7, 3);
  double local_mass = 0.0;
  for (const topo::Rank r : selector.local_set()) local_mass += expected[r];
  EXPECT_NEAR(local_mass, 0.75, 1e-9);
  const DistributionCheck check =
      check_selector_distribution(selector, expected, 0, 20000);
  EXPECT_TRUE(check.ok) << check.detail;
}

TEST_F(DistributionTest, LocalTriesKnobChangesTheDistribution) {
  // Regression for the make_selector plumbing: a selector built with
  // local_tries = 4 must fail the all-remote (local_tries = 0) expectation —
  // before the fix both built identically and this was indistinguishable.
  ws::WsConfig all_remote;
  all_remote.victim_policy = ws::VictimPolicy::kHierarchical;
  all_remote.hierarchical_local_tries = 0;
  const std::vector<double> remote_only =
      expected_distribution(all_remote, 0, 64, latency_);

  ws::WsConfig mostly_local = all_remote;
  mostly_local.hierarchical_local_tries = 4;
  auto selector = ws::make_selector(mostly_local, 0, latency_);
  const DistributionCheck cross =
      check_selector_distribution(*selector, remote_only, 0, 20000);
  EXPECT_FALSE(cross.ok);

  auto remote_selector = ws::make_selector(all_remote, 0, latency_);
  const DistributionCheck own =
      check_selector_distribution(*remote_selector, remote_only, 0, 20000);
  EXPECT_TRUE(own.ok) << own.detail;
}

TEST_F(DistributionTest, RemoteTriesKnobChangesTheHierarchicalSplit) {
  // remote_tries = 3 against local_tries = 3 moves the local mass from 3/4
  // down to 1/2; the audit expectation must track the knob, not assume the
  // historical single remote slot.
  ws::WsConfig cfg;
  cfg.victim_policy = ws::VictimPolicy::kHierarchical;
  cfg.hierarchical_local_tries = 3;
  cfg.hierarchical_remote_tries = 3;
  const std::vector<double> expected =
      expected_distribution(cfg, 0, 64, latency_);
  ws::HierarchicalSelector selector(0, latency_, 7, 3, 3);
  double local_mass = 0.0;
  for (const topo::Rank r : selector.local_set()) local_mass += expected[r];
  EXPECT_NEAR(local_mass, 0.5, 1e-9);
  const DistributionCheck check =
      check_selector_distribution(selector, expected, 0, 20000);
  EXPECT_TRUE(check.ok) << check.detail;
}

TEST_F(DistributionTest, FreshAdaptiveMatchesTheEpsilonMixedTofuExpectation) {
  // Before any feedback the live weights equal the static Tofu base, so the
  // analytic distribution is (1 - eps) * tofu + eps * uniform — which is
  // what expected_distribution builds from probability().
  ws::WsConfig cfg;
  cfg.victim_policy = ws::VictimPolicy::kAdaptive;
  cfg.adapt_epsilon = 0.2;
  const topo::Rank self = 5;
  const std::vector<double> expected =
      expected_distribution(cfg, self, 64, latency_);
  ws::TofuSkewedSelector tofu(self, latency_, cfg.seed, 2048);
  for (topo::Rank j = 0; j < 64; ++j) {
    const double mixed =
        j == self ? 0.0 : 0.8 * tofu.probability(j) + 0.2 / 63.0;
    EXPECT_NEAR(expected[j], mixed, 1e-12) << j;
  }
  auto selector = ws::make_selector(cfg, self, latency_);
  const DistributionCheck check =
      check_selector_distribution(*selector, expected, self, 20000);
  EXPECT_TRUE(check.ok) << check.detail;
}

TEST_F(DistributionTest, TofuBackendsSelectByThresholdAndAgree) {
  // 64 ranks: max_ranks = 2048 keeps the Walker alias table, max_ranks = 1
  // forces rejection sampling. Identical probability vectors either way.
  ws::TofuSkewedSelector alias(3, latency_, 7, 2048);
  ws::TofuSkewedSelector rejection(3, latency_, 7, 1);
  EXPECT_TRUE(alias.uses_alias_table());
  EXPECT_FALSE(rejection.uses_alias_table());
  for (topo::Rank r = 0; r < 64; ++r) {
    EXPECT_NEAR(alias.probability(r), rejection.probability(r), 1e-12) << r;
  }

  ws::WsConfig cfg;
  cfg.victim_policy = ws::VictimPolicy::kTofuSkewed;
  const DistributionCheck check =
      check_tofu_backends_agree(cfg, 3, latency_, 20000);
  EXPECT_TRUE(check.ok) << check.detail;
}

TEST_F(DistributionTest, TofuAgreementHoldsOnBothSidesOfTheThreshold) {
  for (const std::uint32_t max_ranks : {1u, 2048u}) {
    ws::WsConfig cfg;
    cfg.victim_policy = ws::VictimPolicy::kTofuSkewed;
    cfg.alias_table_max_ranks = max_ranks;
    const std::vector<double> expected =
        expected_distribution(cfg, 9, 64, latency_);
    auto selector = ws::make_selector(cfg, 9, latency_);
    const DistributionCheck check =
        check_selector_distribution(*selector, expected, 9, 20000);
    EXPECT_TRUE(check.ok) << "max_ranks=" << max_ranks << ": " << check.detail;
  }
}

}  // namespace
}  // namespace dws::audit
