#include "audit/audit.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "exp/record.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "uts/params.hpp"
#include "uts/sequential.hpp"

namespace dws::audit {
namespace {

/// Golden determinism: Fig. 6's smallest quick-mode point (SIM200K at 128
/// ranks, Reference 1/N) must produce byte-identical JSONL whether it runs
/// serially or on the SweepRunner pool, audited or not. The audit observer
/// is passive by contract — this pins that contract to a real figure point.

ws::RunConfig fig06_smallest() {
  ws::RunConfig cfg;
  cfg.tree = uts::tree_by_name("SIM200K");
  cfg.num_ranks = 128;
  cfg.ws.chunk_size = 4;
  cfg.ws.victim_policy = ws::VictimPolicy::kRoundRobin;
  cfg.ws.steal_amount = ws::StealAmount::kOneChunk;
  cfg.placement = topo::Placement::kOnePerNode;
  cfg.procs_per_node = 1;
  cfg.enable_congestion(1.0);
  return cfg;
}

std::string run_records(bool audited, unsigned threads) {
  exp::SweepSpec spec(fig06_smallest());
  spec.axis(exp::ranks_axis({128}));
  const auto expanded = spec.expand();
  EXPECT_TRUE(expanded);
  exp::RunnerOptions options;
  options.threads = threads;
  options.progress = false;
  if (audited) {
    options.run = [](const ws::RunConfig& cfg) { return checked_run(cfg); };
  } else {
    options.run = [](const ws::RunConfig& cfg) {
      return ws::run_simulation(cfg);
    };
  }
  const exp::SweepReport report = exp::SweepRunner(options).run(expanded.value());
  EXPECT_TRUE(report.all_ok());
  std::ostringstream out;
  exp::RecordWriter writer(
      out, exp::RecordOptions{exp::RecordFormat::kJsonl, /*wall_clock=*/false});
  writer.write_report(expanded.value(), report);
  return out.str();
}

TEST(GoldenDeterminism, AuditedFigurePointIsClean) {
  const ws::RunConfig cfg = fig06_smallest();
  const AuditedResult audited = audited_run(cfg, AuditConfig::all());
  EXPECT_TRUE(audited.report.ok()) << audited.report.summary();
  EXPECT_EQ(audited.result.nodes, uts::enumerate_sequential(cfg.tree).nodes);
  EXPECT_EQ(audited.report.nodes_expanded, audited.result.nodes);
}

TEST(GoldenDeterminism, SerialAndPooledRecordsAreByteIdentical) {
  const std::string serial = run_records(/*audited=*/true, 1);
  const std::string pooled = run_records(/*audited=*/true, 4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, pooled);
}

TEST(GoldenDeterminism, AuditingDoesNotPerturbTheRecords) {
  // The observer must not change the simulation's event order: the audited
  // record stream is byte-identical to the bare one.
  EXPECT_EQ(run_records(/*audited=*/true, 1), run_records(/*audited=*/false, 1));
}

}  // namespace
}  // namespace dws::audit
