#include "audit/audit.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>

#include "uts/sequential.hpp"
#include "uts/tree.hpp"
#include "ws/message.hpp"
#include "ws/scheduler.hpp"

namespace dws::audit {
namespace {

/// Each invariant family is exercised from both sides: honest runs across the
/// full extension matrix must come back clean, and a hand-fed lie on any hook
/// must surface as a violation of the right family.

bool has_violation(const AuditReport& report, Family family,
                   const std::string& needle) {
  for (const Violation& v : report.violations) {
    if (v.family == family && v.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

ws::RunConfig small_config() {
  ws::RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_SMALL");
  cfg.num_ranks = 16;
  return cfg;
}

// --- Honest runs are clean across every scheduler extension ---

using AuditParam = std::tuple<ws::VictimPolicy, ws::IdlePolicy, bool>;

class CleanRuns : public ::testing::TestWithParam<AuditParam> {};

TEST_P(CleanRuns, EveryFamilyPasses) {
  const auto& [policy, idle, one_sided] = GetParam();
  ws::RunConfig cfg = small_config();
  cfg.ws.victim_policy = policy;
  cfg.ws.idle_policy = idle;
  cfg.ws.one_sided_steals = one_sided;
  cfg.ws.lifeline_tries = 2;
  const AuditedResult audited = audited_run(cfg, AuditConfig::all());
  EXPECT_TRUE(audited.report.ok()) << audited.report.summary();
  EXPECT_EQ(audited.result.nodes, uts::enumerate_sequential(cfg.tree).nodes);
  EXPECT_GT(audited.report.nodes_expanded, 0u);
  EXPECT_GT(audited.report.requests, 0u);
  EXPECT_GT(audited.report.tokens, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CleanRuns,
    ::testing::Combine(
        ::testing::Values(ws::VictimPolicy::kRoundRobin,
                          ws::VictimPolicy::kRandom,
                          ws::VictimPolicy::kTofuSkewed,
                          ws::VictimPolicy::kHierarchical),
        ::testing::Values(ws::IdlePolicy::kPersistentSteal,
                          ws::IdlePolicy::kLifeline),
        ::testing::Bool()));

TEST(CheckedRun, ReturnsTheResultWhenClean) {
  const ws::RunConfig cfg = small_config();
  const ws::RunResult r = checked_run(cfg);
  EXPECT_EQ(r.nodes, uts::enumerate_sequential(cfg.tree).nodes);
}

TEST(EnvEnabled, ParsesCommonSpellings) {
  ::unsetenv("DWS_AUDIT");
  EXPECT_FALSE(env_enabled());
  ::setenv("DWS_AUDIT", "0", 1);
  EXPECT_FALSE(env_enabled());
  ::setenv("DWS_AUDIT", "off", 1);
  EXPECT_FALSE(env_enabled());
  ::setenv("DWS_AUDIT", "1", 1);
  EXPECT_TRUE(env_enabled());
  ::setenv("DWS_AUDIT", "true", 1);
  EXPECT_TRUE(env_enabled());
  ::unsetenv("DWS_AUDIT");
}

// --- Work conservation ---

TEST(WorkFamily, ExpansionWithoutStackIsCaught) {
  const ws::RunConfig cfg = small_config();
  Auditor a(cfg);
  a.on_node_expanded(3, uts::root_node(cfg.tree), 0);
  EXPECT_TRUE(has_violation(a.report(), Family::kWork, "ledger stack"));
}

TEST(WorkFamily, DoubleExpansionIsCaught) {
  const ws::RunConfig cfg = small_config();
  Auditor a(cfg);
  const uts::TreeNode root = uts::root_node(cfg.tree);
  a.on_root(0, root);
  a.on_node_expanded(0, root, 2);
  EXPECT_TRUE(a.report().ok());
  a.on_node_expanded(0, root, 0);  // same fingerprint again
  EXPECT_TRUE(has_violation(a.report(), Family::kWork, "expanded twice"));
}

TEST(WorkFamily, ShippingMoreThanTheStackHoldsIsCaught) {
  const ws::RunConfig cfg = small_config();
  Auditor a(cfg);
  const uts::TreeNode root = uts::root_node(cfg.tree);
  a.on_root(0, root);
  a.on_node_expanded(0, root, 2);  // rank 0's ledger stack now holds 2
  a.on_steal_request_sent(1, 0, 8);
  a.on_steal_response_sent(0, 1, 1, 10, 64);
  EXPECT_TRUE(has_violation(a.report(), Family::kWork, "shipped"));
}

TEST(WorkFamily, TerminationWithWorkInFlightIsCaught) {
  const ws::RunConfig cfg = small_config();
  Auditor a(cfg);
  const uts::TreeNode root = uts::root_node(cfg.tree);
  a.on_root(0, root);
  a.on_node_expanded(0, root, 6);
  a.on_steal_request_sent(1, 0, 8);
  a.on_steal_response_sent(0, 1, 1, 4, 64);  // 4 nodes leave, never land
  a.on_token_sent(15, 0, ws::Token{});
  a.on_termination(100);
  EXPECT_TRUE(has_violation(a.report(), Family::kWork, "in flight"));
}

TEST(WorkFamily, ResultNodeCountMismatchIsCaught) {
  const ws::RunConfig cfg = small_config();
  Auditor a(cfg);
  ws::RunResult r = ws::run_simulation(cfg, &a);
  r.nodes += 1;  // the scheduler lies about its total
  a.finalize(r);
  EXPECT_TRUE(has_violation(a.report(), Family::kWork, "result claims"));
}

// --- Message conservation ---

TEST(MessageFamily, ResponseWithoutRequestIsCaught) {
  Auditor a(small_config());
  a.on_steal_response_sent(0, 1, 0, 0, 64);
  EXPECT_TRUE(has_violation(a.report(), Family::kMessages, "never sent"));
}

TEST(MessageFamily, SecondOutstandingRequestIsCaught) {
  Auditor a(small_config());
  a.on_steal_request_sent(2, 0, 8);
  a.on_steal_request_sent(2, 1, 8);
  EXPECT_TRUE(
      has_violation(a.report(), Family::kMessages, "second steal request"));
}

TEST(MessageFamily, RequestToSelfIsCaught) {
  Auditor a(small_config());
  a.on_steal_request_sent(2, 2, 8);
  EXPECT_TRUE(has_violation(a.report(), Family::kMessages, "itself"));
}

TEST(MessageFamily, UnsolicitedReceiptIsCaught) {
  Auditor a(small_config());
  a.on_steal_response_received(1, 0, 0, 0);
  EXPECT_TRUE(has_violation(a.report(), Family::kMessages, "none in flight"));
}

TEST(MessageFamily, NetworkStatsMismatchIsCaught) {
  const ws::RunConfig cfg = small_config();
  Auditor a(cfg);
  ws::RunResult r = ws::run_simulation(cfg, &a);
  r.network.messages += 1;  // one message the ledger never saw
  a.finalize(r);
  EXPECT_TRUE(
      has_violation(a.report(), Family::kMessages, "network stats claim"));
}

// --- Clock / trace sanity ---

TEST(ClockFamily, PhaseTimeRegressionIsCaught) {
  Auditor a(small_config());
  a.on_phase(0, 100, metrics::Phase::kActive);
  a.on_phase(0, 50, metrics::Phase::kIdle);
  EXPECT_TRUE(has_violation(a.report(), Family::kClock, "went backwards"));
}

TEST(ClockFamily, ActiveAfterTerminationIsCaught) {
  ws::RunConfig cfg = small_config();
  cfg.num_ranks = 1;  // single rank: termination needs no token
  Auditor a(cfg);
  a.on_termination(10);
  a.on_phase(0, 20, metrics::Phase::kActive);
  EXPECT_TRUE(
      has_violation(a.report(), Family::kClock, "after global termination"));
}

TEST(ClockFamily, TokenLeavingTheRingIsCaught) {
  Auditor a(small_config());
  a.on_token_sent(3, 7, ws::Token{});
  EXPECT_TRUE(has_violation(a.report(), Family::kClock, "left the ring"));
}

TEST(ClockFamily, UnsoundTerminationTokenIsCaught) {
  Auditor a(small_config());
  ws::Token t;
  t.black = false;
  t.sent = 5;
  t.recv = 3;  // counters do not balance: rank 0 must not accept this
  a.on_token_sent(15, 0, t);
  a.on_termination(42);
  EXPECT_TRUE(has_violation(a.report(), Family::kClock, "unsound token"));
}

TEST(ClockFamily, TerminationWithoutTokenIsCaught) {
  Auditor a(small_config());
  a.on_termination(42);
  EXPECT_TRUE(
      has_violation(a.report(), Family::kClock, "before any token"));
}

TEST(ClockFamily, ResultRuntimeMismatchIsCaught) {
  const ws::RunConfig cfg = small_config();
  Auditor a(cfg);
  ws::RunResult r = ws::run_simulation(cfg, &a);
  r.runtime += 1;
  a.finalize(r);
  EXPECT_TRUE(
      has_violation(a.report(), Family::kClock, "observed termination"));
}

TEST(Report, SummaryListsFamiliesAndCounts) {
  Auditor a(small_config());
  a.on_steal_request_sent(2, 2, 8);
  EXPECT_NE(a.report().summary().find("[messages]"), std::string::npos);
  Auditor clean(small_config());
  EXPECT_NE(clean.report().summary().find("OK"), std::string::npos);
}

}  // namespace
}  // namespace dws::audit
