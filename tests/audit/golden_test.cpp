/// Committed-golden regression test: the fig06 quick sweep, run under the
/// audit observer, must reproduce tests/golden/fig06_quick.jsonl BYTE FOR
/// BYTE. The file was generated on the pre-refactor closure event core, so
/// this pins the typed event core (calendar queue, slab pools, EventSink
/// dispatch) to the exact (time, seq) schedule — and with it every counter,
/// trace, and metric — of the original engine.
///
/// The records are written in schema v1 compatibility mode, matching the
/// version the file was generated with; v2's extra fields would otherwise
/// change the bytes without changing the simulation.
///
/// To regenerate after an *intentional* semantic change, run this binary
/// with DWS_UPDATE_GOLDEN=1 in the environment and commit the diff with an
/// explanation of why the schedule legitimately changed.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "audit/audit.hpp"
#include "exp/figures.hpp"
#include "exp/record.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "uts/params.hpp"

#ifndef DWS_GOLDEN_DIR
#error "DWS_GOLDEN_DIR must point at tests/golden (set by tests/audit/CMakeLists.txt)"
#endif

namespace dws::audit {
namespace {

std::string golden_path() {
  return std::string(DWS_GOLDEN_DIR) + "/fig06_quick.jsonl";
}

/// The fig06 --quick sweep: SIM200K, ranks {128, 256}, the paper's four
/// series, chunk 4, congestion on. Must match the generator exactly.
std::string generate_records() {
  ws::RunConfig base;
  base.tree = uts::tree_by_name("SIM200K");
  base.ws.chunk_size = 4;
  base.enable_congestion(1.0);

  exp::SweepSpec spec(base);
  spec.axis(exp::ranks_axis({128, 256}))
      .axis(exp::series_axis({exp::make_series(exp::kReference, exp::kOneN),
                              exp::make_series(exp::kRand, exp::kOneN),
                              exp::make_series(exp::kRand, exp::k8RR),
                              exp::make_series(exp::kRand, exp::k8G)}));
  const auto expanded = spec.expand();
  EXPECT_TRUE(expanded);

  exp::RunnerOptions options;
  options.threads = 1;  // serial: the golden was generated serially
  options.progress = false;
  options.run = [](const ws::RunConfig& cfg) { return checked_run(cfg); };
  const exp::SweepReport report =
      exp::SweepRunner(options).run(expanded.value());
  EXPECT_TRUE(report.all_ok());

  exp::RecordOptions record_options{exp::RecordFormat::kJsonl,
                                    /*wall_clock=*/false};
  record_options.schema_version = 1;  // the version the golden was cut at
  std::ostringstream out;
  exp::RecordWriter writer(out, record_options);
  writer.write_report(expanded.value(), report);
  return out.str();
}

TEST(GoldenFile, Fig06QuickIsByteIdenticalUnderAudit) {
  const std::string generated = generate_records();
  ASSERT_FALSE(generated.empty());

  if (std::getenv("DWS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out.is_open()) << "cannot write " << golden_path();
    out << generated;
    GTEST_SKIP() << "regenerated " << golden_path();
  }

  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << "missing " << golden_path()
      << " (run with DWS_UPDATE_GOLDEN=1 to create it)";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();

  ASSERT_EQ(generated.size(), expected.size())
      << "record stream length changed — the event schedule is no longer "
         "identical to the committed golden";
  // Byte compare with a readable first-divergence report.
  if (generated != expected) {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < generated.size(); ++i) {
      if (generated[i] != expected[i]) break;
      if (generated[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    FAIL() << "golden mismatch first diverges at line " << line << ", column "
           << col;
  }
}

}  // namespace
}  // namespace dws::audit
