/// Sharded differential suite for multi-tenant service runs (DESIGN.md §13):
/// a service point — several jobs, arrivals over virtual time, elastic or
/// space-shared allocation, optionally faulted — must emit BYTE-IDENTICAL
/// schema-v6 records (run row AND every job row) at sim_shards 1, 2, 4 and
/// 8, with merge_ambiguities == 0. The controller lives on shard 0 and its
/// admission/lease traffic crosses shards as ordinary network deliveries, so
/// this pins the whole control plane, not just the steal protocol.
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "audit/audit.hpp"
#include "exp/record.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "svc/service.hpp"
#include "uts/params.hpp"
#include "ws/scheduler.hpp"

namespace dws::audit {
namespace {

/// One sim_shards sweep of a service config rendered as wall-clock-free
/// JSONL. Unlike the single-job differential, each point renders several
/// lines (one run row + one job row per job); all of them must match.
std::vector<std::string> service_records_per_shard_count(
    const ws::RunConfig& base,
    const std::vector<std::uint32_t>& counts = {1, 2, 4, 8}) {
  exp::SweepSpec spec(base);
  spec.axis(exp::sim_shards_axis(counts));
  const auto expanded = spec.expand();
  EXPECT_TRUE(expanded);
  exp::RunnerOptions options;
  options.threads = 1;
  options.progress = false;
  options.run = [](const ws::RunConfig& cfg) { return checked_run(cfg); };
  const exp::SweepReport report =
      exp::SweepRunner(options).run(expanded.value());
  EXPECT_TRUE(report.all_ok());

  std::vector<std::string> blocks;
  for (std::size_t i = 0; i < expanded.value().size(); ++i) {
    std::ostringstream out;
    exp::RecordWriter writer(out, exp::RecordOptions{exp::RecordFormat::kJsonl,
                                                     /*wall_clock=*/false});
    writer.write(expanded.value()[i], report.points[i]);
    std::string block = out.str();
    // Strip the sweep bookkeeping from every line of the block (run and job
    // rows both carry it) — the only part allowed to differ.
    for (std::size_t pos = block.find("\"index\":"); pos != std::string::npos;
         pos = block.find("\"index\":", pos)) {
      const auto end = block.find('}', block.find("\"coords\":{", pos));
      EXPECT_NE(end, std::string::npos);
      if (end == std::string::npos) break;
      block.erase(pos, end + 2 - pos);
    }
    blocks.push_back(std::move(block));
  }
  return blocks;
}

void expect_service_shard_invariant(const ws::RunConfig& base) {
  const std::vector<std::string> blocks =
      service_records_per_shard_count(base);
  ASSERT_EQ(blocks.size(), 4u);
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    EXPECT_EQ(blocks[0], blocks[i])
        << "service records diverge between sim_shards=1 and the " << i
        << "th shard count";
  }
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    ws::RunConfig cfg = base;
    cfg.sim_shards = shards;
    const ws::RunResult result = svc::run_service(cfg);
    EXPECT_EQ(result.merge_ambiguities, 0u) << "sim_shards=" << shards;
    EXPECT_GT(result.shards_used, 1u);
    EXPECT_FALSE(result.jobs.empty());
  }
}

ws::RunConfig service_base() {
  ws::RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_SMALL");
  cfg.num_ranks = 64;
  cfg.ws.chunk_size = 4;
  cfg.svc.enabled = true;
  cfg.svc.seed = 4;
  return cfg;
}

TEST(ServiceShard, SpaceSharedStreamIsShardCountInvariant) {
  ws::RunConfig cfg = service_base();
  cfg.svc.arrival = svc::ArrivalKind::kPoisson;
  cfg.svc.num_jobs = 6;
  cfg.svc.mean_interarrival = 300'000;
  cfg.svc.alloc = svc::AllocPolicy::kSpaceShare;
  cfg.svc.ranks_per_job = 16;
  expect_service_shard_invariant(cfg);
}

TEST(ServiceShard, TimeSharedElasticStreamIsShardCountInvariant) {
  // Elastic leases are the hard case: shrink/park/relinquish hand-offs
  // triggered by controller messages that cross shard boundaries.
  ws::RunConfig cfg = service_base();
  cfg.svc.arrival = svc::ArrivalKind::kTrace;
  cfg.svc.trace = {0, 200'000, 400'000, 600'000, 800'000, 1'000'000};
  cfg.svc.alloc = svc::AllocPolicy::kTimeShare;
  expect_service_shard_invariant(cfg);
}

TEST(ServiceShard, FaultedServiceStreamIsShardCountInvariant) {
  // The full fault model on top of a space-shared stream: per-channel draw
  // keying must keep the shard-local injectors byte-equivalent even though
  // the control plane (kReliable) is exempt from loss.
  ws::RunConfig cfg = service_base();
  cfg.svc.arrival = svc::ArrivalKind::kPoisson;
  cfg.svc.num_jobs = 4;
  cfg.svc.mean_interarrival = 400'000;
  cfg.svc.alloc = svc::AllocPolicy::kSpaceShare;
  cfg.svc.ranks_per_job = 32;
  cfg.fault.drop_prob = 0.02;
  cfg.fault.dup_prob = 0.02;
  cfg.fault.jitter_frac = 0.3;
  cfg.fault.straggler_ranks = 2;
  cfg.fault.pause_ranks = 2;
  cfg.fault.pause_duration = 50'000;
  cfg.fault.pause_window = 200'000;
  cfg.fault.seed = 5;
  cfg.ws.steal_timeout = 50'000;
  cfg.ws.token_timeout = 2'000'000;
  expect_service_shard_invariant(cfg);
}

TEST(ServiceShard, JobRowsSurviveTheRecordRoundTrip) {
  // A service point's JSONL must parse back into one run row plus one job
  // row per job, with the job identity fields intact.
  ws::RunConfig cfg = service_base();
  cfg.num_ranks = 16;
  cfg.svc.arrival = svc::ArrivalKind::kTrace;
  cfg.svc.trace = {0, 100'000, 200'000};
  cfg.svc.alloc = svc::AllocPolicy::kSpaceShare;
  cfg.svc.ranks_per_job = 8;

  exp::SweepSpec spec(cfg);
  const auto expanded = spec.expand();
  ASSERT_TRUE(expanded);
  exp::RunnerOptions options;
  options.threads = 1;
  options.progress = false;
  options.run = [](const ws::RunConfig& c) { return checked_run(c); };
  const exp::SweepReport report =
      exp::SweepRunner(options).run(expanded.value());
  ASSERT_TRUE(report.all_ok());

  std::stringstream io;
  exp::RecordWriter writer(io, exp::RecordOptions{exp::RecordFormat::kJsonl,
                                                  /*wall_clock=*/false});
  writer.write_header();
  writer.write(expanded.value()[0], report.points[0]);
  const auto file = exp::read_records(io);
  ASSERT_TRUE(file) << file.error();
  ASSERT_EQ(file.value().records.size(), 4u);  // 1 run + 3 jobs
  const exp::SweepRecord& run = file.value().records[0];
  EXPECT_EQ(run.row, "run");
  EXPECT_EQ(run.jobs, 3u);
  EXPECT_GT(run.makespan_p99_ms, 0.0);
  for (std::uint32_t j = 0; j < 3; ++j) {
    const exp::SweepRecord& job = file.value().records[j + 1];
    EXPECT_TRUE(job.is_job_row());
    EXPECT_EQ(job.job_id, j);
    EXPECT_EQ(job.job_width, 8u);
    EXPECT_GT(job.job_nodes, 0u);
    EXPECT_EQ(job.fingerprint, run.fingerprint);
  }
}

}  // namespace
}  // namespace dws::audit
