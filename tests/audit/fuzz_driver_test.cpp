#include "audit/fuzz.hpp"

#include <gtest/gtest.h>

#include <string>

#include "exp/record.hpp"
#include "uts/sequential.hpp"

namespace dws::audit {
namespace {

TEST(RandomConfig, ValidatesAndFitsTheBudget) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const ws::RunConfig cfg = random_config(seed, 200'000);
    EXPECT_TRUE(cfg.validate()) << "seed " << seed;
    EXPECT_GE(cfg.num_ranks, 2u);
    const auto stats = uts::enumerate_sequential(cfg.tree, 200'000);
    EXPECT_FALSE(stats.truncated) << "seed " << seed;
  }
}

TEST(RandomConfig, IsDeterministicPerSeed) {
  EXPECT_EQ(exp::canonical_config(random_config(42, 500'000)),
            exp::canonical_config(random_config(42, 500'000)));
  EXPECT_NE(exp::canonical_config(random_config(1, 500'000)),
            exp::canonical_config(random_config(2, 500'000)));
}

TEST(Reproducer, IsAPasteableUtsCliCommand) {
  const std::string cmd = reproducer_command(random_config(3, 200'000));
  EXPECT_NE(cmd.find("uts_cli"), std::string::npos);
  EXPECT_NE(cmd.find("--engine sim"), std::string::npos);
  EXPECT_NE(cmd.find("--ranks"), std::string::npos);
  EXPECT_NE(cmd.find("--seed"), std::string::npos);
  EXPECT_NE(cmd.find("--audit"), std::string::npos);
}

TEST(MutationParse, RoundTrips) {
  EXPECT_EQ(parse_mutation("drop-receipt").value(), Mutation::kDropReceipt);
  EXPECT_EQ(parse_mutation("double-expand").value(), Mutation::kDoubleExpand);
  EXPECT_EQ(parse_mutation("leak-message").value(), Mutation::kLeakMessage);
  EXPECT_EQ(parse_mutation("none").value(), Mutation::kNone);
  EXPECT_FALSE(parse_mutation("bogus"));
  EXPECT_STREQ(to_string(Mutation::kDoubleExpand), "double-expand");
}

TEST(FuzzDriver, CleanSweepFindsNothing) {
  FuzzOptions opts;
  opts.cases = 3;
  opts.seed = 5;
  opts.node_budget = 100'000;
  opts.threads = 2;
  const FuzzResult r = run_fuzz(opts);
  EXPECT_TRUE(r.ok()) << r.failure->first_violation;
  EXPECT_EQ(r.cases_run, 3u);
}

/// The mutation matrix: every lie the fuzzer can tell must be caught and
/// shrunk to a usable reproducer. This is the checker's own test coverage.
class MutationCatches : public ::testing::TestWithParam<Mutation> {};

TEST_P(MutationCatches, AuditFlagsTheLieAndShrinksIt) {
  FuzzOptions opts;
  opts.cases = 4;
  opts.seed = 2;
  opts.node_budget = 100'000;
  opts.threads = 1;
  opts.mutation = GetParam();
  const FuzzResult r = run_fuzz(opts);
  ASSERT_TRUE(r.failure.has_value())
      << to_string(GetParam()) << " was not caught";
  EXPECT_FALSE(r.failure->first_violation.empty());
  EXPECT_FALSE(r.failure->reproducer.empty());
  EXPECT_NE(r.failure->reproducer.find("uts_cli"), std::string::npos);
  EXPECT_TRUE(r.failure->config.validate());
}

INSTANTIATE_TEST_SUITE_P(AllLies, MutationCatches,
                         ::testing::Values(Mutation::kDropReceipt,
                                           Mutation::kDoubleExpand,
                                           Mutation::kLeakMessage));

}  // namespace
}  // namespace dws::audit
