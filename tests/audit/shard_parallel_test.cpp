/// Parallel-vs-serial differential suite for the sharded simulator core
/// (DESIGN.md §12): the shard count is an execution strategy, so every
/// supported configuration must produce BYTE-IDENTICAL schema-v5 records at
/// sim_shards 1, 2, 4 and 8 — same events, same order, same metrics — and
/// the structural ordering key must never have fallen through to a
/// cross-shard seq comparison (merge_ambiguities == 0). A fig06-quick-style
/// point additionally runs
/// under the full audit observer at 4 shards, pinning that the buffered
/// replay fan-in preserves the audited hook stream.
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "audit/audit.hpp"
#include "exp/record.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "topo/allocation.hpp"
#include "uts/params.hpp"
#include "ws/scheduler.hpp"

namespace dws::audit {
namespace {

/// One sweep over sim_shards for `base`, rendered as wall-clock-free
/// schema-v5 JSONL — four records that must be pairwise identical except
/// for the axis coordinate label.
std::vector<std::string> records_per_shard_count(const ws::RunConfig& base,
                                                 bool audited) {
  exp::SweepSpec spec(base);
  spec.axis(exp::sim_shards_axis({1, 2, 4, 8}));
  const auto expanded = spec.expand();
  EXPECT_TRUE(expanded);
  exp::RunnerOptions options;
  options.threads = 1;
  options.progress = false;
  if (audited) {
    options.run = [](const ws::RunConfig& cfg) { return checked_run(cfg); };
  } else {
    options.run = [](const ws::RunConfig& cfg) {
      return ws::run_simulation(cfg);
    };
  }
  const exp::SweepReport report =
      exp::SweepRunner(options).run(expanded.value());
  EXPECT_TRUE(report.all_ok());

  std::vector<std::string> lines;
  for (std::size_t i = 0; i < expanded.value().size(); ++i) {
    std::ostringstream out;
    exp::RecordWriter writer(out, exp::RecordOptions{exp::RecordFormat::kJsonl,
                                                     /*wall_clock=*/false});
    writer.write(expanded.value()[i], report.points[i]);
    std::string line = out.str();
    // Strip the sweep bookkeeping ("index":N,"coords":{...},) — the only
    // part allowed to differ between the points of a sim_shards sweep.
    const auto start = line.find("\"index\":");
    const auto end = line.find('}', line.find("\"coords\":{"));
    EXPECT_NE(start, std::string::npos);
    EXPECT_NE(end, std::string::npos);
    line.erase(start, end + 2 - start);
    lines.push_back(std::move(line));
  }
  return lines;
}

void expect_shard_invariant(const ws::RunConfig& base, bool audited) {
  const std::vector<std::string> lines =
      records_per_shard_count(base, audited);
  ASSERT_EQ(lines.size(), 4u);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(lines[0], lines[i])
        << "records diverge between sim_shards=1 and the " << i
        << "th shard count";
  }
  // The local-seq tiebreak must be provably irrelevant: no executed pair
  // ever tied on the full structural key across shards.
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    ws::RunConfig cfg = base;
    cfg.sim_shards = shards;
    const ws::RunResult result = ws::run_simulation(cfg);
    EXPECT_EQ(result.merge_ambiguities, 0u) << "sim_shards=" << shards;
    EXPECT_GT(result.shards_used, 1u);
  }
}

ws::RunConfig base_config() {
  ws::RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_SMALL");
  cfg.num_ranks = 64;
  cfg.ws.chunk_size = 4;
  // Sharded mode forbids the shared-global-state congestion model; these
  // configs run it off, like the paper-scale benches.
  cfg.congestion = sim::CongestionParams{};
  cfg.congestion_scale = 0.0;
  return cfg;
}

TEST(ShardParallel, ReferenceRoundRobinIsShardCountInvariant) {
  expect_shard_invariant(base_config(), /*audited=*/false);
}

TEST(ShardParallel, SkewedSelectionGroupedPlacementIsShardCountInvariant) {
  ws::RunConfig cfg = base_config();
  cfg.ws.victim_policy = ws::VictimPolicy::kTofuSkewed;
  cfg.ws.steal_amount = ws::StealAmount::kHalf;
  cfg.placement = topo::Placement::kGrouped;
  cfg.procs_per_node = 8;
  cfg.ws.seed = 99;
  expect_shard_invariant(cfg, /*audited=*/false);
}

TEST(ShardParallel, RandomVictimsOddRankCountIsShardCountInvariant) {
  ws::RunConfig cfg = base_config();
  cfg.tree = uts::tree_by_name("TEST_BIN_TINY");
  cfg.num_ranks = 96;  // not a power of two: uneven shard blocks
  cfg.ws.victim_policy = ws::VictimPolicy::kRandom;
  cfg.ws.chunk_size = 2;
  cfg.ws.seed = 7;
  expect_shard_invariant(cfg, /*audited=*/false);
}

TEST(ShardParallel, AuditedFigureStylePointIsShardCountInvariant) {
  // The fig06-quick shape (SIM200K, 128 ranks, Reference 1/N) minus the
  // congestion model, run under the full audit observer: the replay fan-in
  // must deliver the exact hook stream the audit invariants need, at every
  // shard count.
  ws::RunConfig cfg;
  cfg.tree = uts::tree_by_name("SIM200K");
  cfg.num_ranks = 128;
  cfg.ws.chunk_size = 4;
  cfg.ws.victim_policy = ws::VictimPolicy::kRoundRobin;
  cfg.ws.steal_amount = ws::StealAmount::kOneChunk;
  cfg.placement = topo::Placement::kOnePerNode;
  cfg.procs_per_node = 1;
  expect_shard_invariant(cfg, /*audited=*/true);

  cfg.sim_shards = 4;
  const AuditedResult audited = audited_run(cfg, AuditConfig::all());
  EXPECT_TRUE(audited.report.ok()) << audited.report.summary();
  EXPECT_EQ(audited.result.shards_used, 4u);
  EXPECT_EQ(audited.result.merge_ambiguities, 0u);
}

TEST(ShardParallel, ValidateRejectsTheSharedGlobalStateFeatures) {
  // Congestion clamps and fault injection keep state no shard owns; the
  // native runtime does not shard. validate() names each incompatibility.
  ws::RunConfig cfg = base_config();
  cfg.sim_shards = 4;
  EXPECT_TRUE(static_cast<bool>(cfg.validate()));
  {
    ws::RunConfig bad = cfg;
    bad.enable_congestion(1.0);
    EXPECT_FALSE(static_cast<bool>(bad.validate()));
  }
  {
    ws::RunConfig bad = cfg;
    bad.fault.drop_prob = 0.01;
    bad.ws.steal_timeout = 1'000'000;
    bad.ws.token_timeout = 1'000'000;
    EXPECT_FALSE(static_cast<bool>(bad.validate()));
  }
  {
    ws::RunConfig bad = cfg;
    bad.backend = ws::Backend::kRt;
    EXPECT_FALSE(static_cast<bool>(bad.validate()));
  }
  {
    ws::RunConfig bad = cfg;
    bad.sim_shards = 0;
    EXPECT_FALSE(static_cast<bool>(bad.validate()));
  }
}

TEST(ShardParallel, ShardCountIsAbsentFromTheCanonicalConfig) {
  // sim_shards is an execution strategy: two configs differing only in it
  // must fingerprint identically, or sweep dedup and record joins break.
  ws::RunConfig one = base_config();
  ws::RunConfig eight = base_config();
  eight.sim_shards = 8;
  EXPECT_EQ(exp::canonical_config(one), exp::canonical_config(eight));
  EXPECT_EQ(exp::config_fingerprint(one), exp::config_fingerprint(eight));
}

}  // namespace
}  // namespace dws::audit
