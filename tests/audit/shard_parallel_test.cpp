/// Parallel-vs-serial differential suite for the sharded simulator core
/// (DESIGN.md §12): the shard count is an execution strategy, so every
/// supported configuration must produce BYTE-IDENTICAL schema-v5 records at
/// sim_shards 1, 2, 4 and 8 — same events, same order, same metrics — and
/// the structural ordering key must never have fallen through to a
/// cross-shard seq comparison (merge_ambiguities == 0). Coverage includes
/// fault-injected and congestion-enabled configs (per-channel draw keying
/// and the windowed ledger are exactly what makes them shard-invariant), a
/// fig06-quick-style point under the full audit observer at 4 shards
/// (pinning that the buffered replay fan-in preserves the audited hook
/// stream), and the one-node degenerate-shard fallthrough.
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "audit/audit.hpp"
#include "exp/record.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "proto/observer.hpp"
#include "topo/allocation.hpp"
#include "uts/params.hpp"
#include "ws/scheduler.hpp"

namespace dws::audit {
namespace {

/// One sweep over sim_shards for `base`, rendered as wall-clock-free
/// schema-v5 JSONL — one record per shard count in `counts` that must be
/// pairwise identical except for the axis coordinate label.
std::vector<std::string> records_per_shard_count(
    const ws::RunConfig& base, bool audited,
    const std::vector<std::uint32_t>& counts = {1, 2, 4, 8}) {
  exp::SweepSpec spec(base);
  spec.axis(exp::sim_shards_axis(counts));
  const auto expanded = spec.expand();
  EXPECT_TRUE(expanded);
  exp::RunnerOptions options;
  options.threads = 1;
  options.progress = false;
  if (audited) {
    options.run = [](const ws::RunConfig& cfg) { return checked_run(cfg); };
  } else {
    options.run = [](const ws::RunConfig& cfg) {
      return ws::run_simulation(cfg);
    };
  }
  const exp::SweepReport report =
      exp::SweepRunner(options).run(expanded.value());
  EXPECT_TRUE(report.all_ok());

  std::vector<std::string> lines;
  for (std::size_t i = 0; i < expanded.value().size(); ++i) {
    std::ostringstream out;
    exp::RecordWriter writer(out, exp::RecordOptions{exp::RecordFormat::kJsonl,
                                                     /*wall_clock=*/false});
    writer.write(expanded.value()[i], report.points[i]);
    std::string line = out.str();
    // Strip the sweep bookkeeping ("index":N,"coords":{...},) — the only
    // part allowed to differ between the points of a sim_shards sweep.
    const auto start = line.find("\"index\":");
    const auto end = line.find('}', line.find("\"coords\":{"));
    EXPECT_NE(start, std::string::npos);
    EXPECT_NE(end, std::string::npos);
    line.erase(start, end + 2 - start);
    lines.push_back(std::move(line));
  }
  return lines;
}

void expect_shard_invariant(const ws::RunConfig& base, bool audited) {
  const std::vector<std::string> lines =
      records_per_shard_count(base, audited);
  ASSERT_EQ(lines.size(), 4u);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(lines[0], lines[i])
        << "records diverge between sim_shards=1 and the " << i
        << "th shard count";
  }
  // The local-seq tiebreak must be provably irrelevant: no executed pair
  // ever tied on the full structural key across shards.
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    ws::RunConfig cfg = base;
    cfg.sim_shards = shards;
    const ws::RunResult result = ws::run_simulation(cfg);
    EXPECT_EQ(result.merge_ambiguities, 0u) << "sim_shards=" << shards;
    EXPECT_GT(result.shards_used, 1u);
  }
}

ws::RunConfig base_config() {
  ws::RunConfig cfg;
  cfg.tree = uts::tree_by_name("TEST_BIN_SMALL");
  cfg.num_ranks = 64;
  cfg.ws.chunk_size = 4;
  return cfg;
}

/// The full fault model at stress settings, with the recovery knobs a lossy
/// network requires.
ws::RunConfig faulted_config() {
  ws::RunConfig cfg = base_config();
  cfg.fault.drop_prob = 0.02;
  cfg.fault.dup_prob = 0.02;
  cfg.fault.jitter_frac = 0.3;
  cfg.fault.degraded_frac = 0.25;
  cfg.fault.straggler_ranks = 2;
  cfg.fault.pause_ranks = 2;
  cfg.fault.pause_duration = 50'000;
  cfg.fault.pause_window = 200'000;
  cfg.fault.seed = 5;
  cfg.ws.steal_timeout = 50'000;
  cfg.ws.token_timeout = 2'000'000;
  return cfg;
}

TEST(ShardParallel, ReferenceRoundRobinIsShardCountInvariant) {
  expect_shard_invariant(base_config(), /*audited=*/false);
}

TEST(ShardParallel, SkewedSelectionGroupedPlacementIsShardCountInvariant) {
  ws::RunConfig cfg = base_config();
  cfg.ws.victim_policy = ws::VictimPolicy::kTofuSkewed;
  cfg.ws.steal_amount = ws::StealAmount::kHalf;
  cfg.placement = topo::Placement::kGrouped;
  cfg.procs_per_node = 8;
  cfg.ws.seed = 99;
  expect_shard_invariant(cfg, /*audited=*/false);
}

TEST(ShardParallel, RandomVictimsOddRankCountIsShardCountInvariant) {
  ws::RunConfig cfg = base_config();
  cfg.tree = uts::tree_by_name("TEST_BIN_TINY");
  cfg.num_ranks = 96;  // not a power of two: uneven shard blocks
  cfg.ws.victim_policy = ws::VictimPolicy::kRandom;
  cfg.ws.chunk_size = 2;
  cfg.ws.seed = 7;
  expect_shard_invariant(cfg, /*audited=*/false);
}

TEST(ShardParallel, AuditedFigureStylePointIsShardCountInvariant) {
  // The fig06-quick shape (SIM200K, 128 ranks, Reference 1/N) minus the
  // congestion model, run under the full audit observer: the replay fan-in
  // must deliver the exact hook stream the audit invariants need, at every
  // shard count.
  ws::RunConfig cfg;
  cfg.tree = uts::tree_by_name("SIM200K");
  cfg.num_ranks = 128;
  cfg.ws.chunk_size = 4;
  cfg.ws.victim_policy = ws::VictimPolicy::kRoundRobin;
  cfg.ws.steal_amount = ws::StealAmount::kOneChunk;
  cfg.placement = topo::Placement::kOnePerNode;
  cfg.procs_per_node = 1;
  expect_shard_invariant(cfg, /*audited=*/true);

  cfg.sim_shards = 4;
  const AuditedResult audited = audited_run(cfg, AuditConfig::all());
  EXPECT_TRUE(audited.report.ok()) << audited.report.summary();
  EXPECT_EQ(audited.result.shards_used, 4u);
  EXPECT_EQ(audited.result.merge_ambiguities, 0u);
}

TEST(ShardParallel, FaultInjectionIsShardCountInvariant) {
  // The tentpole property for faults: per-channel draw keying makes the
  // shard-local injectors byte-equivalent to the serial one, so a fully
  // perturbed run (loss, duplication, jitter, degraded links, stragglers,
  // pauses) produces identical audited records at every shard count.
  expect_shard_invariant(faulted_config(), /*audited=*/true);
}

TEST(ShardParallel, WindowedCongestionIsShardCountInvariant) {
  // The tentpole property for congestion: the windowed ledger reads only
  // barrier-sealed boundaries, so congested latencies — and the records cut
  // from them — are identical at every shard count.
  ws::RunConfig cfg = base_config();
  cfg.enable_congestion(1.0);
  expect_shard_invariant(cfg, /*audited=*/true);
}

TEST(ShardParallel, FaultsAndCongestionComposeShardCountInvariant) {
  ws::RunConfig cfg = faulted_config();
  cfg.enable_congestion(1.0);
  expect_shard_invariant(cfg, /*audited=*/true);
}

TEST(ShardParallel, AdaptiveUnderFaultsIsShardCountInvariant) {
  // The tentpole property for the feedback seam (DESIGN.md §14): adaptive
  // selector state is a pure function of the thief's own observation stream,
  // so a fully perturbed adaptive run — feedback-skewed victim draws, amount
  // switching and all — produces identical audited records at every shard
  // count.
  ws::RunConfig cfg = faulted_config();
  cfg.ws.victim_policy = ws::VictimPolicy::kAdaptive;
  cfg.ws.steal_amount = ws::StealAmount::kHalf;
  cfg.ws.adaptive_steal_amount = true;
  cfg.placement = topo::Placement::kGrouped;
  cfg.procs_per_node = 8;
  expect_shard_invariant(cfg, /*audited=*/true);
}

TEST(ShardParallel, ValidateScreensShardIncompatibleConfigs) {
  // Faults and congestion compose with sharding since PR 7 de-globalized
  // their state; the rejections that remain are the native backend and the
  // degenerate shard counts.
  ws::RunConfig cfg = base_config();
  cfg.sim_shards = 4;
  EXPECT_TRUE(static_cast<bool>(cfg.validate()));
  {
    ws::RunConfig ok = cfg;
    ok.enable_congestion(1.0);
    EXPECT_TRUE(static_cast<bool>(ok.validate()));
  }
  {
    ws::RunConfig ok = faulted_config();
    ok.sim_shards = 4;
    EXPECT_TRUE(static_cast<bool>(ok.validate()));
  }
  {
    ws::RunConfig bad = cfg;
    bad.backend = ws::Backend::kRt;
    EXPECT_FALSE(static_cast<bool>(bad.validate()));
  }
  {
    ws::RunConfig bad = cfg;
    bad.sim_shards = 0;
    EXPECT_FALSE(static_cast<bool>(bad.validate()));
  }
}

TEST(ShardParallel, ValidateRejectsDeadCongestionScale) {
  // A bare congestion_scale with the model off used to be silently ignored
  // (the re-anchor requires both); it is now a named config error.
  ws::RunConfig cfg = base_config();
  cfg.congestion_scale = 1.0;
  EXPECT_FALSE(static_cast<bool>(cfg.validate()));
  cfg.congestion.enabled = true;
  EXPECT_TRUE(static_cast<bool>(cfg.validate()));
}

/// Serializes every RunObserver hook into one text log, so two runs'
/// complete hook streams can be compared for equality.
class HookLogObserver final : public proto::RunObserver {
 public:
  std::string log;

  void on_root(topo::Rank rank, const uts::TreeNode&) override {
    add("root", rank);
  }
  void on_node_expanded(topo::Rank rank, const uts::TreeNode&,
                        std::uint32_t children) override {
    add("expand", rank, children);
  }
  void on_steal_request_sent(topo::Rank thief, topo::Rank victim,
                             std::uint32_t bytes) override {
    add("req", thief, victim, bytes);
  }
  void on_steal_response_sent(topo::Rank victim, topo::Rank thief,
                              std::uint64_t chunks, std::uint64_t nodes,
                              std::uint32_t bytes) override {
    add("resp_sent", victim, thief, chunks, nodes, bytes);
  }
  void on_steal_response_received(topo::Rank thief, topo::Rank victim,
                                  std::uint64_t chunks,
                                  std::uint64_t nodes) override {
    add("resp_recv", thief, victim, chunks, nodes);
  }
  void on_lifeline_register_sent(topo::Rank rank, topo::Rank target,
                                 std::uint32_t bytes) override {
    add("ll_reg", rank, target, bytes);
  }
  void on_lifeline_push_sent(topo::Rank from, topo::Rank to,
                             std::uint64_t chunks, std::uint64_t nodes,
                             std::uint32_t bytes) override {
    add("ll_push", from, to, chunks, nodes, bytes);
  }
  void on_lifeline_push_received(topo::Rank rank, std::uint64_t chunks,
                                 std::uint64_t nodes) override {
    add("ll_recv", rank, chunks, nodes);
  }
  void on_steal_timeout(topo::Rank thief, topo::Rank victim,
                        std::uint32_t attempt) override {
    add("timeout", thief, victim, attempt);
  }
  void on_duplicate_response(topo::Rank thief, std::uint64_t chunks,
                             std::uint64_t nodes) override {
    add("dup_resp", thief, chunks, nodes);
  }
  void on_steal_feedback(topo::Rank thief, topo::Rank victim, bool success,
                         support::SimTime rtt, double success_ewma,
                         double rtt_ewma) override {
    // Hexfloat keeps the EWMA comparison bit-exact — any cross-shard drift in
    // the feedback replay shows up here, not just in rounded metrics.
    std::ostringstream s;
    s << "feedback " << thief << ' ' << victim << ' ' << (success ? 1 : 0)
      << ' ' << rtt << ' ' << std::hexfloat << success_ewma << ' ' << rtt_ewma
      << '\n';
    log += s.str();
  }
  void on_token_sent(topo::Rank from, topo::Rank to,
                     const proto::Token& t) override {
    add("tok_sent", from, to, t.black ? 1 : 0, t.sent, t.recv, t.generation);
  }
  void on_token_accepted(topo::Rank rank, const proto::Token& t) override {
    add("tok_acc", rank, t.sent, t.recv, t.generation);
  }
  void on_token_regenerated(topo::Rank rank, std::uint32_t gen) override {
    add("tok_regen", rank, gen);
  }
  void on_phase(topo::Rank rank, support::SimTime t,
                metrics::Phase p) override {
    add("phase", rank, t, static_cast<int>(p));
  }
  void on_termination(support::SimTime t) override { add("term", t); }
  void on_finish(topo::Rank rank, support::SimTime t) override {
    add("finish", rank, t);
  }

 private:
  template <typename... Args>
  void add(const char* tag, Args... args) {
    log += tag;
    ((log += ' ', log += std::to_string(args)), ...);
    log += '\n';
  }
};

TEST(ShardParallel, OneNodeJobDegeneratesToTheSerialPathExactly) {
  // A job whose ranks all share one node partitions into a single shard;
  // run_simulation must fall through to the single-engine path and match an
  // explicit sim_shards=1 run byte-for-byte — records and the complete
  // observer hook stream alike.
  ws::RunConfig cfg = base_config();
  cfg.num_ranks = 8;
  cfg.placement = topo::Placement::kGrouped;
  cfg.procs_per_node = 8;

  const std::vector<std::string> lines =
      records_per_shard_count(cfg, /*audited=*/false, {1, 8});
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], lines[1]);

  cfg.sim_shards = 8;
  HookLogObserver sharded;
  const ws::RunResult result = ws::run_simulation(cfg, &sharded);
  EXPECT_EQ(result.shards_used, 1u);  // degenerated, not windowed

  cfg.sim_shards = 1;
  HookLogObserver serial;
  ws::run_simulation(cfg, &serial);
  EXPECT_FALSE(serial.log.empty());
  EXPECT_EQ(serial.log, sharded.log);
}

/// Collects each thief's on_steal_feedback stream separately. Cross-rank
/// interleaving of same-time hooks is an engine scheduling detail the merged
/// replay does not promise to reproduce; what IS promised is that every
/// rank's own feedback history — and therefore its EWMA evolution — is a
/// pure function of its message history, which sharding preserves exactly.
class FeedbackStreamObserver final : public proto::RunObserver {
 public:
  std::map<topo::Rank, std::string> by_thief;

  void on_steal_feedback(topo::Rank thief, topo::Rank victim, bool success,
                         support::SimTime rtt, double success_ewma,
                         double rtt_ewma) override {
    std::ostringstream s;
    s << victim << ' ' << (success ? 1 : 0) << ' ' << rtt << ' '
      << std::hexfloat << success_ewma << ' ' << rtt_ewma << '\n';
    by_thief[thief] += s.str();
  }
};

TEST(ShardParallel, AdaptiveFeedbackStreamsPerThiefSurviveTheShardedReplay) {
  // The buffered replay fan-in must reproduce each thief's serial
  // on_steal_feedback stream — victims, outcomes and bit-exact EWMA
  // snapshots — so the sharded audit sees the same per-rank selector
  // evolution the serial engine produced.
  ws::RunConfig cfg = faulted_config();
  cfg.ws.victim_policy = ws::VictimPolicy::kAdaptive;
  cfg.ws.steal_amount = ws::StealAmount::kHalf;
  cfg.ws.adaptive_steal_amount = true;

  FeedbackStreamObserver serial;
  cfg.sim_shards = 1;
  ws::run_simulation(cfg, &serial);
  EXPECT_GT(serial.by_thief.size(), 32u);  // most of 64 ranks stole at least once

  FeedbackStreamObserver sharded;
  cfg.sim_shards = 4;
  const ws::RunResult result = ws::run_simulation(cfg, &sharded);
  EXPECT_GT(result.shards_used, 1u);
  ASSERT_EQ(serial.by_thief.size(), sharded.by_thief.size());
  for (const auto& [thief, stream] : serial.by_thief) {
    ASSERT_TRUE(sharded.by_thief.count(thief)) << "thief " << thief;
    EXPECT_EQ(stream, sharded.by_thief.at(thief)) << "thief " << thief;
  }
}

TEST(ShardParallel, ShardCountIsAbsentFromTheCanonicalConfig) {
  // sim_shards is an execution strategy: two configs differing only in it
  // must fingerprint identically, or sweep dedup and record joins break.
  ws::RunConfig one = base_config();
  ws::RunConfig eight = base_config();
  eight.sim_shards = 8;
  EXPECT_EQ(exp::canonical_config(one), exp::canonical_config(eight));
  EXPECT_EQ(exp::config_fingerprint(one), exp::config_fingerprint(eight));
}

}  // namespace
}  // namespace dws::audit
