#include "metrics/trace.hpp"

#include <gtest/gtest.h>

namespace dws::metrics {
namespace {

TEST(RankTrace, StartsWithInitialPhase) {
  RankTrace t(Phase::kActive);
  ASSERT_EQ(t.events().size(), 1u);
  EXPECT_EQ(t.events()[0].phase, Phase::kActive);
  EXPECT_EQ(t.events()[0].time, 0);
  EXPECT_EQ(t.phase_at_end(), Phase::kActive);
}

TEST(RankTrace, RecordsAlternatingTransitions) {
  RankTrace t(Phase::kIdle);
  t.record(10, Phase::kActive);
  t.record(30, Phase::kIdle);
  t.record(50, Phase::kActive);
  ASSERT_EQ(t.events().size(), 4u);
  EXPECT_EQ(t.phase_at_end(), Phase::kActive);
}

TEST(RankTrace, CollapsesDuplicatePhases) {
  RankTrace t(Phase::kIdle);
  t.record(10, Phase::kIdle);    // no-op
  t.record(20, Phase::kActive);
  t.record(25, Phase::kActive);  // no-op
  EXPECT_EQ(t.events().size(), 2u);
}

TEST(RankTrace, ActiveTimeSumsIntervals) {
  RankTrace t(Phase::kIdle);
  t.record(10, Phase::kActive);
  t.record(30, Phase::kIdle);   // 20 active
  t.record(50, Phase::kActive); // active until end
  EXPECT_EQ(t.active_time(80), 20 + 30);
}

TEST(RankTrace, ActiveTimeWhenAlwaysActive) {
  RankTrace t(Phase::kActive);
  EXPECT_EQ(t.active_time(100), 100);
}

TEST(RankTrace, ActiveTimeWhenNeverActive) {
  RankTrace t(Phase::kIdle);
  EXPECT_EQ(t.active_time(100), 0);
}

TEST(RankTrace, ShiftMovesAllTimestamps) {
  RankTrace t(Phase::kIdle, 5);
  t.record(10, Phase::kActive);
  t.shift(100);
  EXPECT_EQ(t.events()[0].time, 105);
  EXPECT_EQ(t.events()[1].time, 110);
}

TEST(AlignTraces, AppliesPerRankOffsets) {
  JobTrace job;
  job.total_time = 100;
  job.ranks.emplace_back(Phase::kActive);
  job.ranks.emplace_back(Phase::kIdle);
  job.ranks[1].record(10, Phase::kActive);
  align_traces(job, {5, 7});
  EXPECT_EQ(job.ranks[0].events()[0].time, 5);
  EXPECT_EQ(job.ranks[1].events()[1].time, 17);
}

TEST(AlignTraces, SkewCorrectionRestoresGlobalOrder) {
  // Two ranks whose local clocks are skewed by -3 and +3: after alignment
  // with the inverse offsets, the "same instant" events coincide.
  JobTrace job;
  job.total_time = 100;
  job.ranks.emplace_back(Phase::kIdle, 0);
  job.ranks.emplace_back(Phase::kIdle, 0);
  job.ranks[0].record(13, Phase::kActive);  // local clock ahead by 3 (true: 10)
  job.ranks[1].record(7, Phase::kActive);   // local clock behind by 3 (true: 10)
  align_traces(job, {-3, +3});
  EXPECT_EQ(job.ranks[0].events()[1].time, 10);
  EXPECT_EQ(job.ranks[1].events()[1].time, 10);
}

}  // namespace
}  // namespace dws::metrics
