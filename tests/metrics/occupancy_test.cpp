#include "metrics/occupancy.hpp"

#include <gtest/gtest.h>

namespace dws::metrics {
namespace {

/// Build a JobTrace from per-rank (time, phase) scripts.
JobTrace make_trace(
    support::SimTime total,
    const std::vector<std::vector<std::pair<support::SimTime, Phase>>>& scripts) {
  JobTrace job;
  job.total_time = total;
  for (const auto& script : scripts) {
    job.ranks.emplace_back(Phase::kIdle);
    for (const auto& [t, p] : script) job.ranks.back().record(t, p);
  }
  return job;
}

TEST(Occupancy, SingleAlwaysActiveRank) {
  JobTrace job;
  job.total_time = 100;
  job.ranks.emplace_back(Phase::kActive);
  OccupancyCurve c(job);
  EXPECT_EQ(c.max_workers(), 1u);
  EXPECT_DOUBLE_EQ(c.max_occupancy(), 1.0);
  EXPECT_EQ(c.workers_at(0), 1u);
  EXPECT_EQ(c.workers_at(99), 1u);
  EXPECT_DOUBLE_EQ(c.mean_occupancy(), 1.0);
}

TEST(Occupancy, WorkersAtTracksTransitions) {
  const auto job = make_trace(
      100, {{{10, Phase::kActive}, {60, Phase::kIdle}},
            {{20, Phase::kActive}, {80, Phase::kIdle}}});
  OccupancyCurve c(job);
  EXPECT_EQ(c.workers_at(5), 0u);
  EXPECT_EQ(c.workers_at(10), 1u);
  EXPECT_EQ(c.workers_at(20), 2u);
  EXPECT_EQ(c.workers_at(59), 2u);
  EXPECT_EQ(c.workers_at(60), 1u);
  EXPECT_EQ(c.workers_at(85), 0u);
  EXPECT_EQ(c.max_workers(), 2u);
}

TEST(Occupancy, StartingLatencyPaperExample) {
  // The paper's worked example: "an execution where the first time 10% of
  // the processes have work happens 5% of the execution time after beginning
  // has SL(10%) = 5%". Ten ranks, first rank activates at t = 5 of T = 100.
  std::vector<std::vector<std::pair<support::SimTime, Phase>>> scripts(10);
  scripts[0] = {{5, Phase::kActive}};
  const auto job = make_trace(100, scripts);
  OccupancyCurve c(job);
  const auto sl = c.starting_latency(0.10);
  ASSERT_TRUE(sl.has_value());
  EXPECT_DOUBLE_EQ(*sl, 0.05);
}

TEST(Occupancy, StartingLatencyMonotoneInX) {
  std::vector<std::vector<std::pair<support::SimTime, Phase>>> scripts;
  for (int r = 0; r < 8; ++r) {
    scripts.push_back({{10 * (r + 1), Phase::kActive}});
  }
  const auto job = make_trace(100, scripts);
  OccupancyCurve c(job);
  double prev = -1.0;
  for (double x : {0.125, 0.25, 0.5, 0.75, 1.0}) {
    const auto sl = c.starting_latency(x);
    ASSERT_TRUE(sl.has_value()) << x;
    EXPECT_GE(*sl, prev);
    prev = *sl;
  }
  EXPECT_DOUBLE_EQ(*c.starting_latency(1.0), 0.8);
}

TEST(Occupancy, StartingLatencyNulloptWhenNeverReached) {
  std::vector<std::vector<std::pair<support::SimTime, Phase>>> scripts(4);
  scripts[0] = {{0, Phase::kActive}};  // only 25% occupancy ever
  const auto job = make_trace(100, scripts);
  OccupancyCurve c(job);
  EXPECT_TRUE(c.starting_latency(0.25).has_value());
  EXPECT_FALSE(c.starting_latency(0.5).has_value());
  EXPECT_DOUBLE_EQ(c.max_occupancy(), 0.25);
}

TEST(Occupancy, EndingLatencyMeasuresFromEnd) {
  // One of two ranks active in [0, 80) of T = 100: EL(50%) = 20%.
  std::vector<std::vector<std::pair<support::SimTime, Phase>>> scripts(2);
  scripts[0] = {{0, Phase::kActive}, {80, Phase::kIdle}};
  const auto job = make_trace(100, scripts);
  OccupancyCurve c(job);
  const auto el = c.ending_latency(0.5);
  ASSERT_TRUE(el.has_value());
  EXPECT_DOUBLE_EQ(*el, 0.2);
}

TEST(Occupancy, EndingLatencyZeroWhenHeldToEnd) {
  std::vector<std::vector<std::pair<support::SimTime, Phase>>> scripts(2);
  scripts[0] = {{0, Phase::kActive}};
  scripts[1] = {{10, Phase::kActive}};
  const auto job = make_trace(100, scripts);
  OccupancyCurve c(job);
  EXPECT_DOUBLE_EQ(*c.ending_latency(1.0), 0.0);
}

TEST(Occupancy, LatenciesAtZeroAreZero) {
  std::vector<std::vector<std::pair<support::SimTime, Phase>>> scripts(3);
  const auto job = make_trace(100, scripts);
  OccupancyCurve c(job);
  EXPECT_DOUBLE_EQ(*c.starting_latency(0.0), 0.0);
  EXPECT_DOUBLE_EQ(*c.ending_latency(0.0), 0.0);
}

TEST(Occupancy, MeanOccupancyWeightsByTime) {
  // One rank of one: active [0,50) -> mean 0.5 over T=100.
  std::vector<std::vector<std::pair<support::SimTime, Phase>>> scripts(1);
  scripts[0] = {{0, Phase::kActive}, {50, Phase::kIdle}};
  const auto job = make_trace(100, scripts);
  OccupancyCurve c(job);
  EXPECT_DOUBLE_EQ(c.mean_occupancy(), 0.5);
}

TEST(Occupancy, ReactivationCountsAgain) {
  std::vector<std::vector<std::pair<support::SimTime, Phase>>> scripts(1);
  scripts[0] = {{10, Phase::kActive},
                {20, Phase::kIdle},
                {30, Phase::kActive},
                {40, Phase::kIdle}};
  const auto job = make_trace(100, scripts);
  OccupancyCurve c(job);
  EXPECT_EQ(c.workers_at(15), 1u);
  EXPECT_EQ(c.workers_at(25), 0u);
  EXPECT_EQ(c.workers_at(35), 1u);
  // Last time occupancy 100% held ended at t = 40 -> EL = 60%.
  EXPECT_DOUBLE_EQ(*c.ending_latency(1.0), 0.6);
  // SL(100%) hit at t = 10.
  EXPECT_DOUBLE_EQ(*c.starting_latency(1.0), 0.1);
}

TEST(Occupancy, SimultaneousTransitionsMergeIntoOneStep) {
  std::vector<std::vector<std::pair<support::SimTime, Phase>>> scripts(4);
  for (auto& s : scripts) s = {{10, Phase::kActive}};
  const auto job = make_trace(100, scripts);
  OccupancyCurve c(job);
  EXPECT_EQ(c.workers_at(9), 0u);
  EXPECT_EQ(c.workers_at(10), 4u);
  EXPECT_EQ(c.steps().size(), 1u);
}

}  // namespace
}  // namespace dws::metrics
