#include "metrics/report.hpp"

#include <gtest/gtest.h>

namespace dws::metrics {
namespace {

ReportInput sample_input() {
  ReportInput in;
  in.title = "unit test run";
  in.num_ranks = 2;
  in.runtime = 10 * support::kMillisecond;
  in.sequential_time = 15 * support::kMillisecond;
  in.per_rank.resize(2);
  in.per_rank[0].nodes_processed = 900;
  in.per_rank[1].nodes_processed = 100;
  in.per_rank[0].steal_attempts = 3;
  in.per_rank[1].steal_attempts = 7;
  in.per_rank[1].successful_steals = 2;
  in.per_rank[1].failed_steals = 5;
  in.per_rank[1].sessions = 2;
  in.per_rank[1].total_session_time = 4 * support::kMillisecond;
  return in;
}

TEST(Report, ContainsHeadlineNumbers) {
  const auto text = render_report(sample_input());
  EXPECT_NE(text.find("=== unit test run ==="), std::string::npos);
  EXPECT_NE(text.find("ranks          : 2"), std::string::npos);
  EXPECT_NE(text.find("speedup        : 1.50"), std::string::npos);
  EXPECT_NE(text.find("work items     : 1000"), std::string::npos);
}

TEST(Report, StealSection) {
  const auto text = render_report(sample_input());
  EXPECT_NE(text.find("attempts       : 10 (2 ok, 5 failed)"), std::string::npos);
  EXPECT_NE(text.find("sessions       : 2, avg 2.000 ms"), std::string::npos);
}

TEST(Report, ImbalanceSection) {
  const auto text = render_report(sample_input());
  // 900 vs 100: max/mean = 1.8, nobody starved.
  EXPECT_NE(text.find("max/mean       : 1.80"), std::string::npos);
  EXPECT_NE(text.find("starved: 0.0%"), std::string::npos);
}

TEST(Report, OccupancyBlockOnlyWithTrace) {
  auto in = sample_input();
  const auto without = render_report(in);
  EXPECT_EQ(without.find("occupancy"), std::string::npos);

  JobTrace trace;
  trace.total_time = in.runtime;
  trace.ranks.emplace_back(Phase::kActive, 0);
  trace.ranks.emplace_back(Phase::kIdle, 0);
  trace.ranks[1].record(2 * support::kMillisecond, Phase::kActive);
  in.trace = &trace;
  const auto with = render_report(in);
  EXPECT_NE(with.find("--- occupancy"), std::string::npos);
  EXPECT_NE(with.find("peak           : 100.0%"), std::string::npos);
}

}  // namespace
}  // namespace dws::metrics
