#include "metrics/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "metrics/occupancy.hpp"

namespace dws::metrics {
namespace {

JobTrace sample_trace() {
  JobTrace trace;
  trace.total_time = 1000;
  trace.ranks.emplace_back(Phase::kActive, 0);
  trace.ranks[0].record(400, Phase::kIdle);
  trace.ranks[0].record(600, Phase::kActive);
  trace.ranks[0].record(900, Phase::kIdle);
  trace.ranks.emplace_back(Phase::kIdle, 0);
  trace.ranks[1].record(350, Phase::kActive);
  trace.ranks[1].record(800, Phase::kIdle);
  return trace;
}

TEST(Export, CsvContainsHeaderAndRows) {
  const auto csv = trace_to_csv(sample_trace());
  EXPECT_NE(csv.find("# total_time_ns,1000"), std::string::npos);
  EXPECT_NE(csv.find("rank,time_ns,phase"), std::string::npos);
  EXPECT_NE(csv.find("0,0,active"), std::string::npos);
  EXPECT_NE(csv.find("0,400,idle"), std::string::npos);
  EXPECT_NE(csv.find("1,350,active"), std::string::npos);
}

TEST(Export, RoundTripPreservesEverything) {
  const auto original = sample_trace();
  const auto restored = trace_from_csv(trace_to_csv(original));
  ASSERT_EQ(restored.total_time, original.total_time);
  ASSERT_EQ(restored.num_ranks(), original.num_ranks());
  for (std::size_t r = 0; r < original.ranks.size(); ++r) {
    EXPECT_EQ(restored.ranks[r].events(), original.ranks[r].events()) << r;
  }
}

TEST(Export, RoundTripOfSingleRankSingleEvent) {
  JobTrace trace;
  trace.total_time = 7;
  trace.ranks.emplace_back(Phase::kIdle, 0);
  const auto restored = trace_from_csv(trace_to_csv(trace));
  EXPECT_EQ(restored.num_ranks(), 1u);
  EXPECT_EQ(restored.ranks[0].events().size(), 1u);
  EXPECT_EQ(restored.ranks[0].events()[0].phase, Phase::kIdle);
}

TEST(Export, OccupancyCsvHasStepPoints) {
  std::ostringstream out;
  write_occupancy_csv(out, sample_trace());
  const auto csv = out.str();
  EXPECT_NE(csv.find("time_ns,active_workers"), std::string::npos);
  // At t=0 rank 0 is active -> 1 worker; at 350 rank 1 joins -> 2.
  EXPECT_NE(csv.find("0,1"), std::string::npos);
  EXPECT_NE(csv.find("350,2"), std::string::npos);
}

TEST(Export, RestoredTraceAnalysesIdentically) {
  const auto original = sample_trace();
  const auto restored = trace_from_csv(trace_to_csv(original));
  const OccupancyCurve a(original);
  const OccupancyCurve b(restored);
  EXPECT_EQ(a.max_workers(), b.max_workers());
  EXPECT_EQ(a.workers_at(500), b.workers_at(500));
  EXPECT_EQ(a.starting_latency(0.5), b.starting_latency(0.5));
  EXPECT_EQ(a.ending_latency(0.5), b.ending_latency(0.5));
}

}  // namespace
}  // namespace dws::metrics
