#include "metrics/imbalance.hpp"

#include <gtest/gtest.h>

namespace dws::metrics {
namespace {

TEST(Imbalance, PerfectBalance) {
  const auto im = compute_imbalance({100, 100, 100, 100});
  EXPECT_DOUBLE_EQ(im.mean, 100.0);
  EXPECT_DOUBLE_EQ(im.max, 100.0);
  EXPECT_DOUBLE_EQ(im.imbalance_factor, 1.0);
  EXPECT_DOUBLE_EQ(im.cov, 0.0);
  EXPECT_NEAR(im.gini, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(im.starved_fraction, 0.0);
}

TEST(Imbalance, OneRankDoesEverything) {
  const auto im = compute_imbalance({0, 0, 0, 400});
  EXPECT_DOUBLE_EQ(im.mean, 100.0);
  EXPECT_DOUBLE_EQ(im.imbalance_factor, 4.0);
  EXPECT_DOUBLE_EQ(im.starved_fraction, 0.75);
  // Gini for a single non-zero holder of n ranks is (n-1)/n.
  EXPECT_NEAR(im.gini, 0.75, 1e-12);
}

TEST(Imbalance, AllZeroWork) {
  const auto im = compute_imbalance({0, 0, 0});
  EXPECT_DOUBLE_EQ(im.mean, 0.0);
  EXPECT_DOUBLE_EQ(im.imbalance_factor, 0.0);
  EXPECT_DOUBLE_EQ(im.gini, 0.0);
  EXPECT_DOUBLE_EQ(im.starved_fraction, 1.0);
}

TEST(Imbalance, SingleRank) {
  const auto im = compute_imbalance({42});
  EXPECT_DOUBLE_EQ(im.mean, 42.0);
  EXPECT_DOUBLE_EQ(im.imbalance_factor, 1.0);
  EXPECT_NEAR(im.gini, 0.0, 1e-12);
}

TEST(Imbalance, KnownGiniHandComputed) {
  // x = {1, 3}: G = (2*(1*1 + 2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25.
  const auto im = compute_imbalance({3, 1});
  EXPECT_NEAR(im.gini, 0.25, 1e-12);
}

TEST(Imbalance, MoreSkewMeansBiggerGini) {
  const auto mild = compute_imbalance({90, 100, 110, 100});
  const auto wild = compute_imbalance({10, 100, 1000, 10});
  EXPECT_LT(mild.gini, wild.gini);
  EXPECT_LT(mild.cov, wild.cov);
  EXPECT_LT(mild.imbalance_factor, wild.imbalance_factor);
}

TEST(Imbalance, OrderInvariant) {
  const auto a = compute_imbalance({5, 1, 9, 3});
  const auto b = compute_imbalance({9, 3, 5, 1});
  EXPECT_DOUBLE_EQ(a.gini, b.gini);
  EXPECT_DOUBLE_EQ(a.cov, b.cov);
  EXPECT_DOUBLE_EQ(a.imbalance_factor, b.imbalance_factor);
}

}  // namespace
}  // namespace dws::metrics
