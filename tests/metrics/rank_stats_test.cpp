#include "metrics/rank_stats.hpp"

#include <gtest/gtest.h>

namespace dws::metrics {
namespace {

TEST(Aggregate, SumsCounters) {
  std::vector<RankStats> ranks(3);
  ranks[0].nodes_processed = 100;
  ranks[1].nodes_processed = 200;
  ranks[2].nodes_processed = 300;
  ranks[0].failed_steals = 5;
  ranks[2].failed_steals = 7;
  ranks[1].steal_attempts = 11;
  ranks[0].chunks_sent = 2;
  const auto job = aggregate(ranks);
  EXPECT_EQ(job.nodes_processed, 600u);
  EXPECT_EQ(job.failed_steals, 12u);
  EXPECT_EQ(job.steal_attempts, 11u);
  EXPECT_EQ(job.chunks_sent, 2u);
}

TEST(Aggregate, MeanSessionDuration) {
  std::vector<RankStats> ranks(2);
  ranks[0].sessions = 2;
  ranks[0].total_session_time = 4 * support::kMillisecond;
  ranks[1].sessions = 2;
  ranks[1].total_session_time = 8 * support::kMillisecond;
  const auto job = aggregate(ranks);
  EXPECT_EQ(job.sessions, 4u);
  EXPECT_DOUBLE_EQ(job.mean_session_ms, 3.0);
}

TEST(Aggregate, NoSessionsMeansZeroMean) {
  std::vector<RankStats> ranks(2);
  const auto job = aggregate(ranks);
  EXPECT_DOUBLE_EQ(job.mean_session_ms, 0.0);
}

TEST(Aggregate, SearchTimeMeanAndMax) {
  std::vector<RankStats> ranks(4);
  ranks[0].total_search_time = 1 * support::kSecond;
  ranks[1].total_search_time = 2 * support::kSecond;
  ranks[2].total_search_time = 3 * support::kSecond;
  ranks[3].total_search_time = 2 * support::kSecond;
  const auto job = aggregate(ranks);
  EXPECT_DOUBLE_EQ(job.mean_search_time_s, 2.0);
  EXPECT_DOUBLE_EQ(job.max_search_time_s, 3.0);
}

}  // namespace
}  // namespace dws::metrics
