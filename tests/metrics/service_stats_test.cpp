/// Nearest-rank percentile semantics of the service tail statistics: every
/// reported value must be an actual sample (no interpolation), so record
/// streams stay bit-stable across platforms.
#include <vector>

#include <gtest/gtest.h>

#include "metrics/service_stats.hpp"

namespace dws::metrics {
namespace {

TEST(ServiceStats, EmptySampleSetIsAllZero) {
  const TailStats t = tail_stats({});
  EXPECT_EQ(t.count, 0u);
  EXPECT_EQ(t.mean, 0.0);
  EXPECT_EQ(t.p50, 0.0);
  EXPECT_EQ(t.p99, 0.0);
  EXPECT_EQ(t.max, 0.0);
}

TEST(ServiceStats, SingleSampleIsItsOwnTail) {
  const TailStats t = tail_stats({42.0});
  EXPECT_EQ(t.count, 1u);
  EXPECT_EQ(t.mean, 42.0);
  EXPECT_EQ(t.p50, 42.0);
  EXPECT_EQ(t.p99, 42.0);
  EXPECT_EQ(t.max, 42.0);
}

TEST(ServiceStats, NearestRankPicksActualSamples) {
  // 100 samples 1..100: nearest-rank p50 is the 50th order statistic, p99
  // the 99th — exact samples, not interpolated midpoints.
  std::vector<double> xs;
  for (int i = 100; i >= 1; --i) xs.push_back(i);  // unsorted on purpose
  const TailStats t = tail_stats(std::move(xs));
  EXPECT_EQ(t.count, 100u);
  EXPECT_EQ(t.p50, 50.0);
  EXPECT_EQ(t.p99, 99.0);
  EXPECT_EQ(t.max, 100.0);
  EXPECT_DOUBLE_EQ(t.mean, 50.5);
}

TEST(ServiceStats, ServiceTailsConvertVirtualNsToMs) {
  JobOutcome a;
  a.arrival = 0;
  a.admit = 1'000'000;         // 1 ms queue wait
  a.first_compute = 2'000'000; // 2 ms scheduling latency
  a.finish = 10'000'000;       // 10 ms makespan
  JobOutcome b = a;
  b.arrival = 5'000'000;
  b.admit = b.arrival + 3'000'000;
  b.first_compute = b.admit + 1'000'000;
  b.finish = b.arrival + 20'000'000;

  const ServiceTails tails = service_tails({a, b});
  EXPECT_EQ(tails.makespan.count, 2u);
  EXPECT_DOUBLE_EQ(tails.makespan.max, 20.0);
  EXPECT_DOUBLE_EQ(tails.queue_wait.max, 3.0);
  EXPECT_DOUBLE_EQ(tails.sched_latency.max, 4.0);
  // Two samples: nearest-rank p50 is the smaller one.
  EXPECT_DOUBLE_EQ(tails.makespan.p50, 10.0);
  EXPECT_DOUBLE_EQ(tails.makespan.p99, 20.0);
}

}  // namespace
}  // namespace dws::metrics
