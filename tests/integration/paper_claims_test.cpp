#include <gtest/gtest.h>

#include "metrics/occupancy.hpp"
#include "ws/scheduler.hpp"

namespace dws {
namespace {

/// Scaled-down versions of the paper's headline claims, small enough to run
/// in the test suite (the full-scale versions live in bench/). These guard
/// against regressions that keep all the unit tests green but silently
/// destroy the phenomenon the library exists to study.

ws::RunResult run(const char* tree, topo::Rank ranks, ws::VictimPolicy policy,
                  ws::StealAmount amount,
                  topo::Placement placement = topo::Placement::kOnePerNode,
                  std::uint32_t ppn = 1) {
  ws::RunConfig cfg;
  cfg.tree = uts::tree_by_name(tree);
  cfg.num_ranks = ranks;
  cfg.placement = placement;
  cfg.procs_per_node = ppn;
  cfg.ws.victim_policy = policy;
  cfg.ws.steal_amount = amount;
  cfg.ws.chunk_size = 4;
  cfg.enable_congestion(1.0);
  return ws::run_simulation(cfg);
}

TEST(PaperClaims, StealHalfBeatsOneChunkAtScale) {
  // §IV-C: half-stealing makes thieves immediately stealable; at scale this
  // dominates everything else.
  const auto one = run("SIM200K", 256, ws::VictimPolicy::kTofuSkewed,
                       ws::StealAmount::kOneChunk);
  const auto half = run("SIM200K", 256, ws::VictimPolicy::kTofuSkewed,
                        ws::StealAmount::kHalf);
  EXPECT_GT(half.speedup(), 1.3 * one.speedup());
}

TEST(PaperClaims, OptimisedBeatsReferenceSubstantially) {
  // Fig. 11's headline: Tofu Half vs the original (reference + one chunk).
  const auto ref = run("SIM200K", 256, ws::VictimPolicy::kRoundRobin,
                       ws::StealAmount::kOneChunk);
  const auto opt = run("SIM200K", 256, ws::VictimPolicy::kTofuSkewed,
                       ws::StealAmount::kHalf);
  EXPECT_GT(opt.speedup(), 1.5 * ref.speedup());
}

TEST(PaperClaims, OptimisedReducesFailedSteals) {
  // Fig. 15: better distribution -> fewer refusals.
  const auto ref = run("SIM200K", 256, ws::VictimPolicy::kRoundRobin,
                       ws::StealAmount::kOneChunk);
  const auto opt = run("SIM200K", 256, ws::VictimPolicy::kTofuSkewed,
                       ws::StealAmount::kHalf);
  EXPECT_LT(opt.stats.failed_steals, ref.stats.failed_steals);
}

TEST(PaperClaims, OptimisedShortensDiscoverySessions) {
  // Fig. 10: work discovery is faster under the optimised strategy.
  const auto ref = run("SIM200K", 256, ws::VictimPolicy::kRoundRobin,
                       ws::StealAmount::kOneChunk);
  const auto opt = run("SIM200K", 256, ws::VictimPolicy::kTofuSkewed,
                       ws::StealAmount::kHalf);
  EXPECT_LT(opt.stats.mean_session_ms, ref.stats.mean_session_ms);
}

TEST(PaperClaims, OptimisedReachesHigherOccupancy) {
  // Figs. 12/13: the optimised version reaches (and holds) far higher
  // occupancy than the reference at scale.
  const auto ref = run("SIM200K", 256, ws::VictimPolicy::kRoundRobin,
                       ws::StealAmount::kOneChunk);
  const auto opt = run("SIM200K", 256, ws::VictimPolicy::kTofuSkewed,
                       ws::StealAmount::kHalf);
  const metrics::OccupancyCurve ref_occ(ref.trace);
  const metrics::OccupancyCurve opt_occ(opt.trace);
  EXPECT_GT(opt_occ.max_occupancy(), ref_occ.max_occupancy());
  EXPECT_GT(opt_occ.mean_occupancy(), ref_occ.mean_occupancy());
}

TEST(PaperClaims, SmallScaleHidesTheProblem) {
  // Fig. 2 vs Fig. 3: at 16 ranks the reference is fine (efficiency high);
  // the pathology needs scale.
  const auto small = run("SIM200K", 16, ws::VictimPolicy::kRoundRobin,
                         ws::StealAmount::kOneChunk);
  EXPECT_GT(small.efficiency(), 0.80);
}

TEST(PaperClaims, GranularityShrinksTheSelectionGap) {
  // Fig. 16: more compute per node -> victim selection matters less.
  auto improvement = [&](std::uint32_t rounds) {
    ws::RunConfig ref_cfg;
    ref_cfg.tree = uts::tree_by_name("SIM200K");
    ref_cfg.num_ranks = 256;
    ref_cfg.ws.chunk_size = 4;
    ref_cfg.ws.sha_rounds = rounds;
    ref_cfg.ws.victim_policy = ws::VictimPolicy::kRoundRobin;
    ref_cfg.ws.steal_amount = ws::StealAmount::kHalf;
    ref_cfg.enable_congestion(1.0);
    auto opt_cfg = ref_cfg;
    opt_cfg.ws.victim_policy = ws::VictimPolicy::kTofuSkewed;
    const auto ref = ws::run_simulation(ref_cfg);
    const auto opt = ws::run_simulation(opt_cfg);
    return (static_cast<double>(ref.runtime) - static_cast<double>(opt.runtime)) /
           static_cast<double>(ref.runtime);
  };
  // The gap at fine granularity exceeds the gap at coarse granularity.
  EXPECT_GT(improvement(1), improvement(16) - 0.02);
}

}  // namespace
}  // namespace dws
