#include <gtest/gtest.h>

#include "metrics/occupancy.hpp"
#include "uts/sequential.hpp"
#include "ws/scheduler.hpp"

namespace dws {
namespace {

/// End-to-end checks of the trace -> occupancy -> SL/EL pipeline on traces
/// produced by real simulated runs (the unit tests use hand-built traces).
class TracePipeline : public ::testing::Test {
 protected:
  static ws::RunResult make_run() {
    ws::RunConfig cfg;
    cfg.tree = uts::tree_by_name("TEST_BIN_SMALL");
    cfg.num_ranks = 8;
    cfg.ws.victim_policy = ws::VictimPolicy::kRandom;
    cfg.ws.steal_amount = ws::StealAmount::kHalf;
    return ws::run_simulation(cfg);
  }
};

TEST_F(TracePipeline, TraceIsWellFormed) {
  const auto run = make_run();
  ASSERT_EQ(run.trace.num_ranks(), 8u);
  for (const auto& rank : run.trace.ranks) {
    const auto& evs = rank.events();
    ASSERT_FALSE(evs.empty());
    for (std::size_t i = 1; i < evs.size(); ++i) {
      // Times monotone, phases strictly alternating.
      ASSERT_GE(evs[i].time, evs[i - 1].time);
      ASSERT_NE(evs[i].phase, evs[i - 1].phase);
    }
    // Everyone ends idle (termination requires global quiescence).
    EXPECT_EQ(rank.phase_at_end(), metrics::Phase::kIdle);
  }
}

TEST_F(TracePipeline, ActiveTimeBoundedByRuntime) {
  const auto run = make_run();
  for (const auto& rank : run.trace.ranks) {
    const auto active = rank.active_time(run.runtime);
    EXPECT_GE(active, 0);
    EXPECT_LE(active, run.runtime);
  }
}

TEST_F(TracePipeline, ActiveTimeConsistentWithWork) {
  // Each rank's active time is at least the compute time of the nodes it
  // processed (it also includes time spent serving steals).
  const auto run = make_run();
  for (topo::Rank r = 0; r < 8; ++r) {
    const auto min_active = static_cast<support::SimTime>(
        run.per_rank[r].nodes_processed) * run.per_node_cost;
    EXPECT_GE(run.trace.ranks[r].active_time(run.runtime) +
                  support::kMicrosecond,
              min_active)
        << r;
  }
}

TEST_F(TracePipeline, OccupancyCurveInvariants) {
  const auto run = make_run();
  const metrics::OccupancyCurve occ(run.trace);
  EXPECT_LE(occ.max_workers(), 8u);
  EXPECT_GE(occ.max_workers(), 1u);
  // Rank 0 is active at t = 0 and everyone is idle at the end.
  EXPECT_EQ(occ.workers_at(0), 1u);
  EXPECT_EQ(occ.workers_at(run.runtime), 0u);
  // SL is monotone in x wherever defined.
  double prev = 0.0;
  for (double x = 0.1; x <= 1.0; x += 0.1) {
    const auto sl = occ.starting_latency(x);
    if (!sl.has_value()) break;
    EXPECT_GE(*sl + 1e-12, prev);
    prev = *sl;
  }
  // SL + EL never exceed the whole runtime for any reached occupancy.
  for (double x = 0.1; x <= 1.0; x += 0.1) {
    const auto sl = occ.starting_latency(x);
    const auto el = occ.ending_latency(x);
    if (sl && el) {
      EXPECT_LE(*sl + *el, 1.0 + 1e-12) << x;
    }
  }
}

TEST_F(TracePipeline, MeanOccupancyMatchesPerRankActiveTime) {
  // Integral identity: mean occupancy * N * T == sum of per-rank active time.
  const auto run = make_run();
  const metrics::OccupancyCurve occ(run.trace);
  support::SimTime total_active = 0;
  for (const auto& rank : run.trace.ranks) {
    total_active += rank.active_time(run.runtime);
  }
  const double lhs = occ.mean_occupancy() * 8.0 * static_cast<double>(run.runtime);
  EXPECT_NEAR(lhs, static_cast<double>(total_active),
              static_cast<double>(run.runtime) * 0.01);
}

TEST_F(TracePipeline, DeterministicTraces) {
  const auto a = make_run();
  const auto b = make_run();
  ASSERT_EQ(a.trace.num_ranks(), b.trace.num_ranks());
  for (std::size_t r = 0; r < a.trace.ranks.size(); ++r) {
    ASSERT_EQ(a.trace.ranks[r].events(), b.trace.ranks[r].events()) << r;
  }
}

}  // namespace
}  // namespace dws
