#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "uts/sequential.hpp"
#include "ws/scheduler.hpp"

namespace dws {
namespace {

/// Randomised configuration fuzzing: each case derives a full RunConfig —
/// tree parameters, rank count, placement, scheduler knobs — from a seed and
/// checks the conservation oracle. The goal is to hit protocol interleavings
/// no hand-written case thought of (token vs in-flight work, lifeline pushes
/// racing steal responses, one-sided steals during drain...).
class ConfigFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConfigFuzz, RandomConfigConserves) {
  support::Xoshiro256StarStar rng(GetParam());

  ws::RunConfig cfg;
  cfg.tree.name = "fuzz";
  // Subcritical binomial or bounded geometric, sized for test budget.
  if (rng.next_below(3) == 0) {
    cfg.tree.type = uts::TreeType::kGeometric;
    cfg.tree.root_branching = 2 + static_cast<std::uint32_t>(rng.next_below(4));
    cfg.tree.gen_mx = 4 + static_cast<std::uint32_t>(rng.next_below(5));
    cfg.tree.shape = static_cast<uts::GeoShape>(rng.next_below(4));
  } else {
    cfg.tree.type = uts::TreeType::kBinomial;
    cfg.tree.root_branching =
        10 + static_cast<std::uint32_t>(rng.next_below(500));
    cfg.tree.m = 2 + static_cast<std::uint32_t>(rng.next_below(4));
    // mq in [0.5, 0.95]: guaranteed finite, interestingly unbalanced.
    cfg.tree.q = (0.5 + rng.next_double() * 0.45) / cfg.tree.m;
  }
  cfg.tree.root_seed = static_cast<std::uint32_t>(rng.next_below(1000));

  const std::uint32_t ppn_choice = static_cast<std::uint32_t>(rng.next_below(3));
  if (ppn_choice == 0) {
    cfg.placement = topo::Placement::kOnePerNode;
    cfg.procs_per_node = 1;
    cfg.num_ranks = 2 + static_cast<topo::Rank>(rng.next_below(40));
  } else {
    cfg.placement = ppn_choice == 1 ? topo::Placement::kRoundRobin
                                    : topo::Placement::kGrouped;
    cfg.procs_per_node = 1u << (1 + rng.next_below(3));  // 2, 4, 8
    cfg.num_ranks =
        cfg.procs_per_node * (1 + static_cast<topo::Rank>(rng.next_below(8)));
  }

  cfg.ws.chunk_size = 1 + static_cast<std::uint32_t>(rng.next_below(30));
  cfg.ws.victim_policy = static_cast<ws::VictimPolicy>(rng.next_below(4));
  cfg.ws.steal_amount = static_cast<ws::StealAmount>(rng.next_below(2));
  cfg.ws.idle_policy = static_cast<ws::IdlePolicy>(rng.next_below(2));
  cfg.ws.lifeline_tries = 1 + static_cast<std::uint32_t>(rng.next_below(6));
  cfg.ws.one_sided_steals = rng.next_below(2) == 1;
  cfg.ws.poll_interval = 1 + static_cast<std::uint32_t>(rng.next_below(4));
  cfg.ws.sha_rounds = 1 + static_cast<std::uint32_t>(rng.next_below(4));
  cfg.ws.seed = rng.next();
  cfg.origin_cube = static_cast<std::uint32_t>(rng.next_below(500));
  if (rng.next_below(2) == 1) cfg.enable_congestion(0.5 + rng.next_double());

  const auto seq = uts::enumerate_sequential(cfg.tree, 2'000'000);
  if (seq.truncated) GTEST_SKIP() << "tree too large for fuzz budget";

  const auto result = ws::run_simulation(cfg);
  EXPECT_EQ(result.nodes, seq.nodes) << "ranks=" << cfg.num_ranks
                                     << " chunk=" << cfg.ws.chunk_size;
  EXPECT_EQ(result.leaves, seq.leaves);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzz,
                         ::testing::Range<std::uint64_t>(1, 65));

}  // namespace
}  // namespace dws
