#include <gtest/gtest.h>

#include "sm/pool.hpp"
#include "uts/sequential.hpp"
#include "ws/scheduler.hpp"

namespace dws {
namespace {

/// The repo's master oracle (DESIGN.md §6, invariant 1): three independent
/// implementations — the sequential enumerator, the real-threads Chase-Lev
/// pool, and the distributed-simulation scheduler — must agree exactly on
/// every tree. A bug in SHA-1, the splittable RNG, chunk management,
/// termination detection or the deque shows up as a count mismatch here.
class CrossValidation : public ::testing::TestWithParam<const char*> {};

TEST_P(CrossValidation, AllThreeImplementationsAgree) {
  const auto& tree = uts::tree_by_name(GetParam());

  const auto seq = uts::enumerate_sequential(tree);

  sm::UtsThreadPool pool(tree, 4);
  const auto threaded = pool.run();

  ws::RunConfig cfg;
  cfg.tree = tree;
  cfg.num_ranks = 16;
  cfg.ws.victim_policy = ws::VictimPolicy::kTofuSkewed;
  cfg.ws.steal_amount = ws::StealAmount::kHalf;
  const auto simulated = ws::run_simulation(cfg);

  EXPECT_EQ(threaded.nodes, seq.nodes);
  EXPECT_EQ(threaded.leaves, seq.leaves);
  EXPECT_EQ(threaded.max_depth, seq.max_depth);
  EXPECT_EQ(simulated.nodes, seq.nodes);
  EXPECT_EQ(simulated.leaves, seq.leaves);
}

INSTANTIATE_TEST_SUITE_P(Trees, CrossValidation,
                         ::testing::Values("TEST_BIN_TINY", "TEST_BIN_SMALL",
                                           "TEST_BIN_WIDE", "TEST_GEO_LIN",
                                           "TEST_GEO_FIX", "TEST_GEO_EXP",
                                           "TEST_GEO_CYC", "TEST_HYBRID",
                                           "SIM200K"));

TEST(CrossValidation, SimulatorAgreesAcrossAllConfigAxes) {
  // One tree, every axis the benches vary: the node count is invariant.
  const auto& tree = uts::tree_by_name("TEST_BIN_SMALL");
  const auto expected = uts::enumerate_sequential(tree).nodes;
  for (const auto policy :
       {ws::VictimPolicy::kRoundRobin, ws::VictimPolicy::kRandom,
        ws::VictimPolicy::kTofuSkewed}) {
    for (const auto amount : {ws::StealAmount::kOneChunk, ws::StealAmount::kHalf}) {
      for (const std::uint32_t chunk : {2u, 20u}) {
        for (const bool congested : {false, true}) {
          ws::RunConfig cfg;
          cfg.tree = tree;
          cfg.num_ranks = 12;
          cfg.ws.victim_policy = policy;
          cfg.ws.steal_amount = amount;
          cfg.ws.chunk_size = chunk;
          if (congested) cfg.enable_congestion(1.0);
          EXPECT_EQ(ws::run_simulation(cfg).nodes, expected)
              << ws::to_string(policy) << "/" << ws::to_string(amount) << "/c"
              << chunk << "/cong" << congested;
        }
      }
    }
  }
}

TEST(CrossValidation, GranularityNeverChangesTheTree) {
  const auto& tree = uts::tree_by_name("TEST_BIN_SMALL");
  const auto expected = uts::enumerate_sequential(tree).nodes;
  for (const std::uint32_t rounds : {1u, 4u, 24u}) {
    ws::RunConfig cfg;
    cfg.tree = tree;
    cfg.num_ranks = 8;
    cfg.ws.sha_rounds = rounds;
    EXPECT_EQ(ws::run_simulation(cfg).nodes, expected) << rounds;
  }
}

}  // namespace
}  // namespace dws
