file(REMOVE_RECURSE
  "CMakeFiles/dws_test_crypto.dir/sha1_test.cpp.o"
  "CMakeFiles/dws_test_crypto.dir/sha1_test.cpp.o.d"
  "CMakeFiles/dws_test_crypto.dir/uts_rng_test.cpp.o"
  "CMakeFiles/dws_test_crypto.dir/uts_rng_test.cpp.o.d"
  "dws_test_crypto"
  "dws_test_crypto.pdb"
  "dws_test_crypto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dws_test_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
