# Empty compiler generated dependencies file for dws_test_crypto.
# This may be replaced when dependencies are built.
