file(REMOVE_RECURSE
  "CMakeFiles/dws_test_ws.dir/chunk_stack_test.cpp.o"
  "CMakeFiles/dws_test_ws.dir/chunk_stack_test.cpp.o.d"
  "CMakeFiles/dws_test_ws.dir/config_test.cpp.o"
  "CMakeFiles/dws_test_ws.dir/config_test.cpp.o.d"
  "CMakeFiles/dws_test_ws.dir/extensions_test.cpp.o"
  "CMakeFiles/dws_test_ws.dir/extensions_test.cpp.o.d"
  "CMakeFiles/dws_test_ws.dir/scheduler_test.cpp.o"
  "CMakeFiles/dws_test_ws.dir/scheduler_test.cpp.o.d"
  "CMakeFiles/dws_test_ws.dir/termination_test.cpp.o"
  "CMakeFiles/dws_test_ws.dir/termination_test.cpp.o.d"
  "CMakeFiles/dws_test_ws.dir/victim_test.cpp.o"
  "CMakeFiles/dws_test_ws.dir/victim_test.cpp.o.d"
  "dws_test_ws"
  "dws_test_ws.pdb"
  "dws_test_ws[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dws_test_ws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
