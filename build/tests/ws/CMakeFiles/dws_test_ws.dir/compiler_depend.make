# Empty compiler generated dependencies file for dws_test_ws.
# This may be replaced when dependencies are built.
