# CMake generated Testfile for 
# Source directory: /root/repo/tests/ws
# Build directory: /root/repo/build/tests/ws
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ws/dws_test_ws[1]_include.cmake")
