# Empty dependencies file for dws_test_sm.
# This may be replaced when dependencies are built.
