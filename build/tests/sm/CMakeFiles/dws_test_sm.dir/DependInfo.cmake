
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sm/chase_lev_test.cpp" "tests/sm/CMakeFiles/dws_test_sm.dir/chase_lev_test.cpp.o" "gcc" "tests/sm/CMakeFiles/dws_test_sm.dir/chase_lev_test.cpp.o.d"
  "/root/repo/tests/sm/pool_test.cpp" "tests/sm/CMakeFiles/dws_test_sm.dir/pool_test.cpp.o" "gcc" "tests/sm/CMakeFiles/dws_test_sm.dir/pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sm/CMakeFiles/dws_sm.dir/DependInfo.cmake"
  "/root/repo/build/src/uts/CMakeFiles/dws_uts.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dws_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dws_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
