file(REMOVE_RECURSE
  "CMakeFiles/dws_test_sm.dir/chase_lev_test.cpp.o"
  "CMakeFiles/dws_test_sm.dir/chase_lev_test.cpp.o.d"
  "CMakeFiles/dws_test_sm.dir/pool_test.cpp.o"
  "CMakeFiles/dws_test_sm.dir/pool_test.cpp.o.d"
  "dws_test_sm"
  "dws_test_sm.pdb"
  "dws_test_sm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dws_test_sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
