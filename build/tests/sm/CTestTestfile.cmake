# CMake generated Testfile for 
# Source directory: /root/repo/tests/sm
# Build directory: /root/repo/build/tests/sm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sm/dws_test_sm[1]_include.cmake")
