
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/topo/allocation_test.cpp" "tests/topo/CMakeFiles/dws_test_topo.dir/allocation_test.cpp.o" "gcc" "tests/topo/CMakeFiles/dws_test_topo.dir/allocation_test.cpp.o.d"
  "/root/repo/tests/topo/latency_test.cpp" "tests/topo/CMakeFiles/dws_test_topo.dir/latency_test.cpp.o" "gcc" "tests/topo/CMakeFiles/dws_test_topo.dir/latency_test.cpp.o.d"
  "/root/repo/tests/topo/placement_fuzz_test.cpp" "tests/topo/CMakeFiles/dws_test_topo.dir/placement_fuzz_test.cpp.o" "gcc" "tests/topo/CMakeFiles/dws_test_topo.dir/placement_fuzz_test.cpp.o.d"
  "/root/repo/tests/topo/tofu_test.cpp" "tests/topo/CMakeFiles/dws_test_topo.dir/tofu_test.cpp.o" "gcc" "tests/topo/CMakeFiles/dws_test_topo.dir/tofu_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/dws_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dws_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
