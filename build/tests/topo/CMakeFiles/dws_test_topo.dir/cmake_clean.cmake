file(REMOVE_RECURSE
  "CMakeFiles/dws_test_topo.dir/allocation_test.cpp.o"
  "CMakeFiles/dws_test_topo.dir/allocation_test.cpp.o.d"
  "CMakeFiles/dws_test_topo.dir/latency_test.cpp.o"
  "CMakeFiles/dws_test_topo.dir/latency_test.cpp.o.d"
  "CMakeFiles/dws_test_topo.dir/placement_fuzz_test.cpp.o"
  "CMakeFiles/dws_test_topo.dir/placement_fuzz_test.cpp.o.d"
  "CMakeFiles/dws_test_topo.dir/tofu_test.cpp.o"
  "CMakeFiles/dws_test_topo.dir/tofu_test.cpp.o.d"
  "dws_test_topo"
  "dws_test_topo.pdb"
  "dws_test_topo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dws_test_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
