# Empty dependencies file for dws_test_metrics.
# This may be replaced when dependencies are built.
