file(REMOVE_RECURSE
  "CMakeFiles/dws_test_metrics.dir/export_test.cpp.o"
  "CMakeFiles/dws_test_metrics.dir/export_test.cpp.o.d"
  "CMakeFiles/dws_test_metrics.dir/imbalance_test.cpp.o"
  "CMakeFiles/dws_test_metrics.dir/imbalance_test.cpp.o.d"
  "CMakeFiles/dws_test_metrics.dir/occupancy_test.cpp.o"
  "CMakeFiles/dws_test_metrics.dir/occupancy_test.cpp.o.d"
  "CMakeFiles/dws_test_metrics.dir/rank_stats_test.cpp.o"
  "CMakeFiles/dws_test_metrics.dir/rank_stats_test.cpp.o.d"
  "CMakeFiles/dws_test_metrics.dir/report_test.cpp.o"
  "CMakeFiles/dws_test_metrics.dir/report_test.cpp.o.d"
  "CMakeFiles/dws_test_metrics.dir/trace_test.cpp.o"
  "CMakeFiles/dws_test_metrics.dir/trace_test.cpp.o.d"
  "dws_test_metrics"
  "dws_test_metrics.pdb"
  "dws_test_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dws_test_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
