
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/metrics/export_test.cpp" "tests/metrics/CMakeFiles/dws_test_metrics.dir/export_test.cpp.o" "gcc" "tests/metrics/CMakeFiles/dws_test_metrics.dir/export_test.cpp.o.d"
  "/root/repo/tests/metrics/imbalance_test.cpp" "tests/metrics/CMakeFiles/dws_test_metrics.dir/imbalance_test.cpp.o" "gcc" "tests/metrics/CMakeFiles/dws_test_metrics.dir/imbalance_test.cpp.o.d"
  "/root/repo/tests/metrics/occupancy_test.cpp" "tests/metrics/CMakeFiles/dws_test_metrics.dir/occupancy_test.cpp.o" "gcc" "tests/metrics/CMakeFiles/dws_test_metrics.dir/occupancy_test.cpp.o.d"
  "/root/repo/tests/metrics/rank_stats_test.cpp" "tests/metrics/CMakeFiles/dws_test_metrics.dir/rank_stats_test.cpp.o" "gcc" "tests/metrics/CMakeFiles/dws_test_metrics.dir/rank_stats_test.cpp.o.d"
  "/root/repo/tests/metrics/report_test.cpp" "tests/metrics/CMakeFiles/dws_test_metrics.dir/report_test.cpp.o" "gcc" "tests/metrics/CMakeFiles/dws_test_metrics.dir/report_test.cpp.o.d"
  "/root/repo/tests/metrics/trace_test.cpp" "tests/metrics/CMakeFiles/dws_test_metrics.dir/trace_test.cpp.o" "gcc" "tests/metrics/CMakeFiles/dws_test_metrics.dir/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/dws_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dws_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
