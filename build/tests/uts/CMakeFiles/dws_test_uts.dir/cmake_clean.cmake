file(REMOVE_RECURSE
  "CMakeFiles/dws_test_uts.dir/catalogue_test.cpp.o"
  "CMakeFiles/dws_test_uts.dir/catalogue_test.cpp.o.d"
  "CMakeFiles/dws_test_uts.dir/sequential_test.cpp.o"
  "CMakeFiles/dws_test_uts.dir/sequential_test.cpp.o.d"
  "CMakeFiles/dws_test_uts.dir/statistical_test.cpp.o"
  "CMakeFiles/dws_test_uts.dir/statistical_test.cpp.o.d"
  "CMakeFiles/dws_test_uts.dir/tree_test.cpp.o"
  "CMakeFiles/dws_test_uts.dir/tree_test.cpp.o.d"
  "dws_test_uts"
  "dws_test_uts.pdb"
  "dws_test_uts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dws_test_uts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
