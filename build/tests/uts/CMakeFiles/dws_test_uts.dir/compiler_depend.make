# Empty compiler generated dependencies file for dws_test_uts.
# This may be replaced when dependencies are built.
