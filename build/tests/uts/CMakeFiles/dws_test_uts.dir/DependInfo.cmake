
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/uts/catalogue_test.cpp" "tests/uts/CMakeFiles/dws_test_uts.dir/catalogue_test.cpp.o" "gcc" "tests/uts/CMakeFiles/dws_test_uts.dir/catalogue_test.cpp.o.d"
  "/root/repo/tests/uts/sequential_test.cpp" "tests/uts/CMakeFiles/dws_test_uts.dir/sequential_test.cpp.o" "gcc" "tests/uts/CMakeFiles/dws_test_uts.dir/sequential_test.cpp.o.d"
  "/root/repo/tests/uts/statistical_test.cpp" "tests/uts/CMakeFiles/dws_test_uts.dir/statistical_test.cpp.o" "gcc" "tests/uts/CMakeFiles/dws_test_uts.dir/statistical_test.cpp.o.d"
  "/root/repo/tests/uts/tree_test.cpp" "tests/uts/CMakeFiles/dws_test_uts.dir/tree_test.cpp.o" "gcc" "tests/uts/CMakeFiles/dws_test_uts.dir/tree_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uts/CMakeFiles/dws_uts.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dws_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dws_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
