# CMake generated Testfile for 
# Source directory: /root/repo/tests/uts
# Build directory: /root/repo/build/tests/uts
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/uts/dws_test_uts[1]_include.cmake")
