# Empty compiler generated dependencies file for dws_test_support.
# This may be replaced when dependencies are built.
