file(REMOVE_RECURSE
  "CMakeFiles/dws_test_support.dir/alias_table_test.cpp.o"
  "CMakeFiles/dws_test_support.dir/alias_table_test.cpp.o.d"
  "CMakeFiles/dws_test_support.dir/check_test.cpp.o"
  "CMakeFiles/dws_test_support.dir/check_test.cpp.o.d"
  "CMakeFiles/dws_test_support.dir/histogram_test.cpp.o"
  "CMakeFiles/dws_test_support.dir/histogram_test.cpp.o.d"
  "CMakeFiles/dws_test_support.dir/rejection_sampler_test.cpp.o"
  "CMakeFiles/dws_test_support.dir/rejection_sampler_test.cpp.o.d"
  "CMakeFiles/dws_test_support.dir/rng_test.cpp.o"
  "CMakeFiles/dws_test_support.dir/rng_test.cpp.o.d"
  "CMakeFiles/dws_test_support.dir/stats_test.cpp.o"
  "CMakeFiles/dws_test_support.dir/stats_test.cpp.o.d"
  "CMakeFiles/dws_test_support.dir/table_test.cpp.o"
  "CMakeFiles/dws_test_support.dir/table_test.cpp.o.d"
  "dws_test_support"
  "dws_test_support.pdb"
  "dws_test_support[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dws_test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
