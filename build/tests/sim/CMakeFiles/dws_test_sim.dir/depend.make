# Empty dependencies file for dws_test_sim.
# This may be replaced when dependencies are built.
