file(REMOVE_RECURSE
  "CMakeFiles/dws_test_sim.dir/engine_test.cpp.o"
  "CMakeFiles/dws_test_sim.dir/engine_test.cpp.o.d"
  "CMakeFiles/dws_test_sim.dir/network_test.cpp.o"
  "CMakeFiles/dws_test_sim.dir/network_test.cpp.o.d"
  "dws_test_sim"
  "dws_test_sim.pdb"
  "dws_test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dws_test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
