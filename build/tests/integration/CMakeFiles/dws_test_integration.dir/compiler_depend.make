# Empty compiler generated dependencies file for dws_test_integration.
# This may be replaced when dependencies are built.
