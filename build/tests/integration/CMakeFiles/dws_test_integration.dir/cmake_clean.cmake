file(REMOVE_RECURSE
  "CMakeFiles/dws_test_integration.dir/cross_validation_test.cpp.o"
  "CMakeFiles/dws_test_integration.dir/cross_validation_test.cpp.o.d"
  "CMakeFiles/dws_test_integration.dir/fuzz_test.cpp.o"
  "CMakeFiles/dws_test_integration.dir/fuzz_test.cpp.o.d"
  "CMakeFiles/dws_test_integration.dir/paper_claims_test.cpp.o"
  "CMakeFiles/dws_test_integration.dir/paper_claims_test.cpp.o.d"
  "CMakeFiles/dws_test_integration.dir/trace_pipeline_test.cpp.o"
  "CMakeFiles/dws_test_integration.dir/trace_pipeline_test.cpp.o.d"
  "dws_test_integration"
  "dws_test_integration.pdb"
  "dws_test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dws_test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
