file(REMOVE_RECURSE
  "CMakeFiles/dws_test_dag.dir/generator_test.cpp.o"
  "CMakeFiles/dws_test_dag.dir/generator_test.cpp.o.d"
  "CMakeFiles/dws_test_dag.dir/scheduler_test.cpp.o"
  "CMakeFiles/dws_test_dag.dir/scheduler_test.cpp.o.d"
  "dws_test_dag"
  "dws_test_dag.pdb"
  "dws_test_dag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dws_test_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
