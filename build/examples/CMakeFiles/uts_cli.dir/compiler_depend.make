# Empty compiler generated dependencies file for uts_cli.
# This may be replaced when dependencies are built.
