file(REMOVE_RECURSE
  "CMakeFiles/uts_cli.dir/uts_cli.cpp.o"
  "CMakeFiles/uts_cli.dir/uts_cli.cpp.o.d"
  "uts_cli"
  "uts_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uts_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
