file(REMOVE_RECURSE
  "CMakeFiles/shared_memory_uts.dir/shared_memory_uts.cpp.o"
  "CMakeFiles/shared_memory_uts.dir/shared_memory_uts.cpp.o.d"
  "shared_memory_uts"
  "shared_memory_uts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_memory_uts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
