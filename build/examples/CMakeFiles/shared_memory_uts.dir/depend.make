# Empty dependencies file for shared_memory_uts.
# This may be replaced when dependencies are built.
