# Empty dependencies file for victim_explorer.
# This may be replaced when dependencies are built.
