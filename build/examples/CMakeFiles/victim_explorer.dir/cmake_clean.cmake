file(REMOVE_RECURSE
  "CMakeFiles/victim_explorer.dir/victim_explorer.cpp.o"
  "CMakeFiles/victim_explorer.dir/victim_explorer.cpp.o.d"
  "victim_explorer"
  "victim_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/victim_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
