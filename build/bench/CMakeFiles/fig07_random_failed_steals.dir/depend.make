# Empty dependencies file for fig07_random_failed_steals.
# This may be replaced when dependencies are built.
