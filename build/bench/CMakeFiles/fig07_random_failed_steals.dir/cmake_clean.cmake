file(REMOVE_RECURSE
  "CMakeFiles/fig07_random_failed_steals.dir/fig07_random_failed_steals.cpp.o"
  "CMakeFiles/fig07_random_failed_steals.dir/fig07_random_failed_steals.cpp.o.d"
  "fig07_random_failed_steals"
  "fig07_random_failed_steals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_random_failed_steals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
