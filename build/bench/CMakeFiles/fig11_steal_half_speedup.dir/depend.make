# Empty dependencies file for fig11_steal_half_speedup.
# This may be replaced when dependencies are built.
