file(REMOVE_RECURSE
  "CMakeFiles/fig11_steal_half_speedup.dir/fig11_steal_half_speedup.cpp.o"
  "CMakeFiles/fig11_steal_half_speedup.dir/fig11_steal_half_speedup.cpp.o.d"
  "fig11_steal_half_speedup"
  "fig11_steal_half_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_steal_half_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
