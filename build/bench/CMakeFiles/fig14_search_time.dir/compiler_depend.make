# Empty compiler generated dependencies file for fig14_search_time.
# This may be replaced when dependencies are built.
