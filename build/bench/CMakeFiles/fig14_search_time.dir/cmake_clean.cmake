file(REMOVE_RECURSE
  "CMakeFiles/fig14_search_time.dir/fig14_search_time.cpp.o"
  "CMakeFiles/fig14_search_time.dir/fig14_search_time.cpp.o.d"
  "fig14_search_time"
  "fig14_search_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_search_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
