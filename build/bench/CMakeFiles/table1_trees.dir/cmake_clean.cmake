file(REMOVE_RECURSE
  "CMakeFiles/table1_trees.dir/table1_trees.cpp.o"
  "CMakeFiles/table1_trees.dir/table1_trees.cpp.o.d"
  "table1_trees"
  "table1_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
