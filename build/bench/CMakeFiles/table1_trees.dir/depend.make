# Empty dependencies file for table1_trees.
# This may be replaced when dependencies are built.
