file(REMOVE_RECURSE
  "CMakeFiles/fig02_small_scale_efficiency.dir/fig02_small_scale_efficiency.cpp.o"
  "CMakeFiles/fig02_small_scale_efficiency.dir/fig02_small_scale_efficiency.cpp.o.d"
  "fig02_small_scale_efficiency"
  "fig02_small_scale_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_small_scale_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
