# Empty compiler generated dependencies file for fig02_small_scale_efficiency.
# This may be replaced when dependencies are built.
