file(REMOVE_RECURSE
  "CMakeFiles/fig04_latency_small.dir/fig04_latency_small.cpp.o"
  "CMakeFiles/fig04_latency_small.dir/fig04_latency_small.cpp.o.d"
  "fig04_latency_small"
  "fig04_latency_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_latency_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
