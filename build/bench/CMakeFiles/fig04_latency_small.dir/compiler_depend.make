# Empty compiler generated dependencies file for fig04_latency_small.
# This may be replaced when dependencies are built.
