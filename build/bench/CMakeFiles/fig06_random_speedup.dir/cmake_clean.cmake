file(REMOVE_RECURSE
  "CMakeFiles/fig06_random_speedup.dir/fig06_random_speedup.cpp.o"
  "CMakeFiles/fig06_random_speedup.dir/fig06_random_speedup.cpp.o.d"
  "fig06_random_speedup"
  "fig06_random_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_random_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
