
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_congestion.cpp" "bench/CMakeFiles/ablation_congestion.dir/ablation_congestion.cpp.o" "gcc" "bench/CMakeFiles/ablation_congestion.dir/ablation_congestion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/dws_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/dws_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/ws/CMakeFiles/dws_ws.dir/DependInfo.cmake"
  "/root/repo/build/src/uts/CMakeFiles/dws_uts.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dws_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/dws_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dws_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dws_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dws_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
