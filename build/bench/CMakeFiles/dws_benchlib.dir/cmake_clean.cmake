file(REMOVE_RECURSE
  "CMakeFiles/dws_benchlib.dir/common.cpp.o"
  "CMakeFiles/dws_benchlib.dir/common.cpp.o.d"
  "libdws_benchlib.a"
  "libdws_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dws_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
