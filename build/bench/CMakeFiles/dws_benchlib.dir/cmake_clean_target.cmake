file(REMOVE_RECURSE
  "libdws_benchlib.a"
)
