# Empty dependencies file for dws_benchlib.
# This may be replaced when dependencies are built.
