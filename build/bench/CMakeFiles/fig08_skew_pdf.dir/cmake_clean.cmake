file(REMOVE_RECURSE
  "CMakeFiles/fig08_skew_pdf.dir/fig08_skew_pdf.cpp.o"
  "CMakeFiles/fig08_skew_pdf.dir/fig08_skew_pdf.cpp.o.d"
  "fig08_skew_pdf"
  "fig08_skew_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_skew_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
