# Empty dependencies file for fig08_skew_pdf.
# This may be replaced when dependencies are built.
