# Empty dependencies file for fig05_latency_large.
# This may be replaced when dependencies are built.
