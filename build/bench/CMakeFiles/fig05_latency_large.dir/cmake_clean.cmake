file(REMOVE_RECURSE
  "CMakeFiles/fig05_latency_large.dir/fig05_latency_large.cpp.o"
  "CMakeFiles/fig05_latency_large.dir/fig05_latency_large.cpp.o.d"
  "fig05_latency_large"
  "fig05_latency_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_latency_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
