file(REMOVE_RECURSE
  "CMakeFiles/extension_dag.dir/extension_dag.cpp.o"
  "CMakeFiles/extension_dag.dir/extension_dag.cpp.o.d"
  "extension_dag"
  "extension_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
