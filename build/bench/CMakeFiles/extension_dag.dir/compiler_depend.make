# Empty compiler generated dependencies file for extension_dag.
# This may be replaced when dependencies are built.
