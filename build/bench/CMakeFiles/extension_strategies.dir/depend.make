# Empty dependencies file for extension_strategies.
# This may be replaced when dependencies are built.
