file(REMOVE_RECURSE
  "CMakeFiles/extension_strategies.dir/extension_strategies.cpp.o"
  "CMakeFiles/extension_strategies.dir/extension_strategies.cpp.o.d"
  "extension_strategies"
  "extension_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
