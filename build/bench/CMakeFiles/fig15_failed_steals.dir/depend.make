# Empty dependencies file for fig15_failed_steals.
# This may be replaced when dependencies are built.
