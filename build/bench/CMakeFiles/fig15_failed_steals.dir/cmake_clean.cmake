file(REMOVE_RECURSE
  "CMakeFiles/fig15_failed_steals.dir/fig15_failed_steals.cpp.o"
  "CMakeFiles/fig15_failed_steals.dir/fig15_failed_steals.cpp.o.d"
  "fig15_failed_steals"
  "fig15_failed_steals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_failed_steals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
