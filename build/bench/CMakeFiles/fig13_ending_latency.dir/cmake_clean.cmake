file(REMOVE_RECURSE
  "CMakeFiles/fig13_ending_latency.dir/fig13_ending_latency.cpp.o"
  "CMakeFiles/fig13_ending_latency.dir/fig13_ending_latency.cpp.o.d"
  "fig13_ending_latency"
  "fig13_ending_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ending_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
