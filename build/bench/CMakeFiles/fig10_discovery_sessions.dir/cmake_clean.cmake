file(REMOVE_RECURSE
  "CMakeFiles/fig10_discovery_sessions.dir/fig10_discovery_sessions.cpp.o"
  "CMakeFiles/fig10_discovery_sessions.dir/fig10_discovery_sessions.cpp.o.d"
  "fig10_discovery_sessions"
  "fig10_discovery_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_discovery_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
