# Empty compiler generated dependencies file for fig03_reference_speedup.
# This may be replaced when dependencies are built.
