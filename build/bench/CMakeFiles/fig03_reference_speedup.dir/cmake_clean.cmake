file(REMOVE_RECURSE
  "CMakeFiles/fig03_reference_speedup.dir/fig03_reference_speedup.cpp.o"
  "CMakeFiles/fig03_reference_speedup.dir/fig03_reference_speedup.cpp.o.d"
  "fig03_reference_speedup"
  "fig03_reference_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_reference_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
