# Empty dependencies file for fig16_granularity.
# This may be replaced when dependencies are built.
