file(REMOVE_RECURSE
  "CMakeFiles/fig16_granularity.dir/fig16_granularity.cpp.o"
  "CMakeFiles/fig16_granularity.dir/fig16_granularity.cpp.o.d"
  "fig16_granularity"
  "fig16_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
