file(REMOVE_RECURSE
  "CMakeFiles/fig12_starting_latency.dir/fig12_starting_latency.cpp.o"
  "CMakeFiles/fig12_starting_latency.dir/fig12_starting_latency.cpp.o.d"
  "fig12_starting_latency"
  "fig12_starting_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_starting_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
