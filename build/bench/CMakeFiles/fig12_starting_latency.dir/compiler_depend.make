# Empty compiler generated dependencies file for fig12_starting_latency.
# This may be replaced when dependencies are built.
