file(REMOVE_RECURSE
  "libdws_sm.a"
)
