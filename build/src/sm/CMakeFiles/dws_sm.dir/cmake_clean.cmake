file(REMOVE_RECURSE
  "CMakeFiles/dws_sm.dir/pool.cpp.o"
  "CMakeFiles/dws_sm.dir/pool.cpp.o.d"
  "libdws_sm.a"
  "libdws_sm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dws_sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
