# Empty dependencies file for dws_sm.
# This may be replaced when dependencies are built.
