file(REMOVE_RECURSE
  "libdws_support.a"
)
