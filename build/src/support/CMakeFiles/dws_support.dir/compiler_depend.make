# Empty compiler generated dependencies file for dws_support.
# This may be replaced when dependencies are built.
