file(REMOVE_RECURSE
  "CMakeFiles/dws_support.dir/alias_table.cpp.o"
  "CMakeFiles/dws_support.dir/alias_table.cpp.o.d"
  "CMakeFiles/dws_support.dir/histogram.cpp.o"
  "CMakeFiles/dws_support.dir/histogram.cpp.o.d"
  "CMakeFiles/dws_support.dir/stats.cpp.o"
  "CMakeFiles/dws_support.dir/stats.cpp.o.d"
  "CMakeFiles/dws_support.dir/table.cpp.o"
  "CMakeFiles/dws_support.dir/table.cpp.o.d"
  "libdws_support.a"
  "libdws_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dws_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
