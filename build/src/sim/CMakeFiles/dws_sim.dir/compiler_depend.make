# Empty compiler generated dependencies file for dws_sim.
# This may be replaced when dependencies are built.
