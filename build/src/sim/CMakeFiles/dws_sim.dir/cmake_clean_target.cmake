file(REMOVE_RECURSE
  "libdws_sim.a"
)
