file(REMOVE_RECURSE
  "CMakeFiles/dws_sim.dir/engine.cpp.o"
  "CMakeFiles/dws_sim.dir/engine.cpp.o.d"
  "libdws_sim.a"
  "libdws_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dws_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
