file(REMOVE_RECURSE
  "libdws_uts.a"
)
