file(REMOVE_RECURSE
  "CMakeFiles/dws_uts.dir/params.cpp.o"
  "CMakeFiles/dws_uts.dir/params.cpp.o.d"
  "CMakeFiles/dws_uts.dir/sequential.cpp.o"
  "CMakeFiles/dws_uts.dir/sequential.cpp.o.d"
  "CMakeFiles/dws_uts.dir/tree.cpp.o"
  "CMakeFiles/dws_uts.dir/tree.cpp.o.d"
  "libdws_uts.a"
  "libdws_uts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dws_uts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
