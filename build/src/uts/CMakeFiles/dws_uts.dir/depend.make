# Empty dependencies file for dws_uts.
# This may be replaced when dependencies are built.
