
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uts/params.cpp" "src/uts/CMakeFiles/dws_uts.dir/params.cpp.o" "gcc" "src/uts/CMakeFiles/dws_uts.dir/params.cpp.o.d"
  "/root/repo/src/uts/sequential.cpp" "src/uts/CMakeFiles/dws_uts.dir/sequential.cpp.o" "gcc" "src/uts/CMakeFiles/dws_uts.dir/sequential.cpp.o.d"
  "/root/repo/src/uts/tree.cpp" "src/uts/CMakeFiles/dws_uts.dir/tree.cpp.o" "gcc" "src/uts/CMakeFiles/dws_uts.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/dws_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dws_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
