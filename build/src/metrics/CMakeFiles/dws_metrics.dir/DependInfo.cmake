
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/export.cpp" "src/metrics/CMakeFiles/dws_metrics.dir/export.cpp.o" "gcc" "src/metrics/CMakeFiles/dws_metrics.dir/export.cpp.o.d"
  "/root/repo/src/metrics/imbalance.cpp" "src/metrics/CMakeFiles/dws_metrics.dir/imbalance.cpp.o" "gcc" "src/metrics/CMakeFiles/dws_metrics.dir/imbalance.cpp.o.d"
  "/root/repo/src/metrics/occupancy.cpp" "src/metrics/CMakeFiles/dws_metrics.dir/occupancy.cpp.o" "gcc" "src/metrics/CMakeFiles/dws_metrics.dir/occupancy.cpp.o.d"
  "/root/repo/src/metrics/rank_stats.cpp" "src/metrics/CMakeFiles/dws_metrics.dir/rank_stats.cpp.o" "gcc" "src/metrics/CMakeFiles/dws_metrics.dir/rank_stats.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/metrics/CMakeFiles/dws_metrics.dir/report.cpp.o" "gcc" "src/metrics/CMakeFiles/dws_metrics.dir/report.cpp.o.d"
  "/root/repo/src/metrics/trace.cpp" "src/metrics/CMakeFiles/dws_metrics.dir/trace.cpp.o" "gcc" "src/metrics/CMakeFiles/dws_metrics.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dws_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
