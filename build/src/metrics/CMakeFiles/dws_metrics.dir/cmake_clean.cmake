file(REMOVE_RECURSE
  "CMakeFiles/dws_metrics.dir/export.cpp.o"
  "CMakeFiles/dws_metrics.dir/export.cpp.o.d"
  "CMakeFiles/dws_metrics.dir/imbalance.cpp.o"
  "CMakeFiles/dws_metrics.dir/imbalance.cpp.o.d"
  "CMakeFiles/dws_metrics.dir/occupancy.cpp.o"
  "CMakeFiles/dws_metrics.dir/occupancy.cpp.o.d"
  "CMakeFiles/dws_metrics.dir/rank_stats.cpp.o"
  "CMakeFiles/dws_metrics.dir/rank_stats.cpp.o.d"
  "CMakeFiles/dws_metrics.dir/report.cpp.o"
  "CMakeFiles/dws_metrics.dir/report.cpp.o.d"
  "CMakeFiles/dws_metrics.dir/trace.cpp.o"
  "CMakeFiles/dws_metrics.dir/trace.cpp.o.d"
  "libdws_metrics.a"
  "libdws_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dws_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
