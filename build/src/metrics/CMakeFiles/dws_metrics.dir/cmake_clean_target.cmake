file(REMOVE_RECURSE
  "libdws_metrics.a"
)
