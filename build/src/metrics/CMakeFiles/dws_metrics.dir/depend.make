# Empty dependencies file for dws_metrics.
# This may be replaced when dependencies are built.
