file(REMOVE_RECURSE
  "libdws_dag.a"
)
