file(REMOVE_RECURSE
  "CMakeFiles/dws_dag.dir/generator.cpp.o"
  "CMakeFiles/dws_dag.dir/generator.cpp.o.d"
  "CMakeFiles/dws_dag.dir/scheduler.cpp.o"
  "CMakeFiles/dws_dag.dir/scheduler.cpp.o.d"
  "libdws_dag.a"
  "libdws_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dws_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
