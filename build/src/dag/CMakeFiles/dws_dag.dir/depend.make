# Empty dependencies file for dws_dag.
# This may be replaced when dependencies are built.
