file(REMOVE_RECURSE
  "libdws_crypto.a"
)
