file(REMOVE_RECURSE
  "CMakeFiles/dws_crypto.dir/sha1.cpp.o"
  "CMakeFiles/dws_crypto.dir/sha1.cpp.o.d"
  "CMakeFiles/dws_crypto.dir/uts_rng.cpp.o"
  "CMakeFiles/dws_crypto.dir/uts_rng.cpp.o.d"
  "libdws_crypto.a"
  "libdws_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dws_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
