
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/allocation.cpp" "src/topo/CMakeFiles/dws_topo.dir/allocation.cpp.o" "gcc" "src/topo/CMakeFiles/dws_topo.dir/allocation.cpp.o.d"
  "/root/repo/src/topo/latency.cpp" "src/topo/CMakeFiles/dws_topo.dir/latency.cpp.o" "gcc" "src/topo/CMakeFiles/dws_topo.dir/latency.cpp.o.d"
  "/root/repo/src/topo/tofu.cpp" "src/topo/CMakeFiles/dws_topo.dir/tofu.cpp.o" "gcc" "src/topo/CMakeFiles/dws_topo.dir/tofu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dws_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
