# Empty compiler generated dependencies file for dws_topo.
# This may be replaced when dependencies are built.
