file(REMOVE_RECURSE
  "CMakeFiles/dws_topo.dir/allocation.cpp.o"
  "CMakeFiles/dws_topo.dir/allocation.cpp.o.d"
  "CMakeFiles/dws_topo.dir/latency.cpp.o"
  "CMakeFiles/dws_topo.dir/latency.cpp.o.d"
  "CMakeFiles/dws_topo.dir/tofu.cpp.o"
  "CMakeFiles/dws_topo.dir/tofu.cpp.o.d"
  "libdws_topo.a"
  "libdws_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dws_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
