file(REMOVE_RECURSE
  "libdws_topo.a"
)
