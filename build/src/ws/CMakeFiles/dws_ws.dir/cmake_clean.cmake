file(REMOVE_RECURSE
  "CMakeFiles/dws_ws.dir/chunk_stack.cpp.o"
  "CMakeFiles/dws_ws.dir/chunk_stack.cpp.o.d"
  "CMakeFiles/dws_ws.dir/scheduler.cpp.o"
  "CMakeFiles/dws_ws.dir/scheduler.cpp.o.d"
  "CMakeFiles/dws_ws.dir/victim.cpp.o"
  "CMakeFiles/dws_ws.dir/victim.cpp.o.d"
  "CMakeFiles/dws_ws.dir/worker.cpp.o"
  "CMakeFiles/dws_ws.dir/worker.cpp.o.d"
  "libdws_ws.a"
  "libdws_ws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dws_ws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
