file(REMOVE_RECURSE
  "libdws_ws.a"
)
