# Empty compiler generated dependencies file for dws_ws.
# This may be replaced when dependencies are built.
