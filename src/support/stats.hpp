#pragma once

#include <cstdint>
#include <vector>

/// Streaming and batch statistics used by the metrics layer and the bench
/// harness (average search time, session durations, failed-steal counts...).
namespace dws::support {

/// Welford's online algorithm: numerically stable mean/variance without
/// storing samples. Cheap enough to keep one per rank per statistic.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merge another accumulator into this one (Chan et al. parallel update).
  /// Used to combine per-rank statistics into job-wide ones.
  void merge(const RunningStats& other) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile of a sample set (linear interpolation between order
/// statistics, the "type 7" definition used by numpy). Sorts a copy.
double quantile(std::vector<double> samples, double q);

/// Survival function of the chi-square distribution: P(X >= x) for X with
/// `dof` degrees of freedom — i.e. the p-value of a chi-square
/// goodness-of-fit statistic. Computed as the regularized upper incomplete
/// gamma function Q(dof/2, x/2) (series for small x, continued fraction
/// otherwise). Accurate to ~1e-10, plenty for hypothesis screening.
double chi_square_sf(double x, double dof);

}  // namespace dws::support
