#include "support/table.hpp"

#include <algorithm>
#include <cstdio>

#include "support/check.hpp"

namespace dws::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DWS_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  DWS_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += "  ";
      out.append(widths[c] - row[c].size(), ' ');
      out += row[c];
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += "  ";
    out.append(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string Table::render_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string fmt(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

}  // namespace dws::support
