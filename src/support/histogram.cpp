#include "support/histogram.hpp"

#include <algorithm>
#include <cstdio>

#include "support/check.hpp"

namespace dws::support {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  DWS_CHECK(hi > lo);
  DWS_CHECK(bins > 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bin_width_);
  idx = std::min(idx, counts_.size() - 1);  // guard fp edge at hi_
  ++counts_[idx];
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  DWS_CHECK(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  DWS_CHECK(i < counts_.size());
  return lo_ + bin_width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + bin_width_; }

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[256];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    std::snprintf(line, sizeof line, "[%12.4g, %12.4g) %10llu ", bin_lo(i),
                  bin_hi(i), static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace dws::support
