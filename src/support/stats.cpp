#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace dws::support {

void RunningStats::add(double x) noexcept {
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::vector<double> samples, double q) {
  DWS_CHECK(!samples.empty());
  DWS_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace dws::support
