#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace dws::support {

void RunningStats::add(double x) noexcept {
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::vector<double> samples, double q) {
  DWS_CHECK(!samples.empty());
  DWS_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

namespace {

// Regularized lower incomplete gamma P(a, x) by its power series; converges
// fast for x < a + 1 (Numerical Recipes "gser").
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * 1e-14) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Regularized upper incomplete gamma Q(a, x) by Lentz's continued fraction;
// converges fast for x >= a + 1 (Numerical Recipes "gcf").
double gamma_q_cf(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-14) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double chi_square_sf(double x, double dof) {
  DWS_CHECK(dof > 0.0);
  if (x <= 0.0) return 1.0;
  const double a = dof / 2.0;
  const double xs = x / 2.0;
  if (xs < a + 1.0) return 1.0 - gamma_p_series(a, xs);
  return gamma_q_cf(a, xs);
}

}  // namespace dws::support
