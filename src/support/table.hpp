#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dws::support {

/// Console table printer used by every bench binary so that regenerated
/// figures/tables share one readable format:
///
///   ranks  alloc  speedup
///   -----  -----  -------
///    1024    1/N   512.3
///
/// Cells are strings; callers format numbers with the helpers below so the
/// whole harness rounds consistently.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with columns right-aligned and padded; includes the header rule.
  std::string render() const;

  /// Comma-separated rendering for downstream plotting.
  std::string render_csv() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal formatting ("12.34").
std::string fmt(double v, int precision = 2);
std::string fmt(std::uint64_t v);
std::string fmt(std::int64_t v);
/// Percentage with % sign ("43.0%").
std::string fmt_pct(double fraction, int precision = 1);

}  // namespace dws::support
