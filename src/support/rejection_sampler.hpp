#pragma once

#include <cstdint>
#include <functional>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dws::support {

/// O(1)-memory sampler for a discrete distribution given by a weight
/// *function* rather than a materialised weight vector.
///
/// Rationale: the paper's skewed victim selection builds, on every MPI rank,
/// an N-entry GSL discrete distribution — fine when each rank is its own
/// process, but our simulator hosts all N ranks in one address space, and N
/// alias tables of N entries is O(N^2) memory (≈0.8 GiB at N = 8192). The
/// rejection sampler draws a candidate uniformly and accepts with probability
/// w(candidate)/w_max; it produces the *same* distribution as the alias table
/// (verified by tests) with no per-rank storage.
///
/// Acceptance rate equals mean(w)/max(w). For the 1/euclidean-distance weights
/// this stays around 5-20% on realistic allocations, i.e. a handful of cheap
/// distance evaluations per steal.
template <typename WeightFn>
class RejectionSampler {
 public:
  /// Bound on consecutive rejections before sample() aborts. With any sane
  /// acceptance rate the probability of hitting it is effectively zero, so
  /// reaching it means the weight function is broken.
  static constexpr std::uint64_t kMaxIterations = 1'000'000;

  /// `weight(i)` must return a value in [0, w_max] for all i in [0, n);
  /// at least one index must have positive weight (checked — an all-zero
  /// weight vector, e.g. from underflow on a degenerate allocation, would
  /// otherwise make sample() spin forever).
  RejectionSampler(std::size_t n, double w_max, WeightFn weight)
      : n_(n), w_max_(w_max), weight_(std::move(weight)) {
    DWS_CHECK(n_ > 0);
    DWS_CHECK(w_max_ > 0.0);
    bool any_positive = false;
    for (std::size_t i = 0; i < n_ && !any_positive; ++i) {
      any_positive = weight_(i) > 0.0;
    }
    DWS_CHECK(any_positive && "all weights are zero");
  }

  std::size_t sample(Xoshiro256StarStar& rng) const {
    // The constructor guarantees a positive weight, so this accepts with
    // probability 1; the bound makes a broken weight function loud instead
    // of a silent infinite loop.
    for (std::uint64_t iter = 0; iter < kMaxIterations; ++iter) {
      const auto candidate = static_cast<std::size_t>(rng.next_below(n_));
      const double w = weight_(candidate);
      DWS_DCHECK(w >= 0.0 && w <= w_max_);
      if (w <= 0.0) continue;
      if (rng.next_double() * w_max_ < w) return candidate;
    }
    DWS_CHECK(false && "no acceptance within the iteration bound");
    return 0;  // unreachable
  }

 private:
  std::size_t n_;
  double w_max_;
  WeightFn weight_;
};

template <typename WeightFn>
RejectionSampler(std::size_t, double, WeightFn) -> RejectionSampler<WeightFn>;

}  // namespace dws::support
