#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace dws::support {

/// Walker's alias method for O(1) sampling from an arbitrary discrete
/// distribution.
///
/// This replaces the paper's use of GSL (`gsl_ran_discrete_preproc` /
/// `gsl_ran_discrete`), which is how the original study sampled the
/// distance-skewed victim distribution. Construction is O(n); each draw
/// consumes one uniform 64-bit value split into a bucket index and a
/// coin flip.
class AliasTable {
 public:
  /// Build from unnormalised non-negative weights; at least one weight must
  /// be positive. Zero-weight entries are never returned.
  explicit AliasTable(const std::vector<double>& weights);

  std::size_t size() const noexcept { return prob_.size(); }

  /// Probability of drawing index i (normalised, for tests/inspection).
  double probability(std::size_t i) const;

  std::size_t sample(Xoshiro256StarStar& rng) const noexcept;

  /// Memory footprint in bytes, reported by the ablation bench comparing
  /// alias tables against rejection sampling at large rank counts.
  std::size_t memory_bytes() const noexcept {
    return prob_.size() * (sizeof(double) + sizeof(std::uint32_t)) +
           norm_.size() * sizeof(double);
  }

 private:
  std::vector<double> prob_;          // acceptance threshold per bucket
  std::vector<std::uint32_t> alias_;  // fallback index per bucket
  std::vector<double> norm_;          // normalised weights (kept for probability())
};

}  // namespace dws::support
