#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dws::support {

/// Fixed-width linear histogram over [lo, hi). Out-of-range samples land in
/// saturating under/overflow buckets so totals are never lost — the metrics
/// layer relies on `total()` matching the number of recorded events.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const;
  /// Inclusive lower edge of bin i.
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }

  /// Multi-line ASCII rendering ("#### " bars), used by trace_viewer and for
  /// quick eyeballing in bench output.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace dws::support
