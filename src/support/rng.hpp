#pragma once

#include <cstdint>

/// Small, fast PRNGs used by the *infrastructure* (victim selection, sampler
/// internals, test data). They are deliberately separate from the SHA-1 based
/// splittable RNG in crypto/, which defines the UTS tree itself: the tree must
/// be bit-reproducible across machines, while these only need to be good and
/// fast.
namespace dws::support {

/// SplitMix64 (Steele, Lea, Flood 2014). Used to seed Xoshiro and as a cheap
/// standalone generator for deterministic test fixtures.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman, Vigna). All-purpose 64-bit generator with
/// 256-bit state; passes BigCrush. Satisfies UniformRandomBitGenerator so it
/// can drive <random> distributions where convenient.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) by Lemire's multiply-shift reduction
  /// (bias negligible for bound << 2^64; fine for rank counts).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace dws::support
