#pragma once

#include <optional>
#include <string>
#include <utility>

#include "support/check.hpp"

/// Minimal std::expected-style result types (the project targets C++20,
/// which predates <expected>). Used wherever a caller can act on a failure:
/// configuration validation, CLI parsing, sweep expansion. Invariant
/// violations inside a running simulation remain DWS_CHECKs — those mean the
/// run itself is meaningless and there is nothing sensible to return.
namespace dws::support {

/// Success, or an error message. The Expected<void> analogue.
class Status {
 public:
  static Status ok() { return Status(); }
  static Status error(std::string message) {
    Status s;
    s.error_ = std::move(message);
    return s;
  }

  explicit operator bool() const noexcept { return !error_.has_value(); }
  bool is_ok() const noexcept { return !error_.has_value(); }

  /// The error message; only valid when !is_ok().
  const std::string& message() const {
    DWS_CHECK(error_.has_value());
    return *error_;
  }

 private:
  Status() = default;
  std::optional<std::string> error_;
};

/// A value of type T, or an error message.
template <typename T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  static Expected failure(std::string message) {
    Expected e;
    e.error_ = std::move(message);
    return e;
  }
  static Expected failure(const Status& status) {
    return failure(status.message());
  }

  explicit operator bool() const noexcept { return value_.has_value(); }
  bool has_value() const noexcept { return value_.has_value(); }

  const T& value() const& {
    DWS_CHECK(value_.has_value());
    return *value_;
  }
  T& value() & {
    DWS_CHECK(value_.has_value());
    return *value_;
  }
  T&& value() && {
    DWS_CHECK(value_.has_value());
    return *std::move(value_);
  }

  const std::string& error() const {
    DWS_CHECK(!value_.has_value());
    return error_;
  }

 private:
  Expected() = default;
  std::optional<T> value_;
  std::string error_;
};

}  // namespace dws::support
