#pragma once

#include <cstdio>
#include <cstdlib>

/// Always-on invariant checks.
///
/// The simulator and scheduler are deterministic state machines: a violated
/// invariant means the run is meaningless, so we fail fast rather than limp
/// along. DWS_CHECK stays enabled in release builds; DWS_DCHECK compiles away
/// outside debug builds and is meant for hot paths (per-event, per-node).
namespace dws::support {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "DWS_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace dws::support

#define DWS_CHECK(expr)                                          \
  do {                                                           \
    if (!(expr)) {                                               \
      ::dws::support::check_failed(#expr, __FILE__, __LINE__);   \
    }                                                            \
  } while (0)

#ifndef NDEBUG
#define DWS_DCHECK(expr) DWS_CHECK(expr)
#else
#define DWS_DCHECK(expr) \
  do {                   \
  } while (0)
#endif
