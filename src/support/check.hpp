#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>

/// Always-on invariant checks.
///
/// The simulator and scheduler are deterministic state machines: a violated
/// invariant means the run is meaningless, so we fail fast rather than limp
/// along. DWS_CHECK stays enabled in release builds; DWS_DCHECK compiles away
/// outside debug builds and is meant for hot paths (per-event, per-node).
namespace dws::support {

/// Invoked on DWS_CHECK failure before the default report-and-abort. A
/// handler may throw to transfer control — exp::SweepRunner installs one so
/// a failed simulation cancels the sweep instead of killing the process. A
/// handler that returns normally falls through to abort.
using CheckHandler = void (*)(const char* expr, const char* file, int line);

inline std::atomic<CheckHandler>& check_handler_slot() {
  static std::atomic<CheckHandler> handler{nullptr};
  return handler;
}

/// Installs `handler` (nullptr restores the default abort) and returns the
/// previous one so callers can scope the override.
inline CheckHandler set_check_handler(CheckHandler handler) {
  return check_handler_slot().exchange(handler);
}

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  if (CheckHandler handler = check_handler_slot().load()) {
    handler(expr, file, line);
  }
  std::fprintf(stderr, "DWS_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace dws::support

#define DWS_CHECK(expr)                                          \
  do {                                                           \
    if (!(expr)) {                                               \
      ::dws::support::check_failed(#expr, __FILE__, __LINE__);   \
    }                                                            \
  } while (0)

#ifndef NDEBUG
#define DWS_DCHECK(expr) DWS_CHECK(expr)
#else
#define DWS_DCHECK(expr) \
  do {                   \
  } while (0)
#endif
