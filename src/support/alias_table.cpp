#include "support/alias_table.hpp"

#include "support/check.hpp"

namespace dws::support {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  DWS_CHECK(n > 0);
  DWS_CHECK(n <= UINT32_MAX);

  double total = 0.0;
  for (double w : weights) {
    DWS_CHECK(w >= 0.0);
    total += w;
  }
  DWS_CHECK(total > 0.0);

  norm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) norm_[i] = weights[i] / total;

  // Vose's stable variant: partition scaled probabilities into small/large
  // worklists and pair each small bucket with a large donor.
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = norm_[i] * static_cast<double>(n);

  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are 1.0 up to rounding.
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;
}

double AliasTable::probability(std::size_t i) const {
  DWS_CHECK(i < norm_.size());
  return norm_[i];
}

std::size_t AliasTable::sample(Xoshiro256StarStar& rng) const noexcept {
  const std::size_t bucket = static_cast<std::size_t>(rng.next_below(prob_.size()));
  const double coin = rng.next_double();
  return coin < prob_[bucket] ? bucket : alias_[bucket];
}

}  // namespace dws::support
