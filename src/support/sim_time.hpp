#pragma once

#include <cstdint>

/// Simulated time. One unit = 1 nanosecond of virtual time, stored as a
/// signed 64-bit count (signed so durations/differences are safe). 2^63 ns is
/// ~292 years of virtual time — far beyond any run.
namespace dws::support {

using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / 1e9;
}
constexpr double to_millis(SimTime t) noexcept {
  return static_cast<double>(t) / 1e6;
}
constexpr double to_micros(SimTime t) noexcept {
  return static_cast<double>(t) / 1e3;
}

constexpr SimTime from_micros(double us) noexcept {
  return static_cast<SimTime>(us * 1e3);
}
constexpr SimTime from_seconds(double s) noexcept {
  return static_cast<SimTime>(s * 1e9);
}

}  // namespace dws::support
