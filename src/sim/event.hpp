#pragma once

#include <cstdint>

#include "support/sim_time.hpp"

namespace dws::sim {

class EventSink;

/// Typed event vocabulary of the simulator (see DESIGN.md §9). The engine
/// itself interprets only kGeneric (the std::function escape hatch used by
/// tests and examples); every other kind belongs to the EventSink that
/// scheduled it, which decodes `rank`/`payload` accordingly. Keeping the
/// full table in one place documents the event model and keeps kinds unique
/// across layers, even though sim/ never dispatches the ws/dag ones.
enum class EventKind : std::uint32_t {
  kGeneric = 0,       ///< engine-owned closure; payload = action-pool handle
  kNetworkDeliver,    ///< sim::Network: rank = dst, payload = in-flight handle
  kWorkerStart,       ///< ws::Worker t = 0 bootstrap; rank = worker rank
  kWorkerStep,        ///< ws::Worker poll/expand boundary; rank = worker rank
  kDeferredResponse,  ///< ws::Worker packaged steal response leaving the rank;
                      ///< payload = RunContext deferred-send pool handle
  kDagStart,          ///< dag worker bootstrap; rank = worker rank
  kDagTaskComplete,   ///< dag task completion; payload = TaskId
  kStealTimeout,      ///< ws::Worker steal-request timer; payload = request id
  kTokenTimeout,      ///< ws::Worker rank-0 token timer; payload = generation
  kSvcArrival,        ///< svc::Controller job arrival; payload = job id. Lives
                      ///< only on the controller's shard (never crosses
                      ///< shards) and, being the largest kind, sorts after
                      ///< every other event at the same instant.
};

/// One scheduled event: a fixed-size POD record. The hot path never
/// allocates — a typed event is 56 bytes copied into the calendar queue, and
/// dispatch is a single indirect call through `sink`. Payload data larger
/// than the inline `payload` handle lives in a SlabPool owned by whoever
/// scheduled the event (the network's in-flight messages, the worker's
/// packaged responses, the engine's generic actions).
///
/// Ordering (DESIGN.md §12): events fire in
///     (time, t_sched, kind, rank, src, seq)
/// order, in serial and sharded runs alike. `seq` is the local insertion
/// order, so events whose structural key ties fire FIFO.
///
/// Why this key and not plain (time, seq): the sharded core merges each
/// shard's local stream with deliveries injected from other shards, and a
/// cross-shard delivery's serial `seq` — its global insertion rank — is
/// unknowable without serializing the run. The structural fields close that
/// gap by making every cross-shard tie resolvable without seq:
///
///  - the only event kind that crosses shards is kNetworkDeliver, so `kind`
///    separates deliveries from everything else;
///  - two deliveries that still tie share (rank = destination, src =
///    sender); same sender means same sending shard, and same-shard events
///    keep their sender-side order through the FIFO mailbox drain.
///
/// Hence `seq` only ever breaks ties between events from the *same* shard,
/// where local insertion order equals serial insertion order — the merged
/// stream is a deterministic total order independent of the shard count.
/// Engine::merge_ambiguities() counts (structurally impossible) violations.
struct Event {
  support::SimTime time = 0;
  support::SimTime t_sched = 0;    ///< virtual time the schedule call ran at
  std::uint64_t seq = 0;           ///< local insertion order; final tiebreak
  EventSink* sink = nullptr;       ///< null => engine-owned kGeneric action
  EventKind kind = EventKind::kGeneric;
  std::uint32_t rank = 0;          ///< kind-defined (usually the target rank)
  std::uint32_t origin = 0;        ///< scheduling shard (0 when unsharded)
  std::uint32_t payload = 0;       ///< kind-defined pool handle / small value
  std::uint32_t src = 0;           ///< ordering refinement: sending rank for
                                   ///< kNetworkDeliver, 0 for every other kind
};

/// Receiver of typed events. Implemented by sim::Network, ws::Worker and
/// dag's workers; the engine performs exactly one indirect call per typed
/// event. Sinks are non-owning and must outlive every event they scheduled.
class EventSink {
 public:
  virtual void on_event(const Event& ev) = 0;

 protected:
  ~EventSink() = default;
};

}  // namespace dws::sim
