#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>

#include "sim/engine.hpp"
#include "support/sim_time.hpp"
#include "topo/latency.hpp"

namespace dws::sim {

/// Aggregate traffic counters, reported by the bench harness.
struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t intra_node_messages = 0;
  double max_load_hops = 0.0;  ///< peak in-flight hop-units (congestion)
};

/// Fluid-approximation congestion model. Every in-flight inter-node message
/// occupies `hops` link-units; the network-portion of a new message's
/// latency is scaled by (1 + load / capacity_hops). This captures the effect
/// the paper attributes to the physical scale of the K Computer: uniform
/// random steal traffic crosses many links and saturates the fabric, while
/// distance-skewed traffic stays local and cheap. Intra-node messages are
/// unaffected. Disabled by default (tests exercise raw latencies); the bench
/// harness enables it with a capacity derived from the allocation's link
/// count (see ws::RunConfig::enable_congestion and bench/common.hpp).
struct CongestionParams {
  bool enabled = false;
  /// In-flight hop-units at which the network latency doubles. A reasonable
  /// physical anchor is the number of links inside the job's allocation
  /// (~6 links/node in a 6D torus).
  double capacity_hops = 1.0;
};

/// Point-to-point message transport between simulated ranks.
///
/// Models what the paper's UTS implementation gets from MPI two-sided
/// messaging: asynchronous sends whose delivery delay comes from the physical
/// distance between ranks (LatencyModel), with per-channel non-overtaking
/// (MPI's ordering guarantee for a (source, dest) pair). Delivery invokes a
/// callback at the arrival time; the work-stealing worker layered above
/// decides what "receiving" means (it polls between node expansions, like the
/// reference implementation polls MPI).
template <typename Message>
class Network {
 public:
  /// `deliver(dst, msg)` runs at each message's arrival time.
  using DeliverFn = std::function<void(topo::Rank dst, Message msg)>;

  Network(Engine& engine, const topo::LatencyModel& latency, DeliverFn deliver,
          CongestionParams congestion = {})
      : engine_(&engine),
        latency_(&latency),
        deliver_(std::move(deliver)),
        congestion_(congestion) {
    DWS_CHECK(deliver_ != nullptr);
    DWS_CHECK(!congestion_.enabled || congestion_.capacity_hops > 0.0);
  }

  /// Send `msg` of `bytes` payload bytes from `src` to `dst` (src != dst).
  void send(topo::Rank src, topo::Rank dst, Message msg, std::uint32_t bytes) {
    DWS_CHECK(src != dst);
    support::SimTime latency = latency_->message_latency(src, dst, bytes);
    std::int32_t hops = 0;
    if (congestion_.enabled && !latency_->layout().same_node(src, dst)) {
      hops = latency_->hops(src, dst);
      const double multiplier = 1.0 + load_hops_ / congestion_.capacity_hops;
      latency = static_cast<support::SimTime>(
          static_cast<double>(latency) * multiplier);
      load_hops_ += hops;
      stats_.max_load_hops = std::max(stats_.max_load_hops, load_hops_);
    }
    support::SimTime arrival = engine_->now() + latency;

    // MPI non-overtaking: a later send on the same channel may not arrive
    // before an earlier one (possible here when a small message chases a
    // large one). Clamp to the channel's previous arrival time.
    auto [it, inserted] = last_arrival_.try_emplace(channel_key(src, dst), arrival);
    if (!inserted) {
      if (arrival < it->second) arrival = it->second;
      it->second = arrival;
    }

    ++stats_.messages;
    stats_.bytes += bytes;
    if (latency_->layout().same_node(src, dst)) ++stats_.intra_node_messages;

    engine_->schedule_at(arrival,
                         [this, dst, hops, m = std::move(msg)]() mutable {
                           load_hops_ -= hops;
                           deliver_(dst, std::move(m));
                         });
  }

  const NetworkStats& stats() const noexcept { return stats_; }

 private:
  static std::uint64_t channel_key(topo::Rank src, topo::Rank dst) noexcept {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  Engine* engine_;
  const topo::LatencyModel* latency_;
  DeliverFn deliver_;
  CongestionParams congestion_;
  double load_hops_ = 0.0;  // in-flight hop-units (congestion state)
  NetworkStats stats_;
  std::unordered_map<std::uint64_t, support::SimTime> last_arrival_;
};

}  // namespace dws::sim
