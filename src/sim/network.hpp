#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "sim/engine.hpp"
#include "support/sim_time.hpp"
#include "topo/latency.hpp"

namespace dws::sim {

/// Aggregate traffic counters, reported by the bench harness.
struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t intra_node_messages = 0;
  double max_load_hops = 0.0;  ///< peak in-flight hop-units (congestion)
  /// Peak number of (src, dst) channels with a delivery in flight. Channel
  /// ordering state is retired as soon as its last delivery fires, so this
  /// bounds the non-overtaking map instead of the all-pairs worst case.
  std::uint64_t peak_channels = 0;
};

/// Fluid-approximation congestion model. Every in-flight inter-node message
/// occupies `hops` link-units; the network-portion of a new message's
/// latency is scaled by (1 + load / capacity_hops). This captures the effect
/// the paper attributes to the physical scale of the K Computer: uniform
/// random steal traffic crosses many links and saturates the fabric, while
/// distance-skewed traffic stays local and cheap. Intra-node messages are
/// unaffected. Disabled by default (tests exercise raw latencies); the bench
/// harness enables it with a capacity derived from the allocation's link
/// count (see ws::RunConfig::enable_congestion and bench/common.hpp).
struct CongestionParams {
  bool enabled = false;
  /// In-flight hop-units at which the network latency doubles. A reasonable
  /// physical anchor is the number of links inside the job's allocation
  /// (~6 links/node in a 6D torus).
  double capacity_hops = 1.0;
};

/// Point-to-point message transport between simulated ranks.
///
/// Models what the paper's UTS implementation gets from MPI two-sided
/// messaging: asynchronous sends whose delivery delay comes from the physical
/// distance between ranks (LatencyModel), with per-channel non-overtaking
/// (MPI's ordering guarantee for a (source, dest) pair). Delivery invokes
/// `Deliver(dst, msg)` at the arrival time; the work-stealing worker layered
/// above decides what "receiving" means (it polls between node expansions,
/// like the reference implementation polls MPI).
///
/// Event-core integration: a send parks the message in a slab pool and
/// schedules one typed kNetworkDeliver event carrying the pool handle — no
/// per-message closure, no per-message allocation beyond what the message
/// itself owns. `Deliver` defaults to std::function for tests; the ws and
/// dag schedulers pass a concrete functor so delivery is a direct call.
///
/// Channel lifecycle: the non-overtaking clamp needs a channel's previous
/// arrival time only while a delivery is still in flight — once the last one
/// fires, any later send on that channel arrives at now + latency >= every
/// past arrival, so the entry is retired (its map node is recycled to keep
/// the steady state allocation-free). NetworkStats::peak_channels records
/// the high-water mark of live channels.
///
/// Fault injection (DESIGN.md §10): with a fault::Injector attached, each
/// send first asks the injector for a plan. A dropped message is still
/// counted in NetworkStats (the send happened; only delivery is lost) but
/// schedules nothing and adds no congestion load. A duplicated message is
/// delivered twice — the copy gets its own jitter draw but both obey the
/// channel clamp — and counted twice. Latency multipliers (jitter, degraded
/// links) scale the full congested latency of each delivery.
template <typename Message,
          typename Deliver = std::function<void(topo::Rank, Message)>>
class Network final : public EventSink {
 public:
  Network(Engine& engine, const topo::LatencyModel& latency, Deliver deliver,
          CongestionParams congestion = {},
          fault::Injector* faults = nullptr)
      : engine_(&engine),
        latency_(&latency),
        deliver_(std::move(deliver)),
        congestion_(congestion),
        faults_(faults) {
    DWS_CHECK(!congestion_.enabled || congestion_.capacity_hops > 0.0);
  }

  /// Send `msg` of `bytes` payload bytes from `src` to `dst` (src != dst).
  /// `cls` declares the message's loss semantics to the fault injector; it
  /// is ignored when no injector is attached.
  void send(topo::Rank src, topo::Rank dst, Message msg, std::uint32_t bytes,
            fault::MsgClass cls = fault::MsgClass::kReliable) {
    DWS_CHECK(src != dst);
    if (faults_ != nullptr && faults_->enabled()) {
      const fault::SendPlan plan =
          faults_->plan_send(channel_key(src, dst), cls, bytes);
      if (plan.drop) {
        // The send still happened from the sender's point of view: count it
        // so send-side ledgers (audit) and NetworkStats agree, but schedule
        // no delivery and load no links.
        count_message(src, dst, bytes);
        return;
      }
      if (plan.duplicate) {
        enqueue(src, dst, Message(msg), bytes, plan.dup_latency_mult);
      }
      enqueue(src, dst, std::move(msg), bytes, plan.latency_mult);
      return;
    }
    enqueue(src, dst, std::move(msg), bytes, 1.0);
  }

  /// kNetworkDeliver dispatch: unparks the message, drains its congestion
  /// load, retires the channel if this was its last in-flight delivery, and
  /// hands the message to the receiver.
  void on_event(const Event& ev) override {
    InFlight flight = in_flight_.take(ev.payload);
    load_hops_ -= flight.hops;
    retire_channel(flight.channel);
    deliver_(static_cast<topo::Rank>(ev.rank), std::move(flight.msg));
  }

  const NetworkStats& stats() const noexcept { return stats_; }
  /// Channels with at least one delivery currently in flight.
  std::size_t active_channels() const noexcept { return channels_.size(); }

 private:
  struct Channel {
    support::SimTime last_arrival = 0;
    std::uint32_t in_flight = 0;
  };
  struct InFlight {
    Message msg;
    std::uint64_t channel = 0;
    std::int32_t hops = 0;
  };
  using ChannelMap = std::unordered_map<std::uint64_t, Channel>;

  static std::uint64_t channel_key(topo::Rank src, topo::Rank dst) noexcept {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  /// One actual delivery: congested latency, fault latency multiplier,
  /// channel clamp, stats, and the kNetworkDeliver event.
  void enqueue(topo::Rank src, topo::Rank dst, Message msg,
               std::uint32_t bytes, double latency_mult) {
    support::SimTime latency = latency_->message_latency(src, dst, bytes);
    std::int32_t hops = 0;
    if (congestion_.enabled && !latency_->layout().same_node(src, dst)) {
      hops = latency_->hops(src, dst);
      const double multiplier = 1.0 + load_hops_ / congestion_.capacity_hops;
      latency = static_cast<support::SimTime>(
          static_cast<double>(latency) * multiplier);
      load_hops_ += hops;
      stats_.max_load_hops = std::max(stats_.max_load_hops, load_hops_);
    }
    if (latency_mult != 1.0) {
      latency = static_cast<support::SimTime>(
          static_cast<double>(latency) * latency_mult);
    }
    support::SimTime arrival = engine_->now() + latency;

    // MPI non-overtaking: a later send on the same channel may not arrive
    // before an earlier one (possible here when a small message chases a
    // large one). Clamp to the channel's previous arrival time.
    const std::uint64_t key = channel_key(src, dst);
    if (const auto it = channels_.find(key); it != channels_.end()) {
      if (arrival < it->second.last_arrival) arrival = it->second.last_arrival;
      it->second.last_arrival = arrival;
      ++it->second.in_flight;
    } else {
      open_channel(key, arrival);
    }

    count_message(src, dst, bytes);

    const std::uint32_t handle =
        in_flight_.acquire(InFlight{std::move(msg), key, hops});
    engine_->schedule_at(arrival, *this, EventKind::kNetworkDeliver, dst,
                         handle);
  }

  void count_message(topo::Rank src, topo::Rank dst, std::uint32_t bytes) {
    ++stats_.messages;
    stats_.bytes += bytes;
    if (latency_->layout().same_node(src, dst)) ++stats_.intra_node_messages;
  }

  void open_channel(std::uint64_t key, support::SimTime arrival) {
    if (spare_nodes_.empty()) {
      channels_.emplace(key, Channel{arrival, 1});
    } else {
      // Recycle a retired map node: channel churn stays allocation-free.
      auto node = std::move(spare_nodes_.back());
      spare_nodes_.pop_back();
      node.key() = key;
      node.mapped() = Channel{arrival, 1};
      channels_.insert(std::move(node));
    }
    stats_.peak_channels =
        std::max(stats_.peak_channels,
                 static_cast<std::uint64_t>(channels_.size()));
  }

  void retire_channel(std::uint64_t key) {
    const auto it = channels_.find(key);
    DWS_DCHECK(it != channels_.end());
    DWS_DCHECK(it->second.in_flight > 0);
    if (--it->second.in_flight == 0) {
      spare_nodes_.push_back(channels_.extract(it));
    }
  }

  Engine* engine_;
  const topo::LatencyModel* latency_;
  Deliver deliver_;
  CongestionParams congestion_;
  fault::Injector* faults_;
  double load_hops_ = 0.0;  // in-flight hop-units (congestion state)
  NetworkStats stats_;
  ChannelMap channels_;
  std::vector<typename ChannelMap::node_type> spare_nodes_;
  SlabPool<InFlight> in_flight_;
};

}  // namespace dws::sim
