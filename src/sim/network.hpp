#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "sim/engine.hpp"
#include "support/sim_time.hpp"
#include "topo/latency.hpp"

namespace dws::sim {

/// Aggregate traffic counters, reported by the bench harness.
struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t intra_node_messages = 0;
  /// Peak per-window congestion load: max over window boundaries of the
  /// hop-units of flights crossing that boundary (see CongestionLedger).
  double max_load_hops = 0.0;
  /// Peak number of (src, dst) channels with a delivery in flight. Channel
  /// ordering state is retired as soon as its last delivery fires, so this
  /// bounds the non-overtaking map instead of the all-pairs worst case.
  std::uint64_t peak_channels = 0;
};

/// Fluid-approximation congestion model, windowed for determinism. Time is
/// cut into fixed windows of length `window` (ns). Every inter-node flight
/// contributes its `hops` link-units to each window *boundary* j·window that
/// falls strictly after its send and at-or-before its arrival; a send in
/// window k reads the load folded at boundary k — i.e. the hop-units of
/// flights that were in the air as window k opened — and scales the
/// network-portion of its latency by (1 + load / capacity_hops). This
/// captures the effect the paper attributes to the physical scale of the
/// K Computer: uniform random steal traffic crosses many links and
/// saturates the fabric, while distance-skewed traffic stays local and
/// cheap. Intra-node messages are unaffected.
///
/// The one-window lag is what makes the model shard-deterministic: a send at
/// time t only ever reads boundary loads at or before t - window, and the
/// sharded run loop clamps its conservative lookahead to the window, so
/// every contribution a send can observe was folded at a past barrier —
/// identical at any shard count (DESIGN.md §12). Loads are integer hop sums
/// accumulated in doubles, so folding order cannot perturb them.
///
/// Disabled by default (tests exercise raw latencies); the bench harness
/// enables it with a capacity derived from the allocation's link count (see
/// ws::RunConfig::enable_congestion).
struct CongestionParams {
  bool enabled = false;
  /// Boundary hop-units at which the network latency doubles. A reasonable
  /// physical anchor is the number of links inside the job's allocation
  /// (~6 links/node in a 6D torus).
  double capacity_hops = 1.0;
  /// Window length in ns; 0 (the default) resolves to the latency model's
  /// network_base — the natural "one network traversal" granularity, and
  /// never below the sharded lookahead, so the default costs sharded runs
  /// no window shrinkage. See congestion_window().
  support::SimTime window = 0;
};

/// The per-boundary congestion ledger: load[j] is the hop-units of flights
/// crossing window boundary j·window. Serial runs fold into a private
/// ledger as they send; sharded runs fold each shard's flights into one
/// shared ledger at the barrier (deterministic ascending-shard order), and
/// shards read it without locks — reads target boundaries at least one full
/// window old, which the barrier has already sealed.
class CongestionLedger {
 public:
  explicit CongestionLedger(support::SimTime window) : window_(window) {
    DWS_CHECK(window_ > 0);
  }

  support::SimTime window() const noexcept { return window_; }

  /// Adds `hops` to boundary j (time j·window_).
  void add(std::uint64_t boundary, double hops) {
    if (boundary >= load_.size()) load_.resize(boundary + 1, 0.0);
    load_[boundary] += hops;
    max_load_ = std::max(max_load_, load_[boundary]);
  }

  /// Load folded at boundary j; 0 for boundaries no flight has reached.
  double boundary_load(std::uint64_t boundary) const noexcept {
    return boundary < load_.size() ? load_[boundary] : 0.0;
  }

  /// Max over boundaries of boundary_load — the run's max_load_hops.
  double max_boundary_load() const noexcept { return max_load_; }

 private:
  support::SimTime window_;
  std::vector<double> load_;
  double max_load_ = 0.0;
};

/// Resolves the effective congestion window: an explicit positive window
/// wins; the 0 default means one network_base. Single source of truth for
/// the serial Network and the sharded run loop, which must agree on it.
inline support::SimTime congestion_window(const CongestionParams& congestion,
                                          const topo::LatencyParams& latency) {
  return congestion.window > 0 ? congestion.window : latency.network_base;
}

/// Point-to-point message transport between simulated ranks.
///
/// Models what the paper's UTS implementation gets from MPI two-sided
/// messaging: asynchronous sends whose delivery delay comes from the physical
/// distance between ranks (LatencyModel), with per-channel non-overtaking
/// (MPI's ordering guarantee for a (source, dest) pair). Delivery invokes
/// `Deliver(dst, msg)` at the arrival time; the work-stealing worker layered
/// above decides what "receiving" means (it polls between node expansions,
/// like the reference implementation polls MPI).
///
/// Event-core integration: a send parks the message in a slab pool and
/// schedules one typed kNetworkDeliver event carrying the pool handle — no
/// per-message closure, no per-message allocation beyond what the message
/// itself owns. `Deliver` defaults to std::function for tests; the ws and
/// dag schedulers pass a concrete functor so delivery is a direct call.
///
/// Channel lifecycle: the non-overtaking clamp needs a channel's previous
/// arrival time only while a delivery is still in flight — once the last one
/// fires, any later send on that channel arrives at now + latency >= every
/// past arrival, so the entry is retired (its map node is recycled to keep
/// the steady state allocation-free). NetworkStats::peak_channels records
/// the high-water mark of live channels.
///
/// Fault injection (DESIGN.md §10): with a fault::Injector attached, each
/// send first asks the injector for a plan. A dropped message is still
/// counted in NetworkStats (the send happened; only delivery is lost) but
/// schedules nothing and adds no congestion load. A duplicated message is
/// delivered twice — the copy gets its own jitter draw but both obey the
/// channel clamp — and counted twice. Latency multipliers (jitter, degraded
/// links) scale the full congested latency of each delivery.
///
/// Sharded runs (DESIGN.md §12): each shard owns one Network over the same
/// global latency model. A Router attached with set_router diverts sends to
/// ranks outside the shard: the channel clamp still runs here (the sender's
/// shard owns all (src, dst) ordering state — a destination rank lives in
/// exactly one shard, so a channel is either always-local or always-remote),
/// but instead of a local delivery event the message is posted to a shard
/// mailbox together with its arrival time and the sender's clock. The
/// destination shard re-materializes it with accept_remote. Because no local
/// delivery fires for a remote send, its channel retirement is lazy: the
/// (arrival, channel) pair waits in a min-heap until flush_retirements sees
/// the local clock pass the arrival — at which point any future send on the
/// channel arrives later anyway, so dropping the clamp state cannot reorder
/// deliveries.
///
/// Congestion under sharding: each shard's Network reads boundary loads from
/// one *shared* CongestionLedger (set_shared_ledger) and defers its own
/// flights' contributions to pending_loads; the run loop drains every
/// shard's pending loads into the ledger inside the barrier, in ascending
/// shard order, before computing the next window. A send at time t reads
/// only boundaries at or before t - window <= t - lookahead, all sealed by
/// past barriers, so the loads it sees — and hence every latency — are
/// identical to the serial run's.
template <typename Message,
          typename Deliver = std::function<void(topo::Rank, Message)>>
class Network final : public EventSink {
 public:
  /// Shard routing seam. `is_remote` classifies a destination rank;
  /// `post` hands a cross-shard message (plus the precomputed arrival time,
  /// the sender's current virtual time — the injected event's t_sched — and
  /// the sending rank `src`, the ordering-refinement field) to the run
  /// loop's mailbox fabric.
  class Router {
   public:
    virtual bool is_remote(topo::Rank dst) const = 0;
    virtual void post(topo::Rank dst, support::SimTime arrival,
                      support::SimTime t_sched, topo::Rank src,
                      Message msg) = 0;

   protected:
    ~Router() = default;
  };

  Network(Engine& engine, const topo::LatencyModel& latency, Deliver deliver,
          CongestionParams congestion = {},
          fault::Injector* faults = nullptr)
      : engine_(&engine),
        latency_(&latency),
        deliver_(std::move(deliver)),
        congestion_(congestion),
        faults_(faults) {
    DWS_CHECK(!congestion_.enabled || congestion_.capacity_hops > 0.0);
    if (congestion_.enabled) {
      window_ = congestion_window(congestion_, latency_->params());
      // Immediate mode: this network owns the ledger and folds flights as
      // they are sent. A sharded run swaps in the shared ledger below.
      own_ledger_ = std::make_unique<CongestionLedger>(window_);
      read_ledger_ = own_ledger_.get();
    }
  }

  /// Sharded-run congestion wiring: read boundary loads from `ledger`
  /// (owned by the run loop, shared by all shards) and defer this shard's
  /// own contributions until drain_pending_loads. Must happen before any
  /// send; the ledger must outlive the network.
  void set_shared_ledger(const CongestionLedger* ledger) {
    DWS_CHECK(congestion_.enabled);
    DWS_CHECK(ledger != nullptr && ledger->window() == window_);
    own_ledger_.reset();
    read_ledger_ = ledger;
    deferred_loads_ = true;
  }

  /// Folds this shard's pending flight contributions into the shared
  /// ledger. Called inside the window barrier in ascending shard order, so
  /// the fold sequence — and every double sum — is deterministic.
  void drain_pending_loads(CongestionLedger& ledger) {
    for (const auto& [boundary, hops] : pending_loads_) {
      ledger.add(boundary, hops);
    }
    pending_loads_.clear();
  }

  /// Send `msg` of `bytes` payload bytes from `src` to `dst` (src != dst).
  /// `cls` declares the message's loss semantics to the fault injector; it
  /// is ignored when no injector is attached.
  void send(topo::Rank src, topo::Rank dst, Message msg, std::uint32_t bytes,
            fault::MsgClass cls = fault::MsgClass::kReliable) {
    DWS_CHECK(src != dst);
    if (faults_ != nullptr && faults_->enabled()) {
      const fault::SendPlan plan =
          faults_->plan_send(channel_key(src, dst), cls, bytes);
      if (plan.drop) {
        // The send still happened from the sender's point of view: count it
        // so send-side ledgers (audit) and NetworkStats agree, but schedule
        // no delivery and load no links.
        count_message(src, dst, bytes);
        return;
      }
      if (plan.duplicate) {
        enqueue(src, dst, Message(msg), bytes, plan.dup_latency_mult);
      }
      enqueue(src, dst, std::move(msg), bytes, plan.latency_mult);
      return;
    }
    enqueue(src, dst, std::move(msg), bytes, 1.0);
  }

  /// kNetworkDeliver dispatch: unparks the message, retires the channel if
  /// this was its last in-flight delivery, and hands the message to the
  /// receiver. Flights accepted from another shard carry the sentinel
  /// channel — their ordering state lives (and retires) on the sending
  /// shard. Congestion needs no work here: a flight's boundary
  /// contributions were recorded at send time.
  void on_event(const Event& ev) override {
    InFlight flight = in_flight_.take(ev.payload);
    if (flight.channel != kRemoteChannel) {
      retire_channel(flight.channel);
    }
    deliver_(static_cast<topo::Rank>(ev.rank), std::move(flight.msg));
  }

  /// Attach (or detach, with nullptr) the shard router. Must happen before
  /// any send; the router must outlive the network.
  void set_router(Router* router) noexcept { router_ = router; }

  /// Destination side of a cross-shard send: parks `msg` and schedules its
  /// delivery through Engine::inject with the *sender's* ordering key
  /// (t_sched, src) so the merged event order matches an unsharded run. The
  /// channel clamp already ran on the sending shard, so the flight gets the
  /// sentinel channel and skips retirement here. Exactly one kNetworkDeliver
  /// fires per message in sharded and unsharded runs alike, keeping engine
  /// event counts shard-invariant.
  void accept_remote(support::SimTime arrival, support::SimTime t_sched,
                     std::uint32_t origin, topo::Rank src, topo::Rank dst,
                     Message msg) {
    const std::uint32_t handle =
        in_flight_.acquire(InFlight{std::move(msg), kRemoteChannel});
    engine_->inject(arrival, t_sched, origin, src, *this,
                    EventKind::kNetworkDeliver, dst, handle);
  }

  /// Retire channels whose cross-shard deliveries the local clock has
  /// passed. Called by the sharded run loop at window boundaries. Holding an
  /// entry longer is always safe — once now >= arrival, clamping a future
  /// send against that arrival is a no-op — so laziness affects only the
  /// channel map's size, never an arrival time.
  void flush_retirements() {
    while (!retire_heap_.empty() &&
           retire_heap_.front().first <= engine_->now()) {
      std::pop_heap(retire_heap_.begin(), retire_heap_.end(), RetireLater{});
      retire_channel(retire_heap_.back().second);
      retire_heap_.pop_back();
    }
  }

  const NetworkStats& stats() const noexcept { return stats_; }
  /// Channels with at least one delivery currently in flight.
  std::size_t active_channels() const noexcept { return channels_.size(); }

 private:
  struct Channel {
    support::SimTime last_arrival = 0;
    std::uint32_t in_flight = 0;
  };
  struct InFlight {
    Message msg;
    std::uint64_t channel = 0;
  };
  using ChannelMap = std::unordered_map<std::uint64_t, Channel>;

  /// Channel key of a flight accepted from another shard. Real keys are
  /// (src << 32) | dst with 32-bit ranks below UINT32_MAX, so the all-ones
  /// key is never a live channel.
  static constexpr std::uint64_t kRemoteChannel = ~std::uint64_t{0};

  /// Most window boundaries one flight may load. A saturated (clamped)
  /// latency spans ~4e18 ns; without a cap that single flight would fold
  /// into ~1e12 boundaries. 4096 windows ≈ 4 µs of sustained load at the
  /// default window — far past any real flight's influence.
  static constexpr std::uint64_t kMaxEpochsPerFlight = 4096;

  /// Min-heap order by arrival time for the lazy retirement heap.
  struct RetireLater {
    bool operator()(const std::pair<support::SimTime, std::uint64_t>& a,
                    const std::pair<support::SimTime, std::uint64_t>& b)
        const noexcept {
      return a.first > b.first;
    }
  };

  static std::uint64_t channel_key(topo::Rank src, topo::Rank dst) noexcept {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  /// Converts a scaled latency from the double domain back to SimTime,
  /// saturating far below the wrap point: a huge congestion or fault
  /// multiplier clamps to max/2 instead of overflowing the double→int cast
  /// (UB) or tripping the absolute-time guard. max/2 stays safely under the
  /// sharded run loop's kInf window sentinel.
  static support::SimTime scale_to_sim_time(double scaled) {
    constexpr double kCap = static_cast<double>(
        std::numeric_limits<support::SimTime>::max() / 2);
    if (!(scaled < kCap)) return std::numeric_limits<support::SimTime>::max() / 2;
    return static_cast<support::SimTime>(scaled);
  }

  /// Folds one inter-node flight [send, arrival] into the congestion
  /// ledger: `hops` units at every boundary j·window in (send, arrival],
  /// capped at kMaxEpochsPerFlight boundaries so a saturated latency cannot
  /// make a single flight unboundedly expensive (the cap applies identically
  /// in serial and sharded runs, preserving their identity).
  void record_flight(support::SimTime send, support::SimTime arrival,
                     double hops) {
    const auto w = static_cast<std::uint64_t>(window_);
    const std::uint64_t first = static_cast<std::uint64_t>(send) / w + 1;
    std::uint64_t last = static_cast<std::uint64_t>(arrival) / w;
    if (last >= first + kMaxEpochsPerFlight) {
      last = first + kMaxEpochsPerFlight - 1;
    }
    if (deferred_loads_) {
      for (std::uint64_t j = first; j <= last; ++j) {
        pending_loads_.emplace_back(j, hops);
      }
      return;
    }
    for (std::uint64_t j = first; j <= last; ++j) own_ledger_->add(j, hops);
    stats_.max_load_hops = own_ledger_->max_boundary_load();
  }

  /// One actual delivery: congested latency, fault latency multiplier,
  /// channel clamp, stats, and the kNetworkDeliver event.
  void enqueue(topo::Rank src, topo::Rank dst, Message msg,
               std::uint32_t bytes, double latency_mult) {
    support::SimTime latency =
        latency_->message_latency(src, dst, bytes, engine_->now());
    const bool congested =
        congestion_.enabled && !latency_->layout().same_node(src, dst);
    if (congested || latency_mult != 1.0) {
      double scaled = static_cast<double>(latency);
      if (congested) {
        // The send reads the load folded at its own window's opening
        // boundary — flights in the air as the window began. Window 0 has
        // no prior boundary and runs at raw latency.
        const auto epoch = static_cast<std::uint64_t>(engine_->now()) /
                           static_cast<std::uint64_t>(window_);
        const double load =
            epoch == 0 ? 0.0 : read_ledger_->boundary_load(epoch - 1);
        scaled *= 1.0 + load / congestion_.capacity_hops;
      }
      scaled *= latency_mult;
      latency = scale_to_sim_time(scaled);
    }
    // Guard the absolute-time arithmetic the way Engine::schedule_after
    // guards its delay: a negative or overflowing latency would wrap the
    // virtual clock — signed overflow is UB and the schedule corrupts
    // silently. scale_to_sim_time saturates at max/2, so the only way to
    // trip this is a clock already past max/2.
    DWS_CHECK(latency >= 0);
    DWS_CHECK(latency <=
              std::numeric_limits<support::SimTime>::max() - engine_->now());
    support::SimTime arrival = engine_->now() + latency;

    // MPI non-overtaking: a later send on the same channel may not arrive
    // before an earlier one (possible here when a small message chases a
    // large one). Clamp to the channel's previous arrival time.
    const std::uint64_t key = channel_key(src, dst);
    if (const auto it = channels_.find(key); it != channels_.end()) {
      if (arrival < it->second.last_arrival) arrival = it->second.last_arrival;
      it->second.last_arrival = arrival;
      ++it->second.in_flight;
    } else {
      open_channel(key, arrival);
    }

    count_message(src, dst, bytes);
    if (congested) {
      // Record against the clamped arrival: the flight occupies links until
      // it actually lands.
      record_flight(engine_->now(), arrival,
                    static_cast<double>(latency_->hops(src, dst)));
    }

    if (router_ != nullptr && router_->is_remote(dst)) {
      // Cross-shard send: the clamp above ran on the owning (source) side;
      // no local delivery event will fire, so queue the lazy retirement and
      // hand the message to the mailbox fabric with the sender's clock.
      retire_heap_.emplace_back(arrival, key);
      std::push_heap(retire_heap_.begin(), retire_heap_.end(), RetireLater{});
      router_->post(dst, arrival, engine_->now(), src, std::move(msg));
      return;
    }

    const std::uint32_t handle =
        in_flight_.acquire(InFlight{std::move(msg), key});
    engine_->schedule_at(arrival, *this, EventKind::kNetworkDeliver, dst,
                         handle, src);
  }

  void count_message(topo::Rank src, topo::Rank dst, std::uint32_t bytes) {
    ++stats_.messages;
    stats_.bytes += bytes;
    if (latency_->layout().same_node(src, dst)) ++stats_.intra_node_messages;
  }

  void open_channel(std::uint64_t key, support::SimTime arrival) {
    if (spare_nodes_.empty()) {
      channels_.emplace(key, Channel{arrival, 1});
    } else {
      // Recycle a retired map node: channel churn stays allocation-free.
      auto node = std::move(spare_nodes_.back());
      spare_nodes_.pop_back();
      node.key() = key;
      node.mapped() = Channel{arrival, 1};
      channels_.insert(std::move(node));
    }
    stats_.peak_channels =
        std::max(stats_.peak_channels,
                 static_cast<std::uint64_t>(channels_.size()));
  }

  void retire_channel(std::uint64_t key) {
    const auto it = channels_.find(key);
    DWS_DCHECK(it != channels_.end());
    DWS_DCHECK(it->second.in_flight > 0);
    if (--it->second.in_flight == 0) {
      spare_nodes_.push_back(channels_.extract(it));
    }
  }

  Engine* engine_;
  const topo::LatencyModel* latency_;
  Deliver deliver_;
  CongestionParams congestion_;
  fault::Injector* faults_;
  Router* router_ = nullptr;
  /// Resolved congestion window (congestion_window()); 0 when disabled.
  support::SimTime window_ = 0;
  /// Immediate mode owns its ledger; sharded mode reads the shared one and
  /// parks contributions in pending_loads_ until the barrier drains them.
  std::unique_ptr<CongestionLedger> own_ledger_;
  const CongestionLedger* read_ledger_ = nullptr;
  bool deferred_loads_ = false;
  std::vector<std::pair<std::uint64_t, double>> pending_loads_;
  NetworkStats stats_;
  ChannelMap channels_;
  std::vector<typename ChannelMap::node_type> spare_nodes_;
  // (arrival, channel) of remote sends awaiting lazy retirement.
  std::vector<std::pair<support::SimTime, std::uint64_t>> retire_heap_;
  SlabPool<InFlight> in_flight_;
};

}  // namespace dws::sim
