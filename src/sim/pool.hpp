#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace dws::sim {

/// Slab + freelist object pool addressed by 32-bit handles.
///
/// Backs every payload too big for the inline Event::payload field: the
/// network's in-flight messages, the worker's packaged steal responses, the
/// engine's generic actions. Slots are recycled through the freelist, so a
/// steady-state schedule/dispatch cycle performs zero heap allocations once
/// the slab has grown to the workload's high-water mark (slot *contents*
/// may still own heap memory, e.g. chunk vectors inside a message — reusing
/// a slot move-assigns over the previous moved-from value).
///
/// Handles are invalidated by take(); acquiring after a take may reuse the
/// handle. The pool never shrinks within a run.
template <typename T>
class SlabPool {
 public:
  using Handle = std::uint32_t;

  /// Stores `value` and returns its handle.
  Handle acquire(T value) {
    if (!free_.empty()) {
      const Handle h = free_.back();
      free_.pop_back();
      slots_[h] = std::move(value);
      return h;
    }
    DWS_CHECK(slots_.size() < UINT32_MAX);
    slots_.push_back(std::move(value));
    return static_cast<Handle>(slots_.size() - 1);
  }

  /// Moves the value out and releases the slot.
  T take(Handle h) {
    DWS_DCHECK(h < slots_.size());
    T out = std::move(slots_[h]);
    free_.push_back(h);
    return out;
  }

  std::size_t in_use() const noexcept { return slots_.size() - free_.size(); }
  std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  std::vector<T> slots_;
  std::vector<Handle> free_;
};

}  // namespace dws::sim
