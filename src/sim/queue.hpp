#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "sim/event.hpp"
#include "support/check.hpp"

namespace dws::sim {

/// Pending-event queue: a two-tier calendar that preserves the engine's
/// exact (time, t_sched, kind, rank, src, seq) total order (see
/// sim/event.hpp) — the shard-count-invariant order under which a sharded
/// run's cross-shard injections merge deterministically.
///
/// The near tier is a window of kBuckets buckets, each 2^width_log2_ ns
/// wide, starting at window_start_. A bucket is an *unsorted* append-only
/// vector until the drain cursor reaches it; at that point it is sorted
/// once and consumed front to back. Only the cursor's bucket is
/// ever partially drained, so a push into it does a sorted insert while
/// pushes anywhere else are plain push_backs. Events beyond the window go to
/// the far tier, a single binary heap; when every near bucket has drained,
/// the window re-anchors at the far tier's earliest event and the events
/// that fall inside the new window migrate into buckets.
///
/// The bucket width adapts to the workload (Brown, "Calendar queues", CACM
/// 1988, simplified): an EMA of the push lookahead (event time minus the
/// last popped time) estimates how far ahead the pending set spreads, and
/// every kRetunePeriod pops the width is re-chosen so the average bucket
/// holds ~2 events. A simulated run's pending events cluster within a few
/// microseconds of `now`, so each pop then sorts a handful of 56-byte POD
/// records sitting in one cache line instead of sifting a heap of tens of
/// thousands — and a retune (full O(n) rebuild) costs less than the pops it
/// amortizes over.
///
/// Correctness relies on the engine's schedule-in-the-future rule: every
/// pushed time is >= the last popped time (floor_) >= window_start_, so
/// neither a re-anchor nor a rebuild ever strands an event behind the
/// window, and a push can never land behind the drain cursor. The
/// randomized differential test in tests/sim/queue_diff_test.cpp pits this
/// against a reference binary heap on adversarial time patterns, including
/// equal-timestamp FIFO runs and far-future jumps.
class CalendarQueue {
 public:
  static constexpr std::uint32_t kBuckets = 1024;
  static constexpr std::uint32_t kInitialWidthLog2 = 8;  // 256 ns
  static constexpr std::uint32_t kMaxWidthLog2 = 32;
  static constexpr std::uint32_t kRetunePeriod = 8192;
  /// Every bucket starts with room for twice the retune's occupancy target,
  /// paid once at construction (~640 KiB). Without the floor, each of the
  /// 1024 bucket vectors grows from empty the first few times the rotating
  /// window lands events on it, and that warm-up tail shows up as stray
  /// allocations tens of millions of events into a run.
  static constexpr std::size_t kBucketReserve = 16;

  CalendarQueue() {
    for (auto& bucket : near_) bucket.reserve(kBucketReserve);
  }

  void push(const Event& ev) {
    DWS_DCHECK(ev.time >= floor_);
    // Lookahead EMA (1/32 step): the width retune's spread estimate.
    gap_ema_ += (ev.time - floor_ - gap_ema_) >> 5;
    if (in_window(ev.time)) {
      const std::uint32_t b = bucket_of(ev.time);
      auto& bucket = near_[b];
      if (b == cursor_ && current_sorted_) {
        // The only partially drained bucket: keep its undrained tail sorted.
        const auto it =
            std::upper_bound(bucket.begin() +
                                 static_cast<std::ptrdiff_t>(drain_pos_),
                             bucket.end(), ev, Earlier{});
        bucket.insert(it, ev);
      } else {
        bucket.push_back(ev);
      }
      mark_occupied(b);
    } else {
      far_.push_back(ev);
      std::push_heap(far_.begin(), far_.end(), Later{});
    }
    ++size_;
    if (size_ > max_size_) max_size_ = size_;
  }

  /// Removes the earliest event (in the full total order) into `out`;
  /// false when empty.
  bool pop(Event& out) {
    if (size_ == 0) return false;
    if (++pops_since_retune_ >= kRetunePeriod) maybe_retune();
    if (!current_sorted_ || drain_pos_ >= near_[cursor_].size()) {
      advance_cursor();  // cold path: next bucket / window / sort
    }
    out = near_[cursor_][drain_pos_++];
    floor_ = out.time;
    --size_;
    return true;
  }

  /// Time of the earliest pending event without removing it. Requires a
  /// non-empty queue.
  ///
  /// Deliberately non-mutating: it must NOT advance the drain cursor. The
  /// calendar's "a push never lands behind the cursor" invariant holds
  /// because the cursor only moves inside pop(), which immediately raises
  /// floor_ to a time in the new cursor bucket — if a peek moved the cursor
  /// across empty buckets without popping, a later push at a time >= floor_
  /// but behind the new cursor would strand its event until the next window
  /// re-anchor, silently reordering the queue (the sharded core's window
  /// loop peeks between every window and then injects, which is exactly
  /// that pattern).
  support::SimTime peek_time() const {
    DWS_DCHECK(size_ > 0);
    const auto& cur = near_[cursor_];
    if (current_sorted_) {
      if (drain_pos_ < cur.size()) return cur[drain_pos_].time;
    } else if (!cur.empty()) {
      DWS_DCHECK(drain_pos_ == 0);
      return unsorted_min_time(cur);
    }
    // Cursor bucket exhausted (or an empty bucket the cursor parked on):
    // the minimum sits in a later near bucket or the far tier (all far
    // events lie beyond the window, hence after every near event). Skip
    // stale-occupied empties; a rebuild can leave bucket 0 marked occupied
    // while empty.
    for (std::uint32_t b = cursor_ + 1; b < kBuckets; ++b) {
      b = next_occupied(b);
      if (b >= kBuckets) break;
      if (!near_[b].empty()) return unsorted_min_time(near_[b]);
    }
    DWS_DCHECK(!far_.empty());
    return far_.front().time;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  /// High-water mark of pending events (never resets).
  std::size_t max_size() const noexcept { return max_size_; }
  /// Current bucket width exponent (exposed for tests/diagnostics).
  std::uint32_t width_log2() const noexcept { return width_log2_; }

 private:
  struct Earlier {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time < b.time;
      if (a.t_sched != b.t_sched) return a.t_sched < b.t_sched;
      if (a.kind != b.kind) {
        return static_cast<std::uint32_t>(a.kind) <
               static_cast<std::uint32_t>(b.kind);
      }
      if (a.rank != b.rank) return a.rank < b.rank;
      if (a.src != b.src) return a.src < b.src;
      return a.seq < b.seq;
    }
  };
  /// Heap order for the far tier: the heap front is the earliest event.
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return Earlier{}(b, a);
    }
  };

  static support::SimTime unsorted_min_time(
      const std::vector<Event>& bucket) noexcept {
    support::SimTime t = bucket.front().time;
    for (const Event& ev : bucket) t = std::min(t, ev.time);
    return t;
  }

  // `t >= window_start_` always holds for stored events, so the difference
  // is non-negative and the unsigned shift is exact — no overflow for times
  // up to SimTime max.
  bool in_window(support::SimTime t) const noexcept {
    return (static_cast<std::uint64_t>(t - window_start_) >> width_log2_) <
           kBuckets;
  }
  std::uint32_t bucket_of(support::SimTime t) const noexcept {
    return static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(t - window_start_) >> width_log2_);
  }

  void mark_occupied(std::uint32_t b) noexcept {
    occupied_[b >> 6] |= std::uint64_t{1} << (b & 63);
  }

  /// First occupied bucket index >= `from`, or kBuckets when none.
  std::uint32_t next_occupied(std::uint32_t from) const noexcept {
    std::uint32_t word = from >> 6;
    std::uint64_t bits = occupied_[word] & (~std::uint64_t{0} << (from & 63));
    while (bits == 0) {
      if (++word == kBuckets / 64) return kBuckets;
      bits = occupied_[word];
    }
    return (word << 6) +
           static_cast<std::uint32_t>(std::countr_zero(bits));
  }

  /// The current bucket is exhausted (or not yet sorted): retire it, find
  /// the next occupied bucket — re-anchoring the window off the far tier if
  /// the near tier has drained — and sort it for draining. Only called with
  /// size_ > 0, so an occupied bucket always exists afterwards.
  void advance_cursor() {
    auto* bucket = &near_[cursor_];
    if (drain_pos_ >= bucket->size()) {
      if (!bucket->empty()) bucket->clear();
      occupied_[cursor_ >> 6] &= ~(std::uint64_t{1} << (cursor_ & 63));
      drain_pos_ = 0;
      cursor_ = next_occupied(cursor_);
      if (cursor_ >= kBuckets) advance_window();
      bucket = &near_[cursor_];
      current_sorted_ = false;
    }
    if (!current_sorted_) {
      DWS_DCHECK(drain_pos_ == 0);
      std::sort(bucket->begin(), bucket->end(), Earlier{});
      current_sorted_ = true;
    }
  }

  /// All near buckets drained: re-anchor the window at the far tier's
  /// earliest event and migrate the events that now fall inside it. The far
  /// minimum lands in bucket 0, so the cursor restarts there.
  void advance_window() {
    DWS_DCHECK(!far_.empty());
    window_start_ = (far_.front().time >> width_log2_) << width_log2_;
    while (!far_.empty() && in_window(far_.front().time)) {
      std::pop_heap(far_.begin(), far_.end(), Later{});
      const Event ev = far_.back();
      far_.pop_back();
      const std::uint32_t b = bucket_of(ev.time);
      near_[b].push_back(ev);
      mark_occupied(b);
    }
    cursor_ = next_occupied(0);
    DWS_DCHECK(cursor_ < kBuckets);
    drain_pos_ = 0;
    current_sorted_ = false;
  }

  /// Re-chooses the bucket width for ~2 events per bucket given the current
  /// spread estimate; rebuilds the calendar when it is off by more than 2x.
  void maybe_retune() {
    pops_since_retune_ = 0;
    if (size_ < 32) return;
    // Events spread roughly uniformly over [floor_, floor_ + 2 * gap_ema_]:
    // width = occupancy_target * 2 * gap / size. An average bucket of ~8
    // events benchmarks fastest — sorting 8 events costs ~3 compares per
    // event in one or two cache lines, while fewer events per bucket just
    // buys more cursor transitions and a larger active-bucket working set.
    const std::uint64_t desired = std::max<std::uint64_t>(
        1, (16 * static_cast<std::uint64_t>(gap_ema_)) / size_);
    std::uint32_t log2 =
        static_cast<std::uint32_t>(std::bit_width(desired)) - 1;
    if (log2 > kMaxWidthLog2) log2 = kMaxWidthLog2;
    if (log2 + 1 >= width_log2_ && width_log2_ + 1 >= log2) return;
    rebuild(log2);
  }

  void rebuild(std::uint32_t new_width_log2) {
    scratch_.clear();
    for (std::uint32_t b = 0; b < kBuckets; ++b) {
      auto& bucket = near_[b];
      const std::size_t from = (b == cursor_) ? drain_pos_ : 0;
      scratch_.insert(scratch_.end(),
                      bucket.begin() + static_cast<std::ptrdiff_t>(from),
                      bucket.end());
      bucket.clear();
    }
    scratch_.insert(scratch_.end(), far_.begin(), far_.end());
    far_.clear();
    occupied_.fill(0);

    width_log2_ = new_width_log2;
    window_start_ = (floor_ >> width_log2_) << width_log2_;
    drain_pos_ = 0;
    current_sorted_ = false;
    for (const Event& ev : scratch_) {
      if (in_window(ev.time)) {
        const std::uint32_t b = bucket_of(ev.time);
        near_[b].push_back(ev);
        mark_occupied(b);
      } else {
        far_.push_back(ev);
      }
    }
    std::make_heap(far_.begin(), far_.end(), Later{});
    scratch_.clear();
    // The cursor must sit at (or before) the earliest occupied bucket; the
    // pending minimum is >= floor_, whose bucket is 0 in the new window.
    cursor_ = 0;
    mark_occupied(0);  // keep the cursor's bucket scannable even if empty
  }

  std::array<std::vector<Event>, kBuckets> near_;
  std::array<std::uint64_t, kBuckets / 64> occupied_{};
  std::vector<Event> far_;
  std::vector<Event> scratch_;  // rebuild staging, reused across retunes
  support::SimTime window_start_ = 0;
  support::SimTime floor_ = 0;  // last popped time; lower bound on pushes
  support::SimTime gap_ema_ = 0;
  std::uint32_t width_log2_ = kInitialWidthLog2;
  std::uint32_t cursor_ = 0;
  std::size_t drain_pos_ = 0;
  bool current_sorted_ = false;
  std::uint32_t pops_since_retune_ = 0;
  std::size_t size_ = 0;
  std::size_t max_size_ = 0;
};

}  // namespace dws::sim
