#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event.hpp"
#include "sim/pool.hpp"
#include "sim/queue.hpp"
#include "support/check.hpp"
#include "support/sim_time.hpp"

namespace dws::sim {

/// Deterministic discrete-event engine.
///
/// This is the substrate that replaces the K Computer in our reproduction:
/// all simulated MPI ranks live in one address space and advance a shared
/// virtual clock. Events fire in (time, insertion sequence) order, so two
/// events at the same instant run in the order they were scheduled — runs
/// are bit-reproducible, which the whole test suite leans on.
///
/// Two scheduling flavours share one queue and one (time, seq) order:
///
///  - typed events (the hot path): a fixed-size POD record dispatched with
///    a single indirect call to the scheduling EventSink — no per-event
///    allocation, no type erasure (sim::Network, ws::Worker and the dag
///    workers enumerate their continuations as EventKinds);
///  - generic events (EventKind::kGeneric): the std::function escape hatch
///    for tests and examples. The closure lives in a slab pool slot, so
///    even this path allocates only what std::function itself needs.
class Engine {
 public:
  using Action = std::function<void()>;

  support::SimTime now() const noexcept { return now_; }

  /// Schedule a typed event for `sink` at absolute virtual time `t` (>= now).
  /// `rank` and `payload` travel in the event record, interpreted per kind.
  void schedule_at(support::SimTime t, EventSink& sink, EventKind kind,
                   std::uint32_t rank = 0, std::uint32_t payload = 0) {
    DWS_CHECK(t >= now_);
    queue_.push(Event{t, next_seq_++, &sink, kind, rank, payload});
  }

  /// Typed event `delay` ns after the current virtual time.
  void schedule_after(support::SimTime delay, EventSink& sink, EventKind kind,
                      std::uint32_t rank = 0, std::uint32_t payload = 0) {
    check_delay(delay);
    schedule_at(now_ + delay, sink, kind, rank, payload);
  }

  /// Schedule `action` at absolute virtual time `t` (>= now).
  void schedule_at(support::SimTime t, Action action) {
    DWS_CHECK(t >= now_);
    const std::uint32_t handle = actions_.acquire(std::move(action));
    queue_.push(
        Event{t, next_seq_++, nullptr, EventKind::kGeneric, 0, handle});
  }

  /// Schedule `action` `delay` ns after the current virtual time. Negative
  /// delays and delays that would overflow SimTime fail a DWS_CHECK instead
  /// of wrapping the clock (signed overflow would otherwise be UB *and* a
  /// silently corrupted schedule).
  void schedule_after(support::SimTime delay, Action action) {
    check_delay(delay);
    schedule_at(now_ + delay, std::move(action));
  }

  /// Execute the earliest pending event. Returns false when none remain.
  bool step();

  /// Run until the queue drains, stop() is called, or `max_events` fire.
  /// Returns the number of events executed by this call.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Halt run() after the current event; pending events stay queued.
  void stop() noexcept { stopped_ = true; }
  bool stopped() const noexcept { return stopped_; }

  std::uint64_t events_executed() const noexcept { return executed_; }
  std::size_t pending() const noexcept { return queue_.size(); }
  /// High-water mark of pending() over the engine's lifetime — how deep the
  /// calendar queue got (reported through ws::RunResult and the exp schema).
  std::size_t max_pending() const noexcept { return queue_.max_size(); }

 private:
  void check_delay(support::SimTime delay) const {
    DWS_CHECK(delay >= 0);
    DWS_CHECK(delay <= std::numeric_limits<support::SimTime>::max() - now_);
  }

  CalendarQueue queue_;
  SlabPool<Action> actions_;  // kGeneric closures, recycled by handle
  support::SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace dws::sim
