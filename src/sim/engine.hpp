#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "support/check.hpp"
#include "support/sim_time.hpp"

namespace dws::sim {

/// Deterministic discrete-event engine.
///
/// This is the substrate that replaces the K Computer in our reproduction:
/// all simulated MPI ranks live in one address space and advance a shared
/// virtual clock. Events fire in (time, insertion sequence) order, so two
/// events at the same instant run in the order they were scheduled — runs
/// are bit-reproducible, which the whole test suite leans on.
class Engine {
 public:
  using Action = std::function<void()>;

  support::SimTime now() const noexcept { return now_; }

  /// Schedule `action` at absolute virtual time `t` (>= now).
  void schedule_at(support::SimTime t, Action action);

  /// Schedule `action` `delay` ns after the current virtual time. Negative
  /// delays and delays that would overflow SimTime fail a DWS_CHECK instead
  /// of wrapping the clock (signed overflow would otherwise be UB *and* a
  /// silently corrupted schedule).
  void schedule_after(support::SimTime delay, Action action) {
    DWS_CHECK(delay >= 0);
    DWS_CHECK(delay <= std::numeric_limits<support::SimTime>::max() - now_);
    schedule_at(now_ + delay, std::move(action));
  }

  /// Execute the earliest pending event. Returns false when none remain.
  bool step();

  /// Run until the queue drains, stop() is called, or `max_events` fire.
  /// Returns the number of events executed by this call.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Halt run() after the current event; pending events stay queued.
  void stop() noexcept { stopped_ = true; }
  bool stopped() const noexcept { return stopped_; }

  std::uint64_t events_executed() const noexcept { return executed_; }
  std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    support::SimTime time;
    std::uint64_t seq;
    Action action;
  };
  /// Heap order for std::push_heap/pop_heap: the "largest" element is the
  /// earliest (time, seq), so the heap front is the next event to fire.
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // A plain vector managed with the <algorithm> heap functions rather than
  // std::priority_queue: pop_heap moves the front element to the back, where
  // it can be moved out legally — priority_queue::top() is const and would
  // force a const_cast to avoid copying the Action.
  std::vector<Event> queue_;
  support::SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace dws::sim
