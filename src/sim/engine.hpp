#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event.hpp"
#include "sim/pool.hpp"
#include "sim/queue.hpp"
#include "support/check.hpp"
#include "support/sim_time.hpp"

namespace dws::sim {

/// Deterministic discrete-event engine.
///
/// This is the substrate that replaces the K Computer in our reproduction:
/// all simulated MPI ranks live in one address space and advance a shared
/// virtual clock. Events fire in the (time, t_sched, kind, rank, src, seq)
/// total order of sim/event.hpp — deterministic, bit-reproducible, and (the
/// point of the structural key fields) independent of how the ranks are
/// sharded across engines, which the whole test suite leans on.
///
/// Sharded parallel runs (DESIGN.md §12) build one Engine per shard
/// (`shard_id` names it) and feed cross-shard deliveries in through
/// inject(), which preserves the *sender's* schedule time, rank and shard in
/// the ordering key instead of stamping the local clock. run_until()
/// executes exactly the events that fall inside one conservative
/// synchronization window.
///
/// Two scheduling flavours share one queue and one total order:
///
///  - typed events (the hot path): a fixed-size POD record dispatched with
///    a single indirect call to the scheduling EventSink — no per-event
///    allocation, no type erasure (sim::Network, ws::Worker and the dag
///    workers enumerate their continuations as EventKinds);
///  - generic events (EventKind::kGeneric): the std::function escape hatch
///    for tests and examples. The closure lives in a slab pool slot, so
///    even this path allocates only what std::function itself needs.
class Engine {
 public:
  using Action = std::function<void()>;

  explicit Engine(std::uint32_t shard_id = 0) : shard_id_(shard_id) {}

  support::SimTime now() const noexcept { return now_; }
  std::uint32_t shard_id() const noexcept { return shard_id_; }

  /// Schedule a typed event for `sink` at absolute virtual time `t` (>= now).
  /// `rank` and `payload` travel in the event record, interpreted per kind.
  /// `src` is the ordering-refinement field of sim/event.hpp: the sending
  /// rank for kNetworkDeliver events, 0 (the default) for everything else.
  void schedule_at(support::SimTime t, EventSink& sink, EventKind kind,
                   std::uint32_t rank = 0, std::uint32_t payload = 0,
                   std::uint32_t src = 0) {
    DWS_CHECK(t >= now_);
    queue_.push(Event{t, now_, next_seq_++, &sink, kind, rank, shard_id_,
                      payload, src});
  }

  /// Typed event `delay` ns after the current virtual time.
  void schedule_after(support::SimTime delay, EventSink& sink, EventKind kind,
                      std::uint32_t rank = 0, std::uint32_t payload = 0,
                      std::uint32_t src = 0) {
    check_delay(delay);
    schedule_at(now_ + delay, sink, kind, rank, payload, src);
  }

  /// Schedule `action` at absolute virtual time `t` (>= now).
  void schedule_at(support::SimTime t, Action action) {
    DWS_CHECK(t >= now_);
    const std::uint32_t handle = actions_.acquire(std::move(action));
    queue_.push(Event{t, now_, next_seq_++, nullptr, EventKind::kGeneric, 0,
                      shard_id_, handle});
  }

  /// Cross-shard injection (the mailbox drain path of the sharded core):
  /// schedules a typed event whose ordering key carries the *sender's*
  /// schedule time `t_sched` and rank `src` — exactly the key the event
  /// would have had in an unsharded run — while the seq is assigned locally
  /// in deterministic drain order. `origin` (the sending shard) rides along
  /// for ambiguity accounting. Injection is only legal at a window boundary,
  /// when `t` is at or past the window end and therefore >= now.
  void inject(support::SimTime t, support::SimTime t_sched,
              std::uint32_t origin, std::uint32_t src, EventSink& sink,
              EventKind kind, std::uint32_t rank = 0,
              std::uint32_t payload = 0) {
    DWS_CHECK(t >= now_);
    DWS_CHECK(t_sched <= t);
    queue_.push(Event{t, t_sched, next_seq_++, &sink, kind, rank, origin,
                      payload, src});
  }

  /// Schedule `action` `delay` ns after the current virtual time. Negative
  /// delays and delays that would overflow SimTime fail a DWS_CHECK instead
  /// of wrapping the clock (signed overflow would otherwise be UB *and* a
  /// silently corrupted schedule).
  void schedule_after(support::SimTime delay, Action action) {
    check_delay(delay);
    schedule_at(now_ + delay, std::move(action));
  }

  /// Execute the earliest pending event. Returns false when none remain.
  bool step();

  /// Run until the queue drains, stop() is called, or `max_events` fire.
  /// Returns the number of events executed by this call.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Execute every pending event with time < `limit` (one conservative
  /// synchronization window), leaving later events queued. Returns the
  /// number of events executed.
  std::uint64_t run_until(support::SimTime limit);

  /// Time of the earliest pending event; `horizon` when the queue is empty.
  support::SimTime next_event_time(support::SimTime horizon) {
    return queue_.empty() ? horizon : queue_.peek_time();
  }

  /// Halt run() after the current event; pending events stay queued.
  void stop() noexcept { stopped_ = true; }
  bool stopped() const noexcept { return stopped_; }

  std::uint64_t events_executed() const noexcept { return executed_; }
  std::size_t pending() const noexcept { return queue_.size(); }
  /// High-water mark of pending() over the engine's lifetime — how deep the
  /// calendar queue got (reported through ws::RunResult and the exp schema).
  std::size_t max_pending() const noexcept { return queue_.max_size(); }

  /// Consecutive executed events that tied on the full structural key
  /// (time, t_sched, kind, rank, src) while coming from different shards.
  /// Such a pair would fall through to the local-seq tiebreak, whose order a
  /// serial run need not share — but for the ws sharded core it is
  /// structurally impossible (only kNetworkDeliver crosses shards, and equal
  /// (rank, src) means equal sending shard; see sim/event.hpp). A nonzero
  /// count therefore flags a protocol bug, and the differential suite
  /// asserts it stays zero.
  std::uint64_t merge_ambiguities() const noexcept {
    return merge_ambiguities_;
  }

 private:
  void check_delay(support::SimTime delay) const {
    DWS_CHECK(delay >= 0);
    DWS_CHECK(delay <= std::numeric_limits<support::SimTime>::max() - now_);
  }

  void execute(const Event& ev);

  CalendarQueue queue_;
  SlabPool<Action> actions_;  // kGeneric closures, recycled by handle
  support::SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint32_t shard_id_ = 0;
  bool stopped_ = false;
  // Ambiguity detection: the previous executed event's structural key.
  // Equal-key runs pop contiguously, so an adjacent comparison catches every
  // mixed-origin tie group.
  support::SimTime prev_time_ = -1;
  support::SimTime prev_t_sched_ = -1;
  EventKind prev_kind_ = EventKind::kGeneric;
  std::uint32_t prev_rank_ = 0;
  std::uint32_t prev_src_ = 0;
  std::uint32_t prev_origin_ = 0;
  std::uint64_t merge_ambiguities_ = 0;
};

}  // namespace dws::sim
