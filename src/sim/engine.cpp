#include "sim/engine.hpp"

namespace dws::sim {

void Engine::execute(const Event& ev) {
  if (ev.time == prev_time_ && ev.t_sched == prev_t_sched_ &&
      ev.kind == prev_kind_ && ev.rank == prev_rank_ && ev.src == prev_src_ &&
      ev.origin != prev_origin_) {
    // A full structural-key tie across shards: the local-seq tiebreak picked
    // an order a serial run is not guaranteed to share. Structurally
    // impossible for the ws sharded core (see merge_ambiguities()), so any
    // count is a protocol bug — counted here, asserted zero downstream.
    ++merge_ambiguities_;
  }
  prev_time_ = ev.time;
  prev_t_sched_ = ev.t_sched;
  prev_kind_ = ev.kind;
  prev_rank_ = ev.rank;
  prev_src_ = ev.src;
  prev_origin_ = ev.origin;

  now_ = ev.time;
  ++executed_;
  if (ev.sink != nullptr) {
    ev.sink->on_event(ev);
    return;
  }
  // kGeneric: move the closure out of its slot first — the action may
  // schedule more events and reuse the slot.
  Action action = actions_.take(ev.payload);
  action();
}

bool Engine::step() {
  Event ev;
  if (!queue_.pop(ev)) return false;
  execute(ev);
  return true;
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (n < max_events && !stopped_ && step()) ++n;
  return n;
}

std::uint64_t Engine::run_until(support::SimTime limit) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.peek_time() < limit) {
    Event ev;
    queue_.pop(ev);
    execute(ev);
    ++n;
  }
  return n;
}

}  // namespace dws::sim
