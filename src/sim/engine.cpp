#include "sim/engine.hpp"

#include <algorithm>

namespace dws::sim {

void Engine::schedule_at(support::SimTime t, Action action) {
  DWS_CHECK(t >= now_);
  queue_.push_back(Event{t, next_seq_++, std::move(action)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

bool Engine::step() {
  if (queue_.empty()) return false;
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  now_ = ev.time;
  ++executed_;
  ev.action();
  return true;
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (n < max_events && !stopped_ && step()) ++n;
  return n;
}

}  // namespace dws::sim
