#include "sim/engine.hpp"

namespace dws::sim {

bool Engine::step() {
  Event ev;
  if (!queue_.pop(ev)) return false;
  now_ = ev.time;
  ++executed_;
  if (ev.sink != nullptr) {
    ev.sink->on_event(ev);
    return true;
  }
  // kGeneric: move the closure out of its slot first — the action may
  // schedule more events and reuse the slot.
  Action action = actions_.take(ev.payload);
  action();
  return true;
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (n < max_events && !stopped_ && step()) ++n;
  return n;
}

}  // namespace dws::sim
