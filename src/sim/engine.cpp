#include "sim/engine.hpp"

namespace dws::sim {

void Engine::schedule_at(support::SimTime t, Action action) {
  DWS_CHECK(t >= now_);
  queue_.push(Event{t, next_seq_++, std::move(action)});
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast — safe because
  // the element is popped immediately and never reordered after top().
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++executed_;
  ev.action();
  return true;
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (n < max_events && !stopped_ && step()) ++n;
  return n;
}

}  // namespace dws::sim
