#include "crypto/sha1.hpp"

#include <cstring>

namespace dws::crypto {

namespace {

inline std::uint32_t rotl32(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}

inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

void Sha1::reset() noexcept {
  h_[0] = 0x67452301u;
  h_[1] = 0xefcdab89u;
  h_[2] = 0x98badcfeu;
  h_[3] = 0x10325476u;
  h_[4] = 0xc3d2e1f0u;
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) noexcept {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = h_[0];
  std::uint32_t b = h_[1];
  std::uint32_t c = h_[2];
  std::uint32_t d = h_[3];
  std::uint32_t e = h_[4];

  for (int i = 0; i < 80; ++i) {
    std::uint32_t f;
    std::uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  }

  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(std::span<const std::uint8_t> data) noexcept {
  total_bytes_ += data.size();
  const std::uint8_t* p = data.data();
  std::size_t remaining = data.size();

  if (buffered_ > 0) {
    const std::size_t need = 64 - buffered_;
    const std::size_t take = remaining < need ? remaining : need;
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    remaining -= take;
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }

  while (remaining >= 64) {
    process_block(p);
    p += 64;
    remaining -= 64;
  }

  if (remaining > 0) {
    std::memcpy(buffer_, p, remaining);
    buffered_ = remaining;
  }
}

Sha1Digest Sha1::finish() noexcept {
  // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad_one = 0x80;
  update(std::span<const std::uint8_t>(&pad_one, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(std::span<const std::uint8_t>(&zero, 1));

  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(std::span<const std::uint8_t>(len_bytes, 8));

  Sha1Digest out;
  for (int i = 0; i < 5; ++i) store_be32(out.data() + 4 * i, h_[i]);
  return out;
}

Sha1Digest Sha1::digest(std::span<const std::uint8_t> data) noexcept {
  Sha1 ctx;
  ctx.update(data);
  return ctx.finish();
}

std::string to_hex(const Sha1Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(2 * digest.size());
  for (std::uint8_t byte : digest) {
    out += kHex[byte >> 4];
    out += kHex[byte & 0xf];
  }
  return out;
}

}  // namespace dws::crypto
