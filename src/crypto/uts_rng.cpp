#include "crypto/uts_rng.hpp"

namespace dws::crypto {

namespace {

void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

UtsRng UtsRng::from_seed(std::uint32_t seed) noexcept {
  std::uint8_t bytes[4];
  store_be32(bytes, seed);
  Sha1 ctx;
  ctx.update(std::span<const std::uint8_t>(bytes, 4));
  UtsRng rng;
  rng.state_ = ctx.finish();
  return rng;
}

UtsRng UtsRng::spawn(std::uint32_t child_index) const noexcept {
  std::uint8_t input[kSha1DigestSize + 4];
  for (std::size_t i = 0; i < kSha1DigestSize; ++i) input[i] = state_[i];
  store_be32(input + kSha1DigestSize, child_index);
  UtsRng child;
  child.state_ = Sha1::digest(std::span<const std::uint8_t>(input, sizeof input));
  return child;
}

std::uint32_t UtsRng::rand31() const noexcept {
  const std::uint32_t v = (static_cast<std::uint32_t>(state_[16]) << 24) |
                          (static_cast<std::uint32_t>(state_[17]) << 16) |
                          (static_cast<std::uint32_t>(state_[18]) << 8) |
                          static_cast<std::uint32_t>(state_[19]);
  return v & 0x7fffffffu;
}

double UtsRng::to_prob() const noexcept {
  return static_cast<double>(rand31()) / 2147483648.0;  // 2^31
}

}  // namespace dws::crypto
