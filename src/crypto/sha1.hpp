#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace dws::crypto {

inline constexpr std::size_t kSha1DigestSize = 20;

using Sha1Digest = std::array<std::uint8_t, kSha1DigestSize>;

/// SHA-1 (FIPS 180-4), implemented from scratch.
///
/// UTS uses SHA-1 as a *splittable deterministic random number generator*:
/// the same tree is generated on any machine, language or process count
/// because every node's identity is a SHA-1 digest of its parent's digest and
/// its child index. Cryptographic strength is irrelevant here; determinism
/// and uniformity are what matter.
///
/// Incremental API (init/update/final) plus a one-shot helper. The
/// implementation processes whole 64-byte blocks with the standard 80-round
/// compression function.
class Sha1 {
 public:
  Sha1() noexcept { reset(); }

  void reset() noexcept;
  void update(std::span<const std::uint8_t> data) noexcept;
  /// Finalise and return the digest. The object must be reset() before reuse.
  Sha1Digest finish() noexcept;

  /// One-shot convenience.
  static Sha1Digest digest(std::span<const std::uint8_t> data) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::uint32_t h_[5];
  std::uint64_t total_bytes_;
  std::uint8_t buffer_[64];
  std::size_t buffered_;
};

/// Lowercase hex rendering for tests and debug output.
std::string to_hex(const Sha1Digest& digest);

}  // namespace dws::crypto
