#pragma once

#include <cstdint>

#include "crypto/sha1.hpp"

namespace dws::crypto {

/// Splittable deterministic RNG in the style of the UTS benchmark's BRG SHA-1
/// generator.
///
/// Every tree node owns a 20-byte state (a SHA-1 digest). The root state is
/// derived from the integer root seed `r` (Table I of the paper: r = 316 for
/// T3XXL, r = 559 for T3WL); child i of a node has state
/// SHA1(parent_state || be32(i)). Because the state derivation is pure, any
/// process can expand any subtree independently and the *same* tree is
/// produced regardless of hardware, process count or traversal order — the
/// property UTS relies on for cross-platform comparability.
class UtsRng {
 public:
  UtsRng() noexcept : state_{} {}

  /// Root state for a tree seed.
  static UtsRng from_seed(std::uint32_t seed) noexcept;

  /// State of the i-th child of this node.
  UtsRng spawn(std::uint32_t child_index) const noexcept;

  /// 31-bit non-negative uniform value derived from the state (the UTS
  /// "rng_rand" convention: high 4 bytes of the digest, sign bit cleared).
  std::uint32_t rand31() const noexcept;

  /// Uniform in [0, 1): rand31() / 2^31.
  double to_prob() const noexcept;

  const Sha1Digest& state() const noexcept { return state_; }

  friend bool operator==(const UtsRng&, const UtsRng&) = default;

 private:
  explicit UtsRng(const Sha1Digest& d) noexcept : state_(d) {}

  Sha1Digest state_;
};

}  // namespace dws::crypto
