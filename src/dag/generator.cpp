#include "dag/generator.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dws::dag {

namespace {

/// Deterministic per-task random stream: child index 0 drives the edge
/// draws, 1 the cost, 2 the payload.
crypto::UtsRng task_rng(std::uint32_t seed, TaskId id) {
  return crypto::UtsRng::from_seed(seed).spawn(id);
}

support::SimTime sample_range(const crypto::UtsRng& rng, support::SimTime lo,
                              support::SimTime hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<support::SimTime>(
                  rng.to_prob() * static_cast<double>(hi - lo));
}

}  // namespace

Dag::Dag(const DagParams& params) : params_(params) {
  DWS_CHECK(params_.layers >= 1);
  DWS_CHECK(params_.width >= 1);
  DWS_CHECK(params_.edge_probability >= 0.0 && params_.edge_probability <= 1.0);
  DWS_CHECK(params_.max_task_cost >= params_.min_task_cost);
  DWS_CHECK(params_.max_payload_bytes >= params_.min_payload_bytes);

  const std::uint32_t n = params_.task_count();
  tasks_.resize(n);

  for (TaskId id = 0; id < n; ++id) {
    const auto rng = task_rng(params_.seed, id);
    Task& task = tasks_[id];
    task.cost = sample_range(rng.spawn(1), params_.min_task_cost,
                             params_.max_task_cost);
    task.payload_bytes = static_cast<std::uint32_t>(
        sample_range(rng.spawn(2), params_.min_payload_bytes,
                     params_.max_payload_bytes));
    total_cost_ += task.cost;

    const std::uint32_t layer = layer_of(id);
    if (layer == 0) {
      sources_.push_back(id);
      continue;
    }
    // Edge draws against every task of the previous layer.
    const auto edges_rng = rng.spawn(0);
    const TaskId prev_base = (layer - 1) * params_.width;
    for (std::uint32_t j = 0; j < params_.width; ++j) {
      if (edges_rng.spawn(j).to_prob() < params_.edge_probability) {
        task.predecessors.push_back(prev_base + j);
      }
    }
    if (task.predecessors.empty()) {
      // Force connectivity: pick one uniformly.
      const auto pick = static_cast<std::uint32_t>(
          edges_rng.spawn(params_.width).to_prob() * params_.width);
      task.predecessors.push_back(prev_base + std::min(pick, params_.width - 1));
    }
    for (const TaskId p : task.predecessors) {
      tasks_[p].successors.push_back(id);
      ++edges_;
    }
  }
}

const Task& Dag::task(TaskId id) const {
  DWS_CHECK(id < tasks_.size());
  return tasks_[id];
}

support::SimTime Dag::critical_path() const {
  // Layered structure: process in id order (predecessors always have
  // smaller ids), longest path ending at each task.
  std::vector<support::SimTime> longest(tasks_.size(), 0);
  support::SimTime best = 0;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    support::SimTime pred_max = 0;
    for (const TaskId p : tasks_[id].predecessors) {
      pred_max = std::max(pred_max, longest[p]);
    }
    longest[id] = pred_max + tasks_[id].cost;
    best = std::max(best, longest[id]);
  }
  return best;
}

}  // namespace dws::dag
