#pragma once

#include <cstdint>
#include <vector>

#include "crypto/uts_rng.hpp"
#include "support/sim_time.hpp"

namespace dws::dag {

/// Deterministic layered random DAG workload — the benchmark the paper's
/// conclusion calls for (§VII): "in the case of data dependencies, stealing
/// a task can trigger massive communications and thus is more sensible to
/// bandwidth inside a network. Studying the impact of the network on such
/// problems might require new benchmarks, possibly using directed acyclic
/// graphs generation instead of random trees."
///
/// Generation follows the layer-by-layer method of Cordeiro et al. ("Random
/// graph generation for scheduling simulations"): `layers` layers of `width`
/// tasks; every task in layer l > 0 draws each task of layer l-1 as a
/// predecessor independently with probability `edge_probability` (at least
/// one predecessor is forced so no task but layer 0 is a source). All
/// randomness derives from the same SHA-1 splittable generator as the UTS
/// trees, so a (params, seed) pair defines one DAG on any machine.
struct DagParams {
  std::uint32_t layers = 8;
  std::uint32_t width = 64;
  double edge_probability = 0.1;
  std::uint32_t seed = 1;

  /// Virtual compute time per task: uniform in [min, max].
  support::SimTime min_task_cost = 5 * support::kMicrosecond;
  support::SimTime max_task_cost = 50 * support::kMicrosecond;

  /// Output-data size per task: uniform in [min, max]. This is what a
  /// successor must gather from each predecessor's execution site — the
  /// bandwidth knob of the experiment.
  std::uint32_t min_payload_bytes = 256;
  std::uint32_t max_payload_bytes = 4096;

  std::uint32_t task_count() const noexcept { return layers * width; }
};

using TaskId = std::uint32_t;

/// One task of the materialised DAG.
struct Task {
  support::SimTime cost = 0;
  std::uint32_t payload_bytes = 0;
  std::vector<TaskId> predecessors;
  std::vector<TaskId> successors;
};

/// Fully materialised DAG. Unlike the implicit UTS tree this is built up
/// front: dependency counting needs the reverse edges anyway, and the sizes
/// used in simulation (<= a few hundred thousand tasks) fit comfortably.
class Dag {
 public:
  explicit Dag(const DagParams& params);

  const DagParams& params() const noexcept { return params_; }
  std::uint32_t task_count() const noexcept {
    return static_cast<std::uint32_t>(tasks_.size());
  }
  const Task& task(TaskId id) const;

  std::uint32_t layer_of(TaskId id) const noexcept {
    return id / params_.width;
  }

  /// Tasks with no predecessors (all of layer 0).
  const std::vector<TaskId>& sources() const noexcept { return sources_; }

  std::uint64_t edge_count() const noexcept { return edges_; }

  /// Sum of all task costs: the T(1) baseline for speedup.
  support::SimTime total_cost() const noexcept { return total_cost_; }

  /// Length (in virtual time) of the longest cost-weighted path — the
  /// theoretical lower bound on any schedule's makespan.
  support::SimTime critical_path() const;

 private:
  DagParams params_;
  std::vector<Task> tasks_;
  std::vector<TaskId> sources_;
  std::uint64_t edges_ = 0;
  support::SimTime total_cost_ = 0;
};

}  // namespace dws::dag
