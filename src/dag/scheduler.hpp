#pragma once

#include <cstdint>
#include <vector>

#include "dag/generator.hpp"
#include "metrics/rank_stats.hpp"
#include "metrics/trace.hpp"
#include "sim/network.hpp"
#include "topo/allocation.hpp"
#include "topo/latency.hpp"
#include "ws/config.hpp"

namespace dws::dag {

/// Distributed work stealing over a task DAG — the paper's proposed
/// follow-up study (§VII). The protocol mirrors the UTS scheduler (steal
/// request/response with physical latencies, pluggable victim selection,
/// polling victims), with the dependency-specific twists:
///
///  - a task becomes ready when its last predecessor completes, on the rank
///    that completed it;
///  - steal responses carry task *descriptors* (16 bytes each), not data;
///  - before executing a task, the worker gathers every predecessor's
///    payload from wherever it was produced — the virtual gather time goes
///    through the same latency (and congestion) model as the steal traffic.
///    Stealing therefore moves the gather: this is exactly the "stealing a
///    task can trigger massive communications" effect the paper predicts.
///
/// Simplifications vs a real distributed runtime (documented, deliberate):
/// dependency counters are resolved with zero-cost global bookkeeping (the
/// data movement they would trigger *is* charged), and termination is
/// detected by the global completed-task count rather than a token ring —
/// the UTS scheduler already demonstrates the full protocol.
struct DagRunConfig {
  topo::TofuMachine machine;
  topo::Rank num_ranks = 2;
  topo::Placement placement = topo::Placement::kOnePerNode;
  std::uint32_t procs_per_node = 1;
  std::uint32_t origin_cube = 0;
  topo::LatencyParams latency;
  sim::CongestionParams congestion;

  ws::VictimPolicy victim_policy = ws::VictimPolicy::kRandom;
  std::uint64_t seed = 1;
  std::uint32_t descriptor_bytes = 16;
  std::uint32_t steal_request_bytes = 16;
  support::SimTime steal_handling_cost = 300;
  bool record_trace = true;

  void enable_congestion(double scale = 1.0) {
    congestion.enabled = true;
    congestion.capacity_hops =
        scale * 5.0 * static_cast<double>(num_ranks / procs_per_node);
  }
};

struct DagRunResult {
  support::SimTime runtime = 0;
  std::uint64_t tasks_executed = 0;
  support::SimTime total_cost = 0;     ///< T(1): sum of task costs
  support::SimTime critical_path = 0;  ///< schedule lower bound

  metrics::JobStats stats;
  std::vector<metrics::RankStats> per_rank;
  metrics::JobTrace trace;
  sim::NetworkStats network;

  double speedup() const noexcept {
    return runtime > 0 ? static_cast<double>(total_cost) /
                             static_cast<double>(runtime)
                       : 0.0;
  }
  /// Mean virtual gather time charged per executed task (ms).
  double mean_gather_ms = 0.0;
  std::uint64_t remote_inputs = 0;
};

/// Execute the whole DAG; every task runs exactly once (checked). The same
/// (dag, config) pair always produces the same result.
DagRunResult run_dag_simulation(const Dag& dag, const DagRunConfig& config);

}  // namespace dws::dag
