#include "dag/scheduler.hpp"

#include <deque>
#include <memory>
#include <variant>

#include "sim/engine.hpp"
#include "support/check.hpp"
#include "ws/victim.hpp"

namespace dws::dag {

namespace {

struct StealRequest {
  topo::Rank thief;
};
struct StealResponse {
  std::vector<TaskId> tasks;  // empty = refusal
};
using Message = std::variant<StealRequest, StealResponse>;

class DagWorker;

/// Direct-call delivery functor (mirrors ws::DeliverToWorkers).
struct DeliverToDagWorkers {
  std::vector<std::unique_ptr<DagWorker>>* workers = nullptr;
  void operator()(topo::Rank dst, Message msg) const;
};

using DagNetwork = sim::Network<Message, DeliverToDagWorkers>;

/// Whole-simulation shared state.
struct DagSim {
  const Dag* dag = nullptr;
  const DagRunConfig* config = nullptr;
  sim::Engine engine;
  std::unique_ptr<topo::JobLayout> layout;
  std::unique_ptr<topo::LatencyModel> latency;
  std::unique_ptr<DagNetwork> network;

  std::vector<std::uint32_t> remaining_preds;
  std::vector<topo::Rank> completion_rank;
  std::uint32_t completed = 0;
  support::SimTime finish_time = 0;
};

class DagWorker final : public sim::EventSink {
 public:
  DagWorker(topo::Rank rank, DagSim& sim)
      : rank_(rank), sim_(sim), trace_(metrics::Phase::kIdle, 0) {
    if (sim_.config->num_ranks > 1) {
      ws::WsConfig shim;
      shim.victim_policy = sim_.config->victim_policy;
      shim.seed = sim_.config->seed;
      selector_ = ws::make_selector(shim, rank_, *sim_.latency);
    }
  }

  void start() {
    if (!ready_.empty()) {
      activate(0);
    } else if (sim_.config->num_ranks > 1) {
      begin_session(0);
      try_steal();
    }
  }

  void seed_task(TaskId id) { ready_.push_back(id); }

  /// Typed-event dispatch (kDagStart / kDagTaskComplete).
  void on_event(const sim::Event& ev) override {
    switch (ev.kind) {
      case sim::EventKind::kDagStart:
        start();
        break;
      case sim::EventKind::kDagTaskComplete:
        complete(static_cast<TaskId>(ev.payload));
        break;
      default:
        DWS_CHECK(false);
    }
  }

  void on_message(Message msg) {
    if (done_) return;
    if (executing_) {
      inbox_.push_back(std::move(msg));  // polled at the next task boundary
      return;
    }
    handle(std::move(msg));
  }

  void finish_all(support::SimTime at) {
    if (done_) return;
    if (!executing_ && waiting_response_) {
      stats_.total_search_time += at - request_sent_;
    }
    if (!executing_ && session_open_) {
      stats_.total_session_time += at - session_start_;
    }
    done_ = true;
    stats_.finish_time = at;
  }

  const metrics::RankStats& stats() const noexcept { return stats_; }
  const metrics::RankTrace& trace() const noexcept { return trace_; }
  std::size_t ready_count() const noexcept { return ready_.size(); }

 private:
  void activate(support::SimTime now) {
    if (session_open_) {
      stats_.total_session_time += now - session_start_;
      session_open_ = false;
    }
    trace_.record(now, metrics::Phase::kActive);
    next_task();
  }

  void begin_session(support::SimTime now) {
    trace_.record(now, metrics::Phase::kIdle);
    ++stats_.sessions;
    session_start_ = now;
    session_open_ = true;
  }

  /// Pick up the next ready task (LIFO) and schedule its completion.
  void next_task() {
    DWS_CHECK(!executing_);
    // Task boundary: answer whatever queued up while we were busy. The
    // boundary flag stops a drained steal response from re-entering
    // next_task through activate() — its tasks just join ready_ and the
    // code below picks them up.
    in_boundary_ = true;
    support::SimTime busy = drain_inbox();
    in_boundary_ = false;
    if (done_) return;
    if (ready_.empty()) {
      const auto now = sim_.engine.now();
      begin_session(now);
      if (selector_ && !waiting_response_) try_steal();
      return;
    }
    const TaskId id = ready_.back();
    ready_.pop_back();
    executing_ = true;

    // Gather inputs from wherever the predecessors ran; the slowest fetch
    // bounds the start (fetches overlap).
    const Task& task = sim_.dag->task(id);
    support::SimTime gather = 0;
    for (const TaskId p : task.predecessors) {
      const topo::Rank producer = sim_.completion_rank[p];
      DWS_DCHECK(sim_.remaining_preds[id] == 0);
      if (producer == rank_) continue;
      ++stats_.remote_inputs;
      gather = std::max(gather, sim_.latency->message_latency(
                                    producer, rank_,
                                    sim_.dag->task(p).payload_bytes));
    }
    stats_.total_gather_time += gather;

    sim_.engine.schedule_after(busy + gather + task.cost, *this,
                               sim::EventKind::kDagTaskComplete, rank_, id);
  }

  void complete(TaskId id) {
    executing_ = false;
    ++stats_.nodes_processed;
    sim_.completion_rank[id] = rank_;
    for (const TaskId s : sim_.dag->task(id).successors) {
      DWS_CHECK(sim_.remaining_preds[s] > 0);
      if (--sim_.remaining_preds[s] == 0) ready_.push_back(s);
    }
    if (++sim_.completed == sim_.dag->task_count()) {
      sim_.finish_time = sim_.engine.now();
      sim_.engine.stop();
      return;
    }
    next_task();
  }

  support::SimTime drain_inbox() {
    support::SimTime busy = 0;
    for (std::size_t i = 0; i < inbox_.size(); ++i) {
      if (done_) break;
      Message msg = std::move(inbox_[i]);
      if (const auto* req = std::get_if<StealRequest>(&msg)) {
        busy += sim_.config->steal_handling_cost;
        serve_steal(*req);
      } else {
        handle(std::move(msg));
      }
    }
    inbox_.clear();
    return busy;
  }

  void handle(Message msg) {
    if (const auto* req = std::get_if<StealRequest>(&msg)) {
      serve_steal(*req);
      return;
    }
    auto& resp = std::get<StealResponse>(msg);
    DWS_CHECK(waiting_response_);
    waiting_response_ = false;
    stats_.total_search_time += sim_.engine.now() - request_sent_;
    if (resp.tasks.empty()) {
      ++stats_.failed_steals;
      if (!executing_ && !done_) try_steal();
      return;
    }
    ++stats_.successful_steals;
    stats_.chunks_received += resp.tasks.size();
    stats_.steal_distance_sum +=
        sim_.latency->euclidean(rank_, request_victim_);
    for (const TaskId t : resp.tasks) ready_.push_back(t);
    if (!executing_ && !in_boundary_) activate(sim_.engine.now());
  }

  void serve_steal(const StealRequest& req) {
    ++stats_.requests_served;
    StealResponse resp;
    // Keep at least one task for ourselves; ship half of the rest, oldest
    // first (they sit deepest in the dependency frontier).
    if (ready_.size() >= 2) {
      const std::size_t k = std::max<std::size_t>(1, (ready_.size() - 1) / 2);
      resp.tasks.assign(ready_.begin(),
                        ready_.begin() + static_cast<std::ptrdiff_t>(k));
      ready_.erase(ready_.begin(), ready_.begin() + static_cast<std::ptrdiff_t>(k));
      stats_.chunks_sent += k;
    }
    const auto bytes =
        sim_.config->descriptor_bytes *
        static_cast<std::uint32_t>(std::max<std::size_t>(resp.tasks.size(), 1));
    sim_.network->send(rank_, req.thief, std::move(resp), bytes);
  }

  void try_steal() {
    DWS_CHECK(!waiting_response_);
    const topo::Rank victim = selector_->next();
    ++stats_.steal_attempts;
    waiting_response_ = true;
    request_sent_ = sim_.engine.now();
    request_victim_ = victim;
    sim_.network->send(rank_, victim, StealRequest{rank_},
                       sim_.config->steal_request_bytes);
  }

  topo::Rank rank_;
  DagSim& sim_;
  std::deque<TaskId> ready_;
  std::unique_ptr<ws::VictimSelector> selector_;
  std::vector<Message> inbox_;
  bool executing_ = false;
  bool waiting_response_ = false;
  bool done_ = false;
  bool session_open_ = false;
  bool in_boundary_ = false;
  support::SimTime session_start_ = 0;
  support::SimTime request_sent_ = 0;
  topo::Rank request_victim_ = 0;
  metrics::RankStats stats_;
  metrics::RankTrace trace_;
};

void DeliverToDagWorkers::operator()(topo::Rank dst, Message msg) const {
  (*workers)[dst]->on_message(std::move(msg));
}

}  // namespace

DagRunResult run_dag_simulation(const Dag& dag, const DagRunConfig& config) {
  DWS_CHECK(config.num_ranks >= 1);

  DagSim sim;
  sim.dag = &dag;
  sim.config = &config;
  sim.layout = std::make_unique<topo::JobLayout>(
      config.machine, config.num_ranks, config.placement,
      config.procs_per_node, config.origin_cube);
  sim.latency = std::make_unique<topo::LatencyModel>(*sim.layout, config.latency);

  sim.remaining_preds.resize(dag.task_count());
  sim.completion_rank.assign(dag.task_count(), 0);
  for (TaskId id = 0; id < dag.task_count(); ++id) {
    sim.remaining_preds[id] =
        static_cast<std::uint32_t>(dag.task(id).predecessors.size());
  }

  std::vector<std::unique_ptr<DagWorker>> workers;
  workers.reserve(config.num_ranks);
  sim.network = std::make_unique<DagNetwork>(
      sim.engine, *sim.latency, DeliverToDagWorkers{&workers},
      config.congestion);

  for (topo::Rank r = 0; r < config.num_ranks; ++r) {
    workers.push_back(std::make_unique<DagWorker>(r, sim));
  }
  // All sources start on rank 0, like UTS's root — distribution is the
  // scheduler's problem.
  for (const TaskId s : dag.sources()) workers[0]->seed_task(s);

  for (topo::Rank r = 0; r < config.num_ranks; ++r) {
    sim.engine.schedule_at(0, *workers[r], sim::EventKind::kDagStart, r);
  }
  sim.engine.run();

  DWS_CHECK(sim.completed == dag.task_count());
  for (auto& w : workers) w->finish_all(sim.finish_time);

  DagRunResult result;
  result.runtime = sim.finish_time;
  result.total_cost = dag.total_cost();
  result.critical_path = dag.critical_path();
  result.per_rank.reserve(config.num_ranks);
  support::SimTime gather_total = 0;
  for (const auto& w : workers) {
    result.tasks_executed += w->stats().nodes_processed;
    gather_total += w->stats().total_gather_time;
    result.remote_inputs += w->stats().remote_inputs;
    result.per_rank.push_back(w->stats());
  }
  DWS_CHECK(result.tasks_executed == dag.task_count());
  result.stats = metrics::aggregate(result.per_rank);
  result.network = sim.network->stats();
  result.mean_gather_ms =
      result.tasks_executed > 0
          ? support::to_millis(gather_total) /
                static_cast<double>(result.tasks_executed)
          : 0.0;
  if (config.record_trace) {
    result.trace.total_time = sim.finish_time;
    for (const auto& w : workers) result.trace.ranks.push_back(w->trace());
  }
  return result;
}

}  // namespace dws::dag
