#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <variant>
#include <vector>

#include "fault/fault.hpp"
#include "metrics/rank_stats.hpp"
#include "proto/peer.hpp"
#include "proto/transport.hpp"
#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "sim/network.hpp"
#include "sim/pool.hpp"
#include "svc/arrival.hpp"
#include "svc/params.hpp"
#include "topo/allocation.hpp"
#include "topo/latency.hpp"
#include "topo/partition.hpp"
#include "ws/scheduler.hpp"

/// Internal machinery of the service runtime (DESIGN.md §13). The shapes
/// deliberately mirror ws/worker.hpp — MuxWorker is to a multi-tenant rank
/// what ws::Worker is to a single-job rank — so the two executors stay
/// reviewable side by side. Only service.hpp is the public surface.
namespace dws::svc {

// ---- Control vocabulary ----------------------------------------------------

/// Controller -> rank: a job was admitted; create its binding. The tree is
/// looked up from the shared ServicePlan by job id — control messages carry
/// placement, never payload. Under time sharing every rank receives the
/// admit (the job's peer ring spans the whole pool) with `leased` saying
/// whether this rank starts leased to the job; under space sharing only the
/// block's ranks do, always leased.
struct JobAdmit {
  JobId job = 0;
  topo::Rank base = 0;   ///< first global rank of the job's block
  topo::Rank width = 0;  ///< peer-ring size (time sharing: the whole pool)
  bool leased = true;
  topo::Rank handoff = 0;  ///< job-local rank to relinquish work to if parked
};

/// Controller -> rank: this rank's lease on `job` changed (time sharing
/// only). A revoke (`leased == false`) carries the job's *current* handoff
/// rank so the parked binding knows where to ship any work it holds now or
/// acquires later; handoff chains formed by stale targets terminate because
/// every hop was parked strictly later than its sender (see
/// JobBinding::activated).
struct LeaseUpdate {
  JobId job = 0;
  bool leased = false;
  topo::Rank handoff = 0;
};

/// Job-local rank 0 -> controller (global rank 0): the job's Mattern token
/// proved per-job quiescence at `Peer::terminated` time.
struct JobDone {
  JobId job = 0;
};

/// Everything that travels between service ranks: the untouched steal
/// protocol vocabulary, multiplexed by job id, plus the control plane.
struct Envelope {
  JobId job = 0;
  std::variant<proto::Message, JobAdmit, LeaseUpdate, JobDone> body;
};

class MuxWorker;

/// Routes a network delivery to the destination rank's mux. Concrete functor
/// so delivery stays a direct call (same pattern as ws::DeliverToWorkers).
struct DeliverToMux {
  std::vector<std::unique_ptr<MuxWorker>>* muxes = nullptr;
  void operator()(topo::Rank dst, Envelope env) const;
};

using SvcNetwork = sim::Network<Envelope, DeliverToMux>;

// ---- Shared immutable plan -------------------------------------------------

/// Everything decided before the run starts, shared read-only by every shard:
/// the resolved job stream, the global geometry, and (space sharing) the
/// per-block geometry slices. Heap/stack-pinned — the latency models point
/// at the layouts, so the plan must never move.
class ServicePlan {
 public:
  explicit ServicePlan(const ws::RunConfig& config);
  ServicePlan(const ServicePlan&) = delete;
  ServicePlan& operator=(const ServicePlan&) = delete;

  /// The latency model a job allocated at `base` selects victims with:
  /// its block slice under space sharing, the global model otherwise.
  const topo::LatencyModel& job_latency(topo::Rank base) const noexcept {
    return block_latency.empty() ? latency : block_latency[base / block_width];
  }

  std::vector<JobSpec> jobs;  ///< id-indexed, from generate_jobs
  topo::JobLayout layout;     ///< the whole pool's allocation
  topo::LatencyModel latency;
  /// Job block width: ranks_per_job under space sharing, num_ranks under
  /// time sharing (every job binds the whole pool).
  topo::Rank block_width = 0;
  std::uint32_t num_blocks = 0;  ///< space sharing: num_ranks / block_width
  /// Space sharing only: geometry slices per block, in block order. Sized
  /// exactly at construction — LatencyModel holds pointers into
  /// block_layouts, so neither vector may ever reallocate.
  std::vector<topo::JobLayout> block_layouts;
  std::vector<topo::LatencyModel> block_latency;
};

// ---- Shared mutable run state ----------------------------------------------

/// Per-job scheduling outcomes, id-indexed, shared across shards. Disjoint
/// single-writer fields: admit/base/width are written only by the controller
/// (shard 0) at admission; finish only by the shard owning the job's home
/// rank (job-local 0) at termination. Cross-shard reads happen after join.
struct JobRuntime {
  support::SimTime admit = -1;
  topo::Rank base = 0;
  topo::Rank width = 0;
  support::SimTime finish = -1;
  bool admitted() const noexcept { return admit >= 0; }
};

/// A packaged steal response waiting out its victim-side handling delay
/// (EventKind::kDeferredResponse; the svc twin of ws::PendingSend, with the
/// destination already translated to a global rank).
struct PendingEnvelope {
  JobId job = 0;
  topo::Rank dst = 0;  ///< global thief rank
  proto::StealResponse resp;
  std::uint32_t bytes = 0;
  fault::MsgClass cls = fault::MsgClass::kDroppable;
};

/// One armed protocol timer. Rank-level timer events carry a pool handle
/// because the payload must identify both the job and the peer's own value
/// (request id / token generation).
struct PendingTimer {
  JobId job = 0;
  std::uint32_t value = 0;
};

class Controller;

/// Per-shard execution context (serial runs are the one-shard case): the
/// engine/network pair, the shared plan, and the slab pools backing event
/// payloads. `controller` is non-null exactly on the shard owning global
/// rank 0.
struct ServiceContext {
  sim::Engine* engine = nullptr;
  SvcNetwork* network = nullptr;
  const ws::RunConfig* config = nullptr;
  const ServicePlan* plan = nullptr;
  fault::Injector* faults = nullptr;
  Controller* controller = nullptr;
  std::vector<std::unique_ptr<MuxWorker>>* muxes = nullptr;
  JobRuntime* runtimes = nullptr;  ///< shared id-indexed array

  sim::SlabPool<PendingEnvelope> deferred;
  sim::SlabPool<PendingTimer> timers;
};

// ---- Per-(rank, job) protocol binding --------------------------------------

/// One job's presence on one rank: a proto::Peer over job-local ranks plus
/// the execution loop ws::Worker implements for the single-job case. The
/// binding translates local<->global ranks at the transport seam and keeps
/// per-job step scheduling state so concurrent jobs on a rank interleave
/// freely (step events carry the job id in the event payload).
class JobBinding final : private proto::Transport {
 public:
  JobBinding(MuxWorker& mux, const JobSpec& spec, const JobAdmit& admit,
             support::SimTime now);

  /// t = admit: job-local rank 0 seeds the tree root (then immediately
  /// relinquishes it if parked), everyone else starts a discovery session.
  void start(support::SimTime now);
  void step();
  void on_proto(proto::Message msg, support::SimTime now);
  void on_lease(bool leased, topo::Rank handoff, support::SimTime now);
  void on_steal_timeout(std::uint32_t request_id, support::SimTime now);
  void on_token_timeout(std::uint32_t generation, support::SimTime now);

  bool done() const noexcept { return peer_.done(); }
  std::size_t stack_size() const noexcept { return peer_.stack().size(); }
  const metrics::RankStats& stats() const noexcept { return peer_.stats(); }
  JobId job() const noexcept { return spec_.id; }
  /// Virtual time of this binding's first node expansion; -1 if it never
  /// expanded one (the job-level value is the min over its bindings).
  support::SimTime first_compute() const noexcept { return first_compute_; }

 private:
  // proto::Transport — local ranks in, global envelopes out.
  void send(topo::Rank to, proto::Message msg, std::uint32_t bytes,
            fault::MsgClass cls) override;
  void send_deferred(support::SimTime delay, topo::Rank to,
                     proto::StealResponse resp, std::uint32_t bytes,
                     fault::MsgClass cls) override;
  void arm_steal_timer(support::SimTime delay,
                       std::uint32_t request_id) override;
  void arm_token_timer(support::SimTime delay,
                       std::uint32_t generation) override;
  void activated() override;
  void terminated(support::SimTime at) override;

  void schedule_step();
  support::SimTime drain_inbox();

  MuxWorker& mux_;
  const JobSpec& spec_;
  topo::Rank base_ = 0;
  topo::Rank width_ = 0;
  topo::Rank local_ = 0;    ///< this rank's job-local id
  topo::Rank handoff_ = 0;  ///< job-local relinquish target while parked
  proto::Peer peer_;

  bool step_scheduled_ = false;
  std::vector<proto::Message> inbox_;
  support::SimTime per_node_cost_ = 0;
  support::SimTime first_compute_ = -1;
};

// ---- Per-rank multiplexer --------------------------------------------------

/// One global rank of the service pool: owns the rank's job bindings and
/// demultiplexes envelopes, typed events and fault perturbations onto them.
/// Bindings persist for the whole run once created (envelopes to done
/// bindings are dropped, exactly like ws::Worker drops post-termination
/// stragglers); proto traffic arriving before the job's admit — possible
/// under fault jitter, where a peer's first steal request can overtake the
/// controller's admit on a different channel — parks in a per-job pending
/// buffer drained at admission.
class MuxWorker final : public sim::EventSink {
 public:
  MuxWorker(topo::Rank rank, ServiceContext& ctx);

  void on_event(const sim::Event& ev) override;
  /// Network delivery entry point.
  void on_envelope(Envelope env);
  /// Direct-call twins of the control envelopes, used by the controller for
  /// its own rank (the network forbids self-sends).
  void admit(const JobAdmit& a, support::SimTime now);
  void lease(const LeaseUpdate& u, support::SimTime now);

  topo::Rank rank() const noexcept { return rank_; }
  ServiceContext& ctx() noexcept { return ctx_; }
  /// The rank's one-shot transient pause (fault layer): per *rank*, not per
  /// binding — the physical rank stalls once, whichever job's step boundary
  /// crosses the scheduled start first.
  bool take_pause(support::SimTime now);

  const std::unordered_map<JobId, std::unique_ptr<JobBinding>>& bindings()
      const noexcept {
    return bindings_;
  }
  std::size_t pending_messages() const noexcept;

 private:
  void route_proto(JobId job, proto::Message msg);

  topo::Rank rank_;
  ServiceContext& ctx_;
  std::unordered_map<JobId, std::unique_ptr<JobBinding>> bindings_;
  /// Proto messages that arrived before their job's admit.
  std::unordered_map<JobId, std::vector<proto::Message>> pending_;
  bool pause_taken_ = false;
};

// ---- Admission / allocation controller -------------------------------------

/// The scheduler-as-a-service brain, attached to global rank 0 (and thus
/// shard 0): turns kSvcArrival events into admissions, owns the allocation
/// policy (space-shared blocks or time-shared elastic leases), and retires
/// jobs on JobDone. All of its decisions flow from shard-0-local event order,
/// so they are shard-count invariant.
class Controller final : public sim::EventSink {
 public:
  explicit Controller(ServiceContext& ctx);

  /// Schedule every job's kSvcArrival on the controller's engine. Same-time
  /// arrivals fire in job-id order (they are scheduled in id order and the
  /// ordering key falls through to seq).
  void schedule_arrivals();

  void on_event(const sim::Event& ev) override;
  /// A job's home binding reported per-job termination.
  void on_job_done(JobId id, support::SimTime now);

  bool all_done() const noexcept {
    return done_count_ == ctx_.plan->jobs.size();
  }
  std::size_t queued() const noexcept { return queue_.size(); }

 private:
  static constexpr JobId kNoJob = ~JobId{0};

  void try_admit(JobId id, support::SimTime now);
  void admit_space(JobId id, std::uint32_t block, support::SimTime now);
  void admit_time(JobId id, support::SimTime now);
  /// Time sharing: recompute the equal contiguous lease slices over
  /// `active_` and send revokes-then-grants to every rank whose owner
  /// changed. `admitting` suppresses grants for the job whose JobAdmit
  /// (which carries its own lease bit) is being fanned out in this step.
  void rebalance(JobId admitting, support::SimTime now);
  /// Owner job of rank `r` under the current active_ slices; kNoJob if none.
  JobId owner_of(topo::Rank r) const;
  /// Job-local first rank of `id`'s current slice (its handoff target).
  topo::Rank handoff_of(JobId id) const;
  void send_admit(const JobAdmit& a, topo::Rank dst, support::SimTime now);
  void send_lease(const LeaseUpdate& u, topo::Rank dst, support::SimTime now);

  ServiceContext& ctx_;
  std::deque<JobId> queue_;  ///< admission FIFO when the pool is full
  std::vector<std::uint8_t> job_done_;
  std::uint32_t done_count_ = 0;

  // Space sharing.
  std::vector<std::uint8_t> block_free_;

  // Time sharing.
  std::vector<JobId> active_;         ///< sorted by id
  std::vector<JobId> lease_of_rank_;  ///< current owner per rank (kNoJob)
};

// ---- Internal seams between service.cpp and shard.cpp ----------------------

/// Fold per-binding stats into per-rank and per-job results, running the
/// always-on service audit (every binding done with an empty stack and no
/// pre-admit messages parked; per-job chunks sent == received — work
/// conservation under elastic grow/shrink). `muxes` is global-rank indexed
/// and fully populated (the sharded caller stitches shards back together).
/// Network/fault/engine statistics are the caller's to fill.
ws::RunResult assemble_service_result(
    const ws::RunConfig& config, const ServicePlan& plan,
    const std::vector<JobRuntime>& runtimes,
    const std::vector<const MuxWorker*>& muxes);

/// Conservative-parallel execution of a service run (svc/shard.cpp), the
/// svc twin of ws::run_sharded. Byte-identical results to the serial path
/// for every configuration validate() admits.
ws::RunResult run_service_sharded(const ws::RunConfig& config,
                                  const ServicePlan& plan,
                                  std::vector<JobRuntime>& runtimes,
                                  sim::CongestionParams congestion,
                                  topo::ShardPartition part);

}  // namespace dws::svc
