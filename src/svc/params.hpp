#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/sim_time.hpp"
#include "topo/allocation.hpp"

/// Service-layer parameters (DESIGN.md §13). Header-only POD so that
/// ws::RunConfig can embed it (like fault::FaultConfig) without dws_ws
/// depending on the dws_svc library — the service *runtime* lives above ws
/// and depends on it, not the other way round.
namespace dws::svc {

using JobId = std::uint32_t;

/// How job arrival times are generated.
enum class ArrivalKind : std::uint8_t {
  kPoisson,  ///< exponential inter-arrivals with mean `mean_interarrival`
  kTrace,    ///< explicit absolute arrival times from `trace`
};

/// How the rank pool is shared between concurrent jobs.
enum class AllocPolicy : std::uint8_t {
  /// Space sharing: each job gets an exclusive, contiguous block of
  /// `ranks_per_job` ranks for its whole lifetime (first-fit lowest base);
  /// jobs queue FIFO when no block is free.
  kSpaceShare,
  /// Time sharing: every job binds to ALL ranks, but at any instant each
  /// rank is *leased* to exactly one active job. Leases are equal contiguous
  /// slices recomputed on every arrival/completion — a job's rank set grows
  /// and shrinks elastically mid-flight (parked ranks relinquish their work;
  /// see proto::Peer::set_parked/relinquish).
  kTimeShare,
};

/// What kind of workload a job runs. Only kUts is implemented; kDag is the
/// documented extension seam (RunConfig::validate rejects it for now).
enum class JobKind : std::uint8_t { kUts, kDag };

/// One entry of the job-size mix: a tree from uts::catalogue() drawn with
/// probability weight/Σweights. An empty mix runs every job on the config's
/// own `tree`.
struct JobMixEntry {
  std::string tree;
  double weight = 1.0;
};

/// The service layer's knobs. `enabled == false` leaves every existing
/// single-job code path untouched (and out of config fingerprints).
struct ServiceParams {
  bool enabled = false;

  /// Root of all service-side randomness: arrival draws and the per-job RNG
  /// streams hash(seed, job_id) — NOT the arrival interleaving — so a job's
  /// tree shape is invariant under admission reordering.
  std::uint64_t seed = 1;

  std::uint32_t num_jobs = 0;

  ArrivalKind arrival = ArrivalKind::kPoisson;
  /// kPoisson: mean inter-arrival gap in virtual ns.
  support::SimTime mean_interarrival = 0;
  /// kTrace: absolute arrival times in virtual ns, one per job (num_jobs is
  /// taken from its size). Need not be sorted: job ids follow trace order,
  /// admission follows time order.
  std::vector<support::SimTime> trace;

  AllocPolicy alloc = AllocPolicy::kSpaceShare;
  /// kSpaceShare: exclusive block width per job (1..num_ranks, dividing the
  /// pool into num_ranks/ranks_per_job blocks).
  topo::Rank ranks_per_job = 0;

  JobKind kind = JobKind::kUts;
  std::vector<JobMixEntry> mix;
};

inline const char* to_string(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kTrace: return "trace";
  }
  return "?";
}

inline const char* to_string(AllocPolicy p) {
  switch (p) {
    case AllocPolicy::kSpaceShare: return "space";
    case AllocPolicy::kTimeShare: return "time";
  }
  return "?";
}

inline const char* to_string(JobKind k) {
  switch (k) {
    case JobKind::kUts: return "uts";
    case JobKind::kDag: return "dag";
  }
  return "?";
}

}  // namespace dws::svc
