#include "svc/service.hpp"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "support/check.hpp"
#include "svc/mux.hpp"
#include "topo/partition.hpp"
#include "uts/sequential.hpp"

namespace dws::svc {

namespace {

/// Field-wise accumulation of one binding's counters into its rank's row.
/// finish_time is a max (the rank's last job termination), everything else
/// a sum.
void fold_stats(metrics::RankStats& into, const metrics::RankStats& s) {
  into.nodes_processed += s.nodes_processed;
  into.leaves_seen += s.leaves_seen;
  into.steal_attempts += s.steal_attempts;
  into.failed_steals += s.failed_steals;
  into.successful_steals += s.successful_steals;
  into.requests_served += s.requests_served;
  into.chunks_sent += s.chunks_sent;
  into.chunks_received += s.chunks_received;
  into.steal_timeouts += s.steal_timeouts;
  into.steal_retries += s.steal_retries;
  into.duplicate_responses += s.duplicate_responses;
  into.token_regens += s.token_regens;
  into.steal_distance_sum += s.steal_distance_sum;
  into.lifeline_registrations += s.lifeline_registrations;
  into.lifeline_pushes += s.lifeline_pushes;
  into.sessions += s.sessions;
  into.total_session_time += s.total_session_time;
  into.total_search_time += s.total_search_time;
  into.total_gather_time += s.total_gather_time;
  into.remote_inputs += s.remote_inputs;
  into.finish_time = std::max(into.finish_time, s.finish_time);
}

}  // namespace

ws::RunResult assemble_service_result(
    const ws::RunConfig& config, const ServicePlan& plan,
    const std::vector<JobRuntime>& runtimes,
    const std::vector<const MuxWorker*>& muxes) {
  ws::RunResult result;
  result.num_ranks = config.num_ranks;
  result.per_node_cost = config.ws.node_cost();
  result.per_rank.assign(config.num_ranks, metrics::RankStats{});
  result.jobs.reserve(plan.jobs.size());

  // Per-job accumulation in job-id order. Iterating job ids (not the muxes'
  // hash maps) keeps the double sums deterministic.
  for (const JobSpec& spec : plan.jobs) {
    const JobRuntime& rt = runtimes[spec.id];
    DWS_CHECK(rt.admitted());
    DWS_CHECK(rt.finish >= rt.admit);

    metrics::JobOutcome out;
    out.job_id = spec.id;
    out.tree = spec.tree.name;
    out.root_seed = spec.tree.root_seed;
    out.base = rt.base;
    out.width = rt.width;
    out.arrival = spec.arrival;
    out.admit = rt.admit;
    out.finish = rt.finish;

    support::SimTime first = -1;
    for (topo::Rank r = rt.base; r < rt.base + rt.width; ++r) {
      const auto it = muxes[r]->bindings().find(spec.id);
      DWS_CHECK(it != muxes[r]->bindings().end());
      const JobBinding& b = *it->second;
      DWS_CHECK(b.done());
      DWS_CHECK(b.stack_size() == 0);
      const metrics::RankStats& s = b.stats();
      out.nodes += s.nodes_processed;
      out.leaves += s.leaves_seen;
      out.chunks_sent += s.chunks_sent;
      out.chunks_received += s.chunks_received;
      out.steal_attempts += s.steal_attempts;
      out.successful_steals += s.successful_steals;
      if (b.first_compute() >= 0) {
        first = first < 0 ? b.first_compute()
                          : std::min(first, b.first_compute());
      }
      fold_stats(result.per_rank[r], s);
    }
    // Work conservation per job: every chunk a binding shipped — steals and
    // lease-relinquish pushes alike — landed at a binding of the same job.
    DWS_CHECK(out.chunks_sent == out.chunks_received);
    DWS_CHECK(out.nodes >= 1);  // at least the root was expanded
    DWS_CHECK(first >= out.admit);
    out.first_compute = first;
    DWS_CHECK(out.finish >= out.first_compute);

    result.nodes += out.nodes;
    result.leaves += out.leaves;
    result.runtime = std::max(result.runtime, out.finish);
    result.jobs.push_back(std::move(out));
  }

  for (topo::Rank r = 0; r < config.num_ranks; ++r) {
    DWS_CHECK(muxes[r]->pending_messages() == 0);
  }
  result.stats = metrics::aggregate(result.per_rank);
  return result;
}

ws::RunResult run_service(const ws::RunConfig& config) {
  DWS_CHECK(config.svc.enabled);
  DWS_CHECK(config.num_ranks >= 1);

  const ServicePlan plan(config);

  // Congestion re-anchoring, exactly as ws::run_simulation does it.
  sim::CongestionParams congestion = config.congestion;
  if (congestion.enabled && config.congestion_scale > 0.0) {
    congestion.capacity_hops =
        config.congestion_scale * 5.0 *
        static_cast<double>(config.num_ranks / config.procs_per_node);
  }

  std::vector<JobRuntime> runtimes(plan.jobs.size());

  if (config.sim_shards > 1) {
    topo::ShardPartition part =
        topo::partition_ranks(plan.layout, config.latency, config.sim_shards);
    if (part.num_shards > 1) {
      return run_service_sharded(config, plan, runtimes, congestion,
                                 std::move(part));
    }
  }

  sim::Engine engine;
  std::vector<std::unique_ptr<MuxWorker>> muxes;

  fault::Injector injector(config.fault, config.num_ranks);
  fault::Injector* faults = injector.enabled() ? &injector : nullptr;

  SvcNetwork network(engine, plan.latency, DeliverToMux{&muxes}, congestion,
                     faults);

  ServiceContext ctx;
  ctx.engine = &engine;
  ctx.network = &network;
  ctx.config = &config;
  ctx.plan = &plan;
  ctx.faults = faults;
  ctx.muxes = &muxes;
  ctx.runtimes = runtimes.data();

  muxes.reserve(config.num_ranks);
  for (topo::Rank r = 0; r < config.num_ranks; ++r) {
    muxes.push_back(std::make_unique<MuxWorker>(r, ctx));
  }
  Controller controller(ctx);
  ctx.controller = &controller;
  controller.schedule_arrivals();

  // No global termination flag: the engine drains naturally once every
  // job's protocol went quiet (plus any stale timers, which no-op).
  engine.run();

  DWS_CHECK(controller.all_done());
  DWS_CHECK(controller.queued() == 0);
  DWS_CHECK(ctx.deferred.in_use() == 0);
  DWS_CHECK(ctx.timers.in_use() == 0);

  std::vector<const MuxWorker*> mux_ptrs;
  mux_ptrs.reserve(config.num_ranks);
  for (const auto& m : muxes) mux_ptrs.push_back(m.get());

  ws::RunResult result =
      assemble_service_result(config, plan, runtimes, mux_ptrs);
  result.network = network.stats();
  result.faults = injector.stats();
  result.engine_events = engine.events_executed();
  result.engine_peak_pending = engine.max_pending();
  result.shards_used = 1;
  result.merge_ambiguities = engine.merge_ambiguities();
  return result;
}

ws::RunResult checked_service_run(const ws::RunConfig& config) {
  ws::RunResult result = run_service(config);
  // Sequential oracle, per job: the parallel multi-tenant execution must
  // have expanded exactly the tree the job's (svc.seed, id)-derived root
  // seed defines — no lost or duplicated work through steals, parked-rank
  // refusals, or lease-relinquish hand-offs.
  const std::vector<JobSpec> jobs = generate_jobs(config.svc, config.tree);
  DWS_CHECK(jobs.size() == result.jobs.size());
  for (const metrics::JobOutcome& out : result.jobs) {
    const uts::TreeStats oracle =
        uts::enumerate_sequential(jobs[out.job_id].tree, out.nodes + 1);
    DWS_CHECK(!oracle.truncated);
    DWS_CHECK(oracle.nodes == out.nodes);
    DWS_CHECK(oracle.leaves == out.leaves);
  }
  return result;
}

}  // namespace dws::svc
