#pragma once

#include "ws/scheduler.hpp"

namespace dws::svc {

/// Execute a multi-tenant service run (DESIGN.md §13): a stream of UTS jobs
/// arriving over virtual time (config.svc), sharing config.num_ranks ranks
/// under the configured allocation policy, each job running the unmodified
/// proto::Peer steal protocol over its own job-local rank ring with its own
/// Mattern termination token. Requires config.svc.enabled (single-job
/// configs run ws::run_simulation; the dispatch lives in exp::run_backend /
/// audit::checked_run).
///
/// Deterministic: equal configs produce bit-identical RunResults, at any
/// sim_shards count (the differential suite pins byte-identity at shards
/// {1, 2, 4, 8}). RunResult::jobs carries one JobOutcome per job in id
/// order; runtime is the last job's finish time; traces are never recorded.
/// Aborts (DWS_CHECK) on conservation violations: a binding left
/// unterminated, stacks or pending buffers non-empty, or a job whose chunks
/// sent != chunks received across its bindings.
ws::RunResult run_service(const ws::RunConfig& config);

/// run_service plus the per-job work-conservation oracle: every job's node
/// and leaf totals must equal its tree's sequential enumeration — the svc
/// twin of the audit harness's sequential oracle, covering elastic lease
/// grow/shrink hand-offs.
ws::RunResult checked_service_run(const ws::RunConfig& config);

}  // namespace dws::svc
