#pragma once

#include <cstdint>
#include <vector>

#include "support/sim_time.hpp"
#include "svc/params.hpp"
#include "uts/params.hpp"

namespace dws::svc {

/// One job of the service stream, fully resolved before the run starts:
/// identity, arrival time, and the tree it will expand. Immutable — every
/// shard reads the same plan.
struct JobSpec {
  JobId id = 0;
  support::SimTime arrival = 0;
  uts::TreeParams tree;  ///< mix pick with the per-job root seed applied
};

/// Materialize the arrival process: one JobSpec per job, in job-id order.
///
/// Determinism contract (the satellite-2 regression pins it): a job's tree —
/// both the mix pick and its root seed — is a pure function of
/// (params.seed, job id), NOT of the arrival interleaving. Reordering a
/// trace therefore reorders *when* jobs arrive but never *what* they
/// compute. Arrival times draw from an independent stream of params.seed.
///
/// `default_tree` is used when params.mix is empty (every job runs the
/// config's own tree, reseeded per job).
std::vector<JobSpec> generate_jobs(const ServiceParams& params,
                                   const uts::TreeParams& default_tree);

}  // namespace dws::svc
