#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "sim/engine.hpp"
#include "support/check.hpp"
#include "svc/mux.hpp"

namespace dws::svc {

namespace {

constexpr support::SimTime kInf = std::numeric_limits<support::SimTime>::max();

/// One cross-shard envelope parked between the sender's window and the
/// receiver's drain (the svc twin of ws' MailEntry — only the payload type
/// differs; the conservative-window argument in ws/shard.cpp carries over
/// unchanged because both fabrics move only kNetworkDeliver across shards).
struct MailEntry {
  support::SimTime arrival = 0;
  support::SimTime t_sched = 0;
  topo::Rank src = 0;
  topo::Rank dst = 0;
  Envelope env;
};

/// One (src shard, dst shard) mailbox; written only during the source's
/// execution phase, drained only by the destination between windows.
struct alignas(64) MailSlot {
  std::vector<MailEntry> entries;
};

class ShardRouter final : public SvcNetwork::Router {
 public:
  ShardRouter(const std::vector<std::uint32_t>& shard_of_rank,
              std::uint32_t my_shard, MailSlot* row)
      : shard_of_rank_(&shard_of_rank), my_shard_(my_shard), row_(row) {}

  bool is_remote(topo::Rank dst) const override {
    return (*shard_of_rank_)[dst] != my_shard_;
  }
  void post(topo::Rank dst, support::SimTime arrival, support::SimTime t_sched,
            topo::Rank src, Envelope env) override {
    row_[(*shard_of_rank_)[dst]].entries.push_back(
        MailEntry{arrival, t_sched, src, dst, std::move(env)});
  }

 private:
  const std::vector<std::uint32_t>* shard_of_rank_;
  std::uint32_t my_shard_;
  MailSlot* row_;  // this shard's S outbound slots
};

/// Everything one shard thread owns. The mux vector is num_ranks wide so
/// DeliverToMux indexes by global rank; remote slots stay null. The shard
/// owning global rank 0 additionally hosts the controller — every admission
/// decision then flows from shard-0-local event order (kSvcArrival and
/// JobDone deliveries), which the merge rule makes shard-count invariant.
struct SvcShard {
  explicit SvcShard(std::uint32_t id) : engine(id) {}

  sim::Engine engine;
  std::unique_ptr<ShardRouter> router;
  std::unique_ptr<SvcNetwork> network;
  /// Shard-private injector: per-channel draw keying means the S copies make
  /// exactly the serial injector's decisions (see ws/shard.cpp).
  std::unique_ptr<fault::Injector> injector;
  std::vector<std::unique_ptr<MuxWorker>> muxes;
  ServiceContext ctx;
  std::unique_ptr<Controller> controller;  ///< shard 0 only
  support::SimTime next_time = kInf;
};

}  // namespace

ws::RunResult run_service_sharded(const ws::RunConfig& config,
                                  const ServicePlan& plan,
                                  std::vector<JobRuntime>& runtimes,
                                  sim::CongestionParams congestion,
                                  topo::ShardPartition part) {
  const std::uint32_t num_shards = part.num_shards;
  DWS_CHECK(num_shards > 1);
  DWS_CHECK(part.lookahead > 0);
  DWS_CHECK(part.shard_of_rank.size() == plan.layout.num_ranks());
  // Partitions are contiguous in rank order, so the controller's rank is
  // always shard 0's first rank.
  DWS_CHECK(part.shard_of_rank[0] == 0);

  std::unique_ptr<sim::CongestionLedger> ledger;
  if (congestion.enabled) {
    const support::SimTime window =
        sim::congestion_window(congestion, plan.latency.params());
    ledger = std::make_unique<sim::CongestionLedger>(window);
    part.lookahead = std::min(part.lookahead, window);
    DWS_CHECK(part.lookahead > 0);
  }

  std::vector<MailSlot> mail(static_cast<std::size_t>(num_shards) *
                             num_shards);
  std::vector<std::unique_ptr<SvcShard>> shards;
  shards.reserve(num_shards);

  for (std::uint32_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<SvcShard>(s);
    shard->router = std::make_unique<ShardRouter>(
        part.shard_of_rank, s, &mail[static_cast<std::size_t>(s) * num_shards]);
    shard->injector =
        std::make_unique<fault::Injector>(config.fault, config.num_ranks);
    fault::Injector* faults =
        shard->injector->enabled() ? shard->injector.get() : nullptr;
    shard->network = std::make_unique<SvcNetwork>(
        shard->engine, plan.latency, DeliverToMux{&shard->muxes}, congestion,
        faults);
    shard->network->set_router(shard->router.get());
    if (ledger) shard->network->set_shared_ledger(ledger.get());

    ServiceContext& ctx = shard->ctx;
    ctx.engine = &shard->engine;
    ctx.network = shard->network.get();
    ctx.config = &config;
    ctx.plan = &plan;
    ctx.faults = faults;
    ctx.muxes = &shard->muxes;
    ctx.runtimes = runtimes.data();

    shard->muxes.resize(config.num_ranks);
    for (topo::Rank r : part.shard_ranks[s]) {
      shard->muxes[r] = std::make_unique<MuxWorker>(r, ctx);
    }
    if (s == 0) {
      shard->controller = std::make_unique<Controller>(ctx);
      ctx.controller = shard->controller.get();
      // Before the loop: kSvcArrival events only ever live on this engine.
      shard->controller->schedule_arrivals();
    }
    shards.push_back(std::move(shard));
  }

  // ---- conservative window loop ---------------------------------------------
  //
  // Identical to ws/shard.cpp's loop (see the long comment there): drain
  // inbound mailboxes in ascending source-shard order, publish next event
  // times, compute w_end = min + lookahead at the sync barrier, execute,
  // flush retirements, repeat. The service control plane adds no new
  // cross-shard edges — admits/leases/dones are ordinary kReliable network
  // sends and kSvcArrival never leaves shard 0 — so the conservative
  // property is inherited as-is.
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;
  auto record_error = [&]() {
    std::lock_guard<std::mutex> lock(error_mu);
    if (!error) error = std::current_exception();
    failed.store(true, std::memory_order_release);
  };

  support::SimTime w_end = 0;
  bool done = false;
  std::barrier sync(num_shards, [&]() noexcept {
    if (ledger) {
      for (const auto& s : shards) s->network->drain_pending_loads(*ledger);
    }
    support::SimTime t_min = kInf;
    for (const auto& s : shards) t_min = std::min(t_min, s->next_time);
    if (t_min == kInf || failed.load(std::memory_order_acquire)) {
      done = true;
      return;
    }
    w_end = t_min > kInf - part.lookahead ? kInf : t_min + part.lookahead;
  });
  std::barrier exec_done(num_shards);

  auto shard_main = [&](std::uint32_t me) {
    SvcShard& sh = *shards[me];
    while (true) {
      try {
        if (!failed.load(std::memory_order_acquire)) {
          for (std::uint32_t src = 0; src < num_shards; ++src) {
            if (src == me) continue;
            auto& slot =
                mail[static_cast<std::size_t>(src) * num_shards + me];
            for (MailEntry& entry : slot.entries) {
              sh.network->accept_remote(entry.arrival, entry.t_sched, src,
                                        entry.src, entry.dst,
                                        std::move(entry.env));
            }
            slot.entries.clear();
          }
          sh.next_time = sh.engine.next_event_time(kInf);
        } else {
          sh.next_time = kInf;
        }
      } catch (...) {
        record_error();
        sh.next_time = kInf;
      }
      sync.arrive_and_wait();
      if (done) break;
      try {
        sh.engine.run_until(w_end);
        sh.network->flush_retirements();
      } catch (...) {
        record_error();
      }
      exec_done.arrive_and_wait();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_shards);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    threads.emplace_back(shard_main, s);
  }
  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);

  // Post-run invariants: every job admitted and retired, no envelope or
  // timer payload leaked, every mailbox drained.
  DWS_CHECK(shards[0]->controller->all_done());
  DWS_CHECK(shards[0]->controller->queued() == 0);
  for (const auto& sh : shards) {
    DWS_CHECK(sh->ctx.deferred.in_use() == 0);
    DWS_CHECK(sh->ctx.timers.in_use() == 0);
  }
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    for (std::uint32_t d = 0; d < num_shards; ++d) {
      DWS_CHECK(mail[static_cast<std::size_t>(s) * num_shards + d]
                    .entries.empty());
    }
  }

  // Stitch the muxes back into global rank order and assemble exactly as the
  // serial path does — byte-identical per-rank and per-job results.
  std::vector<const MuxWorker*> mux_ptrs;
  mux_ptrs.reserve(config.num_ranks);
  for (topo::Rank r = 0; r < config.num_ranks; ++r) {
    mux_ptrs.push_back(shards[part.shard_of_rank[r]]->muxes[r].get());
  }
  ws::RunResult result =
      assemble_service_result(config, plan, runtimes, mux_ptrs);
  result.shards_used = num_shards;
  for (const auto& sh : shards) {
    const sim::NetworkStats& ns = sh->network->stats();
    result.network.messages += ns.messages;
    result.network.bytes += ns.bytes;
    result.network.intra_node_messages += ns.intra_node_messages;
    result.network.max_load_hops =
        std::max(result.network.max_load_hops, ns.max_load_hops);
    result.network.peak_channels += ns.peak_channels;
    const fault::FaultStats& fs = sh->injector->stats();
    result.faults.dropped_messages += fs.dropped_messages;
    result.faults.dropped_bytes += fs.dropped_bytes;
    result.faults.duplicated_messages += fs.duplicated_messages;
    result.faults.duplicated_bytes += fs.duplicated_bytes;
    result.engine_events += sh->engine.events_executed();
    result.engine_peak_pending = std::max<std::uint64_t>(
        result.engine_peak_pending, sh->engine.max_pending());
    result.merge_ambiguities += sh->engine.merge_ambiguities();
  }
  if (ledger) {
    result.network.max_load_hops = ledger->max_boundary_load();
  }
  return result;
}

}  // namespace dws::svc
