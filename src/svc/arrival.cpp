#include "svc/arrival.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dws::svc {

namespace {

/// The per-job RNG stream root: hash of (seed, job id). SplitMix64's
/// increment constant spaces consecutive ids a full Weyl step apart, and its
/// output scrambling decorrelates them.
support::SplitMix64 job_stream(std::uint64_t seed, JobId id) {
  return support::SplitMix64(seed +
                             0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(id) + 1));
}

uts::TreeParams resolve_tree(const ServiceParams& params,
                             const uts::TreeParams& default_tree, JobId id) {
  support::SplitMix64 sm = job_stream(params.seed, id);
  uts::TreeParams tree;
  if (params.mix.empty()) {
    tree = default_tree;
  } else {
    // Weighted pick on the first draw of the job's stream.
    double total = 0.0;
    for (const auto& e : params.mix) total += e.weight;
    const double u =
        static_cast<double>(sm.next() >> 11) * 0x1.0p-53 * total;
    double cum = 0.0;
    const JobMixEntry* pick = &params.mix.back();
    for (const auto& e : params.mix) {
      cum += e.weight;
      if (u < cum) {
        pick = &e;
        break;
      }
    }
    const uts::TreeParams* named = uts::find_tree(pick->tree);
    DWS_CHECK(named != nullptr && "validate() screens mix names");
    tree = *named;
  }
  // The job's whole tree shape follows from this one seed (the UTS SHA-1
  // splittable RNG is keyed on it): per-job streams, not arrival order.
  tree.root_seed = static_cast<std::uint32_t>(sm.next());
  return tree;
}

}  // namespace

std::vector<JobSpec> generate_jobs(const ServiceParams& params,
                                   const uts::TreeParams& default_tree) {
  std::uint32_t num_jobs = params.num_jobs;
  if (params.arrival == ArrivalKind::kTrace) {
    num_jobs = static_cast<std::uint32_t>(params.trace.size());
  }
  DWS_CHECK(num_jobs > 0);

  std::vector<JobSpec> jobs;
  jobs.reserve(num_jobs);

  // Arrival times draw from their own stream so that adding/removing jobs
  // from the mix cannot shift them (and vice versa).
  support::Xoshiro256StarStar arrivals(params.seed ^ 0xa55a5aa55aa5a55aull);
  support::SimTime t = 0;
  for (JobId id = 0; id < num_jobs; ++id) {
    JobSpec spec;
    spec.id = id;
    if (params.arrival == ArrivalKind::kTrace) {
      spec.arrival = params.trace[id];
    } else {
      // Exponential inter-arrival, floored at 1 ns so equal-time pileups
      // only happen when a trace asks for them.
      const double u = arrivals.next_double();
      const double gap = -static_cast<double>(params.mean_interarrival) *
                         std::log1p(-u);
      t += std::max<support::SimTime>(
          1, static_cast<support::SimTime>(std::llround(gap)));
      spec.arrival = t;
    }
    spec.tree = resolve_tree(params, default_tree, id);
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

}  // namespace dws::svc
