#include "svc/mux.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"
#include "uts/tree.hpp"

namespace dws::svc {

// ---- DeliverToMux ----------------------------------------------------------

void DeliverToMux::operator()(topo::Rank dst, Envelope env) const {
  (*muxes)[dst]->on_envelope(std::move(env));
}

// ---- ServicePlan -----------------------------------------------------------

ServicePlan::ServicePlan(const ws::RunConfig& config)
    : jobs(generate_jobs(config.svc, config.tree)),
      layout(config.machine, config.num_ranks, config.placement,
             config.procs_per_node, config.origin_cube),
      latency(layout, config.latency) {
  if (config.svc.alloc == AllocPolicy::kSpaceShare) {
    block_width = config.svc.ranks_per_job;
    num_blocks = config.num_ranks / block_width;
    // Exact reservation: the latency models hold pointers into
    // block_layouts, so a reallocation after the first emplace would dangle.
    block_layouts.reserve(num_blocks);
    for (std::uint32_t b = 0; b < num_blocks; ++b) {
      block_layouts.push_back(
          topo::JobLayout::slice(layout, b * block_width, block_width));
    }
    block_latency.reserve(num_blocks);
    for (std::uint32_t b = 0; b < num_blocks; ++b) {
      block_latency.emplace_back(block_layouts[b], config.latency);
    }
  } else {
    block_width = config.num_ranks;
    num_blocks = 1;
  }
}

// ---- JobBinding ------------------------------------------------------------

JobBinding::JobBinding(MuxWorker& mux, const JobSpec& spec,
                       const JobAdmit& admit, support::SimTime now)
    : mux_(mux),
      spec_(spec),
      base_(admit.base),
      width_(admit.width),
      local_(mux.rank() - admit.base),
      handoff_(admit.handoff),
      peer_(mux.ctx().config->ws,
            proto::Peer::Params{mux.rank() - admit.base, admit.width,
                                mux.ctx().faults != nullptr},
            &mux.ctx().plan->job_latency(admit.base), *this, nullptr) {
  DWS_CHECK(spec_.id == admit.job);
  DWS_CHECK(mux.rank() >= base_ && local_ < width_);
  per_node_cost_ = mux.ctx().config->ws.node_cost();
  if (mux.ctx().faults != nullptr) {
    per_node_cost_ =
        mux.ctx().faults->scaled_node_cost(mux.rank(), per_node_cost_);
  }
  // Park before start(): a parked local rank 0 still seeds the root but
  // immediately relinquishes it to the handoff rank (see activated()).
  if (!admit.leased) peer_.set_parked(true, now);
}

void JobBinding::start(support::SimTime now) {
  if (local_ == 0) {
    peer_.seed_root(uts::root_node(spec_.tree));
  } else {
    peer_.on_out_of_work(now);
  }
}

// ---- proto::Transport ------------------------------------------------------

void JobBinding::send(topo::Rank to, proto::Message msg, std::uint32_t bytes,
                      fault::MsgClass cls) {
  mux_.ctx().network->send(mux_.rank(), base_ + to,
                           Envelope{spec_.id, std::move(msg)}, bytes, cls);
}

void JobBinding::send_deferred(support::SimTime delay, topo::Rank to,
                               proto::StealResponse resp, std::uint32_t bytes,
                               fault::MsgClass cls) {
  ServiceContext& ctx = mux_.ctx();
  const std::uint32_t handle = ctx.deferred.acquire(
      PendingEnvelope{spec_.id, base_ + to, std::move(resp), bytes, cls});
  ctx.engine->schedule_after(delay, mux_, sim::EventKind::kDeferredResponse,
                             mux_.rank(), handle);
}

void JobBinding::arm_steal_timer(support::SimTime delay,
                                 std::uint32_t request_id) {
  ServiceContext& ctx = mux_.ctx();
  const std::uint32_t handle =
      ctx.timers.acquire(PendingTimer{spec_.id, request_id});
  ctx.engine->schedule_after(delay, mux_, sim::EventKind::kStealTimeout,
                             mux_.rank(), handle);
}

void JobBinding::arm_token_timer(support::SimTime delay,
                                 std::uint32_t generation) {
  ServiceContext& ctx = mux_.ctx();
  const std::uint32_t handle =
      ctx.timers.acquire(PendingTimer{spec_.id, generation});
  ctx.engine->schedule_after(delay, mux_, sim::EventKind::kTokenTimeout,
                             mux_.rank(), handle);
}

void JobBinding::activated() {
  if (peer_.parked()) {
    // Work landed on a parked rank (its lease was revoked before the work
    // arrived): ship everything to the job's current handoff. activated()
    // is a tail call inside the peer, so re-entering it here is safe. The
    // handoff chain terminates because every hop's target was leased when
    // the hop parked — parking epochs strictly increase along the chain.
    peer_.relinquish(handoff_, mux_.ctx().engine->now());
    return;
  }
  schedule_step();
}

void JobBinding::terminated(support::SimTime at) {
  ServiceContext& ctx = mux_.ctx();
  JobRuntime& rt = ctx.runtimes[spec_.id];
  DWS_CHECK(rt.finish < 0);
  rt.finish = at;
  // Report per-job quiescence to the controller. Its own rank takes the
  // direct path (the network refuses self-sends); remote home ranks send a
  // reliable JobDone envelope that rank 0's mux routes to the controller.
  if (base_ == 0) {
    DWS_CHECK(ctx.controller != nullptr);
    ctx.controller->on_job_done(spec_.id, ctx.engine->now());
  } else {
    ctx.network->send(mux_.rank(), 0, Envelope{spec_.id, JobDone{spec_.id}},
                      ctx.config->ws.token_bytes, fault::MsgClass::kReliable);
  }
}

// ---- Execution loop --------------------------------------------------------

void JobBinding::schedule_step() {
  if (step_scheduled_ || !peer_.active()) return;
  step_scheduled_ = true;
  mux_.ctx().engine->schedule_after(0, mux_, sim::EventKind::kWorkerStep,
                                    mux_.rank(), spec_.id);
}

void JobBinding::step() {
  step_scheduled_ = false;
  if (!peer_.active()) return;
  ServiceContext& ctx = mux_.ctx();

  const support::SimTime busy = drain_inbox();
  if (!peer_.active()) return;  // a drained Terminate ended the job

  proto::ChunkStack& stack = peer_.stack();
  if (stack.empty()) {
    peer_.on_out_of_work(ctx.engine->now());
    return;
  }
  if (peer_.parked()) {
    // The lease was revoked while this rank was mid-expansion with an empty
    // stack (nothing to relinquish then) and banked work arrived since: a
    // parked rank never expands nodes, so hand it off now.
    peer_.relinquish(handoff_, ctx.engine->now());
    return;
  }

  metrics::RankStats& stats = peer_.stats();
  support::SimTime cost = 0;
  for (std::uint32_t i = 0; i < ctx.config->ws.poll_interval; ++i) {
    const auto node = stack.pop();
    if (!node.has_value()) break;
    if (first_compute_ < 0) first_compute_ = ctx.engine->now();
    ++stats.nodes_processed;
    const std::uint32_t n = uts::num_children(spec_.tree, *node);
    if (n == 0) {
      ++stats.leaves_seen;
    } else {
      for (std::uint32_t c = 0; c < n; ++c) {
        stack.push(uts::child_node(*node, c));
      }
    }
    cost += per_node_cost_;
  }

  // Transient pause (fault injection): per physical rank, once per run —
  // whichever job's step boundary crosses the scheduled start first stalls.
  if (ctx.faults != nullptr && mux_.take_pause(ctx.engine->now())) {
    cost += ctx.faults->config().pause_duration;
  }

  step_scheduled_ = true;
  ctx.engine->schedule_after(busy + cost, mux_, sim::EventKind::kWorkerStep,
                             mux_.rank(), spec_.id);
}

support::SimTime JobBinding::drain_inbox() {
  support::SimTime busy = 0;
  ServiceContext& ctx = mux_.ctx();
  for (std::size_t i = 0; i < inbox_.size(); ++i) {
    if (peer_.done()) break;
    proto::Message msg = std::move(inbox_[i]);
    if (const auto* req = std::get_if<proto::StealRequest>(&msg)) {
      busy += ctx.config->ws.steal_handling_cost;
      peer_.on_steal_request(*req, ctx.engine->now(), busy);
    } else {
      peer_.on_message(std::move(msg), ctx.engine->now());
    }
  }
  inbox_.clear();
  return busy;
}

void JobBinding::on_proto(proto::Message msg, support::SimTime now) {
  if (peer_.done()) return;
  if (peer_.active()) {
    // Mid-expansion: wait for the next poll boundary, like MPI messages
    // wait for the next MPI_Iprobe (one-sided steals are rejected by
    // validate() under svc, so there is no bypass).
    inbox_.push_back(std::move(msg));
    return;
  }
  peer_.on_message(std::move(msg), now);
}

void JobBinding::on_lease(bool leased, topo::Rank handoff,
                          support::SimTime now) {
  handoff_ = handoff;
  if (peer_.done()) return;  // a grant can race a Terminate on another channel
  peer_.set_parked(!leased, now);
  if (!leased && !peer_.stack().empty()) {
    peer_.relinquish(handoff_, now);
  }
}

void JobBinding::on_steal_timeout(std::uint32_t request_id,
                                  support::SimTime now) {
  peer_.on_steal_timeout(request_id, now);
}

void JobBinding::on_token_timeout(std::uint32_t generation,
                                  support::SimTime now) {
  peer_.on_token_timeout(generation, now);
}

// ---- MuxWorker -------------------------------------------------------------

MuxWorker::MuxWorker(topo::Rank rank, ServiceContext& ctx)
    : rank_(rank), ctx_(ctx) {}

bool MuxWorker::take_pause(support::SimTime now) {
  if (pause_taken_ || ctx_.faults == nullptr) return false;
  const auto at = ctx_.faults->pause_start(rank_);
  if (!at.has_value() || now < *at) return false;
  pause_taken_ = true;
  return true;
}

std::size_t MuxWorker::pending_messages() const noexcept {
  std::size_t n = 0;
  for (const auto& [job, msgs] : pending_) n += msgs.size();
  return n;
}

void MuxWorker::on_event(const sim::Event& ev) {
  const support::SimTime now = ctx_.engine->now();
  switch (ev.kind) {
    case sim::EventKind::kWorkerStep: {
      const auto it = bindings_.find(ev.payload);
      DWS_CHECK(it != bindings_.end());
      it->second->step();
      break;
    }
    case sim::EventKind::kDeferredResponse: {
      // Packaging delay served: the response enters the network now.
      PendingEnvelope p = ctx_.deferred.take(ev.payload);
      ctx_.network->send(rank_, p.dst,
                         Envelope{p.job, proto::Message(std::move(p.resp))},
                         p.bytes, p.cls);
      break;
    }
    case sim::EventKind::kStealTimeout: {
      const PendingTimer t = ctx_.timers.take(ev.payload);
      const auto it = bindings_.find(t.job);
      DWS_CHECK(it != bindings_.end());
      if (!it->second->done()) it->second->on_steal_timeout(t.value, now);
      break;
    }
    case sim::EventKind::kTokenTimeout: {
      const PendingTimer t = ctx_.timers.take(ev.payload);
      const auto it = bindings_.find(t.job);
      DWS_CHECK(it != bindings_.end());
      if (!it->second->done()) it->second->on_token_timeout(t.value, now);
      break;
    }
    default:
      DWS_CHECK(false);
  }
}

void MuxWorker::on_envelope(Envelope env) {
  const support::SimTime now = ctx_.engine->now();
  if (auto* msg = std::get_if<proto::Message>(&env.body)) {
    route_proto(env.job, std::move(*msg));
  } else if (const auto* a = std::get_if<JobAdmit>(&env.body)) {
    admit(*a, now);
  } else if (const auto* u = std::get_if<LeaseUpdate>(&env.body)) {
    lease(*u, now);
  } else {
    const auto& done = std::get<JobDone>(env.body);
    DWS_CHECK(rank_ == 0 && ctx_.controller != nullptr);
    ctx_.controller->on_job_done(done.job, now);
  }
}

void MuxWorker::route_proto(JobId job, proto::Message msg) {
  const auto it = bindings_.find(job);
  if (it == bindings_.end()) {
    // Bindings are never destroyed, so no binding means the admit has not
    // arrived yet (fault jitter can let a peer's first request overtake the
    // controller's admit — different channels). Park it until admission.
    pending_[job].push_back(std::move(msg));
    return;
  }
  it->second->on_proto(std::move(msg), ctx_.engine->now());
}

void MuxWorker::admit(const JobAdmit& a, support::SimTime now) {
  DWS_CHECK(bindings_.find(a.job) == bindings_.end());
  auto binding =
      std::make_unique<JobBinding>(*this, ctx_.plan->jobs[a.job], a, now);
  JobBinding* b = binding.get();
  bindings_.emplace(a.job, std::move(binding));
  b->start(now);
  const auto pit = pending_.find(a.job);
  if (pit != pending_.end()) {
    std::vector<proto::Message> msgs = std::move(pit->second);
    pending_.erase(pit);
    for (proto::Message& m : msgs) {
      if (b->done()) break;
      b->on_proto(std::move(m), now);
    }
  }
}

void MuxWorker::lease(const LeaseUpdate& u, support::SimTime now) {
  // The admit precedes every lease on the controller's channel (reliable,
  // non-overtaking), so the binding must exist.
  const auto it = bindings_.find(u.job);
  DWS_CHECK(it != bindings_.end());
  it->second->on_lease(u.leased, u.handoff, now);
}

// ---- Controller ------------------------------------------------------------

Controller::Controller(ServiceContext& ctx) : ctx_(ctx) {
  job_done_.assign(ctx_.plan->jobs.size(), 0);
  if (ctx_.config->svc.alloc == AllocPolicy::kSpaceShare) {
    block_free_.assign(ctx_.plan->num_blocks, 1);
  } else {
    lease_of_rank_.assign(ctx_.config->num_ranks, kNoJob);
  }
}

void Controller::schedule_arrivals() {
  for (const JobSpec& spec : ctx_.plan->jobs) {
    ctx_.engine->schedule_at(spec.arrival, *this, sim::EventKind::kSvcArrival,
                             /*rank=*/0, /*payload=*/spec.id);
  }
}

void Controller::on_event(const sim::Event& ev) {
  DWS_CHECK(ev.kind == sim::EventKind::kSvcArrival);
  try_admit(ev.payload, ctx_.engine->now());
}

void Controller::try_admit(JobId id, support::SimTime now) {
  if (ctx_.config->svc.alloc == AllocPolicy::kSpaceShare) {
    for (std::uint32_t b = 0; b < block_free_.size(); ++b) {
      if (block_free_[b]) {
        admit_space(id, b, now);
        return;
      }
    }
  } else if (active_.size() <
             static_cast<std::size_t>(ctx_.config->num_ranks)) {
    admit_time(id, now);
    return;
  }
  queue_.push_back(id);
}

void Controller::admit_space(JobId id, std::uint32_t block,
                             support::SimTime now) {
  block_free_[block] = 0;
  const topo::Rank width = ctx_.plan->block_width;
  const topo::Rank base = static_cast<topo::Rank>(block) * width;
  JobRuntime& rt = ctx_.runtimes[id];
  rt.admit = now;
  rt.base = base;
  rt.width = width;
  const JobAdmit a{id, base, width, /*leased=*/true, /*handoff=*/0};
  for (topo::Rank r = base; r < base + width; ++r) send_admit(a, r, now);
}

void Controller::admit_time(JobId id, support::SimTime now) {
  active_.insert(std::lower_bound(active_.begin(), active_.end(), id), id);
  JobRuntime& rt = ctx_.runtimes[id];
  rt.admit = now;
  rt.base = 0;
  rt.width = ctx_.config->num_ranks;
  rebalance(id, now);
}

void Controller::on_job_done(JobId id, support::SimTime now) {
  DWS_CHECK(!job_done_[id]);
  job_done_[id] = 1;
  ++done_count_;
  if (ctx_.config->svc.alloc == AllocPolicy::kSpaceShare) {
    block_free_[ctx_.runtimes[id].base / ctx_.plan->block_width] = 1;
    while (!queue_.empty()) {
      std::uint32_t free_block = ~std::uint32_t{0};
      for (std::uint32_t b = 0; b < block_free_.size(); ++b) {
        if (block_free_[b]) {
          free_block = b;
          break;
        }
      }
      if (free_block == ~std::uint32_t{0}) break;
      const JobId next = queue_.front();
      queue_.pop_front();
      admit_space(next, free_block, now);
    }
  } else {
    active_.erase(std::lower_bound(active_.begin(), active_.end(), id));
    rebalance(kNoJob, now);
    while (!queue_.empty() &&
           active_.size() < static_cast<std::size_t>(ctx_.config->num_ranks)) {
      const JobId next = queue_.front();
      queue_.pop_front();
      admit_time(next, now);
    }
  }
}

JobId Controller::owner_of(topo::Rank r) const {
  const std::size_t k = active_.size();
  if (k == 0) return kNoJob;
  const topo::Rank n = ctx_.config->num_ranks;
  for (std::size_t i = 0; i < k; ++i) {
    const auto lo = static_cast<topo::Rank>(i * n / k);
    const auto hi = static_cast<topo::Rank>((i + 1) * n / k);
    if (r >= lo && r < hi) return active_[i];
  }
  DWS_CHECK(false);  // slices tile [0, n)
  return kNoJob;
}

topo::Rank Controller::handoff_of(JobId id) const {
  const auto it = std::lower_bound(active_.begin(), active_.end(), id);
  DWS_CHECK(it != active_.end() && *it == id);
  const auto i = static_cast<std::size_t>(it - active_.begin());
  return static_cast<topo::Rank>(i * ctx_.config->num_ranks /
                                 active_.size());
}

void Controller::rebalance(JobId admitting, support::SimTime now) {
  const topo::Rank n = ctx_.config->num_ranks;
  const topo::Rank handoff_admit =
      admitting != kNoJob ? handoff_of(admitting) : 0;
  // Per rank: revoke the old lease before anything else on the channel, so
  // the binding parks (and relinquishes) before the new owner's grant or
  // admit arrives. Ascending rank order keeps the send sequence — and with
  // it every fault draw and congestion fold — deterministic.
  for (topo::Rank r = 0; r < n; ++r) {
    const JobId oldj = lease_of_rank_[r];
    const JobId newj = owner_of(r);
    if (oldj != newj) {
      if (oldj != kNoJob && !job_done_[oldj]) {
        send_lease(LeaseUpdate{oldj, false, handoff_of(oldj)}, r, now);
      }
      lease_of_rank_[r] = newj;
    }
    if (admitting != kNoJob) {
      send_admit(JobAdmit{admitting, 0, n, newj == admitting, handoff_admit},
                 r, now);
    }
    if (oldj != newj && newj != kNoJob && newj != admitting) {
      send_lease(LeaseUpdate{newj, true, handoff_of(newj)}, r, now);
    }
  }
}

void Controller::send_admit(const JobAdmit& a, topo::Rank dst,
                            support::SimTime now) {
  if (dst == 0) {
    (*ctx_.muxes)[0]->admit(a, now);
    return;
  }
  ctx_.network->send(0, dst, Envelope{a.job, a},
                     ctx_.config->ws.steal_request_bytes,
                     fault::MsgClass::kReliable);
}

void Controller::send_lease(const LeaseUpdate& u, topo::Rank dst,
                            support::SimTime now) {
  if (dst == 0) {
    (*ctx_.muxes)[0]->lease(u, now);
    return;
  }
  ctx_.network->send(0, dst, Envelope{u.job, u},
                     ctx_.config->ws.steal_request_bytes,
                     fault::MsgClass::kReliable);
}

}  // namespace dws::svc
