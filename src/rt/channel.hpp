#pragma once

#include <atomic>
#include <utility>

namespace dws::rt {

/// Unbounded multi-producer single-consumer FIFO (Vyukov's intrusive MPSC
/// design, node-based): any rank thread may push, only the owning rank pops.
/// This is the "steal traffic over channels" half of the tasking-2.0 style
/// runtime — work deques stay private to their owner; every cross-thread
/// interaction is a message through one of these.
///
/// push() is wait-free (one exchange + one store); pop() is lock-free from
/// the single consumer's point of view. A push is visible to the consumer
/// once the producer's next-pointer store (release) is observed (acquire) —
/// the message payload is published by that edge.
///
/// The "inconsistent state" window of Vyukov's algorithm (producer between
/// its exchange and its next-store) only delays visibility of *later* pushes;
/// pop() simply reports empty, which the polling rank loop retries. No
/// blocking, no ABA (nodes are never recycled onto the same queue position).
template <typename T>
class MpscChannel {
 public:
  MpscChannel() {
    Node* stub = new Node;
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }

  ~MpscChannel() {
    Node* n = tail_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  MpscChannel(const MpscChannel&) = delete;
  MpscChannel& operator=(const MpscChannel&) = delete;

  /// Producer side: enqueue `value`. Callable from any thread.
  void push(T value) {
    Node* node = new Node;
    node->value = std::move(value);
    // Claim the head slot, then link the previous head to us. Between the
    // exchange and the store the chain is briefly broken; consumers see
    // "empty" rather than a torn message.
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  /// Consumer side: dequeue into `out`; false when (momentarily) empty.
  /// Must only be called by the single owning consumer thread.
  bool pop(T& out) {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;
    out = std::move(next->value);
    tail_ = next;
    delete tail;  // old stub; next becomes the new stub carrying no value
    return true;
  }

  /// Consumer-side hint (racy by nature): true when a pop would succeed now.
  bool ready() const {
    return tail_->next.load(std::memory_order_acquire) != nullptr;
  }

 private:
  struct Node {
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  alignas(64) std::atomic<Node*> head_;  // producers exchange here
  alignas(64) Node* tail_;               // consumer-owned
};

}  // namespace dws::rt
