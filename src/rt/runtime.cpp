#include "rt/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "proto/observer.hpp"
#include "proto/peer.hpp"
#include "rt/channel.hpp"
#include "support/check.hpp"
#include "uts/tree.hpp"

namespace dws::rt {
namespace {

/// Serializes observer hooks arriving concurrently from rank threads, so the
/// user's observer (the dws::audit ledger in particular) sees the same
/// single-threaded calling convention the simulator gives it. The lock also
/// makes each hook a synchronization point: an auditor reading causally
/// related events (a send, then its receive) observes them in a consistent
/// order.
class LockedObserver final : public proto::RunObserver {
 public:
  explicit LockedObserver(proto::RunObserver& inner) : inner_(inner) {}

  void on_root(topo::Rank rank, const uts::TreeNode& root) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.on_root(rank, root);
  }
  void on_node_expanded(topo::Rank rank, const uts::TreeNode& node,
                        std::uint32_t children) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.on_node_expanded(rank, node, children);
  }
  void on_steal_request_sent(topo::Rank thief, topo::Rank victim,
                             std::uint32_t bytes) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.on_steal_request_sent(thief, victim, bytes);
  }
  void on_steal_response_sent(topo::Rank victim, topo::Rank thief,
                              std::uint64_t chunks, std::uint64_t nodes,
                              std::uint32_t bytes) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.on_steal_response_sent(victim, thief, chunks, nodes, bytes);
  }
  void on_steal_response_received(topo::Rank thief, topo::Rank victim,
                                  std::uint64_t chunks,
                                  std::uint64_t nodes) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.on_steal_response_received(thief, victim, chunks, nodes);
  }
  void on_lifeline_register_sent(topo::Rank rank, topo::Rank target,
                                 std::uint32_t bytes) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.on_lifeline_register_sent(rank, target, bytes);
  }
  void on_lifeline_push_sent(topo::Rank from, topo::Rank to,
                             std::uint64_t chunks, std::uint64_t nodes,
                             std::uint32_t bytes) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.on_lifeline_push_sent(from, to, chunks, nodes, bytes);
  }
  void on_lifeline_push_received(topo::Rank rank, std::uint64_t chunks,
                                 std::uint64_t nodes) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.on_lifeline_push_received(rank, chunks, nodes);
  }
  void on_steal_timeout(topo::Rank thief, topo::Rank victim,
                        std::uint32_t attempt) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.on_steal_timeout(thief, victim, attempt);
  }
  void on_duplicate_response(topo::Rank thief, std::uint64_t chunks,
                             std::uint64_t nodes) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.on_duplicate_response(thief, chunks, nodes);
  }
  void on_steal_feedback(topo::Rank thief, topo::Rank victim, bool success,
                         support::SimTime rtt, double success_ewma,
                         double rtt_ewma) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.on_steal_feedback(thief, victim, success, rtt, success_ewma,
                             rtt_ewma);
  }
  void on_token_sent(topo::Rank from, topo::Rank to,
                     const proto::Token& t) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.on_token_sent(from, to, t);
  }
  void on_token_accepted(topo::Rank rank, const proto::Token& t) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.on_token_accepted(rank, t);
  }
  void on_token_regenerated(topo::Rank rank,
                            std::uint32_t generation) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.on_token_regenerated(rank, generation);
  }
  void on_phase(topo::Rank rank, support::SimTime t,
                metrics::Phase p) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.on_phase(rank, t, p);
  }
  void on_termination(support::SimTime t) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.on_termination(t);
  }
  void on_finish(topo::Rank rank, support::SimTime t) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.on_finish(rank, t);
  }

 private:
  std::mutex mu_;
  proto::RunObserver& inner_;
};

class RankExecutor;

/// Shared state of one native run: the geometry (same JobLayout/LatencyModel
/// objects the simulator builds, so victim selectors and steal-distance
/// metrics see identical topology), the wall-clock epoch, and the global
/// termination record.
class Runtime {
 public:
  Runtime(const ws::RunConfig& config, proto::RunObserver* observer);
  ~Runtime();

  void run();
  ws::RunResult result() const;

  const ws::RunConfig& config() const noexcept { return config_; }
  const topo::LatencyModel& latency() const noexcept { return latency_; }
  proto::RunObserver* observer() const noexcept { return observer_; }
  bool same_node(topo::Rank a, topo::Rank b) const {
    return layout_.same_node(a, b);
  }

  /// Nanoseconds since the run's epoch (set just before threads spawn).
  support::SimTime now() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  RankExecutor& executor(topo::Rank r) { return *executors_[r]; }

  /// Rank 0's peer proved global quiescence. Exactly once per run.
  void declare_terminated(support::SimTime at) {
    DWS_CHECK(!terminated_);
    terminated_ = true;
    termination_time_ = at;
  }

 private:
  const ws::RunConfig& config_;
  topo::JobLayout layout_;
  topo::LatencyModel latency_;
  proto::RunObserver* observer_;

  std::vector<std::unique_ptr<RankExecutor>> executors_;
  std::chrono::steady_clock::time_point epoch_;

  // Written by rank 0's thread inside declare_terminated, read by the main
  // thread after join() — the join is the synchronization edge.
  bool terminated_ = false;
  support::SimTime termination_time_ = 0;
};

/// One rank of the native runtime: an OS thread running the proto::Peer
/// protocol loop against an MPSC inbox. The thread structure mirrors the
/// paper's MPI ranks — expand up to poll_interval nodes, then poll for steal
/// requests / responses / tokens — except that "the network" is other
/// threads pushing into our channel.
class RankExecutor final : public proto::Transport {
 public:
  RankExecutor(Runtime& rt, topo::Rank rank)
      : rt_(rt),
        rank_(rank),
        peer_(rt.config().ws,
              proto::Peer::Params{rank, rt.config().num_ranks,
                                  /*lossy_transport=*/false},
              &rt.latency(), *this, rt.observer()) {}

  /// Thread body: the Fig. 1 loop, driven by real time.
  void thread_main() {
    if (rank_ == 0) {
      peer_.seed_root(uts::root_node(rt_.config().tree));
    } else {
      peer_.on_out_of_work(rt_.now());
    }

    std::uint32_t idle_spins = 0;
    while (!peer_.done()) {
      bool progressed = drain_inbox();
      if (peer_.done()) break;
      progressed |= fire_timers();

      if (peer_.active()) {
        idle_spins = 0;
        if (peer_.stack().empty()) {
          // The last expansion drained us: start a work-discovery session.
          peer_.on_out_of_work(rt_.now());
          continue;
        }
        expand_batch();
        if (peer_.has_dependents()) {
          peer_.feed_lifeline_dependents(rt_.now());
        }
      } else if (!progressed && ++idle_spins >= kSpinsBeforeYield) {
        // Idle with nothing delivered: give victims (possibly oversubscribed
        // on this core) a chance to run and answer us.
        idle_spins = 0;
        std::this_thread::yield();
      }
    }
  }

  proto::Peer& peer() noexcept { return peer_; }
  MpscChannel<proto::Message>& inbox() noexcept { return inbox_; }
  std::uint64_t messages_sent() const noexcept { return msgs_sent_; }
  std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  std::uint64_t intra_node_sent() const noexcept { return intra_sent_; }
  std::int64_t busy_ns() const noexcept { return busy_ns_; }

 private:
  static constexpr std::uint32_t kSpinsBeforeYield = 64;

  // ---- proto::Transport ----

  void send(topo::Rank to, proto::Message msg, std::uint32_t bytes,
            fault::MsgClass cls) override {
    (void)cls;  // in-process channels are reliable; no drop/dup classes
    ++msgs_sent_;
    bytes_sent_ += bytes;
    if (rt_.same_node(rank_, to)) ++intra_sent_;
    rt_.executor(to).inbox().push(std::move(msg));
  }

  void send_deferred(support::SimTime delay, topo::Rank to,
                     proto::StealResponse resp, std::uint32_t bytes,
                     fault::MsgClass cls) override {
    // The simulator charges `delay` of victim-side packaging time before a
    // response enters the network; on real threads that time has genuinely
    // elapsed (we did the work of splitting the stack), so ship now.
    (void)delay;
    send(to, proto::Message(std::move(resp)), bytes, cls);
  }

  void arm_steal_timer(support::SimTime delay,
                       std::uint32_t request_id) override {
    steal_deadline_ = rt_.now() + delay;
    steal_timer_id_ = request_id;
    steal_armed_ = true;
  }

  void arm_token_timer(support::SimTime delay,
                       std::uint32_t generation) override {
    token_deadline_ = rt_.now() + delay;
    token_timer_gen_ = generation;
    token_armed_ = true;
  }

  void activated() override {
    // Nothing to schedule: the rank loop reads peer_.active() on its next
    // iteration and resumes expanding.
  }

  void terminated(support::SimTime at) override { rt_.declare_terminated(at); }

  // ---- Rank loop pieces ----

  bool drain_inbox() {
    bool any = false;
    proto::Message msg;
    while (!peer_.done() && inbox_.pop(msg)) {
      any = true;
      // Zero packaging delay: real packaging time passes on this thread
      // inside the peer's response path (see send_deferred above).
      peer_.on_message(std::move(msg), rt_.now());
    }
    return any;
  }

  /// Polled timers. One slot per timer kind is enough: the peer only ever
  /// cares about its newest steal request id and newest token generation —
  /// re-arming overwrites, and the peer discards stale firings itself.
  bool fire_timers() {
    bool fired = false;
    if (steal_armed_) {
      const support::SimTime t = rt_.now();
      if (t >= steal_deadline_) {
        steal_armed_ = false;
        peer_.on_steal_timeout(steal_timer_id_, t);
        fired = true;
      }
    }
    if (token_armed_ && !peer_.done()) {
      const support::SimTime t = rt_.now();
      if (t >= token_deadline_) {
        token_armed_ = false;
        peer_.on_token_timeout(token_timer_gen_, t);
        fired = true;
      }
    }
    return fired;
  }

  /// Expand up to poll_interval nodes, accumulating real busy time — the
  /// source of the run's measured per_node_cost (and hence of efficiency()
  /// denominators that reflect this machine, not the simulator's constants).
  void expand_batch() {
    proto::ChunkStack& stack = peer_.stack();
    metrics::RankStats& stats = peer_.stats();
    proto::RunObserver* obs = rt_.observer();
    const uts::TreeParams& tree = rt_.config().tree;

    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t i = 0; i < rt_.config().ws.poll_interval; ++i) {
      const auto node = stack.pop();
      if (!node.has_value()) break;
      ++stats.nodes_processed;
      const std::uint32_t n = uts::num_children(tree, *node);
      if (obs != nullptr) obs->on_node_expanded(rank_, *node, n);
      if (n == 0) {
        ++stats.leaves_seen;
      } else {
        for (std::uint32_t c = 0; c < n; ++c) {
          stack.push(uts::child_node(*node, c));
        }
      }
    }
    busy_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  }

  Runtime& rt_;
  topo::Rank rank_;
  proto::Peer peer_;
  MpscChannel<proto::Message> inbox_;

  // Single-slot polled timers (this thread only).
  bool steal_armed_ = false;
  support::SimTime steal_deadline_ = 0;
  std::uint32_t steal_timer_id_ = 0;
  bool token_armed_ = false;
  support::SimTime token_deadline_ = 0;
  std::uint32_t token_timer_gen_ = 0;

  // Traffic accounting (this thread writes, main thread reads after join).
  std::uint64_t msgs_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t intra_sent_ = 0;
  std::int64_t busy_ns_ = 0;
};

Runtime::Runtime(const ws::RunConfig& config, proto::RunObserver* observer)
    : config_(config),
      layout_(config.machine, config.num_ranks, config.placement,
              config.procs_per_node, config.origin_cube),
      latency_(layout_, config.latency),
      observer_(observer) {
  executors_.reserve(config.num_ranks);
  for (topo::Rank r = 0; r < config.num_ranks; ++r) {
    executors_.push_back(std::make_unique<RankExecutor>(*this, r));
  }
}

Runtime::~Runtime() = default;

void Runtime::run() {
  epoch_ = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(executors_.size());
  for (auto& ex : executors_) {
    threads.emplace_back([&ex] { ex->thread_main(); });
  }
  for (auto& t : threads) t.join();
}

ws::RunResult Runtime::result() const {
  // Same post-run invariants as run_simulation: the token protocol fired,
  // every rank drained its stack, every shipped chunk landed.
  DWS_CHECK(terminated_);
  std::uint64_t chunks_sent = 0;
  std::uint64_t chunks_received = 0;
  for (const auto& ex : executors_) {
    DWS_CHECK(ex->peer().done());
    DWS_CHECK(ex->peer().stack().size() == 0);
    chunks_sent += ex->peer().stats().chunks_sent;
    chunks_received += ex->peer().stats().chunks_received;
  }
  DWS_CHECK(chunks_sent == chunks_received);

  ws::RunResult result;
  result.runtime = termination_time_;
  result.num_ranks = config_.num_ranks;
  result.per_rank.reserve(config_.num_ranks);
  std::int64_t busy_ns = 0;
  for (const auto& ex : executors_) {
    result.nodes += ex->peer().stats().nodes_processed;
    result.leaves += ex->peer().stats().leaves_seen;
    result.per_rank.push_back(ex->peer().stats());
    result.network.messages += ex->messages_sent();
    result.network.bytes += ex->bytes_sent();
    result.network.intra_node_messages += ex->intra_node_sent();
    busy_ns += ex->busy_ns();
  }
  result.stats = metrics::aggregate(result.per_rank);
  // Measured mean expansion cost: sequential_time() and efficiency() then
  // compare the run against this machine's real single-thread speed, which
  // is what bench/sim_vs_rt feeds back into the simulator's cost model.
  result.per_node_cost =
      result.nodes > 0
          ? std::max<support::SimTime>(
                1, busy_ns / static_cast<std::int64_t>(result.nodes))
          : config_.ws.node_cost();

  if (config_.ws.record_trace) {
    result.trace.total_time = termination_time_;
    result.trace.ranks.reserve(config_.num_ranks);
    for (const auto& ex : executors_) {
      result.trace.ranks.push_back(ex->peer().trace());
    }
  }
  return result;
}

}  // namespace

ws::RunResult run_native(const ws::RunConfig& config, ws::RunObserver* observer) {
  DWS_CHECK(config.num_ranks >= 1);
  // Simulator-only features (validate() rejects these for Backend::kRt; the
  // checks also guard direct callers).
  DWS_CHECK(!config.fault.enabled());
  DWS_CHECK(!config.ws.one_sided_steals);

  if (observer == nullptr) {
    Runtime rt(config, nullptr);
    rt.run();
    return rt.result();
  }
  LockedObserver locked(*observer);
  Runtime rt(config, &locked);
  rt.run();
  return rt.result();
}

}  // namespace dws::rt
