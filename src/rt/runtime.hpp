#pragma once

#include "ws/observer.hpp"
#include "ws/scheduler.hpp"

/// dws::rt — the native shared-memory work-stealing runtime (DESIGN.md §11).
///
/// One OS thread per rank, each running the exact proto::Peer state machine
/// the simulator runs, with steal traffic flowing over per-rank MPSC
/// channels (tasking-2.0 style: work stacks stay private to their owner;
/// every cross-thread interaction is a message). The clock is a shared
/// steady_clock epoch, so RunResult::runtime is measured wall-clock
/// nanoseconds, directly comparable to the simulator's virtual-time
/// prediction for the same RunConfig (bench/sim_vs_rt).
namespace dws::rt {

/// Execute one UTS work-stealing run on real threads. Accepts the same
/// RunConfig as ws::run_simulation — tree, chunking, victim policy, idle
/// policy, steal/token timeouts — and produces the same RunResult shape:
/// per-rank RankStats, activity traces, message counts, and the paper's
/// speedup/efficiency derivations (with per_node_cost set to the *measured*
/// mean expansion cost, so efficiency() reflects real scaling).
///
/// config.validate() rules apply; in addition fault injection and one-sided
/// steals are rejected (simulator-only). The observer seam is identical to
/// the simulator's — hooks fire from rank threads, serialized through an
/// internal mutex, so dws::audit's conservation ledger works unchanged on
/// real runs. Unlike the simulator, results are NOT bit-reproducible: real
/// scheduling decides steal interleavings (victim *sequences* still come
/// from the same seeded selectors).
ws::RunResult run_native(const ws::RunConfig& config,
                         ws::RunObserver* observer = nullptr);

}  // namespace dws::rt
