#include "sm/pool.hpp"

#include "support/check.hpp"

namespace dws::sm {

UtsThreadPool::UtsThreadPool(const uts::TreeParams& tree, unsigned num_threads,
                             std::uint64_t seed)
    : tree_(tree), num_threads_(num_threads), seed_(seed) {
  DWS_CHECK(num_threads_ >= 1);
  deques_.reserve(num_threads_);
  for (unsigned i = 0; i < num_threads_; ++i) {
    deques_.push_back(std::make_unique<ChaseLevDeque<uts::TreeNode>>());
  }
  stats_.resize(num_threads_);
}

uts::TreeStats UtsThreadPool::run() {
  DWS_CHECK(!ran_);
  ran_ = true;

  // Seed worker 0 with the root before any thread starts.
  deques_[0]->push_bottom(uts::root_node(tree_));
  in_flight_.store(1, std::memory_order_relaxed);

  std::vector<std::thread> threads;
  threads.reserve(num_threads_);
  for (unsigned i = 0; i < num_threads_; ++i) {
    threads.emplace_back([this, i] { worker(i); });
  }
  for (auto& t : threads) t.join();

  DWS_CHECK(in_flight_.load(std::memory_order_relaxed) == 0);
  uts::TreeStats out;
  for (const auto& st : stats_) {
    out.nodes += st.nodes_processed;
    out.leaves += st.leaves_seen;
    out.max_depth = std::max(out.max_depth, st.max_depth);
  }
  return out;
}

void UtsThreadPool::process(unsigned id, const uts::TreeNode& node) {
  auto& st = stats_[id];
  ++st.nodes_processed;
  st.max_depth = std::max(st.max_depth, node.height);

  const std::uint32_t n = uts::num_children(tree_, node);
  if (n == 0) {
    ++st.leaves_seen;
  } else {
    for (std::uint32_t c = 0; c < n; ++c) {
      deques_[id]->push_bottom(uts::child_node(node, c));
    }
  }
  // One fused update: account the n children and retire this node. Because
  // it is a single atomic, the counter can never dip to zero while work
  // remains anywhere.
  in_flight_.fetch_add(static_cast<std::int64_t>(n) - 1,
                       std::memory_order_acq_rel);
}

void UtsThreadPool::worker(unsigned id) {
  support::Xoshiro256StarStar rng(seed_ ^ (0x9e3779b97f4a7c15ull * (id + 1)));
  auto& st = stats_[id];
  unsigned consecutive_failures = 0;

  while (true) {
    // Drain own deque first (LIFO: depth-first, cache-friendly).
    while (auto node = deques_[id]->pop_bottom()) {
      process(id, *node);
    }
    // Out of local work: steal or detect completion.
    if (in_flight_.load(std::memory_order_acquire) == 0) return;
    if (num_threads_ == 1) continue;  // work may appear only from ourselves
    const auto victim = static_cast<unsigned>(rng.next_below(num_threads_ - 1));
    const unsigned v = victim >= id ? victim + 1 : victim;
    ++st.steal_attempts;
    if (auto node = deques_[v]->steal_top()) {
      ++st.successful_steals;
      consecutive_failures = 0;
      process(id, *node);
    } else if (++consecutive_failures >= 2 * num_threads_) {
      // Back off when the whole neighbourhood looks empty: spinning thieves
      // otherwise serialise the victims' deque tops through cache-line
      // contention (the shared-memory analogue of the paper's steal storms).
      std::this_thread::yield();
      consecutive_failures = 0;
    }
  }
}

}  // namespace dws::sm
