#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "support/check.hpp"

namespace dws::sm {

/// Lock-free work-stealing deque (Chase & Lev, "Dynamic Circular
/// Work-Stealing Deque", SPAA 2005; memory orderings after Lê et al.,
/// "Correct and Efficient Work-Stealing for Weak Memory Models", PPoPP 2013).
///
/// This is the intra-node counterpart of the paper's distributed scheduler:
/// the single-owner deque underlying Cilk-style shared-memory work stealing
/// (paper §VI). One thread owns the bottom end (push/pop, LIFO); any number
/// of thief threads steal from the top end (FIFO — oldest work, mirroring
/// the distributed scheduler stealing the bottom chunks of a stack).
///
/// T must be trivially copyable — elements are published through atomics.
template <typename T>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : buffer_(new Buffer(round_up(initial_capacity))) {}

  ~ChaseLevDeque() {
    delete buffer_.load(std::memory_order_relaxed);
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only. Amortised O(1); grows the buffer when full.
  void push_bottom(const T& value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(buf->capacity) - 1) {
      grow(buf, t, b);
      buf = buffer_.load(std::memory_order_relaxed);
    }
    buf->put(b, value);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only. LIFO end; contends with thieves only for the last element.
  std::optional<T> pop_bottom() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);

    if (t > b) {
      // Deque was empty; restore.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    T value = buf->get(b);
    if (t == b) {
      // Last element: race against thieves via CAS on top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;  // a thief got it
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return value;
  }

  /// Any thread. FIFO end; lock-free.
  std::optional<T> steal_top() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return std::nullopt;
    // Lê et al. load the array with consume; consume is deprecated (and
    // compilers promote it to acquire anyway), so say acquire directly.
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    T value = buf->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;  // lost the race
    }
    return value;
  }

  /// Racy size estimate (exact only when quiescent).
  std::size_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  // Slots are arrays of relaxed atomic words, as in Lê et al.'s reference
  // (their array elements are atomic loads/stores): a multi-word payload
  // cannot be one lock-free std::atomic<T>, and plain storage would make the
  // owner's put(b) race a thief's get(t) once the ring wraps — undefined
  // behaviour the "benign race" folklore hides, and an instant ThreadSanitizer
  // report. Word atomics make every access defined; a *torn* value can only
  // be read when the owner is overwriting slot i = t mod capacity, i.e. when
  // it pushed at b = t + capacity, which push_bottom only does after seeing
  // top > t — so the reader's CAS on top_ is guaranteed to fail and the torn
  // value is discarded without being returned.
  struct Buffer {
    static constexpr std::size_t kWords =
        (sizeof(T) + sizeof(std::uint64_t) - 1) / sizeof(std::uint64_t);

    explicit Buffer(std::size_t cap)
        : capacity(cap),
          mask(cap - 1),
          words(new std::atomic<std::uint64_t>[cap * kWords]) {}
    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<std::uint64_t>[]> words;

    T get(std::int64_t i) const {
      std::uint64_t raw[kWords];
      const std::size_t base = (static_cast<std::size_t>(i) & mask) * kWords;
      for (std::size_t w = 0; w < kWords; ++w) {
        raw[w] = words[base + w].load(std::memory_order_relaxed);
      }
      T v;
      std::memcpy(&v, raw, sizeof(T));
      return v;
    }
    void put(std::int64_t i, const T& v) {
      std::uint64_t raw[kWords];
      raw[kWords - 1] = 0;  // tail padding beyond sizeof(T)
      std::memcpy(raw, &v, sizeof(T));
      const std::size_t base = (static_cast<std::size_t>(i) & mask) * kWords;
      for (std::size_t w = 0; w < kWords; ++w) {
        words[base + w].store(raw[w], std::memory_order_relaxed);
      }
    }
  };

  static std::size_t round_up(std::size_t n) {
    std::size_t p = 8;
    while (p < n) p <<= 1;
    return p;
  }

  void grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Buffer(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    buffer_.store(bigger, std::memory_order_release);
    // Retire the old buffer: thieves may still hold a pointer to it, so it
    // cannot be freed here. Park it until the deque is destroyed (bounded:
    // each retired buffer is half the size of its successor).
    retired_.emplace_back(old);
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  std::vector<std::unique_ptr<Buffer>> retired_;  // owner-only mutation
};

}  // namespace dws::sm
