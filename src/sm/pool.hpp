#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "sm/chase_lev.hpp"
#include "support/rng.hpp"
#include "uts/sequential.hpp"
#include "uts/tree.hpp"

namespace dws::sm {

/// Per-thread counters mirroring (a subset of) the distributed scheduler's
/// RankStats, so shared-memory and simulated runs can be compared.
/// Cache-line aligned: each worker updates its own entry on every node, and
/// false sharing here serialises the whole pool.
struct alignas(64) ThreadStats {
  std::uint64_t nodes_processed = 0;
  std::uint64_t leaves_seen = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t successful_steals = 0;
  std::uint32_t max_depth = 0;
};

/// Real-threads work-stealing executor for UTS trees: one Chase-Lev deque
/// per worker, uniform random victim selection, termination via a global
/// in-flight task counter.
///
/// This is the shared-memory substrate the paper's related-work section
/// builds on (Cilk-style intra-node stealing). In this repo it serves two
/// purposes: a second, independently-implemented traversal that must agree
/// node-for-node with both the sequential enumerator and the distributed
/// simulator (cross-validation), and a usable parallel UTS runner for the
/// examples.
class UtsThreadPool {
 public:
  /// `num_threads` >= 1. Uses exactly that many std::threads.
  UtsThreadPool(const uts::TreeParams& tree, unsigned num_threads,
                std::uint64_t seed = 1);

  /// Traverse the whole tree; returns exact totals. Callable once per pool.
  uts::TreeStats run();

  const std::vector<ThreadStats>& thread_stats() const noexcept {
    return stats_;
  }

 private:
  void worker(unsigned id);
  void process(unsigned id, const uts::TreeNode& node);

  const uts::TreeParams tree_;
  unsigned num_threads_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<ChaseLevDeque<uts::TreeNode>>> deques_;
  std::vector<ThreadStats> stats_;
  // The one shared hot counter: tasks pushed minus tasks completed. Zero
  // means global quiescence (children are accounted in the same atomic
  // update that retires their parent, so it can never dip to zero early).
  std::atomic<std::int64_t> in_flight_{0};
  bool ran_ = false;
};

}  // namespace dws::sm
