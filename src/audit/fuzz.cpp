#include "audit/fuzz.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "exp/record.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "uts/sequential.hpp"

namespace dws::audit {

namespace {

/// Forwards every observer hook to the real Auditor, telling exactly one lie
/// per run according to the mutation mode. The simulation itself stays
/// honest — only the auditor's view is corrupted, which is precisely what a
/// conservation bug would look like from the ledger's side.
class MutatingObserver final : public ws::RunObserver {
 public:
  MutatingObserver(ws::RunObserver& inner, Mutation mode)
      : inner_(inner), mode_(mode) {}

  void on_root(topo::Rank rank, const uts::TreeNode& root) override {
    inner_.on_root(rank, root);
  }
  void on_node_expanded(topo::Rank rank, const uts::TreeNode& node,
                        std::uint32_t children) override {
    if (mode_ == Mutation::kDoubleExpand && !fired_) {
      fired_ = true;
      inner_.on_node_expanded(rank, node, children);
    }
    inner_.on_node_expanded(rank, node, children);
  }
  void on_steal_request_sent(topo::Rank thief, topo::Rank victim,
                             std::uint32_t bytes) override {
    if (mode_ == Mutation::kLeakMessage && !fired_) {
      fired_ = true;
      return;
    }
    inner_.on_steal_request_sent(thief, victim, bytes);
  }
  void on_steal_response_sent(topo::Rank victim, topo::Rank thief,
                              std::uint64_t chunks, std::uint64_t nodes,
                              std::uint32_t bytes) override {
    inner_.on_steal_response_sent(victim, thief, chunks, nodes, bytes);
  }
  void on_steal_response_received(topo::Rank thief, topo::Rank victim,
                                  std::uint64_t chunks,
                                  std::uint64_t nodes) override {
    if (mode_ == Mutation::kDropReceipt && !fired_ && nodes > 0) {
      fired_ = true;
      return;
    }
    inner_.on_steal_response_received(thief, victim, chunks, nodes);
  }
  void on_lifeline_register_sent(topo::Rank rank, topo::Rank target,
                                 std::uint32_t bytes) override {
    inner_.on_lifeline_register_sent(rank, target, bytes);
  }
  void on_lifeline_push_sent(topo::Rank from, topo::Rank to,
                             std::uint64_t chunks, std::uint64_t nodes,
                             std::uint32_t bytes) override {
    inner_.on_lifeline_push_sent(from, to, chunks, nodes, bytes);
  }
  void on_lifeline_push_received(topo::Rank rank, std::uint64_t chunks,
                                 std::uint64_t nodes) override {
    inner_.on_lifeline_push_received(rank, chunks, nodes);
  }
  void on_steal_timeout(topo::Rank thief, topo::Rank victim,
                        std::uint32_t attempt) override {
    inner_.on_steal_timeout(thief, victim, attempt);
  }
  void on_duplicate_response(topo::Rank thief, std::uint64_t chunks,
                             std::uint64_t nodes) override {
    inner_.on_duplicate_response(thief, chunks, nodes);
  }
  void on_steal_feedback(topo::Rank thief, topo::Rank victim, bool success,
                         support::SimTime rtt, double success_ewma,
                         double rtt_ewma) override {
    inner_.on_steal_feedback(thief, victim, success, rtt, success_ewma,
                             rtt_ewma);
  }
  void on_token_sent(topo::Rank from, topo::Rank to,
                     const ws::Token& t) override {
    inner_.on_token_sent(from, to, t);
  }
  void on_token_accepted(topo::Rank rank, const ws::Token& t) override {
    inner_.on_token_accepted(rank, t);
  }
  void on_token_regenerated(topo::Rank rank,
                            std::uint32_t generation) override {
    inner_.on_token_regenerated(rank, generation);
  }
  void on_phase(topo::Rank rank, support::SimTime t,
                metrics::Phase p) override {
    inner_.on_phase(rank, t, p);
  }
  void on_termination(support::SimTime t) override {
    inner_.on_termination(t);
  }
  void on_finish(topo::Rank rank, support::SimTime t) override {
    inner_.on_finish(rank, t);
  }

 private:
  ws::RunObserver& inner_;
  Mutation mode_;
  bool fired_ = false;
};

/// One fully audited point: oracle, auditor (optionally behind a mutator),
/// run, finalize. Throws std::runtime_error on any violation — SweepRunner
/// turns that into a failed point, the shrinker into a rejection test.
ws::RunResult audited_point_run(const ws::RunConfig& config,
                                const FuzzOptions& opts) {
  AuditConfig acfg = opts.audit;
  // Distribution sampling costs O(samples + ranks) per point; cap the rank
  // count it runs at so huge fuzz cases don't dominate the budget.
  acfg.check_distribution =
      opts.audit.check_distribution && config.num_ranks <= 256;
  if (acfg.check_work && !acfg.expected_nodes) {
    const uts::TreeStats seq =
        uts::enumerate_sequential(config.tree, opts.node_budget);
    if (!seq.truncated) {
      acfg.expected_nodes = seq.nodes;
      acfg.expected_leaves = seq.leaves;
    }
  }

  Auditor auditor(config, acfg);
  ws::RunResult result;
  if (opts.mutation == Mutation::kNone) {
    result = ws::run_simulation(config, &auditor);
  } else {
    MutatingObserver liar(auditor, opts.mutation);
    result = ws::run_simulation(config, &liar);
  }
  auditor.finalize(result);
  if (!auditor.report().ok()) {
    throw std::runtime_error(auditor.report().summary());
  }
  return result;
}

struct CheckFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void throwing_check_handler(const char* expr, const char* file,
                                         int line) {
  throw CheckFailure(std::string("DWS_CHECK failed: ") + expr + " at " + file +
                     ":" + std::to_string(line));
}

/// Does `config` still fail its audit? Used by the shrinker outside the
/// SweepRunner, so it scopes its own throwing check handler.
bool still_fails(const ws::RunConfig& config, const FuzzOptions& opts,
                 std::string* message) {
  const support::CheckHandler previous =
      support::set_check_handler(&throwing_check_handler);
  bool fails = false;
  try {
    audited_point_run(config, opts);
  } catch (const std::exception& e) {
    fails = true;
    if (message != nullptr) *message = e.what();
  }
  support::set_check_handler(previous);
  return fails;
}

/// Candidate simplifications of `config`, most aggressive first. Only valid
/// configs are returned; every candidate strictly shrinks some dimension.
std::vector<ws::RunConfig> shrink_candidates(const ws::RunConfig& config) {
  std::vector<ws::RunConfig> out;
  const std::string current = exp::canonical_config(config);
  auto push = [&out, &current](ws::RunConfig candidate) {
    if (!candidate.validate()) return;
    if (exp::canonical_config(candidate) == current) return;
    out.push_back(std::move(candidate));
  };

  {  // collapse the job: 2 ranks, one per node, origin corner
    ws::RunConfig c = config;
    c.num_ranks = 2;
    c.placement = topo::Placement::kOnePerNode;
    c.procs_per_node = 1;
    c.origin_cube = 0;
    push(std::move(c));
  }
  if (config.num_ranks / 2 >= 2) {  // halve ranks, keep placement legal
    ws::RunConfig c = config;
    topo::Rank halved = config.num_ranks / 2;
    halved -= halved % config.procs_per_node;
    if (halved >= config.procs_per_node && halved >= 2) {
      c.num_ranks = halved;
      push(std::move(c));
    }
  }
  if (config.tree.root_branching > 1) {  // halve the root fan-out
    ws::RunConfig c = config;
    c.tree.root_branching = config.tree.root_branching / 2;
    push(std::move(c));
  }
  if (config.tree.type != uts::TreeType::kBinomial && config.tree.gen_mx > 1) {
    ws::RunConfig c = config;
    c.tree.gen_mx = config.tree.gen_mx - 1;
    push(std::move(c));
  }
  if (config.tree.type == uts::TreeType::kBinomial && config.tree.q > 0.05) {
    ws::RunConfig c = config;  // thin the tree
    c.tree.q = config.tree.q * 0.8;
    push(std::move(c));
  }
  if (config.congestion.enabled) {
    ws::RunConfig c = config;
    c.congestion = sim::CongestionParams{};
    c.congestion_scale = 0.0;
    push(std::move(c));
  }
  if (config.fault.enabled() || config.ws.steal_timeout != 0 ||
      config.ws.token_timeout != 0) {
    // All-or-nothing: the timeouts exist to keep a lossy run live, so they
    // only come off together with the fault model (validate() would reject
    // drop_prob > 0 without them).
    ws::RunConfig c = config;
    c.fault = fault::FaultConfig{};
    c.ws.steal_timeout = 0;
    c.ws.token_timeout = 0;
    push(std::move(c));
  }
  {  // one knob at a time back to the boring default
    ws::RunConfig c = config;
    c.ws.idle_policy = ws::IdlePolicy::kPersistentSteal;
    push(std::move(c));
    c = config;
    c.ws.one_sided_steals = false;
    push(std::move(c));
    c = config;
    c.ws.poll_interval = 1;
    push(std::move(c));
    c = config;
    c.ws.sha_rounds = 1;
    push(std::move(c));
    c = config;
    c.ws.steal_amount = ws::StealAmount::kOneChunk;
    push(std::move(c));
    c = config;
    c.ws.victim_policy = ws::VictimPolicy::kRoundRobin;
    push(std::move(c));
    if (config.ws.adaptive_steal_amount) {
      c = config;
      c.ws.adaptive_steal_amount = false;
      c.ws.adapt_yield_threshold = 0;
      push(std::move(c));
    }
    if (config.ws.victim_policy == ws::VictimPolicy::kAdaptive ||
        config.ws.adaptive_steal_amount) {
      c = config;  // feedback knobs back to defaults
      c.ws.adapt_decay = 0.25;
      c.ws.adapt_epsilon = 0.1;
      c.ws.adapt_refresh_interval = 32;
      push(std::move(c));
    }
    if (config.ws.hierarchical_remote_tries != 1) {
      c = config;
      c.ws.hierarchical_remote_tries = 1;
      push(std::move(c));
    }
    if (config.ws.chunk_size > 1) {
      c = config;
      c.ws.chunk_size = config.ws.chunk_size / 2;
      push(std::move(c));
    }
    c = config;
    c.ws.seed = 1;
    push(std::move(c));
  }
  return out;
}

}  // namespace

support::Expected<Mutation> parse_mutation(std::string_view s) {
  using E = support::Expected<Mutation>;
  if (s == "none") return Mutation::kNone;
  if (s == "drop-receipt") return Mutation::kDropReceipt;
  if (s == "double-expand") return Mutation::kDoubleExpand;
  if (s == "leak-message") return Mutation::kLeakMessage;
  return E::failure("mutation must be " + std::string(mutation_flag_values()) +
                    ", got '" + std::string(s) + "'");
}

const char* mutation_flag_values() {
  return "none|drop-receipt|double-expand|leak-message";
}

const char* to_string(Mutation m) {
  switch (m) {
    case Mutation::kNone: return "none";
    case Mutation::kDropReceipt: return "drop-receipt";
    case Mutation::kDoubleExpand: return "double-expand";
    case Mutation::kLeakMessage: return "leak-message";
  }
  return "?";
}

ws::RunConfig random_config(std::uint64_t seed, std::uint64_t node_budget,
                            bool with_faults) {
  // Rejection loop: some draws produce trees over budget; re-derive from a
  // decorrelated sub-seed until one fits. The loop terminates fast — the
  // parameter ranges below make oversized trees the rare case.
  for (std::uint64_t attempt = 0; attempt < 1000; ++attempt) {
    support::Xoshiro256StarStar rng(seed + attempt * 0x9E3779B97F4A7C15ull);

    ws::RunConfig cfg;
    cfg.tree.name = "fuzz";
    if (rng.next_below(3) == 0) {
      cfg.tree.type = uts::TreeType::kGeometric;
      cfg.tree.root_branching =
          2 + static_cast<std::uint32_t>(rng.next_below(4));
      cfg.tree.gen_mx = 4 + static_cast<std::uint32_t>(rng.next_below(5));
      cfg.tree.shape = static_cast<uts::GeoShape>(rng.next_below(4));
    } else {
      cfg.tree.type = uts::TreeType::kBinomial;
      cfg.tree.root_branching =
          10 + static_cast<std::uint32_t>(rng.next_below(500));
      cfg.tree.m = 2 + static_cast<std::uint32_t>(rng.next_below(4));
      cfg.tree.q = (0.5 + rng.next_double() * 0.45) / cfg.tree.m;
    }
    cfg.tree.root_seed = static_cast<std::uint32_t>(rng.next_below(1000));

    const auto ppn_choice = static_cast<std::uint32_t>(rng.next_below(3));
    if (ppn_choice == 0) {
      cfg.placement = topo::Placement::kOnePerNode;
      cfg.procs_per_node = 1;
      cfg.num_ranks = 2 + static_cast<topo::Rank>(rng.next_below(40));
    } else {
      cfg.placement = ppn_choice == 1 ? topo::Placement::kRoundRobin
                                      : topo::Placement::kGrouped;
      cfg.procs_per_node = 1u << (1 + rng.next_below(3));  // 2, 4, 8
      cfg.num_ranks =
          cfg.procs_per_node * (1 + static_cast<topo::Rank>(rng.next_below(8)));
    }

    cfg.ws.chunk_size = 1 + static_cast<std::uint32_t>(rng.next_below(30));
    cfg.ws.victim_policy = static_cast<ws::VictimPolicy>(rng.next_below(5));
    cfg.ws.steal_amount = static_cast<ws::StealAmount>(rng.next_below(2));
    cfg.ws.idle_policy = static_cast<ws::IdlePolicy>(rng.next_below(2));
    cfg.ws.lifeline_tries = 1 + static_cast<std::uint32_t>(rng.next_below(6));
    cfg.ws.hierarchical_local_tries =
        static_cast<std::uint32_t>(rng.next_below(5));
    cfg.ws.hierarchical_remote_tries =
        1 + static_cast<std::uint32_t>(rng.next_below(3));
    cfg.ws.adaptive_steal_amount = rng.next_below(4) == 0;
    if (cfg.ws.victim_policy == ws::VictimPolicy::kAdaptive ||
        cfg.ws.adaptive_steal_amount) {
      cfg.ws.adapt_decay = 0.05 + 0.95 * rng.next_double();
      cfg.ws.adapt_epsilon = 0.02 + 0.5 * rng.next_double();
      cfg.ws.adapt_refresh_interval =
          1 + static_cast<std::uint32_t>(rng.next_below(64));
      cfg.ws.adapt_yield_threshold =
          static_cast<std::uint32_t>(rng.next_below(80));
    }
    cfg.ws.one_sided_steals = rng.next_below(2) == 1;
    cfg.ws.poll_interval = 1 + static_cast<std::uint32_t>(rng.next_below(4));
    cfg.ws.sha_rounds = 1 + static_cast<std::uint32_t>(rng.next_below(4));
    cfg.ws.seed = rng.next();
    if (rng.next_below(4) == 0) cfg.ws.alias_table_max_ranks = 1;
    cfg.origin_cube = static_cast<std::uint32_t>(rng.next_below(500));
    if (rng.next_below(2) == 1) cfg.enable_congestion(0.5 + rng.next_double());

    if (with_faults && rng.next_below(2) == 1) {
      cfg.fault.drop_prob = rng.next_below(2) == 1 ? 0.05 * rng.next_double()
                                                   : 0.0;
      cfg.fault.dup_prob = rng.next_below(2) == 1 ? 0.05 * rng.next_double()
                                                  : 0.0;
      cfg.fault.jitter_frac = rng.next_below(2) == 1 ? 0.5 * rng.next_double()
                                                     : 0.0;
      if (rng.next_below(3) == 0) {
        cfg.fault.degraded_frac = 0.2 * rng.next_double();
        cfg.fault.degraded_mult = 1.0 + 4.0 * rng.next_double();
      }
      if (rng.next_below(3) == 0) {
        cfg.fault.straggler_ranks =
            1 + static_cast<std::uint32_t>(rng.next_below(2));
        cfg.fault.straggler_factor = 2.0 + 6.0 * rng.next_double();
      }
      if (rng.next_below(4) == 0) {
        cfg.fault.pause_ranks = 1;
        cfg.fault.pause_duration =
            1000 + static_cast<support::SimTime>(rng.next_below(100'000));
        cfg.fault.pause_window =
            static_cast<support::SimTime>(rng.next_below(1'000'000));
      }
      cfg.fault.seed = rng.next();
      if (cfg.fault.drop_prob > 0.0) {
        // Liveness: loss needs the timeout recovery paths (validate()
        // rejects the combination otherwise).
        cfg.ws.steal_timeout =
            50'000 + static_cast<support::SimTime>(rng.next_below(200'000));
        cfg.ws.token_timeout =
            1'000'000 + static_cast<support::SimTime>(rng.next_below(9'000'000));
      } else if (cfg.fault.enabled() && rng.next_below(2) == 1) {
        cfg.ws.steal_timeout =
            50'000 + static_cast<support::SimTime>(rng.next_below(200'000));
      }
    }

    if (!cfg.validate()) continue;
    if (uts::enumerate_sequential(cfg.tree, node_budget).truncated) continue;
    return cfg;
  }
  DWS_CHECK(false && "random_config could not fit the node budget");
}

std::string reproducer_command(const ws::RunConfig& config) {
  const auto* placement = [&] {
    switch (config.placement) {
      case topo::Placement::kOnePerNode: return "1n";
      case topo::Placement::kRoundRobin: return "rr";
      case topo::Placement::kGrouped: return "g";
    }
    return "1n";
  }();
  const auto* policy = [&] {
    switch (config.ws.victim_policy) {
      case ws::VictimPolicy::kRoundRobin: return "ref";
      case ws::VictimPolicy::kRandom: return "rand";
      case ws::VictimPolicy::kTofuSkewed: return "tofu";
      case ws::VictimPolicy::kHierarchical: return "hier";
      case ws::VictimPolicy::kAdaptive: return "adaptive";
    }
    return "ref";
  }();

  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "./examples/uts_cli --engine sim -t %u -b %u -q %.17g -m %u -r %u "
      "-d %u -a %u --ranks %u --placement %s --ppn %u --origin-cube %u "
      "--policy %s --steal %s --chunk %u -g %u --poll %u --seed %llu "
      "--idle %s --lifeline-tries %u --local-tries %u%s "
      "--congestion %.17g --alias-max %u",
      static_cast<unsigned>(config.tree.type), config.tree.root_branching,
      config.tree.q, config.tree.m, config.tree.root_seed, config.tree.gen_mx,
      static_cast<unsigned>(config.tree.shape), config.num_ranks, placement,
      config.procs_per_node, config.origin_cube, policy,
      config.ws.steal_amount == ws::StealAmount::kHalf ? "half" : "1",
      config.ws.chunk_size, config.ws.sha_rounds, config.ws.poll_interval,
      static_cast<unsigned long long>(config.ws.seed),
      config.ws.idle_policy == ws::IdlePolicy::kLifeline ? "lifeline"
                                                         : "persistent",
      config.ws.lifeline_tries, config.ws.hierarchical_local_tries,
      config.ws.one_sided_steals ? " --one-sided" : "",
      config.congestion.enabled ? config.congestion_scale : 0.0,
      config.ws.alias_table_max_ranks);

  std::string cmd(buf);
  const auto flag_u64 = [&cmd](const char* flag, std::uint64_t v) {
    cmd += ' ';
    cmd += flag;
    cmd += ' ';
    cmd += std::to_string(v);
  };
  const auto flag_f64 = [&cmd, &buf](const char* flag, double v) {
    std::snprintf(buf, sizeof(buf), " %s %.17g", flag, v);
    cmd += buf;
  };
  if (config.ws.steal_timeout != 0) {
    flag_u64("--steal-timeout",
             static_cast<std::uint64_t>(config.ws.steal_timeout));
    flag_u64("--steal-retry-max", config.ws.steal_retry_max);
    flag_f64("--steal-backoff", config.ws.steal_backoff);
  }
  if (config.ws.token_timeout != 0) {
    flag_u64("--token-timeout",
             static_cast<std::uint64_t>(config.ws.token_timeout));
  }
  if (config.ws.hierarchical_remote_tries != 1) {
    flag_u64("--remote-tries", config.ws.hierarchical_remote_tries);
  }
  if (config.ws.victim_policy == ws::VictimPolicy::kAdaptive ||
      config.ws.adaptive_steal_amount) {
    flag_f64("--adapt-decay", config.ws.adapt_decay);
    flag_f64("--adapt-epsilon", config.ws.adapt_epsilon);
    flag_u64("--adapt-refresh", config.ws.adapt_refresh_interval);
  }
  if (config.ws.adaptive_steal_amount) {
    cmd += " --adaptive-amount";
    flag_u64("--adapt-yield-threshold", config.ws.adapt_yield_threshold);
  }
  const fault::FaultConfig& f = config.fault;
  if (f.enabled()) {
    if (f.drop_prob > 0.0) flag_f64("--fault-drop", f.drop_prob);
    if (f.dup_prob > 0.0) flag_f64("--fault-dup", f.dup_prob);
    if (f.jitter_frac > 0.0) flag_f64("--fault-jitter", f.jitter_frac);
    if (f.degraded_frac > 0.0) {
      flag_f64("--fault-degraded-frac", f.degraded_frac);
      flag_f64("--fault-degraded-mult", f.degraded_mult);
    }
    if (f.straggler_ranks > 0) {
      flag_u64("--fault-stragglers", f.straggler_ranks);
      flag_f64("--fault-straggler-factor", f.straggler_factor);
    }
    if (f.pause_ranks > 0 && f.pause_duration > 0) {
      flag_u64("--fault-pauses", f.pause_ranks);
      flag_u64("--fault-pause-duration",
               static_cast<std::uint64_t>(f.pause_duration));
      flag_u64("--fault-pause-window",
               static_cast<std::uint64_t>(f.pause_window));
    }
    flag_u64("--fault-seed", f.seed);
  }
  cmd += " --audit";
  return cmd;
}

FuzzResult run_fuzz(const FuzzOptions& opts) {
  DWS_CHECK(opts.cases > 0);

  auto configs = std::make_shared<std::vector<ws::RunConfig>>();
  configs->reserve(opts.cases);
  support::SplitMix64 case_seeds(opts.seed);
  for (std::uint64_t i = 0; i < opts.cases; ++i) {
    configs->push_back(
        random_config(case_seeds.next(), opts.node_budget, opts.faults));
  }

  exp::SweepSpec spec(configs->front());
  std::vector<exp::AxisPoint> points;
  points.reserve(configs->size());
  for (std::size_t i = 0; i < configs->size(); ++i) {
    points.push_back({"#" + std::to_string(i),
                      [configs, i](ws::RunConfig& cfg) { cfg = (*configs)[i]; }});
  }
  spec.axis("case", std::move(points));

  exp::RunnerOptions ropts;
  ropts.threads = opts.threads;
  ropts.progress = opts.progress;
  ropts.run = [&opts](const ws::RunConfig& cfg) {
    return audited_point_run(cfg, opts);
  };
  const exp::SweepReport report = exp::SweepRunner(ropts).run(spec);

  FuzzResult out;
  for (const exp::PointResult& p : report.points) {
    if (p.skipped) {
      ++out.cases_skipped;
    } else {
      ++out.cases_run;
    }
  }

  const exp::PointResult* failed = report.first_failure();
  if (failed == nullptr) return out;

  FuzzFailure failure;
  failure.original = (*configs)[failed->index];
  failure.config = failure.original;
  failure.first_violation = failed->error;

  // Greedy shrink: adopt the first candidate that still fails, restart from
  // it, stop when no candidate fails (local minimum) or the round budget is
  // spent. Deterministic because the runs are.
  bool progressed = true;
  while (progressed && failure.shrink_steps < opts.max_shrink_rounds) {
    progressed = false;
    for (ws::RunConfig& candidate : shrink_candidates(failure.config)) {
      std::string message;
      if (still_fails(candidate, opts, &message)) {
        failure.config = std::move(candidate);
        failure.first_violation = std::move(message);
        ++failure.shrink_steps;
        progressed = true;
        break;
      }
    }
  }

  failure.reproducer = reproducer_command(failure.config);
  out.failure = std::move(failure);
  return out;
}

}  // namespace dws::audit
