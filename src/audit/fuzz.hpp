#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "audit/audit.hpp"
#include "support/expected.hpp"
#include "ws/scheduler.hpp"

/// Property-based configuration fuzzing over the audited simulator
/// (examples/audit_fuzz is the CLI front end, tests/audit the regression
/// harness). Each case derives a full RunConfig from a seed — tree shape,
/// rank count, placement, every scheduler knob — and runs it through
/// exp::SweepRunner with the full audit family enabled. A failing case is
/// greedily shrunk to a minimal still-failing config and printed as a
/// ./examples/uts_cli command line anyone can paste to reproduce.
namespace dws::audit {

/// Deliberate observer-stream corruption for mutation testing: each mode
/// tells the auditor one specific lie, once, and the fuzzer asserts the
/// audit catches it. This is how we test the checker itself.
enum class Mutation : std::uint8_t {
  kNone,          ///< honest run (the normal fuzzing mode)
  kDropReceipt,   ///< swallow the first work-carrying steal-response receipt
  kDoubleExpand,  ///< report the first node expansion twice
  kLeakMessage,   ///< hide the first steal request from the ledger
};

support::Expected<Mutation> parse_mutation(std::string_view s);
const char* mutation_flag_values();  // "none|drop-receipt|double-expand|..."
const char* to_string(Mutation m);

struct FuzzOptions {
  std::uint64_t cases = 200;
  std::uint64_t seed = 1;
  /// Configs whose sequential tree exceeds this many nodes are regenerated
  /// (bounds the cost of one case and of the per-case oracle).
  std::uint64_t node_budget = 2'000'000;
  unsigned threads = 0;  ///< SweepRunner fan-out; 0 = hardware concurrency
  bool progress = false;
  Mutation mutation = Mutation::kNone;
  std::uint32_t max_shrink_rounds = 64;
  /// Draw fault-injection knobs (message loss, duplication, jitter,
  /// stragglers, pauses — fault::FaultConfig) for roughly half the cases.
  /// Cases with loss always get steal/token timeouts (the liveness recovery
  /// path), which also puts the auditor in its relaxed message mode.
  bool faults = false;
  /// Family toggles for every case; expected_nodes/leaves are filled per
  /// case from the sequential oracle. The distribution family is sampled
  /// only for configs small enough to afford it (<= 256 ranks).
  AuditConfig audit = AuditConfig::all();
};

struct FuzzFailure {
  ws::RunConfig config;    ///< minimal still-failing config (after shrinking)
  ws::RunConfig original;  ///< the case as generated
  std::string first_violation;
  std::uint32_t shrink_steps = 0;
  std::string reproducer;  ///< uts_cli command line for `config`
};

struct FuzzResult {
  std::uint64_t cases_run = 0;      ///< cases actually executed
  std::uint64_t cases_skipped = 0;  ///< cancelled after the first failure
  std::optional<FuzzFailure> failure;
  bool ok() const noexcept { return !failure.has_value(); }
};

/// Deterministic random RunConfig for `seed`: subcritical binomial or
/// bounded geometric tree, 2..64 ranks over all three placements, and every
/// scheduler knob drawn from its interesting range. With `with_faults`,
/// roughly half the configs additionally draw a fault::FaultConfig plus the
/// timeouts that keep a lossy run live. The returned config validates and
/// its sequential tree fits `node_budget`.
ws::RunConfig random_config(std::uint64_t seed, std::uint64_t node_budget,
                            bool with_faults = false);

/// The uts_cli invocation reproducing an audited run of `config`.
std::string reproducer_command(const ws::RunConfig& config);

/// Run `opts.cases` random configs through the audited simulator on a
/// SweepRunner pool. On the first audit violation (or simulator DWS_CHECK
/// failure) the sweep cancels, the failing config is shrunk, and the result
/// carries the minimal reproducer.
FuzzResult run_fuzz(const FuzzOptions& opts);

}  // namespace dws::audit
