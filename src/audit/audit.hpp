#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "ws/observer.hpp"
#include "ws/scheduler.hpp"

/// dws::audit — runtime invariant checking for the work-stealing simulator
/// (DESIGN.md §8).
///
/// An Auditor attaches to ws::run_simulation through the passive
/// ws::RunObserver seam and replays an independent conservation ledger
/// against the run:
///
///  * work conservation — every tree node is expanded exactly once (64-bit
///    fingerprints over the UTS SHA-1 node state), per-rank stacks never go
///    negative, nodes in flight sum to zero at termination, and the totals
///    match both the RunResult and (optionally) the sequential oracle;
///  * message conservation — steal responses pair with requests, at most one
///    request per thief is outstanding, and the ledger's message/byte totals
///    reproduce sim::NetworkStats exactly;
///  * clock / trace sanity — per-rank phase timestamps are monotone, no rank
///    turns Active after global termination, the token walks the ring, and
///    every rank finishes at or after the declared termination time;
///  * distribution validation — each victim selector's empirical histogram
///    passes a chi-square test against its analytic distribution
///    (distribution.hpp; sampled out-of-band, not from the run).
///
/// Auditing is strictly zero-cost when off: without an observer the worker
/// pays one null-pointer test per hook site, and the simulation's event
/// order is bit-identical either way.
namespace dws::audit {

/// The four invariant families, for violation triage.
enum class Family : std::uint8_t {
  kWork,
  kMessages,
  kClock,
  kDistribution,
};

const char* to_string(Family f);

struct Violation {
  Family family;
  std::string message;
};

/// Which families to check and how hard. Default: everything except the
/// distribution family (which resamples selectors and costs O(samples)).
struct AuditConfig {
  bool check_work = true;
  bool check_messages = true;
  bool check_clock = true;
  bool check_distribution = false;

  /// Distribution family: draws per audited selector, and the p-value below
  /// which a chi-square result is a violation (loose on purpose — this is a
  /// correctness screen, not a statistics paper).
  std::uint64_t distribution_samples = 20000;
  double distribution_min_p = 1e-6;

  /// Exactly-once tracking keeps one 64-bit fingerprint per expanded node;
  /// past this many nodes the set stops growing (count-based invariants
  /// still apply, so huge runs degrade gracefully instead of thrashing).
  std::uint64_t max_tracked_nodes = 1ull << 22;

  /// Sequential-oracle expectations; unset skips the oracle comparison.
  std::optional<std::uint64_t> expected_nodes;
  std::optional<std::uint64_t> expected_leaves;

  /// Stop collecting (but keep counting) violations past this many.
  std::size_t max_violations = 32;

  /// Every family on, including the distribution screen.
  static AuditConfig all() {
    AuditConfig a;
    a.check_distribution = true;
    return a;
  }
};

/// True when the DWS_AUDIT environment variable asks for auditing ("1",
/// "true", "on", any non-empty value except "0"/"false"/"off").
bool env_enabled();

/// Everything one audited run produced: the violations (empty == clean) and
/// the ledger's headline counters, for reporting and tests.
struct AuditReport {
  std::vector<Violation> violations;
  std::size_t violations_total = 0;  ///< including ones past max_violations

  std::uint64_t nodes_expanded = 0;
  std::uint64_t nodes_tracked = 0;   ///< fingerprints actually stored
  std::uint64_t requests = 0;        ///< steal requests sent
  std::uint64_t responses_sent = 0;
  std::uint64_t responses_received = 0;
  std::uint64_t tokens = 0;
  std::uint64_t lifeline_registers = 0;
  std::uint64_t lifeline_pushes = 0;
  std::uint64_t steal_timeouts = 0;       ///< abandoned requests (fault mode)
  std::uint64_t duplicate_responses = 0;  ///< network duplicates discarded
  std::uint64_t token_regens = 0;         ///< termination tokens regenerated

  bool ok() const noexcept { return violations_total == 0; }
  /// One-line verdict; multi-line violation list when not ok().
  std::string summary() const;
};

/// The invariant checker. Attach to a run, then call finalize() with the
/// run's result to cross-check ledger totals:
///
///   Auditor auditor(config);
///   ws::RunResult r = ws::run_simulation(config, &auditor);
///   auditor.finalize(r);
///   if (!auditor.report().ok()) { ... auditor.report().summary() ... }
///
/// The auditor never mutates scheduler state and never aborts; everything it
/// finds lands in the report.
class Auditor final : public ws::RunObserver {
 public:
  explicit Auditor(const ws::RunConfig& config, AuditConfig audit = {});

  // ws::RunObserver hooks (incremental checks).
  void on_root(topo::Rank rank, const uts::TreeNode& root) override;
  void on_node_expanded(topo::Rank rank, const uts::TreeNode& node,
                        std::uint32_t children) override;
  void on_steal_request_sent(topo::Rank thief, topo::Rank victim,
                             std::uint32_t bytes) override;
  void on_steal_response_sent(topo::Rank victim, topo::Rank thief,
                              std::uint64_t chunks, std::uint64_t nodes,
                              std::uint32_t bytes) override;
  void on_steal_response_received(topo::Rank thief, topo::Rank victim,
                                  std::uint64_t chunks,
                                  std::uint64_t nodes) override;
  void on_lifeline_register_sent(topo::Rank rank, topo::Rank target,
                                 std::uint32_t bytes) override;
  void on_lifeline_push_sent(topo::Rank from, topo::Rank to,
                             std::uint64_t chunks, std::uint64_t nodes,
                             std::uint32_t bytes) override;
  void on_lifeline_push_received(topo::Rank rank, std::uint64_t chunks,
                                 std::uint64_t nodes) override;
  void on_steal_timeout(topo::Rank thief, topo::Rank victim,
                        std::uint32_t attempt) override;
  void on_duplicate_response(topo::Rank thief, std::uint64_t chunks,
                             std::uint64_t nodes) override;
  void on_token_sent(topo::Rank from, topo::Rank to,
                     const ws::Token& t) override;
  void on_token_accepted(topo::Rank rank, const ws::Token& t) override;
  void on_token_regenerated(topo::Rank rank, std::uint32_t generation) override;
  void on_phase(topo::Rank rank, support::SimTime t,
                metrics::Phase p) override;
  void on_termination(support::SimTime t) override;
  void on_finish(topo::Rank rank, support::SimTime t) override;

  /// Cross-check the ledger against the run's result (totals, NetworkStats,
  /// oracle, distribution family). Call exactly once, after the run.
  void finalize(const ws::RunResult& result);

  const AuditReport& report() const noexcept { return report_; }

 private:
  void violation(Family f, std::string message);
  /// Current ledger estimate of rank r's stack depth (in tree nodes).
  std::int64_t stack_estimate(topo::Rank r) const noexcept;
  void check_distributions();

  ws::RunConfig config_;
  AuditConfig audit_;
  AuditReport report_;

  // Work-conservation ledger, one slot per rank.
  std::vector<std::uint64_t> created_;   // root + children generated
  std::vector<std::uint64_t> expanded_;  // nodes popped and expanded
  std::vector<std::uint64_t> sent_;      // nodes shipped (responses + pushes)
  std::vector<std::uint64_t> recv_;      // nodes landed (responses + pushes)
  std::uint64_t leaves_ = 0;
  std::uint64_t chunks_sent_ = 0;
  std::uint64_t chunks_recv_ = 0;
  std::uint64_t work_responses_sent_ = 0;  // work-carrying messages (Mattern)
  std::uint64_t work_responses_recv_ = 0;
  bool root_seen_ = false;
  std::unordered_set<std::uint64_t> fingerprints_;
  std::uint64_t fingerprint_dups_ = 0;

  // Message-conservation ledger.
  std::vector<std::uint8_t> request_outstanding_;   // per thief
  std::vector<std::uint8_t> response_outstanding_;  // per thief
  std::uint64_t bytes_sent_ = 0;

  /// Fault mode (drops/dups/timeouts configured): per-pair request/response
  /// pairing is legitimately violated — a thief re-requests after abandoning,
  /// a victim answers a request the timeout already wrote off — so those
  /// checks are skipped. Work conservation stays EXACT: drops are counted at
  /// send by both the ledger and sim::NetworkStats, duplicates are counted in
  /// fault::FaultStats and added back in finalize(), and banked late answers
  /// flow through the ordinary response hooks.
  bool relaxed_ = false;

  // Clock / trace ledger.
  std::optional<ws::Token> last_token_to_zero_;
  std::optional<ws::Token> accepted_token_;  // last token rank 0 accepted
  std::vector<support::SimTime> last_phase_time_;
  std::vector<std::uint8_t> finished_;
  bool terminated_ = false;
  support::SimTime termination_time_ = 0;
  bool finalized_ = false;
};

/// One run, fully audited: the result plus the audit's verdict.
struct AuditedResult {
  ws::RunResult result;
  AuditReport report;
};

/// Run the simulation with an Auditor attached and finalize the report.
/// Fills AuditConfig::expected_nodes/leaves from the sequential oracle when
/// unset (skipped if the tree exceeds `oracle_node_limit` nodes).
AuditedResult audited_run(const ws::RunConfig& config, AuditConfig audit = {},
                          std::uint64_t oracle_node_limit = 50'000'000);

/// run_simulation with the default audit families on; throws
/// std::runtime_error carrying AuditReport::summary() if any invariant is
/// violated. This is what exp::SweepRunner's default run function executes
/// per point when DWS_AUDIT=1 (the runner's scoped check handler turns the
/// throw into a failed point instead of a crash).
ws::RunResult checked_run(const ws::RunConfig& config);

}  // namespace dws::audit
