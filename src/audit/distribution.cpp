#include "audit/distribution.hpp"

#include <cmath>
#include <cstdio>

#include "support/check.hpp"
#include "support/stats.hpp"

namespace dws::audit {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

}  // namespace

std::vector<double> expected_distribution(const ws::WsConfig& config,
                                          topo::Rank self,
                                          topo::Rank num_ranks,
                                          const topo::LatencyModel& latency) {
  DWS_CHECK(num_ranks >= 2);
  DWS_CHECK(self < num_ranks);
  std::vector<double> p(num_ranks, 0.0);

  switch (config.victim_policy) {
    case ws::VictimPolicy::kRoundRobin:
    case ws::VictimPolicy::kRandom: {
      const double u = 1.0 / static_cast<double>(num_ranks - 1);
      for (topo::Rank j = 0; j < num_ranks; ++j) {
        if (j != self) p[j] = u;
      }
      return p;
    }
    case ws::VictimPolicy::kTofuSkewed: {
      // probability() is backend-independent (pure weights), so any
      // alias_table_max_ranks gives the same answer; pick the cheap one.
      ws::TofuSkewedSelector selector(self, latency, config.seed, 1);
      for (topo::Rank j = 0; j < num_ranks; ++j) {
        p[j] = selector.probability(j);
      }
      return p;
    }
    case ws::VictimPolicy::kHierarchical: {
      ws::HierarchicalSelector selector(self, latency, config.seed,
                                        config.hierarchical_local_tries,
                                        config.hierarchical_remote_tries);
      const auto& local = selector.local_set();
      const auto& remote = selector.remote_set();
      const double local_tries = config.hierarchical_local_tries;
      const double remote_tries = config.hierarchical_remote_tries;
      double local_share = local_tries / (local_tries + remote_tries);
      if (local.empty()) local_share = 0.0;
      if (remote.empty()) local_share = 1.0;
      for (const topo::Rank j : local) {
        p[j] = local_share / static_cast<double>(local.size());
      }
      for (const topo::Rank j : remote) {
        p[j] = (1.0 - local_share) / static_cast<double>(remote.size());
      }
      return p;
    }
    case ws::VictimPolicy::kAdaptive: {
      // A fresh selector has seen no feedback, so its live weights equal the
      // Tofu base and probability() — epsilon mix included — is exactly the
      // distribution the audit samples from below.
      ws::AdaptiveSkewedSelector selector(self, latency, config.seed, config);
      for (topo::Rank j = 0; j < num_ranks; ++j) {
        p[j] = selector.probability(j);
      }
      return p;
    }
  }
  DWS_CHECK(false && "unreachable victim policy");
}

DistributionCheck check_selector_distribution(
    ws::VictimSelector& selector, const std::vector<double>& expected,
    topo::Rank self, std::uint64_t samples, double min_p) {
  DWS_CHECK(samples > 0);
  DistributionCheck out;
  out.samples = samples;

  std::vector<std::uint64_t> counts(expected.size(), 0);
  for (std::uint64_t i = 0; i < samples; ++i) {
    const topo::Rank v = selector.next();
    if (v >= counts.size() || v == self || expected[v] <= 0.0) {
      out.ok = false;
      out.detail = "drew rank " + std::to_string(v) +
                   " outside the distribution's support";
      return out;
    }
    ++counts[v];
  }

  // Chi-square with small-expectation pooling: bins expecting < 5 draws are
  // merged into one, keeping the test valid for skewed distributions with
  // long tails of rarely-picked victims.
  const double n = static_cast<double>(samples);
  double chi2 = 0.0;
  double bins = 0.0;
  double pooled_expected = 0.0;
  double pooled_observed = 0.0;
  for (std::size_t j = 0; j < expected.size(); ++j) {
    if (expected[j] <= 0.0) continue;
    const double e = expected[j] * n;
    if (e < 5.0) {
      pooled_expected += e;
      pooled_observed += static_cast<double>(counts[j]);
      continue;
    }
    const double d = static_cast<double>(counts[j]) - e;
    chi2 += d * d / e;
    bins += 1.0;
  }
  if (pooled_expected > 0.0) {
    const double d = pooled_observed - pooled_expected;
    chi2 += d * d / pooled_expected;
    bins += 1.0;
  }
  if (bins < 2.0) {
    // Everything pooled into one bin: the histogram is trivially right.
    return out;
  }
  out.chi2 = chi2;
  out.dof = bins - 1.0;
  out.p_value = support::chi_square_sf(chi2, out.dof);
  if (out.p_value < min_p) {
    out.ok = false;
    out.detail = "chi2 = " + fmt(out.chi2) + " over " + fmt(out.dof) +
                 " dof, p = " + fmt(out.p_value) + " < " + fmt(min_p);
  }
  return out;
}

DistributionCheck check_tofu_backends_agree(const ws::WsConfig& config,
                                            topo::Rank self,
                                            const topo::LatencyModel& latency,
                                            std::uint64_t samples,
                                            double min_p) {
  const topo::Rank n = latency.layout().num_ranks();
  // Thresholds forcing each backend regardless of the configured cutoff.
  ws::TofuSkewedSelector alias(self, latency, config.seed, n);
  ws::TofuSkewedSelector rejection(self, latency, config.seed + 1, 1);
  DWS_CHECK(alias.uses_alias_table());
  DWS_CHECK(!rejection.uses_alias_table());

  DistributionCheck out;
  std::vector<double> expected(n, 0.0);
  for (topo::Rank j = 0; j < n; ++j) {
    expected[j] = alias.probability(j);
    const double diff = std::abs(expected[j] - rejection.probability(j));
    if (diff > 1e-12) {
      out.ok = false;
      out.detail = "probability(" + std::to_string(j) +
                   ") differs between backends by " + fmt(diff);
      return out;
    }
  }

  // Both backends must *sample* the shared analytic distribution.
  DistributionCheck a =
      check_selector_distribution(alias, expected, self, samples, min_p);
  if (!a.ok) {
    a.detail = "alias backend: " + a.detail;
    return a;
  }
  DistributionCheck r =
      check_selector_distribution(rejection, expected, self, samples, min_p);
  if (!r.ok) r.detail = "rejection backend: " + r.detail;
  return r;
}

}  // namespace dws::audit
