#include "audit/audit.hpp"

#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "audit/distribution.hpp"
#include "rt/runtime.hpp"
#include "support/check.hpp"
#include "svc/service.hpp"
#include "topo/latency.hpp"
#include "uts/sequential.hpp"
#include "ws/victim.hpp"

namespace dws::audit {

namespace {

/// 64-bit fingerprint of a tree node. The UTS node state is a SHA-1 digest
/// chained from the root seed, so any 64 bits of it identify the node with
/// collision probability ~ n^2 / 2^65 — negligible at the sizes we track.
/// Height is folded in as a belt-and-braces guard.
std::uint64_t node_fingerprint(const uts::TreeNode& node) {
  std::uint64_t fp = 0;
  std::memcpy(&fp, node.rng.state().data(), sizeof(fp));
  return fp ^ (static_cast<std::uint64_t>(node.height) * 0x9E3779B97F4A7C15ull);
}

std::string rank_str(topo::Rank r) { return std::to_string(r); }

}  // namespace

const char* to_string(Family f) {
  switch (f) {
    case Family::kWork: return "work";
    case Family::kMessages: return "messages";
    case Family::kClock: return "clock";
    case Family::kDistribution: return "distribution";
  }
  return "?";
}

bool env_enabled() {
  const char* v = std::getenv("DWS_AUDIT");
  if (v == nullptr || *v == '\0') return false;
  const std::string s(v);
  return s != "0" && s != "false" && s != "off";
}

std::string AuditReport::summary() const {
  if (ok()) {
    return "audit: OK (" + std::to_string(nodes_expanded) + " nodes, " +
           std::to_string(requests) + " requests, " + std::to_string(tokens) +
           " tokens)";
  }
  std::string s = "audit: " + std::to_string(violations_total) + " violation" +
                  (violations_total == 1 ? "" : "s");
  for (const Violation& v : violations) {
    s += "\n  [" + std::string(to_string(v.family)) + "] " + v.message;
  }
  if (violations_total > violations.size()) {
    s += "\n  ... " + std::to_string(violations_total - violations.size()) +
         " more suppressed";
  }
  return s;
}

Auditor::Auditor(const ws::RunConfig& config, AuditConfig audit)
    : config_(config),
      audit_(audit),
      created_(config.num_ranks, 0),
      expanded_(config.num_ranks, 0),
      sent_(config.num_ranks, 0),
      recv_(config.num_ranks, 0),
      request_outstanding_(config.num_ranks, 0),
      response_outstanding_(config.num_ranks, 0),
      last_phase_time_(config.num_ranks, 0),
      finished_(config.num_ranks, 0) {
  relaxed_ = config.fault.enabled() || config.ws.steal_timeout > 0 ||
             config.ws.token_timeout > 0;
}

void Auditor::violation(Family f, std::string message) {
  ++report_.violations_total;
  if (report_.violations.size() < audit_.max_violations) {
    report_.violations.push_back({f, std::move(message)});
  }
}

std::int64_t Auditor::stack_estimate(topo::Rank r) const noexcept {
  return static_cast<std::int64_t>(created_[r]) +
         static_cast<std::int64_t>(recv_[r]) -
         static_cast<std::int64_t>(expanded_[r]) -
         static_cast<std::int64_t>(sent_[r]);
}

void Auditor::on_root(topo::Rank rank, const uts::TreeNode& root) {
  (void)root;
  if (!audit_.check_work) return;
  if (root_seen_) {
    violation(Family::kWork, "tree root seeded twice (rank " +
                                 rank_str(rank) + ")");
  }
  root_seen_ = true;
  ++created_[rank];
}

void Auditor::on_node_expanded(topo::Rank rank, const uts::TreeNode& node,
                               std::uint32_t children) {
  if (!audit_.check_work) return;
  if (stack_estimate(rank) < 1) {
    violation(Family::kWork,
              "rank " + rank_str(rank) +
                  " expanded a node its ledger stack does not hold");
  }
  ++expanded_[rank];
  ++report_.nodes_expanded;
  created_[rank] += children;
  if (children == 0) ++leaves_;

  if (fingerprints_.size() <
      static_cast<std::size_t>(audit_.max_tracked_nodes)) {
    if (!fingerprints_.insert(node_fingerprint(node)).second) {
      ++fingerprint_dups_;
      if (fingerprint_dups_ == 1) {
        violation(Family::kWork,
                  "node expanded twice (first duplicate on rank " +
                      rank_str(rank) + ", height " +
                      std::to_string(node.height) + ")");
      }
    }
    report_.nodes_tracked = fingerprints_.size();
  }
}

void Auditor::on_steal_request_sent(topo::Rank thief, topo::Rank victim,
                                    std::uint32_t bytes) {
  ++report_.requests;
  bytes_sent_ += bytes;
  if (!audit_.check_messages) return;
  if (thief == victim) {
    violation(Family::kMessages,
              "rank " + rank_str(thief) + " sent a steal request to itself");
  }
  if (request_outstanding_[thief] && !relaxed_) {
    violation(Family::kMessages,
              "rank " + rank_str(thief) +
                  " sent a second steal request with one outstanding");
  }
  request_outstanding_[thief] = 1;
}

void Auditor::on_steal_response_sent(topo::Rank victim, topo::Rank thief,
                                     std::uint64_t chunks, std::uint64_t nodes,
                                     std::uint32_t bytes) {
  ++report_.responses_sent;
  bytes_sent_ += bytes;
  if (audit_.check_messages) {
    if (!request_outstanding_[thief] && !relaxed_) {
      violation(Family::kMessages,
                "rank " + rank_str(victim) +
                    " answered a request rank " + rank_str(thief) +
                    " never sent");
    }
    if (response_outstanding_[thief] && !relaxed_) {
      violation(Family::kMessages, "two responses in flight to rank " +
                                       rank_str(thief));
    }
    response_outstanding_[thief] = 1;
  }
  if (audit_.check_work && nodes > 0) {
    if (stack_estimate(victim) < static_cast<std::int64_t>(nodes)) {
      violation(Family::kWork,
                "rank " + rank_str(victim) + " shipped " +
                    std::to_string(nodes) +
                    " nodes but its ledger stack holds " +
                    std::to_string(stack_estimate(victim)));
    }
    sent_[victim] += nodes;
    chunks_sent_ += chunks;
    ++work_responses_sent_;
  }
}

void Auditor::on_steal_response_received(topo::Rank thief, topo::Rank victim,
                                         std::uint64_t chunks,
                                         std::uint64_t nodes) {
  (void)victim;
  ++report_.responses_received;
  if (audit_.check_messages) {
    if (!response_outstanding_[thief] && !relaxed_) {
      violation(Family::kMessages,
                "rank " + rank_str(thief) +
                    " received a response with none in flight");
    }
    response_outstanding_[thief] = 0;
    request_outstanding_[thief] = 0;
  }
  if (audit_.check_work && nodes > 0) {
    recv_[thief] += nodes;
    chunks_recv_ += chunks;
    ++work_responses_recv_;
  }
}

void Auditor::on_lifeline_register_sent(topo::Rank rank, topo::Rank target,
                                        std::uint32_t bytes) {
  (void)rank, (void)target;
  ++report_.lifeline_registers;
  bytes_sent_ += bytes;
}

void Auditor::on_lifeline_push_sent(topo::Rank from, topo::Rank to,
                                    std::uint64_t chunks, std::uint64_t nodes,
                                    std::uint32_t bytes) {
  (void)to;
  ++report_.lifeline_pushes;
  bytes_sent_ += bytes;
  if (!audit_.check_work) return;
  if (nodes == 0) {
    violation(Family::kWork,
              "rank " + rank_str(from) + " pushed an empty lifeline delivery");
    return;
  }
  if (stack_estimate(from) < static_cast<std::int64_t>(nodes)) {
    violation(Family::kWork,
              "rank " + rank_str(from) + " lifeline-pushed " +
                  std::to_string(nodes) +
                  " nodes but its ledger stack holds " +
                  std::to_string(stack_estimate(from)));
  }
  sent_[from] += nodes;
  chunks_sent_ += chunks;
  ++work_responses_sent_;
}

void Auditor::on_lifeline_push_received(topo::Rank rank, std::uint64_t chunks,
                                        std::uint64_t nodes) {
  if (!audit_.check_work) return;
  recv_[rank] += nodes;
  chunks_recv_ += chunks;
  ++work_responses_recv_;
}

void Auditor::on_steal_timeout(topo::Rank thief, topo::Rank victim,
                               std::uint32_t attempt) {
  (void)victim, (void)attempt;
  ++report_.steal_timeouts;
  if (!relaxed_) {
    violation(Family::kMessages,
              "rank " + rank_str(thief) +
                  " timed out a steal request in a run with no timeout "
                  "configured");
  }
  if (audit_.check_messages) {
    // The abandoned pair is written off; the retry's own hooks restart it.
    request_outstanding_[thief] = 0;
    response_outstanding_[thief] = 0;
  }
}

void Auditor::on_duplicate_response(topo::Rank thief, std::uint64_t chunks,
                                    std::uint64_t nodes) {
  (void)chunks, (void)nodes;
  ++report_.duplicate_responses;
  if (!relaxed_) {
    violation(Family::kMessages,
              "rank " + rank_str(thief) +
                  " discarded a duplicate response in a fault-free run");
  }
}

void Auditor::on_token_sent(topo::Rank from, topo::Rank to,
                            const ws::Token& t) {
  ++report_.tokens;
  bytes_sent_ += config_.ws.token_bytes;
  if (!audit_.check_clock) return;
  if (to != (from + 1) % config_.num_ranks) {
    violation(Family::kClock, "token left the ring: " + rank_str(from) +
                                  " -> " + rank_str(to));
  }
  // The counters themselves admit no per-hop invariant: they are snapshots
  // taken at different times around the ring, so recv > sent is legal in
  // flight (that inconsistency is exactly what the color bit guards). Only
  // the token that rank 0 accepts for termination must be consistent — keep
  // it for on_termination().
  if (to == 0) last_token_to_zero_ = t;
}

void Auditor::on_token_accepted(topo::Rank rank, const ws::Token& t) {
  if (rank != 0) {
    violation(Family::kClock,
              "rank " + rank_str(rank) + " accepted a termination token "
              "(only rank 0 closes the circulation)");
  }
  accepted_token_ = t;
}

void Auditor::on_token_regenerated(topo::Rank rank, std::uint32_t generation) {
  (void)generation;
  ++report_.token_regens;
  if (!relaxed_) {
    violation(Family::kClock,
              "rank " + rank_str(rank) +
                  " regenerated the token in a run with no token timeout");
  }
}

void Auditor::on_phase(topo::Rank rank, support::SimTime t, metrics::Phase p) {
  if (!audit_.check_clock) return;
  if (t < last_phase_time_[rank]) {
    violation(Family::kClock,
              "rank " + rank_str(rank) + " phase time went backwards (" +
                  std::to_string(t) + " after " +
                  std::to_string(last_phase_time_[rank]) + ")");
  }
  last_phase_time_[rank] = t;
  if (terminated_ && p == metrics::Phase::kActive) {
    violation(Family::kClock, "rank " + rank_str(rank) +
                                  " turned Active after global termination");
  }
}

void Auditor::on_termination(support::SimTime t) {
  if (terminated_) {
    violation(Family::kClock, "global termination declared twice");
    return;
  }
  terminated_ = true;
  termination_time_ = t;

  if (audit_.check_work) {
    // Token soundness: termination may only be declared with no work in
    // flight and every stack empty. The ledger sees both directly.
    std::int64_t in_flight = 0;
    for (topo::Rank r = 0; r < config_.num_ranks; ++r) {
      in_flight += static_cast<std::int64_t>(sent_[r]) -
                   static_cast<std::int64_t>(recv_[r]);
      if (stack_estimate(r) != 0) {
        violation(Family::kWork,
                  "termination declared while rank " + rank_str(r) +
                      "'s ledger stack holds " +
                      std::to_string(stack_estimate(r)) + " nodes");
      }
    }
    if (in_flight != 0) {
      violation(Family::kWork, "termination declared with " +
                                   std::to_string(in_flight) +
                                   " nodes in flight");
    }
    if (work_responses_sent_ != work_responses_recv_) {
      violation(Family::kWork,
                "termination declared with work messages in flight (" +
                    std::to_string(work_responses_sent_) + " sent, " +
                    std::to_string(work_responses_recv_) + " received)");
    }
  }
  if (audit_.check_clock && config_.num_ranks > 1) {
    // Termination-token soundness: rank 0 may only accept a white token whose
    // accumulated work-message counters balance. The accepted token is
    // authoritative; under regeneration the last token observed en route to
    // rank 0 may be a stale probe rank 0 (correctly) ignored.
    const std::optional<ws::Token>& final_token =
        accepted_token_.has_value() ? accepted_token_ : last_token_to_zero_;
    if (!final_token.has_value()) {
      violation(Family::kClock,
                "termination declared before any token returned to rank 0");
    } else if (final_token->black || final_token->sent != final_token->recv) {
      violation(Family::kClock,
                "termination declared on an unsound token (" +
                    std::string(final_token->black ? "black" : "white") +
                    ", sent " + std::to_string(final_token->sent) +
                    ", recv " + std::to_string(final_token->recv) + ")");
    }
  }
}

void Auditor::on_finish(topo::Rank rank, support::SimTime t) {
  if (!audit_.check_clock) return;
  if (!terminated_) {
    violation(Family::kClock, "rank " + rank_str(rank) +
                                  " finished before global termination");
  } else if (t < termination_time_) {
    violation(Family::kClock,
              "rank " + rank_str(rank) + " finished at " + std::to_string(t) +
                  ", before termination at " +
                  std::to_string(termination_time_));
  }
  if (finished_[rank]) {
    violation(Family::kClock, "rank " + rank_str(rank) + " finished twice");
  }
  finished_[rank] = 1;
}

void Auditor::finalize(const ws::RunResult& result) {
  DWS_CHECK(!finalized_);
  finalized_ = true;

  if (audit_.check_clock) {
    if (!terminated_) {
      violation(Family::kClock, "run completed without declaring termination");
    }
    for (topo::Rank r = 0; r < config_.num_ranks; ++r) {
      if (!finished_[r]) {
        violation(Family::kClock, "rank " + rank_str(r) + " never finished");
      }
    }
    if (terminated_ && result.runtime != termination_time_) {
      violation(Family::kClock,
                "result runtime " + std::to_string(result.runtime) +
                    " != observed termination time " +
                    std::to_string(termination_time_));
    }
  }

  if (audit_.check_work) {
    std::uint64_t total_expanded = 0;
    std::uint64_t total_created = 0;
    for (topo::Rank r = 0; r < config_.num_ranks; ++r) {
      total_expanded += expanded_[r];
      total_created += created_[r];
      if (r < result.per_rank.size() &&
          expanded_[r] != result.per_rank[r].nodes_processed) {
        violation(Family::kWork,
                  "rank " + rank_str(r) + " ledger expanded " +
                      std::to_string(expanded_[r]) + " nodes but reported " +
                      std::to_string(result.per_rank[r].nodes_processed));
      }
    }
    if (total_expanded != result.nodes) {
      violation(Family::kWork, "ledger expanded " +
                                   std::to_string(total_expanded) +
                                   " nodes, result claims " +
                                   std::to_string(result.nodes));
    }
    if (total_created != total_expanded) {
      violation(Family::kWork,
                std::to_string(total_created) + " nodes created but " +
                    std::to_string(total_expanded) +
                    " expanded — work lost or duplicated");
    }
    if (leaves_ != result.leaves) {
      violation(Family::kWork, "ledger saw " + std::to_string(leaves_) +
                                   " leaves, result claims " +
                                   std::to_string(result.leaves));
    }
    if (report_.nodes_expanded <= audit_.max_tracked_nodes &&
        fingerprints_.size() + fingerprint_dups_ != report_.nodes_expanded) {
      violation(Family::kWork,
                "fingerprint set holds " +
                    std::to_string(fingerprints_.size()) + " of " +
                    std::to_string(report_.nodes_expanded) +
                    " expanded nodes");
    }
    if (audit_.expected_nodes && result.nodes != *audit_.expected_nodes) {
      violation(Family::kWork,
                "result nodes " + std::to_string(result.nodes) +
                    " != sequential oracle " +
                    std::to_string(*audit_.expected_nodes));
    }
    if (audit_.expected_leaves && result.leaves != *audit_.expected_leaves) {
      violation(Family::kWork,
                "result leaves " + std::to_string(result.leaves) +
                    " != sequential oracle " +
                    std::to_string(*audit_.expected_leaves));
    }
    if (chunks_sent_ != result.stats.chunks_sent) {
      violation(Family::kWork,
                "ledger counted " + std::to_string(chunks_sent_) +
                    " chunks sent, result claims " +
                    std::to_string(result.stats.chunks_sent));
    }
    if (chunks_sent_ != chunks_recv_) {
      violation(Family::kWork, std::to_string(chunks_sent_) +
                                   " chunks sent but " +
                                   std::to_string(chunks_recv_) +
                                   " received");
    }
  }

  if (audit_.check_messages) {
    if (report_.responses_received > report_.responses_sent) {
      violation(Family::kMessages,
                "more responses received (" +
                    std::to_string(report_.responses_received) +
                    ") than sent (" + std::to_string(report_.responses_sent) +
                    ")");
    }
    if (report_.responses_sent > report_.requests) {
      violation(Family::kMessages,
                "more responses sent (" +
                    std::to_string(report_.responses_sent) +
                    ") than requests (" + std::to_string(report_.requests) +
                    ")");
    }
    // Every network send has a ledger entry; Terminate fan-out is the one
    // message class without its own hook (it follows on_termination
    // mechanically: N-1 messages of token_bytes each from rank 0).
    const std::uint64_t terminates =
        (terminated_ && config_.num_ranks > 1) ? config_.num_ranks - 1 : 0;
    // Fault accounting: a dropped message was still *sent* — both the ledger
    // and sim::NetworkStats count it at the send side, so drops need no
    // correction. A duplicated message is counted once by the ledger (one
    // hook) but twice by the network (two deliveries enqueued): add the
    // injector's duplicate counts back.
    const std::uint64_t expected_messages =
        report_.requests + report_.responses_sent + report_.tokens +
        report_.lifeline_registers + report_.lifeline_pushes + terminates +
        result.faults.duplicated_messages;
    if (expected_messages != result.network.messages) {
      violation(Family::kMessages,
                "ledger counted " + std::to_string(expected_messages) +
                    " messages, network stats claim " +
                    std::to_string(result.network.messages));
    }
    const std::uint64_t expected_bytes = bytes_sent_ +
                                         terminates * config_.ws.token_bytes +
                                         result.faults.duplicated_bytes;
    if (expected_bytes != result.network.bytes) {
      violation(Family::kMessages,
                "ledger counted " + std::to_string(expected_bytes) +
                    " bytes, network stats claim " +
                    std::to_string(result.network.bytes));
    }
  }

  if (audit_.check_distribution) check_distributions();
}

void Auditor::check_distributions() {
  if (config_.num_ranks < 2) return;
  topo::JobLayout layout(config_.machine, config_.num_ranks,
                         config_.placement, config_.procs_per_node,
                         config_.origin_cube);
  topo::LatencyModel latency(layout, config_.latency);

  // Audit two vantage points: rank 0 (the origin corner) and a mid-job rank
  // (generic interior position). Distribution shape depends on the thief's
  // position, so corner-only sampling could miss a broken branch.
  const topo::Rank probes[2] = {0, config_.num_ranks / 2};
  for (topo::Rank self : probes) {
    if (self >= config_.num_ranks) continue;
    const std::vector<double> expected =
        expected_distribution(config_.ws, self, config_.num_ranks, latency);
    auto selector = ws::make_selector(config_.ws, self, latency);
    const DistributionCheck check = check_selector_distribution(
        *selector, expected, self, audit_.distribution_samples,
        audit_.distribution_min_p);
    if (!check.ok) {
      violation(Family::kDistribution,
                "selector for rank " + rank_str(self) +
                    " fails its distribution test: " + check.detail);
    }
    if (self == config_.num_ranks / 2) break;  // probes coincide for N <= 2
  }
}

AuditedResult audited_run(const ws::RunConfig& config, AuditConfig audit,
                          std::uint64_t oracle_node_limit) {
  if (audit.check_work && !audit.expected_nodes) {
    const uts::TreeStats oracle =
        uts::enumerate_sequential(config.tree, oracle_node_limit);
    if (!oracle.truncated) {
      audit.expected_nodes = oracle.nodes;
      audit.expected_leaves = oracle.leaves;
    }
  }
  Auditor auditor(config, audit);
  AuditedResult out;
  out.result = config.backend == ws::Backend::kRt
                   ? rt::run_native(config, &auditor)
                   : ws::run_simulation(config, &auditor);
  auditor.finalize(out.result);
  out.report = auditor.report();
  return out;
}

ws::RunResult checked_run(const ws::RunConfig& config) {
  // Service runs carry their own always-on conservation audit plus the
  // per-job sequential oracle; the observer-based Auditor is a single-job
  // instrument (one tree, one termination wave) and does not apply.
  if (config.svc.enabled) return svc::checked_service_run(config);
  AuditedResult audited = audited_run(config);
  if (!audited.report.ok()) {
    throw std::runtime_error(audited.report.summary());
  }
  return std::move(audited.result);
}

}  // namespace dws::audit
