#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/latency.hpp"
#include "ws/config.hpp"
#include "ws/victim.hpp"

namespace dws::audit {

/// Verdict of one chi-square goodness-of-fit screen.
struct DistributionCheck {
  double chi2 = 0.0;
  double dof = 0.0;
  double p_value = 1.0;
  std::uint64_t samples = 0;
  bool ok = true;
  std::string detail;  ///< human-readable failure description when !ok
};

/// Analytic long-run victim distribution of `config.victim_policy` for thief
/// `self`: element j is the probability of drawing rank j (0 for self).
///
///  * kRoundRobin / kRandom: uniform 1/(N-1) over the other ranks;
///  * kTofuSkewed: TofuSkewedSelector::probability (w = 1/e normalised);
///  * kHierarchical: local_tries/(local_tries+1) spread uniformly over the
///    local set, the rest uniformly over the strict complement (degenerate
///    empty sets collapse onto the other level).
std::vector<double> expected_distribution(const ws::WsConfig& config,
                                          topo::Rank self,
                                          topo::Rank num_ranks,
                                          const topo::LatencyModel& latency);

/// Draw `samples` victims from `selector` and chi-square the histogram
/// against `expected` (same convention as expected_distribution). Bins with
/// expected count < 5 are pooled, the classic validity rule. ok iff the
/// p-value is at least `min_p` and no victim outside the distribution's
/// support (expected 0, e.g. self) was drawn.
DistributionCheck check_selector_distribution(ws::VictimSelector& selector,
                                              const std::vector<double>& expected,
                                              topo::Rank self,
                                              std::uint64_t samples,
                                              double min_p = 1e-6);

/// The Tofu selector's two sampling backends (Walker alias table vs
/// rejection) must agree: identical probability() vectors and a rejection-
/// backend histogram that fits the alias-backend analytic distribution.
DistributionCheck check_tofu_backends_agree(const ws::WsConfig& config,
                                            topo::Rank self,
                                            const topo::LatencyModel& latency,
                                            std::uint64_t samples,
                                            double min_p = 1e-6);

}  // namespace dws::audit
