#pragma once

#include <cstdint>
#include <vector>

#include "support/sim_time.hpp"

namespace dws::metrics {

/// Activity state of a process. "Active" is the paper's definition (§III):
/// the process's stack contains work — node generation *and* the MPI
/// housekeeping done in between (answering steal requests) all count as
/// active; a process is idle exactly when it has no local work.
enum class Phase : std::uint8_t {
  kIdle = 0,
  kActive = 1,
};

/// Transition record: at `time`, the process entered `phase`.
struct PhaseEvent {
  support::SimTime time;
  Phase phase;

  friend bool operator==(const PhaseEvent&, const PhaseEvent&) = default;
};

/// Lightweight per-process activity trace — the paper's instrument: "a trace
/// of all processes indicating the time of each transition from one type of
/// phase to the other". Records only transitions (consecutive duplicates are
/// collapsed), so its size is proportional to the number of work-discovery
/// sessions, not to runtime.
class RankTrace {
 public:
  explicit RankTrace(Phase initial = Phase::kIdle, support::SimTime start = 0);

  /// Record that the process is in `phase` from time `t` on. Out-of-order
  /// times are rejected; re-recording the current phase is a no-op.
  void record(support::SimTime t, Phase phase);

  Phase phase_at_end() const noexcept;
  const std::vector<PhaseEvent>& events() const noexcept { return events_; }

  /// Total time spent active in [0, end].
  support::SimTime active_time(support::SimTime end) const;

  /// Shift every timestamp by `offset` (clock-skew correction; the paper
  /// adjusted K Computer traces the same way). Corrected times may dip
  /// slightly below zero; downstream analysis operates on signed times.
  void shift(support::SimTime offset);

 private:
  std::vector<PhaseEvent> events_;
};

/// Whole-job trace: one RankTrace per rank plus the total execution time T
/// that the latency metrics are expressed against.
struct JobTrace {
  support::SimTime total_time = 0;
  std::vector<RankTrace> ranks;

  std::uint32_t num_ranks() const noexcept {
    return static_cast<std::uint32_t>(ranks.size());
  }
};

/// Clock-skew correction: align per-rank traces given each rank's clock
/// offset (trace timestamps are local clocks; offset[r] is added to rank r's
/// events). The simulator's clock is global so offsets are zero there, but
/// the correction is exercised by tests with synthetic skew, mirroring the
/// paper's methodology on real traces.
void align_traces(JobTrace& trace, const std::vector<support::SimTime>& offsets);

}  // namespace dws::metrics
