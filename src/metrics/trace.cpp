#include "metrics/trace.hpp"

#include "support/check.hpp"

namespace dws::metrics {

RankTrace::RankTrace(Phase initial, support::SimTime start) {
  events_.push_back(PhaseEvent{start, initial});
}

void RankTrace::record(support::SimTime t, Phase phase) {
  DWS_CHECK(!events_.empty());
  DWS_CHECK(t >= events_.back().time);
  if (events_.back().phase == phase) return;
  events_.push_back(PhaseEvent{t, phase});
}

Phase RankTrace::phase_at_end() const noexcept { return events_.back().phase; }

support::SimTime RankTrace::active_time(support::SimTime end) const {
  support::SimTime total = 0;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (events_[i].phase != Phase::kActive) continue;
    const support::SimTime from = events_[i].time;
    const support::SimTime to =
        i + 1 < events_.size() ? events_[i + 1].time : end;
    if (to > from) total += to - from;
  }
  return total;
}

void RankTrace::shift(support::SimTime offset) {
  // Skew correction may push an initial timestamp slightly below zero; the
  // occupancy analysis is defined on signed times, so that is fine.
  for (auto& e : events_) e.time += offset;
}

void align_traces(JobTrace& trace, const std::vector<support::SimTime>& offsets) {
  DWS_CHECK(offsets.size() == trace.ranks.size());
  for (std::size_t r = 0; r < trace.ranks.size(); ++r) {
    trace.ranks[r].shift(offsets[r]);
  }
}

}  // namespace dws::metrics
