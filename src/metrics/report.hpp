#pragma once

#include <string>
#include <vector>

#include "metrics/imbalance.hpp"
#include "metrics/rank_stats.hpp"
#include "metrics/trace.hpp"
#include "support/sim_time.hpp"

namespace dws::metrics {

/// Everything needed to render a human-readable run summary, decoupled from
/// the scheduler types so both the UTS (`ws::RunResult`) and DAG
/// (`dag::DagRunResult`) runs can feed it.
struct ReportInput {
  std::string title;
  std::uint32_t num_ranks = 0;
  support::SimTime runtime = 0;
  support::SimTime sequential_time = 0;
  std::vector<RankStats> per_rank;
  const JobTrace* trace = nullptr;  ///< optional; enables the occupancy block
};

/// Multi-section plain-text report: timing/speedup, steal statistics,
/// work-discovery sessions, load imbalance, and (when a trace is present)
/// the occupancy summary with SL/EL at standard levels. Used by the examples
/// and handy for quick copies into lab notes.
std::string render_report(const ReportInput& input);

}  // namespace dws::metrics
