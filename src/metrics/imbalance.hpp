#pragma once

#include <cstdint>
#include <vector>

namespace dws::metrics {

/// Distribution statistics over per-rank work (nodes or tasks processed) —
/// the outcome a load balancer is judged on. Complements the time-domain
/// occupancy metrics: occupancy says *when* ranks worked, imbalance says
/// *how much* each ended up doing.
struct Imbalance {
  double mean = 0.0;
  double max = 0.0;
  /// max/mean: 1.0 is perfect balance; the classic "imbalance factor".
  double imbalance_factor = 0.0;
  /// Coefficient of variation (stddev/mean).
  double cov = 0.0;
  /// Gini coefficient in [0, 1): 0 = everyone did the same amount,
  /// -> 1 = one rank did everything.
  double gini = 0.0;
  /// Fraction of ranks that processed nothing at all (starvation).
  double starved_fraction = 0.0;
};

/// Compute from per-rank work counts (at least one rank required).
Imbalance compute_imbalance(const std::vector<std::uint64_t>& per_rank_work);

}  // namespace dws::metrics
