#include "metrics/report.hpp"

#include <cstdarg>
#include <cstdio>

#include "metrics/occupancy.hpp"
#include "support/check.hpp"
#include "support/table.hpp"

namespace dws::metrics {

namespace {

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void line(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
  out += '\n';
}

}  // namespace

std::string render_report(const ReportInput& input) {
  DWS_CHECK(!input.per_rank.empty());
  DWS_CHECK(input.num_ranks == input.per_rank.size());
  const JobStats job = aggregate(input.per_rank);

  std::string out;
  line(out, "=== %s ===", input.title.c_str());

  const double speedup =
      input.runtime > 0 ? static_cast<double>(input.sequential_time) /
                              static_cast<double>(input.runtime)
                        : 0.0;
  line(out, "ranks          : %u", input.num_ranks);
  line(out, "runtime        : %.3f ms (T1 = %.3f ms)",
       support::to_millis(input.runtime),
       support::to_millis(input.sequential_time));
  line(out, "speedup        : %.2f (efficiency %.1f%%)", speedup,
       100.0 * speedup / input.num_ranks);
  line(out, "work items     : %llu",
       static_cast<unsigned long long>(job.nodes_processed));

  line(out, "--- stealing");
  line(out, "attempts       : %llu (%llu ok, %llu failed)",
       static_cast<unsigned long long>(job.steal_attempts),
       static_cast<unsigned long long>(job.successful_steals),
       static_cast<unsigned long long>(job.failed_steals));
  line(out, "chunks moved   : %llu",
       static_cast<unsigned long long>(job.chunks_sent));
  line(out, "mean distance  : %.2f (successful steals)",
       job.mean_steal_distance);
  line(out, "sessions       : %llu, avg %.3f ms",
       static_cast<unsigned long long>(job.sessions), job.mean_session_ms);
  line(out, "search time    : avg %.3f ms/rank, max %.3f ms",
       job.mean_search_time_s * 1e3, job.max_search_time_s * 1e3);

  std::vector<std::uint64_t> work;
  work.reserve(input.per_rank.size());
  for (const auto& r : input.per_rank) work.push_back(r.nodes_processed);
  const Imbalance im = compute_imbalance(work);
  line(out, "--- load imbalance");
  line(out, "max/mean       : %.2f   cov: %.2f   gini: %.3f   starved: %.1f%%",
       im.imbalance_factor, im.cov, im.gini, 100.0 * im.starved_fraction);

  if (input.trace != nullptr && input.trace->num_ranks() > 0) {
    const OccupancyCurve occ(*input.trace);
    line(out, "--- occupancy");
    line(out, "peak           : %.1f%% (%u ranks)   mean: %.1f%%",
         100.0 * occ.max_occupancy(), occ.max_workers(),
         100.0 * occ.mean_occupancy());
    for (const double x : {0.5, 0.9}) {
      const auto sl = occ.starting_latency(x);
      const auto el = occ.ending_latency(x);
      if (sl && el) {
        line(out, "SL/EL(%2.0f%%)     : %.1f%% / %.1f%% of runtime", x * 100.0,
             *sl * 100.0, *el * 100.0);
      } else {
        line(out, "SL/EL(%2.0f%%)     : never reached", x * 100.0);
      }
    }
  }
  return out;
}

}  // namespace dws::metrics
