#include "metrics/export.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "metrics/occupancy.hpp"
#include "support/check.hpp"

namespace dws::metrics {

namespace {

const char* phase_name(Phase p) {
  return p == Phase::kActive ? "active" : "idle";
}

Phase parse_phase(const std::string& s) {
  if (s == "active") return Phase::kActive;
  DWS_CHECK(s == "idle");
  return Phase::kIdle;
}

}  // namespace

void write_trace_csv(std::ostream& out, const JobTrace& trace) {
  out << "# total_time_ns," << trace.total_time << "\n";
  out << "rank,time_ns,phase\n";
  for (std::size_t r = 0; r < trace.ranks.size(); ++r) {
    for (const auto& ev : trace.ranks[r].events()) {
      out << r << ',' << ev.time << ',' << phase_name(ev.phase) << "\n";
    }
  }
}

std::string trace_to_csv(const JobTrace& trace) {
  std::ostringstream out;
  write_trace_csv(out, trace);
  return out.str();
}

JobTrace read_trace_csv(std::istream& in) {
  JobTrace trace;
  std::string line;

  DWS_CHECK(static_cast<bool>(std::getline(in, line)));
  DWS_CHECK(line.rfind("# total_time_ns,", 0) == 0);
  trace.total_time = std::stoll(line.substr(line.find(',') + 1));

  DWS_CHECK(static_cast<bool>(std::getline(in, line)));
  DWS_CHECK(line == "rank,time_ns,phase");

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto c1 = line.find(',');
    const auto c2 = line.find(',', c1 + 1);
    DWS_CHECK(c1 != std::string::npos && c2 != std::string::npos);
    const auto rank = static_cast<std::size_t>(std::stoull(line.substr(0, c1)));
    const support::SimTime time = std::stoll(line.substr(c1 + 1, c2 - c1 - 1));
    const Phase phase = parse_phase(line.substr(c2 + 1));

    DWS_CHECK(rank <= trace.ranks.size());  // ranks arrive in order
    if (rank == trace.ranks.size()) {
      trace.ranks.emplace_back(phase, time);
    } else {
      trace.ranks[rank].record(time, phase);
    }
  }
  return trace;
}

JobTrace trace_from_csv(const std::string& csv) {
  std::istringstream in(csv);
  return read_trace_csv(in);
}

void write_occupancy_csv(std::ostream& out, const JobTrace& trace) {
  const OccupancyCurve curve(trace);
  out << "time_ns,active_workers\n";
  out << "0," << curve.workers_at(0) << "\n";
  for (const auto& [time, workers] : curve.steps()) {
    out << time << ',' << workers << "\n";
  }
}

}  // namespace dws::metrics
