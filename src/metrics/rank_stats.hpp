#pragma once

#include <cstdint>
#include <vector>

#include "support/sim_time.hpp"

namespace dws::metrics {

/// Per-rank scheduler counters, filled by the work-stealing worker. Mirrors
/// the statistics the UTS benchmark reports (plus a few of our own):
/// search time, failed steals, work-discovery sessions (§V-A of the paper).
struct RankStats {
  std::uint64_t nodes_processed = 0;
  std::uint64_t leaves_seen = 0;

  std::uint64_t steal_attempts = 0;     ///< requests sent (retries included)
  std::uint64_t failed_steals = 0;      ///< responses carrying no work
  std::uint64_t successful_steals = 0;  ///< responses carrying work
  std::uint64_t requests_served = 0;    ///< requests answered (either way)
  std::uint64_t chunks_sent = 0;
  std::uint64_t chunks_received = 0;

  /// Steal-protocol robustness counters (WsConfig::steal_timeout /
  /// token_timeout; DESIGN.md §10).
  std::uint64_t steal_timeouts = 0;       ///< requests abandoned by the timer
  std::uint64_t steal_retries = 0;        ///< same-victim re-sends
  std::uint64_t duplicate_responses = 0;  ///< network-duplicated answers dropped
  std::uint64_t token_regens = 0;         ///< rank 0: probes given up on

  /// Adaptive steal amount (WsConfig::adaptive_steal_amount): times this
  /// thief's half<->one preference flipped on the yield EWMA.
  std::uint64_t amount_switches = 0;

  /// Sum over *successful* steals of the 6D Euclidean distance to the
  /// victim — mean distance is direct evidence of where a victim-selection
  /// policy actually sends its traffic (near for Tofu, uniform for Rand).
  double steal_distance_sum = 0.0;

  /// Lifeline extension (IdlePolicy::kLifeline): times this rank went
  /// dormant on its lifelines / times it pushed work to a dependent.
  std::uint64_t lifeline_registrations = 0;
  std::uint64_t lifeline_pushes = 0;

  /// Work-discovery sessions: from work exhaustion until either work is in
  /// the queue again or the application terminates (paper §IV-B).
  std::uint64_t sessions = 0;
  support::SimTime total_session_time = 0;

  /// Time spent waiting for steal answers (UTS's "search time", Fig. 14).
  support::SimTime total_search_time = 0;

  /// DAG workloads only (src/dag): virtual time spent gathering input data
  /// from remote predecessors, and how many inputs were remote — the
  /// bandwidth-sensitivity the paper's §VII predicts for dependent tasks.
  support::SimTime total_gather_time = 0;
  std::uint64_t remote_inputs = 0;

  support::SimTime finish_time = 0;  ///< when this rank learnt of termination
};

/// Job-wide aggregation of per-rank counters.
struct JobStats {
  std::uint64_t nodes_processed = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t failed_steals = 0;
  std::uint64_t successful_steals = 0;
  std::uint64_t chunks_sent = 0;
  std::uint64_t steal_timeouts = 0;
  std::uint64_t steal_retries = 0;
  std::uint64_t duplicate_responses = 0;
  std::uint64_t token_regens = 0;
  std::uint64_t amount_switches = 0;
  std::uint64_t sessions = 0;
  double mean_session_ms = 0.0;       ///< avg duration of a discovery session
  double mean_search_time_s = 0.0;    ///< avg per-rank total search time
  double max_search_time_s = 0.0;
  double mean_steal_distance = 0.0;   ///< avg victim distance of ok steals
};

JobStats aggregate(const std::vector<RankStats>& per_rank);

}  // namespace dws::metrics
