#pragma once

#include <iosfwd>
#include <string>

#include "metrics/trace.hpp"

namespace dws::metrics {

/// Serialise a JobTrace as CSV for external plotting (gnuplot, pandas...):
///
///   # total_time_ns,<T>
///   rank,time_ns,phase
///   0,0,active
///   0,12345,idle
///   ...
///
/// The paper's figures 4/5/12/13 were produced from exactly this kind of
/// per-rank transition dump.
void write_trace_csv(std::ostream& out, const JobTrace& trace);
std::string trace_to_csv(const JobTrace& trace);

/// Parse a CSV produced by write_trace_csv. Aborts (DWS_CHECK) on malformed
/// input — the format is machine-generated, not user-facing.
JobTrace read_trace_csv(std::istream& in);
JobTrace trace_from_csv(const std::string& csv);

/// Serialise the occupancy *step function* (time, active workers) — smaller
/// than the raw trace and directly plottable as the occupancy curve.
void write_occupancy_csv(std::ostream& out, const JobTrace& trace);

}  // namespace dws::metrics
