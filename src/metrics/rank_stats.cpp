#include "metrics/rank_stats.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dws::metrics {

JobStats aggregate(const std::vector<RankStats>& per_rank) {
  DWS_CHECK(!per_rank.empty());
  JobStats job;
  support::SimTime session_time = 0;
  double search_total = 0.0;
  double distance_total = 0.0;
  for (const auto& r : per_rank) {
    job.nodes_processed += r.nodes_processed;
    job.steal_attempts += r.steal_attempts;
    job.failed_steals += r.failed_steals;
    job.successful_steals += r.successful_steals;
    job.chunks_sent += r.chunks_sent;
    job.steal_timeouts += r.steal_timeouts;
    job.steal_retries += r.steal_retries;
    job.duplicate_responses += r.duplicate_responses;
    job.token_regens += r.token_regens;
    job.amount_switches += r.amount_switches;
    job.sessions += r.sessions;
    distance_total += r.steal_distance_sum;
    session_time += r.total_session_time;
    const double search_s = support::to_seconds(r.total_search_time);
    search_total += search_s;
    job.max_search_time_s = std::max(job.max_search_time_s, search_s);
  }
  job.mean_session_ms =
      job.sessions > 0
          ? support::to_millis(session_time) / static_cast<double>(job.sessions)
          : 0.0;
  job.mean_search_time_s = search_total / static_cast<double>(per_rank.size());
  job.mean_steal_distance =
      job.successful_steals > 0
          ? distance_total / static_cast<double>(job.successful_steals)
          : 0.0;
  return job;
}

}  // namespace dws::metrics
