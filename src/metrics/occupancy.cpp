#include "metrics/occupancy.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace dws::metrics {

OccupancyCurve::OccupancyCurve(const JobTrace& trace)
    : num_ranks_(trace.num_ranks()), total_time_(trace.total_time) {
  DWS_CHECK(num_ranks_ > 0);
  DWS_CHECK(total_time_ >= 0);

  // Merge all transitions into (time, delta) pairs, then prefix-sum.
  std::vector<std::pair<support::SimTime, std::int32_t>> deltas;
  for (const auto& rank : trace.ranks) {
    const auto& evs = rank.events();
    for (std::size_t i = 0; i < evs.size(); ++i) {
      const bool was_active = i > 0 && evs[i - 1].phase == Phase::kActive;
      const bool is_active = evs[i].phase == Phase::kActive;
      if (is_active && !was_active) deltas.emplace_back(evs[i].time, +1);
      if (!is_active && was_active) deltas.emplace_back(evs[i].time, -1);
    }
  }
  std::sort(deltas.begin(), deltas.end());

  std::int32_t count = 0;
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    count += deltas[i].second;
    DWS_CHECK(count >= 0);
    DWS_CHECK(count <= static_cast<std::int32_t>(num_ranks_));
    // Collapse simultaneous transitions into one step point.
    if (i + 1 < deltas.size() && deltas[i + 1].first == deltas[i].first) continue;
    steps_.emplace_back(deltas[i].first, static_cast<std::uint32_t>(count));
    max_workers_ = std::max(max_workers_, static_cast<std::uint32_t>(count));
  }
}

std::uint32_t OccupancyCurve::workers_at(support::SimTime t) const {
  // Last step at or before t.
  auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](support::SimTime v, const auto& s) { return v < s.first; });
  if (it == steps_.begin()) return 0;
  return std::prev(it)->second;
}

std::uint32_t OccupancyCurve::threshold_count(double x) const {
  DWS_CHECK(x >= 0.0 && x <= 1.0);
  // O(t) >= x  <=>  workers >= ceil(x * N) (and at least 1 for x > 0).
  const auto needed =
      static_cast<std::uint32_t>(std::ceil(x * static_cast<double>(num_ranks_)));
  return std::max<std::uint32_t>(needed, x > 0.0 ? 1 : 0);
}

std::optional<double> OccupancyCurve::starting_latency(double x) const {
  const std::uint32_t needed = threshold_count(x);
  if (needed == 0) return 0.0;
  for (const auto& [t, workers] : steps_) {
    if (workers >= needed) {
      return total_time_ > 0
                 ? static_cast<double>(t) / static_cast<double>(total_time_)
                 : 0.0;
    }
  }
  return std::nullopt;
}

std::optional<double> OccupancyCurve::ending_latency(double x) const {
  const std::uint32_t needed = threshold_count(x);
  if (needed == 0) return 0.0;
  // Find the end of the last interval during which workers >= needed. The
  // interval [steps_[i].time, steps_[i+1].time) has steps_[i].second workers;
  // "the last time O(t) = x held" is that interval's end.
  for (std::size_t i = steps_.size(); i-- > 0;) {
    if (steps_[i].second >= needed) {
      const support::SimTime until =
          i + 1 < steps_.size() ? steps_[i + 1].first : total_time_;
      return total_time_ > 0 ? static_cast<double>(total_time_ - until) /
                                   static_cast<double>(total_time_)
                             : 0.0;
    }
  }
  return std::nullopt;
}

double OccupancyCurve::mean_occupancy() const {
  if (total_time_ == 0 || steps_.empty()) return 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const support::SimTime from = steps_[i].first;
    const support::SimTime to =
        i + 1 < steps_.size() ? steps_[i + 1].first : total_time_;
    if (to > from) {
      weighted += static_cast<double>(steps_[i].second) *
                  static_cast<double>(to - from);
    }
  }
  return weighted / (static_cast<double>(total_time_) * num_ranks_);
}

}  // namespace dws::metrics
