#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/sim_time.hpp"

namespace dws::metrics {

/// Everything one service-layer job reports back (DESIGN.md §13). Times are
/// virtual ns on the run's global clock. The derived accessors are the
/// tail-latency vocabulary of the service benches: queue wait (arrival →
/// admission), scheduling latency (arrival → first node expanded) and
/// makespan (arrival → job termination).
struct JobOutcome {
  std::uint32_t job_id = 0;
  std::string tree;               ///< uts tree name this job ran
  std::uint64_t root_seed = 0;    ///< per-job root seed (hash(svc.seed, id))
  std::uint32_t base = 0;         ///< first global rank of the job's block
  std::uint32_t width = 0;        ///< ranks in the block (time-share: all)

  support::SimTime arrival = 0;
  support::SimTime admit = 0;          ///< controller granted ranks
  support::SimTime first_compute = 0;  ///< first node expansion
  support::SimTime finish = 0;         ///< per-job Mattern termination

  std::uint64_t nodes = 0;
  std::uint64_t leaves = 0;
  std::uint64_t chunks_sent = 0;      ///< summed over the job's bindings
  std::uint64_t chunks_received = 0;  ///< must equal chunks_sent (audit)
  std::uint64_t steal_attempts = 0;
  std::uint64_t successful_steals = 0;

  support::SimTime queue_wait() const noexcept { return admit - arrival; }
  support::SimTime sched_latency() const noexcept {
    return first_compute - arrival;
  }
  support::SimTime makespan() const noexcept { return finish - arrival; }
};

/// Order statistics of one sample set (nearest-rank percentiles, so every
/// reported value is an actual sample — no interpolation noise in records).
struct TailStats {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

TailStats tail_stats(std::vector<double> samples);

/// The run-level service summary: tails over the per-job timing samples.
struct ServiceTails {
  TailStats makespan;      ///< ms
  TailStats queue_wait;    ///< ms
  TailStats sched_latency; ///< ms
};

ServiceTails service_tails(const std::vector<JobOutcome>& jobs);

}  // namespace dws::metrics
