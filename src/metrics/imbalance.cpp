#include "metrics/imbalance.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace dws::metrics {

Imbalance compute_imbalance(const std::vector<std::uint64_t>& per_rank_work) {
  DWS_CHECK(!per_rank_work.empty());
  const double n = static_cast<double>(per_rank_work.size());

  Imbalance out;
  double sum = 0.0;
  double sum_sq = 0.0;
  std::uint64_t starved = 0;
  for (const auto w : per_rank_work) {
    const double x = static_cast<double>(w);
    sum += x;
    sum_sq += x * x;
    out.max = std::max(out.max, x);
    if (w == 0) ++starved;
  }
  out.mean = sum / n;
  out.starved_fraction = static_cast<double>(starved) / n;
  if (sum == 0.0) return out;  // nobody worked: everything else is 0

  out.imbalance_factor = out.max / out.mean;
  const double variance = std::max(0.0, sum_sq / n - out.mean * out.mean);
  out.cov = std::sqrt(variance) / out.mean;

  // Gini via the sorted-rank formula:
  //   G = (2 * sum_i i*x_(i) / (n * sum x)) - (n + 1)/n,  i = 1..n ascending.
  std::vector<std::uint64_t> sorted = per_rank_work;
  std::sort(sorted.begin(), sorted.end());
  double weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += static_cast<double>(i + 1) * static_cast<double>(sorted[i]);
  }
  out.gini = 2.0 * weighted / (n * sum) - (n + 1.0) / n;
  out.gini = std::max(0.0, out.gini);
  return out;
}

}  // namespace dws::metrics
