#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "metrics/trace.hpp"

namespace dws::metrics {

/// The paper's load-balancing-efficiency metric (§III), computed post-mortem
/// from a JobTrace:
///
///  - workers(t): number of processes in an active phase at time t,
///  - W_max: max workers over the run,
///  - O(t) = workers(t) / N,
///  - starting latency SL(x) = min{t : O(t) >= x} / T,
///  - ending latency  EL(x) = (T - max{t : O(t) >= x}) / T.
///
/// SL(x) asks "how far into the run did occupancy x first appear"; EL(x)
/// asks "how far before the end was it last held". Both are fractions of T.
class OccupancyCurve {
 public:
  explicit OccupancyCurve(const JobTrace& trace);

  std::uint32_t num_ranks() const noexcept { return num_ranks_; }
  support::SimTime total_time() const noexcept { return total_time_; }

  /// Number of active workers at time t (step function, right-continuous).
  std::uint32_t workers_at(support::SimTime t) const;
  std::uint32_t max_workers() const noexcept { return max_workers_; }
  double max_occupancy() const noexcept {
    return static_cast<double>(max_workers_) / num_ranks_;
  }

  /// SL(x) for occupancy fraction x in [0, 1]; nullopt if x was never
  /// reached. Returned as a fraction of total time.
  std::optional<double> starting_latency(double x) const;

  /// EL(x); nullopt if x was never reached.
  std::optional<double> ending_latency(double x) const;

  /// Time-average of O(t) over the run — a single-number summary used by the
  /// bench harness next to the per-x latencies.
  double mean_occupancy() const;

  /// The underlying step points (time, workers-after), for plotting.
  const std::vector<std::pair<support::SimTime, std::uint32_t>>& steps() const {
    return steps_;
  }

 private:
  std::uint32_t threshold_count(double x) const;

  std::uint32_t num_ranks_ = 0;
  support::SimTime total_time_ = 0;
  std::uint32_t max_workers_ = 0;
  std::vector<std::pair<support::SimTime, std::uint32_t>> steps_;
};

}  // namespace dws::metrics
