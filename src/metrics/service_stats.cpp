#include "metrics/service_stats.hpp"

#include <algorithm>
#include <cmath>

namespace dws::metrics {

TailStats tail_stats(std::vector<double> samples) {
  TailStats t;
  t.count = samples.size();
  if (samples.empty()) return t;
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (const double v : samples) sum += v;
  t.mean = sum / static_cast<double>(samples.size());
  // Nearest-rank: the p-th percentile is sample ceil(p/100 * n), 1-indexed.
  const auto rank = [&](double p) {
    const auto n = static_cast<double>(samples.size());
    auto idx = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    if (idx > 0) --idx;
    return samples[std::min(idx, samples.size() - 1)];
  };
  t.p50 = rank(50.0);
  t.p99 = rank(99.0);
  t.max = samples.back();
  return t;
}

namespace {
constexpr double kNsPerMs = 1e6;
}

ServiceTails service_tails(const std::vector<JobOutcome>& jobs) {
  std::vector<double> makespan, wait, sched;
  makespan.reserve(jobs.size());
  wait.reserve(jobs.size());
  sched.reserve(jobs.size());
  for (const JobOutcome& j : jobs) {
    makespan.push_back(static_cast<double>(j.makespan()) / kNsPerMs);
    wait.push_back(static_cast<double>(j.queue_wait()) / kNsPerMs);
    sched.push_back(static_cast<double>(j.sched_latency()) / kNsPerMs);
  }
  ServiceTails tails;
  tails.makespan = tail_stats(std::move(makespan));
  tails.queue_wait = tail_stats(std::move(wait));
  tails.sched_latency = tail_stats(std::move(sched));
  return tails;
}

}  // namespace dws::metrics
