#pragma once

#include <cstdint>
#include <vector>

#include "topo/tofu.hpp"

namespace dws::topo {

/// How MPI ranks are mapped onto the compute nodes of a job — the three
/// process allocations compared throughout the paper (Fig. 2, 3, 9, 14, 15):
enum class Placement {
  kOnePerNode,  ///< "1/N": one rank per node, rank i on node i.
  kRoundRobin,  ///< "8RR": P ranks per node, ranks i, i+n, i+2n... share a node.
  kGrouped,     ///< "8G": P ranks per node, ranks Pi..Pi+P-1 share node i.
};

const char* to_string(Placement p);

using Rank = std::uint32_t;

/// A job: the set of physical nodes granted by the scheduler plus the
/// rank -> node mapping induced by the placement policy. Immutable once
/// built; the latency model and victim selectors read coordinates from it.
class JobLayout {
 public:
  /// Allocate `num_ranks` MPI ranks on a machine.
  ///
  /// Node selection mimics the K Computer scheduler as described in §II-B:
  /// the job receives a compact 3D rectangle of cubes "minimizing the average
  /// number of hops", placed at `origin_cube` (default: the machine origin;
  /// benches vary it to check placement insensitivity). procs_per_node is 1
  /// for kOnePerNode and typically 8 (the K node's core count) otherwise.
  JobLayout(const TofuMachine& machine, Rank num_ranks, Placement placement,
            std::uint32_t procs_per_node = 1, std::uint32_t origin_cube = 0);

  /// Slice `width` job-local ranks out of a parent layout, starting at
  /// parent rank `base` (svc space-sharing: each job sees ranks 0..width-1
  /// mapped onto its partition's physical nodes). Coordinates are copied
  /// from the parent, so distances and latencies inside the slice are
  /// exactly the parent's — nothing is re-placed.
  static JobLayout slice(const JobLayout& parent, Rank base, Rank width);

  const TofuMachine& machine() const noexcept { return *machine_; }
  Rank num_ranks() const noexcept { return static_cast<Rank>(rank_to_node_.size()); }
  std::uint32_t num_nodes() const noexcept { return static_cast<std::uint32_t>(nodes_.size()); }
  std::uint32_t procs_per_node() const noexcept { return procs_per_node_; }
  Placement placement() const noexcept { return placement_; }

  NodeId node_of(Rank r) const;
  const TofuCoord& coord_of(Rank r) const;
  const std::vector<NodeId>& nodes() const noexcept { return nodes_; }

  bool same_node(Rank r1, Rank r2) const { return node_of(r1) == node_of(r2); }

  /// Extent (in cubes) of the allocated rectangle, for reporting.
  std::int32_t extent_x() const noexcept { return ext_[0]; }
  std::int32_t extent_y() const noexcept { return ext_[1]; }
  std::int32_t extent_z() const noexcept { return ext_[2]; }

 private:
  JobLayout() = default;  // slice() assembles the fields directly

  const TofuMachine* machine_ = nullptr;
  Placement placement_ = Placement::kOnePerNode;
  std::uint32_t procs_per_node_ = 1;
  std::vector<NodeId> nodes_;          // job's compute nodes, scheduler order
  std::vector<NodeId> rank_to_node_;   // rank -> node id
  std::vector<TofuCoord> rank_coord_;  // cached coordinates per rank
  std::int32_t ext_[3] = {0, 0, 0};
};

}  // namespace dws::topo
