#pragma once

#include <cstdint>
#include <vector>

#include "support/sim_time.hpp"
#include "topo/allocation.hpp"
#include "topo/latency.hpp"

namespace dws::topo {

/// Rank partition for the sharded conservative-parallel simulator core
/// (DESIGN.md §12): which shard owns each rank, and the lookahead — the
/// conservative synchronization window width, a static lower bound on the
/// latency of every possible cross-shard message.
struct ShardPartition {
  std::uint32_t num_shards = 1;
  /// min message latency over cut (cross-shard) rank pairs; the window W.
  support::SimTime lookahead = 0;
  std::vector<std::uint32_t> shard_of_rank;   ///< rank -> owning shard
  std::vector<std::vector<Rank>> shard_ranks; ///< shard -> ranks, ascending
};

/// Partition a job's ranks into (at most) `requested_shards` shards.
///
/// Shards are contiguous blocks of whole nodes in scheduler order, so
/// co-located ranks always share a shard and the cut never contains a
/// same-node pair — the cheapest latency tier can't cross shards, which is
/// what makes the lookahead large enough to batch useful work per window.
/// Scheduler order is also locality order (compact rectangles of cubes), so
/// block boundaries fall on topology seams and cut traffic crosses the
/// "network" tier in the common case.
///
/// The effective shard count is min(requested_shards, num_nodes); every
/// shard is non-empty. The result is a pure function of (layout,
/// requested_shards) — deterministic across runs and machines.
///
/// Lookahead derivation (conservative, O(nodes)): same-node pairs never
/// cross the cut by construction. If some blade's nodes land in different
/// shards the bound is min(same_blade, network_base); otherwise every cut
/// pair is at least one hop apart and the bound is network_base (per-hop
/// and serialization terms only add). `params` tiers must be positive for a
/// multi-shard partition — a zero lookahead would make the window empty
/// (ws::RunConfig::validate rejects such configs).
ShardPartition partition_ranks(const JobLayout& layout,
                               const LatencyParams& params,
                               std::uint32_t requested_shards);

}  // namespace dws::topo
