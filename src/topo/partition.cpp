#include "topo/partition.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "support/check.hpp"

namespace dws::topo {

namespace {

/// Blade identity: the four nodes of a cube sharing the b coordinate (see
/// TofuMachine::same_blade). Packs the (torus-local) cube coordinates and b
/// into one key for the split-blade scan.
std::uint64_t blade_key(const TofuCoord& c) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.x)) << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.y)) << 24) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.z)) << 8) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.b));
}

}  // namespace

ShardPartition partition_ranks(const JobLayout& layout,
                               const LatencyParams& params,
                               std::uint32_t requested_shards) {
  DWS_CHECK(requested_shards >= 1);
  const std::uint32_t num_nodes = layout.num_nodes();
  const Rank num_ranks = layout.num_ranks();
  const std::uint32_t shards = std::min(requested_shards, num_nodes);

  ShardPartition part;
  part.num_shards = shards;
  part.shard_of_rank.assign(num_ranks, 0);
  part.shard_ranks.assign(shards, {});

  // Contiguous node blocks in scheduler order: node i (0-based position in
  // layout.nodes()) goes to shard i * shards / num_nodes, so block sizes
  // differ by at most one node and every shard gets at least one node.
  std::unordered_map<NodeId, std::uint32_t> shard_of_node;
  shard_of_node.reserve(num_nodes);
  const auto& nodes = layout.nodes();
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    shard_of_node.emplace(
        nodes[i], static_cast<std::uint32_t>(
                      (static_cast<std::uint64_t>(i) * shards) / num_nodes));
  }
  for (Rank r = 0; r < num_ranks; ++r) {
    const std::uint32_t s = shard_of_node.at(layout.node_of(r));
    part.shard_of_rank[r] = s;
    part.shard_ranks[s].push_back(r);
  }
  for (const auto& ranks : part.shard_ranks) DWS_CHECK(!ranks.empty());

  if (shards == 1) {
    part.lookahead = 0;  // unused: no cut, no windows
    return part;
  }

  // Lookahead: same-node pairs can't cross the cut (whole nodes per shard).
  // A blade with nodes in two shards admits a same_blade-tier cut message;
  // otherwise every cut pair is >= 1 hop apart and network_base is the
  // floor (per-hop and serialization terms only add latency).
  bool blade_split = false;
  std::unordered_map<std::uint64_t, std::uint32_t> blade_shard;
  blade_shard.reserve(num_nodes);
  const auto& machine = layout.machine();
  for (std::uint32_t i = 0; i < num_nodes && !blade_split; ++i) {
    const std::uint64_t key = blade_key(machine.coord(nodes[i]));
    const std::uint32_t s = shard_of_node.at(nodes[i]);
    const auto [it, inserted] = blade_shard.emplace(key, s);
    if (!inserted && it->second != s) blade_split = true;
  }
  part.lookahead = blade_split
                       ? std::min(params.same_blade, params.network_base)
                       : params.network_base;
  DWS_CHECK(part.lookahead > 0);
  return part;
}

}  // namespace dws::topo
