#include "topo/allocation.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace dws::topo {

const char* to_string(Placement p) {
  switch (p) {
    case Placement::kOnePerNode: return "1/N";
    case Placement::kRoundRobin: return "RR";
    case Placement::kGrouped: return "G";
  }
  return "?";
}

namespace {

/// Factor `cubes` into extents (ex, ey, ez) with ex*ey*ez >= cubes, each
/// within the machine limits, as close to a cube as possible — the "compact
/// 3D rectangle" the K scheduler aims for. Greedy: grow the smallest extent.
void choose_extents(const TofuMachine& m, std::uint32_t cubes,
                    std::int32_t ext[3]) {
  ext[0] = ext[1] = ext[2] = 1;
  const std::int32_t limits[3] = {m.nx(), m.ny(), m.nz()};
  while (static_cast<std::uint32_t>(ext[0]) * static_cast<std::uint32_t>(ext[1]) *
             static_cast<std::uint32_t>(ext[2]) < cubes) {
    // Grow the relatively least-grown axis that still has headroom.
    int best = -1;
    for (int axis = 0; axis < 3; ++axis) {
      if (ext[axis] >= limits[axis]) continue;
      if (best < 0 || ext[axis] < ext[best]) best = axis;
    }
    DWS_CHECK(best >= 0 && "job does not fit in the machine");
    ++ext[best];
  }
}

}  // namespace

JobLayout::JobLayout(const TofuMachine& machine, Rank num_ranks,
                     Placement placement, std::uint32_t procs_per_node,
                     std::uint32_t origin_cube)
    : machine_(&machine), placement_(placement), procs_per_node_(procs_per_node) {
  DWS_CHECK(num_ranks > 0);
  DWS_CHECK(procs_per_node_ > 0);
  if (placement == Placement::kOnePerNode) {
    DWS_CHECK(procs_per_node_ == 1);
  }
  DWS_CHECK(num_ranks % procs_per_node_ == 0);
  const std::uint32_t num_nodes = num_ranks / procs_per_node_;

  // Scheduler step: pick a compact rectangle of cubes holding >= num_nodes
  // nodes, then enumerate nodes inside it in scheduler order.
  const std::uint32_t cubes_needed =
      (num_nodes + TofuMachine::kNodesPerCube - 1) / TofuMachine::kNodesPerCube;
  choose_extents(machine, cubes_needed, ext_);

  const std::uint32_t total_cubes = machine.cube_count();
  DWS_CHECK(origin_cube < total_cubes);
  const std::int32_t oz = static_cast<std::int32_t>(origin_cube) % machine.nz();
  const std::int32_t oy =
      (static_cast<std::int32_t>(origin_cube) / machine.nz()) % machine.ny();
  const std::int32_t ox =
      static_cast<std::int32_t>(origin_cube) / (machine.nz() * machine.ny());

  nodes_.reserve(num_nodes);
  for (std::int32_t cx = 0; cx < ext_[0] && nodes_.size() < num_nodes; ++cx) {
    for (std::int32_t cy = 0; cy < ext_[1] && nodes_.size() < num_nodes; ++cy) {
      for (std::int32_t cz = 0; cz < ext_[2] && nodes_.size() < num_nodes; ++cz) {
        for (std::int32_t slot = 0;
             slot < TofuMachine::kNodesPerCube && nodes_.size() < num_nodes;
             ++slot) {
          TofuCoord c;
          c.x = (ox + cx) % machine.nx();
          c.y = (oy + cy) % machine.ny();
          c.z = (oz + cz) % machine.nz();
          c.c = slot % TofuMachine::kC;
          c.b = (slot / TofuMachine::kC) % TofuMachine::kB;
          c.a = slot / (TofuMachine::kC * TofuMachine::kB);
          nodes_.push_back(machine.node_id(c));
        }
      }
    }
  }
  DWS_CHECK(nodes_.size() == num_nodes);

  rank_to_node_.resize(num_ranks);
  for (Rank r = 0; r < num_ranks; ++r) {
    std::uint32_t node_index = 0;
    switch (placement_) {
      case Placement::kOnePerNode:
        node_index = r;
        break;
      case Placement::kRoundRobin:
        node_index = r % num_nodes;
        break;
      case Placement::kGrouped:
        node_index = r / procs_per_node_;
        break;
    }
    rank_to_node_[r] = nodes_[node_index];
  }

  rank_coord_.reserve(num_ranks);
  for (Rank r = 0; r < num_ranks; ++r) {
    rank_coord_.push_back(machine.coord(rank_to_node_[r]));
  }
}

JobLayout JobLayout::slice(const JobLayout& parent, Rank base, Rank width) {
  DWS_CHECK(width > 0);
  DWS_CHECK(base + width <= parent.num_ranks());
  JobLayout out;
  out.machine_ = parent.machine_;
  out.placement_ = parent.placement_;
  out.procs_per_node_ = parent.procs_per_node_;
  out.rank_to_node_.reserve(width);
  out.rank_coord_.reserve(width);
  for (Rank r = 0; r < width; ++r) {
    const NodeId node = parent.node_of(base + r);
    out.rank_to_node_.push_back(node);
    out.rank_coord_.push_back(parent.coord_of(base + r));
    if (std::find(out.nodes_.begin(), out.nodes_.end(), node) ==
        out.nodes_.end()) {
      out.nodes_.push_back(node);
    }
  }
  for (int axis = 0; axis < 3; ++axis) out.ext_[axis] = parent.ext_[axis];
  return out;
}

NodeId JobLayout::node_of(Rank r) const {
  DWS_CHECK(r < rank_to_node_.size());
  return rank_to_node_[r];
}

const TofuCoord& JobLayout::coord_of(Rank r) const {
  DWS_CHECK(r < rank_coord_.size());
  return rank_coord_[r];
}

}  // namespace dws::topo
