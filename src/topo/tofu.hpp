#pragma once

#include <cstdint>
#include <string>

namespace dws::topo {

/// Position of a compute node in a Tofu-style 6D mesh/torus (Ajima et al.,
/// "Tofu: A 6D Mesh/Torus Interconnect for Exascale Computers").
///
/// Following the paper's description of the K Computer (§IV-B):
///  - four nodes share a blade (dedicated intra-blade transport),
///  - three blades form a 2x3x2 "cube" of 12 nodes — the (a, b, c) dims,
///  - cubes are joined in a 3D torus — the (x, y, z) dims,
///  - eight cubes along one axis share a rack (96 nodes per rack).
struct TofuCoord {
  std::int32_t x = 0;  ///< torus, cube units
  std::int32_t y = 0;  ///< torus, cube units
  std::int32_t z = 0;  ///< torus, cube units
  std::int32_t a = 0;  ///< mesh in {0, 1}
  std::int32_t b = 0;  ///< mesh in {0, 1, 2} — blade index inside the cube
  std::int32_t c = 0;  ///< mesh in {0, 1}

  friend bool operator==(const TofuCoord&, const TofuCoord&) = default;

  std::string to_string() const;
};

using NodeId = std::uint32_t;

/// Whole-machine geometry. The default constructor models the K Computer:
/// 24 x 18 x 16 cubes of 12 nodes = 82,944 compute nodes.
class TofuMachine {
 public:
  static constexpr std::int32_t kA = 2;
  static constexpr std::int32_t kB = 3;
  static constexpr std::int32_t kC = 2;
  static constexpr std::int32_t kNodesPerCube = kA * kB * kC;  // 12
  static constexpr std::int32_t kCubesPerRack = 8;

  TofuMachine() : TofuMachine(24, 18, 16) {}
  TofuMachine(std::int32_t nx, std::int32_t ny, std::int32_t nz);

  std::int32_t nx() const noexcept { return nx_; }
  std::int32_t ny() const noexcept { return ny_; }
  std::int32_t nz() const noexcept { return nz_; }
  std::uint32_t node_count() const noexcept;
  std::uint32_t cube_count() const noexcept;

  /// Node ids enumerate nodes cube-by-cube (z fastest among cubes, then y,
  /// then x; within a cube c fastest, then b, then a). coord() and node_id()
  /// are inverse bijections — tested exhaustively.
  TofuCoord coord(NodeId id) const;
  NodeId node_id(const TofuCoord& c) const;

  /// Rack identifier: eight consecutive-z cubes share a rack (paper §IV-B:
  /// "one dimension for the rack ... and two across racks").
  std::uint32_t rack_of(const TofuCoord& c) const;

  bool same_blade(const TofuCoord& p, const TofuCoord& q) const;
  bool same_cube(const TofuCoord& p, const TofuCoord& q) const;

  /// Network hops between two nodes: torus distance (with wraparound) in
  /// x/y/z plus mesh distance in a/b/c. A node is 0 hops from itself.
  std::int32_t hops(const TofuCoord& p, const TofuCoord& q) const;

  /// Euclidean distance over the 6 coordinates (torus-wrapped deltas in
  /// x/y/z) — the distance the paper feeds into the skewed victim weights.
  double euclidean(const TofuCoord& p, const TofuCoord& q) const;

 private:
  std::int32_t torus_delta(std::int32_t d, std::int32_t extent) const;

  std::int32_t nx_;
  std::int32_t ny_;
  std::int32_t nz_;
};

}  // namespace dws::topo
