#pragma once

#include <cstdint>
#include <vector>

#include "support/sim_time.hpp"
#include "topo/allocation.hpp"

namespace dws::support {
class Histogram;
}

namespace dws::topo {

/// One bin of an empirical latency distribution (a bench/sim_vs_rt steal-RTT
/// histogram bin): draws land uniformly inside [lo, hi) with probability
/// weight/Σweights.
struct LatencySampleBin {
  support::SimTime lo = 0;
  support::SimTime hi = 0;
  std::uint64_t weight = 0;
};

/// Tunable latency constants for rank-to-rank messages. Defaults are
/// calibrated against published K Computer / Tofu numbers (~1.5 us MPI
/// neighbour latency, ~100 ns per additional hop, intra-node shared-memory
/// MPI well under 1 us, ~5 GB/s per link). The *ratios* are what drive the
/// paper's effect; EXPERIMENTS.md discusses sensitivity.
struct LatencyParams {
  support::SimTime same_node = 400;    ///< ns, shared-memory transport
  support::SimTime same_blade = 900;   ///< ns, intra-blade transport
  support::SimTime network_base = 1300;  ///< ns, injection + first link
  support::SimTime per_hop = 100;      ///< ns per additional hop
  double bytes_per_ns = 5.0;           ///< link bandwidth (~5 GB/s)

  /// Optional empirical sampling backend (ROADMAP item 1 follow-on): when
  /// non-empty, the network-tier distance term (network_base + per_hop *
  /// (h-1)) is replaced by an inverse-CDF draw from these bins — typically a
  /// measured steal-RTT histogram from bench/sim_vs_rt. Serialization and
  /// the same_node/same_blade tiers are untouched. Draws are a pure hash of
  /// (sample_seed, src, dst, bytes, send time), so they are deterministic
  /// and shard-invariant; a fingerprint key is emitted only when enabled.
  std::vector<LatencySampleBin> sample_bins;
  std::uint64_t sample_seed = 0;

  bool sampling_enabled() const noexcept { return !sample_bins.empty(); }
};

/// Convert a measured distribution (a support::Histogram filled with
/// latencies in ns — e.g. bench/sim_vs_rt's per-steal RTT samples, halved to
/// one-way) into sampling bins. Empty bins are dropped; underflow folds into
/// a [0, lo) bin and overflow into one trailing bin-width past the window,
/// so total probability mass is preserved. Returns an empty vector (sampling
/// disabled) when the histogram holds no samples.
std::vector<LatencySampleBin> sample_bins_from_histogram(
    const support::Histogram& h);

/// Computes message latency and victim-selection distances between ranks of
/// one job. Stateless beyond cached coordinates: O(1) memory per query, no
/// N x N tables (important when simulating 8192 ranks in-process).
class LatencyModel {
 public:
  explicit LatencyModel(const JobLayout& layout, LatencyParams params = {});

  /// One-way delivery latency of a `bytes`-byte message from rank src to
  /// rank dst. Two ranks on the same node never touch the network.
  support::SimTime message_latency(Rank src, Rank dst,
                                   std::uint32_t bytes) const;

  /// Time-aware overload used by sim::Network: identical to the 3-arg form
  /// unless the empirical sampling backend is enabled, in which case `now`
  /// (the virtual send time) salts the per-message draw. Keeping the 3-arg
  /// form bit-unchanged keeps every existing golden stable.
  support::SimTime message_latency(Rank src, Rank dst, std::uint32_t bytes,
                                   support::SimTime now) const;

  /// Hop count between the ranks' nodes (0 when co-located).
  std::int32_t hops(Rank r1, Rank r2) const;

  /// 6D Euclidean distance between the ranks' nodes (0 when co-located) —
  /// the `e(i,j)` of the paper's victim weight.
  double euclidean(Rank r1, Rank r2) const;

  /// The paper's skewed-selection weight:
  ///   w(i,j) = 1/e(i,j) if e(i,j) != 0, else 1.
  double victim_weight(Rank from, Rank to) const;

  const JobLayout& layout() const noexcept { return *layout_; }
  const LatencyParams& params() const noexcept { return params_; }

 private:
  const JobLayout* layout_;
  LatencyParams params_;
};

}  // namespace dws::topo
