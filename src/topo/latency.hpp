#pragma once

#include <cstdint>

#include "support/sim_time.hpp"
#include "topo/allocation.hpp"

namespace dws::topo {

/// Tunable latency constants for rank-to-rank messages. Defaults are
/// calibrated against published K Computer / Tofu numbers (~1.5 us MPI
/// neighbour latency, ~100 ns per additional hop, intra-node shared-memory
/// MPI well under 1 us, ~5 GB/s per link). The *ratios* are what drive the
/// paper's effect; EXPERIMENTS.md discusses sensitivity.
struct LatencyParams {
  support::SimTime same_node = 400;    ///< ns, shared-memory transport
  support::SimTime same_blade = 900;   ///< ns, intra-blade transport
  support::SimTime network_base = 1300;  ///< ns, injection + first link
  support::SimTime per_hop = 100;      ///< ns per additional hop
  double bytes_per_ns = 5.0;           ///< link bandwidth (~5 GB/s)
};

/// Computes message latency and victim-selection distances between ranks of
/// one job. Stateless beyond cached coordinates: O(1) memory per query, no
/// N x N tables (important when simulating 8192 ranks in-process).
class LatencyModel {
 public:
  explicit LatencyModel(const JobLayout& layout, LatencyParams params = {});

  /// One-way delivery latency of a `bytes`-byte message from rank src to
  /// rank dst. Two ranks on the same node never touch the network.
  support::SimTime message_latency(Rank src, Rank dst,
                                   std::uint32_t bytes) const;

  /// Hop count between the ranks' nodes (0 when co-located).
  std::int32_t hops(Rank r1, Rank r2) const;

  /// 6D Euclidean distance between the ranks' nodes (0 when co-located) —
  /// the `e(i,j)` of the paper's victim weight.
  double euclidean(Rank r1, Rank r2) const;

  /// The paper's skewed-selection weight:
  ///   w(i,j) = 1/e(i,j) if e(i,j) != 0, else 1.
  double victim_weight(Rank from, Rank to) const;

  const JobLayout& layout() const noexcept { return *layout_; }
  const LatencyParams& params() const noexcept { return params_; }

 private:
  const JobLayout* layout_;
  LatencyParams params_;
};

}  // namespace dws::topo
