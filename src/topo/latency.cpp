#include "topo/latency.hpp"

#include "support/check.hpp"

namespace dws::topo {

LatencyModel::LatencyModel(const JobLayout& layout, LatencyParams params)
    : layout_(&layout), params_(params) {
  DWS_CHECK(params_.same_node >= 0);
  DWS_CHECK(params_.same_blade >= params_.same_node);
  DWS_CHECK(params_.network_base >= 0);
  DWS_CHECK(params_.per_hop >= 0);
  DWS_CHECK(params_.bytes_per_ns > 0.0);
}

support::SimTime LatencyModel::message_latency(Rank src, Rank dst,
                                               std::uint32_t bytes) const {
  const auto serialization =
      static_cast<support::SimTime>(static_cast<double>(bytes) / params_.bytes_per_ns);
  if (layout_->same_node(src, dst)) {
    return params_.same_node + serialization;
  }
  const auto& machine = layout_->machine();
  const auto& pc = layout_->coord_of(src);
  const auto& qc = layout_->coord_of(dst);
  if (machine.same_blade(pc, qc)) {
    return params_.same_blade + serialization;
  }
  const std::int32_t h = machine.hops(pc, qc);
  return params_.network_base + params_.per_hop * (h - 1) + serialization;
}

std::int32_t LatencyModel::hops(Rank r1, Rank r2) const {
  if (layout_->same_node(r1, r2)) return 0;
  return layout_->machine().hops(layout_->coord_of(r1), layout_->coord_of(r2));
}

double LatencyModel::euclidean(Rank r1, Rank r2) const {
  return layout_->machine().euclidean(layout_->coord_of(r1),
                                      layout_->coord_of(r2));
}

double LatencyModel::victim_weight(Rank from, Rank to) const {
  const double e = euclidean(from, to);
  return e != 0.0 ? 1.0 / e : 1.0;
}

}  // namespace dws::topo
