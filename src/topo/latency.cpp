#include "topo/latency.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"
#include "support/histogram.hpp"

namespace dws::topo {

std::vector<LatencySampleBin> sample_bins_from_histogram(
    const support::Histogram& h) {
  std::vector<LatencySampleBin> bins;
  if (h.total() == 0) return bins;
  const auto ns = [](double x) {
    return static_cast<support::SimTime>(std::max(0.0, x));
  };
  if (h.underflow() > 0) {
    bins.push_back({0, ns(h.bin_lo(0)), h.underflow()});
  }
  for (std::size_t i = 0; i < h.bins(); ++i) {
    if (h.bin_count(i) == 0) continue;
    bins.push_back({ns(h.bin_lo(i)), ns(h.bin_hi(i)), h.bin_count(i)});
  }
  if (h.overflow() > 0) {
    // The window cut the tail off; approximate it by one trailing bin-width
    // past the upper edge rather than dropping the mass.
    const double hi = h.bin_hi(h.bins() - 1);
    const double width = hi - h.bin_lo(h.bins() - 1);
    bins.push_back({ns(hi), ns(hi + width), h.overflow()});
  }
  return bins;
}

LatencyModel::LatencyModel(const JobLayout& layout, LatencyParams params)
    : layout_(&layout), params_(std::move(params)) {
  DWS_CHECK(params_.same_node >= 0);
  DWS_CHECK(params_.same_blade >= params_.same_node);
  DWS_CHECK(params_.network_base >= 0);
  DWS_CHECK(params_.per_hop >= 0);
  DWS_CHECK(params_.bytes_per_ns > 0.0);
  std::uint64_t total = 0;
  for (const auto& bin : params_.sample_bins) {
    DWS_CHECK(bin.lo >= 0 && bin.hi >= bin.lo);
    total += bin.weight;
  }
  DWS_CHECK(params_.sample_bins.empty() || total > 0);
}

namespace {

/// SplitMix64 finalizer used as a mixing step for the sampling draw: the
/// draw must be a pure function of its inputs (replayable, shard-invariant),
/// so no generator state is kept anywhere.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

support::SimTime LatencyModel::message_latency(Rank src, Rank dst,
                                               std::uint32_t bytes) const {
  const auto serialization =
      static_cast<support::SimTime>(static_cast<double>(bytes) / params_.bytes_per_ns);
  if (layout_->same_node(src, dst)) {
    return params_.same_node + serialization;
  }
  const auto& machine = layout_->machine();
  const auto& pc = layout_->coord_of(src);
  const auto& qc = layout_->coord_of(dst);
  if (machine.same_blade(pc, qc)) {
    return params_.same_blade + serialization;
  }
  const std::int32_t h = machine.hops(pc, qc);
  return params_.network_base + params_.per_hop * (h - 1) + serialization;
}

support::SimTime LatencyModel::message_latency(Rank src, Rank dst,
                                               std::uint32_t bytes,
                                               support::SimTime now) const {
  if (!params_.sampling_enabled() || layout_->same_node(src, dst)) {
    return message_latency(src, dst, bytes);
  }
  const auto& machine = layout_->machine();
  if (machine.same_blade(layout_->coord_of(src), layout_->coord_of(dst))) {
    return message_latency(src, dst, bytes);
  }
  // Network tier with the empirical backend on: replace the distance term by
  // an inverse-CDF draw over the measured bins. Two mix rounds decorrelate
  // the structured inputs (seed, channel, time, size).
  const auto serialization =
      static_cast<support::SimTime>(static_cast<double>(bytes) / params_.bytes_per_ns);
  std::uint64_t h = params_.sample_seed;
  h = mix64(h ^ (static_cast<std::uint64_t>(src) << 32 | dst));
  h = mix64(h ^ static_cast<std::uint64_t>(now));
  h = mix64(h ^ bytes);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  std::uint64_t total = 0;
  for (const auto& bin : params_.sample_bins) total += bin.weight;
  const double target = u * static_cast<double>(total);
  double cum = 0.0;
  for (const auto& bin : params_.sample_bins) {
    const double w = static_cast<double>(bin.weight);
    if (target < cum + w || &bin == &params_.sample_bins.back()) {
      const double frac = w > 0.0 ? (target - cum) / w : 0.0;
      const double span = static_cast<double>(bin.hi - bin.lo);
      const double draw = static_cast<double>(bin.lo) +
                          std::clamp(frac, 0.0, 1.0) * span;
      return static_cast<support::SimTime>(draw) + serialization;
    }
    cum += w;
  }
  return message_latency(src, dst, bytes);  // unreachable: back bin matched
}

std::int32_t LatencyModel::hops(Rank r1, Rank r2) const {
  if (layout_->same_node(r1, r2)) return 0;
  return layout_->machine().hops(layout_->coord_of(r1), layout_->coord_of(r2));
}

double LatencyModel::euclidean(Rank r1, Rank r2) const {
  return layout_->machine().euclidean(layout_->coord_of(r1),
                                      layout_->coord_of(r2));
}

double LatencyModel::victim_weight(Rank from, Rank to) const {
  const double e = euclidean(from, to);
  return e != 0.0 ? 1.0 / e : 1.0;
}

}  // namespace dws::topo
