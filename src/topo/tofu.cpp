#include "topo/tofu.hpp"

#include <cmath>
#include <cstdio>

#include "support/check.hpp"

namespace dws::topo {

std::string TofuCoord::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "(%d,%d,%d,%d,%d,%d)", x, y, z, a, b, c);
  return buf;
}

TofuMachine::TofuMachine(std::int32_t nx, std::int32_t ny, std::int32_t nz)
    : nx_(nx), ny_(ny), nz_(nz) {
  DWS_CHECK(nx_ > 0 && ny_ > 0 && nz_ > 0);
}

std::uint32_t TofuMachine::cube_count() const noexcept {
  return static_cast<std::uint32_t>(nx_ * ny_ * nz_);
}

std::uint32_t TofuMachine::node_count() const noexcept {
  return cube_count() * kNodesPerCube;
}

TofuCoord TofuMachine::coord(NodeId id) const {
  DWS_CHECK(id < node_count());
  const std::int32_t in_cube = static_cast<std::int32_t>(id) % kNodesPerCube;
  const std::int32_t cube = static_cast<std::int32_t>(id) / kNodesPerCube;
  TofuCoord c;
  c.c = in_cube % kC;
  c.b = (in_cube / kC) % kB;
  c.a = in_cube / (kC * kB);
  c.z = cube % nz_;
  c.y = (cube / nz_) % ny_;
  c.x = cube / (nz_ * ny_);
  return c;
}

NodeId TofuMachine::node_id(const TofuCoord& c) const {
  DWS_CHECK(c.x >= 0 && c.x < nx_);
  DWS_CHECK(c.y >= 0 && c.y < ny_);
  DWS_CHECK(c.z >= 0 && c.z < nz_);
  DWS_CHECK(c.a >= 0 && c.a < kA);
  DWS_CHECK(c.b >= 0 && c.b < kB);
  DWS_CHECK(c.c >= 0 && c.c < kC);
  const std::int32_t cube = (c.x * ny_ + c.y) * nz_ + c.z;
  const std::int32_t in_cube = (c.a * kB + c.b) * kC + c.c;
  return static_cast<NodeId>(cube * kNodesPerCube + in_cube);
}

std::uint32_t TofuMachine::rack_of(const TofuCoord& c) const {
  const std::int32_t rack_z = c.z / kCubesPerRack;
  const std::int32_t racks_per_column = (nz_ + kCubesPerRack - 1) / kCubesPerRack;
  return static_cast<std::uint32_t>((c.x * ny_ + c.y) * racks_per_column + rack_z);
}

bool TofuMachine::same_cube(const TofuCoord& p, const TofuCoord& q) const {
  return p.x == q.x && p.y == q.y && p.z == q.z;
}

bool TofuMachine::same_blade(const TofuCoord& p, const TofuCoord& q) const {
  // A blade is the set of four nodes of a cube sharing the b coordinate.
  return same_cube(p, q) && p.b == q.b;
}

std::int32_t TofuMachine::torus_delta(std::int32_t d, std::int32_t extent) const {
  if (d < 0) d = -d;
  return d <= extent - d ? d : extent - d;
}

std::int32_t TofuMachine::hops(const TofuCoord& p, const TofuCoord& q) const {
  return torus_delta(p.x - q.x, nx_) + torus_delta(p.y - q.y, ny_) +
         torus_delta(p.z - q.z, nz_) + std::abs(p.a - q.a) +
         std::abs(p.b - q.b) + std::abs(p.c - q.c);
}

double TofuMachine::euclidean(const TofuCoord& p, const TofuCoord& q) const {
  const double dx = torus_delta(p.x - q.x, nx_);
  const double dy = torus_delta(p.y - q.y, ny_);
  const double dz = torus_delta(p.z - q.z, nz_);
  const double da = p.a - q.a;
  const double db = p.b - q.b;
  const double dc = p.c - q.c;
  return std::sqrt(dx * dx + dy * dy + dz * dz + da * da + db * db + dc * dc);
}

}  // namespace dws::topo
