#pragma once

#include <cstdint>

#include "uts/node.hpp"
#include "uts/params.hpp"

namespace dws::uts {

/// Root node of a tree.
TreeNode root_node(const TreeParams& params);

/// Number of children of `node`. Pure: depends only on (params, node state,
/// node height), so every process computes the same value for the same node.
std::uint32_t num_children(const TreeParams& params, const TreeNode& node);

/// The i-th child. Pure, independent of evaluation order.
TreeNode child_node(const TreeNode& parent, std::uint32_t index);

/// Deterministic branching-factor profile b(d) for geometric trees (exposed
/// for tests and the docs; num_children samples a geometric distribution with
/// this mean).
double geo_branching_factor(const TreeParams& params, std::uint32_t depth);

}  // namespace dws::uts
