#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dws::uts {

/// Tree families supported by UTS (Olivier et al., "UTS: An Unbalanced Tree
/// Search Benchmark"). The paper under reproduction uses binomial trees
/// exclusively (Table I), but geometric and hybrid trees are part of the
/// benchmark definition and exercised by our tests and examples.
enum class TreeType {
  kBinomial,   ///< root has b0 children; every other node has m children with
               ///< probability q, else none. E[size] = 1 + b0/(1-mq) for mq<1.
  kGeometric,  ///< branching factor is a function of depth, cut off at gen_mx.
  kHybrid,     ///< geometric down to a fraction of gen_mx, binomial below.
};

/// Depth profile of the branching factor for geometric trees. The taxonomy
/// follows UTS; exact constants are documented per shape in tree.cpp.
enum class GeoShape {
  kLinear,  ///< b(d) = b0 * (1 - d/gen_mx): linear decrease to zero.
  kExpDec,  ///< b(d) = b0 ^ (1 - d/gen_mx): exponential decrease.
  kCyclic,  ///< b(d) oscillates with depth; produces bursts of fanout.
  kFixed,   ///< b(d) = b0 for d < gen_mx: balanced b0-ary tree.
};

/// Full parameter set identifying one UTS tree. Two TreeParams with equal
/// fields generate bit-identical trees on any machine.
struct TreeParams {
  std::string name;            ///< identifier used in reports
  TreeType type = TreeType::kBinomial;
  std::uint32_t root_seed = 0;     ///< the paper's `r`
  std::uint32_t root_branching = 1;  ///< the paper's `b` (b0)
  std::uint32_t m = 2;             ///< binomial: children on success
  double q = 0.25;                 ///< binomial: success probability
  std::uint32_t gen_mx = 6;        ///< geometric/hybrid: depth cutoff
  GeoShape shape = GeoShape::kLinear;
  double shift = 0.5;              ///< hybrid: fraction of gen_mx that is geometric
  std::uint32_t max_children = 1u << 20;  ///< safety clamp on per-node fanout

  /// Expected node count for binomial trees (infinite/undefined when mq >= 1).
  std::optional<double> expected_size() const;
};

/// Named catalogue: the paper's Table I trees, the UTS sample trees our tests
/// rely on, and the scaled simulation trees used by the bench harness (see
/// DESIGN.md §1 on scaling).
///
/// Scaled trees keep the paper's binomial structure (m = 2, q just below 1/2,
/// b0 = 2000) with q backed off so realised sizes fit the simulator budget.
/// Verified realised sizes are recorded in tests/uts/catalogue_test.cpp.
const std::vector<TreeParams>& catalogue();

/// Find a catalogue tree by name; aborts if unknown (bench binaries pass
/// compile-time constants).
const TreeParams& tree_by_name(std::string_view name);

/// Non-aborting lookup for user-supplied names (CLI flags, sweep specs);
/// nullptr when the name is not in the catalogue.
const TreeParams* find_tree(std::string_view name);

const char* to_string(TreeType t);
const char* to_string(GeoShape s);

}  // namespace dws::uts
