#pragma once

#include <cstdint>
#include <optional>

#include "uts/tree.hpp"

namespace dws::uts {

/// Exact whole-tree statistics. Produced by the sequential enumerator and by
/// every parallel implementation (simulator, shared-memory pool); equality of
/// `nodes` across implementations is the repo's master correctness oracle.
struct TreeStats {
  std::uint64_t nodes = 0;
  std::uint64_t leaves = 0;
  std::uint32_t max_depth = 0;
  bool truncated = false;  ///< node_limit was hit; counts are partial
};

/// Depth-first sequential traversal counting all nodes.
///
/// `node_limit` aborts the walk once that many nodes were generated — a
/// guard so a mistyped parameter set (mq >= 1 makes binomial trees
/// supercritical) cannot hang a test run.
TreeStats enumerate_sequential(const TreeParams& params,
                               std::uint64_t node_limit = UINT64_MAX);

}  // namespace dws::uts
