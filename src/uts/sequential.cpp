#include "uts/sequential.hpp"

#include <algorithm>
#include <vector>

namespace dws::uts {

TreeStats enumerate_sequential(const TreeParams& params,
                               std::uint64_t node_limit) {
  TreeStats stats;
  std::vector<TreeNode> stack;
  stack.push_back(root_node(params));

  while (!stack.empty()) {
    const TreeNode node = stack.back();
    stack.pop_back();

    ++stats.nodes;
    stats.max_depth = std::max(stats.max_depth, node.height);
    if (stats.nodes >= node_limit) {
      stats.truncated = true;
      return stats;
    }

    const std::uint32_t n = num_children(params, node);
    if (n == 0) {
      ++stats.leaves;
      continue;
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      stack.push_back(child_node(node, i));
    }
  }
  return stats;
}

}  // namespace dws::uts
