#include "uts/tree.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "support/check.hpp"

namespace dws::uts {

namespace {

/// Geometric-distribution sample with mean ~b: p = 1/(1+b),
/// N = floor(log(1-u) / log(1-p)). This is the standard inverse-CDF draw used
/// by UTS for geometric trees.
std::uint32_t sample_geometric_children(double b, double u,
                                        std::uint32_t max_children) {
  if (b <= 0.0) return 0;
  const double p = 1.0 / (1.0 + b);
  // u is in [0,1); 1-u in (0,1], log(1-u) <= 0, log(1-p) < 0.
  const double draw = std::floor(std::log(1.0 - u) / std::log(1.0 - p));
  if (draw <= 0.0) return 0;
  if (draw >= static_cast<double>(max_children)) return max_children;
  return static_cast<std::uint32_t>(draw);
}

std::uint32_t binomial_children(const TreeParams& params, const TreeNode& node) {
  if (node.height == 0) return params.root_branching;
  return node.rng.to_prob() < params.q ? params.m : 0;
}

std::uint32_t geometric_children(const TreeParams& params, const TreeNode& node) {
  const double b = geo_branching_factor(params, node.height);
  return sample_geometric_children(b, node.rng.to_prob(), params.max_children);
}

}  // namespace

double geo_branching_factor(const TreeParams& params, std::uint32_t depth) {
  if (depth >= params.gen_mx) return 0.0;
  const double b0 = static_cast<double>(params.root_branching);
  const double frac =
      static_cast<double>(depth) / static_cast<double>(params.gen_mx);
  switch (params.shape) {
    case GeoShape::kLinear:
      return b0 * (1.0 - frac);
    case GeoShape::kExpDec:
      // b0^(1-d/gen_mx): full fanout at the root decaying to 1 at the cutoff.
      return std::pow(b0, 1.0 - frac);
    case GeoShape::kCyclic:
      // Fanout pulses along depth (several bursts per tree); the phase shift
      // keeps the root's fanout at b0 instead of zero.
      return b0 * std::abs(std::sin((frac * 4.0 + 0.5) * std::numbers::pi));
    case GeoShape::kFixed:
      return b0;
  }
  return 0.0;
}

TreeNode root_node(const TreeParams& params) {
  TreeNode n;
  n.rng = crypto::UtsRng::from_seed(params.root_seed);
  n.height = 0;
  return n;
}

std::uint32_t num_children(const TreeParams& params, const TreeNode& node) {
  switch (params.type) {
    case TreeType::kBinomial:
      return binomial_children(params, node);
    case TreeType::kGeometric:
      return geometric_children(params, node);
    case TreeType::kHybrid: {
      const auto geo_limit =
          static_cast<std::uint32_t>(params.shift * params.gen_mx);
      if (node.height < geo_limit) return geometric_children(params, node);
      // Below the shift boundary the tree behaves binomially; the root rule
      // does not reapply (height > 0 here by construction).
      return node.rng.to_prob() < params.q ? params.m : 0;
    }
  }
  DWS_CHECK(false && "unreachable tree type");
}

TreeNode child_node(const TreeNode& parent, std::uint32_t index) {
  TreeNode c;
  c.rng = parent.rng.spawn(index);
  c.height = parent.height + 1;
  return c;
}

}  // namespace dws::uts
