#include "uts/params.hpp"

#include "support/check.hpp"

namespace dws::uts {

std::optional<double> TreeParams::expected_size() const {
  if (type != TreeType::kBinomial) return std::nullopt;
  const double mq = static_cast<double>(m) * q;
  if (mq >= 1.0) return std::nullopt;
  return 1.0 + static_cast<double>(root_branching) / (1.0 - mq);
}

namespace {

std::vector<TreeParams> build_catalogue() {
  std::vector<TreeParams> trees;

  auto bin = [&](std::string name, std::uint32_t r, std::uint32_t b0,
                 std::uint32_t m, double q) {
    TreeParams p;
    p.name = std::move(name);
    p.type = TreeType::kBinomial;
    p.root_seed = r;
    p.root_branching = b0;
    p.m = m;
    p.q = q;
    trees.push_back(p);
  };

  auto geo = [&](std::string name, std::uint32_t r, std::uint32_t b0,
                 std::uint32_t gen_mx, GeoShape shape) {
    TreeParams p;
    p.name = std::move(name);
    p.type = TreeType::kGeometric;
    p.root_seed = r;
    p.root_branching = b0;
    p.gen_mx = gen_mx;
    p.shape = shape;
    trees.push_back(p);
  };

  // --- Paper trees (Table I). Sizes quoted in the paper:
  // T3XXL = 2,793,220,501 nodes; T3WL = 157,063,495,159 nodes. They are too
  // large for the single-process simulator and exist here for completeness
  // and for parameter echo in bench/table1_trees.
  bin("T3XXL", 316, 2000, 2, 0.499995);
  bin("T3WL", 559, 2000, 2, 0.4999995);

  // --- Classic UTS sample trees (same parameter sets as the UTS
  // distribution; our SHA/rng conventions are spec-compatible rather than
  // byte-identical with uts.c, so realised sizes are our own goldens —
  // see tests/uts/catalogue_test.cpp).
  geo("T1", 19, 4, 10, GeoShape::kFixed);
  bin("T3", 42, 2000, 8, 0.124875);

  // --- Scaled simulation trees: the paper's binomial structure (b0 = 2000,
  // m = 2) with q backed off from 1/2 so sizes fit the simulator budget.
  // Realised sizes are heavy-tailed, so seeds were chosen by enumeration to
  // land near the target (goldens in tests/uts/catalogue_test.cpp).
  bin("SIM200K", 5, 2000, 2, 0.495);   // 224,133 nodes
  bin("SIM500K", 40, 2000, 2, 0.499);  // 499,981 nodes
  bin("SIM1M", 23, 2000, 2, 0.499);    // 999,381 nodes
  bin("SIM2M", 42, 2000, 2, 0.499);    // 2,004,631 nodes
  bin("SIM4M", 7, 2000, 2, 0.4995);    // 4,066,763 nodes

  // --- The bench harness trees (EXPERIMENTS.md): scaled analogues of the
  // paper's T3XXL/T3WL with a wider root (b0 = 10000) so that, at the
  // simulator's reduced rank counts, stealable-chunk inventory is governed
  // by distribution speed — the effect the paper studies — rather than by
  // the tree running out of frontier. Subtrees stay near-critical
  // (m*q = 0.997) so stolen chunks blossom into new steal sources, like the
  // paper's (much larger) trees.
  bin("SIMXXL", 1, 10000, 2, 0.4985);  // 4,529,327 nodes (small-scale figs)
  bin("SIMWL", 3, 10000, 2, 0.4985);   // 3,042,895 nodes (large-scale figs)

  // --- Tiny trees for unit tests and quick examples.
  bin("TEST_BIN_TINY", 7, 20, 2, 0.45);    // E ~ 201
  bin("TEST_BIN_SMALL", 3, 200, 2, 0.48);  // E ~ 5k
  bin("TEST_BIN_WIDE", 13, 500, 8, 0.11);  // high-fanout variant
  geo("TEST_GEO_LIN", 19, 4, 8, GeoShape::kLinear);
  geo("TEST_GEO_FIX", 23, 3, 5, GeoShape::kFixed);
  geo("TEST_GEO_EXP", 29, 4, 8, GeoShape::kExpDec);
  geo("TEST_GEO_CYC", 31, 4, 12, GeoShape::kCyclic);
  {
    TreeParams p;
    p.name = "TEST_HYBRID";
    p.type = TreeType::kHybrid;
    p.root_seed = 41;
    p.root_branching = 4;
    p.gen_mx = 8;
    p.shape = GeoShape::kLinear;
    p.m = 2;
    p.q = 0.45;
    p.shift = 0.5;
    trees.push_back(p);
  }

  return trees;
}

}  // namespace

const std::vector<TreeParams>& catalogue() {
  static const std::vector<TreeParams> kTrees = build_catalogue();
  return kTrees;
}

const TreeParams* find_tree(std::string_view name) {
  for (const auto& t : catalogue()) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

const TreeParams& tree_by_name(std::string_view name) {
  const TreeParams* t = find_tree(name);
  DWS_CHECK(t != nullptr && "unknown tree name");
  return *t;
}

const char* to_string(TreeType t) {
  switch (t) {
    case TreeType::kBinomial: return "Binomial";
    case TreeType::kGeometric: return "Geometric";
    case TreeType::kHybrid: return "Hybrid";
  }
  return "?";
}

const char* to_string(GeoShape s) {
  switch (s) {
    case GeoShape::kLinear: return "Linear";
    case GeoShape::kExpDec: return "ExpDec";
    case GeoShape::kCyclic: return "Cyclic";
    case GeoShape::kFixed: return "Fixed";
  }
  return "?";
}

}  // namespace dws::uts
