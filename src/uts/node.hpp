#pragma once

#include <cstdint>

#include "crypto/uts_rng.hpp"

namespace dws::uts {

/// One tree node: the *entire* information needed to generate its subtree.
/// This is UTS's "implicit tree" property — a node can be shipped to another
/// process in 24 bytes and expanded there, which is what makes chunked work
/// stealing cheap (no task closures, just plain data; see paper §II-A).
struct TreeNode {
  crypto::UtsRng rng;
  std::uint32_t height = 0;  ///< depth; root is 0

  friend bool operator==(const TreeNode&, const TreeNode&) = default;
};

static_assert(sizeof(TreeNode) == 24, "TreeNode must stay a small POD");

}  // namespace dws::uts
