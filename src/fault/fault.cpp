#include "fault/fault.hpp"

#include <cmath>

#include "support/check.hpp"

namespace dws::fault {
namespace {

// Distinct salts keep the per-message, per-link, straggler and pause streams
// independent even though they share FaultConfig::seed.
constexpr std::uint64_t kSendSalt = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kLinkSalt = 0xbf58476d1ce4e5b9ull;
constexpr std::uint64_t kStragglerSalt = 0x94d049bb133111ebull;
constexpr std::uint64_t kPauseSalt = 0xff51afd7ed558ccdull;

double to_unit(std::uint64_t x) {
  // 53-bit mantissa, [0, 1) — same convention as Xoshiro256StarStar.
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

// Chooses `count` distinct ranks via a partial Fisher–Yates shuffle of a
// seed-derived stream; marks them in `flags`.
void mark_ranks(std::vector<std::uint8_t>& flags, std::uint32_t count,
                std::uint64_t seed) {
  const auto n = static_cast<std::uint32_t>(flags.size());
  DWS_CHECK(count <= n && "more perturbed ranks than ranks");
  std::vector<std::uint32_t> pool(n);
  for (std::uint32_t i = 0; i < n; ++i) pool[i] = i;
  support::Xoshiro256StarStar rng(seed);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t j = i + rng.next_below(n - i);
    std::swap(pool[i], pool[j]);
    flags[pool[i]] = 1;
  }
}

}  // namespace

Injector::Injector(const FaultConfig& config, std::uint32_t num_ranks)
    : cfg_(config) {
  DWS_CHECK(cfg_.drop_prob >= 0.0 && cfg_.drop_prob < 1.0);
  DWS_CHECK(cfg_.dup_prob >= 0.0 && cfg_.dup_prob < 1.0);
  DWS_CHECK(cfg_.jitter_frac >= 0.0);
  DWS_CHECK(cfg_.degraded_frac >= 0.0 && cfg_.degraded_frac <= 1.0);
  DWS_CHECK(cfg_.degraded_mult >= 1.0);
  DWS_CHECK(cfg_.straggler_factor >= 1.0);
  DWS_CHECK(cfg_.pause_duration >= 0);
  DWS_CHECK(cfg_.pause_window >= 0);

  straggler_.assign(num_ranks, 0);
  if (cfg_.straggler_ranks > 0) {
    mark_ranks(straggler_, cfg_.straggler_ranks, cfg_.seed ^ kStragglerSalt);
  }

  pause_at_.assign(num_ranks, support::SimTime{-1});
  if (cfg_.pause_ranks > 0 && cfg_.pause_duration > 0) {
    std::vector<std::uint8_t> paused(num_ranks, 0);
    mark_ranks(paused, cfg_.pause_ranks, cfg_.seed ^ kPauseSalt);
    support::Xoshiro256StarStar rng(cfg_.seed ^ kPauseSalt ^ kSendSalt);
    for (std::uint32_t r = 0; r < num_ranks; ++r) {
      if (paused[r] == 0) continue;
      const auto window = static_cast<std::uint64_t>(cfg_.pause_window);
      pause_at_[r] = window == 0 ? support::SimTime{0}
                                 : static_cast<support::SimTime>(
                                       rng.next_below(window + 1));
    }
  }
}

double Injector::unit_draw(std::uint64_t salt, std::uint64_t key) const {
  return to_unit(support::SplitMix64(cfg_.seed ^ salt ^ key).next());
}

SendPlan Injector::plan_send(std::uint64_t channel_key, MsgClass cls,
                             std::uint32_t bytes) {
  SendPlan plan;
  // One fresh stream per send: hash of (seed, channel, the channel's own
  // send counter). Four draws in fixed order keep the decisions decorrelated;
  // keying on the per-channel counter makes the plan independent of how
  // other channels' sends interleave with this one — the property that lets
  // each simulator shard own a private Injector (DESIGN.md §12).
  ChannelFaultState& ch = channels_[channel_key];
  support::SplitMix64 sm(cfg_.seed ^ (channel_key * kSendSalt) ^
                         (++ch.sends * kPauseSalt));
  const double u_drop = to_unit(sm.next());
  const double u_dup = to_unit(sm.next());
  const double u_jitter = to_unit(sm.next());
  const double u_jitter_dup = to_unit(sm.next());

  if (cls == MsgClass::kDroppable && u_drop < cfg_.drop_prob) {
    plan.drop = true;
    ++ch.dropped_messages;
    ++stats_.dropped_messages;
    stats_.dropped_bytes += bytes;
    return plan;
  }
  if (cls != MsgClass::kReliable && u_dup < cfg_.dup_prob) {
    plan.duplicate = true;
    ++ch.duplicated_messages;
    ++stats_.duplicated_messages;
    stats_.duplicated_bytes += bytes;
  }
  double mult = 1.0;
  if (link_degraded(channel_key)) mult *= cfg_.degraded_mult;
  plan.latency_mult = mult * (1.0 + u_jitter * cfg_.jitter_frac);
  plan.dup_latency_mult = mult * (1.0 + u_jitter_dup * cfg_.jitter_frac);
  return plan;
}

support::SimTime Injector::scaled_node_cost(std::uint32_t rank,
                                            support::SimTime cost) const {
  if (!is_straggler(rank)) return cost;
  return static_cast<support::SimTime>(
      std::llround(static_cast<double>(cost) * cfg_.straggler_factor));
}

std::optional<support::SimTime> Injector::pause_start(
    std::uint32_t rank) const {
  if (rank >= pause_at_.size() || pause_at_[rank] < 0) return std::nullopt;
  return pause_at_[rank];
}

bool Injector::link_degraded(std::uint64_t channel_key) const {
  if (cfg_.degraded_frac <= 0.0) return false;
  return unit_draw(kLinkSalt, channel_key * kSendSalt) < cfg_.degraded_frac;
}

}  // namespace dws::fault
