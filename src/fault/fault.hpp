#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "support/rng.hpp"
#include "support/sim_time.hpp"

/// dws::fault — deterministic fault injection for the simulator (DESIGN.md
/// §10). The paper models the happy path: every message arrives, every rank
/// computes at the calibrated speed. This layer perturbs both, so the
/// Reference-vs-Tofu gap can be studied in the regime related work (Gast et
/// al.) argues dominates real deployments: lossy, jittery networks and
/// heterogeneous compute.
///
/// Everything is drawn from dedicated RNG streams derived from
/// FaultConfig::seed — never from the schedulers' RNGs — so enabling faults
/// perturbs the run but a faulted run with a fixed seed replays
/// byte-identically, and the fault axes of a sweep are decorrelated from the
/// victim-selection axes. Per-message decisions are counter-based: a hash of
/// (seed, channel, the channel's own send sequence number). Keying on the
/// per-channel counter — not a global one — makes every draw a pure function
/// of the channel's send history, which is what lets the sharded simulator
/// core (DESIGN.md §12) give each shard its own Injector: a channel's sends
/// are totally ordered inside the sending rank's shard, so the draw sequence
/// is identical at every shard count.
namespace dws::fault {

/// Loss semantics of one message, declared by the protocol layer at the send
/// site. The injector only ever drops messages the protocol can recover
/// (steal requests and refusals re-covered by the thief's timeout, tokens
/// re-covered by regeneration); work-carrying responses may be duplicated —
/// the thief deduplicates by request id — but never dropped, because no
/// retransmission path exists for the nodes they carry. Everything else
/// (Terminate, lifeline traffic) is reliable.
enum class MsgClass : std::uint8_t {
  kReliable,   ///< never dropped, never duplicated
  kDroppable,  ///< may be dropped and duplicated
  kDupOnly,    ///< may be duplicated, never dropped (work-carrying)
};

/// The perturbation model. All-defaults means "no faults" (enabled() is
/// false and the simulation is bit-identical to a run without the layer).
struct FaultConfig {
  /// Per-message drop probability on kDroppable sends.
  double drop_prob = 0.0;
  /// Per-message duplication probability on kDroppable/kDupOnly sends. The
  /// copy travels the same channel with its own jitter draw.
  double dup_prob = 0.0;
  /// Latency jitter: each delivery's latency is scaled by
  /// 1 + U[0,1) * jitter_frac.
  double jitter_frac = 0.0;
  /// Fraction of directed (src, dst) channels that are persistently
  /// degraded; their latency is further scaled by degraded_mult.
  double degraded_frac = 0.0;
  double degraded_mult = 3.0;

  /// Straggler ranks: this many ranks (chosen from a seed-derived stream)
  /// expand nodes straggler_factor times slower for the whole run.
  std::uint32_t straggler_ranks = 0;
  double straggler_factor = 4.0;

  /// Transient pauses: this many ranks stall once for pause_duration ns,
  /// starting at a time drawn uniformly from [0, pause_window].
  std::uint32_t pause_ranks = 0;
  support::SimTime pause_duration = 0;
  support::SimTime pause_window = 0;

  /// Seed of the dedicated fault RNG streams.
  std::uint64_t seed = 1;

  /// True when any perturbation is active.
  bool enabled() const noexcept {
    return drop_prob > 0.0 || dup_prob > 0.0 || jitter_frac > 0.0 ||
           degraded_frac > 0.0 || straggler_ranks > 0 ||
           (pause_ranks > 0 && pause_duration > 0);
  }
};

/// What the injector actually did, for RunResult and the auditor's message
/// arithmetic (a dropped message is still counted as sent by NetworkStats —
/// send-side ledgers need no fault-awareness — while each duplicate adds one
/// extra message/byte count the auditor compensates for).
struct FaultStats {
  std::uint64_t dropped_messages = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t duplicated_messages = 0;
  std::uint64_t duplicated_bytes = 0;
};

/// One channel's slice of the injector state: the send counter that keys the
/// draws, plus what the injector did on this channel. Summing the per-channel
/// drop/dup counts over channels() reproduces the global FaultStats — the
/// conservation property the sharded merge (one injector per shard, disjoint
/// channel sets) relies on and the tests pin.
struct ChannelFaultState {
  std::uint64_t sends = 0;  ///< per-channel send sequence (the draw key)
  std::uint64_t dropped_messages = 0;
  std::uint64_t duplicated_messages = 0;
};

/// Per-send verdict: drop, duplicate, and the latency multipliers (jitter x
/// degraded link) for the original and — when duplicated — the copy.
struct SendPlan {
  bool drop = false;
  bool duplicate = false;
  double latency_mult = 1.0;
  double dup_latency_mult = 1.0;
};

/// The deterministic fault injector: one per run (or one per shard — see
/// below), shared by sim::Network (message faults) and ws::Worker
/// (stragglers and pauses). plan_send advances only the *channel's* send
/// sequence, so a plan depends on nothing but (seed, channel, how many
/// sends that channel has seen) — the interleaving of different channels
/// is irrelevant. Straggler and pause assignments are pure functions of
/// (seed, num_ranks), so shard-local Injector copies constructed from the
/// same config agree on them.
class Injector {
 public:
  Injector(const FaultConfig& config, std::uint32_t num_ranks);

  const FaultConfig& config() const noexcept { return cfg_; }
  bool enabled() const noexcept { return cfg_.enabled(); }
  const FaultStats& stats() const noexcept { return stats_; }

  /// Per-channel send counters and drop/dup tallies, keyed by the network's
  /// (src<<32)|dst channel key. Only channels that saw at least one
  /// plan_send appear.
  const std::unordered_map<std::uint64_t, ChannelFaultState>& channels()
      const noexcept {
    return channels_;
  }

  /// One decision per network send on channel `channel_key` (the network's
  /// (src<<32)|dst key). Mutates the send counter and the fault stats.
  SendPlan plan_send(std::uint64_t channel_key, MsgClass cls,
                     std::uint32_t bytes);

  /// Straggler model: the per-node expansion cost this rank actually pays.
  support::SimTime scaled_node_cost(std::uint32_t rank,
                                    support::SimTime cost) const;
  bool is_straggler(std::uint32_t rank) const noexcept {
    return rank < straggler_.size() && straggler_[rank] != 0;
  }

  /// Start time of `rank`'s one transient pause, if it has one.
  std::optional<support::SimTime> pause_start(std::uint32_t rank) const;

  /// Whether the directed channel is persistently degraded (pure function of
  /// seed and channel; no counter involved).
  bool link_degraded(std::uint64_t channel_key) const;

 private:
  double unit_draw(std::uint64_t salt, std::uint64_t key) const;

  FaultConfig cfg_;
  FaultStats stats_;
  /// Per-channel state (the replayed dimension). A channel's draws are a
  /// pure function of its own send count, never of other channels' traffic.
  std::unordered_map<std::uint64_t, ChannelFaultState> channels_;
  std::vector<std::uint8_t> straggler_;     // per rank
  std::vector<support::SimTime> pause_at_;  // per rank; <0 = no pause
};

}  // namespace dws::fault
