#include "ws/scheduler.hpp"

#include <memory>

#include "sim/engine.hpp"
#include "support/check.hpp"
#include "ws/worker.hpp"

namespace dws::ws {

RunResult run_simulation(const RunConfig& config) {
  DWS_CHECK(config.num_ranks >= 1);

  topo::JobLayout layout(config.machine, config.num_ranks, config.placement,
                         config.procs_per_node, config.origin_cube);
  topo::LatencyModel latency(layout, config.latency);

  sim::Engine engine;
  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(config.num_ranks);

  sim::Network<Message> network(
      engine, latency,
      [&workers](topo::Rank dst, Message msg) {
        workers[dst]->on_message(std::move(msg));
      },
      config.congestion);

  RunContext ctx;
  ctx.engine = &engine;
  ctx.network = &network;
  ctx.config = &config.ws;
  ctx.tree = &config.tree;
  ctx.latency = &latency;
  ctx.num_ranks = config.num_ranks;

  for (topo::Rank r = 0; r < config.num_ranks; ++r) {
    workers.push_back(std::make_unique<Worker>(r, ctx));
  }
  for (auto& w : workers) {
    engine.schedule_at(0, [worker = w.get()] { worker->start(); });
  }

  engine.run();

  // Post-run invariants: the token protocol must have fired, every worker
  // must have drained its stack, and every shipped chunk must have landed.
  DWS_CHECK(ctx.terminated);
  std::uint64_t chunks_sent = 0;
  std::uint64_t chunks_received = 0;
  for (const auto& w : workers) {
    DWS_CHECK(w->done());
    DWS_CHECK(w->stack_size() == 0);
    chunks_sent += w->stats().chunks_sent;
    chunks_received += w->stats().chunks_received;
  }
  DWS_CHECK(chunks_sent == chunks_received);

  RunResult result;
  result.runtime = ctx.termination_time;
  result.per_node_cost = config.ws.node_cost();
  result.per_rank.reserve(config.num_ranks);
  for (const auto& w : workers) {
    result.nodes += w->stats().nodes_processed;
    result.leaves += w->stats().leaves_seen;
    result.per_rank.push_back(w->stats());
  }
  result.stats = metrics::aggregate(result.per_rank);
  result.network = network.stats();
  result.engine_events = engine.events_executed();

  if (config.ws.record_trace) {
    result.trace.total_time = ctx.termination_time;
    result.trace.ranks.reserve(config.num_ranks);
    for (const auto& w : workers) result.trace.ranks.push_back(w->trace());
  }
  return result;
}

}  // namespace dws::ws
