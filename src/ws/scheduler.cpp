#include "ws/scheduler.hpp"

#include <memory>
#include <utility>

#include "sim/engine.hpp"
#include "support/check.hpp"
#include "topo/partition.hpp"
#include "ws/shard.hpp"
#include "ws/worker.hpp"

namespace dws::ws {

const char* to_string(Backend b) {
  switch (b) {
    case Backend::kSim: return "sim";
    case Backend::kRt: return "rt";
  }
  return "?";
}

support::Status RunConfig::validate() const {
  if (num_ranks < 1) return support::Status::error("num_ranks must be >= 1");
  if (procs_per_node < 1) {
    return support::Status::error("procs_per_node must be >= 1");
  }
  if (placement == topo::Placement::kOnePerNode && procs_per_node != 1) {
    return support::Status::error(
        "placement 1/N requires procs_per_node == 1 (got " +
        std::to_string(procs_per_node) + ")");
  }
  if (num_ranks % procs_per_node != 0) {
    return support::Status::error(
        "num_ranks (" + std::to_string(num_ranks) +
        ") must be a multiple of procs_per_node (" +
        std::to_string(procs_per_node) + ")");
  }
  if (num_ranks / procs_per_node > machine.node_count()) {
    return support::Status::error(
        "job needs " + std::to_string(num_ranks / procs_per_node) +
        " nodes but the machine has " + std::to_string(machine.node_count()));
  }
  if (origin_cube >= machine.cube_count()) {
    return support::Status::error(
        "origin_cube " + std::to_string(origin_cube) +
        " outside the machine's " + std::to_string(machine.cube_count()) +
        " cubes");
  }
  if (ws.chunk_size == 0) {
    return support::Status::error("chunk_size must be >= 1");
  }
  if (ws.poll_interval == 0) {
    return support::Status::error("poll_interval must be >= 1");
  }
  if (ws.alias_table_max_ranks == 0) {
    return support::Status::error(
        "alias_table_max_ranks must be >= 1 (the threshold picks the "
        "sampling backend; 0 would disable both)");
  }
  if (ws.idle_policy == IdlePolicy::kLifeline && ws.lifeline_tries == 0) {
    return support::Status::error(
        "lifeline_tries must be >= 1 under IdlePolicy::kLifeline");
  }
  if (tree.type == uts::TreeType::kBinomial &&
      static_cast<double>(tree.m) * tree.q >= 1.0) {
    return support::Status::error(
        "binomial tree with m*q >= 1 is (almost surely) infinite");
  }
  if (ws.steal_backoff < 1.0) {
    return support::Status::error("steal_backoff must be >= 1.0");
  }
  if (ws.victim_policy == VictimPolicy::kHierarchical &&
      ws.hierarchical_remote_tries == 0) {
    return support::Status::error(
        "hierarchical_remote_tries must be >= 1 (a schedule with no remote "
        "slot can never escape an empty local neighbourhood)");
  }
  if (ws.victim_policy == VictimPolicy::kAdaptive || ws.adaptive_steal_amount) {
    if (!(ws.adapt_decay > 0.0 && ws.adapt_decay <= 1.0)) {
      return support::Status::error(
          "adapt_decay must be in (0, 1] (0 would freeze the EWMAs, > 1 "
          "oscillates)");
    }
  }
  if (ws.victim_policy == VictimPolicy::kAdaptive) {
    if (!(ws.adapt_epsilon > 0.0 && ws.adapt_epsilon <= 1.0)) {
      return support::Status::error(
          "adapt_epsilon must be in (0, 1] under kAdaptive (zero exploration "
          "can starve a down-weighted victim's feedback forever)");
    }
    if (ws.adapt_refresh_interval == 0) {
      return support::Status::error(
          "adapt_refresh_interval must be >= 1 (alias rebuild cadence)");
    }
  }
  if (ws.steal_timeout < 0 || ws.token_timeout < 0) {
    return support::Status::error("timeouts must be >= 0");
  }
  if (fault.drop_prob < 0.0 || fault.drop_prob >= 1.0 ||
      fault.dup_prob < 0.0 || fault.dup_prob >= 1.0) {
    return support::Status::error("fault probabilities must be in [0, 1)");
  }
  if (fault.jitter_frac < 0.0) {
    return support::Status::error("fault.jitter_frac must be >= 0");
  }
  if (fault.degraded_frac < 0.0 || fault.degraded_frac > 1.0) {
    return support::Status::error("fault.degraded_frac must be in [0, 1]");
  }
  if (fault.degraded_mult < 1.0 || fault.straggler_factor < 1.0) {
    return support::Status::error(
        "fault.degraded_mult and fault.straggler_factor must be >= 1");
  }
  if (fault.straggler_ranks > num_ranks || fault.pause_ranks > num_ranks) {
    return support::Status::error(
        "fault straggler/pause rank counts exceed num_ranks");
  }
  if (fault.pause_duration < 0 || fault.pause_window < 0) {
    return support::Status::error("fault pause times must be >= 0");
  }
  if (backend == Backend::kRt) {
    // The native runtime runs real threads over reliable in-process
    // channels: there is no injector to drop/duplicate/perturb, and
    // one-sided steals would need cross-thread access to a private deque.
    if (fault.enabled()) {
      return support::Status::error(
          "fault injection is simulator-only (backend=rt has reliable "
          "in-process channels)");
    }
    if (ws.one_sided_steals) {
      return support::Status::error(
          "one_sided_steals is simulator-only (backend=rt serves requests "
          "at the victim's poll boundaries)");
    }
  }
  if (sim_shards < 1) {
    return support::Status::error("sim_shards must be >= 1");
  }
  if (congestion_scale > 0.0 && !congestion.enabled) {
    // Re-anchoring (run_simulation) only applies the scale when the model is
    // on; a scale without the model would be silently ignored.
    return support::Status::error(
        "congestion_scale > 0 requires congestion.enabled (use "
        "enable_congestion(); a bare scale is silently dead)");
  }
  if (congestion.window < 0) {
    return support::Status::error("congestion.window must be >= 0");
  }
  if (congestion.enabled && congestion.window == 0 &&
      latency.network_base <= 0) {
    return support::Status::error(
        "congestion with the default window needs network_base > 0 (the "
        "window resolves to one network_base)");
  }
  if (sim_shards > 1) {
    // Faults and congestion compose with sharding since their state was
    // de-globalized (per-channel fault keying, windowed congestion ledger —
    // DESIGN.md §12); the native backend stays out because it already runs
    // one real thread per rank.
    if (backend == Backend::kRt) {
      return support::Status::error(
          "sim_shards > 1 is simulator-only (backend=rt already runs one "
          "thread per rank)");
    }
    if (latency.same_blade <= 0 || latency.network_base <= 0) {
      return support::Status::error(
          "sim_shards > 1 needs positive same_blade/network_base latencies "
          "(the conservative lookahead window would be empty)");
    }
  }
  if (svc.enabled) {
    if (backend == Backend::kRt) {
      return support::Status::error(
          "the service layer is simulator-only (backend=rt runs one job)");
    }
    if (ws.one_sided_steals) {
      return support::Status::error(
          "svc rejects one_sided_steals (the job mux delivers everything "
          "through per-binding inboxes; there is no rank-level bypass)");
    }
    if (ws.idle_policy == IdlePolicy::kLifeline) {
      return support::Status::error(
          "svc rejects IdlePolicy::kLifeline (lifeline pushes are reserved "
          "for lease relinquish hand-offs)");
    }
    if (svc.alloc == svc::AllocPolicy::kTimeShare &&
        (ws.victim_policy == VictimPolicy::kAdaptive ||
         ws.adaptive_steal_amount)) {
      return support::Status::error(
          "svc time-sharing rejects adaptive selection/amount switching "
          "(parked ranks refuse every steal, poisoning the feedback EWMAs "
          "with lease noise)");
    }
    if (svc.kind == svc::JobKind::kDag) {
      return support::Status::error(
          "svc.kind=dag is a declared extension seam, not implemented yet");
    }
    if (svc.arrival == svc::ArrivalKind::kPoisson) {
      if (svc.num_jobs < 1) {
        return support::Status::error("svc poisson arrivals need num_jobs >= 1");
      }
      if (svc.mean_interarrival <= 0) {
        return support::Status::error(
            "svc poisson arrivals need mean_interarrival > 0");
      }
    } else {
      if (svc.trace.empty()) {
        return support::Status::error("svc trace arrivals need a non-empty trace");
      }
      for (const auto t : svc.trace) {
        if (t < 0) return support::Status::error("svc trace times must be >= 0");
      }
      if (svc.num_jobs != 0 &&
          svc.num_jobs != static_cast<std::uint32_t>(svc.trace.size())) {
        return support::Status::error(
            "svc.num_jobs must be 0 or match the trace length");
      }
    }
    if (svc.alloc == svc::AllocPolicy::kSpaceShare) {
      if (svc.ranks_per_job < 1 || svc.ranks_per_job > num_ranks) {
        return support::Status::error(
            "svc space sharing needs 1 <= ranks_per_job <= num_ranks");
      }
      if (num_ranks % svc.ranks_per_job != 0) {
        return support::Status::error(
            "svc space sharing needs num_ranks divisible by ranks_per_job "
            "(blocks are fixed-width partitions)");
      }
    }
    for (const auto& entry : svc.mix) {
      if (entry.weight <= 0.0) {
        return support::Status::error("svc job-mix weights must be > 0");
      }
      if (uts::find_tree(entry.tree) == nullptr) {
        return support::Status::error("svc job-mix tree '" + entry.tree +
                                      "' is not in the uts catalogue");
      }
    }
  }
  if (fault.drop_prob > 0.0) {
    // Liveness: a lost steal request/refusal is only recovered by the steal
    // timer, a lost token only by regeneration. Without them a single drop
    // can hang the run.
    if (ws.steal_timeout == 0) {
      return support::Status::error(
          "fault.drop_prob > 0 requires ws.steal_timeout > 0 (lost requests "
          "are recovered by the steal timer)");
    }
    if (num_ranks > 1 && ws.token_timeout == 0) {
      return support::Status::error(
          "fault.drop_prob > 0 requires ws.token_timeout > 0 (a lost "
          "termination token is recovered by regeneration)");
    }
  }
  return support::Status::ok();
}

RunResult run_simulation(const RunConfig& config, RunObserver* observer) {
  DWS_CHECK(config.num_ranks >= 1);
  DWS_CHECK(!config.svc.enabled &&
            "service configs run through svc::run_service");

  topo::JobLayout layout(config.machine, config.num_ranks, config.placement,
                         config.procs_per_node, config.origin_cube);
  topo::LatencyModel latency(layout, config.latency);

  // Re-anchor the congestion capacity when it was requested as a scale of
  // the allocation size and the ranks changed since (sweep axes do this).
  // Resolved before the shard dispatch so the serial and sharded paths run
  // the same model.
  sim::CongestionParams congestion = config.congestion;
  if (congestion.enabled && config.congestion_scale > 0.0) {
    congestion.capacity_hops =
        config.congestion_scale * 5.0 *
        static_cast<double>(config.num_ranks / config.procs_per_node);
  }

  if (config.sim_shards > 1) {
    topo::ShardPartition part =
        topo::partition_ranks(layout, config.latency, config.sim_shards);
    // A one-node job degenerates to one shard; fall through to the
    // single-engine path rather than spinning up the window machinery.
    if (part.num_shards > 1) {
      return run_sharded(config, layout, latency, congestion, std::move(part),
                         observer);
    }
  }

  sim::Engine engine;
  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(config.num_ranks);

  // The injector lives for the whole run; network and workers share it. A
  // null pointer (no faults) keeps the hot paths on their zero-cost branch.
  fault::Injector injector(config.fault, config.num_ranks);
  fault::Injector* faults = injector.enabled() ? &injector : nullptr;

  WsNetwork network(engine, latency, DeliverToWorkers{&workers}, congestion,
                    faults);

  RunContext ctx;
  ctx.engine = &engine;
  ctx.network = &network;
  ctx.config = &config.ws;
  ctx.tree = &config.tree;
  ctx.latency = &latency;
  ctx.num_ranks = config.num_ranks;
  ctx.observer = observer;
  ctx.faults = faults;

  for (topo::Rank r = 0; r < config.num_ranks; ++r) {
    workers.push_back(std::make_unique<Worker>(r, ctx));
  }
  for (topo::Rank r = 0; r < config.num_ranks; ++r) {
    engine.schedule_at(0, *workers[r], sim::EventKind::kWorkerStart, r);
  }

  engine.run();

  // Post-run invariants: the token protocol must have fired, every worker
  // must have drained its stack, and every shipped chunk must have landed.
  DWS_CHECK(ctx.terminated);
  std::uint64_t chunks_sent = 0;
  std::uint64_t chunks_received = 0;
  for (const auto& w : workers) {
    DWS_CHECK(w->done());
    DWS_CHECK(w->stack_size() == 0);
    chunks_sent += w->stats().chunks_sent;
    chunks_received += w->stats().chunks_received;
  }
  DWS_CHECK(chunks_sent == chunks_received);

  RunResult result;
  result.runtime = ctx.termination_time;
  result.num_ranks = config.num_ranks;
  result.per_node_cost = config.ws.node_cost();
  result.per_rank.reserve(config.num_ranks);
  for (const auto& w : workers) {
    result.nodes += w->stats().nodes_processed;
    result.leaves += w->stats().leaves_seen;
    result.per_rank.push_back(w->stats());
  }
  result.stats = metrics::aggregate(result.per_rank);
  result.network = network.stats();
  result.faults = injector.stats();
  result.engine_events = engine.events_executed();
  result.engine_peak_pending = engine.max_pending();
  result.shards_used = 1;
  result.merge_ambiguities = engine.merge_ambiguities();

  if (config.ws.record_trace) {
    result.trace.total_time = ctx.termination_time;
    result.trace.ranks.reserve(config.num_ranks);
    for (const auto& w : workers) result.trace.ranks.push_back(w->trace());
  }
  return result;
}

}  // namespace dws::ws
