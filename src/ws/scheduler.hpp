#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "metrics/rank_stats.hpp"
#include "metrics/service_stats.hpp"
#include "metrics/trace.hpp"
#include "sim/network.hpp"
#include "support/expected.hpp"
#include "svc/params.hpp"
#include "topo/allocation.hpp"
#include "topo/latency.hpp"
#include "topo/tofu.hpp"
#include "uts/params.hpp"
#include "ws/config.hpp"

namespace dws::ws {

/// Which engine executes a RunConfig: the discrete-event simulator (ws) or
/// the native thread-per-rank runtime (rt::run_native). Both speak the same
/// proto::Peer protocol; the backend picks the transport and the clock
/// (DESIGN.md §11). Dispatch lives above this layer (exp::run_backend /
/// audit) so ws itself never links rt.
enum class Backend {
  kSim,  ///< deterministic virtual-time simulation (run_simulation)
  kRt,   ///< real threads, real UTS work, wall-clock time (rt::run_native)
};

const char* to_string(Backend b);

/// Everything identifying one UTS work-stealing execution: the tree, the
/// scheduler knobs, and the machine/job geometry.
struct RunConfig {
  uts::TreeParams tree;
  WsConfig ws;

  topo::TofuMachine machine;  // defaults to the K Computer
  topo::Rank num_ranks = 2;
  topo::Placement placement = topo::Placement::kOnePerNode;
  std::uint32_t procs_per_node = 1;
  std::uint32_t origin_cube = 0;
  topo::LatencyParams latency;
  sim::CongestionParams congestion;

  /// Fault/perturbation model (DESIGN.md §10). Defaults to no faults; when
  /// any knob is active, run_simulation attaches a fault::Injector to the
  /// network and workers. validate() requires the protocol-recovery knobs
  /// (ws.steal_timeout, ws.token_timeout) whenever messages can be lost.
  fault::FaultConfig fault;

  /// Which engine runs this config (sweep axes flip it; the simulator is
  /// the default and fingerprint-neutral choice). run_simulation ignores it
  /// — callers route through exp::run_backend or audit::checked_run.
  Backend backend = Backend::kSim;

  /// Multi-tenant service layer (DESIGN.md §13): when enabled, the run is a
  /// *stream* of jobs arriving over virtual time and sharing the rank pool,
  /// executed by svc::run_service instead of run_simulation (the dispatch
  /// lives in exp::run_backend / audit::checked_run, like `backend`). The
  /// single-job path is the degenerate case and is completely untouched —
  /// svc.enabled==false keeps every golden byte-identical.
  svc::ServiceParams svc;

  /// Shard count for the conservative-parallel simulator core (DESIGN.md
  /// §12): 1 (the default) runs the classic single-engine path; N > 1
  /// partitions the ranks over N engines advancing on real threads under
  /// barrier-synchronized lookahead windows. This is execution strategy, not
  /// simulation identity — results, records and fingerprints are invariant
  /// in the shard count (the differential suite enforces byte-identity), so
  /// sim_shards is excluded from exp::canonical_config. The effective count
  /// is capped at the job's node count. Fault injection (per-channel draw
  /// keying) and congestion (windowed shared ledger) compose with sharding;
  /// validate() rejects the combinations the sharded core cannot split
  /// (backend=rt, zero-latency cross-node tiers).
  std::uint32_t sim_shards = 1;

  /// When > 0, enable_congestion(scale) was called: run_simulation re-anchors
  /// capacity_hops to the *current* ranks/procs at run time, so a sweep axis
  /// that changes num_ranks after the call still gets the right capacity.
  double congestion_scale = 0.0;

  /// Enable the fluid congestion model with capacity anchored to the job's
  /// allocation size (~5 usable links per compute node in the 6D torus).
  /// `scale` > 1 models a fatter network, < 1 a more contended one.
  void enable_congestion(double scale = 1.0) {
    congestion_scale = scale;
    congestion.enabled = true;
    congestion.capacity_hops =
        scale * 5.0 * static_cast<double>(num_ranks / procs_per_node);
  }

  /// Checks everything run_simulation would otherwise abort on mid-run via
  /// DWS_CHECK (plus a few cheap sanity screens): rank/placement mismatch,
  /// zero chunk size, zero alias-table threshold, out-of-machine origin,
  /// supercritical binomial trees, ... Returns the first problem found.
  support::Status validate() const;
};

/// Results of one run: timings, the paper's metrics inputs, and everything
/// the bench harness prints.
struct RunResult {
  support::SimTime runtime = 0;  ///< T: virtual time until global termination
  std::uint64_t nodes = 0;       ///< total tree nodes processed (oracle value)
  std::uint64_t leaves = 0;
  topo::Rank num_ranks = 0;      ///< ranks of the run that produced this

  metrics::JobStats stats;                    ///< aggregated counters
  std::vector<metrics::RankStats> per_rank;   ///< raw per-rank counters
  metrics::JobTrace trace;                    ///< activity trace (if recorded)
  sim::NetworkStats network;
  /// What the fault injector actually did (all zero without faults).
  fault::FaultStats faults;
  std::uint64_t engine_events = 0;
  /// High-water mark of the engine's pending-event queue (calendar depth;
  /// the max over shard engines in a sharded run). Diagnostic only: unlike
  /// every field above it this depends on the execution strategy, which is
  /// why schema v5 dropped it from records.
  std::uint64_t engine_peak_pending = 0;
  /// Shard count the run actually executed with (partitioning caps the
  /// requested sim_shards at the node count).
  std::uint32_t shards_used = 1;
  /// Executed event pairs that tied on the full structural ordering key
  /// (time, t_sched, kind, rank, src) across different origin shards — see
  /// sim::Engine::merge_ambiguities. Structurally impossible by design;
  /// always 0 for single-engine runs and asserted 0 for sharded ones by the
  /// differential suite. Nonzero means a protocol bug.
  std::uint64_t merge_ambiguities = 0;

  support::SimTime per_node_cost = 0;  ///< ws.node_cost() used by the run

  /// Service runs only (svc.enabled): one outcome per job, in job-id order.
  /// `runtime` is then the finish time of the last job, `nodes`/`leaves`/
  /// `stats`/`per_rank` aggregate over the whole stream, and speedup()/
  /// efficiency() measure the stream as a whole.
  std::vector<metrics::JobOutcome> jobs;

  /// Virtual time a single process would need: nodes * per-node cost. This
  /// is the paper's extrapolated T(1) ("all single MPI process executions
  /// ... should have the same speed", §II-B).
  support::SimTime sequential_time() const noexcept {
    return static_cast<support::SimTime>(nodes) * per_node_cost;
  }
  double speedup() const noexcept {
    return runtime > 0 ? static_cast<double>(sequential_time()) /
                             static_cast<double>(runtime)
                       : 0.0;
  }
  double efficiency() const noexcept {
    return num_ranks > 0 ? speedup() / static_cast<double>(num_ranks) : 0.0;
  }
  [[deprecated("num_ranks is stored in RunResult; use efficiency()")]]
  double efficiency(topo::Rank ranks) const noexcept {
    return speedup() / static_cast<double>(ranks);
  }
};

}  // namespace dws::ws

namespace dws::proto {
class RunObserver;
}

namespace dws::ws {
using RunObserver = proto::RunObserver;

/// Execute one full UTS work-stealing run on the simulator. Deterministic:
/// equal RunConfigs produce bit-identical results — with or without an
/// `observer` attached (observers are passive; see observer.hpp and the
/// dws::audit subsystem built on it). Aborts (DWS_CHECK) if the run violates
/// conservation — termination with unfinished work, lost chunks, or a worker
/// left in a non-terminated state.
RunResult run_simulation(const RunConfig& config,
                         RunObserver* observer = nullptr);

}  // namespace dws::ws
