#pragma once

#include <cstdint>
#include <vector>

#include "metrics/rank_stats.hpp"
#include "metrics/trace.hpp"
#include "sim/network.hpp"
#include "topo/allocation.hpp"
#include "topo/latency.hpp"
#include "topo/tofu.hpp"
#include "uts/params.hpp"
#include "ws/config.hpp"

namespace dws::ws {

/// Everything identifying one simulated UTS work-stealing execution: the
/// tree, the scheduler knobs, and the machine/job geometry.
struct RunConfig {
  uts::TreeParams tree;
  WsConfig ws;

  topo::TofuMachine machine;  // defaults to the K Computer
  topo::Rank num_ranks = 2;
  topo::Placement placement = topo::Placement::kOnePerNode;
  std::uint32_t procs_per_node = 1;
  std::uint32_t origin_cube = 0;
  topo::LatencyParams latency;
  sim::CongestionParams congestion;

  /// Enable the fluid congestion model with capacity anchored to the job's
  /// allocation size (~5 usable links per compute node in the 6D torus).
  /// `scale` > 1 models a fatter network, < 1 a more contended one.
  void enable_congestion(double scale = 1.0) {
    congestion.enabled = true;
    congestion.capacity_hops =
        scale * 5.0 * static_cast<double>(num_ranks / procs_per_node);
  }
};

/// Results of one run: timings, the paper's metrics inputs, and everything
/// the bench harness prints.
struct RunResult {
  support::SimTime runtime = 0;  ///< T: virtual time until global termination
  std::uint64_t nodes = 0;       ///< total tree nodes processed (oracle value)
  std::uint64_t leaves = 0;

  metrics::JobStats stats;                    ///< aggregated counters
  std::vector<metrics::RankStats> per_rank;   ///< raw per-rank counters
  metrics::JobTrace trace;                    ///< activity trace (if recorded)
  sim::NetworkStats network;
  std::uint64_t engine_events = 0;

  support::SimTime per_node_cost = 0;  ///< ws.node_cost() used by the run

  /// Virtual time a single process would need: nodes * per-node cost. This
  /// is the paper's extrapolated T(1) ("all single MPI process executions
  /// ... should have the same speed", §II-B).
  support::SimTime sequential_time() const noexcept {
    return static_cast<support::SimTime>(nodes) * per_node_cost;
  }
  double speedup() const noexcept {
    return runtime > 0 ? static_cast<double>(sequential_time()) /
                             static_cast<double>(runtime)
                       : 0.0;
  }
  double efficiency(topo::Rank num_ranks) const noexcept {
    return speedup() / static_cast<double>(num_ranks);
  }
};

/// Execute one full UTS work-stealing run on the simulator. Deterministic:
/// equal RunConfigs produce bit-identical results. Aborts (DWS_CHECK) if the
/// run violates conservation — termination with unfinished work, lost
/// chunks, or a worker left in a non-terminated state.
RunResult run_simulation(const RunConfig& config);

}  // namespace dws::ws
