#include "ws/builder.hpp"

namespace dws::ws {

RunConfigBuilder& RunConfigBuilder::tree(const uts::TreeParams& params) {
  cfg_.tree = params;
  tree_name_.clear();
  return *this;
}

RunConfigBuilder& RunConfigBuilder::tree(std::string_view catalogue_name) {
  tree_name_ = std::string(catalogue_name);
  return *this;
}

RunConfigBuilder& RunConfigBuilder::ranks(topo::Rank n) {
  cfg_.num_ranks = n;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::placement(topo::Placement p,
                                              std::uint32_t procs_per_node) {
  cfg_.placement = p;
  cfg_.procs_per_node = procs_per_node;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::origin_cube(std::uint32_t cube) {
  cfg_.origin_cube = cube;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::machine(const topo::TofuMachine& m) {
  cfg_.machine = m;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::latency(const topo::LatencyParams& p) {
  cfg_.latency = p;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::policy(VictimPolicy p) {
  cfg_.ws.victim_policy = p;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::steal_amount(StealAmount a) {
  cfg_.ws.steal_amount = a;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::chunk_size(std::uint32_t nodes) {
  cfg_.ws.chunk_size = nodes;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::sha_rounds(std::uint32_t rounds) {
  cfg_.ws.sha_rounds = rounds;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::seed(std::uint64_t s) {
  cfg_.ws.seed = s;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::idle_policy(IdlePolicy p) {
  cfg_.ws.idle_policy = p;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::lifeline_tries(std::uint32_t tries) {
  cfg_.ws.lifeline_tries = tries;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::hierarchical_local_tries(
    std::uint32_t tries) {
  cfg_.ws.hierarchical_local_tries = tries;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::hierarchical_remote_tries(
    std::uint32_t tries) {
  cfg_.ws.hierarchical_remote_tries = tries;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::adapt_decay(double step) {
  cfg_.ws.adapt_decay = step;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::adapt_epsilon(double epsilon) {
  cfg_.ws.adapt_epsilon = epsilon;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::adapt_refresh_interval(
    std::uint32_t events) {
  cfg_.ws.adapt_refresh_interval = events;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::adaptive_steal_amount(bool on) {
  cfg_.ws.adaptive_steal_amount = on;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::adapt_yield_threshold(std::uint32_t nodes) {
  cfg_.ws.adapt_yield_threshold = nodes;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::one_sided_steals(bool on) {
  cfg_.ws.one_sided_steals = on;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::record_trace(bool on) {
  cfg_.ws.record_trace = on;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::alias_table_max_ranks(
    std::uint32_t max_ranks) {
  cfg_.ws.alias_table_max_ranks = max_ranks;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::steal_timeout(support::SimTime t) {
  cfg_.ws.steal_timeout = t;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::steal_retry_max(std::uint32_t retries) {
  cfg_.ws.steal_retry_max = retries;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::steal_backoff(double factor) {
  cfg_.ws.steal_backoff = factor;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::token_timeout(support::SimTime t) {
  cfg_.ws.token_timeout = t;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::fault(const fault::FaultConfig& f) {
  cfg_.fault = f;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::congestion(double scale) {
  congestion_scale_ = scale;
  congestion_off_ = false;
  return *this;
}

RunConfigBuilder& RunConfigBuilder::no_congestion() {
  congestion_scale_ = 0.0;
  congestion_off_ = true;
  return *this;
}

RunConfig RunConfigBuilder::build_unchecked() const {
  RunConfig cfg = cfg_;
  if (!tree_name_.empty()) {
    if (const uts::TreeParams* t = uts::find_tree(tree_name_)) cfg.tree = *t;
  }
  if (congestion_off_) {
    cfg.congestion = sim::CongestionParams{};
    cfg.congestion_scale = 0.0;
  } else if (congestion_scale_ > 0.0) {
    cfg.enable_congestion(congestion_scale_);
  }
  return cfg;
}

support::Expected<RunConfig> RunConfigBuilder::build() const {
  if (!tree_name_.empty() && uts::find_tree(tree_name_) == nullptr) {
    return support::Expected<RunConfig>::failure(
        "unknown tree '" + tree_name_ + "' (see uts::catalogue())");
  }
  RunConfig cfg = build_unchecked();
  if (const auto status = cfg.validate(); !status) {
    return support::Expected<RunConfig>::failure(status);
  }
  return cfg;
}

}  // namespace dws::ws
