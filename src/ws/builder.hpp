#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/expected.hpp"
#include "ws/scheduler.hpp"

namespace dws::ws {

/// Fluent construction of RunConfig — the preferred path for new code:
///
///   auto cfg = RunConfigBuilder()
///                  .tree("SIMWL")
///                  .ranks(1024)
///                  .policy(VictimPolicy::kTofuSkewed)
///                  .steal_half()
///                  .congestion(1.0)
///                  .build();
///   if (!cfg) { /* cfg.error() names the offending field */ }
///
/// build() validates (RunConfig::validate) instead of letting a malformed
/// config abort mid-run, and applies order-dependent derivations at the end
/// (the congestion capacity depends on ranks/procs, so `.congestion(1.0)
/// .ranks(4096)` and `.ranks(4096).congestion(1.0)` mean the same thing).
/// Plain aggregate initialization of RunConfig keeps working for existing
/// callers and tests.
class RunConfigBuilder {
 public:
  RunConfigBuilder() = default;
  explicit RunConfigBuilder(RunConfig base) : cfg_(std::move(base)) {}

  RunConfigBuilder& tree(const uts::TreeParams& params);
  /// Catalogue lookup by name; unknown names surface as a build() error.
  RunConfigBuilder& tree(std::string_view catalogue_name);

  RunConfigBuilder& ranks(topo::Rank n);
  RunConfigBuilder& placement(topo::Placement p,
                              std::uint32_t procs_per_node = 1);
  RunConfigBuilder& origin_cube(std::uint32_t cube);
  RunConfigBuilder& machine(const topo::TofuMachine& m);
  RunConfigBuilder& latency(const topo::LatencyParams& p);

  RunConfigBuilder& policy(VictimPolicy p);
  RunConfigBuilder& steal_amount(StealAmount a);
  RunConfigBuilder& steal_half() { return steal_amount(StealAmount::kHalf); }
  RunConfigBuilder& steal_one_chunk() {
    return steal_amount(StealAmount::kOneChunk);
  }
  RunConfigBuilder& chunk_size(std::uint32_t nodes);
  RunConfigBuilder& sha_rounds(std::uint32_t rounds);
  RunConfigBuilder& seed(std::uint64_t s);
  RunConfigBuilder& idle_policy(IdlePolicy p);
  RunConfigBuilder& lifeline_tries(std::uint32_t tries);
  RunConfigBuilder& hierarchical_local_tries(std::uint32_t tries);
  RunConfigBuilder& hierarchical_remote_tries(std::uint32_t tries);
  /// Adaptive policy family (DESIGN.md §14).
  RunConfigBuilder& adapt_decay(double step);
  RunConfigBuilder& adapt_epsilon(double epsilon);
  RunConfigBuilder& adapt_refresh_interval(std::uint32_t events);
  RunConfigBuilder& adaptive_steal_amount(bool on = true);
  RunConfigBuilder& adapt_yield_threshold(std::uint32_t nodes);
  RunConfigBuilder& one_sided_steals(bool on = true);
  RunConfigBuilder& record_trace(bool on);
  RunConfigBuilder& alias_table_max_ranks(std::uint32_t max_ranks);

  /// Steal-protocol robustness knobs (WsConfig; DESIGN.md §10).
  RunConfigBuilder& steal_timeout(support::SimTime t);
  RunConfigBuilder& steal_retry_max(std::uint32_t retries);
  RunConfigBuilder& steal_backoff(double factor);
  RunConfigBuilder& token_timeout(support::SimTime t);

  /// Fault/perturbation model for the run (RunConfig::fault). Individual
  /// knobs are set on the struct; this replaces it wholesale.
  RunConfigBuilder& fault(const fault::FaultConfig& f);

  /// Fluid congestion model, capacity anchored to the final ranks/procs.
  RunConfigBuilder& congestion(double scale = 1.0);
  RunConfigBuilder& no_congestion();

  /// Validated result: the RunConfig, or the first problem found.
  support::Expected<RunConfig> build() const;

  /// The raw config without validation (tests deliberately building broken
  /// configs, callers who will validate later).
  RunConfig build_unchecked() const;

 private:
  RunConfig cfg_;
  std::string tree_name_;        // pending catalogue lookup, "" = none
  double congestion_scale_ = 0;  // > 0: enable at build() time
  bool congestion_off_ = false;
};

}  // namespace dws::ws
