#pragma once

#include "proto/chunk_stack.hpp"

/// Compatibility alias: ChunkStack moved to dws::proto (DESIGN.md §11).
namespace dws::ws {

using proto::ChunkStack;

}  // namespace dws::ws
