#pragma once

#include "topo/partition.hpp"
#include "ws/scheduler.hpp"

namespace dws::ws {

/// Sharded conservative-parallel execution of one RunConfig (DESIGN.md §12).
///
/// Called by run_simulation when the effective shard count is > 1. Builds
/// one sim::Engine + WsNetwork + worker set per shard of `part` (each with
/// its own fault::Injector — per-channel draw keying makes the shard-local
/// injectors collectively byte-equivalent to the serial one), runs the
/// shards on real threads under barrier-synchronized conservative windows of
/// width part.lookahead, and routes cross-shard messages through per-shard-
/// pair mailboxes drained at window boundaries. With congestion enabled, all
/// shards share one CongestionLedger: flight loads are drained into it at
/// the sync barrier in ascending shard order, and the lookahead is clamped
/// to the congestion window so reads only ever hit sealed boundaries. For
/// every configuration validate() admits, the RunResult (and hence any exp
/// record cut from it) is byte-identical to the single-engine path — the
/// differential suite in tests/audit enforces this at shard counts
/// {1, 2, 4, 8}, including fault- and congestion-enabled configs.
///
/// `layout` and `latency` are the run's shared immutable geometry, and
/// `congestion` the caller-resolved (re-anchored) congestion model; shard
/// threads only read them.
RunResult run_sharded(const RunConfig& config, const topo::JobLayout& layout,
                      const topo::LatencyModel& latency,
                      sim::CongestionParams congestion,
                      topo::ShardPartition part, RunObserver* observer);

}  // namespace dws::ws
