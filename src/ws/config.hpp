#pragma once

#include "proto/config.hpp"

/// Compatibility aliases: scheduler knobs and policy enums moved to
/// dws::proto (the transport-agnostic steal-protocol core; DESIGN.md §11) —
/// the same WsConfig drives the simulator (ws) and native (rt) backends.
namespace dws::ws {

using proto::VictimPolicy;
using proto::StealAmount;
using proto::IdlePolicy;
using proto::WsConfig;
using proto::to_string;

}  // namespace dws::ws
