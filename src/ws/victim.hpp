#pragma once

#include "proto/victim.hpp"

/// Compatibility aliases: victim selectors moved to dws::proto (DESIGN.md
/// §11); both backends draw victims from the same selector objects.
namespace dws::ws {

using proto::VictimSelector;
using proto::RoundRobinSelector;
using proto::UniformRandomSelector;
using proto::TofuSkewedSelector;
using proto::HierarchicalSelector;
using proto::AdaptiveSkewedSelector;
using proto::make_selector;
using proto::tofu_uses_alias;

}  // namespace dws::ws
