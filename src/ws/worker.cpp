#include "ws/worker.hpp"

#include <utility>

#include "support/check.hpp"
#include "ws/observer.hpp"

namespace dws::ws {

void DeliverToWorkers::operator()(topo::Rank dst, Message msg) const {
  (*workers)[dst]->on_message(std::move(msg));
}

Worker::Worker(topo::Rank rank, RunContext& ctx)
    : rank_(rank),
      ctx_(ctx),
      peer_(*ctx.config,
            proto::Peer::Params{rank, ctx.num_ranks, ctx.faults != nullptr},
            ctx.latency, *this, ctx.observer) {
  per_node_cost_ = ctx_.config->node_cost();
  if (ctx_.faults != nullptr) {
    per_node_cost_ = ctx_.faults->scaled_node_cost(rank_, per_node_cost_);
  }
}

// ---- proto::Transport ------------------------------------------------------

void Worker::send(topo::Rank to, Message msg, std::uint32_t bytes,
                  fault::MsgClass cls) {
  ctx_.network->send(rank_, to, std::move(msg), bytes, cls);
}

void Worker::send_deferred(support::SimTime delay, topo::Rank to,
                           StealResponse resp, std::uint32_t bytes,
                           fault::MsgClass cls) {
  // Packaging happens at a poll boundary; the response enters the network
  // once this and the previously drained requests have been serviced.
  const std::uint32_t handle =
      ctx_.deferred.acquire(PendingSend{std::move(resp), to, bytes, cls});
  ctx_.engine->schedule_after(delay, *this, sim::EventKind::kDeferredResponse,
                              rank_, handle);
}

void Worker::arm_steal_timer(support::SimTime delay,
                             std::uint32_t request_id) {
  ctx_.engine->schedule_after(delay, *this, sim::EventKind::kStealTimeout,
                              rank_, request_id);
}

void Worker::arm_token_timer(support::SimTime delay,
                             std::uint32_t generation) {
  ctx_.engine->schedule_after(delay, *this, sim::EventKind::kTokenTimeout,
                              rank_, generation);
}

void Worker::activated() { schedule_step(); }

void Worker::terminated(support::SimTime at) {
  DWS_CHECK(!ctx_.terminated);
  ctx_.terminated = true;
  ctx_.termination_time = at;
}

// ---- Event-loop binding ----------------------------------------------------

void Worker::on_event(const sim::Event& ev) {
  switch (ev.kind) {
    case sim::EventKind::kWorkerStart:
      start();
      break;
    case sim::EventKind::kWorkerStep:
      step();
      break;
    case sim::EventKind::kDeferredResponse: {
      // Packaging delay served: the response enters the network now.
      PendingSend send = ctx_.deferred.take(ev.payload);
      ctx_.network->send(rank_, send.thief, std::move(send.resp), send.bytes,
                         send.cls);
      break;
    }
    case sim::EventKind::kStealTimeout:
      peer_.on_steal_timeout(ev.payload, ctx_.engine->now());
      break;
    case sim::EventKind::kTokenTimeout:
      peer_.on_token_timeout(ev.payload, ctx_.engine->now());
      break;
    default:
      DWS_CHECK(false);
  }
}

void Worker::start() {
  DWS_CHECK(ctx_.engine->now() == 0);
  if (rank_ == 0) {
    peer_.seed_root(uts::root_node(*ctx_.tree));
  } else {
    peer_.on_out_of_work(0);
  }
}

void Worker::schedule_step() {
  if (step_scheduled_ || !peer_.active()) return;
  step_scheduled_ = true;
  // A step event fires at a node boundary; the work's cost is charged when
  // the next boundary is scheduled, so the first boundary is "now".
  ctx_.engine->schedule_after(0, *this, sim::EventKind::kWorkerStep, rank_);
}

void Worker::step() {
  step_scheduled_ = false;
  if (!peer_.active()) return;

  // Poll boundary: serve whatever arrived while we were expanding.
  const support::SimTime busy = drain_inbox();
  if (!peer_.active()) return;  // a drained Terminate ended the run

  proto::ChunkStack& stack = peer_.stack();
  if (stack.empty()) {
    // The previous node's work ended exactly at this boundary.
    peer_.on_out_of_work(ctx_.engine->now());
    return;
  }

  // Expand up to poll_interval nodes; their work occupies [now, now + cost],
  // so the next poll boundary lands at the end of it (plus time spent
  // packaging steal responses just now).
  metrics::RankStats& stats = peer_.stats();
  support::SimTime cost = 0;
  for (std::uint32_t i = 0; i < ctx_.config->poll_interval; ++i) {
    const auto node = stack.pop();
    if (!node.has_value()) break;
    ++stats.nodes_processed;
    const std::uint32_t n = uts::num_children(*ctx_.tree, *node);
    if (ctx_.observer) ctx_.observer->on_node_expanded(rank_, *node, n);
    if (n == 0) {
      ++stats.leaves_seen;
    } else {
      for (std::uint32_t c = 0; c < n; ++c) {
        stack.push(uts::child_node(*node, c));
      }
    }
    cost += per_node_cost_;
  }

  // Transient pause (fault injection): the rank stalls once, at the first
  // step boundary past the pause's scheduled start. Idle ranks are already
  // stalled from the work's point of view, so only active time is charged.
  if (ctx_.faults != nullptr && !pause_taken_) {
    if (const auto at = ctx_.faults->pause_start(rank_);
        at.has_value() && ctx_.engine->now() >= *at) {
      pause_taken_ = true;
      cost += ctx_.faults->config().pause_duration;
    }
  }

  // Lifeline extension: surplus generated by this expansion feeds dormant
  // dependents at the same poll boundary, charged like steal packaging.
  if (peer_.has_dependents()) {
    cost += ctx_.config->steal_handling_cost *
            static_cast<support::SimTime>(
                peer_.feed_lifeline_dependents(ctx_.engine->now()));
  }

  step_scheduled_ = true;
  ctx_.engine->schedule_after(busy + cost, *this, sim::EventKind::kWorkerStep,
                              rank_);
}

support::SimTime Worker::drain_inbox() {
  support::SimTime busy = 0;
  // Index-based iteration keeps us safe against vector reallocation.
  for (std::size_t i = 0; i < inbox_.size(); ++i) {
    if (peer_.done()) break;  // a drained Terminate ends everything
    Message msg = std::move(inbox_[i]);
    if (const auto* req = std::get_if<StealRequest>(&msg)) {
      busy += ctx_.config->steal_handling_cost;
      peer_.on_steal_request(*req, ctx_.engine->now(), busy);
    } else {
      peer_.on_message(std::move(msg), ctx_.engine->now());
    }
  }
  inbox_.clear();
  return busy;
}

void Worker::on_message(Message msg) {
  if (peer_.done()) return;
  if (peer_.active()) {
    // One-sided steals bypass the victim's polling loop entirely: the
    // request is serviced at arrival, off the victim's critical path.
    if (ctx_.config->one_sided_steals) {
      if (const auto* req = std::get_if<StealRequest>(&msg)) {
        peer_.on_steal_request(*req, ctx_.engine->now(), 0);
        return;
      }
    }
    // Mid-expansion: messages wait for the next poll boundary, exactly like
    // MPI messages wait for the reference implementation's next MPI_Iprobe.
    inbox_.push_back(std::move(msg));
    return;
  }
  // Idle ranks sit in the steal/wait loop and react immediately.
  peer_.on_message(std::move(msg), ctx_.engine->now());
}

}  // namespace dws::ws
