#include "ws/worker.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"
#include "ws/observer.hpp"

namespace dws::ws {

// ---------------------------------------------------------------------------
// Termination detection.
//
// Token ring 0 -> 1 -> ... -> N-1 -> 0. Rank 0 launches a probe whenever it is
// idle and no probe is circulating. A rank holding the token forwards it only
// while idle, adding its color and its cumulative counters of work-carrying
// messages sent/received, then turns white. Two rules blacken the protocol:
//
//  (1) Color (Dijkstra-style, conservative): ANY rank that ships work turns
//      black until its next token forward. This is strictly stronger than the
//      classic "send to a lower rank" rule, so every interleaving the classic
//      rule flags, this flags too.
//  (2) Counting (Mattern-style): the probe also fails when the accumulated
//      sent != received — which is exactly the case of a work message still
//      in flight when the token passed both endpoints white (the known gap
//      of color-only schemes under asynchronous delivery).
//
// Rank 0 declares termination iff the returning token is white, rank 0 is
// itself white and idle, and sent == recv. The test suite backs this with a
// conservation oracle (total nodes processed == sequential tree size, and
// chunks sent == chunks received) over hundreds of randomized runs.
// ---------------------------------------------------------------------------

void DeliverToWorkers::operator()(topo::Rank dst, Message msg) const {
  (*workers)[dst]->on_message(std::move(msg));
}

void Worker::on_event(const sim::Event& ev) {
  switch (ev.kind) {
    case sim::EventKind::kWorkerStart:
      start();
      break;
    case sim::EventKind::kWorkerStep:
      step();
      break;
    case sim::EventKind::kDeferredResponse: {
      // Packaging delay served: the response enters the network now.
      PendingSend send = ctx_.deferred.take(ev.payload);
      ctx_.network->send(rank_, send.thief, std::move(send.resp), send.bytes,
                        send.cls);
      break;
    }
    case sim::EventKind::kStealTimeout:
      handle_steal_timeout(ev.payload);
      break;
    case sim::EventKind::kTokenTimeout:
      handle_token_timeout(ev.payload);
      break;
    default:
      DWS_CHECK(false);
  }
}

Worker::Worker(topo::Rank rank, RunContext& ctx)
    : rank_(rank),
      ctx_(ctx),
      stack_(ctx.config->chunk_size),
      selector_(ctx.num_ranks > 1 ? make_selector(*ctx.config, rank, *ctx.latency)
                                  : nullptr),
      trace_(metrics::Phase::kIdle, 0) {
  per_node_cost_ = ctx_.config->node_cost();
  if (ctx_.faults != nullptr) {
    per_node_cost_ = ctx_.faults->scaled_node_cost(rank_, per_node_cost_);
  }
  if (ctx_.config->idle_policy == IdlePolicy::kLifeline) {
    // Lifeline graph: hypercube buddies (Saraswat et al.) — rank ^ 2^k for
    // every bit position that stays inside the job.
    for (std::uint32_t bit = 1; bit < ctx_.num_ranks; bit <<= 1) {
      const topo::Rank buddy = rank_ ^ bit;
      if (buddy < ctx_.num_ranks) lifeline_targets_.push_back(buddy);
    }
  }
}

void Worker::record_phase(support::SimTime t, metrics::Phase p) {
  trace_.record(t, p);
  if (ctx_.observer) ctx_.observer->on_phase(rank_, t, p);
}

void Worker::start() {
  DWS_CHECK(ctx_.engine->now() == 0);
  if (rank_ == 0) {
    const uts::TreeNode root = uts::root_node(*ctx_.tree);
    stack_.push(root);
    if (ctx_.observer) ctx_.observer->on_root(rank_, root);
    state_ = State::kActive;
    record_phase(0, metrics::Phase::kActive);
    schedule_step();
  } else {
    enter_idle();
  }
}

void Worker::schedule_step() {
  if (step_scheduled_ || state_ != State::kActive) return;
  step_scheduled_ = true;
  // A step event fires at a node boundary; the work's cost is charged when
  // the next boundary is scheduled, so the first boundary is "now".
  ctx_.engine->schedule_after(0, *this, sim::EventKind::kWorkerStep, rank_);
}

void Worker::step() {
  step_scheduled_ = false;
  if (state_ != State::kActive) return;

  // Poll boundary: serve whatever arrived while we were expanding.
  const support::SimTime busy = drain_inbox();
  if (state_ != State::kActive) return;  // a drained Terminate ended the run

  if (stack_.empty()) {
    // The previous node's work ended exactly at this boundary.
    enter_idle();
    return;
  }

  // Expand up to poll_interval nodes; their work occupies [now, now + cost],
  // so the next poll boundary lands at the end of it (plus time spent
  // packaging steal responses just now).
  support::SimTime cost = 0;
  for (std::uint32_t i = 0; i < ctx_.config->poll_interval; ++i) {
    const auto node = stack_.pop();
    if (!node.has_value()) break;
    ++stats_.nodes_processed;
    const std::uint32_t n = uts::num_children(*ctx_.tree, *node);
    if (ctx_.observer) ctx_.observer->on_node_expanded(rank_, *node, n);
    if (n == 0) {
      ++stats_.leaves_seen;
    } else {
      for (std::uint32_t c = 0; c < n; ++c) {
        stack_.push(uts::child_node(*node, c));
      }
    }
    cost += per_node_cost_;
  }

  // Transient pause (fault injection): the rank stalls once, at the first
  // step boundary past the pause's scheduled start. Idle ranks are already
  // stalled from the work's point of view, so only active time is charged.
  if (ctx_.faults != nullptr && !pause_taken_) {
    if (const auto at = ctx_.faults->pause_start(rank_);
        at.has_value() && ctx_.engine->now() >= *at) {
      pause_taken_ = true;
      cost += ctx_.faults->config().pause_duration;
    }
  }

  // Lifeline extension: surplus generated by this expansion feeds dormant
  // dependents at the same poll boundary, charged like steal packaging.
  if (!registered_dependents_.empty()) {
    const std::size_t before = registered_dependents_.size();
    feed_lifeline_dependents();
    cost += ctx_.config->steal_handling_cost *
            static_cast<support::SimTime>(before - registered_dependents_.size());
  }

  step_scheduled_ = true;
  ctx_.engine->schedule_after(busy + cost, *this, sim::EventKind::kWorkerStep,
                              rank_);
}

support::SimTime Worker::drain_inbox() {
  support::SimTime busy = 0;
  // Index-based iteration keeps us safe against vector reallocation.
  for (std::size_t i = 0; i < inbox_.size(); ++i) {
    if (state_ == State::kDone) break;  // a drained Terminate ends everything
    Message msg = std::move(inbox_[i]);
    if (const auto* req = std::get_if<StealRequest>(&msg)) {
      busy += ctx_.config->steal_handling_cost;
      handle_steal_request(*req, busy);
    } else {
      handle(std::move(msg));
    }
  }
  inbox_.clear();
  return busy;
}

void Worker::on_message(Message msg) {
  if (state_ == State::kDone) return;
  if (state_ == State::kActive) {
    // One-sided steals bypass the victim's polling loop entirely: the
    // request is serviced at arrival, off the victim's critical path.
    if (ctx_.config->one_sided_steals) {
      if (const auto* req = std::get_if<StealRequest>(&msg)) {
        handle_steal_request(*req, 0);
        return;
      }
    }
    // Mid-expansion: messages wait for the next poll boundary, exactly like
    // MPI messages wait for the reference implementation's next MPI_Iprobe.
    inbox_.push_back(std::move(msg));
    return;
  }
  // Idle ranks sit in the steal/wait loop and react immediately.
  handle(std::move(msg));
}

void Worker::handle(Message msg) {
  std::visit(
      [this](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, StealRequest>) {
          handle_steal_request(m, 0);
        } else if constexpr (std::is_same_v<T, StealResponse>) {
          handle_steal_response(std::move(m));
        } else if constexpr (std::is_same_v<T, Token>) {
          handle_token(m);
        } else if constexpr (std::is_same_v<T, LifelineRegister>) {
          handle_lifeline_register(m);
        } else if constexpr (std::is_same_v<T, LifelinePush>) {
          receive_pushed_work(std::move(m.chunks));
        } else {
          static_assert(std::is_same_v<T, Terminate>);
          // A rank with local work can never observe global termination —
          // the token rules above make this impossible; the check makes a
          // protocol bug loud instead of silently dropping work.
          DWS_CHECK(state_ != State::kActive);
          finish(ctx_.engine->now());
        }
      },
      std::move(msg));
}

void Worker::handle_steal_request(const StealRequest& req,
                                  support::SimTime send_delay) {
  if (ctx_.faults != nullptr) {
    // A network-duplicated request must not be answered twice: the thief
    // would discard the second response as a duplicate, losing any work it
    // carried. Ids on the (thief -> victim) channel arrive non-decreasing
    // (non-overtaking), so a repeat id is exactly a duplicate.
    const auto [it, inserted] =
        last_request_seen_.try_emplace(req.thief, req.request_id);
    if (!inserted) {
      if (req.request_id <= it->second) return;
      it->second = req.request_id;
    }
  }
  ++stats_.requests_served;
  const bool steal_half = ctx_.config->steal_amount == StealAmount::kHalf;
  const std::size_t k = stack_.chunks_for_steal(steal_half);

  StealResponse resp;
  resp.request_id = req.request_id;
  std::uint32_t bytes = ctx_.config->response_header_bytes;
  std::uint64_t nodes_sent = 0;
  if (k > 0) {
    resp.chunks = stack_.steal(k);
    stats_.chunks_sent += k;
    for (const auto& chunk : resp.chunks) {
      nodes_sent += chunk.size();
      bytes += static_cast<std::uint32_t>(chunk.size()) * ctx_.config->node_bytes;
    }
    black_ = true;  // rule (1): shipping work blackens the victim
    ++work_msgs_sent_;
  }

  const topo::Rank thief = req.thief;
  // Refusals are recoverable (the thief's timeout re-drives the steal), so
  // they may be dropped; work-carrying responses must never be — there is no
  // retransmission path for the nodes they carry (fault::MsgClass).
  const fault::MsgClass cls =
      k > 0 ? fault::MsgClass::kDupOnly : fault::MsgClass::kDroppable;
  if (ctx_.observer) {
    ctx_.observer->on_steal_response_sent(rank_, thief, k, nodes_sent, bytes);
  }
  if (send_delay == 0) {
    ctx_.network->send(rank_, thief, std::move(resp), bytes, cls);
  } else {
    // Packaging happens at a poll boundary; the response leaves once this
    // and the previously drained requests have been serviced.
    const std::uint32_t handle =
        ctx_.deferred.acquire(PendingSend{std::move(resp), thief, bytes, cls});
    ctx_.engine->schedule_after(send_delay, *this,
                                sim::EventKind::kDeferredResponse, rank_,
                                handle);
  }
}

void Worker::handle_steal_response(StealResponse resp) {
  // Normally responses find us idle and waiting, but under kLifeline a push
  // can reactivate us while a steal request is still in flight, so the
  // response may also land mid-expansion (via the inbox). Under
  // steal_timeout the response can also answer a request we already
  // abandoned, and under fault injection it can be a network duplicate of
  // an answer we already consumed — the id disambiguates.
  const bool current =
      waiting_response_ && resp.request_id == current_request_id_;
  topo::Rank victim = request_victim_;
  if (current) {
    waiting_response_ = false;
    stats_.total_search_time += ctx_.engine->now() - request_sent_;
  } else {
    const auto it = std::find_if(
        abandoned_requests_.begin(), abandoned_requests_.end(),
        [&](const AbandonedRequest& a) { return a.id == resp.request_id; });
    if (it == abandoned_requests_.end()) {
      // Network duplicate of an already-consumed response. Its chunks (if
      // any) are copies of work already installed, so discarding conserves.
      DWS_CHECK(ctx_.faults != nullptr &&
                "steal response without an outstanding request");
      std::uint64_t nodes = 0;
      for (const auto& chunk : resp.chunks) nodes += chunk.size();
      ++stats_.duplicate_responses;
      if (ctx_.observer) {
        ctx_.observer->on_duplicate_response(rank_, resp.chunks.size(), nodes);
      }
      return;
    }
    victim = it->victim;
    abandoned_requests_.erase(it);
  }

  if (ctx_.observer) {
    std::uint64_t nodes_received = 0;
    for (const auto& chunk : resp.chunks) nodes_received += chunk.size();
    ctx_.observer->on_steal_response_received(rank_, victim,
                                              resp.chunks.size(),
                                              nodes_received);
  }

  if (resp.chunks.empty()) {
    if (!current) return;  // the timeout already drove the steal loop on
    ++stats_.failed_steals;
    if (state_ != State::kIdle) return;  // reactivated meanwhile: drop it
    if (ctx_.config->idle_policy == IdlePolicy::kLifeline &&
        ++session_failures_ >= ctx_.config->lifeline_tries) {
      register_on_lifelines();
      return;
    }
    try_steal();
    return;
  }

  // A late answer to an abandoned request still carries real work — the
  // victim gave those nodes away; bank them exactly like a current answer.
  ++work_msgs_recv_;
  ++stats_.successful_steals;
  stats_.chunks_received += resp.chunks.size();
  stats_.steal_distance_sum += ctx_.latency->euclidean(rank_, victim);
  stack_.install(std::move(resp.chunks));
  if (state_ != State::kIdle) return;  // already active: just keep the work

  // Work-discovery session ends with work in the queue.
  stats_.total_session_time += ctx_.engine->now() - session_start_;
  state_ = State::kActive;
  record_phase(ctx_.engine->now(), metrics::Phase::kActive);
  schedule_step();
}

void Worker::handle_steal_timeout(std::uint32_t request_id) {
  if (state_ == State::kDone) return;
  // Stale timer: the answer arrived (or an earlier timeout already fired).
  if (!waiting_response_ || current_request_id_ != request_id) return;
  // The request or its answer is presumed lost. Abandon it — but remember
  // the id: a late work-carrying answer must still be banked, not dropped.
  waiting_response_ = false;
  abandoned_requests_.push_back(AbandonedRequest{request_id, request_victim_});
  ++stats_.steal_timeouts;
  stats_.total_search_time += ctx_.engine->now() - request_sent_;
  if (ctx_.observer) {
    ctx_.observer->on_steal_timeout(rank_, request_victim_, retry_attempt_);
  }
  if (state_ != State::kIdle) return;  // reactivated meanwhile: nothing to do
  if (retry_attempt_ < ctx_.config->steal_retry_max) {
    // Same victim, exponentially longer timer (send_steal_request scales by
    // steal_backoff^retry_attempt_).
    ++retry_attempt_;
    ++stats_.steal_retries;
    send_steal_request(request_victim_);
    return;
  }
  retry_attempt_ = 0;
  if (ctx_.config->idle_policy == IdlePolicy::kLifeline &&
      ++session_failures_ >= ctx_.config->lifeline_tries) {
    register_on_lifelines();
    return;
  }
  try_steal();
}

void Worker::handle_lifeline_register(const LifelineRegister& reg) {
  // A buddy with surplus feeds the dependent right away; otherwise the
  // registration parks until this rank has stealable chunks again.
  if (stack_.stealable_chunks() > 0) {
    const bool steal_half = ctx_.config->steal_amount == StealAmount::kHalf;
    const std::size_t k = stack_.chunks_for_steal(steal_half);
    LifelinePush push;
    push.chunks = stack_.steal(k);
    std::uint32_t bytes = ctx_.config->response_header_bytes;
    std::uint64_t nodes_sent = 0;
    for (const auto& chunk : push.chunks) {
      nodes_sent += chunk.size();
      bytes += static_cast<std::uint32_t>(chunk.size()) * ctx_.config->node_bytes;
    }
    stats_.chunks_sent += k;
    ++stats_.lifeline_pushes;
    black_ = true;
    ++work_msgs_sent_;
    if (ctx_.observer) {
      ctx_.observer->on_lifeline_push_sent(rank_, reg.dependent, k, nodes_sent,
                                           bytes);
    }
    ctx_.network->send(rank_, reg.dependent, std::move(push), bytes);
    return;
  }
  for (const topo::Rank r : registered_dependents_) {
    if (r == reg.dependent) return;  // duplicate registration
  }
  registered_dependents_.push_back(reg.dependent);
}

void Worker::receive_pushed_work(std::vector<Chunk> chunks) {
  DWS_CHECK(!chunks.empty());
  ++work_msgs_recv_;
  stats_.chunks_received += chunks.size();
  if (ctx_.observer) {
    std::uint64_t nodes_received = 0;
    for (const auto& chunk : chunks) nodes_received += chunk.size();
    ctx_.observer->on_lifeline_push_received(rank_, chunks.size(),
                                             nodes_received);
  }
  stack_.install(std::move(chunks));
  if (state_ != State::kIdle) return;  // already busy: surplus joins the stack

  dormant_ = false;
  session_failures_ = 0;
  stats_.total_session_time += ctx_.engine->now() - session_start_;
  state_ = State::kActive;
  record_phase(ctx_.engine->now(), metrics::Phase::kActive);
  schedule_step();
}

void Worker::register_on_lifelines() {
  DWS_CHECK(state_ == State::kIdle);
  dormant_ = true;
  ++stats_.lifeline_registrations;
  for (const topo::Rank buddy : lifeline_targets_) {
    if (ctx_.observer) {
      ctx_.observer->on_lifeline_register_sent(
          rank_, buddy, ctx_.config->steal_request_bytes);
    }
    ctx_.network->send(rank_, buddy, LifelineRegister{rank_},
                       ctx_.config->steal_request_bytes);
  }
}

void Worker::feed_lifeline_dependents() {
  while (!registered_dependents_.empty() && stack_.stealable_chunks() > 0) {
    const topo::Rank dependent = registered_dependents_.back();
    registered_dependents_.pop_back();
    handle_lifeline_register(LifelineRegister{dependent});
  }
}

void Worker::handle_token(Token token) {
  if (rank_ == 0) {
    // Generation filter: only the probe we are actually waiting for counts.
    // Anything else is a stale survivor of a regenerated circulation or a
    // network duplicate; acting on it would be unsound.
    if (!token_outstanding_ || token.generation != token_generation_) return;
    token_outstanding_ = false;
    if (ctx_.observer) ctx_.observer->on_token_accepted(rank_, token);
    const bool quiet = !token.black && !black_ && state_ == State::kIdle &&
                       token.sent == token.recv;
    if (quiet) {
      declare_termination();
      return;
    }
    // Failed probe: relaunch once idle (immediately if already idle).
    if (state_ == State::kIdle) send_token(black_);
    return;
  }
  // Generations on the ring channel arrive non-decreasing (non-overtaking
  // and rank 0 launches them in order), so a non-increase is a stale token
  // or a duplicate: discard.
  if (token.generation <= max_token_gen_seen_) return;
  max_token_gen_seen_ = token.generation;
  if (state_ == State::kIdle) {
    send_token(token.black || black_, token.sent, token.recv,
               token.generation);
  } else {
    // A newer generation supersedes any held (now stale) token.
    holds_token_ = true;
    held_token_ = token;
  }
}

void Worker::send_token(bool black, std::uint64_t sent_acc,
                        std::uint64_t recv_acc, std::uint32_t generation) {
  Token t;
  t.black = black;
  t.sent = sent_acc + work_msgs_sent_;
  t.recv = recv_acc + work_msgs_recv_;
  black_ = false;  // forwarding whitens the forwarder
  if (rank_ == 0) {
    // Launch: stamp a fresh circulation and, with token_timeout armed, a
    // timer that regenerates the probe if it never comes home.
    t.generation = ++token_generation_;
    token_outstanding_ = true;
    if (ctx_.config->token_timeout > 0) {
      ctx_.engine->schedule_after(ctx_.config->token_timeout, *this,
                                  sim::EventKind::kTokenTimeout, rank_,
                                  t.generation);
    }
  } else {
    t.generation = generation;
  }
  const topo::Rank next = (rank_ + 1) % ctx_.num_ranks;
  if (ctx_.observer) ctx_.observer->on_token_sent(rank_, next, t);
  ctx_.network->send(rank_, next, t, ctx_.config->token_bytes,
                     fault::MsgClass::kDroppable);
}

void Worker::handle_token_timeout(std::uint32_t generation) {
  if (state_ == State::kDone) return;
  DWS_CHECK(rank_ == 0);
  // The probe came home (or a newer one is out): stale timer.
  if (!token_outstanding_ || generation != token_generation_) return;
  // The token is presumed lost somewhere on the ring. Regenerate it with
  // the next generation — survivors of this one die at the generation
  // filters, and Mattern counting restarts with the fresh circulation.
  token_outstanding_ = false;
  ++stats_.token_regens;
  if (ctx_.observer) ctx_.observer->on_token_regenerated(rank_, generation);
  if (state_ == State::kIdle) {
    send_token(black_);
  }
  // If active, enter_idle() relaunches as usual when rank 0 next goes idle.
}

void Worker::enter_idle() {
  state_ = State::kIdle;
  dormant_ = false;
  session_failures_ = 0;
  const support::SimTime now = ctx_.engine->now();
  record_phase(now, metrics::Phase::kIdle);
  ++stats_.sessions;
  session_start_ = now;

  if (ctx_.num_ranks == 1) {
    // Nobody to steal from: exhausting local work IS global termination.
    declare_termination();
    return;
  }
  if (holds_token_) {
    const Token t = held_token_;
    holds_token_ = false;
    send_token(t.black || black_, t.sent, t.recv, t.generation);
  }
  if (rank_ == 0 && !token_outstanding_) {
    send_token(black_);
  }
  // A steal request may still be in flight from before a lifeline push
  // reactivated us; its response restarts the steal loop when it arrives.
  if (!waiting_response_) try_steal();
}

void Worker::try_steal() {
  DWS_CHECK(state_ == State::kIdle);
  DWS_CHECK(!waiting_response_);
  const topo::Rank victim = selector_->next();
  DWS_DCHECK(victim != rank_);
  retry_attempt_ = 0;
  send_steal_request(victim);
}

void Worker::send_steal_request(topo::Rank victim) {
  ++stats_.steal_attempts;
  waiting_response_ = true;
  request_sent_ = ctx_.engine->now();
  request_victim_ = victim;
  current_request_id_ = ++next_request_id_;
  if (ctx_.observer) {
    ctx_.observer->on_steal_request_sent(rank_, victim,
                                         ctx_.config->steal_request_bytes);
  }
  ctx_.network->send(rank_, victim, StealRequest{rank_, current_request_id_},
                     ctx_.config->steal_request_bytes,
                     fault::MsgClass::kDroppable);
  if (ctx_.config->steal_timeout > 0) {
    // Exponential backoff: the k-th retry waits steal_timeout * backoff^k.
    // Repeated multiplication, not std::pow — libm results vary across
    // platforms and the wait feeds the deterministic event order.
    double wait = static_cast<double>(ctx_.config->steal_timeout);
    for (std::uint32_t k = 0; k < retry_attempt_; ++k) {
      wait *= ctx_.config->steal_backoff;
    }
    ctx_.engine->schedule_after(static_cast<support::SimTime>(wait), *this,
                                sim::EventKind::kStealTimeout, rank_,
                                current_request_id_);
  }
}

void Worker::declare_termination() {
  DWS_CHECK(rank_ == 0);
  DWS_CHECK(!ctx_.terminated);
  ctx_.terminated = true;
  ctx_.termination_time = ctx_.engine->now();
  if (ctx_.observer) ctx_.observer->on_termination(ctx_.termination_time);
  for (topo::Rank r = 1; r < ctx_.num_ranks; ++r) {
    ctx_.network->send(0, r, Terminate{}, ctx_.config->token_bytes);
  }
  finish(ctx_.engine->now());
}

void Worker::finish(support::SimTime at) {
  // Open sessions/searches end at termination (paper §IV-B: a session "ends
  // with either work in the queue or application termination").
  if (state_ == State::kIdle) {
    stats_.total_session_time += at - session_start_;
    if (waiting_response_) {
      stats_.total_search_time += at - request_sent_;
      waiting_response_ = false;
    }
  }
  state_ = State::kDone;
  stats_.finish_time = at;
  if (ctx_.observer) ctx_.observer->on_finish(rank_, at);
}

}  // namespace dws::ws
