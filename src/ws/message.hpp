#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "topo/allocation.hpp"
#include "uts/node.hpp"

namespace dws::ws {

/// A chunk of work items — the steal granularity unit (§II-A: "a thief will
/// steal a single chunk of nodes instead of a single node").
using Chunk = std::vector<uts::TreeNode>;

/// Thief -> victim: ask for work.
struct StealRequest {
  topo::Rank thief;
};

/// Victim -> thief: the answer. Empty `chunks` is a refusal (a failed steal
/// in the paper's statistics).
struct StealResponse {
  std::vector<Chunk> chunks;
};

/// Termination-detection token circulating the ring 0 -> 1 -> ... -> N-1 -> 0.
/// Carries a Dijkstra-style color plus cumulative work-message counters
/// (Mattern-style counting handles messages still in flight when the token
/// passes; see worker.cpp for the combined rule).
struct Token {
  bool black = false;
  std::uint64_t sent = 0;  ///< cumulative work-carrying responses sent
  std::uint64_t recv = 0;  ///< cumulative work-carrying responses received
};

/// Rank 0 -> everyone: all work is globally exhausted, stop.
struct Terminate {};

/// Dormant thief -> lifeline buddy: "push me work when you have surplus"
/// (IdlePolicy::kLifeline).
struct LifelineRegister {
  topo::Rank dependent;
};

/// Lifeline buddy -> dormant thief: unsolicited work delivery.
struct LifelinePush {
  std::vector<Chunk> chunks;
};

using Message = std::variant<StealRequest, StealResponse, Token, Terminate,
                             LifelineRegister, LifelinePush>;

}  // namespace dws::ws
