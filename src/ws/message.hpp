#pragma once

#include "proto/message.hpp"

/// Compatibility aliases: the protocol vocabulary moved to dws::proto (the
/// transport-agnostic steal-protocol core; DESIGN.md §11). The ws names
/// remain valid so simulator-facing code keeps reading naturally.
namespace dws::ws {

using proto::Chunk;
using proto::StealRequest;
using proto::StealResponse;
using proto::Token;
using proto::Terminate;
using proto::LifelineRegister;
using proto::LifelinePush;
using proto::Message;

}  // namespace dws::ws
