#include "ws/shard.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "proto/replay.hpp"
#include "sim/engine.hpp"
#include "support/check.hpp"
#include "ws/worker.hpp"

namespace dws::ws {

namespace {

constexpr support::SimTime kInf = std::numeric_limits<support::SimTime>::max();

/// One cross-shard message parked between the sender's window and the
/// receiver's drain: the precomputed (clamped) arrival time, the sender's
/// virtual time at the send (the injected event's t_sched), the sending rank
/// (the event's ordering-refinement `src` field), and the payload.
struct MailEntry {
  support::SimTime arrival = 0;
  support::SimTime t_sched = 0;
  topo::Rank src = 0;
  topo::Rank dst = 0;
  Message msg;
};

/// One (src shard, dst shard) mailbox. Written only by the src thread during
/// its execution phase, read and cleared only by the dst thread during its
/// drain phase; the window barriers separate the two, so no atomics are
/// needed — the alignment just keeps neighbouring slots off one cache line.
struct alignas(64) MailSlot {
  std::vector<MailEntry> entries;
};

/// The sending side of the mailbox fabric: classifies destination ranks and
/// appends cross-shard sends to this shard's outbound row.
class ShardRouter final : public WsNetwork::Router {
 public:
  ShardRouter(const std::vector<std::uint32_t>& shard_of_rank,
              std::uint32_t my_shard, MailSlot* row)
      : shard_of_rank_(&shard_of_rank), my_shard_(my_shard), row_(row) {}

  bool is_remote(topo::Rank dst) const override {
    return (*shard_of_rank_)[dst] != my_shard_;
  }
  void post(topo::Rank dst, support::SimTime arrival, support::SimTime t_sched,
            topo::Rank src, Message msg) override {
    row_[(*shard_of_rank_)[dst]].entries.push_back(
        MailEntry{arrival, t_sched, src, dst, std::move(msg)});
  }

 private:
  const std::vector<std::uint32_t>* shard_of_rank_;
  std::uint32_t my_shard_;
  MailSlot* row_;  // this shard's S outbound slots
};

/// Everything one shard thread owns: its engine, network, the workers of its
/// ranks (the vector is num_ranks wide so DeliverToWorkers can index by rank
/// — remote slots stay null and are never touched), and the per-window
/// published next-event time.
struct Shard {
  explicit Shard(std::uint32_t id) : engine(id) {}

  sim::Engine engine;
  std::unique_ptr<ShardRouter> router;
  std::unique_ptr<WsNetwork> network;
  /// Shard-private injector. Message draws are keyed per channel and a
  /// channel's sends all happen on the sending rank's shard, so S private
  /// injectors make exactly the serial injector's decisions; straggler and
  /// pause assignments are pure functions of (seed, num_ranks) every copy
  /// agrees on.
  std::unique_ptr<fault::Injector> injector;
  std::vector<std::unique_ptr<Worker>> workers;
  RunContext ctx;
  std::unique_ptr<proto::BufferedObserver> buffer;
  support::SimTime next_time = kInf;
};

}  // namespace

RunResult run_sharded(const RunConfig& config, const topo::JobLayout& layout,
                      const topo::LatencyModel& latency,
                      sim::CongestionParams congestion,
                      topo::ShardPartition part, RunObserver* observer) {
  const std::uint32_t num_shards = part.num_shards;
  DWS_CHECK(num_shards > 1);
  DWS_CHECK(part.lookahead > 0);
  DWS_CHECK(part.shard_of_rank.size() == layout.num_ranks());

  // Shared congestion ledger: one per run, read lock-free by every shard
  // (reads target boundaries at least one window old) and written only
  // inside the sync barrier. Clamping the lookahead to the window is what
  // guarantees that staleness bound — with the default window (one
  // network_base) the clamp is a no-op, since every partition's lookahead
  // is a min over cut latencies that include network_base.
  std::unique_ptr<sim::CongestionLedger> ledger;
  if (congestion.enabled) {
    const support::SimTime window =
        sim::congestion_window(congestion, latency.params());
    ledger = std::make_unique<sim::CongestionLedger>(window);
    part.lookahead = std::min(part.lookahead, window);
    DWS_CHECK(part.lookahead > 0);
  }

  std::vector<MailSlot> mail(static_cast<std::size_t>(num_shards) *
                             num_shards);
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(num_shards);
  std::vector<proto::BufferedObserver*> buffers(num_shards, nullptr);

  for (std::uint32_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>(s);
    shard->router = std::make_unique<ShardRouter>(
        part.shard_of_rank, s, &mail[static_cast<std::size_t>(s) * num_shards]);
    shard->injector =
        std::make_unique<fault::Injector>(config.fault, config.num_ranks);
    fault::Injector* faults =
        shard->injector->enabled() ? shard->injector.get() : nullptr;
    shard->network = std::make_unique<WsNetwork>(
        shard->engine, latency, DeliverToWorkers{&shard->workers}, congestion,
        faults);
    shard->network->set_router(shard->router.get());
    if (ledger) shard->network->set_shared_ledger(ledger.get());
    if (observer != nullptr) {
      sim::Engine* engine = &shard->engine;
      shard->buffer = std::make_unique<proto::BufferedObserver>(
          [engine] { return engine->now(); });
      buffers[s] = shard->buffer.get();
    }

    RunContext& ctx = shard->ctx;
    ctx.engine = &shard->engine;
    ctx.network = shard->network.get();
    ctx.config = &config.ws;
    ctx.tree = &config.tree;
    ctx.latency = &latency;
    ctx.num_ranks = config.num_ranks;
    ctx.observer = shard->buffer.get();
    ctx.faults = faults;

    shard->workers.resize(config.num_ranks);
    for (topo::Rank r : part.shard_ranks[s]) {
      shard->workers[r] = std::make_unique<Worker>(r, ctx);
    }
    // Ascending rank order, like the single-engine bootstrap: within the
    // shard the kWorkerStart events get the same relative seq order.
    for (topo::Rank r : part.shard_ranks[s]) {
      shard->engine.schedule_at(0, *shard->workers[r],
                                sim::EventKind::kWorkerStart, r);
    }
    shards.push_back(std::move(shard));
  }

  // ---- conservative window loop --------------------------------------------
  //
  // Per window, every shard thread:
  //   1. (thread 0 only) replays the previous window's buffered observer
  //      hooks, merged time-ordered, into the downstream observer;
  //   2. drains its inbound mailboxes into its engine (Engine::inject with
  //      the sender's ordering key), in ascending source-shard order — the
  //      deterministic global merge rule;
  //   3. publishes its next event time and arrives at the sync barrier,
  //      whose completion computes the window end
  //      w_end = min(next times) + lookahead (or declares the run done);
  //   4. executes every local event with time < w_end and flushes lazily
  //      retired channels;
  //   5. arrives at the exec barrier, which makes this window's mailbox
  //      writes visible to the next drain.
  //
  // Any message sent during a window arrives at or after w_end (the
  // lookahead is a static lower bound on cut latency), so drains at window
  // granularity can never deliver into a shard's past — the conservative
  // property that replaces null messages (DESIGN.md §12).
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;
  auto record_error = [&]() {
    std::lock_guard<std::mutex> lock(error_mu);
    if (!error) error = std::current_exception();
    failed.store(true, std::memory_order_release);
  };

  support::SimTime w_end = 0;
  bool done = false;
  std::barrier sync(num_shards, [&]() noexcept {
    // Fold every shard's congestion flight loads into the shared ledger
    // first — in ascending shard order, so the double sums are folded in one
    // deterministic sequence — and before the done check, so the final
    // window's flights still reach max_boundary_load.
    if (ledger) {
      for (const auto& s : shards) s->network->drain_pending_loads(*ledger);
    }
    support::SimTime t_min = kInf;
    for (const auto& s : shards) t_min = std::min(t_min, s->next_time);
    if (t_min == kInf || failed.load(std::memory_order_acquire)) {
      done = true;
      return;
    }
    w_end = t_min > kInf - part.lookahead ? kInf : t_min + part.lookahead;
  });
  std::barrier exec_done(num_shards);

  auto shard_main = [&](std::uint32_t me) {
    Shard& sh = *shards[me];
    while (true) {
      try {
        if (!failed.load(std::memory_order_acquire)) {
          // Single-threaded observer fan-in. Runs concurrently with the
          // other shards' drains, which is safe: replay touches only hook
          // buffers (written during execution phases), drains touch only
          // mailboxes and engines. The sync barrier below keeps the next
          // execution phase from starting until the replay is finished.
          if (me == 0 && observer != nullptr) {
            proto::BufferedObserver::replay_merged(buffers, *observer);
          }
          for (std::uint32_t src = 0; src < num_shards; ++src) {
            if (src == me) continue;
            auto& slot =
                mail[static_cast<std::size_t>(src) * num_shards + me];
            for (MailEntry& entry : slot.entries) {
              sh.network->accept_remote(entry.arrival, entry.t_sched, src,
                                        entry.src, entry.dst,
                                        std::move(entry.msg));
            }
            slot.entries.clear();
          }
          sh.next_time = sh.engine.next_event_time(kInf);
        } else {
          sh.next_time = kInf;
        }
      } catch (...) {
        record_error();
        sh.next_time = kInf;
      }
      sync.arrive_and_wait();
      if (done) break;
      try {
        sh.engine.run_until(w_end);
        sh.network->flush_retirements();
      } catch (...) {
        record_error();
      }
      exec_done.arrive_and_wait();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_shards);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    threads.emplace_back(shard_main, s);
  }
  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);

  // Post-run invariants, as in the single-engine path. Rank 0 (always shard
  // 0 — partitions are contiguous in rank order) owns the termination flag.
  DWS_CHECK(shards[0]->ctx.terminated);
  std::uint64_t chunks_sent = 0;
  std::uint64_t chunks_received = 0;
  for (const auto& sh : shards) {
    for (topo::Rank r : part.shard_ranks[sh->engine.shard_id()]) {
      const Worker& w = *sh->workers[r];
      DWS_CHECK(w.done());
      DWS_CHECK(w.stack_size() == 0);
      chunks_sent += w.stats().chunks_sent;
      chunks_received += w.stats().chunks_received;
    }
  }
  DWS_CHECK(chunks_sent == chunks_received);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    for (std::uint32_t d = 0; d < num_shards; ++d) {
      DWS_CHECK(mail[static_cast<std::size_t>(s) * num_shards + d]
                    .entries.empty());
    }
  }

  RunResult result;
  result.runtime = shards[0]->ctx.termination_time;
  result.num_ranks = config.num_ranks;
  result.per_node_cost = config.ws.node_cost();
  result.shards_used = num_shards;
  result.per_rank.reserve(config.num_ranks);
  // Per-rank data in global rank order, so records and aggregates are
  // byte-identical to the single-engine run.
  for (topo::Rank r = 0; r < config.num_ranks; ++r) {
    const Worker& w = *shards[part.shard_of_rank[r]]->workers[r];
    result.nodes += w.stats().nodes_processed;
    result.leaves += w.stats().leaves_seen;
    result.per_rank.push_back(w.stats());
  }
  result.stats = metrics::aggregate(result.per_rank);
  for (const auto& sh : shards) {
    const sim::NetworkStats& ns = sh->network->stats();
    result.network.messages += ns.messages;
    result.network.bytes += ns.bytes;
    result.network.intra_node_messages += ns.intra_node_messages;
    result.network.max_load_hops =
        std::max(result.network.max_load_hops, ns.max_load_hops);
    result.network.peak_channels += ns.peak_channels;
    // Channels are sender-owned and disjoint across shards, so summing the
    // per-shard injectors reproduces the serial injector's totals exactly.
    const fault::FaultStats& fs = sh->injector->stats();
    result.faults.dropped_messages += fs.dropped_messages;
    result.faults.dropped_bytes += fs.dropped_bytes;
    result.faults.duplicated_messages += fs.duplicated_messages;
    result.faults.duplicated_bytes += fs.duplicated_bytes;
    result.engine_events += sh->engine.events_executed();
    result.engine_peak_pending =
        std::max<std::uint64_t>(result.engine_peak_pending,
                                sh->engine.max_pending());
    result.merge_ambiguities += sh->engine.merge_ambiguities();
  }
  if (ledger) {
    // Deferred mode leaves per-shard NetworkStats::max_load_hops at 0; the
    // run-wide peak lives in the shared ledger.
    result.network.max_load_hops = ledger->max_boundary_load();
  }

  if (config.ws.record_trace) {
    result.trace.total_time = result.runtime;
    result.trace.ranks.reserve(config.num_ranks);
    for (topo::Rank r = 0; r < config.num_ranks; ++r) {
      result.trace.ranks.push_back(
          shards[part.shard_of_rank[r]]->workers[r]->trace());
    }
  }
  return result;
}

}  // namespace dws::ws
