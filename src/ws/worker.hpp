#pragma once

#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "metrics/rank_stats.hpp"
#include "metrics/trace.hpp"
#include "proto/peer.hpp"
#include "proto/transport.hpp"
#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "sim/network.hpp"
#include "sim/pool.hpp"
#include "topo/latency.hpp"
#include "uts/tree.hpp"
#include "ws/chunk_stack.hpp"
#include "ws/config.hpp"
#include "ws/message.hpp"
#include "ws/observer.hpp"

namespace dws::ws {

class Worker;

/// Routes a network delivery to the destination worker. A concrete functor
/// (not std::function) so Network's delivery dispatch is a direct call.
struct DeliverToWorkers {
  std::vector<std::unique_ptr<Worker>>* workers = nullptr;
  void operator()(topo::Rank dst, Message msg) const;
};

/// The run's transport, typed on the direct-call delivery functor.
using WsNetwork = sim::Network<Message, DeliverToWorkers>;

/// A packaged steal response waiting out its victim-side handling delay
/// before entering the network (EventKind::kDeferredResponse).
struct PendingSend {
  StealResponse resp;
  topo::Rank thief = 0;
  std::uint32_t bytes = 0;
  /// Loss class for the eventual network send: work-carrying responses are
  /// kDupOnly (never dropped), refusals kDroppable.
  fault::MsgClass cls = fault::MsgClass::kDroppable;
};

/// Shared, immutable-per-run context handed to every worker, plus the one
/// piece of cross-worker mutable state: the termination flag that rank 0
/// sets when the token ring proves global quiescence.
struct RunContext {
  sim::Engine* engine = nullptr;
  WsNetwork* network = nullptr;
  const WsConfig* config = nullptr;
  const uts::TreeParams* tree = nullptr;
  const topo::LatencyModel* latency = nullptr;
  topo::Rank num_ranks = 0;

  /// Optional passive instrumentation (observer.hpp); null when not auditing.
  RunObserver* observer = nullptr;

  /// Non-null iff fault injection is active for this run (DESIGN.md §10):
  /// the network consults it per send; workers consult it for straggler
  /// slowdowns and transient pauses.
  fault::Injector* faults = nullptr;

  /// Deferred steal responses in flight between packaging and send; shared
  /// across workers so slots recycle run-wide.
  sim::SlabPool<PendingSend> deferred;

  bool terminated = false;
  support::SimTime termination_time = 0;
};

/// One simulated MPI rank: a thin discrete-event binding over the
/// transport-agnostic proto::Peer, which owns ALL protocol decisions —
/// steal request/response handling, timeout/retry/backoff, lifelines, and
/// token termination (DESIGN.md §11). What remains here is strictly
/// execution and delivery semantics:
///
///  - the node-expansion loop (kWorkerStep events), charging virtual compute
///    time per node and fault-injected pauses/slowdowns;
///  - MPI-style polling: messages arriving mid-expansion queue in an inbox
///    and are drained at the next poll boundary, each steal request charging
///    steal_handling_cost of victim time (one-sided steals bypass this);
///  - the proto::Transport surface: sends enter sim::Network, deferred
///    responses park in the run's SlabPool until their packaging delay
///    elapses, timers become kStealTimeout/kTokenTimeout events.
///
/// Event-core integration: the worker's continuations are typed events
/// (kWorkerStart, kWorkerStep, kDeferredResponse) dispatched through
/// on_event — the simulation's hot loop schedules POD records, never
/// closures.
///
/// Faithfulness notes (matching §II-A):
///  - no continuations: workers exchange plain tree nodes in chunks;
///  - the victim services steal requests *between* node expansions;
///  - no work-first: the thief blocks on its outstanding request and retries
///    (with a new victim) on refusal;
///  - victim selection is pluggable (the paper's experimental axis).
class Worker final : public sim::EventSink, private proto::Transport {
 public:
  Worker(topo::Rank rank, RunContext& ctx);

  /// Schedule this worker's t = 0 behaviour: rank 0 seeds the tree root and
  /// starts expanding; everyone else starts a work-discovery session.
  void start();

  /// Typed-event dispatch (kWorkerStart / kWorkerStep / kDeferredResponse /
  /// kStealTimeout / kTokenTimeout).
  void on_event(const sim::Event& ev) override;

  /// Network delivery entry point.
  void on_message(Message msg);

  const metrics::RankStats& stats() const noexcept { return peer_.stats(); }
  const metrics::RankTrace& trace() const noexcept { return peer_.trace(); }

  /// True once this rank has learnt of global termination.
  bool done() const noexcept { return peer_.done(); }
  std::size_t stack_size() const noexcept { return peer_.stack().size(); }

 private:
  // proto::Transport — the simulator side of the protocol seam.
  void send(topo::Rank to, Message msg, std::uint32_t bytes,
            fault::MsgClass cls) override;
  void send_deferred(support::SimTime delay, topo::Rank to, StealResponse resp,
                     std::uint32_t bytes, fault::MsgClass cls) override;
  void arm_steal_timer(support::SimTime delay,
                       std::uint32_t request_id) override;
  void arm_token_timer(support::SimTime delay,
                       std::uint32_t generation) override;
  void activated() override;
  void terminated(support::SimTime at) override;

  void schedule_step();
  void step();
  /// Serve queued messages at a poll boundary; returns virtual time spent.
  support::SimTime drain_inbox();

  topo::Rank rank_;
  RunContext& ctx_;
  proto::Peer peer_;

  bool step_scheduled_ = false;
  std::vector<Message> inbox_;  // arrived while expanding; drained at polls

  // Fault-layer compute perturbations, resolved once at construction.
  support::SimTime per_node_cost_ = 0;
  bool pause_taken_ = false;
};

}  // namespace dws::ws
