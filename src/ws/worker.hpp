#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "metrics/rank_stats.hpp"
#include "metrics/trace.hpp"
#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "sim/network.hpp"
#include "sim/pool.hpp"
#include "topo/latency.hpp"
#include "uts/tree.hpp"
#include "ws/chunk_stack.hpp"
#include "ws/config.hpp"
#include "ws/message.hpp"
#include "ws/victim.hpp"

namespace dws::ws {

class Worker;
class RunObserver;

/// Routes a network delivery to the destination worker. A concrete functor
/// (not std::function) so Network's delivery dispatch is a direct call.
struct DeliverToWorkers {
  std::vector<std::unique_ptr<Worker>>* workers = nullptr;
  void operator()(topo::Rank dst, Message msg) const;
};

/// The run's transport, typed on the direct-call delivery functor.
using WsNetwork = sim::Network<Message, DeliverToWorkers>;

/// A packaged steal response waiting out its victim-side handling delay
/// before entering the network (EventKind::kDeferredResponse).
struct PendingSend {
  StealResponse resp;
  topo::Rank thief = 0;
  std::uint32_t bytes = 0;
  /// Loss class for the eventual network send: work-carrying responses are
  /// kDupOnly (never dropped), refusals kDroppable.
  fault::MsgClass cls = fault::MsgClass::kDroppable;
};

/// Shared, immutable-per-run context handed to every worker, plus the one
/// piece of cross-worker mutable state: the termination flag that rank 0
/// sets when the token ring proves global quiescence.
struct RunContext {
  sim::Engine* engine = nullptr;
  WsNetwork* network = nullptr;
  const WsConfig* config = nullptr;
  const uts::TreeParams* tree = nullptr;
  const topo::LatencyModel* latency = nullptr;
  topo::Rank num_ranks = 0;

  /// Optional passive instrumentation (observer.hpp); null when not auditing.
  RunObserver* observer = nullptr;

  /// Non-null iff fault injection is active for this run (DESIGN.md §10):
  /// the network consults it per send; workers consult it for straggler
  /// slowdowns and transient pauses.
  fault::Injector* faults = nullptr;

  /// Deferred steal responses in flight between packaging and send; shared
  /// across workers so slots recycle run-wide.
  sim::SlabPool<PendingSend> deferred;

  bool terminated = false;
  support::SimTime termination_time = 0;
};

/// One simulated MPI rank running the UTS work-stealing loop of the paper's
/// reference implementation (Fig. 1 of the paper):
///
///   while not finished:
///     while node <- GET(stack):   expand node, PUSH children
///     while stack empty:          v <- SELECT_VICTIM; STEAL(v)
///
/// with chunked stacks, asynchronous steal request/response messaging,
/// token-ring termination detection, and per-rank activity tracing.
///
/// Event-core integration: the worker's continuations are typed events
/// (kWorkerStart, kWorkerStep, kDeferredResponse) dispatched through
/// on_event — the simulation's hot loop schedules POD records, never
/// closures.
///
/// Faithfulness notes (matching §II-A):
///  - no continuations: workers exchange plain tree nodes in chunks;
///  - the victim services steal requests *between* node expansions (we queue
///    messages arriving mid-expansion and drain them at the next poll
///    boundary, charging steal_handling_cost each);
///  - no work-first: the thief blocks on its outstanding request and retries
///    (with a new victim) on refusal;
///  - victim selection is pluggable (the paper's experimental axis).
class Worker final : public sim::EventSink {
 public:
  Worker(topo::Rank rank, RunContext& ctx);

  /// Schedule this worker's t = 0 behaviour: rank 0 seeds the tree root and
  /// starts expanding; everyone else starts a work-discovery session.
  void start();

  /// Typed-event dispatch (kWorkerStart / kWorkerStep / kDeferredResponse).
  void on_event(const sim::Event& ev) override;

  /// Network delivery entry point.
  void on_message(Message msg);

  const metrics::RankStats& stats() const noexcept { return stats_; }
  const metrics::RankTrace& trace() const noexcept { return trace_; }

  /// True once this rank has learnt of global termination.
  bool done() const noexcept { return state_ == State::kDone; }
  std::size_t stack_size() const noexcept { return stack_.size(); }

 private:
  enum class State {
    kActive,  ///< stack non-empty; expanding nodes
    kIdle,    ///< stack empty; stealing (a request may be outstanding)
    kDone,    ///< terminated
  };

  void schedule_step();
  void step();
  /// trace_.record plus the observer's on_phase hook.
  void record_phase(support::SimTime t, metrics::Phase p);
  /// Serve queued messages at a poll boundary; returns virtual time spent.
  support::SimTime drain_inbox();
  void handle(Message msg);
  void handle_steal_request(const StealRequest& req, support::SimTime send_delay);
  void handle_steal_response(StealResponse resp);
  void handle_token(Token token);
  void handle_lifeline_register(const LifelineRegister& reg);
  void receive_pushed_work(std::vector<Chunk> chunks);
  /// kLifeline: hand surplus chunks to dormant dependents (at poll points).
  void feed_lifeline_dependents();
  void register_on_lifelines();
  void enter_idle();
  void try_steal();
  /// Sends one steal request (fresh id, timer when steal_timeout > 0).
  void send_steal_request(topo::Rank victim);
  /// kStealTimeout fired for `request_id`: abandon and retry/move on.
  void handle_steal_timeout(std::uint32_t request_id);
  void send_token(bool black, std::uint64_t sent_acc = 0,
                  std::uint64_t recv_acc = 0, std::uint32_t generation = 0);
  /// kTokenTimeout fired for `generation` (rank 0): regenerate the probe.
  void handle_token_timeout(std::uint32_t generation);
  void declare_termination();
  void finish(support::SimTime at);

  topo::Rank rank_;
  RunContext& ctx_;
  ChunkStack stack_;
  std::unique_ptr<VictimSelector> selector_;

  State state_ = State::kIdle;
  bool step_scheduled_ = false;
  bool waiting_response_ = false;
  std::vector<Message> inbox_;  // arrived while expanding; drained at polls

  // Termination detection (Dijkstra-style coloring, conservative variant:
  // *any* work send blackens the sender, combined with Mattern-style
  // sent/received counting; see worker.cpp for the argument).
  bool black_ = false;
  bool holds_token_ = false;
  Token held_token_;
  bool token_outstanding_ = false;  // rank 0 only: a probe is circulating
  std::uint64_t work_msgs_sent_ = 0;
  std::uint64_t work_msgs_recv_ = 0;

  support::SimTime session_start_ = 0;
  support::SimTime request_sent_ = 0;
  topo::Rank request_victim_ = 0;  // victim of the outstanding request

  // Steal-protocol robustness (WsConfig::steal_timeout; DESIGN.md §10).
  std::uint32_t next_request_id_ = 0;     // last id issued (ids start at 1)
  std::uint32_t current_request_id_ = 0;  // id of the outstanding request
  std::uint32_t retry_attempt_ = 0;       // same-victim retries so far
  /// Requests abandoned by a timeout whose answer has not arrived yet; a
  /// late work-carrying answer is banked, anything else is discarded.
  struct AbandonedRequest {
    std::uint32_t id = 0;
    topo::Rank victim = 0;
  };
  std::vector<AbandonedRequest> abandoned_requests_;
  /// Victim side: highest request id seen per thief; repeats are network
  /// duplicates and must not be answered twice. Only consulted under faults.
  std::unordered_map<topo::Rank, std::uint32_t> last_request_seen_;

  // Token regeneration (WsConfig::token_timeout).
  std::uint32_t token_generation_ = 0;    // rank 0: current probe generation
  std::uint32_t max_token_gen_seen_ = 0;  // other ranks: stale/dup filter

  // Fault-layer compute perturbations, resolved once at construction.
  support::SimTime per_node_cost_ = 0;
  bool pause_taken_ = false;

  // Lifeline extension (IdlePolicy::kLifeline).
  bool dormant_ = false;                       // registered, not stealing
  std::uint32_t session_failures_ = 0;         // failed steals this session
  std::vector<topo::Rank> lifeline_targets_;   // our hypercube buddies
  std::vector<topo::Rank> registered_dependents_;  // who waits on us

  metrics::RankStats stats_;
  metrics::RankTrace trace_;
};

}  // namespace dws::ws
