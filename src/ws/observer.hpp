#pragma once

#include "proto/observer.hpp"
#include "ws/message.hpp"

/// Compatibility alias: RunObserver moved to dws::proto (DESIGN.md §11).
/// The same observer type attaches to simulated (ws::run_simulation) and
/// native (rt::run_native) runs — this is what lets dws::audit check both.
namespace dws::ws {

using RunObserver = proto::RunObserver;

}  // namespace dws::ws
