#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "audit/audit.hpp"
#include "rt/runtime.hpp"
#include "support/check.hpp"
#include "svc/service.hpp"

namespace dws::exp {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Thrown (via the support check handler) when a simulation violates an
/// invariant while a sweep is running, instead of aborting the process.
struct CheckFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void throwing_check_handler(const char* expr, const char* file,
                                         int line) {
  throw CheckFailure(std::string("DWS_CHECK failed: ") + expr + " at " + file +
                     ":" + std::to_string(line));
}

class ScopedCheckHandler {
 public:
  ScopedCheckHandler()
      : previous_(support::set_check_handler(&throwing_check_handler)) {}
  ~ScopedCheckHandler() { support::set_check_handler(previous_); }
  ScopedCheckHandler(const ScopedCheckHandler&) = delete;
  ScopedCheckHandler& operator=(const ScopedCheckHandler&) = delete;

 private:
  support::CheckHandler previous_;
};

}  // namespace

ws::RunResult run_backend(const ws::RunConfig& config) {
  // Service configs run the scheduler-as-a-service layer; validate() already
  // pinned them to the simulator backend (svc + rt is rejected).
  if (config.svc.enabled) return svc::run_service(config);
  return config.backend == ws::Backend::kRt ? rt::run_native(config)
                                            : ws::run_simulation(config);
}

SweepRunner::SweepRunner(RunnerOptions options) : options_(std::move(options)) {
  if (!options_.run) {
    // DWS_AUDIT=1 swaps in the fully audited run: every point replays the
    // dws::audit conservation ledger, and a violation fails the point (the
    // throw lands in the same catch as a DWS_CHECK failure). Sampled once
    // per runner so a sweep is all-audited or not at all. Both paths honour
    // RunConfig::backend.
    if (audit::env_enabled()) {
      options_.run = [](const ws::RunConfig& cfg) {
        return audit::checked_run(cfg);
      };
    } else {
      options_.run = [](const ws::RunConfig& cfg) { return run_backend(cfg); };
    }
  }
}

unsigned SweepRunner::threads_for(std::size_t num_points) const {
  unsigned t = options_.threads != 0 ? options_.threads
                                     : std::thread::hardware_concurrency();
  t = std::max(1u, t);
  return static_cast<unsigned>(
      std::min<std::size_t>(t, std::max<std::size_t>(num_points, 1)));
}

SweepReport SweepRunner::run(const SweepSpec& spec) const {
  auto expanded = spec.expand();
  if (!expanded) {
    SweepReport report;
    report.cancelled = true;
    PointResult failure;
    failure.error = expanded.error();
    report.points.push_back(std::move(failure));
    return report;
  }
  return run(expanded.value());
}

SweepReport SweepRunner::run(const std::vector<SweepPoint>& points) const {
  const auto sweep_start = Clock::now();
  const std::size_t n = points.size();

  SweepReport report;
  report.points.resize(n);
  for (std::size_t i = 0; i < n; ++i) report.points[i].index = points[i].index;
  if (n == 0) return report;

  // Validate everything before burning CPU: an invalid point fails the
  // sweep up front and nothing runs.
  bool invalid = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (const auto status = points[i].config.validate(); !status) {
      report.points[i].error =
          "invalid config (" + points[i].label() + "): " + status.message();
      invalid = true;
    }
  }
  if (invalid) {
    for (PointResult& p : report.points) {
      if (p.error.empty()) {
        p.skipped = true;
        p.error = "skipped: sweep cancelled";
      }
    }
    report.cancelled = true;
    report.wall_seconds = seconds_since(sweep_start);
    return report;
  }

  ScopedCheckHandler scoped_handler;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> cancelled{false};
  std::mutex progress_mutex;

  auto work = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      PointResult& out = report.points[i];
      if (cancelled.load()) {
        out.skipped = true;
        out.error = "skipped: sweep cancelled";
        continue;
      }
      const auto t0 = Clock::now();
      try {
        out.result = options_.run(points[i].config);
        out.ok = true;
      } catch (const std::exception& e) {
        out.error = e.what();
        cancelled.store(true);
      }
      out.wall_seconds = seconds_since(t0);
      const std::size_t completed = done.fetch_add(1) + 1;
      if (options_.progress) {
        const double elapsed = seconds_since(sweep_start);
        const double eta =
            elapsed / static_cast<double>(completed) *
            static_cast<double>(n - completed);
        std::lock_guard<std::mutex> lock(progress_mutex);
        std::fprintf(stderr,
                     "  [sweep] %3zu/%zu  %-40s %6.1fs  elapsed %5.1fs  "
                     "eta %5.1fs%s\n",
                     completed, n, points[i].label().c_str(), out.wall_seconds,
                     elapsed, eta, out.ok ? "" : "  FAILED");
      }
    }
  };

  const unsigned num_threads = threads_for(n);
  if (num_threads <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) pool.emplace_back(work);
    for (std::thread& t : pool) t.join();
  }

  report.cancelled = cancelled.load();
  report.wall_seconds = seconds_since(sweep_start);
  return report;
}

}  // namespace dws::exp
