#include "exp/record.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <span>

#include "crypto/sha1.hpp"
#include "support/sim_time.hpp"

namespace dws::exp {
namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Human-facing metric rendering: enough digits to round-trip a float's
/// interesting part, short enough to read. Deterministic for equal inputs,
/// which is all the byte-identical guarantee needs.
std::string fmt_metric(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string csv_escape(std::string_view s) {
  if (s.find_first_of(",\"\n") == std::string_view::npos) {
    return std::string(s);
  }
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string canonical_config(const ws::RunConfig& c) {
  std::string s;
  auto kv = [&s](const char* key, const std::string& value) {
    s += key;
    s += '=';
    s += value;
    s += ';';
  };
  auto kvu = [&kv](const char* key, std::uint64_t v) {
    kv(key, std::to_string(v));
  };
  auto kvd = [&kv](const char* key, double v) { kv(key, fmt_double(v)); };

  kv("tree.name", c.tree.name);
  kv("tree.type", uts::to_string(c.tree.type));
  kvu("tree.root_seed", c.tree.root_seed);
  kvu("tree.root_branching", c.tree.root_branching);
  kvu("tree.m", c.tree.m);
  kvd("tree.q", c.tree.q);
  kvu("tree.gen_mx", c.tree.gen_mx);
  kv("tree.shape", uts::to_string(c.tree.shape));
  kvd("tree.shift", c.tree.shift);
  kvu("tree.max_children", c.tree.max_children);

  kvu("machine.nx", static_cast<std::uint64_t>(c.machine.nx()));
  kvu("machine.ny", static_cast<std::uint64_t>(c.machine.ny()));
  kvu("machine.nz", static_cast<std::uint64_t>(c.machine.nz()));
  kvu("num_ranks", c.num_ranks);
  kv("placement", topo::to_string(c.placement));
  kvu("procs_per_node", c.procs_per_node);
  kvu("origin_cube", c.origin_cube);

  kvu("latency.same_node", static_cast<std::uint64_t>(c.latency.same_node));
  kvu("latency.same_blade", static_cast<std::uint64_t>(c.latency.same_blade));
  kvu("latency.network_base",
      static_cast<std::uint64_t>(c.latency.network_base));
  kvu("latency.per_hop", static_cast<std::uint64_t>(c.latency.per_hop));
  kvd("latency.bytes_per_ns", c.latency.bytes_per_ns);

  kvu("congestion.enabled", c.congestion.enabled ? 1 : 0);
  kvd("congestion.capacity_hops", c.congestion.capacity_hops);
  kvd("congestion.scale", c.congestion_scale);

  kvu("ws.chunk_size", c.ws.chunk_size);
  kv("ws.victim_policy", ws::to_string(c.ws.victim_policy));
  kv("ws.steal_amount", ws::to_string(c.ws.steal_amount));
  kvu("ws.sha_rounds", c.ws.sha_rounds);
  kvu("ws.node_overhead", static_cast<std::uint64_t>(c.ws.node_overhead));
  kvu("ws.sha_round_cost", static_cast<std::uint64_t>(c.ws.sha_round_cost));
  kvu("ws.steal_handling_cost",
      static_cast<std::uint64_t>(c.ws.steal_handling_cost));
  kvu("ws.poll_interval", c.ws.poll_interval);
  kvu("ws.steal_request_bytes", c.ws.steal_request_bytes);
  kvu("ws.response_header_bytes", c.ws.response_header_bytes);
  kvu("ws.node_bytes", c.ws.node_bytes);
  kvu("ws.token_bytes", c.ws.token_bytes);
  kvu("ws.seed", c.ws.seed);
  kvu("ws.alias_table_max_ranks", c.ws.alias_table_max_ranks);
  kvu("ws.one_sided_steals", c.ws.one_sided_steals ? 1 : 0);
  kv("ws.idle_policy", ws::to_string(c.ws.idle_policy));
  kvu("ws.lifeline_tries", c.ws.lifeline_tries);
  kvu("ws.hierarchical_local_tries", c.ws.hierarchical_local_tries);
  kvu("ws.record_trace", c.ws.record_trace ? 1 : 0);
  return s;
}

std::string config_fingerprint(const ws::RunConfig& config) {
  const std::string canonical = canonical_config(config);
  const auto digest = crypto::Sha1::digest(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(canonical.data()),
      canonical.size()));
  return crypto::to_hex(digest).substr(0, 12);
}

RecordWriter::RecordWriter(std::ostream& out, RecordOptions options)
    : out_(&out), options_(options) {}

void RecordWriter::write_header() {
  if (options_.format == RecordFormat::kJsonl) {
    *out_ << "{\"schema\":\"dws.exp.sweep\",\"version\":"
          << kRecordSchemaVersion << "}\n";
    return;
  }
  *out_ << "# schema=dws.exp.sweep version=" << kRecordSchemaVersion << "\n";
  *out_ << "index,point,fingerprint,tree,ranks,placement,procs_per_node,"
           "policy,steal,chunk,sha_rounds,seed,ok,error,runtime_ms,speedup,"
           "efficiency,nodes,leaves,steal_attempts,failed_steals,"
           "successful_steals,sessions,mean_session_ms,mean_search_ms,"
           "mean_steal_distance,net_messages,net_bytes,engine_events";
  if (options_.wall_clock) *out_ << ",wall_s";
  *out_ << "\n";
}

void RecordWriter::write(const SweepPoint& point, const PointResult& pr) {
  const ws::RunConfig& c = point.config;
  const ws::RunResult& r = pr.result;
  const double runtime_ms = pr.ok ? support::to_millis(r.runtime) : 0.0;
  const double speedup = pr.ok ? r.speedup() : 0.0;
  const double efficiency = pr.ok ? r.efficiency() : 0.0;

  if (options_.format == RecordFormat::kJsonl) {
    std::string coords;
    for (const auto& [axis, value] : point.coords) {
      if (!coords.empty()) coords += ',';
      coords += '"' + json_escape(axis) + "\":\"" + json_escape(value) + '"';
    }
    *out_ << "{\"index\":" << point.index                                    //
          << ",\"coords\":{" << coords << "}"                                //
          << ",\"fingerprint\":\"" << config_fingerprint(c) << "\""          //
          << ",\"tree\":\"" << json_escape(c.tree.name) << "\""              //
          << ",\"ranks\":" << c.num_ranks                                    //
          << ",\"placement\":\"" << topo::to_string(c.placement) << "\""     //
          << ",\"procs_per_node\":" << c.procs_per_node                      //
          << ",\"policy\":\"" << ws::to_string(c.ws.victim_policy) << "\""   //
          << ",\"steal\":\"" << ws::to_string(c.ws.steal_amount) << "\""     //
          << ",\"chunk\":" << c.ws.chunk_size                                //
          << ",\"sha_rounds\":" << c.ws.sha_rounds                           //
          << ",\"seed\":" << c.ws.seed                                       //
          << ",\"ok\":" << (pr.ok ? "true" : "false");
    if (!pr.ok) *out_ << ",\"error\":\"" << json_escape(pr.error) << "\"";
    *out_ << ",\"runtime_ms\":" << fmt_metric(runtime_ms)                    //
          << ",\"speedup\":" << fmt_metric(speedup)                          //
          << ",\"efficiency\":" << fmt_metric(efficiency)                    //
          << ",\"nodes\":" << r.nodes                                        //
          << ",\"leaves\":" << r.leaves                                      //
          << ",\"steal_attempts\":" << r.stats.steal_attempts                //
          << ",\"failed_steals\":" << r.stats.failed_steals                  //
          << ",\"successful_steals\":" << r.stats.successful_steals          //
          << ",\"sessions\":" << r.stats.sessions                            //
          << ",\"mean_session_ms\":" << fmt_metric(r.stats.mean_session_ms)  //
          << ",\"mean_search_ms\":"
          << fmt_metric(r.stats.mean_search_time_s * 1e3)  //
          << ",\"mean_steal_distance\":"
          << fmt_metric(r.stats.mean_steal_distance)     //
          << ",\"net_messages\":" << r.network.messages  //
          << ",\"net_bytes\":" << r.network.bytes        //
          << ",\"engine_events\":" << r.engine_events;
    if (options_.wall_clock) {
      *out_ << ",\"wall_s\":" << fmt_metric(pr.wall_seconds);
    }
    *out_ << "}\n";
    return;
  }

  *out_ << point.index << ',' << csv_escape(point.label()) << ','
        << config_fingerprint(c) << ',' << csv_escape(c.tree.name) << ','
        << c.num_ranks << ',' << topo::to_string(c.placement) << ','
        << c.procs_per_node << ',' << ws::to_string(c.ws.victim_policy) << ','
        << ws::to_string(c.ws.steal_amount) << ',' << c.ws.chunk_size << ','
        << c.ws.sha_rounds << ',' << c.ws.seed << ',' << (pr.ok ? 1 : 0) << ','
        << csv_escape(pr.error) << ',' << fmt_metric(runtime_ms) << ','
        << fmt_metric(speedup) << ',' << fmt_metric(efficiency) << ','
        << r.nodes << ',' << r.leaves << ',' << r.stats.steal_attempts << ','
        << r.stats.failed_steals << ',' << r.stats.successful_steals << ','
        << r.stats.sessions << ',' << fmt_metric(r.stats.mean_session_ms)
        << ',' << fmt_metric(r.stats.mean_search_time_s * 1e3) << ','
        << fmt_metric(r.stats.mean_steal_distance) << ','
        << r.network.messages << ',' << r.network.bytes << ','
        << r.engine_events;
  if (options_.wall_clock) *out_ << ',' << fmt_metric(pr.wall_seconds);
  *out_ << "\n";
}

void RecordWriter::write_report(const std::vector<SweepPoint>& points,
                                const SweepReport& report) {
  write_header();
  const std::size_t n =
      std::min(points.size(), report.points.size());
  for (std::size_t i = 0; i < n; ++i) {
    write(points[i], report.points[i]);
  }
}

}  // namespace dws::exp
