#include "exp/record.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <span>

#include "crypto/sha1.hpp"
#include "metrics/service_stats.hpp"
#include "support/check.hpp"
#include "support/sim_time.hpp"
#include "ws/victim.hpp"

namespace dws::exp {
namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Human-facing metric rendering: enough digits to round-trip a float's
/// interesting part, short enough to read. Deterministic for equal inputs,
/// which is all the byte-identical guarantee needs.
std::string fmt_metric(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string csv_escape(std::string_view s) {
  if (s.find_first_of(",\"\n") == std::string_view::npos) {
    return std::string(s);
  }
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string canonical_config(const ws::RunConfig& c) {
  std::string s;
  auto kv = [&s](const char* key, const std::string& value) {
    s += key;
    s += '=';
    s += value;
    s += ';';
  };
  auto kvu = [&kv](const char* key, std::uint64_t v) {
    kv(key, std::to_string(v));
  };
  auto kvd = [&kv](const char* key, double v) { kv(key, fmt_double(v)); };

  kv("tree.name", c.tree.name);
  kv("tree.type", uts::to_string(c.tree.type));
  kvu("tree.root_seed", c.tree.root_seed);
  kvu("tree.root_branching", c.tree.root_branching);
  kvu("tree.m", c.tree.m);
  kvd("tree.q", c.tree.q);
  kvu("tree.gen_mx", c.tree.gen_mx);
  kv("tree.shape", uts::to_string(c.tree.shape));
  kvd("tree.shift", c.tree.shift);
  kvu("tree.max_children", c.tree.max_children);

  kvu("machine.nx", static_cast<std::uint64_t>(c.machine.nx()));
  kvu("machine.ny", static_cast<std::uint64_t>(c.machine.ny()));
  kvu("machine.nz", static_cast<std::uint64_t>(c.machine.nz()));
  kvu("num_ranks", c.num_ranks);
  kv("placement", topo::to_string(c.placement));
  kvu("procs_per_node", c.procs_per_node);
  kvu("origin_cube", c.origin_cube);

  kvu("latency.same_node", static_cast<std::uint64_t>(c.latency.same_node));
  kvu("latency.same_blade", static_cast<std::uint64_t>(c.latency.same_blade));
  kvu("latency.network_base",
      static_cast<std::uint64_t>(c.latency.network_base));
  kvu("latency.per_hop", static_cast<std::uint64_t>(c.latency.per_hop));
  kvd("latency.bytes_per_ns", c.latency.bytes_per_ns);

  kvu("congestion.enabled", c.congestion.enabled ? 1 : 0);
  kvd("congestion.capacity_hops", c.congestion.capacity_hops);
  kvd("congestion.scale", c.congestion_scale);
  if (c.congestion.enabled) {
    // The *resolved* window (the 0 default means one network_base), emitted
    // only when the model is on: the windowed-congestion semantics change
    // re-fingerprints congested configs exactly once, and a config whose
    // explicit window equals the derived one is honestly identical.
    kvu("congestion.window",
        static_cast<std::uint64_t>(
            sim::congestion_window(c.congestion, c.latency)));
  }

  kvu("ws.chunk_size", c.ws.chunk_size);
  kv("ws.victim_policy", ws::to_string(c.ws.victim_policy));
  kv("ws.steal_amount", ws::to_string(c.ws.steal_amount));
  kvu("ws.sha_rounds", c.ws.sha_rounds);
  kvu("ws.node_overhead", static_cast<std::uint64_t>(c.ws.node_overhead));
  kvu("ws.sha_round_cost", static_cast<std::uint64_t>(c.ws.sha_round_cost));
  kvu("ws.steal_handling_cost",
      static_cast<std::uint64_t>(c.ws.steal_handling_cost));
  kvu("ws.poll_interval", c.ws.poll_interval);
  kvu("ws.steal_request_bytes", c.ws.steal_request_bytes);
  kvu("ws.response_header_bytes", c.ws.response_header_bytes);
  kvu("ws.node_bytes", c.ws.node_bytes);
  kvu("ws.token_bytes", c.ws.token_bytes);
  kvu("ws.seed", c.ws.seed);
  if (c.ws.victim_policy == ws::VictimPolicy::kTofuSkewed) {
    // The two Tofu sampling backends are equal in distribution but draw
    // different RNG sequences, so two runs match iff the *active* backend
    // matches — not the raw alias_table_max_ranks threshold, which can
    // differ without changing anything the simulation does.
    kv("ws.tofu_sampler",
       ws::tofu_uses_alias(c.ws, c.num_ranks) ? "alias" : "rejection");
  }
  if (c.ws.victim_policy == ws::VictimPolicy::kAdaptive) {
    // Same backend-not-threshold rule as ws.tofu_sampler; the feedback knobs
    // only shape behaviour when the adaptive selector is the one running.
    kv("ws.adaptive_sampler",
       ws::tofu_uses_alias(c.ws, c.num_ranks) ? "alias" : "rejection");
    kvd("ws.adapt_epsilon", c.ws.adapt_epsilon);
    kvu("ws.adapt_refresh_interval", c.ws.adapt_refresh_interval);
  }
  if (c.ws.victim_policy == ws::VictimPolicy::kAdaptive ||
      c.ws.adaptive_steal_amount) {
    kvd("ws.adapt_decay", c.ws.adapt_decay);
  }
  if (c.ws.adaptive_steal_amount) {
    kvu("ws.adaptive_steal_amount", 1);
    // The *resolved* threshold (0 means 2 * chunk_size): a config spelling
    // the derived value explicitly is honestly identical.
    kvu("ws.adapt_yield_threshold", c.ws.adapt_yield_threshold != 0
                                        ? c.ws.adapt_yield_threshold
                                        : 2 * c.ws.chunk_size);
  }
  kvu("ws.one_sided_steals", c.ws.one_sided_steals ? 1 : 0);
  kv("ws.idle_policy", ws::to_string(c.ws.idle_policy));
  kvu("ws.lifeline_tries", c.ws.lifeline_tries);
  kvu("ws.hierarchical_local_tries", c.ws.hierarchical_local_tries);
  if (c.ws.victim_policy == ws::VictimPolicy::kHierarchical &&
      c.ws.hierarchical_remote_tries != 1) {
    // Only-when-enabled: the default one-remote-slot schedule is exactly the
    // pre-knob behaviour, so those configs keep their fingerprints.
    kvu("ws.hierarchical_remote_tries", c.ws.hierarchical_remote_tries);
  }
  kvu("ws.record_trace", c.ws.record_trace ? 1 : 0);

  // The backend key appears only for the native runtime so every simulator
  // config keeps its established fingerprint (kSim is the default engine).
  if (c.backend == ws::Backend::kRt) {
    kv("backend", ws::to_string(c.backend));
  }

  // Robustness/fault keys appear only when active so that every pre-fault
  // config keeps its established fingerprint.
  if (c.ws.steal_timeout != 0) {
    kvu("ws.steal_timeout", static_cast<std::uint64_t>(c.ws.steal_timeout));
    kvu("ws.steal_retry_max", c.ws.steal_retry_max);
    kvd("ws.steal_backoff", c.ws.steal_backoff);
  }
  if (c.ws.token_timeout != 0) {
    kvu("ws.token_timeout", static_cast<std::uint64_t>(c.ws.token_timeout));
  }
  if (c.fault.enabled()) {
    kvd("fault.drop_prob", c.fault.drop_prob);
    kvd("fault.dup_prob", c.fault.dup_prob);
    kvd("fault.jitter_frac", c.fault.jitter_frac);
    kvd("fault.degraded_frac", c.fault.degraded_frac);
    kvd("fault.degraded_mult", c.fault.degraded_mult);
    kvu("fault.straggler_ranks", c.fault.straggler_ranks);
    kvd("fault.straggler_factor", c.fault.straggler_factor);
    kvu("fault.pause_ranks", c.fault.pause_ranks);
    kvu("fault.pause_duration",
        static_cast<std::uint64_t>(c.fault.pause_duration));
    kvu("fault.pause_window",
        static_cast<std::uint64_t>(c.fault.pause_window));
    kvu("fault.seed", c.fault.seed);
    // Draw-keying generation: per-channel send counters replaced the global
    // counter (a semantics change — same seed, different draw sequence), so
    // faulted configs re-fingerprint exactly once.
    kv("fault.keying", "per-channel");
  }

  // Service keys appear only for service configs (svc.enabled) so every
  // single-job config keeps its established fingerprint.
  if (c.svc.enabled) {
    kvu("svc.seed", c.svc.seed);
    kv("svc.arrival", svc::to_string(c.svc.arrival));
    if (c.svc.arrival == svc::ArrivalKind::kTrace) {
      std::string trace;
      for (const support::SimTime t : c.svc.trace) {
        trace += std::to_string(t);
        trace += ',';
      }
      kv("svc.trace", trace);
    } else {
      kvu("svc.num_jobs", c.svc.num_jobs);
      kvu("svc.mean_interarrival",
          static_cast<std::uint64_t>(c.svc.mean_interarrival));
    }
    kv("svc.alloc", svc::to_string(c.svc.alloc));
    if (c.svc.alloc == svc::AllocPolicy::kSpaceShare) {
      kvu("svc.ranks_per_job", c.svc.ranks_per_job);
    }
    kv("svc.kind", svc::to_string(c.svc.kind));
    if (!c.svc.mix.empty()) {
      std::string mix;
      for (const svc::JobMixEntry& e : c.svc.mix) {
        mix += e.tree;
        mix += ':';
        mix += fmt_double(e.weight);
        mix += ',';
      }
      kv("svc.mix", mix);
    }
  }

  // Empirical latency-sampling keys (the measured steal-RTT backend) appear
  // only when the backend is active — the analytic model's fingerprints are
  // untouched.
  if (c.latency.sampling_enabled()) {
    kvu("latency.sample_seed", c.latency.sample_seed);
    std::string bins;
    for (const topo::LatencySampleBin& b : c.latency.sample_bins) {
      bins += std::to_string(b.lo);
      bins += ':';
      bins += std::to_string(b.hi);
      bins += ':';
      bins += std::to_string(b.weight);
      bins += ',';
    }
    kv("latency.sample_bins", bins);
  }
  return s;
}

std::string config_fingerprint(const ws::RunConfig& config) {
  const std::string canonical = canonical_config(config);
  const auto digest = crypto::Sha1::digest(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(canonical.data()),
      canonical.size()));
  return crypto::to_hex(digest).substr(0, 12);
}

RecordWriter::RecordWriter(std::ostream& out, RecordOptions options)
    : out_(&out), options_(options) {
  DWS_CHECK(options_.schema_version >= kRecordMinSchemaVersion);
  DWS_CHECK(options_.schema_version <= kRecordSchemaVersion);
}

void RecordWriter::write_header() {
  if (options_.format == RecordFormat::kJsonl) {
    *out_ << "{\"schema\":\"dws.exp.sweep\",\"version\":"
          << options_.schema_version << "}\n";
    return;
  }
  *out_ << "# schema=dws.exp.sweep version=" << options_.schema_version
        << "\n";
  *out_ << "index,point,fingerprint,tree,ranks,placement,procs_per_node,"
           "policy,steal,chunk,sha_rounds,seed,ok,error,runtime_ms,speedup,"
           "efficiency,nodes,leaves,steal_attempts,failed_steals,"
           "successful_steals,sessions,mean_session_ms,mean_search_ms,"
           "mean_steal_distance,net_messages,net_bytes,engine_events";
  if (options_.schema_version >= 2 && options_.schema_version < 5) {
    *out_ << ",engine_peak_pending,net_peak_channels";
  }
  if (options_.schema_version >= 3) {
    *out_ << ",steal_timeouts,steal_retries,token_regens,net_drops,net_dups";
  }
  if (options_.schema_version >= 4) {
    *out_ << ",backend,per_node_cost_ns";
  }
  if (options_.schema_version >= 6) {
    *out_ << ",row,jobs,makespan_p50_ms,makespan_p99_ms,queue_wait_p50_ms,"
             "queue_wait_p99_ms,sched_latency_p50_ms,sched_latency_p99_ms,"
             "job_id,job_tree,job_root_seed,job_base,job_width,"
             "job_arrival_ms,job_admit_ms,job_first_compute_ms,job_finish_ms,"
             "job_queue_wait_ms,job_sched_latency_ms,job_makespan_ms,"
             "job_nodes,job_leaves,job_steal_attempts,job_successful_steals";
  }
  if (options_.wall_clock) *out_ << ",wall_s";
  *out_ << "\n";
}

void RecordWriter::write(const SweepPoint& point, const PointResult& pr) {
  const ws::RunConfig& c = point.config;
  const ws::RunResult& r = pr.result;
  const double runtime_ms = pr.ok ? support::to_millis(r.runtime) : 0.0;
  const double speedup = pr.ok ? r.speedup() : 0.0;
  const double efficiency = pr.ok ? r.efficiency() : 0.0;

  if (options_.format == RecordFormat::kJsonl) {
    std::string coords;
    for (const auto& [axis, value] : point.coords) {
      if (!coords.empty()) coords += ',';
      coords += '"' + json_escape(axis) + "\":\"" + json_escape(value) + '"';
    }
    *out_ << "{\"index\":" << point.index                                    //
          << ",\"coords\":{" << coords << "}"                                //
          << ",\"fingerprint\":\"" << config_fingerprint(c) << "\""          //
          << ",\"tree\":\"" << json_escape(c.tree.name) << "\""              //
          << ",\"ranks\":" << c.num_ranks                                    //
          << ",\"placement\":\"" << topo::to_string(c.placement) << "\""     //
          << ",\"procs_per_node\":" << c.procs_per_node                      //
          << ",\"policy\":\"" << ws::to_string(c.ws.victim_policy) << "\""   //
          << ",\"steal\":\"" << ws::to_string(c.ws.steal_amount) << "\""     //
          << ",\"chunk\":" << c.ws.chunk_size                                //
          << ",\"sha_rounds\":" << c.ws.sha_rounds                           //
          << ",\"seed\":" << c.ws.seed                                       //
          << ",\"ok\":" << (pr.ok ? "true" : "false");
    if (!pr.ok) *out_ << ",\"error\":\"" << json_escape(pr.error) << "\"";
    *out_ << ",\"runtime_ms\":" << fmt_metric(runtime_ms)                    //
          << ",\"speedup\":" << fmt_metric(speedup)                          //
          << ",\"efficiency\":" << fmt_metric(efficiency)                    //
          << ",\"nodes\":" << r.nodes                                        //
          << ",\"leaves\":" << r.leaves                                      //
          << ",\"steal_attempts\":" << r.stats.steal_attempts                //
          << ",\"failed_steals\":" << r.stats.failed_steals                  //
          << ",\"successful_steals\":" << r.stats.successful_steals          //
          << ",\"sessions\":" << r.stats.sessions                            //
          << ",\"mean_session_ms\":" << fmt_metric(r.stats.mean_session_ms)  //
          << ",\"mean_search_ms\":"
          << fmt_metric(r.stats.mean_search_time_s * 1e3)  //
          << ",\"mean_steal_distance\":"
          << fmt_metric(r.stats.mean_steal_distance)     //
          << ",\"net_messages\":" << r.network.messages  //
          << ",\"net_bytes\":" << r.network.bytes        //
          << ",\"engine_events\":" << r.engine_events;
    if (options_.schema_version >= 2 && options_.schema_version < 5) {
      *out_ << ",\"engine_peak_pending\":" << r.engine_peak_pending
            << ",\"net_peak_channels\":" << r.network.peak_channels;
    }
    if (options_.schema_version >= 3) {
      *out_ << ",\"steal_timeouts\":" << r.stats.steal_timeouts
            << ",\"steal_retries\":" << r.stats.steal_retries
            << ",\"token_regens\":" << r.stats.token_regens
            << ",\"net_drops\":" << r.faults.dropped_messages
            << ",\"net_dups\":" << r.faults.duplicated_messages;
    }
    if (options_.schema_version >= 4) {
      *out_ << ",\"backend\":\"" << ws::to_string(c.backend) << "\""
            << ",\"per_node_cost_ns\":"
            << (pr.ok ? static_cast<std::uint64_t>(r.per_node_cost) : 0);
    }
    if (options_.schema_version >= 6) {
      const metrics::ServiceTails tails = metrics::service_tails(r.jobs);
      *out_ << ",\"row\":\"run\""                         //
            << ",\"jobs\":" << r.jobs.size()              //
            << ",\"makespan_p50_ms\":" << fmt_metric(tails.makespan.p50)
            << ",\"makespan_p99_ms\":" << fmt_metric(tails.makespan.p99)
            << ",\"queue_wait_p50_ms\":" << fmt_metric(tails.queue_wait.p50)
            << ",\"queue_wait_p99_ms\":" << fmt_metric(tails.queue_wait.p99)
            << ",\"sched_latency_p50_ms\":"
            << fmt_metric(tails.sched_latency.p50)
            << ",\"sched_latency_p99_ms\":"
            << fmt_metric(tails.sched_latency.p99);
    }
    if (options_.wall_clock) {
      *out_ << ",\"wall_s\":" << fmt_metric(pr.wall_seconds);
    }
    *out_ << "}\n";
    if (options_.schema_version >= 6 && pr.ok) {
      std::string coord_pairs;
      for (const auto& [axis, value] : point.coords) {
        if (!coord_pairs.empty()) coord_pairs += ',';
        coord_pairs +=
            '"' + json_escape(axis) + "\":\"" + json_escape(value) + '"';
      }
      for (const metrics::JobOutcome& j : r.jobs) {
        *out_ << "{\"index\":" << point.index                            //
              << ",\"coords\":{" << coord_pairs << "}"                   //
              << ",\"row\":\"job\""                                     //
              << ",\"fingerprint\":\"" << config_fingerprint(c) << "\""  //
              << ",\"job_id\":" << j.job_id                              //
              << ",\"job_tree\":\"" << json_escape(j.tree) << "\""       //
              << ",\"job_root_seed\":" << j.root_seed                    //
              << ",\"job_base\":" << j.base                              //
              << ",\"job_width\":" << j.width                            //
              << ",\"job_arrival_ms\":"
              << fmt_metric(support::to_millis(j.arrival))  //
              << ",\"job_admit_ms\":"
              << fmt_metric(support::to_millis(j.admit))  //
              << ",\"job_first_compute_ms\":"
              << fmt_metric(support::to_millis(j.first_compute))  //
              << ",\"job_finish_ms\":"
              << fmt_metric(support::to_millis(j.finish))  //
              << ",\"job_queue_wait_ms\":"
              << fmt_metric(support::to_millis(j.queue_wait()))  //
              << ",\"job_sched_latency_ms\":"
              << fmt_metric(support::to_millis(j.sched_latency()))  //
              << ",\"job_makespan_ms\":"
              << fmt_metric(support::to_millis(j.makespan()))        //
              << ",\"job_nodes\":" << j.nodes                        //
              << ",\"job_leaves\":" << j.leaves                      //
              << ",\"job_steal_attempts\":" << j.steal_attempts      //
              << ",\"job_successful_steals\":" << j.successful_steals
              << "}\n";
      }
    }
    return;
  }

  *out_ << point.index << ',' << csv_escape(point.label()) << ','
        << config_fingerprint(c) << ',' << csv_escape(c.tree.name) << ','
        << c.num_ranks << ',' << topo::to_string(c.placement) << ','
        << c.procs_per_node << ',' << ws::to_string(c.ws.victim_policy) << ','
        << ws::to_string(c.ws.steal_amount) << ',' << c.ws.chunk_size << ','
        << c.ws.sha_rounds << ',' << c.ws.seed << ',' << (pr.ok ? 1 : 0) << ','
        << csv_escape(pr.error) << ',' << fmt_metric(runtime_ms) << ','
        << fmt_metric(speedup) << ',' << fmt_metric(efficiency) << ','
        << r.nodes << ',' << r.leaves << ',' << r.stats.steal_attempts << ','
        << r.stats.failed_steals << ',' << r.stats.successful_steals << ','
        << r.stats.sessions << ',' << fmt_metric(r.stats.mean_session_ms)
        << ',' << fmt_metric(r.stats.mean_search_time_s * 1e3) << ','
        << fmt_metric(r.stats.mean_steal_distance) << ','
        << r.network.messages << ',' << r.network.bytes << ','
        << r.engine_events;
  if (options_.schema_version >= 2 && options_.schema_version < 5) {
    *out_ << ',' << r.engine_peak_pending << ',' << r.network.peak_channels;
  }
  if (options_.schema_version >= 3) {
    *out_ << ',' << r.stats.steal_timeouts << ',' << r.stats.steal_retries
          << ',' << r.stats.token_regens << ',' << r.faults.dropped_messages
          << ',' << r.faults.duplicated_messages;
  }
  if (options_.schema_version >= 4) {
    *out_ << ',' << ws::to_string(c.backend) << ','
          << (pr.ok ? static_cast<std::uint64_t>(r.per_node_cost) : 0);
  }
  if (options_.schema_version >= 6) {
    const metrics::ServiceTails tails = metrics::service_tails(r.jobs);
    *out_ << ",run," << r.jobs.size() << ','
          << fmt_metric(tails.makespan.p50) << ','
          << fmt_metric(tails.makespan.p99) << ','
          << fmt_metric(tails.queue_wait.p50) << ','
          << fmt_metric(tails.queue_wait.p99) << ','
          << fmt_metric(tails.sched_latency.p50) << ','
          << fmt_metric(tails.sched_latency.p99)
          << ",0,,0,0,0,0,0,0,0,0,0,0,0,0,0,0";
  }
  if (options_.wall_clock) *out_ << ',' << fmt_metric(pr.wall_seconds);
  *out_ << "\n";
  if (options_.schema_version >= 6 && pr.ok) {
    for (const metrics::JobOutcome& j : r.jobs) {
      // Job rows repeat the point's identity columns, zero the run metrics
      // (28 run-metric cells between `error` and the v6 block) and carry
      // their own job_* cells.
      *out_ << point.index << ',' << csv_escape(point.label()) << ','
            << config_fingerprint(c) << ',' << csv_escape(c.tree.name) << ','
            << c.num_ranks << ',' << topo::to_string(c.placement) << ','
            << c.procs_per_node << ',' << ws::to_string(c.ws.victim_policy)
            << ',' << ws::to_string(c.ws.steal_amount) << ','
            << c.ws.chunk_size << ',' << c.ws.sha_rounds << ',' << c.ws.seed
            << ",1,,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0";
      if (options_.schema_version >= 3) *out_ << ",0,0,0,0,0";
      *out_ << ',' << ws::to_string(c.backend) << ",0"  //
            << ",job,0,0,0,0,0,0,0"                      //
            << ',' << j.job_id << ',' << csv_escape(j.tree) << ','
            << j.root_seed << ',' << j.base << ',' << j.width << ','
            << fmt_metric(support::to_millis(j.arrival)) << ','
            << fmt_metric(support::to_millis(j.admit)) << ','
            << fmt_metric(support::to_millis(j.first_compute)) << ','
            << fmt_metric(support::to_millis(j.finish)) << ','
            << fmt_metric(support::to_millis(j.queue_wait())) << ','
            << fmt_metric(support::to_millis(j.sched_latency())) << ','
            << fmt_metric(support::to_millis(j.makespan())) << ','
            << j.nodes << ',' << j.leaves << ',' << j.steal_attempts << ','
            << j.successful_steals;
      if (options_.wall_clock) *out_ << ",0";
      *out_ << "\n";
    }
  }
}

void RecordWriter::write_report(const std::vector<SweepPoint>& points,
                                const SweepReport& report) {
  write_header();
  const std::size_t n =
      std::min(points.size(), report.points.size());
  for (std::size_t i = 0; i < n; ++i) {
    write(points[i], report.points[i]);
  }
}

namespace {

std::uint64_t to_u64(std::string_view v) {
  return std::strtoull(std::string(v).c_str(), nullptr, 10);
}
double to_f64(std::string_view v) {
  return std::strtod(std::string(v).c_str(), nullptr);
}

/// Assigns one already-unescaped (key, value) pair into a record. Shared by
/// both wire formats; unknown keys are skipped so a v(N+1) file still loads
/// the fields this build knows about.
void assign_field(SweepRecord& r, std::string_view key, std::string_view v) {
  if (key == "index") r.index = to_u64(v);
  else if (key == "point") r.label = std::string(v);
  else if (key == "fingerprint") r.fingerprint = std::string(v);
  else if (key == "tree") r.tree = std::string(v);
  else if (key == "ranks") r.ranks = static_cast<std::uint32_t>(to_u64(v));
  else if (key == "placement") r.placement = std::string(v);
  else if (key == "procs_per_node") r.procs_per_node = static_cast<std::uint32_t>(to_u64(v));
  else if (key == "policy") r.policy = std::string(v);
  else if (key == "steal") r.steal = std::string(v);
  else if (key == "chunk") r.chunk = static_cast<std::uint32_t>(to_u64(v));
  else if (key == "sha_rounds") r.sha_rounds = static_cast<std::uint32_t>(to_u64(v));
  else if (key == "seed") r.seed = to_u64(v);
  else if (key == "ok") r.ok = (v == "true" || v == "1");
  else if (key == "error") r.error = std::string(v);
  else if (key == "runtime_ms") r.runtime_ms = to_f64(v);
  else if (key == "speedup") r.speedup = to_f64(v);
  else if (key == "efficiency") r.efficiency = to_f64(v);
  else if (key == "nodes") r.nodes = to_u64(v);
  else if (key == "leaves") r.leaves = to_u64(v);
  else if (key == "steal_attempts") r.steal_attempts = to_u64(v);
  else if (key == "failed_steals") r.failed_steals = to_u64(v);
  else if (key == "successful_steals") r.successful_steals = to_u64(v);
  else if (key == "sessions") r.sessions = to_u64(v);
  else if (key == "mean_session_ms") r.mean_session_ms = to_f64(v);
  else if (key == "mean_search_ms") r.mean_search_ms = to_f64(v);
  else if (key == "mean_steal_distance") r.mean_steal_distance = to_f64(v);
  else if (key == "net_messages") r.net_messages = to_u64(v);
  else if (key == "net_bytes") r.net_bytes = to_u64(v);
  else if (key == "engine_events") r.engine_events = to_u64(v);
  else if (key == "engine_peak_pending") r.engine_peak_pending = to_u64(v);
  else if (key == "net_peak_channels") r.net_peak_channels = to_u64(v);
  else if (key == "steal_timeouts") r.steal_timeouts = to_u64(v);
  else if (key == "steal_retries") r.steal_retries = to_u64(v);
  else if (key == "token_regens") r.token_regens = to_u64(v);
  else if (key == "net_drops") r.net_drops = to_u64(v);
  else if (key == "net_dups") r.net_dups = to_u64(v);
  else if (key == "backend") r.backend = std::string(v);
  else if (key == "per_node_cost_ns") r.per_node_cost_ns = to_u64(v);
  else if (key == "row") r.row = std::string(v);
  else if (key == "jobs") r.jobs = to_u64(v);
  else if (key == "makespan_p50_ms") r.makespan_p50_ms = to_f64(v);
  else if (key == "makespan_p99_ms") r.makespan_p99_ms = to_f64(v);
  else if (key == "queue_wait_p50_ms") r.queue_wait_p50_ms = to_f64(v);
  else if (key == "queue_wait_p99_ms") r.queue_wait_p99_ms = to_f64(v);
  else if (key == "sched_latency_p50_ms") r.sched_latency_p50_ms = to_f64(v);
  else if (key == "sched_latency_p99_ms") r.sched_latency_p99_ms = to_f64(v);
  else if (key == "job_id") r.job_id = static_cast<std::uint32_t>(to_u64(v));
  else if (key == "job_tree") r.job_tree = std::string(v);
  else if (key == "job_root_seed") r.job_root_seed = to_u64(v);
  else if (key == "job_base") r.job_base = static_cast<std::uint32_t>(to_u64(v));
  else if (key == "job_width") r.job_width = static_cast<std::uint32_t>(to_u64(v));
  else if (key == "job_arrival_ms") r.job_arrival_ms = to_f64(v);
  else if (key == "job_admit_ms") r.job_admit_ms = to_f64(v);
  else if (key == "job_first_compute_ms") r.job_first_compute_ms = to_f64(v);
  else if (key == "job_finish_ms") r.job_finish_ms = to_f64(v);
  else if (key == "job_queue_wait_ms") r.job_queue_wait_ms = to_f64(v);
  else if (key == "job_sched_latency_ms") r.job_sched_latency_ms = to_f64(v);
  else if (key == "job_makespan_ms") r.job_makespan_ms = to_f64(v);
  else if (key == "job_nodes") r.job_nodes = to_u64(v);
  else if (key == "job_leaves") r.job_leaves = to_u64(v);
  else if (key == "job_steal_attempts") r.job_steal_attempts = to_u64(v);
  else if (key == "job_successful_steals") r.job_successful_steals = to_u64(v);
  else if (key == "wall_s") {
    r.has_wall_s = true;
    r.wall_s = to_f64(v);
  }
}

/// Minimal scanner for the flat JSON objects RecordWriter emits: string,
/// number, and bool values, plus one level of string->string nesting (the
/// `coords` object). Not a general JSON parser and doesn't try to be.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view line) : s_(line) {}

  support::Status parse_into(SweepRecord& rec) {
    if (!eat('{')) return err("expected '{'");
    if (peek() == '}') return support::Status::ok();
    while (true) {
      std::string key;
      if (!parse_string(key)) return err("bad key string");
      if (!eat(':')) return err("expected ':'");
      if (peek() == '{') {
        if (key != "coords") return err("unexpected nested object");
        if (!parse_coords(rec)) return err("bad coords object");
      } else if (peek() == '"') {
        std::string value;
        if (!parse_string(value)) return err("bad string value");
        assign_field(rec, key, value);
      } else {
        assign_field(rec, key, scan_token());
      }
      if (eat(',')) continue;
      if (eat('}')) return support::Status::ok();
      return err("expected ',' or '}'");
    }
  }

 private:
  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++i_;
    return true;
  }
  support::Status err(const char* what) const {
    return support::Status::error(std::string("record parse: ") + what +
                                  " at offset " + std::to_string(i_));
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (i_ < s_.size()) {
      const char c = s_[i_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (i_ >= s_.size()) return false;
      const char esc = s_[i_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (i_ + 4 > s_.size()) return false;
          const auto code = std::strtoul(
              std::string(s_.substr(i_, 4)).c_str(), nullptr, 16);
          i_ += 4;
          out += static_cast<char>(code);  // writer only emits < 0x20
          break;
        }
        default: return false;
      }
    }
    return false;
  }

  /// Unquoted scalar: number / true / false. Ends at ',' '}' or EOL.
  std::string_view scan_token() {
    const std::size_t start = i_;
    while (i_ < s_.size() && s_[i_] != ',' && s_[i_] != '}') ++i_;
    return s_.substr(start, i_ - start);
  }

  bool parse_coords(SweepRecord& rec) {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    while (true) {
      std::string axis, value;
      if (!parse_string(axis)) return false;
      if (!eat(':')) return false;
      if (!parse_string(value)) return false;
      rec.coords.emplace_back(std::move(axis), std::move(value));
      if (eat(',')) continue;
      return eat('}');
    }
  }

  std::string_view s_;
  std::size_t i_ = 0;
};

/// Splits one CSV row with the writer's quoting rules ("" escapes a quote).
std::vector<std::string> split_csv_row(std::string_view line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

support::Status parse_version(std::string_view line, std::string_view prefix,
                              int& version) {
  const auto pos = line.find(prefix);
  if (pos == std::string_view::npos) {
    return support::Status::error(
        "record parse: missing schema/version in header line");
  }
  version = static_cast<int>(to_u64(line.substr(pos + prefix.size())));
  if (version < kRecordMinSchemaVersion || version > kRecordSchemaVersion) {
    return support::Status::error(
        "record parse: unsupported schema version " +
        std::to_string(version) + " (this build reads " +
        std::to_string(kRecordMinSchemaVersion) + ".." +
        std::to_string(kRecordSchemaVersion) + ")");
  }
  return support::Status::ok();
}

}  // namespace

support::Expected<RecordFile> read_records(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    return support::Expected<RecordFile>::failure("record parse: empty input");
  }

  RecordFile file;
  if (!line.empty() && line[0] == '{') {
    file.format = RecordFormat::kJsonl;
    if (line.find("\"schema\":\"dws.exp.sweep\"") == std::string::npos) {
      return support::Expected<RecordFile>::failure(
          "record parse: first line is not a dws.exp.sweep meta line");
    }
    if (const auto st = parse_version(line, "\"version\":", file.version);
        !st) {
      return support::Expected<RecordFile>::failure(st);
    }
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      SweepRecord rec;
      if (const auto st = JsonCursor(line).parse_into(rec); !st) {
        return support::Expected<RecordFile>::failure(st);
      }
      file.records.push_back(std::move(rec));
    }
    return file;
  }

  if (line.rfind("# schema=dws.exp.sweep", 0) != 0) {
    return support::Expected<RecordFile>::failure(
        "record parse: first line is neither a JSONL meta line nor a CSV "
        "schema comment");
  }
  file.format = RecordFormat::kCsv;
  if (const auto st = parse_version(line, "version=", file.version); !st) {
    return support::Expected<RecordFile>::failure(st);
  }
  if (!std::getline(in, line)) {
    return support::Expected<RecordFile>::failure(
        "record parse: missing CSV header row");
  }
  const std::vector<std::string> columns = split_csv_row(line);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> cells = split_csv_row(line);
    if (cells.size() != columns.size()) {
      return support::Expected<RecordFile>::failure(
          "record parse: row has " + std::to_string(cells.size()) +
          " cells, header has " + std::to_string(columns.size()));
    }
    SweepRecord rec;
    for (std::size_t i = 0; i < columns.size(); ++i) {
      assign_field(rec, columns[i], cells[i]);
    }
    file.records.push_back(std::move(rec));
  }
  return file;
}

}  // namespace dws::exp
