#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/expected.hpp"
#include "ws/scheduler.hpp"

/// dws::exp — the experiment subsystem (DESIGN.md §"The experiment engine").
///
/// Every paper figure is the same shape: run ws::run_simulation over a small
/// parameter grid and tabulate one metric. A SweepSpec declares that grid as
/// named axes over RunConfig fields; expansion yields fully-formed, validated
/// RunConfigs, one per point, which SweepRunner (runner.hpp) executes on a
/// thread pool and RecordWriter (record.hpp) serializes.
namespace dws::exp {

/// One setting of one axis: a human-readable label ("1024", "Tofu Half") and
/// the mutation it applies to the run configuration.
struct AxisPoint {
  std::string label;
  std::function<void(ws::RunConfig&)> apply;
};

/// A named sequence of settings ("ranks" -> 128, 256, 512, 1024).
struct Axis {
  std::string name;
  std::vector<AxisPoint> points;
};

// ---- Axis factories over the common RunConfig fields -----------------------

Axis ranks_axis(const std::vector<topo::Rank>& ranks);
Axis policy_axis(const std::vector<ws::VictimPolicy>& policies);
Axis steal_axis(const std::vector<ws::StealAmount>& amounts);
Axis chunk_size_axis(const std::vector<std::uint32_t>& sizes);
Axis sha_rounds_axis(const std::vector<std::uint32_t>& rounds);
Axis tree_axis(const std::vector<std::string>& catalogue_names);
/// Seeds first .. first+count-1, labelled by value.
Axis seed_axis(std::uint64_t first, std::uint64_t count);
/// Congestion capacity scales; 0 turns the model off for that point.
Axis congestion_axis(const std::vector<double>& scales);
/// kHierarchical local picks per remote pick (ws.hierarchical_local_tries).
Axis local_tries_axis(const std::vector<std::uint32_t>& tries);
/// kHierarchical remote picks per schedule period
/// (ws.hierarchical_remote_tries, the bounded-remote-tries knob).
Axis remote_tries_axis(const std::vector<std::uint32_t>& tries);
/// Adaptive feedback knobs (DESIGN.md §14): exploration probability and EWMA
/// step of kAdaptive / adaptive_steal_amount.
Axis adapt_epsilon_axis(const std::vector<double>& epsilons);
Axis adapt_decay_axis(const std::vector<double>& decays);
/// Parallel-simulator shard counts (RunConfig::sim_shards). An execution
/// strategy, not a simulation parameter: every point must produce identical
/// records, which is exactly what sweeping it checks (and what the
/// parallel-smoke CI job times).
Axis sim_shards_axis(const std::vector<std::uint32_t>& shards);
/// Placement + procs_per_node pairs (the paper's 1/N, 8RR, 8G allocations).
Axis placement_axis(
    const std::vector<std::pair<topo::Placement, std::uint32_t>>& allocs);
/// Execution engine per point: the simulator vs. the native thread runtime
/// (rt::run_native). Points only dispatch through the backend when the sweep
/// runs via run_backend / audit::checked_run — SweepRunner's defaults do.
Axis backend_axis(const std::vector<ws::Backend>& backends);

/// Service axes (svc::ServiceParams; base config needs svc.enabled).
/// Mean Poisson inter-arrival gap in virtual ns — the arrival-rate axis of
/// the tail-latency sweeps, labelled in ms.
Axis svc_arrival_axis(const std::vector<support::SimTime>& mean_gaps);
/// Allocation policy per point: (kSpaceShare, ranks_per_job) labelled
/// "spaceN", or (kTimeShare, 0) labelled "time".
Axis svc_alloc_axis(
    const std::vector<std::pair<svc::AllocPolicy, topo::Rank>>& policies);
/// Job-size mixes, each a labelled weighted set of catalogue trees (an empty
/// mix means every job runs the base config's tree).
Axis svc_mix_axis(
    const std::vector<std::pair<std::string, std::vector<svc::JobMixEntry>>>&
        mixes);

/// Fault-injection axes (fault::FaultConfig), labelled "off" / "1%" / "2".
/// Points with loss need ws.steal_timeout/token_timeout set on the base
/// config — RunConfig::validate enforces the pairing.
Axis fault_drop_axis(const std::vector<double>& probs);
Axis fault_jitter_axis(const std::vector<double>& fracs);
Axis fault_straggler_axis(const std::vector<std::uint32_t>& counts);

/// Escape hatch: any label/mutation pairs under one axis name.
Axis custom_axis(std::string name, std::vector<AxisPoint> points);

// ---- Spec ------------------------------------------------------------------

/// How multiple axes combine.
enum class SweepMode {
  kCartesian,  ///< cross product; the last declared axis varies fastest
  kZip,        ///< parallel iteration; all axes must have equal length
};

/// One expanded grid point: where it sits in the sweep and the full config.
struct SweepPoint {
  std::size_t index = 0;  ///< position in expansion order (stable, 0-based)
  /// (axis name, point label) in axis declaration order.
  std::vector<std::pair<std::string, std::string>> coords;
  ws::RunConfig config;

  /// "ranks=1024 policy=Tofu" — the progress/record label.
  std::string label() const;
  /// Label of the named axis at this point; nullptr if the axis is unknown.
  const std::string* coord(std::string_view axis) const;
};

/// A declarative parameter sweep: a base RunConfig plus named axes. Axes
/// apply in declaration order, so a later axis may deliberately override an
/// earlier one's field (e.g. a "series" custom axis refining the policy).
class SweepSpec {
 public:
  explicit SweepSpec(ws::RunConfig base, SweepMode mode = SweepMode::kCartesian)
      : base_(std::move(base)), mode_(mode) {}

  SweepSpec& axis(Axis a) {
    axes_.push_back(std::move(a));
    return *this;
  }
  SweepSpec& axis(std::string name, std::vector<AxisPoint> points) {
    return axis(custom_axis(std::move(name), std::move(points)));
  }

  const ws::RunConfig& base() const noexcept { return base_; }
  SweepMode mode() const noexcept { return mode_; }
  const std::vector<Axis>& axes() const noexcept { return axes_; }

  /// Points in the expansion (0 when a zip spec is malformed). An axis-less
  /// spec is a single point: the base config.
  std::size_t num_points() const;

  /// Expand into fully-formed configs. Fails on an empty axis or on zipped
  /// axes of unequal length; per-point *validity* is the runner's concern
  /// (it knows how to report/cancel), so configs are not validated here.
  support::Expected<std::vector<SweepPoint>> expand() const;

 private:
  ws::RunConfig base_;
  SweepMode mode_;
  std::vector<Axis> axes_;
};

}  // namespace dws::exp
