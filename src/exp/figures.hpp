#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/record.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "metrics/occupancy.hpp"
#include "support/table.hpp"
#include "topo/allocation.hpp"
#include "ws/scheduler.hpp"

/// The figure-regeneration harness (formerly bench/common.{hpp,cpp}): the
/// paper's variant/allocation vocabulary, the scale mapping, and the sweep
/// execution helpers every bench binary is built on.
///
/// Scale mapping (see DESIGN.md §1 and EXPERIMENTS.md): the paper's
/// large-scale sweep over 1024..8192 K Computer nodes maps onto 128..1024
/// simulated ranks — an 8x scale-down chosen so the whole suite regenerates
/// in minutes on one host. The trees are scaled correspondingly (SIMWL,
/// ~3M nodes vs T3WL's 157G) keeping the runs in the paper's regime: a few
/// thousand nodes of work per rank, runtimes dominated by how fast the
/// scheduler can distribute work. Chunk size is scaled 20 -> 4 to keep the
/// chunk/tree granularity ratio comparable, and the fluid congestion model
/// is enabled (the paper's latency spread at 8192 nodes across >80 racks).
namespace dws::exp {

/// One scheduler variant, named as in the paper's figure legends.
struct Variant {
  ws::VictimPolicy policy;
  ws::StealAmount amount;
  const char* label;
};

inline constexpr Variant kReference{ws::VictimPolicy::kRoundRobin,
                                    ws::StealAmount::kOneChunk, "Reference"};
inline constexpr Variant kRand{ws::VictimPolicy::kRandom,
                               ws::StealAmount::kOneChunk, "Rand"};
inline constexpr Variant kTofu{ws::VictimPolicy::kTofuSkewed,
                               ws::StealAmount::kOneChunk, "Tofu"};
inline constexpr Variant kReferenceHalf{ws::VictimPolicy::kRoundRobin,
                                        ws::StealAmount::kHalf, "Reference Half"};
inline constexpr Variant kRandHalf{ws::VictimPolicy::kRandom,
                                   ws::StealAmount::kHalf, "Rand Half"};
inline constexpr Variant kTofuHalf{ws::VictimPolicy::kTofuSkewed,
                                   ws::StealAmount::kHalf, "Tofu Half"};
/// Feedback-driven selection (DESIGN.md §14). Starts from the Half amount
/// like kTofuHalf; benches that also want amount switching flip
/// ws.adaptive_steal_amount via a custom axis point on top of this variant.
inline constexpr Variant kAdaptiveHalf{ws::VictimPolicy::kAdaptive,
                                       ws::StealAmount::kHalf, "Adaptive"};

/// One placement axis entry (the paper's process allocations).
struct Alloc {
  topo::Placement placement;
  std::uint32_t procs_per_node;
  const char* label;
};

inline constexpr Alloc kOneN{topo::Placement::kOnePerNode, 1, "1/N"};
inline constexpr Alloc k8RR{topo::Placement::kRoundRobin, 8, "8RR"};
inline constexpr Alloc k8G{topo::Placement::kGrouped, 8, "8G"};

/// One figure series: a variant under an allocation ("Tofu 1/N").
struct Series {
  Variant variant;
  Alloc alloc;
  std::string label;
};
Series make_series(const Variant& v, const Alloc& a);

/// Apply a variant / allocation to a config in place (for sweep bases).
void apply_variant(const Variant& v, ws::RunConfig& cfg);
void apply_alloc(const Alloc& a, ws::RunConfig& cfg);

// ---- Figure-harness axes ----------------------------------------------------

Axis variant_axis(const std::vector<Variant>& variants);
Axis alloc_axis(const std::vector<Alloc>& allocs);
Axis series_axis(const std::vector<Series>& series);

// ---- Unified bench CLI ------------------------------------------------------

/// Flags every figure binary accepts (env vars remain as defaults so the
/// original `DWS_BENCH_QUICK=1 ./fig09...` invocations keep working):
///   --quick          trim sweeps for iteration   (DWS_BENCH_QUICK=1)
///   --seeds N        seed-average over N seeds   (DWS_BENCH_SEEDS)
///   --threads N      sweep worker threads        (DWS_BENCH_THREADS, 0=cores)
///   --sim-shards N   engine shards per run       (DWS_BENCH_SHARDS)
///   --out FILE       also write one record per run (record.hpp)
///   --format F       record format: jsonl|csv
struct FigureOptions {
  bool quick = false;
  std::uint32_t seeds = 3;
  std::uint32_t threads = 0;
  /// Conservative-parallel engine shards per run (DESIGN.md §12). Execution
  /// strategy only — records are shard-invariant — so every figure can be
  /// regenerated sharded (`DWS_BENCH_SHARDS=4 ./fig09_tofu_speedup`) with no
  /// effect on the output beyond wall-clock. Interacts with --threads:
  /// sweep-level parallelism and shard-level parallelism multiply.
  std::uint32_t sim_shards = 1;
  std::string out;
  RecordFormat format = RecordFormat::kJsonl;
};

/// Parse the unified flags and print the standard figure preamble.
/// Exits 0 on --help, 2 on a bad flag.
void figure_init(int argc, char** argv, const char* figure,
                 const char* caption);
const FigureOptions& figure_options();

/// True when --quick / DWS_BENCH_QUICK=1: trims sweeps for fast iteration.
/// The default regenerates the full figures.
bool quick_mode();

// ---- Scale mapping ----------------------------------------------------------

/// Simulated rank counts for the large-scale sweep and the paper-scale
/// column printed next to them.
std::vector<topo::Rank> large_scale_ranks();
topo::Rank paper_equivalent(topo::Rank sim_ranks);

/// Rank counts for the small-scale sweep (Fig. 2); 1:1 with the paper.
std::vector<topo::Rank> small_scale_ranks();

/// The standard run behind every large-scale figure. Rank/variant/alloc
/// dimensions meant to vary should come from sweep axes over
/// large_scale_base(); the explicit-argument form remains for one-off runs.
ws::RunConfig large_scale_base();
ws::RunConfig large_scale_config(topo::Rank sim_ranks, const Variant& variant,
                                 const Alloc& alloc);

/// The standard small-scale (Fig. 2) run.
ws::RunConfig small_scale_base();
ws::RunConfig small_scale_config(topo::Rank ranks, const Variant& variant,
                                 const Alloc& alloc);

// ---- Execution --------------------------------------------------------------

/// Run + one-line progress output on stderr (the tables go to stdout).
/// For figures built from a single run; sweeps go through run_figure_sweep.
ws::RunResult run_and_log(const ws::RunConfig& config, const char* label);

/// Execute a sweep on the shared SweepRunner (--threads workers, progress on
/// stderr), write records when --out was given, and return the results in
/// point order. Exits 1 if any point failed — a figure regenerated from a
/// failed sweep would be silently wrong.
std::vector<ws::RunResult> run_figure_sweep(const SweepSpec& spec);

/// Seed-averaged metrics for the comparative figures: a single seed's
/// realisation noise (work-stealing is a random schedule) is ~10%, which
/// would swamp the smaller policy gaps the paper reports. Controlled by
/// --seeds / DWS_BENCH_SEEDS (default 3, min 1; quick mode forces 1).
struct Averaged {
  double speedup = 0.0;
  double runtime_ms = 0.0;
  double failed_steals = 0.0;
  double mean_session_ms = 0.0;
  double mean_search_ms = 0.0;
};

/// run_figure_sweep with an inner seed axis: every point of `spec` runs once
/// per seed (seeds vary fastest) and the results are averaged per point, in
/// seed order, exactly as the serial harness did.
std::vector<Averaged> run_figure_sweep_averaged(SweepSpec spec);

/// Shared preamble: figure id, paper caption, and the scale-mapping note.
void print_figure_header(const char* figure, const char* caption);

}  // namespace dws::exp
