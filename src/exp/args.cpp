#include "exp/args.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace dws::exp {
namespace {

template <typename T>
support::Status parse_number(std::string_view flag, std::string_view value,
                             T* out) {
  T parsed{};
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    return support::Status::error(std::string(flag) + ": '" +
                                  std::string(value) + "' is not a number");
  }
  *out = parsed;
  return support::Status::ok();
}

support::Status parse_f64(std::string_view flag, std::string_view value,
                          double* out) {
  // std::from_chars<double> is spotty across standard libraries; strtod is
  // universal and the inputs are CLI-sized.
  const std::string copy(value);
  char* end = nullptr;
  const double parsed = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || copy.empty()) {
    return support::Status::error(std::string(flag) + ": '" + copy +
                                  "' is not a number");
  }
  *out = parsed;
  return support::Status::ok();
}

}  // namespace

ArgSpec::ArgSpec(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

ArgSpec& ArgSpec::option(std::string long_flag, std::string short_flag,
                         std::string value_name, std::string help,
                         Parser parse) {
  options_.push_back({std::move(long_flag), std::move(short_flag),
                      std::move(value_name), std::move(help),
                      std::move(parse)});
  return *this;
}

ArgSpec& ArgSpec::u32(std::string long_flag, std::string short_flag,
                      std::string help, std::uint32_t* out) {
  const std::string flag = long_flag;
  return option(std::move(long_flag), std::move(short_flag), "N",
                std::move(help), [flag, out](std::string_view v) {
                  return parse_number(flag, v, out);
                });
}

ArgSpec& ArgSpec::u64(std::string long_flag, std::string short_flag,
                      std::string help, std::uint64_t* out) {
  const std::string flag = long_flag;
  return option(std::move(long_flag), std::move(short_flag), "N",
                std::move(help), [flag, out](std::string_view v) {
                  return parse_number(flag, v, out);
                });
}

ArgSpec& ArgSpec::f64(std::string long_flag, std::string short_flag,
                      std::string help, double* out) {
  const std::string flag = long_flag;
  return option(std::move(long_flag), std::move(short_flag), "X",
                std::move(help), [flag, out](std::string_view v) {
                  return parse_f64(flag, v, out);
                });
}

ArgSpec& ArgSpec::str(std::string long_flag, std::string short_flag,
                      std::string help, std::string* out) {
  return option(std::move(long_flag), std::move(short_flag), "S",
                std::move(help), [out](std::string_view v) {
                  *out = std::string(v);
                  return support::Status::ok();
                });
}

ArgSpec& ArgSpec::toggle(std::string long_flag, std::string short_flag,
                         std::string help, bool* out) {
  return option(std::move(long_flag), std::move(short_flag), "",
                std::move(help), [out](std::string_view) {
                  *out = true;
                  return support::Status::ok();
                });
}

const ArgSpec::Option* ArgSpec::find(std::string_view flag) const {
  for (const Option& o : options_) {
    if (flag == o.long_flag || (!o.short_flag.empty() && flag == o.short_flag)) {
      return &o;
    }
  }
  return nullptr;
}

support::Status ArgSpec::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      help_requested_ = true;
      std::fputs(usage().c_str(), stdout);
      return support::Status::ok();
    }
    const Option* o = find(flag);
    if (o == nullptr) {
      return support::Status::error("unknown flag '" + std::string(flag) +
                                    "' (see --help)");
    }
    if (o->value_name.empty()) {  // toggle
      if (const auto s = o->parse(""); !s) return s;
      continue;
    }
    if (i + 1 >= argc) {
      return support::Status::error(std::string(flag) + " needs a value");
    }
    if (const auto s = o->parse(argv[++i]); !s) return s;
  }
  return support::Status::ok();
}

std::string ArgSpec::usage() const {
  std::string out = program_ + " — " + summary_ + "\n\nOptions:\n";
  for (const Option& o : options_) {
    std::string flags = "  " + o.long_flag;
    if (!o.short_flag.empty()) flags += ", " + o.short_flag;
    if (!o.value_name.empty()) flags += " <" + o.value_name + ">";
    while (flags.size() < 28) flags += ' ';
    out += flags + " " + o.help + "\n";
  }
  out += "  --help, -h                 show this help\n";
  return out;
}

support::Expected<ws::VictimPolicy> parse_policy(std::string_view s) {
  using E = support::Expected<ws::VictimPolicy>;
  if (s == "ref" || s == "reference") return ws::VictimPolicy::kRoundRobin;
  if (s == "rand" || s == "random") return ws::VictimPolicy::kRandom;
  if (s == "tofu") return ws::VictimPolicy::kTofuSkewed;
  if (s == "hier") return ws::VictimPolicy::kHierarchical;
  if (s == "adaptive" || s == "adapt") return ws::VictimPolicy::kAdaptive;
  return E::failure("victim policy must be " +
                    std::string(policy_flag_values()) + ", got '" +
                    std::string(s) + "'");
}

support::Expected<ws::StealAmount> parse_steal(std::string_view s) {
  using E = support::Expected<ws::StealAmount>;
  if (s == "1" || s == "one" || s == "chunk") return ws::StealAmount::kOneChunk;
  if (s == "half") return ws::StealAmount::kHalf;
  return E::failure("steal amount must be " +
                    std::string(steal_flag_values()) + ", got '" +
                    std::string(s) + "'");
}

support::Expected<topo::Placement> parse_placement(std::string_view s) {
  using E = support::Expected<topo::Placement>;
  if (s == "1n" || s == "1/N" || s == "1/n") return topo::Placement::kOnePerNode;
  if (s == "rr" || s == "8RR" || s == "8rr") return topo::Placement::kRoundRobin;
  if (s == "g" || s == "8G" || s == "8g") return topo::Placement::kGrouped;
  return E::failure("placement must be " +
                    std::string(placement_flag_values()) + ", got '" +
                    std::string(s) + "'");
}

support::Expected<ws::IdlePolicy> parse_idle(std::string_view s) {
  using E = support::Expected<ws::IdlePolicy>;
  if (s == "persistent" || s == "steal") return ws::IdlePolicy::kPersistentSteal;
  if (s == "lifeline") return ws::IdlePolicy::kLifeline;
  return E::failure("idle policy must be " + std::string(idle_flag_values()) +
                    ", got '" + std::string(s) + "'");
}

const char* policy_flag_values() { return "ref|rand|tofu|hier|adaptive"; }
const char* steal_flag_values() { return "1|half"; }
const char* placement_flag_values() { return "1n|rr|g"; }
const char* idle_flag_values() { return "persistent|lifeline"; }

std::vector<std::string> split_list(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    const std::string_view piece =
        s.substr(start, end == std::string_view::npos ? end : end - start);
    if (!piece.empty()) out.emplace_back(piece);
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return out;
}

}  // namespace dws::exp
