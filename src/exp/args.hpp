#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "support/expected.hpp"
#include "topo/allocation.hpp"
#include "ws/config.hpp"

namespace dws::exp {

/// Declarative `--flag value` command-line parsing, shared by every binary
/// in the suite so they all speak the same vocabulary (--ranks, --policy,
/// --tree, --seed, --out, ...). Deliberately tiny: long flags with optional
/// short aliases, typed sinks, generated usage text, errors as Status
/// instead of exit() so tests can drive it.
class ArgSpec {
 public:
  ArgSpec(std::string program, std::string summary);

  using Parser = std::function<support::Status(std::string_view value)>;

  /// A flag taking one value. `short_flag` may be empty.
  ArgSpec& option(std::string long_flag, std::string short_flag,
                  std::string value_name, std::string help, Parser parse);

  // Typed conveniences writing straight into a variable.
  ArgSpec& u32(std::string long_flag, std::string short_flag, std::string help,
               std::uint32_t* out);
  ArgSpec& u64(std::string long_flag, std::string short_flag, std::string help,
               std::uint64_t* out);
  ArgSpec& f64(std::string long_flag, std::string short_flag, std::string help,
               double* out);
  ArgSpec& str(std::string long_flag, std::string short_flag, std::string help,
               std::string* out);
  /// A boolean switch taking no value.
  ArgSpec& toggle(std::string long_flag, std::string short_flag,
                  std::string help, bool* out);

  /// Parses argv. `--help`/`-h` prints usage() to stdout and reports
  /// help_requested() so mains can exit 0. Unknown flags, missing values and
  /// sink parse failures come back as an error Status naming the flag.
  support::Status parse(int argc, const char* const* argv);

  bool help_requested() const noexcept { return help_requested_; }
  std::string usage() const;

 private:
  struct Option {
    std::string long_flag;
    std::string short_flag;
    std::string value_name;  // empty => toggle
    std::string help;
    Parser parse;
  };
  const Option* find(std::string_view flag) const;

  std::string program_;
  std::string summary_;
  std::vector<Option> options_;
  bool help_requested_ = false;
};

// ---- The shared experiment vocabulary ---------------------------------------

/// "ref|rand|tofu|hier" (the figure legends' names, lowercased).
support::Expected<ws::VictimPolicy> parse_policy(std::string_view s);
/// "1|one|chunk" or "half".
support::Expected<ws::StealAmount> parse_steal(std::string_view s);
/// "1n|1/N" / "rr|8RR" / "g|8G".
support::Expected<topo::Placement> parse_placement(std::string_view s);
/// "persistent" or "lifeline".
support::Expected<ws::IdlePolicy> parse_idle(std::string_view s);

const char* policy_flag_values();     ///< "ref|rand|tofu|hier"
const char* steal_flag_values();      ///< "1|half"
const char* placement_flag_values();  ///< "1n|rr|g"
const char* idle_flag_values();       ///< "persistent|lifeline"

/// Split "a,b,c" (empty segments dropped).
std::vector<std::string> split_list(std::string_view s, char sep = ',');

}  // namespace dws::exp
